// Package sqltypes implements the SQL value system used throughout the
// SQLShare reproduction: typed values, three-valued-logic comparison,
// casting, and the most-specific-type inference that powers relaxed-schema
// ingest (paper §3.1).
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type identifies the SQL type of a Value or a column.
type Type uint8

// The supported SQL types, ordered from most to least specific for the
// purposes of ingest type inference: an INTEGER column can be widened to
// FLOAT, and anything can be widened to STRING.
const (
	Null Type = iota // the type of an untyped NULL
	Bool
	Int
	Float
	DateTime
	String
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case Null:
		return "NULL"
	case Bool:
		return "BIT"
	case Int:
		return "INT"
	case Float:
		return "FLOAT"
	case DateTime:
		return "DATETIME"
	case String:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a single SQL value. The zero Value is SQL NULL.
type Value struct {
	typ  Type
	i    int64
	f    float64
	s    string
	t    time.Time
	null bool
	set  bool // distinguishes the zero Value (NULL) from a set value
}

// NullValue returns SQL NULL.
func NullValue() Value { return Value{typ: Null, null: true, set: true} }

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{typ: Int, i: v, set: true} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{typ: Float, f: v, set: true} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{typ: String, s: v, set: true} }

// NewBool returns a BIT value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{typ: Bool, i: i, set: true}
}

// NewDateTime returns a DATETIME value.
func NewDateTime(v time.Time) Value { return Value{typ: DateTime, t: v.UTC(), set: true} }

// TypedNull returns a NULL that remembers the column type it belongs to.
// Comparisons and arithmetic treat it identically to NullValue.
func TypedNull(t Type) Value { return Value{typ: t, null: true, set: true} }

// Type returns the type of the value. NULLs report the type they were
// created with (Null for an untyped NULL).
func (v Value) Type() Type {
	if !v.set {
		return Null
	}
	return v.typ
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return !v.set || v.null }

// SizeBytes estimates the in-memory width of the value in bytes — the
// per-value analogue of SHOWPLAN's AvgRowSize, used by execution tracing
// to report actual operator output width.
func (v Value) SizeBytes() int {
	if v.IsNull() {
		return 1
	}
	switch v.typ {
	case String:
		return 16 + len(v.s)
	case DateTime:
		return 16
	default:
		return 8
	}
}

// Int returns the int64 payload. Valid only when Type() == Int or Bool.
func (v Value) Int() int64 { return v.i }

// Float returns the float64 payload when Type() == Float; for Int and Bool
// it converts, so numeric code can call Float unconditionally.
func (v Value) Float() float64 {
	switch v.typ {
	case Float:
		return v.f
	case Int, Bool:
		return float64(v.i)
	default:
		return 0
	}
}

// Str returns the string payload. Valid only when Type() == String.
func (v Value) Str() string { return v.s }

// Bool reports the boolean payload. Valid only when Type() == Bool.
func (v Value) Bool() bool { return v.i != 0 }

// Time returns the time payload. Valid only when Type() == DateTime.
func (v Value) Time() time.Time { return v.t }

// IsNumeric reports whether the value carries a numeric payload.
func (v Value) IsNumeric() bool {
	return !v.IsNull() && (v.typ == Int || v.typ == Float || v.typ == Bool)
}

// DateTimeLayouts lists the timestamp layouts recognized by inference and
// casting, in the order they are tried.
var DateTimeLayouts = []string{
	"2006-01-02T15:04:05Z07:00",
	"2006-01-02 15:04:05",
	"2006-01-02T15:04:05",
	"2006-01-02",
	"01/02/2006 15:04:05",
	"01/02/2006",
	"2006/01/02",
}

// String renders the value the way SQLShare renders result cells: NULL for
// nulls, minimal digits for numbers, RFC3339-like timestamps.
func (v Value) String() string {
	if v.IsNull() {
		return "NULL"
	}
	switch v.typ {
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		if math.IsInf(v.f, 1) {
			return "Infinity"
		}
		if math.IsInf(v.f, -1) {
			return "-Infinity"
		}
		if v.f == 0 {
			return "0" // render negative zero without its sign
		}
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case Bool:
		if v.i != 0 {
			return "1"
		}
		return "0"
	case DateTime:
		return v.t.Format("2006-01-02 15:04:05")
	case String:
		return v.s
	default:
		return "NULL"
	}
}

// SQLLiteral renders the value as a SQL literal suitable for inclusion in
// generated query text.
func (v Value) SQLLiteral() string {
	if v.IsNull() {
		return "NULL"
	}
	switch v.typ {
	case String:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case DateTime:
		return "'" + v.t.Format("2006-01-02 15:04:05") + "'"
	default:
		return v.String()
	}
}
