package sqltypes

import (
	"testing"
	"testing/quick"
	"time"
)

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value should be NULL")
	}
	if v.Type() != Null {
		t.Fatalf("zero Value type = %v, want Null", v.Type())
	}
	if v.String() != "NULL" {
		t.Fatalf("zero Value String = %q", v.String())
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if got := NewInt(42); got.Int() != 42 || got.Type() != Int || got.IsNull() {
		t.Errorf("NewInt: %+v", got)
	}
	if got := NewFloat(2.5); got.Float() != 2.5 || got.Type() != Float {
		t.Errorf("NewFloat: %+v", got)
	}
	if got := NewString("hi"); got.Str() != "hi" || got.Type() != String {
		t.Errorf("NewString: %+v", got)
	}
	if got := NewBool(true); !got.Bool() || got.Type() != Bool {
		t.Errorf("NewBool: %+v", got)
	}
	ts := time.Date(2014, 7, 1, 10, 30, 0, 0, time.UTC)
	if got := NewDateTime(ts); !got.Time().Equal(ts) || got.Type() != DateTime {
		t.Errorf("NewDateTime: %+v", got)
	}
	if got := TypedNull(Float); !got.IsNull() || got.Type() != Float {
		t.Errorf("TypedNull: %+v", got)
	}
}

func TestIntFloatConversion(t *testing.T) {
	if got := NewInt(7).Float(); got != 7.0 {
		t.Errorf("Int.Float() = %v", got)
	}
	if got := NewBool(true).Float(); got != 1.0 {
		t.Errorf("Bool.Float() = %v", got)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(-3), "-3"},
		{NewFloat(1.5), "1.5"},
		{NewFloat(2), "2"},
		{NewBool(false), "0"},
		{NewBool(true), "1"},
		{NewString("abc"), "abc"},
		{NullValue(), "NULL"},
		{NewDateTime(time.Date(2013, 2, 3, 4, 5, 6, 0, time.UTC)), "2013-02-03 04:05:06"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Type(), got, c.want)
		}
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := NewString("o'brien").SQLLiteral(); got != "'o''brien'" {
		t.Errorf("SQLLiteral string = %q", got)
	}
	if got := NewInt(5).SQLLiteral(); got != "5" {
		t.Errorf("SQLLiteral int = %q", got)
	}
	if got := NullValue().SQLLiteral(); got != "NULL" {
		t.Errorf("SQLLiteral null = %q", got)
	}
}

func TestTristateLogic(t *testing.T) {
	if True.And(Unknown) != Unknown {
		t.Error("TRUE AND UNKNOWN should be UNKNOWN")
	}
	if False.And(Unknown) != False {
		t.Error("FALSE AND UNKNOWN should be FALSE")
	}
	if True.Or(Unknown) != True {
		t.Error("TRUE OR UNKNOWN should be TRUE")
	}
	if False.Or(Unknown) != Unknown {
		t.Error("FALSE OR UNKNOWN should be UNKNOWN")
	}
	if Unknown.Not() != Unknown {
		t.Error("NOT UNKNOWN should be UNKNOWN")
	}
	if True.Not() != False || False.Not() != True {
		t.Error("NOT truth table broken")
	}
}

func TestCompareNumeric(t *testing.T) {
	c, ok := Compare(NewInt(3), NewFloat(3.0))
	if !ok || c != 0 {
		t.Errorf("3 vs 3.0: c=%d ok=%v", c, ok)
	}
	c, ok = Compare(NewInt(2), NewInt(5))
	if !ok || c >= 0 {
		t.Errorf("2 vs 5: c=%d ok=%v", c, ok)
	}
	c, ok = Compare(NewString("10"), NewInt(9))
	if !ok || c <= 0 {
		t.Errorf("'10' vs 9 should coerce numerically: c=%d ok=%v", c, ok)
	}
}

func TestCompareNullIsUnknown(t *testing.T) {
	if _, ok := Compare(NullValue(), NewInt(1)); ok {
		t.Error("NULL comparison should not be ok")
	}
	if Equal(NullValue(), NullValue()) != Unknown {
		t.Error("NULL = NULL should be UNKNOWN")
	}
}

func TestSortCompareNullsFirst(t *testing.T) {
	if SortCompare(NullValue(), NewInt(-1000)) != -1 {
		t.Error("NULL should sort before any value")
	}
	if SortCompare(NewInt(1), NullValue()) != 1 {
		t.Error("value should sort after NULL")
	}
	if SortCompare(NullValue(), NullValue()) != 0 {
		t.Error("NULL should sort equal to NULL")
	}
}

func TestSortCompareIsTotalOrder(t *testing.T) {
	// Antisymmetry and reflexivity over a mixed set of values.
	vals := []Value{
		NullValue(), NewInt(1), NewInt(-5), NewFloat(2.5), NewBool(true),
		NewString("a"), NewString("b"), NewDateTime(time.Unix(0, 0)),
	}
	for _, a := range vals {
		for _, b := range vals {
			ab, ba := SortCompare(a, b), SortCompare(b, a)
			if ab != -ba {
				t.Errorf("SortCompare(%v,%v)=%d but reverse=%d", a, b, ab, ba)
			}
		}
	}
}

func TestKeyConsistentWithEquality(t *testing.T) {
	if NewInt(3).Key() != NewFloat(3).Key() {
		t.Error("3 and 3.0 should share a key")
	}
	if NewInt(3).Key() == NewString("3").Key() {
		t.Error("int 3 and string '3' should not share a key (GROUP BY is typed)")
	}
	if NullValue().Key() != TypedNull(Int).Key() {
		t.Error("all NULLs share a grouping key")
	}
}

func TestQuickSortCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := NewInt(a), NewInt(b)
		return SortCompare(va, vb) == -SortCompare(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareMatchesGo(t *testing.T) {
	f := func(a, b float64) bool {
		c, ok := Compare(NewFloat(a), NewFloat(b))
		if !ok {
			return false
		}
		switch {
		case a < b:
			return c == -1
		case a > b:
			return c == 1
		default:
			return c == 0
		}
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
