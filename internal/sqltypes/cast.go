package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// parseNumeric interprets a string as a number the way ingest and CAST do.
func parseNumeric(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

func parseDateTime(s string) (time.Time, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return time.Time{}, false
	}
	for _, layout := range DateTimeLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t.UTC(), true
		}
	}
	return time.Time{}, false
}

// ParseNumeric exposes the numeric string interpretation Compare and CAST
// use, so vectorized predicate kernels can pre-parse a literal once per
// segment instead of per row while agreeing with Compare bit for bit.
func ParseNumeric(s string) (float64, bool) { return parseNumeric(s) }

// ParseDateTime exposes the timestamp string interpretation Compare and
// CAST use, for the same reason as ParseNumeric.
func ParseDateTime(s string) (time.Time, bool) { return parseDateTime(s) }

// Cast converts a value to the target type with T-SQL CAST semantics.
// Casting NULL yields a typed NULL. A failed cast returns an error, exactly
// as the backing database raised an exception during ingest (§3.1).
func Cast(v Value, to Type) (Value, error) {
	if v.IsNull() {
		return TypedNull(to), nil
	}
	if v.typ == to {
		return v, nil
	}
	switch to {
	case Int:
		switch v.typ {
		case Float:
			// T-SQL truncates toward zero.
			return NewInt(int64(math.Trunc(v.f))), nil
		case Bool:
			return NewInt(v.i), nil
		case String:
			s := strings.TrimSpace(v.s)
			if i, err := strconv.ParseInt(s, 10, 64); err == nil {
				return NewInt(i), nil
			}
			// CAST('3.0' AS INT) succeeds only for integral floats in our
			// dialect; mirror a conversion error otherwise.
			if f, ok := parseNumeric(s); ok && f == math.Trunc(f) {
				return NewInt(int64(f)), nil
			}
			return Value{}, fmt.Errorf("sqltypes: cannot convert %q to INT", v.s)
		}
	case Float:
		switch v.typ {
		case Int, Bool:
			return NewFloat(float64(v.i)), nil
		case String:
			if f, ok := parseNumeric(v.s); ok {
				return NewFloat(f), nil
			}
			return Value{}, fmt.Errorf("sqltypes: cannot convert %q to FLOAT", v.s)
		}
	case Bool:
		switch v.typ {
		case Int:
			return NewBool(v.i != 0), nil
		case Float:
			return NewBool(v.f != 0), nil
		case String:
			switch strings.ToLower(strings.TrimSpace(v.s)) {
			case "true", "1":
				return NewBool(true), nil
			case "false", "0":
				return NewBool(false), nil
			}
			return Value{}, fmt.Errorf("sqltypes: cannot convert %q to BIT", v.s)
		}
	case DateTime:
		if v.typ == String {
			if t, ok := parseDateTime(v.s); ok {
				return NewDateTime(t), nil
			}
			return Value{}, fmt.Errorf("sqltypes: cannot convert %q to DATETIME", v.s)
		}
	case String:
		return NewString(v.String()), nil
	case Null:
		return NullValue(), nil
	}
	return Value{}, fmt.Errorf("sqltypes: unsupported cast from %s to %s", v.typ, to)
}

// ParseTypeName maps a SQL type name (as written in CAST expressions) to a
// Type. It accepts the common T-SQL spellings with optional length/precision
// suffixes, e.g. VARCHAR(100) or DECIMAL(10,2).
func ParseTypeName(name string) (Type, error) {
	base := strings.ToUpper(strings.TrimSpace(name))
	if i := strings.IndexByte(base, '('); i >= 0 {
		base = strings.TrimSpace(base[:i])
	}
	switch base {
	case "INT", "INTEGER", "BIGINT", "SMALLINT", "TINYINT":
		return Int, nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC", "MONEY":
		return Float, nil
	case "BIT", "BOOLEAN", "BOOL":
		return Bool, nil
	case "DATETIME", "DATE", "DATETIME2", "SMALLDATETIME", "TIMESTAMP":
		return DateTime, nil
	case "VARCHAR", "NVARCHAR", "CHAR", "NCHAR", "TEXT", "NTEXT", "STRING":
		return String, nil
	}
	return Null, fmt.Errorf("sqltypes: unknown type name %q", name)
}
