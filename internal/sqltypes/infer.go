package sqltypes

import "strings"

// InferValueType returns the most specific type that can represent the raw
// field text, per the ingest heuristic of §3.1: INT, then FLOAT, then
// DATETIME, then BIT, falling back to VARCHAR. Empty fields are NULL and
// impose no constraint.
func InferValueType(raw string) Type {
	s := strings.TrimSpace(raw)
	if s == "" {
		return Null
	}
	if _, err := Cast(NewString(s), Int); err == nil {
		// Disambiguate: "3.7" float-parses and truncation-casts are rejected
		// above, so only truly integral strings land here.
		if !strings.ContainsAny(s, ".eE") {
			return Int
		}
	}
	if _, ok := parseNumeric(s); ok {
		return Float
	}
	if _, ok := parseDateTime(s); ok {
		return DateTime
	}
	switch strings.ToLower(s) {
	case "true", "false":
		return Bool
	}
	return String
}

// Widen returns the most specific type that can represent both operands.
// This is the lattice walked by prefix type inference: a column starts as
// the type of its first non-empty value and widens as conflicts appear;
// widening to String is the "revert the type via ALTER TABLE" step of §3.1.
func Widen(a, b Type) Type {
	if a == b {
		return a
	}
	if a == Null {
		return b
	}
	if b == Null {
		return a
	}
	if (a == Int && b == Float) || (a == Float && b == Int) {
		return Float
	}
	if (a == Int && b == Bool) || (a == Bool && b == Int) {
		return Int
	}
	return String
}

// ParseAs converts raw field text into a value of the given column type.
// Empty text becomes a typed NULL. A conversion failure reports false so
// ingest can widen the column and retry (the exception path of §3.1).
func ParseAs(raw string, t Type) (Value, bool) {
	s := strings.TrimSpace(raw)
	if s == "" {
		return TypedNull(t), true
	}
	if t == String {
		// Preserve the raw text, not the trimmed form: relaxed schemas keep
		// data as-is and let users clean it with SQL.
		return NewString(raw), true
	}
	v, err := Cast(NewString(s), t)
	if err != nil {
		return Value{}, false
	}
	return v, true
}
