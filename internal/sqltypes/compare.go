package sqltypes

import (
	"fmt"
	"strings"
)

// Tristate is the result of a SQL predicate under three-valued logic.
type Tristate uint8

// The three truth values of SQL predicates.
const (
	Unknown Tristate = iota
	False
	True
)

// Not negates a tristate; NOT UNKNOWN is UNKNOWN.
func (t Tristate) Not() Tristate {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// And combines two tristates with SQL AND semantics.
func (t Tristate) And(o Tristate) Tristate {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or combines two tristates with SQL OR semantics.
func (t Tristate) Or(o Tristate) Tristate {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// TristateOf converts a Go bool to a Tristate.
func TristateOf(b bool) Tristate {
	if b {
		return True
	}
	return False
}

// Compare orders two values. It returns (cmp, ok): ok is false when either
// side is NULL (SQL comparison yields UNKNOWN) or the values are not
// comparable. Numeric types compare numerically across Int/Float/Bool;
// strings compare case-sensitively; datetimes chronologically. Mixed
// string/number comparisons attempt a numeric interpretation of the string,
// mirroring the permissive coercions the relaxed-schema workloads rely on.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.typ == Int && b.typ == Int {
			switch {
			case a.i < b.i:
				return -1, true
			case a.i > b.i:
				return 1, true
			}
			return 0, true
		}
		return cmpFloat(a.Float(), b.Float()), true
	}
	switch {
	case a.typ == String && b.typ == String:
		return strings.Compare(a.s, b.s), true
	case a.typ == DateTime && b.typ == DateTime:
		switch {
		case a.t.Before(b.t):
			return -1, true
		case a.t.After(b.t):
			return 1, true
		}
		return 0, true
	case a.typ == String && b.IsNumeric():
		if f, ok := parseNumeric(a.s); ok {
			return cmpFloat(f, b.Float()), true
		}
		return 0, false
	case a.IsNumeric() && b.typ == String:
		if f, ok := parseNumeric(b.s); ok {
			return cmpFloat(a.Float(), f), true
		}
		return 0, false
	case a.typ == String && b.typ == DateTime:
		if t, ok := parseDateTime(a.s); ok {
			return Compare(NewDateTime(t), b)
		}
		return 0, false
	case a.typ == DateTime && b.typ == String:
		if t, ok := parseDateTime(b.s); ok {
			return Compare(a, NewDateTime(t))
		}
		return 0, false
	}
	return 0, false
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal is Compare specialized to equality under three-valued logic.
func Equal(a, b Value) Tristate {
	c, ok := Compare(a, b)
	if !ok {
		return Unknown
	}
	return TristateOf(c == 0)
}

// SortCompare is a total order for ORDER BY and index organization: NULLs
// sort first (SQL Server semantics), then values by Compare; incomparable
// cross-type values order by type id so sorting is always well defined.
func SortCompare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if c, ok := Compare(a, b); ok {
		return c
	}
	at, bt := a.typ, b.typ
	if at != bt {
		if at < bt {
			return -1
		}
		return 1
	}
	return strings.Compare(a.String(), b.String())
}

// Key returns a string that is equal for values that SortCompare as equal;
// it is used for hash joins, DISTINCT, and GROUP BY keys.
func (v Value) Key() string {
	if v.IsNull() {
		return "\x00N"
	}
	switch v.typ {
	case Int, Bool:
		return "\x01" + fmt.Sprintf("%024.6f", float64(v.i))
	case Float:
		return "\x01" + fmt.Sprintf("%024.6f", v.f)
	case DateTime:
		return "\x02" + v.t.Format("20060102150405.000")
	default:
		return "\x03" + v.s
	}
}
