package sqltypes

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCastBasics(t *testing.T) {
	v, err := Cast(NewString("42"), Int)
	if err != nil || v.Int() != 42 {
		t.Fatalf("cast '42' to INT: %v %v", v, err)
	}
	v, err = Cast(NewFloat(3.9), Int)
	if err != nil || v.Int() != 3 {
		t.Fatalf("cast 3.9 to INT should truncate: %v %v", v, err)
	}
	v, err = Cast(NewFloat(-3.9), Int)
	if err != nil || v.Int() != -3 {
		t.Fatalf("cast -3.9 to INT should truncate toward zero: %v %v", v, err)
	}
	v, err = Cast(NewInt(7), Float)
	if err != nil || v.Float() != 7.0 {
		t.Fatalf("cast 7 to FLOAT: %v %v", v, err)
	}
	v, err = Cast(NewInt(0), Bool)
	if err != nil || v.Bool() {
		t.Fatalf("cast 0 to BIT: %v %v", v, err)
	}
	v, err = Cast(NewString("2015-06-01"), DateTime)
	if err != nil || v.Time().Year() != 2015 {
		t.Fatalf("cast date string: %v %v", v, err)
	}
	v, err = Cast(NewFloat(1.5), String)
	if err != nil || v.Str() != "1.5" {
		t.Fatalf("cast to VARCHAR: %v %v", v, err)
	}
}

func TestCastNullPropagates(t *testing.T) {
	v, err := Cast(NullValue(), Int)
	if err != nil || !v.IsNull() || v.Type() != Int {
		t.Fatalf("CAST(NULL AS INT) = %v, %v", v, err)
	}
}

func TestCastFailures(t *testing.T) {
	if _, err := Cast(NewString("abc"), Int); err == nil {
		t.Error("cast 'abc' to INT should fail")
	}
	if _, err := Cast(NewString("3.7"), Int); err == nil {
		t.Error("cast '3.7' to INT should fail (non-integral)")
	}
	if _, err := Cast(NewString("not a date"), DateTime); err == nil {
		t.Error("cast 'not a date' to DATETIME should fail")
	}
	if _, err := Cast(NewString("maybe"), Bool); err == nil {
		t.Error("cast 'maybe' to BIT should fail")
	}
}

func TestParseTypeName(t *testing.T) {
	cases := map[string]Type{
		"int": Int, "INTEGER": Int, "bigint": Int,
		"float": Float, "DECIMAL(10,2)": Float, "real": Float,
		"varchar(100)": String, "NVARCHAR(MAX)": String, "text": String,
		"datetime": DateTime, "DATE": DateTime,
		"bit": Bool,
	}
	for name, want := range cases {
		got, err := ParseTypeName(name)
		if err != nil || got != want {
			t.Errorf("ParseTypeName(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseTypeName("blob"); err == nil {
		t.Error("unknown type should error")
	}
}

func TestInferValueType(t *testing.T) {
	cases := map[string]Type{
		"42":                  Int,
		"-17":                 Int,
		"3.14":                Float,
		"1e5":                 Float,
		"2014-05-02":          DateTime,
		"2014-05-02 10:00:00": DateTime,
		"true":                Bool,
		"FALSE":               Bool,
		"hello":               String,
		"":                    Null,
		"  ":                  Null,
		"NaN-ish text":        String,
	}
	for raw, want := range cases {
		if got := InferValueType(raw); got != want {
			t.Errorf("InferValueType(%q) = %v, want %v", raw, got, want)
		}
	}
}

func TestWidenLattice(t *testing.T) {
	cases := []struct{ a, b, want Type }{
		{Int, Int, Int},
		{Int, Float, Float},
		{Float, Int, Float},
		{Int, Bool, Int},
		{Null, Int, Int},
		{DateTime, Null, DateTime},
		{Int, String, String},
		{DateTime, Float, String},
		{Bool, DateTime, String},
	}
	for _, c := range cases {
		if got := Widen(c.a, c.b); got != c.want {
			t.Errorf("Widen(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestWidenCommutative(t *testing.T) {
	all := []Type{Null, Bool, Int, Float, DateTime, String}
	for _, a := range all {
		for _, b := range all {
			if Widen(a, b) != Widen(b, a) {
				t.Errorf("Widen not commutative for %v,%v", a, b)
			}
		}
	}
}

func TestParseAs(t *testing.T) {
	v, ok := ParseAs("12", Int)
	if !ok || v.Int() != 12 {
		t.Fatalf("ParseAs int: %v %v", v, ok)
	}
	v, ok = ParseAs("", Float)
	if !ok || !v.IsNull() || v.Type() != Float {
		t.Fatalf("ParseAs empty should be typed NULL: %v %v", v, ok)
	}
	if _, ok = ParseAs("xyz", Int); ok {
		t.Fatal("ParseAs should report failure for non-int text")
	}
	v, ok = ParseAs("  spacey  ", String)
	if !ok || v.Str() != "  spacey  " {
		t.Fatalf("ParseAs string should preserve raw text: %q", v.Str())
	}
}

func TestQuickInferThenParseRoundTrips(t *testing.T) {
	// Property: whatever type we infer for a non-empty string, parsing the
	// string as that type must succeed.
	f := func(raw string) bool {
		typ := InferValueType(raw)
		if typ == Null {
			return true
		}
		_, ok := ParseAs(raw, typ)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCastIntFloatRoundTrip(t *testing.T) {
	f := func(i int32) bool {
		v, err := Cast(NewInt(int64(i)), Float)
		if err != nil {
			return false
		}
		back, err := Cast(v, Int)
		return err == nil && back.Int() == int64(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDateTimeLayouts(t *testing.T) {
	for _, s := range []string{
		"2014-05-02T10:00:00Z", "2014-05-02 10:00:00", "2014-05-02",
		"05/02/2014", "2014/05/02", "05/02/2014 10:00:00",
	} {
		got, ok := parseDateTime(s)
		if !ok {
			t.Errorf("parseDateTime(%q) failed", s)
			continue
		}
		if got.Year() != 2014 || got.Month() != time.May || got.Day() != 2 {
			t.Errorf("parseDateTime(%q) = %v", s, got)
		}
	}
}
