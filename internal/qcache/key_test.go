package qcache

import (
	"testing"

	"sqlshare/internal/plan"
	"sqlshare/internal/sqlparser"
)

func TestKeyRoundTrip(t *testing.T) {
	vv := VersionVector{
		{Name: "bob.rain", Version: 7},
		{Name: "alice.water", Version: 3},
	}
	key := ResultKey("alice", "SELECT * FROM water", 500, vv)
	kind, user, sql, maxRows, got, err := DecodeKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindResult || user != "alice" || sql != "SELECT * FROM water" || maxRows != 500 {
		t.Fatalf("decoded (%c, %q, %q, %d)", kind, user, sql, maxRows)
	}
	// Vectors come back name-sorted regardless of input order.
	if len(got) != 2 || got[0].Name != "alice.water" || got[0].Version != 3 ||
		got[1].Name != "bob.rain" || got[1].Version != 7 {
		t.Fatalf("decoded vector %v", got)
	}
}

func TestPlanKeyUsesTemplateDigest(t *testing.T) {
	const sql = "SELECT station FROM water WHERE val > 1.5"
	key := PlanKey("alice", sql, 0, nil)
	_, _, component, _, _, err := DecodeKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if want := plan.DigestTemplate(sql); component != want {
		t.Fatalf("plan key sql component = %q, want DigestTemplate %q", component, want)
	}
	// Queries differing only in constants share a template digest — and so
	// share a compiled-plan key; their RESULT keys must still differ.
	const sql2 = "SELECT station FROM water WHERE val > 99.9"
	if plan.DigestTemplate(sql) == plan.DigestTemplate(sql2) {
		if ResultKey("alice", sql, 0, nil) == ResultKey("alice", sql2, 0, nil) {
			t.Fatal("result keys collide across different constants")
		}
	}
}

func TestDecodeKeyRejectsMalformed(t *testing.T) {
	vv := VersionVector{{Name: "a.b", Version: 1}}
	good := ResultKey("u", "SELECT 1", 0, vv)
	bad := []string{
		"",                     // empty
		"x" + good[1:],         // unknown kind
		good[:len(good)-1],     // truncated
		"r5:aaaaa",             // too few parts
		"r1:u1:03:sql3:a.b",    // odd vector remainder
		"r1:u1:x3:sql",         // non-numeric maxRows
		"r1:u1:03:sql3:a.b1:x", // non-numeric version
		"r9999:u",              // length prefix past end
		"rnope",                // no length prefix
	}
	for _, k := range bad {
		if _, _, _, _, _, err := DecodeKey(k); err == nil {
			t.Errorf("DecodeKey(%q) accepted malformed key", k)
		}
	}
}

// TestNoCollisionsOnSeededCorpus enumerates a grid of distinct
// (user, sql, maxRows, versions) tuples — including pairs engineered to
// collide under naive concatenation, like ("ab","c") vs ("a","bc") — and
// checks every tuple maps to a unique key.
func TestNoCollisionsOnSeededCorpus(t *testing.T) {
	users := []string{"", "a", "ab", "alice", "alice.w", "b:c", "1:x"}
	sqls := []string{
		"SELECT * FROM water",
		"SELECT *  FROM water", // whitespace is significant in result keys
		"SELECT * FROM water ", // trailing space
		"select * from water",
		"3:a.b1:", // looks like an encoded part
		"",
	}
	limits := []int{0, 1, 500}
	vectors := []VersionVector{
		nil,
		{{Name: "alice.water", Version: 1}},
		{{Name: "alice.water", Version: 2}},
		{{Name: "alice.water", Version: 12}}, // vs (1,2) split below
		{{Name: "alice.water", Version: 1}, {Name: "bob.rain", Version: 2}},
		{{Name: "alice.water1", Version: 1}}, // name/version boundary probe
	}
	seen := map[string]string{}
	for _, u := range users {
		for _, s := range sqls {
			for _, l := range limits {
				for vi, vv := range vectors {
					id := u + "\x00" + s + "\x00" + string(rune('0'+l%10)) + "\x00" + string(rune('0'+vi))
					key := ResultKey(u, s, l, vv)
					if prev, dup := seen[key]; dup {
						t.Fatalf("key collision between tuples %q and %q: %q", prev, id, key)
					}
					seen[key] = id
				}
			}
		}
	}
	if len(seen) != len(users)*len(sqls)*len(limits)*len(vectors) {
		t.Fatalf("expected %d unique keys, got %d", len(users)*len(sqls)*len(limits)*len(vectors), len(seen))
	}
}

// TestCanonicalSQLIsAFixpoint pins the canonicalization the catalog feeds
// into ResultKey: re-parsing a parser-printed query and printing it again
// must yield the same text, or equal queries would miss each other's cache
// entries.
func TestCanonicalSQLIsAFixpoint(t *testing.T) {
	for _, raw := range []string{
		"select   station , val from water where val > 1 order by val",
		"SELECT a.station FROM water a JOIN water b ON a.station = b.station",
		"SELECT station, COUNT(*) AS n FROM water GROUP BY station HAVING COUNT(*) > 1",
		"SELECT * FROM (SELECT station FROM water) sub",
		"SELECT station FROM water UNION ALL SELECT station FROM water",
		"SELECT TOP 2 station FROM water ORDER BY val DESC",
	} {
		q, err := sqlparser.Parse(raw)
		if err != nil {
			t.Fatalf("parse %q: %v", raw, err)
		}
		canonical := q.SQL()
		q2, err := sqlparser.Parse(canonical)
		if err != nil {
			t.Fatalf("reparse %q: %v", canonical, err)
		}
		if again := q2.SQL(); again != canonical {
			t.Errorf("canonical SQL not a fixpoint:\n first %q\nsecond %q", canonical, again)
		}
		// Different raw spellings therefore converge on one plan key: the
		// digest is taken over the canonical text, and the canonical text
		// is a fixpoint.
		if PlanKey("u", canonical, 0, nil) != PlanKey("u", q2.SQL(), 0, nil) {
			t.Errorf("plan keys diverge across reparse of %q", raw)
		}
	}
}

// FuzzCacheKey fuzzes the encode/decode round-trip over adversarial SQL
// text, user names and version vectors: DecodeKey(EncodeKey(x)) == x, and
// distinct (user, versions) pairs never share a key.
func FuzzCacheKey(f *testing.F) {
	f.Add("alice", "SELECT * FROM water", 0, "alice.water", uint64(1), uint64(2))
	f.Add("", "", -1, "", uint64(0), uint64(0))
	f.Add("b:c", "3:a.b1:", 42, "x:y", uint64(18446744073709551615), uint64(7))
	f.Add("u\x00v", "SELECT '\xff'", 10, "owner.name", uint64(12), uint64(3))
	f.Fuzz(func(t *testing.T, user, sql string, maxRows int, name string, v1, v2 uint64) {
		vv := VersionVector{
			{Name: name, Version: v1},
			{Name: name + "2", Version: v2},
		}
		key := ResultKey(user, sql, maxRows, vv)
		kind, gotUser, gotSQL, gotRows, gotVV, err := DecodeKey(key)
		if err != nil {
			t.Fatalf("DecodeKey(ResultKey(...)): %v", err)
		}
		if kind != KindResult || gotUser != user || gotSQL != sql || gotRows != maxRows {
			t.Fatalf("round-trip mismatch: (%c, %q, %q, %d) != (%q, %q, %d)",
				kind, gotUser, gotSQL, gotRows, user, sql, maxRows)
		}
		want := vv.sorted()
		if len(gotVV) != len(want) {
			t.Fatalf("vector length %d != %d", len(gotVV), len(want))
		}
		for i := range want {
			if gotVV[i] != want[i] {
				t.Fatalf("vector[%d] = %v, want %v", i, gotVV[i], want[i])
			}
		}
		// Distinct version vectors (same user/sql) must produce distinct
		// keys — this is the fence.
		bumped := VersionVector{
			{Name: name, Version: v1 + 1},
			{Name: name + "2", Version: v2},
		}
		if ResultKey(user, sql, maxRows, bumped) == key {
			t.Fatal("version bump did not change the key")
		}
		// And distinct users must never share a key.
		if ResultKey(user+"x", sql, maxRows, vv) == key {
			t.Fatal("different users share a key")
		}
	})
}
