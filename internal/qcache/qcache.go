// Package qcache is the version-fenced query result & plan cache. The
// SQLShare workload is highly repetitive — most executions are re-runs of a
// small number of templates over slowly-changing datasets (§5.3–5.4) — so a
// result cache pays off as soon as staleness is provably impossible.
// Correctness comes from fencing, not invalidation: every key embeds the
// version vector of the query's transitive dataset dependency closure,
// captured under the same catalog read lock the execution runs under. A
// mutation anywhere upstream bumps a version, the next probe computes a
// different key, and the stale entry simply becomes unreachable until the
// LRU reclaims it. There is no invalidation race to lose, because there is
// no invalidation.
package qcache

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"sqlshare/internal/engine"
	"sqlshare/internal/obs"
	"sqlshare/internal/plan"
)

// ResultEntry is one cached query outcome: the result set plus the plan
// artifacts the query log wants, so a hit can populate a log entry without
// recompiling. Plan is a trace-stripped copy (traces belong to the
// execution that filled the entry, not to later hits). Entries are shared
// between hits and must never be mutated by callers — the same no-mutation
// invariant predicate-free scans already place on shared table slices.
type ResultEntry struct {
	Result *engine.Result
	Plan   *plan.QueryPlan
	Meta   *plan.Metadata
	Digest string
}

// numShards bounds lock contention: keys hash onto independent LRU shards.
const numShards = 16

type entry struct {
	key  string
	val  any
	size int64
	born time.Time
}

type shard struct {
	mu  sync.Mutex
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

// Cache is a memory-budgeted, sharded LRU over result sets and compiled
// plans. All methods are safe for concurrent use.
type Cache struct {
	shards   [numShards]*shard
	maxBytes int64
	maxEntry int64
	ttl      time.Duration
	// now is the TTL clock; replaced by tests.
	now func() time.Time

	bytes        atomic.Int64
	resultHits   atomic.Int64
	resultMisses atomic.Int64
	planHits     atomic.Int64
	planMisses   atomic.Int64
	evictions    atomic.Int64
	stores       atomic.Int64

	evictionsCtr atomic.Pointer[obs.Counter]
	bytesGauge   atomic.Pointer[obs.Gauge]
}

// New builds a cache holding at most maxBytes of estimated entry size.
// ttl > 0 additionally expires entries by age — a safety valve for
// deployments that want bounded staleness of the fencing metadata itself;
// version fencing alone already guarantees result correctness.
func New(maxBytes int64, ttl time.Duration) *Cache {
	c := &Cache{maxBytes: maxBytes, maxEntry: maxBytes / 8, ttl: ttl, now: time.Now}
	if c.maxEntry <= 0 {
		c.maxEntry = maxBytes
	}
	for i := range c.shards {
		c.shards[i] = &shard{m: map[string]*list.Element{}, lru: list.New()}
	}
	return c
}

// SetMetrics attaches the eviction counter and byte gauge of the platform
// bundle; hit/miss counting stays with the catalog query path, which knows
// whether a probe was for a result or a plan. Passing nils detaches.
func (c *Cache) SetMetrics(evictions *obs.Counter, bytes *obs.Gauge) {
	c.evictionsCtr.Store(evictions)
	c.bytesGauge.Store(bytes)
	c.publishBytes()
}

func (c *Cache) publishBytes() {
	if g := c.bytesGauge.Load(); g != nil {
		g.Set(c.bytes.Load())
	}
}

func (c *Cache) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%numShards]
}

// GetResult probes the result cache.
func (c *Cache) GetResult(key string) *ResultEntry {
	if ent, ok := c.get(key).(*ResultEntry); ok {
		c.resultHits.Add(1)
		return ent
	}
	c.resultMisses.Add(1)
	return nil
}

// PutResult stores a result entry under its version-fenced key.
func (c *Cache) PutResult(key string, ent *ResultEntry) {
	c.put(key, ent, resultSize(ent))
}

// GetPlan probes the compiled-plan cache.
func (c *Cache) GetPlan(key string) *engine.Plan {
	if p, ok := c.get(key).(*engine.Plan); ok {
		c.planHits.Add(1)
		return p
	}
	c.planMisses.Add(1)
	return nil
}

// PutPlan stores a compiled plan under its version-fenced key.
func (c *Cache) PutPlan(key string, p *engine.Plan) {
	c.put(key, p, planSize(p))
}

func (c *Cache) get(key string) any {
	sh := c.shardFor(key)
	sh.mu.Lock()
	el, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		return nil
	}
	e := el.Value.(*entry)
	if c.ttl > 0 && c.now().Sub(e.born) > c.ttl {
		c.removeLocked(sh, el, true)
		sh.mu.Unlock()
		c.publishBytes()
		return nil
	}
	sh.lru.MoveToFront(el)
	sh.mu.Unlock()
	return e.val
}

func (c *Cache) put(key string, val any, size int64) {
	if size > c.maxEntry {
		// One oversized result must not wipe the rest of the budget.
		return
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		old := el.Value.(*entry)
		c.bytes.Add(size - old.size)
		old.val, old.size, old.born = val, size, c.now()
		sh.lru.MoveToFront(el)
	} else {
		el := sh.lru.PushFront(&entry{key: key, val: val, size: size, born: c.now()})
		sh.m[key] = el
		c.bytes.Add(size)
		c.stores.Add(1)
		// Reclaim cold entries of this shard while the global budget is
		// exceeded — never the entry just inserted. Other shards converge
		// as their own inserts arrive; overshoot is bounded by maxEntry.
		for c.bytes.Load() > c.maxBytes {
			back := sh.lru.Back()
			if back == nil || back == el {
				break
			}
			c.removeLocked(sh, back, true)
		}
	}
	sh.mu.Unlock()
	c.publishBytes()
}

// removeLocked unlinks el from sh; evicted entries count toward the
// eviction metrics (TTL expiries are evictions too).
func (c *Cache) removeLocked(sh *shard, el *list.Element, evicted bool) {
	e := sh.lru.Remove(el).(*entry)
	delete(sh.m, e.key)
	c.bytes.Add(-e.size)
	if evicted {
		c.evictions.Add(1)
		if ctr := c.evictionsCtr.Load(); ctr != nil {
			ctr.Inc()
		}
	}
}

// Flush discards every entry (the DELETE /api/admin/cache operation).
// Counters are cumulative and survive the flush.
func (c *Cache) Flush() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		for _, el := range sh.m {
			c.bytes.Add(-el.Value.(*entry).size)
		}
		sh.m = map[string]*list.Element{}
		sh.lru.Init()
		sh.mu.Unlock()
	}
	c.publishBytes()
}

// Stats is the cache census served at GET /api/admin/cache.
type Stats struct {
	ResultHits   int64   `json:"resultHits"`
	ResultMisses int64   `json:"resultMisses"`
	PlanHits     int64   `json:"planHits"`
	PlanMisses   int64   `json:"planMisses"`
	Evictions    int64   `json:"evictions"`
	Stores       int64   `json:"stores"`
	Entries      int     `json:"entries"`
	Bytes        int64   `json:"bytes"`
	MaxBytes     int64   `json:"maxBytes"`
	TTLSeconds   float64 `json:"ttlSeconds"`
	// HitRate is result hits over result probes (0 when unprobed).
	HitRate float64 `json:"hitRate"`
}

// Stats snapshots the cumulative counters and current occupancy.
func (c *Cache) Stats() Stats {
	s := Stats{
		ResultHits:   c.resultHits.Load(),
		ResultMisses: c.resultMisses.Load(),
		PlanHits:     c.planHits.Load(),
		PlanMisses:   c.planMisses.Load(),
		Evictions:    c.evictions.Load(),
		Stores:       c.stores.Load(),
		Bytes:        c.bytes.Load(),
		MaxBytes:     c.maxBytes,
		TTLSeconds:   c.ttl.Seconds(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		s.Entries += len(sh.m)
		sh.mu.Unlock()
	}
	if probes := s.ResultHits + s.ResultMisses; probes > 0 {
		s.HitRate = float64(s.ResultHits) / float64(probes)
	}
	return s
}

// resultSize estimates the bytes a result entry retains: every cell's
// value size plus per-row and per-column overhead.
func resultSize(ent *ResultEntry) int64 {
	n := int64(512)
	if ent.Result != nil {
		for _, col := range ent.Result.Cols {
			n += int64(len(col.Name)+len(col.Binding)+len(col.Source)) + 24
		}
		for _, row := range ent.Result.Rows {
			n += 24
			for _, v := range row {
				n += int64(v.SizeBytes())
			}
		}
	}
	if ent.Meta != nil {
		n += int64(len(ent.Meta.Template))
	}
	return n
}

// planSize is a nominal per-operator estimate: compiled plans hold operator
// nodes and expressions, not data, so a flat charge per node suffices for
// budgeting.
func planSize(p *engine.Plan) int64 {
	n := int64(2048)
	var walk func(engine.Node)
	walk = func(nd engine.Node) {
		n += 512
		for _, ch := range nd.Children() {
			walk(ch)
		}
	}
	if p != nil && p.Root != nil {
		walk(p.Root)
	}
	return n
}
