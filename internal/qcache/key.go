package qcache

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sqlshare/internal/plan"
)

// Cache keys fence every dimension that can change what a query returns:
// the querying user (name resolution and row visibility are per-user), the
// canonical SQL text, the row-limit setting (a limit abort is part of the
// observable outcome), and the version vector of the transitive dataset
// dependency closure. The encoding is injective — every part is
// length-prefixed — so two distinct (user, sql, maxRows, versions) tuples
// can never produce the same key string, no matter what characters the
// parts contain. DecodeKey is the exact inverse; the FuzzCacheKey target
// pins the round-trip down.

// DatasetVersion pairs a dataset full name with its monotonic content
// version (see catalog.DatasetVersion).
type DatasetVersion struct {
	Name    string
	Version uint64
}

// VersionVector is the version of every dataset in a query's transitive
// dependency closure — the ownership-chain semantics of §3.4 applied to
// caching: a result is valid only while *all* upstream datasets are
// unchanged.
type VersionVector []DatasetVersion

// sorted returns a name-ordered copy so the key encoding is canonical
// regardless of closure-walk order.
func (vv VersionVector) sorted() VersionVector {
	out := append(VersionVector(nil), vv...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Key kinds: result keys carry the full canonical SQL (they must never
// collide); plan keys carry its plan.DigestTemplate hash (the template-hash
// keying of §5.4's repeated-query observation).
const (
	KindResult = 'r'
	KindPlan   = 'p'
)

// ResultKey keys the result-set cache.
func ResultKey(user, canonicalSQL string, maxRows int, vv VersionVector) string {
	return encodeKey(KindResult, user, canonicalSQL, maxRows, vv)
}

// PlanKey keys the compiled-plan cache. The SQL travels as its
// plan.DigestTemplate hash — the same normalization the workload-insights
// digests use — so the key stays short while sharing the catalog's notion
// of query identity.
func PlanKey(user, canonicalSQL string, maxRows int, vv VersionVector) string {
	return encodeKey(KindPlan, user, plan.DigestTemplate(canonicalSQL), maxRows, vv)
}

func encodeKey(kind byte, user, sql string, maxRows int, vv VersionVector) string {
	var b strings.Builder
	b.WriteByte(kind)
	writePart(&b, user)
	writePart(&b, strconv.Itoa(maxRows))
	writePart(&b, sql)
	for _, d := range vv.sorted() {
		writePart(&b, d.Name)
		writePart(&b, strconv.FormatUint(d.Version, 10))
	}
	return b.String()
}

// writePart appends one length-prefixed part ("<len>:<bytes>").
func writePart(b *strings.Builder, p string) {
	b.WriteString(strconv.Itoa(len(p)))
	b.WriteByte(':')
	b.WriteString(p)
}

// DecodeKey inverts the key encoding. The sql component of a KindPlan key
// is the digest, not the SQL text. Version vectors come back name-sorted
// (the canonical order keys are built in).
func DecodeKey(key string) (kind byte, user, sql string, maxRows int, vv VersionVector, err error) {
	if key == "" {
		return 0, "", "", 0, nil, fmt.Errorf("qcache: empty key")
	}
	kind = key[0]
	if kind != KindResult && kind != KindPlan {
		return 0, "", "", 0, nil, fmt.Errorf("qcache: unknown key kind %q", kind)
	}
	parts, perr := splitParts(key[1:])
	if perr != nil {
		return 0, "", "", 0, nil, perr
	}
	if len(parts) < 3 || (len(parts)-3)%2 != 0 {
		return 0, "", "", 0, nil, fmt.Errorf("qcache: malformed key: %d parts", len(parts))
	}
	user = parts[0]
	maxRows, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, "", "", 0, nil, fmt.Errorf("qcache: malformed maxRows part: %w", err)
	}
	sql = parts[2]
	for i := 3; i < len(parts); i += 2 {
		v, verr := strconv.ParseUint(parts[i+1], 10, 64)
		if verr != nil {
			return 0, "", "", 0, nil, fmt.Errorf("qcache: malformed version part: %w", verr)
		}
		vv = append(vv, DatasetVersion{Name: parts[i], Version: v})
	}
	return kind, user, sql, maxRows, vv, nil
}

func splitParts(s string) ([]string, error) {
	var out []string
	for len(s) > 0 {
		i := strings.IndexByte(s, ':')
		if i <= 0 {
			return nil, fmt.Errorf("qcache: malformed key: missing length prefix")
		}
		n, err := strconv.Atoi(s[:i])
		if err != nil || n < 0 || i+1+n > len(s) {
			return nil, fmt.Errorf("qcache: malformed key: bad length %q", s[:i])
		}
		out = append(out, s[i+1:i+1+n])
		s = s[i+1+n:]
	}
	return out, nil
}
