package qcache

import (
	"fmt"
	"testing"
	"time"

	"sqlshare/internal/engine"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// fakeResult builds a result entry whose estimated size scales with rows.
func fakeResult(cell string, rows int) *ResultEntry {
	res := &engine.Result{Cols: []engine.ColMeta{{Name: "c"}}}
	for i := 0; i < rows; i++ {
		res.Rows = append(res.Rows, storage.Row{sqltypes.NewString(cell)})
	}
	return &ResultEntry{Result: res}
}

// sameShardKeys returns n distinct keys that all hash onto one shard, so
// LRU-order assertions are deterministic despite sharding.
func sameShardKeys(c *Cache, n int) []string {
	want := c.shardFor("seed")
	keys := []string{"seed"}
	for i := 0; len(keys) < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shardFor(k) == want {
			keys = append(keys, k)
		}
	}
	return keys
}

func TestPutGetRoundTrip(t *testing.T) {
	c := New(1<<20, 0)
	ent := fakeResult("v", 3)
	c.PutResult("a", ent)
	if got := c.GetResult("a"); got != ent {
		t.Fatalf("GetResult = %p, want stored entry %p", got, ent)
	}
	if got := c.GetResult("missing"); got != nil {
		t.Fatalf("GetResult(missing) = %v, want nil", got)
	}
	st := c.Stats()
	if st.ResultHits != 1 || st.ResultMisses != 1 || st.Stores != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Bytes <= 0 || st.Bytes != resultSize(ent) {
		t.Errorf("bytes = %d, want %d", st.Bytes, resultSize(ent))
	}
	if st.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", st.HitRate)
	}
}

func TestResultAndPlanNamespacesAreDisjoint(t *testing.T) {
	c := New(1<<20, 0)
	p := &engine.Plan{}
	c.PutPlan("k", p)
	// The same key string holds a plan; a result probe must miss (and not
	// panic on the type), and vice versa.
	if got := c.GetResult("k"); got != nil {
		t.Fatalf("result probe over plan entry = %v, want nil", got)
	}
	if got := c.GetPlan("k"); got != p {
		t.Fatalf("plan probe = %v, want stored plan", got)
	}
	c.PutResult("r", fakeResult("x", 1))
	if got := c.GetPlan("r"); got != nil {
		t.Fatalf("plan probe over result entry = %v, want nil", got)
	}
	// In production the kind byte in ResultKey/PlanKey keeps the key
	// strings themselves disjoint too.
	vv := VersionVector{{Name: "a.b", Version: 1}}
	if ResultKey("u", "SELECT 1", 0, vv) == PlanKey("u", "SELECT 1", 0, vv) {
		t.Error("ResultKey and PlanKey collide for identical inputs")
	}
}

func TestLRUEvictionUnderBudget(t *testing.T) {
	c := New(1<<20, 0)
	keys := sameShardKeys(c, 4)
	ent := fakeResult("payload", 10)
	per := resultSize(ent)
	// Budget fits exactly 3 entries of this size; maxEntry must still
	// admit one (maxBytes/8 > per requires maxBytes >= 8*per).
	c.maxBytes = per * 3
	c.maxEntry = per + 1

	for _, k := range keys[:3] {
		c.PutResult(k, fakeResult("payload", 10))
	}
	// Touch keys[0] so keys[1] becomes the coldest.
	if c.GetResult(keys[0]) == nil {
		t.Fatal("warm probe missed")
	}
	c.PutResult(keys[3], fakeResult("payload", 10))

	if c.GetResult(keys[1]) != nil {
		t.Error("coldest entry survived past budget")
	}
	for _, k := range []string{keys[0], keys[2], keys[3]} {
		if c.GetResult(k) == nil {
			t.Errorf("entry %q evicted although it was not coldest", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > c.maxBytes {
		t.Errorf("bytes %d exceed budget %d after eviction", st.Bytes, c.maxBytes)
	}
}

func TestReplaceSameKeyAdjustsBytes(t *testing.T) {
	c := New(1<<20, 0)
	small, big := fakeResult("x", 1), fakeResult("a-much-longer-cell-value", 50)
	c.PutResult("k", small)
	c.PutResult("k", big)
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != resultSize(big) {
		t.Errorf("after replace: entries=%d bytes=%d, want 1/%d", st.Entries, st.Bytes, resultSize(big))
	}
	if got := c.GetResult("k"); got != big {
		t.Error("replace did not take effect")
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := New(1024, 0) // maxEntry = 128
	c.PutResult("huge", fakeResult("0123456789", 100))
	if c.GetResult("huge") != nil {
		t.Error("oversized entry was stored")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 || st.Stores != 0 {
		t.Errorf("stats after rejected store = %+v", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(1<<20, time.Minute)
	clock := time.Unix(1700000000, 0)
	c.now = func() time.Time { return clock }
	c.PutResult("k", fakeResult("v", 1))
	if c.GetResult("k") == nil {
		t.Fatal("fresh entry missed")
	}
	clock = clock.Add(2 * time.Minute)
	if c.GetResult("k") != nil {
		t.Fatal("expired entry served")
	}
	st := c.Stats()
	if st.Entries != 0 {
		t.Errorf("expired entry still resident: %+v", st)
	}
	if st.Evictions != 1 {
		t.Errorf("TTL expiry should count as eviction, stats = %+v", st)
	}
}

func TestFlushKeepsCounters(t *testing.T) {
	c := New(1<<20, 0)
	c.PutResult("a", fakeResult("v", 1))
	c.GetResult("a")
	c.GetResult("b")
	c.Flush()
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("flush left residue: %+v", st)
	}
	if st.ResultHits != 1 || st.ResultMisses != 1 || st.Stores != 1 {
		t.Errorf("flush reset cumulative counters: %+v", st)
	}
	if c.GetResult("a") != nil {
		t.Error("entry survived flush")
	}
}
