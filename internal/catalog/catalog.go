// Package catalog implements the SQLShare data model (paper §3.2, Fig 2):
// every dataset is a named view with metadata and a cached preview; uploads
// create a hidden physical base table plus a trivial wrapper view; derived
// datasets are views over other datasets; datasets are read-only and are
// "modified" only by rewriting their view definition (UNION-append) or by
// materializing a snapshot. The catalog also owns users, permissions with
// ownership-chain semantics, and the query log that is the paper's corpus.
package catalog

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlshare/internal/engine"
	"sqlshare/internal/obs"
	"sqlshare/internal/ops"
	"sqlshare/internal/qcache"
	"sqlshare/internal/sqlparser"
	"sqlshare/internal/storage"
	"sqlshare/internal/wal"
)

// basePrefix namespaces hidden physical base tables. Users never reference
// these directly; only wrapper views do.
const basePrefix = "~base:"

// PreviewRows is how many rows of each dataset are cached for display.
const PreviewRows = 100

// Visibility is a dataset's sharing state.
type Visibility uint8

// Visibility states: datasets are private by default (§5.2).
const (
	Private Visibility = iota
	Public
)

// User is a registered SQLShare user.
type User struct {
	Name    string
	Email   string
	Created time.Time
}

// Meta is the user-editable dataset metadata: a short name is the dataset
// identity; description and tags support search and organization.
type Meta struct {
	Description string
	Tags        []string
}

// Dataset is the unit of the SQLShare data model: a 3-tuple of (sql,
// metadata, preview) per §3.2.
type Dataset struct {
	// Owner and Name identify the dataset; FullName is "owner.name".
	Owner string
	Name  string
	// SQL is the view definition text; Query is its parsed form.
	SQL   string
	Query sqlparser.QueryExpr
	Meta  Meta
	// IsWrapper marks the trivial SELECT-*-over-base-table view created at
	// upload time. Non-wrapper datasets are "derived" (the paper's
	// non-trivial views).
	IsWrapper bool
	// Visibility and SharedWith implement dataset-level permissions.
	Visibility Visibility
	SharedWith map[string]bool
	// Preview caches the first rows (§3.3: previews are served without
	// re-running the query).
	PreviewCols []string
	Preview     [][]string
	// Created/Deleted bound the dataset's life; deleted datasets stay in
	// the catalog (hidden) so lifetime analyses remain possible.
	Created time.Time
	Deleted bool
	// DOI is the minted citation identifier, if any (§5.2).
	DOI string
	// Materialized marks a view whose definition was swapped for a
	// physical snapshot by MaterializeInPlace; OriginalSQL preserves the
	// logical definition for provenance.
	Materialized bool
	OriginalSQL  string
	// PreviewVersions stamps the preview with the content versions of the
	// datasets it was rendered from (see version.go); a mismatch with the
	// live counters means the preview is stale and must be re-rendered.
	PreviewVersions map[string]uint64
}

// FullName returns the canonical "owner.name" identity.
func (d *Dataset) FullName() string { return d.Owner + "." + d.Name }

// Catalog is the SQLShare metadata store.
type Catalog struct {
	mu         sync.RWMutex
	users      map[string]*User
	datasets   map[string]*Dataset // key: FullName
	baseTables map[string]*storage.Table
	macros     map[string]*Macro // key: owner.name
	log        []*LogEntry
	seq        int
	clock      func() time.Time
	quotaBytes int64
	// metrics is the optional observability bundle; nil means no
	// reporting. Held in an atomic pointer so SetMetrics is safe while
	// queries run.
	metrics atomic.Pointer[obs.PlatformMetrics]
	// history is the optional continuous-insights recorder (see
	// SetHistory in history.go).
	history historyRef
	// journal is the optional durable mutation log (see journal.go); nil
	// means in-memory only. Guarded by mu.
	journal Journal
	// versions holds the per-dataset monotonic content counters that fence
	// the result cache and the preview freshness check (see version.go).
	// Guarded by mu; entries are never removed, even on dataset delete.
	versions map[string]uint64
	// shardMapEpoch/shardMap hold the cluster placement table, stored
	// opaquely (raw JSON, see shardmap.go) and journaled like every other
	// mutation so live == recovered. Guarded by mu.
	shardMapEpoch uint64
	shardMap      json.RawMessage
	// resultCache is the optional version-fenced result & plan cache; nil
	// means every query executes. Atomic so attaching is safe mid-query.
	resultCache atomic.Pointer[qcache.Cache]
	// liveOps is the optional in-flight query registry; nil means queries
	// run unregistered (no live listing, no kill, no memory counters beyond
	// an explicit MaxBytes). Atomic so attaching is safe mid-query.
	liveOps atomic.Pointer[ops.Registry]
}

// SetOpsRegistry attaches the live-operations registry: every query from
// then on registers at start, publishes live progress and memory counters,
// and becomes killable by id. Passing nil detaches. Call before serving
// traffic.
func (c *Catalog) SetOpsRegistry(r *ops.Registry) {
	c.liveOps.Store(r)
}

// SetMetrics attaches an observability bundle; catalog mutations and the
// query path report through it from then on. Passing nil detaches. The
// engine's worker-occupancy hook is pointed at the parallel-workers gauge
// (the hook is process-global; the last attached bundle wins, and each
// acquire/release pair uses one consistent gauge either way).
func (c *Catalog) SetMetrics(m *obs.PlatformMetrics) {
	c.metrics.Store(m)
	if m != nil {
		engine.SetWorkersBusyHook(m.ParallelWorkersBusy.Add)
		engine.SetSegmentsHook(func(scanned, skipped int64) {
			m.SegmentsScanned.Add(scanned)
			m.SegmentsSkipped.Add(skipped)
		})
	} else {
		engine.SetWorkersBusyHook(nil)
		engine.SetSegmentsHook(nil)
	}
}

// countOp records one catalog mutation in the sqlshare_catalog_ops_total
// family, if metrics are attached.
func (c *Catalog) countOp(op string) {
	if m := c.metrics.Load(); m != nil {
		m.CatalogOps.With(op).Inc()
	}
}

// New creates an empty catalog with a real-time clock.
func New() *Catalog {
	return &Catalog{
		users:      map[string]*User{},
		datasets:   map[string]*Dataset{},
		baseTables: map[string]*storage.Table{},
		macros:     map[string]*Macro{},
		versions:   map[string]uint64{},
		clock:      time.Now,
	}
}

// SetClock replaces the catalog clock; the synthetic workload generators
// use this to replay multi-year histories deterministically. The clock may
// be called concurrently from query execution and must be safe for
// concurrent use.
func (c *Catalog) SetClock(clock func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = clock
}

// now must be called with at least a read lock held.
func (c *Catalog) now() time.Time { return c.clock() }

// The exported mutations below each come in two forms: the plain name
// (seed API, traces nothing) and a ...Context variant that records the
// mutation's WAL append as a span of ctx's active trace. The plain form
// delegates with context.Background(), so untraced callers pay nothing.

// CreateUser registers a user.
func (c *Catalog) CreateUser(name, email string) (*User, error) {
	return c.CreateUserContext(context.Background(), name, email)
}

// CreateUserContext is CreateUser under a trace context.
func (c *Catalog) CreateUserContext(ctx context.Context, name, email string) (*User, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("catalog: user name required")
	}
	if _, ok := c.users[name]; ok {
		return nil, fmt.Errorf("catalog: user %q already exists", name)
	}
	rec := &wal.Record{
		Op: wal.OpCreateUser, Time: c.now(),
		CreateUser: &wal.CreateUser{Name: name, Email: email},
	}
	if err := c.commitLocked(ctx, rec); err != nil {
		return nil, err
	}
	c.countOp("create_user")
	return c.users[name], nil
}

// Users returns all users sorted by name.
func (c *Catalog) Users() []*User {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*User, 0, len(c.users))
	for _, u := range c.users {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreateDatasetFromTable is the upload path (Fig 2b): store tbl as a hidden
// base table and create the trivial wrapper view over it. The wrapper gives
// novice users an example query to edit (§3.2).
func (c *Catalog) CreateDatasetFromTable(owner, name string, tbl *storage.Table, meta Meta) (*Dataset, error) {
	return c.CreateDatasetFromTableContext(context.Background(), owner, name, tbl, meta)
}

// CreateDatasetFromTableContext is CreateDatasetFromTable under a trace
// context.
func (c *Catalog) CreateDatasetFromTableContext(ctx context.Context, owner, name string, tbl *storage.Table, meta Meta) (*Dataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.users[owner]; !ok {
		return nil, fmt.Errorf("catalog: unknown user %q", owner)
	}
	full := owner + "." + name
	if ds, ok := c.datasets[full]; ok && !ds.Deleted {
		return nil, fmt.Errorf("catalog: dataset %q already exists", full)
	}
	if err := c.checkQuotaLocked(owner, int64(tbl.NumRows())*int64(tbl.RowSizeBytes())); err != nil {
		return nil, err
	}
	p := &wal.CreateDataset{
		Owner: owner, Name: name,
		Description: meta.Description, Tags: meta.Tags,
		LiveTable: tbl,
	}
	if c.journal != nil {
		p.Table = tbl.Data() // serialized form travels to disk only
	}
	rec := &wal.Record{Op: wal.OpCreateDataset, Time: c.now(), CreateDataset: p}
	if err := c.commitLocked(ctx, rec); err != nil {
		return nil, err
	}
	c.countOp("create_dataset")
	return c.datasets[full], nil
}

// SaveView creates a derived dataset from a query (Fig 2e). Any top-level
// ORDER BY is stripped to comply with the SQL standard (§3.5). The
// definition is compiled eagerly so broken views are rejected at save time.
func (c *Catalog) SaveView(owner, name, sql string, meta Meta) (*Dataset, error) {
	return c.SaveViewContext(context.Background(), owner, name, sql, meta)
}

// SaveViewContext is SaveView under a trace context.
func (c *Catalog) SaveViewContext(ctx context.Context, owner, name, sql string, meta Meta) (*Dataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.users[owner]; !ok {
		return nil, fmt.Errorf("catalog: unknown user %q", owner)
	}
	full := owner + "." + name
	if ds, ok := c.datasets[full]; ok && !ds.Deleted {
		return nil, fmt.Errorf("catalog: dataset %q already exists", full)
	}
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	if sqlparser.StripOrderBy(q) {
		sql = q.SQL()
	}
	if _, err := engine.Compile(q, c.resolverLocked(owner)); err != nil {
		return nil, fmt.Errorf("catalog: view definition does not compile: %w", err)
	}
	rec := &wal.Record{
		Op: wal.OpSaveView, Time: c.now(),
		SaveView: &wal.SaveView{
			Owner: owner, Name: name, SQL: sql,
			Description: meta.Description, Tags: meta.Tags,
		},
	}
	if err := c.commitLocked(ctx, rec); err != nil {
		return nil, err
	}
	c.countOp("save_view")
	return c.datasets[full], nil
}

// Append implements the REST convenience call of §3.2: rewrite dataset
// existing as (existing') UNION ALL (new), where existing' is the prior
// definition. Downstream views see the new data with no changes; the batch
// remains inspectable and can be "uninserted" by editing the view.
func (c *Catalog) Append(owner, existing, newUpload string) error {
	return c.AppendContext(context.Background(), owner, existing, newUpload)
}

// AppendContext is Append under a trace context.
func (c *Catalog) AppendContext(ctx context.Context, owner, existing, newUpload string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, err := c.lookupLocked(owner, existing)
	if err != nil {
		return err
	}
	if ds.Owner != owner {
		return fmt.Errorf("catalog: only the owner can append to %q", ds.FullName())
	}
	nds, err := c.lookupLocked(owner, newUpload)
	if err != nil {
		return err
	}
	// Schema compatibility: compile both and compare arity.
	oldPlan, err := engine.Compile(ds.Query, c.resolverLocked(owner))
	if err != nil {
		return err
	}
	newPlan, err := engine.Compile(nds.Query, c.resolverLocked(owner))
	if err != nil {
		return err
	}
	if len(oldPlan.Columns) != len(newPlan.Columns) {
		return fmt.Errorf("catalog: append schema mismatch: %d vs %d columns",
			len(oldPlan.Columns), len(newPlan.Columns))
	}
	// The rewritten definition must parse before the rewrite is journaled.
	sql := fmt.Sprintf("(%s) UNION ALL (SELECT * FROM [%s])", ds.SQL, nds.FullName())
	if _, err := sqlparser.Parse(sql); err != nil {
		return err
	}
	rec := &wal.Record{
		Op: wal.OpAppend, Time: c.now(),
		Append: &wal.AppendView{Owner: owner, Dataset: ds.FullName(), Source: nds.FullName()},
	}
	if err := c.commitLocked(ctx, rec); err != nil {
		return err
	}
	c.countOp("append")
	return nil
}

// Materialize snapshots a dataset into a new physical dataset whose
// contents no longer track the source view (§3.2: for consumers who need
// data that does not change underneath them).
func (c *Catalog) Materialize(owner, source, snapshotName string) (*Dataset, error) {
	return c.MaterializeContext(context.Background(), owner, source, snapshotName)
}

// MaterializeContext is Materialize under a trace context.
func (c *Catalog) MaterializeContext(ctx context.Context, owner, source, snapshotName string) (*Dataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, err := c.lookupLocked(owner, source)
	if err != nil {
		return nil, err
	}
	plan, err := engine.Compile(ds.Query, c.resolverLocked(owner))
	if err != nil {
		return nil, err
	}
	res, err := plan.Execute(&engine.ExecContext{Now: c.now()})
	if err != nil {
		return nil, err
	}
	schema := make(storage.Schema, len(res.Cols))
	for i, col := range res.Cols {
		schema[i] = storage.Column{Name: col.Name, Type: col.Type}
	}
	tbl := storage.NewTable(snapshotName, schema)
	rows := make([]storage.Row, len(res.Rows))
	copy(rows, res.Rows)
	if err := tbl.Insert(rows); err != nil {
		return nil, err
	}
	full := owner + "." + snapshotName
	if existing, ok := c.datasets[full]; ok && !existing.Deleted {
		return nil, fmt.Errorf("catalog: dataset %q already exists", full)
	}
	// The computed rows travel in the record: snapshot contents depend on
	// execution time, so replay restores the bytes rather than re-running
	// the query.
	p := &wal.Materialize{
		Owner: owner, Source: ds.FullName(), Name: snapshotName,
		LiveTable: tbl,
	}
	if c.journal != nil {
		p.Table = tbl.Data()
	}
	rec := &wal.Record{Op: wal.OpMaterialize, Time: c.now(), Materialize: p}
	if err := c.commitLocked(ctx, rec); err != nil {
		return nil, err
	}
	c.countOp("materialize")
	return c.datasets[full], nil
}

// MaterializeInPlace swaps a derived view's definition for a physical
// snapshot of its current contents, keeping the dataset's name so every
// downstream view and query is transparently accelerated. This is the
// unilateral "safe-scenario" materialization §3.2 says the system was
// exploring: it trades freshness (the dataset stops tracking its sources)
// for evaluation cost, so callers — like the advisor — must decide when
// that is safe. The logical definition is preserved in OriginalSQL.
func (c *Catalog) MaterializeInPlace(owner, name string) error {
	return c.MaterializeInPlaceContext(context.Background(), owner, name)
}

// MaterializeInPlaceContext is MaterializeInPlace under a trace context.
func (c *Catalog) MaterializeInPlaceContext(ctx context.Context, owner, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, err := c.lookupLocked(owner, name)
	if err != nil {
		return err
	}
	if ds.Owner != owner {
		return fmt.Errorf("catalog: only the owner can materialize %q", ds.FullName())
	}
	if ds.IsWrapper || ds.Materialized {
		return fmt.Errorf("catalog: %q is already physically backed", ds.FullName())
	}
	plan, err := engine.Compile(ds.Query, c.resolverLocked(owner))
	if err != nil {
		return err
	}
	res, err := plan.Execute(&engine.ExecContext{Now: c.now()})
	if err != nil {
		return err
	}
	schema := make(storage.Schema, len(res.Cols))
	for i, col := range res.Cols {
		schema[i] = storage.Column{Name: col.Name, Type: col.Type}
	}
	tbl := storage.NewTable(ds.FullName(), schema)
	if err := tbl.Insert(append([]storage.Row(nil), res.Rows...)); err != nil {
		return err
	}
	p := &wal.Materialize{
		Owner: owner, Source: ds.FullName(), Name: ds.FullName(),
		InPlace: true, LiveTable: tbl,
	}
	if c.journal != nil {
		p.Table = tbl.Data()
	}
	rec := &wal.Record{Op: wal.OpMaterializeInPlace, Time: c.now(), Materialize: p}
	if err := c.commitLocked(ctx, rec); err != nil {
		return err
	}
	c.countOp("materialize_in_place")
	return nil
}

// Delete removes a dataset from view. The record is retained (flagged) so
// workload analyses over the full history keep working; §4 notes users
// delete datasets routinely.
func (c *Catalog) Delete(owner, name string) error {
	return c.DeleteContext(context.Background(), owner, name)
}

// DeleteContext is Delete under a trace context.
func (c *Catalog) DeleteContext(ctx context.Context, owner, name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, err := c.lookupLocked(owner, name)
	if err != nil {
		return err
	}
	if ds.Owner != owner {
		return fmt.Errorf("catalog: only the owner can delete %q", ds.FullName())
	}
	rec := &wal.Record{
		Op: wal.OpDeleteDataset, Time: c.now(),
		DatasetOp: &wal.DatasetOp{Owner: owner, Dataset: ds.FullName()},
	}
	if err := c.commitLocked(ctx, rec); err != nil {
		return err
	}
	c.countOp("delete_dataset")
	return nil
}

// SetVisibility makes a dataset public or private.
func (c *Catalog) SetVisibility(owner, name string, v Visibility) error {
	return c.SetVisibilityContext(context.Background(), owner, name, v)
}

// SetVisibilityContext is SetVisibility under a trace context.
func (c *Catalog) SetVisibilityContext(ctx context.Context, owner, name string, v Visibility) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, err := c.lookupLocked(owner, name)
	if err != nil {
		return err
	}
	if ds.Owner != owner {
		return fmt.Errorf("catalog: only the owner can change visibility of %q", ds.FullName())
	}
	rec := &wal.Record{
		Op: wal.OpSetVisibility, Time: c.now(),
		DatasetOp: &wal.DatasetOp{Owner: owner, Dataset: ds.FullName(), Public: v == Public},
	}
	if err := c.commitLocked(ctx, rec); err != nil {
		return err
	}
	c.countOp("set_visibility")
	return nil
}

// ShareWith grants a specific user access to a dataset (§5.2).
func (c *Catalog) ShareWith(owner, name, user string) error {
	return c.ShareWithContext(context.Background(), owner, name, user)
}

// ShareWithContext is ShareWith under a trace context.
func (c *Catalog) ShareWithContext(ctx context.Context, owner, name, user string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, err := c.lookupLocked(owner, name)
	if err != nil {
		return err
	}
	if ds.Owner != owner {
		return fmt.Errorf("catalog: only the owner can share %q", ds.FullName())
	}
	if _, ok := c.users[user]; !ok {
		return fmt.Errorf("catalog: unknown user %q", user)
	}
	rec := &wal.Record{
		Op: wal.OpShare, Time: c.now(),
		DatasetOp: &wal.DatasetOp{Owner: owner, Dataset: ds.FullName(), User: user},
	}
	if err := c.commitLocked(ctx, rec); err != nil {
		return err
	}
	c.countOp("share")
	return nil
}

// UpdateMeta replaces a dataset's description and tags.
func (c *Catalog) UpdateMeta(owner, name string, meta Meta) error {
	return c.UpdateMetaContext(context.Background(), owner, name, meta)
}

// UpdateMetaContext is UpdateMeta under a trace context.
func (c *Catalog) UpdateMetaContext(ctx context.Context, owner, name string, meta Meta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, err := c.lookupLocked(owner, name)
	if err != nil {
		return err
	}
	if ds.Owner != owner {
		return fmt.Errorf("catalog: only the owner can edit %q", ds.FullName())
	}
	rec := &wal.Record{
		Op: wal.OpUpdateMeta, Time: c.now(),
		DatasetOp: &wal.DatasetOp{
			Owner: owner, Dataset: ds.FullName(),
			Description: meta.Description, Tags: meta.Tags,
		},
	}
	if err := c.commitLocked(ctx, rec); err != nil {
		return err
	}
	c.countOp("update_meta")
	return nil
}

// Dataset returns a dataset visible to user, applying permission checks.
func (c *Catalog) Dataset(user, name string) (*Dataset, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ds, err := c.lookupLocked(user, name)
	if err != nil {
		return nil, err
	}
	if err := c.checkAccessLocked(user, ds); err != nil {
		return nil, err
	}
	return ds, nil
}

// Datasets returns all live datasets (for analysis and listing), sorted by
// full name. Deleted datasets are included when includeDeleted is set.
func (c *Catalog) Datasets(includeDeleted bool) []*Dataset {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Dataset, 0, len(c.datasets))
	for _, ds := range c.datasets {
		if ds.Deleted && !includeDeleted {
			continue
		}
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// NumBaseTables reports how many physical tables the catalog stores.
func (c *Catalog) NumBaseTables() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.baseTables)
}

// TotalColumns counts the columns across all base tables (Table 2a).
func (c *Catalog) TotalColumns() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, t := range c.baseTables {
		n += len(t.Schema())
	}
	return n
}

// lookupLocked resolves a dataset name in a user context: "owner.name" is
// exact; a bare name resolves within the user's own datasets first, then
// uniquely across all datasets.
func (c *Catalog) lookupLocked(user, name string) (*Dataset, error) {
	if ds, ok := c.datasets[name]; ok && !ds.Deleted {
		return ds, nil
	}
	if user != "" {
		if ds, ok := c.datasets[user+"."+name]; ok && !ds.Deleted {
			return ds, nil
		}
	}
	// Unique short-name match across the catalog.
	var found *Dataset
	for _, ds := range c.datasets {
		if ds.Deleted || !strings.EqualFold(ds.Name, name) {
			continue
		}
		if found != nil {
			return nil, fmt.Errorf("catalog: dataset name %q is ambiguous; qualify as owner.name", name)
		}
		found = ds
	}
	if found == nil {
		return nil, fmt.Errorf("catalog: dataset %q not found", name)
	}
	return found, nil
}

// resolverLocked returns an engine.Resolver bound to a user context. It
// must only be used while the catalog lock is held (the engine compiles
// and executes synchronously under the calling operation).
func (c *Catalog) resolverLocked(user string) engine.Resolver {
	return resolverFunc(func(name string) (engine.Resolution, error) {
		if strings.HasPrefix(name, basePrefix) {
			if tbl, ok := c.baseTables[name]; ok {
				return engine.Resolution{Table: tbl}, nil
			}
			return engine.Resolution{}, fmt.Errorf("catalog: missing base table %q", name)
		}
		ds, err := c.lookupLocked(user, name)
		if err != nil {
			return engine.Resolution{}, err
		}
		return engine.Resolution{View: ds.Query}, nil
	})
}

type resolverFunc func(string) (engine.Resolution, error)

func (f resolverFunc) ResolveDataset(name string) (engine.Resolution, error) { return f(name) }

// refreshPreviewLocked recomputes the cached preview for ds and stamps it
// with the content versions it was rendered from, so the staleness check in
// version.go and the result cache share one notion of freshness. The stamp
// is recorded even when rendering fails: a definition that is broken at
// version v stays broken until some upstream version moves.
func (c *Catalog) refreshPreviewLocked(ds *Dataset) {
	ds.PreviewVersions = c.previewStampLocked(ds)
	plan, err := engine.Compile(ds.Query, c.resolverLocked(ds.Owner))
	if err != nil {
		ds.Preview, ds.PreviewCols = nil, nil
		return
	}
	res, err := plan.Execute(&engine.ExecContext{Now: c.now()})
	if err != nil {
		ds.Preview, ds.PreviewCols = nil, nil
		return
	}
	ds.PreviewCols = res.ColumnNames()
	n := len(res.Rows)
	if n > PreviewRows {
		n = PreviewRows
	}
	ds.Preview = make([][]string, n)
	for i := 0; i < n; i++ {
		row := make([]string, len(res.Rows[i]))
		for j, v := range res.Rows[i] {
			row[j] = v.String()
		}
		ds.Preview[i] = row
	}
}

// ReferencedDatasets returns the dataset full names directly referenced by
// ds's definition (excluding hidden base tables).
func (c *Catalog) ReferencedDatasets(ds *Dataset) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.referencedLocked(ds)
}

func (c *Catalog) referencedLocked(ds *Dataset) []string {
	var out []string
	for _, name := range sqlparser.ReferencedTables(ds.Query) {
		if strings.HasPrefix(name, basePrefix) {
			continue
		}
		ref, err := c.lookupLocked(ds.Owner, name)
		if err != nil {
			continue
		}
		out = append(out, ref.FullName())
	}
	return out
}

// ViewDepth computes the derivation depth of a dataset: a view over only
// uploaded datasets has depth 0; each layer of derived views adds one
// (Figure 6).
func (c *Catalog) ViewDepth(ds *Dataset) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.viewDepthLocked(ds, map[string]bool{})
}

func (c *Catalog) viewDepthLocked(ds *Dataset, visiting map[string]bool) int {
	if ds.IsWrapper {
		return -1 // uploads are below depth 0
	}
	full := ds.FullName()
	if visiting[full] {
		return 0
	}
	visiting[full] = true
	defer delete(visiting, full)
	depth := 0
	for _, refName := range c.referencedLocked(ds) {
		ref, ok := c.datasets[refName]
		if !ok {
			continue
		}
		if d := c.viewDepthLocked(ref, visiting) + 1; d > depth {
			depth = d
		}
	}
	return depth
}
