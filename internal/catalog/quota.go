package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// The paper's architecture (Fig 3) includes a Quotas component in the REST
// layer and tags "to ease search and organization in the UI" (§3.2). This
// file implements both: per-user storage accounting with an enforced
// limit, and dataset search over names, descriptions and tags.

// DefaultQuotaBytes is the per-user storage allowance when none is set.
// The production service held 143 GB across hundreds of users (§4); the
// default here is deliberately generous for an in-memory store.
const DefaultQuotaBytes = 1 << 30

// SetQuotaBytes sets the per-user storage allowance; 0 restores the
// default, a negative value disables enforcement.
func (c *Catalog) SetQuotaBytes(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quotaBytes = n
}

func (c *Catalog) quotaLocked() int64 {
	if c.quotaBytes == 0 {
		return DefaultQuotaBytes
	}
	return c.quotaBytes
}

// UserUsage reports the estimated bytes of physical storage owned by a
// user: the base tables behind their uploads, snapshots and in-place
// materializations. Views cost nothing — one reason the view-centric model
// suits high-churn use.
func (c *Catalog) UserUsage(user string) int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.usageLocked(user)
}

func (c *Catalog) usageLocked(user string) int64 {
	prefix := basePrefix + user + "."
	var total int64
	for name, tbl := range c.baseTables {
		if strings.HasPrefix(name, prefix) {
			total += int64(tbl.NumRows()) * int64(tbl.RowSizeBytes())
		}
	}
	return total
}

// checkQuotaLocked verifies that adding addBytes for user stays within the
// allowance.
func (c *Catalog) checkQuotaLocked(user string, addBytes int64) error {
	quota := c.quotaLocked()
	if quota < 0 {
		return nil
	}
	if used := c.usageLocked(user); used+addBytes > quota {
		return &QuotaError{User: user, Used: used, Requested: addBytes, Quota: quota}
	}
	return nil
}

// QuotaError reports a storage-allowance violation.
type QuotaError struct {
	User      string
	Used      int64
	Requested int64
	Quota     int64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("catalog: quota exceeded for %q: %d used + %d requested > %d allowed",
		e.User, e.Used, e.Requested, e.Quota)
}

// IsQuotaError reports whether err is a storage-allowance violation.
func IsQuotaError(err error) bool {
	_, ok := err.(*QuotaError)
	return ok
}

// ---------------------------------------------------------------- search

// SearchDatasets returns the datasets visible to user whose name,
// description or tags match the query terms (all terms must match,
// case-insensitively). An empty query lists everything visible.
func (c *Catalog) SearchDatasets(user, query string) []*Dataset {
	terms := strings.Fields(strings.ToLower(query))
	c.mu.RLock()
	var candidates []*Dataset
	for _, ds := range c.datasets {
		if ds.Deleted {
			continue
		}
		candidates = append(candidates, ds)
	}
	c.mu.RUnlock()

	var out []*Dataset
	for _, ds := range candidates {
		if _, err := c.Dataset(user, ds.FullName()); err != nil {
			continue // not visible
		}
		if matchesTerms(ds, terms) {
			out = append(out, ds)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

func matchesTerms(ds *Dataset, terms []string) bool {
	if len(terms) == 0 {
		return true
	}
	var hay strings.Builder
	hay.WriteString(strings.ToLower(ds.FullName()))
	hay.WriteByte(' ')
	hay.WriteString(strings.ToLower(ds.Meta.Description))
	for _, tag := range ds.Meta.Tags {
		hay.WriteByte(' ')
		hay.WriteString(strings.ToLower(tag))
	}
	text := hay.String()
	for _, term := range terms {
		if !strings.Contains(text, term) {
			return false
		}
	}
	return true
}
