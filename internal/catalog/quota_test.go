package catalog

import (
	"testing"
)

func TestQuotaEnforcement(t *testing.T) {
	c := newTestCatalog(t)
	// The seeded table is 3 rows × (24+8) bytes ≈ 96 bytes; allow two
	// tables' worth plus slack.
	c.SetQuotaBytes(220)
	if _, err := c.CreateDatasetFromTable("alice", "second", seedTable(t, "s2"), Meta{}); err != nil {
		t.Fatalf("second upload within quota: %v", err)
	}
	_, err := c.CreateDatasetFromTable("alice", "third", seedTable(t, "s3"), Meta{})
	if err == nil {
		t.Fatal("third upload should exceed quota")
	}
	if !IsQuotaError(err) {
		t.Fatalf("want QuotaError, got %v", err)
	}
	// Other users are unaffected.
	if _, err := c.CreateDatasetFromTable("bob", "mine", seedTable(t, "b1"), Meta{}); err != nil {
		t.Fatalf("bob's upload: %v", err)
	}
	// Disabling enforcement admits the upload.
	c.SetQuotaBytes(-1)
	if _, err := c.CreateDatasetFromTable("alice", "third", seedTable(t, "s3"), Meta{}); err != nil {
		t.Fatalf("unlimited quota: %v", err)
	}
}

func TestUserUsageCountsPhysicalOnly(t *testing.T) {
	c := newTestCatalog(t)
	before := c.UserUsage("alice")
	if before <= 0 {
		t.Fatalf("usage = %d", before)
	}
	// Views are free.
	if _, err := c.SaveView("alice", "v", "SELECT station FROM water", Meta{}); err != nil {
		t.Fatal(err)
	}
	if got := c.UserUsage("alice"); got != before {
		t.Errorf("views should not consume quota: %d vs %d", got, before)
	}
	// Materialized snapshots are not.
	if _, err := c.Materialize("alice", "v", "vsnap"); err != nil {
		t.Fatal(err)
	}
	if got := c.UserUsage("alice"); got <= before {
		t.Errorf("snapshot should consume quota: %d vs %d", got, before)
	}
	if c.UserUsage("bob") != 0 {
		t.Error("bob owns nothing physical")
	}
}

func TestSearchDatasets(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.UpdateMeta("alice", "water", Meta{
		Description: "nutrient sensor readings",
		Tags:        []string{"ocean", "timeseries"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SaveView("alice", "cleaned", "SELECT * FROM water", Meta{
		Description: "cleaned water data", Tags: []string{"ocean"},
	}); err != nil {
		t.Fatal(err)
	}
	// Owner search by tag.
	got := c.SearchDatasets("alice", "ocean")
	if len(got) != 2 {
		t.Fatalf("tag search = %d", len(got))
	}
	// By description term.
	got = c.SearchDatasets("alice", "nutrient sensor")
	if len(got) != 1 || got[0].Name != "water" {
		t.Fatalf("description search = %v", names(got))
	}
	// By name fragment.
	got = c.SearchDatasets("alice", "clean")
	if len(got) != 1 || got[0].Name != "cleaned" {
		t.Fatalf("name search = %v", names(got))
	}
	// Visibility is enforced: bob sees nothing until publication.
	if got := c.SearchDatasets("bob", "ocean"); len(got) != 0 {
		t.Fatalf("bob sees private data: %v", names(got))
	}
	if err := c.SetVisibility("alice", "water", Public); err != nil {
		t.Fatal(err)
	}
	if got := c.SearchDatasets("bob", "ocean"); len(got) != 1 {
		t.Fatalf("bob should see the public dataset: %v", names(got))
	}
	// Empty query lists everything visible.
	if got := c.SearchDatasets("alice", ""); len(got) != 2 {
		t.Fatalf("empty query = %d", len(got))
	}
	// All terms must match.
	if got := c.SearchDatasets("alice", "ocean nonexistent"); len(got) != 0 {
		t.Fatalf("conjunction broken: %v", names(got))
	}
}

func names(ds []*Dataset) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.FullName()
	}
	return out
}
