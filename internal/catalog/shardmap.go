package catalog

import (
	"context"
	"encoding/json"
	"fmt"

	"sqlshare/internal/wal"
)

// The cluster placement table (users → shards, see internal/cluster) lives
// in the catalog so it rides the same journal as every other mutation: the
// map a node serves with is exactly the map recovery rebuilds. The catalog
// stores it opaquely — raw JSON plus an epoch — and validates shape, not
// semantics; internal/cluster owns the encoding. The shard map is
// deliberately excluded from Fingerprint: the failover oracle compares a
// cluster node against a single-node catalog that never had one.

// SetShardMap journals and applies a new placement table. Epoch must
// strictly advance past the installed epoch — the compare-and-set that
// serializes concurrent rebalance attempts (two admins installing from the
// same observed epoch: the first wins, the second errors) while still
// letting a node that joined mid-history accept the cluster's current
// epoch directly.
func (c *Catalog) SetShardMap(ctx context.Context, epoch uint64, data json.RawMessage) error {
	if !json.Valid(data) {
		return fmt.Errorf("catalog: shard map is not valid JSON")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch <= c.shardMapEpoch {
		return fmt.Errorf("catalog: shard map epoch %d does not advance past current epoch %d", epoch, c.shardMapEpoch)
	}
	rec := &wal.Record{
		Time:     c.now(),
		Op:       wal.OpShardMap,
		ShardMap: &wal.ShardMapChange{Epoch: epoch, Data: append(json.RawMessage(nil), data...)},
	}
	return c.commitLocked(ctx, rec)
}

// ShardMap returns the current placement table and its epoch (0, nil when
// none has been installed). The returned bytes are a copy.
func (c *Catalog) ShardMap() (uint64, json.RawMessage) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.shardMapEpoch, append(json.RawMessage(nil), c.shardMap...)
}

// applyShardMap is the replay constructor for OpShardMap. Replayed epochs
// must advance (strictly — a stale or duplicate map in the log is
// corruption, not convergence).
func (c *Catalog) applyShardMap(rec *wal.Record) error {
	p := rec.ShardMap
	if p == nil || p.Epoch == 0 || !json.Valid(p.Data) {
		return fmt.Errorf("catalog: malformed %s record", rec.Op)
	}
	if p.Epoch <= c.shardMapEpoch {
		return fmt.Errorf("catalog: shard map epoch %d does not advance past %d", p.Epoch, c.shardMapEpoch)
	}
	c.shardMapEpoch = p.Epoch
	c.shardMap = append(json.RawMessage(nil), p.Data...)
	return nil
}
