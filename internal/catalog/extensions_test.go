package catalog

import (
	"strings"
	"testing"

	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

func TestMintDOI(t *testing.T) {
	c := newTestCatalog(t)
	// Private dataset: refused.
	if _, err := c.MintDOI("alice", "water"); err == nil {
		t.Fatal("private dataset should not get a DOI")
	}
	if err := c.SetVisibility("alice", "water", Public); err != nil {
		t.Fatal(err)
	}
	doi, err := c.MintDOI("alice", "water")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(doi, "10.5072/sqlshare.") {
		t.Errorf("doi = %q", doi)
	}
	// Idempotent.
	doi2, err := c.MintDOI("alice", "water")
	if err != nil || doi2 != doi {
		t.Errorf("re-mint: %q vs %q (%v)", doi2, doi, err)
	}
	// Resolvable.
	ds, err := c.ResolveDOI(doi)
	if err != nil || ds.FullName() != "alice.water" {
		t.Errorf("resolve: %v %v", ds, err)
	}
	// Only the owner mints.
	if _, err := c.MintDOI("bob", "alice.water"); err == nil {
		t.Error("non-owner should not mint")
	}
	if _, err := c.ResolveDOI("10.5072/sqlshare.ffffffffffffffff"); err == nil {
		t.Error("unknown DOI should not resolve")
	}
}

func TestDOIsAreDistinctPerDataset(t *testing.T) {
	c := newTestCatalog(t)
	if _, err := c.SaveView("alice", "v1", "SELECT station FROM water", Meta{}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"water", "v1"} {
		if err := c.SetVisibility("alice", name, Public); err != nil {
			t.Fatal(err)
		}
	}
	a, err := c.MintDOI("alice", "water")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.MintDOI("alice", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("different datasets must get different DOIs")
	}
}

func TestMacroWithFromParameter(t *testing.T) {
	c := newTestCatalog(t)
	// A second table the macro can be re-pointed at — the paper's use
	// case: apply the same query to multiple source datasets.
	if _, err := c.CreateDatasetFromTable("alice", "water2", seedTable(t, "w2"), Meta{}); err != nil {
		t.Fatal(err)
	}
	mac, err := c.SaveMacro("alice", "station_means",
		"SELECT station, AVG(val) AS mean_val FROM $source WHERE val > $threshold GROUP BY station")
	if err != nil {
		t.Fatal(err)
	}
	if len(mac.Params) != 2 {
		t.Fatalf("params = %v", mac.Params)
	}
	for _, src := range []string{"water", "water2"} {
		entry, err := c.QueryMacro("alice", "station_means",
			map[string]string{"source": src, "threshold": "0.5"})
		if err != nil {
			t.Fatalf("macro over %s: %v", src, err)
		}
		if !strings.Contains(entry.SQL, "["+src+"]") {
			t.Errorf("expansion should reference %s: %s", src, entry.SQL)
		}
	}
	if c.LogSize() != 2 {
		t.Errorf("log size = %d", c.LogSize())
	}
}

func TestMacroArgumentValidation(t *testing.T) {
	c := newTestCatalog(t)
	if _, err := c.SaveMacro("alice", "m", "SELECT * FROM $t WHERE val > $x"); err != nil {
		t.Fatal(err)
	}
	// Missing argument.
	if _, err := c.ExpandMacro("alice", "m", map[string]string{"t": "water"}); err == nil {
		t.Error("missing argument should fail")
	}
	// Injection attempt.
	if _, err := c.ExpandMacro("alice", "m",
		map[string]string{"t": "water", "x": "0; DROP TABLE water"}); err == nil {
		t.Error("injection-shaped argument should fail")
	}
	// String literal is fine.
	sql, err := c.ExpandMacro("alice", "m", map[string]string{"t": "water", "x": "'s1'"})
	if err != nil || !strings.Contains(sql, "'s1'") {
		t.Errorf("string arg: %q %v", sql, err)
	}
	// Macro without parameters is rejected at save time.
	if _, err := c.SaveMacro("alice", "plain", "SELECT 1"); err == nil {
		t.Error("parameterless macro should be rejected")
	}
	// Duplicate name.
	if _, err := c.SaveMacro("alice", "m", "SELECT * FROM $t"); err == nil {
		t.Error("duplicate macro should fail")
	}
	if got := c.Macros("alice"); len(got) != 1 {
		t.Errorf("macros = %d", len(got))
	}
}

func TestColumnPatternExpansion(t *testing.T) {
	c := New()
	c.SetClock(newTestCatalog(t).clock) // reuse deterministic clock shape
	if _, err := c.CreateUser("u", ""); err != nil {
		t.Fatal(err)
	}
	tbl := storage.NewTable("expr", storage.Schema{
		{Name: "gene", Type: sqltypes.String},
		{Name: "var1", Type: sqltypes.String},
		{Name: "var2", Type: sqltypes.String},
		{Name: "note", Type: sqltypes.String},
	})
	if err := tbl.Insert([]storage.Row{{
		sqltypes.NewString("g1"), sqltypes.NewString("1.5"),
		sqltypes.NewString("2.5"), sqltypes.NewString("x"),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateDatasetFromTable("u", "expr", tbl, Meta{}); err != nil {
		t.Fatal(err)
	}

	// The paper's own example: cast every var* column to FLOAT, renaming
	// each expression after its column.
	sql, err := c.ExpandPatterns("u", "SELECT gene, CAST([var*] AS FLOAT) AS [$v] FROM expr")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "CAST(expr.var1 AS FLOAT) AS var1") ||
		!strings.Contains(sql, "CAST(expr.var2 AS FLOAT) AS var2") {
		t.Fatalf("expansion = %s", sql)
	}
	res, _, err := c.QueryWithPatterns("u", "SELECT gene, CAST([var*] AS FLOAT) AS [$v] FROM expr")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 3 || res.Cols[1].Name != "var1" || res.Cols[2].Name != "var2" {
		t.Fatalf("cols = %v", res.ColumnNames())
	}
	if res.Rows[0][1].Float() != 1.5 {
		t.Fatalf("cast value = %v", res.Rows[0][1])
	}

	// All columns except one.
	res, _, err = c.QueryWithPatterns("u", "SELECT [* EXCEPT note] FROM expr")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 3 {
		t.Fatalf("except cols = %v", res.ColumnNames())
	}
	for _, col := range res.Cols {
		if col.Name == "note" {
			t.Error("note should be excluded")
		}
	}

	// A pattern-free query passes through untouched.
	plain := "SELECT gene FROM expr"
	out, err := c.ExpandPatterns("u", plain)
	if err != nil || out != plain {
		t.Errorf("passthrough = %q %v", out, err)
	}

	// No match is an error, not silence.
	if _, err := c.ExpandPatterns("u", "SELECT [zzz*] FROM expr"); err == nil {
		t.Error("non-matching pattern should error")
	}
}
