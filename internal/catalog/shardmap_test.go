package catalog

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"sqlshare/internal/wal"
)

func TestShardMapLiveEqualsRecovered(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, nil)
	if _, err := c.CreateUser("alice", "alice@uw.edu"); err != nil {
		t.Fatal(err)
	}
	before := c.Fingerprint()
	mapJSON := json.RawMessage(`{"shards":2,"epoch":1}`)
	if err := c.SetShardMap(context.Background(), 1, mapJSON); err != nil {
		t.Fatal(err)
	}
	// The shard map is deliberately outside the fingerprint: the failover
	// oracle is a single-node catalog that never installed one.
	if after := c.Fingerprint(); after != before {
		t.Error("installing a shard map must not change the catalog fingerprint")
	}
	// Epoch is a compare-and-set: a stale or duplicate epoch is refused
	// (two rebalance attempts from the same observed epoch — first wins).
	for _, epoch := range []uint64{0, 1} {
		if err := c.SetShardMap(context.Background(), epoch, mapJSON); err == nil {
			t.Errorf("SetShardMap(epoch=%d) should fail when current epoch is 1", epoch)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	c2, d2 := openDurable(t, dir, nil)
	defer d2.Close()
	epoch, data := c2.ShardMap()
	if epoch != 1 || string(data) != string(mapJSON) {
		t.Errorf("recovered shard map = epoch %d %q, want epoch 1 %q", epoch, data, mapJSON)
	}
}

func TestShardMapSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, nil)
	if err := c.SetShardMap(context.Background(), 1, json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	c2, d2 := openDurable(t, dir, nil)
	defer d2.Close()
	if d2.RecoveryStats().SnapshotPath == "" {
		t.Fatal("recovery should have restored from the checkpoint snapshot")
	}
	epoch, data := c2.ShardMap()
	if epoch != 1 || string(data) != `{"v":1}` {
		t.Errorf("shard map after snapshot recovery = epoch %d %q", epoch, data)
	}
}

// primaryRecords runs the scripted workload on a fresh durable catalog and
// returns its records as a follower would receive them off the stream
// (re-read from disk, so live-only fields are gone), plus the primary's
// fingerprint.
func primaryRecords(t *testing.T) ([]*wal.Record, string) {
	t.Helper()
	dir := t.TempDir()
	c, d := openDurable(t, dir, &DurableOptions{SyncMode: wal.SyncNone})
	for _, step := range scriptedWorkload(t) {
		step.fn(t, c)
	}
	fp := c.Fingerprint()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	scan, err := wal.ScanDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return scan.Records, fp
}

func TestApplyReplicated(t *testing.T) {
	recs, want := primaryRecords(t)
	fdir := t.TempDir()
	fc, fd := openDurable(t, fdir, &DurableOptions{SyncMode: wal.SyncNone})
	for _, rec := range recs {
		if err := fd.ApplyReplicated(rec); err != nil {
			t.Fatalf("apply LSN %d (%s): %v", rec.LSN, rec.Op, err)
		}
	}
	if got := fc.Fingerprint(); got != want {
		t.Fatalf("follower fingerprint %s != primary %s", got, want)
	}
	// Redelivery is idempotent: a duplicate is reported stale, not applied.
	if err := fd.ApplyReplicated(recs[len(recs)-1]); !errors.Is(err, ErrStaleRecord) {
		t.Errorf("duplicate record: err = %v, want ErrStaleRecord", err)
	}
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}
	// The follower's own log replays to the same state.
	fc2, fd2 := openDurable(t, fdir, nil)
	defer fd2.Close()
	if got := fc2.Fingerprint(); got != want {
		t.Fatalf("follower recovery fingerprint %s != primary %s", got, want)
	}
}

func TestApplyReplicatedRejectsGap(t *testing.T) {
	recs, _ := primaryRecords(t)
	_, fd := openDurable(t, t.TempDir(), &DurableOptions{SyncMode: wal.SyncNone})
	defer fd.Close()
	if err := fd.ApplyReplicated(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := fd.ApplyReplicated(recs[2]); err == nil || errors.Is(err, ErrStaleRecord) {
		t.Errorf("record skipping LSN 2 should be a gap error, got %v", err)
	}
}

func TestSnapshotBootstrapThenFollow(t *testing.T) {
	// Primary: run part of the workload, checkpoint, run the rest — the
	// follower bootstraps from the snapshot and streams the tail.
	pdir := t.TempDir()
	pc, pd := openDurable(t, pdir, &DurableOptions{SyncMode: wal.SyncNone})
	steps := scriptedWorkload(t)
	cut := len(steps) / 2
	for _, step := range steps[:cut] {
		step.fn(t, pc)
	}
	snap := pd.CaptureSnapshot()
	for _, step := range steps[cut:] {
		step.fn(t, pc)
	}
	want := pc.Fingerprint()

	fdir := t.TempDir()
	fc, fd := openDurable(t, fdir, &DurableOptions{SyncMode: wal.SyncNone})
	if err := fd.InstallSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if lsn, _ := fd.Durable(); lsn != snap.LSN {
		t.Fatalf("durable LSN after install = %d, want %d", lsn, snap.LSN)
	}
	if err := pd.Close(); err != nil {
		t.Fatal(err)
	}
	scan, err := wal.ScanDir(pdir, snap.LSN)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range scan.Records {
		if err := fd.ApplyReplicated(rec); err != nil {
			t.Fatalf("apply LSN %d: %v", rec.LSN, err)
		}
	}
	if got := fc.Fingerprint(); got != want {
		t.Fatalf("bootstrapped follower fingerprint %s != primary %s", got, want)
	}
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}
	// And the follower's own recovery (snapshot + streamed tail on disk)
	// reproduces it again.
	fc2, fd2 := openDurable(t, fdir, nil)
	defer fd2.Close()
	if got := fc2.Fingerprint(); got != want {
		t.Fatalf("follower recovery fingerprint %s != primary %s", got, want)
	}
}
