package catalog

import (
	"fmt"

	"sqlshare/internal/wal"
)

// This file is the follower side of WAL shipping (see internal/repl). A
// replica does not originate mutations: it receives the primary's records
// off the replication stream and pushes each one through the exact same
// journal-then-apply path a local mutation takes — append to its own log
// (so the record is durable here before its effect is visible here), then
// apply via the replay constructors. Primary and follower therefore hold
// byte-compatible logs and fingerprint-identical catalogs at equal LSNs.

// ErrStaleRecord reports a replicated record at or below the follower's
// durable LSN — a duplicate delivery, already applied, safe to drop.
var ErrStaleRecord = fmt.Errorf("catalog: replicated record already applied")

// ApplyReplicated journals rec locally and applies it. The stream must be
// gapless: rec.LSN has to be exactly one past the follower's durable LSN.
// A record at or below it returns ErrStaleRecord (idempotent redelivery);
// a record further ahead is an error — the follower missed records and
// must re-request from its durable LSN (or bootstrap from a snapshot).
func (d *Durability) ApplyReplicated(rec *wal.Record) error {
	c := d.cat
	c.mu.Lock()
	defer c.mu.Unlock()
	last := d.w.LastLSN()
	if rec.LSN <= last {
		return ErrStaleRecord
	}
	if rec.LSN != last+1 {
		return fmt.Errorf("catalog: replicated record LSN %d does not follow durable LSN %d", rec.LSN, last)
	}
	want := rec.LSN
	if err := d.Append(rec); err != nil {
		return fmt.Errorf("catalog: journal replicated record: %w", err)
	}
	// The local writer assigns LSNs sequentially; with the gap check above
	// it must re-derive exactly the primary's LSN. Anything else means the
	// two logs diverged, which nothing downstream can repair.
	if rec.LSN != want {
		return fmt.Errorf("catalog: replicated record LSN diverged: primary %d, local log assigned %d", want, rec.LSN)
	}
	if err := c.applyLocked(rec); err != nil {
		return fmt.Errorf("catalog: apply replicated %s (LSN %d): %w", rec.Op, rec.LSN, err)
	}
	return nil
}

// CaptureSnapshot serializes the catalog at its current durable LSN — the
// payload a primary serves to a follower that is too far behind for
// segment replay. Taken under the catalog read lock, so no record can land
// between the capture and the LSN stamp.
func (d *Durability) CaptureSnapshot() *wal.Snapshot {
	c := d.cat
	c.mu.RLock()
	defer c.mu.RUnlock()
	snap := c.captureSnapshotLocked()
	snap.LSN = d.w.LastLSN()
	return snap
}

// InstallSnapshot replaces the catalog's state with snap and makes the
// replacement durable: the snapshot file is written locally, the writer's
// LSN sequence jumps to snap.LSN, and the log rotates to a fresh segment
// starting at snap.LSN+1. A bootstrapping follower uses this when the
// primary's log no longer covers the follower's LSN (wal.GapError on the
// stream). Moving backwards is refused; the caller must be quiescent.
func (d *Durability) InstallSnapshot(snap *wal.Snapshot) error {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	if snap.LSN < d.w.LastLSN() {
		return fmt.Errorf("catalog: snapshot at LSN %d is older than local log at %d", snap.LSN, d.w.LastLSN())
	}
	if err := d.cat.restoreSnapshot(snap); err != nil {
		return err
	}
	if _, err := wal.WriteSnapshot(d.dir, snap); err != nil {
		return err
	}
	if err := d.w.AdvanceTo(snap.LSN); err != nil {
		return err
	}
	if err := d.w.Rotate(wal.SegmentPath(d.dir, snap.LSN+1)); err != nil {
		return err
	}
	if err := wal.RemoveObsolete(d.dir, d.opts.SnapshotsKept); err != nil && d.opts.Logger != nil {
		d.opts.Logger.Warn("install snapshot: cleanup failed", "error", err)
	}
	d.lastSnapLSN.Store(snap.LSN)
	d.recordsSince.Store(0)
	return nil
}

// Durable exposes the log's durable-LSN watch point (see wal.Writer.Durable):
// the current durable LSN plus a channel closed when it next advances.
// Replication long-polls block on it instead of spinning.
func (d *Durability) Durable() (uint64, <-chan struct{}) { return d.w.Durable() }
