package catalog

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sqlshare/internal/obs"
	"sqlshare/internal/sqlparser"
	"sqlshare/internal/storage"
	"sqlshare/internal/wal"
)

// This file orchestrates recovery and checkpointing: OpenDurable restores
// the latest valid snapshot, replays the WAL tail, and attaches a
// Durability journal so every subsequent mutation is logged before it is
// applied. The checkpointer periodically serializes the whole catalog,
// rotates the log, and prunes segments the retained snapshots cover.

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// SyncMode is the WAL durability mode (default SyncGroup).
	SyncMode wal.SyncMode
	// CheckpointEvery triggers a background checkpoint on this wall-clock
	// period; zero disables the timer.
	CheckpointEvery time.Duration
	// CheckpointRecords triggers a background checkpoint once this many
	// records accumulate since the last one; zero disables the threshold.
	CheckpointRecords int
	// SnapshotsKept is how many snapshots survive pruning (minimum and
	// default 2, so recovery can always fall back one snapshot).
	SnapshotsKept int
	// Logger receives recovery and checkpoint diagnostics; nil is silent.
	Logger *slog.Logger
}

func (o *DurableOptions) withDefaults() DurableOptions {
	out := DurableOptions{}
	if o != nil {
		out = *o
	}
	if out.SnapshotsKept < 2 {
		out.SnapshotsKept = 2
	}
	return out
}

// RecoveryStats describes what startup recovery found and replayed.
type RecoveryStats struct {
	// SnapshotPath/SnapshotLSN identify the restored snapshot ("" / 0 when
	// the catalog was rebuilt from the log alone).
	SnapshotPath string
	SnapshotLSN  uint64
	// SnapshotsSkipped counts corrupt snapshots recovery fell back past.
	SnapshotsSkipped int
	// RecordsReplayed is the WAL tail length applied on top of the snapshot.
	RecordsReplayed int
	// TornBytes is the length of the torn final record a crash left behind.
	TornBytes int64
	// LastLSN is the highest LSN on disk after recovery.
	LastLSN uint64
	// Duration is wall-clock recovery time.
	Duration time.Duration
}

// CheckpointStats describes one completed checkpoint.
type CheckpointStats struct {
	Path     string // snapshot file written
	LSN      uint64 // last LSN the snapshot covers
	Bytes    int64  // snapshot file size
	Datasets int
	Users    int
	Tables   int
	Duration time.Duration
}

// Durability is the catalog's journal: it owns the WAL writer and the
// checkpointer. It is attached to the catalog by OpenDurable and closed by
// the server on shutdown.
type Durability struct {
	cat  *Catalog
	dir  string
	w    *wal.Writer
	opts DurableOptions

	recovery RecoveryStats
	metrics  atomic.Pointer[obs.PlatformMetrics]

	ckptMu       sync.Mutex // serializes checkpoints
	lastSnapLSN  atomic.Uint64
	recordsSince atomic.Int64

	trigger chan struct{}
	stop    chan struct{}
	bg      sync.WaitGroup
	closed  atomic.Bool
}

// OpenDurable opens (creating if needed) the data directory, recovers the
// catalog from the latest valid snapshot plus the WAL tail, and returns the
// catalog with its journal attached: every mutation from here on is durable
// before it is visible.
func OpenDurable(dir string, opts *DurableOptions) (*Catalog, *Durability, error) {
	o := opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	c, scan, stats, err := recoverCatalog(dir, o.Logger)
	if err != nil {
		return nil, nil, err
	}
	w, err := wal.OpenWriter(dir, scan, o.SyncMode)
	if err != nil {
		return nil, nil, err
	}
	d := &Durability{cat: c, dir: dir, w: w, opts: o, recovery: stats}
	d.lastSnapLSN.Store(stats.SnapshotLSN)
	d.recordsSince.Store(int64(stats.RecordsReplayed))
	c.SetJournal(d)
	if o.CheckpointEvery > 0 || o.CheckpointRecords > 0 {
		d.startBackground()
	}
	return c, d, nil
}

// OpenReadOnly recovers a catalog from dir without opening the log for
// writing: nothing is truncated, created, or mutated, so it is safe to
// point at a live server's data directory (workload-report does this).
func OpenReadOnly(dir string) (*Catalog, RecoveryStats, error) {
	c, _, stats, err := recoverCatalog(dir, nil)
	if err != nil {
		return nil, RecoveryStats{}, err
	}
	return c, stats, nil
}

// recoverCatalog is the shared restore-then-replay path.
func recoverCatalog(dir string, logger *slog.Logger) (*Catalog, *wal.ScanResult, RecoveryStats, error) {
	start := time.Now()
	stats := RecoveryStats{}
	c := New()
	snaps, err := wal.ListSnapshots(dir)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, stats, err
	}
	for _, si := range snaps {
		s, lerr := wal.LoadSnapshot(si.Path)
		if lerr == nil {
			if rerr := c.restoreSnapshot(s); rerr == nil {
				stats.SnapshotPath = si.Path
				stats.SnapshotLSN = s.LSN
				break
			} else {
				lerr = rerr
			}
		}
		// Corrupt or unrestorable snapshot: fall back to the next older one.
		stats.SnapshotsSkipped++
		if logger != nil {
			logger.Warn("recovery: skipping snapshot", "path", si.Path, "error", lerr)
		}
		c = New()
	}
	scan, err := wal.ScanDir(dir, stats.SnapshotLSN)
	if err != nil {
		return nil, nil, stats, err
	}
	c.mu.Lock()
	for _, rec := range scan.Records {
		if aerr := c.applyLocked(rec); aerr != nil {
			c.mu.Unlock()
			return nil, nil, stats, fmt.Errorf("catalog: replay LSN %d (%s): %w", rec.LSN, rec.Op, aerr)
		}
	}
	c.mu.Unlock()
	stats.RecordsReplayed = len(scan.Records)
	stats.TornBytes = scan.TornBytes
	stats.LastLSN = scan.LastLSN
	stats.Duration = time.Since(start)
	if logger != nil {
		logger.Info("recovery complete",
			"snapshot", stats.SnapshotPath, "snapshotLSN", stats.SnapshotLSN,
			"replayed", stats.RecordsReplayed, "tornBytes", stats.TornBytes,
			"lastLSN", stats.LastLSN, "duration", stats.Duration)
	}
	return c, scan, stats, nil
}

// Append implements Journal: make the record durable, then maybe nudge the
// background checkpointer. Called with the catalog write lock held.
func (d *Durability) Append(rec *wal.Record) error {
	if err := d.w.Append(rec); err != nil {
		return err
	}
	if n := d.opts.CheckpointRecords; n > 0 && d.recordsSince.Add(1) >= int64(n) && d.trigger != nil {
		select {
		case d.trigger <- struct{}{}:
		default:
		}
	}
	return nil
}

// SetMetrics attaches the observability bundle: WAL fsync/append metrics
// flow live, and the recovery counters are credited once.
func (d *Durability) SetMetrics(m *obs.PlatformMetrics) {
	d.metrics.Store(m)
	if m == nil {
		d.w.SetMetrics(nil, nil, nil)
		return
	}
	d.w.SetMetrics(m.WALFsyncSeconds, m.WALRecords, m.WALBytes)
	m.RecoveryRecords.Add(int64(d.recovery.RecordsReplayed))
	m.RecoveryTornBytes.Add(d.recovery.TornBytes)
}

// RecoveryStats reports what startup recovery did.
func (d *Durability) RecoveryStats() RecoveryStats { return d.recovery }

// LastLSN returns the highest durably committed LSN.
func (d *Durability) LastLSN() uint64 { return d.w.LastLSN() }

// Dir returns the data directory.
func (d *Durability) Dir() string { return d.dir }

// Sync blocks until every record appended so far is durable.
func (d *Durability) Sync() error { return d.w.Sync() }

// Checkpoint serializes the full catalog to a new snapshot, rotates the WAL
// so the next segment starts past it, and prunes obsolete files. Safe to
// call concurrently with queries and mutations; checkpoints themselves are
// serialized.
func (d *Durability) Checkpoint() (CheckpointStats, error) {
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	start := time.Now()
	c := d.cat

	// Capture state and its covering LSN under one read lock: mutations
	// hold the write lock across journal-append + apply, so no record can
	// land between the capture and the LSN read.
	c.mu.RLock()
	snap := c.captureSnapshotLocked()
	lsn := d.w.LastLSN()
	c.mu.RUnlock()
	snap.LSN = lsn

	if lsn == d.lastSnapLSN.Load() {
		// Nothing journaled since the last checkpoint (or since the
		// restored snapshot); skip the write.
		d.recordsSince.Store(0)
		return CheckpointStats{LSN: lsn}, nil
	}

	path, err := wal.WriteSnapshot(d.dir, snap)
	if err != nil {
		return CheckpointStats{}, err
	}
	if err := d.w.Rotate(wal.SegmentPath(d.dir, lsn+1)); err != nil {
		return CheckpointStats{}, err
	}
	if err := wal.RemoveObsolete(d.dir, d.opts.SnapshotsKept); err != nil {
		// The checkpoint itself is durable; stale files only cost disk.
		if d.opts.Logger != nil {
			d.opts.Logger.Warn("checkpoint: cleanup failed", "error", err)
		}
	}
	d.lastSnapLSN.Store(lsn)
	d.recordsSince.Store(0)

	stats := CheckpointStats{
		Path: path, LSN: lsn,
		Datasets: len(snap.Datasets), Users: len(snap.Users), Tables: len(snap.Tables),
		Duration: time.Since(start),
	}
	if fi, err := os.Stat(path); err == nil {
		stats.Bytes = fi.Size()
	}
	if m := d.metrics.Load(); m != nil {
		m.CheckpointSeconds.Observe(stats.Duration.Seconds())
	}
	if d.opts.Logger != nil {
		d.opts.Logger.Info("checkpoint complete", "path", path, "lsn", lsn,
			"bytes", stats.Bytes, "duration", stats.Duration)
	}
	return stats, nil
}

// Close stops the checkpointer, flushes and fsyncs the WAL, and closes the
// segment. The catalog stays usable in memory but mutations fail once the
// writer is closed, so detach the journal first if that matters.
func (d *Durability) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	if d.stop != nil {
		close(d.stop)
		d.bg.Wait()
	}
	return d.w.Close()
}

func (d *Durability) startBackground() {
	d.stop = make(chan struct{})
	d.trigger = make(chan struct{}, 1)
	d.bg.Add(1)
	go func() {
		defer d.bg.Done()
		var tick <-chan time.Time
		if d.opts.CheckpointEvery > 0 {
			t := time.NewTicker(d.opts.CheckpointEvery)
			defer t.Stop()
			tick = t.C
		}
		for {
			select {
			case <-d.stop:
				return
			case <-tick:
			case <-d.trigger:
			}
			if _, err := d.Checkpoint(); err != nil && d.opts.Logger != nil {
				d.opts.Logger.Error("background checkpoint failed", "error", err)
			}
		}
	}()
}

// captureSnapshotLocked serializes the entire catalog. Must be called with
// at least a read lock held; output ordering is deterministic.
func (c *Catalog) captureSnapshotLocked() *wal.Snapshot {
	s := &wal.Snapshot{Time: c.now()}
	for _, u := range c.users {
		s.Users = append(s.Users, wal.SnapUser{Name: u.Name, Email: u.Email, Created: u.Created})
	}
	sort.Slice(s.Users, func(i, j int) bool { return s.Users[i].Name < s.Users[j].Name })
	for _, ds := range c.datasets {
		sd := wal.SnapDataset{
			Owner: ds.Owner, Name: ds.Name, SQL: ds.SQL,
			Description: ds.Meta.Description, Tags: ds.Meta.Tags,
			IsWrapper: ds.IsWrapper, Public: ds.Visibility == Public,
			Created: ds.Created, Deleted: ds.Deleted, DOI: ds.DOI,
			Materialized: ds.Materialized, OriginalSQL: ds.OriginalSQL,
			PreviewCols: ds.PreviewCols, Preview: ds.Preview,
			PreviewVersions: cloneVersions(ds.PreviewVersions),
		}
		for u := range ds.SharedWith {
			sd.SharedWith = append(sd.SharedWith, u)
		}
		sort.Strings(sd.SharedWith)
		s.Datasets = append(s.Datasets, sd)
	}
	sort.Slice(s.Datasets, func(i, j int) bool {
		return s.Datasets[i].Owner+"."+s.Datasets[i].Name < s.Datasets[j].Owner+"."+s.Datasets[j].Name
	})
	for _, m := range c.macros {
		s.Macros = append(s.Macros, wal.SnapMacro{Owner: m.Owner, Name: m.Name, Template: m.Template})
	}
	sort.Slice(s.Macros, func(i, j int) bool {
		return s.Macros[i].Owner+"."+s.Macros[i].Name < s.Macros[j].Owner+"."+s.Macros[j].Name
	})
	for key, t := range c.baseTables {
		s.Tables = append(s.Tables, wal.SnapTable{Key: key, Data: t.Data()})
	}
	sort.Slice(s.Tables, func(i, j int) bool { return s.Tables[i].Key < s.Tables[j].Key })
	s.Versions = cloneVersions(c.versions)
	s.ShardMapEpoch = c.shardMapEpoch
	s.ShardMap = append([]byte(nil), c.shardMap...)
	return s
}

// cloneVersions copies a version-counter map (nil and empty both come back
// nil, keeping snapshots byte-stable for unversioned catalogs).
func cloneVersions(m map[string]uint64) map[string]uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// restoreSnapshot rebuilds the catalog's maps from a snapshot. All state is
// built into fresh maps first so a failed restore leaves the catalog empty
// rather than half-filled.
func (c *Catalog) restoreSnapshot(s *wal.Snapshot) error {
	users := map[string]*User{}
	datasets := map[string]*Dataset{}
	baseTables := map[string]*storage.Table{}
	macros := map[string]*Macro{}
	for _, u := range s.Users {
		users[u.Name] = &User{Name: u.Name, Email: u.Email, Created: u.Created}
	}
	for _, st := range s.Tables {
		tbl, err := st.Data.Table()
		if err != nil {
			return fmt.Errorf("catalog: restore table %q: %w", st.Key, err)
		}
		baseTables[st.Key] = tbl
	}
	for _, sd := range s.Datasets {
		q, err := sqlparser.Parse(sd.SQL)
		if err != nil {
			return fmt.Errorf("catalog: restore dataset %s.%s: %w", sd.Owner, sd.Name, err)
		}
		ds := &Dataset{
			Owner: sd.Owner, Name: sd.Name,
			SQL: sd.SQL, Query: q,
			Meta:            Meta{Description: sd.Description, Tags: sd.Tags},
			IsWrapper:       sd.IsWrapper,
			SharedWith:      map[string]bool{},
			PreviewCols:     sd.PreviewCols,
			Preview:         sd.Preview,
			Created:         sd.Created,
			Deleted:         sd.Deleted,
			DOI:             sd.DOI,
			Materialized:    sd.Materialized,
			OriginalSQL:     sd.OriginalSQL,
			PreviewVersions: cloneVersions(sd.PreviewVersions),
		}
		if sd.Public {
			ds.Visibility = Public
		}
		for _, u := range sd.SharedWith {
			ds.SharedWith[u] = true
		}
		datasets[ds.FullName()] = ds
	}
	for _, sm := range s.Macros {
		mac, err := parseMacro(sm.Owner, sm.Name, sm.Template)
		if err != nil {
			return fmt.Errorf("catalog: restore macro %s.%s: %w", sm.Owner, sm.Name, err)
		}
		macros[sm.Owner+"."+sm.Name] = mac
	}
	versions := map[string]uint64{}
	for k, v := range s.Versions {
		versions[k] = v
	}
	c.mu.Lock()
	c.users, c.datasets, c.baseTables, c.macros = users, datasets, baseTables, macros
	c.versions = versions
	c.shardMapEpoch = s.ShardMapEpoch
	c.shardMap = append([]byte(nil), s.ShardMap...)
	c.mu.Unlock()
	return nil
}

// Fingerprint returns a canonical hash of the catalog's durable state —
// users, datasets (including previews and grants), macros, and base-table
// contents. Two catalogs with equal fingerprints are indistinguishable to
// every read path, which is exactly what the crash tests assert about a
// recovered catalog. The query log is deliberately excluded: history has
// its own durability story (the JSONL history log). The shard map is
// excluded too: the failover oracle compares a cluster node against a
// single-node catalog that never installed one (see shardmap.go).
func (c *Catalog) Fingerprint() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h := sha256.New()
	w := func(parts ...string) {
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
		h.Write([]byte{'\n'})
	}
	s := c.captureSnapshotLocked()
	for _, u := range s.Users {
		w("user", u.Name, u.Email, u.Created.UTC().Format(time.RFC3339Nano))
	}
	for _, d := range s.Datasets {
		w("dataset", d.Owner, d.Name, d.SQL, d.Description,
			fmt.Sprint(d.Tags), fmt.Sprint(d.IsWrapper), fmt.Sprint(d.Public),
			fmt.Sprint(d.SharedWith), d.Created.UTC().Format(time.RFC3339Nano),
			fmt.Sprint(d.Deleted), d.DOI, fmt.Sprint(d.Materialized), d.OriginalSQL,
			fmt.Sprint(d.PreviewCols), fmt.Sprint(d.Preview),
			fmt.Sprint(d.PreviewVersions))
	}
	var versioned []string
	for name := range s.Versions {
		versioned = append(versioned, name)
	}
	sort.Strings(versioned)
	for _, name := range versioned {
		w("version", name, fmt.Sprint(s.Versions[name]))
	}
	for _, m := range s.Macros {
		w("macro", m.Owner, m.Name, m.Template)
	}
	for _, t := range s.Tables {
		w("table", t.Key, t.Data.Name)
		for _, col := range t.Data.Cols {
			w("col", col.Name, fmt.Sprint(col.Type))
		}
		for _, row := range t.Data.Rows {
			for _, v := range row {
				w("cell", fmt.Sprint(v.T), fmt.Sprint(v.N), fmt.Sprint(v.I),
					fmt.Sprint(v.F), v.S, v.TS)
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
