package catalog

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentQueriesAndMutations hammers the catalog from many
// goroutines — the REST layer runs every query in its own goroutine, so
// queries race with uploads, view creation, sharing and deletion. Run with
// -race to validate the locking discipline.
func TestConcurrentQueriesAndMutations(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.SetVisibility("alice", "water", Public); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 256)

	// Readers: queries from several users.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			users := []string{"alice", "bob", "carol"}
			for i := 0; i < 30; i++ {
				u := users[(w+i)%len(users)]
				if _, _, err := c.Query(u, "SELECT COUNT(*) FROM [alice.water]"); err != nil {
					errs <- fmt.Errorf("query: %w", err)
					return
				}
			}
		}(w)
	}
	// Writers: uploads and views under distinct names.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("up_%d_%d", w, i)
				if _, err := c.CreateDatasetFromTable("alice", name, seedTable(t, name), Meta{}); err != nil {
					errs <- fmt.Errorf("upload: %w", err)
					return
				}
				vname := fmt.Sprintf("v_%d_%d", w, i)
				if _, err := c.SaveView("alice", vname,
					fmt.Sprintf("SELECT station FROM %s", name), Meta{}); err != nil {
					errs <- fmt.Errorf("view: %w", err)
					return
				}
				if err := c.ShareWith("alice", vname, "bob"); err != nil {
					errs <- fmt.Errorf("share: %w", err)
					return
				}
			}
		}(w)
	}
	// A deleter churning datasets it creates itself.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			name := fmt.Sprintf("tmp_%d", i)
			if _, err := c.CreateDatasetFromTable("carol", name, seedTable(t, name), Meta{}); err != nil {
				errs <- fmt.Errorf("tmp upload: %w", err)
				return
			}
			if _, _, err := c.Query("carol", "SELECT * FROM "+name); err != nil {
				errs <- fmt.Errorf("tmp query: %w", err)
				return
			}
			if err := c.Delete("carol", name); err != nil {
				errs <- fmt.Errorf("tmp delete: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The log captured all queries (4*30 readers + 10 deleter queries).
	if got := c.LogSize(); got != 130 {
		t.Errorf("log size = %d, want 130", got)
	}
}
