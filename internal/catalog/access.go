package catalog

import (
	"fmt"
	"strings"

	"sqlshare/internal/sqlparser"
)

// grantsLocked reports whether user has a direct grant on ds: ownership,
// public visibility, or an explicit share.
func grantsLocked(user string, ds *Dataset) bool {
	if ds.Owner == user {
		return true
	}
	if ds.Visibility == Public {
		return true
	}
	return ds.SharedWith[user]
}

// checkAccessLocked verifies that user may read ds, implementing the
// Microsoft SQL Server ownership-chain semantics described in §3.2: after
// the direct grant on ds, referenced datasets are exempt from re-checking
// only while ownership is unbroken along the chain. When the chain breaks
// (a referenced dataset has a different owner), that dataset must itself
// grant access to user — the A→B→C scenario of the paper fails exactly
// here.
func (c *Catalog) checkAccessLocked(user string, ds *Dataset) error {
	if !grantsLocked(user, ds) {
		return &AccessError{User: user, Dataset: ds.FullName(), Reason: "no permission"}
	}
	return c.checkChainLocked(user, ds, map[string]bool{})
}

func (c *Catalog) checkChainLocked(user string, ds *Dataset, visiting map[string]bool) error {
	full := ds.FullName()
	if visiting[full] {
		return nil
	}
	visiting[full] = true
	defer delete(visiting, full)
	for _, name := range sqlparser.ReferencedTables(ds.Query) {
		if strings.HasPrefix(name, basePrefix) {
			continue // base tables share their wrapper's owner
		}
		ref, err := c.lookupLocked(ds.Owner, name)
		if err != nil {
			return fmt.Errorf("catalog: %s references missing dataset %q", full, name)
		}
		if ref.Owner != ds.Owner {
			// Ownership chain broken: the referenced dataset must grant the
			// querying user directly.
			if !grantsLocked(user, ref) {
				return &AccessError{
					User:    user,
					Dataset: ref.FullName(),
					Reason:  fmt.Sprintf("ownership chain broken at %s (owner %s ≠ %s)", full, ds.Owner, ref.Owner),
				}
			}
		}
		if err := c.checkChainLocked(user, ref, visiting); err != nil {
			return err
		}
	}
	return nil
}

// AccessError reports a permission failure, carrying enough context for
// the REST layer to explain broken ownership chains to users.
type AccessError struct {
	User    string
	Dataset string
	Reason  string
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("catalog: user %q cannot access %q: %s", e.User, e.Dataset, e.Reason)
}

// IsAccessError reports whether err is a permission failure.
func IsAccessError(err error) bool {
	_, ok := err.(*AccessError)
	return ok
}
