package catalog

import (
	"context"
	"fmt"

	"sqlshare/internal/obs"
	"sqlshare/internal/sqlparser"
	"sqlshare/internal/storage"
	"sqlshare/internal/wal"
)

// This file is the catalog side of the write-ahead-log contract. Every
// mutating operation follows the same shape:
//
//  1. validate — all fallible work (name checks, parsing, compilation,
//     quota, query execution) happens first, with no state touched;
//  2. journal — the typed record is appended to the WAL and fsynced; an
//     append failure aborts the mutation with no in-memory effect;
//  3. apply — the in-memory effect is produced by the same replay
//     constructor recovery uses, so a record on disk and the mutation it
//     describes can never diverge.
//
// A record therefore exists on disk if and only if its effect was (or will
// be, after recovery) applied — the append-then-apply invariant the crash
// tests pin down.

// Journal is the durable sink for catalog mutations. Append must return
// only once the record is durable; returning an error aborts the mutation.
// Mutations call Append while holding the catalog write lock, so records
// are journaled in exactly the order their effects apply.
type Journal interface {
	Append(rec *wal.Record) error
}

// SetJournal attaches the durable journal. Pass nil to detach (mutations
// then apply in memory only — the seed behaviour).
func (c *Catalog) SetJournal(j Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
}

// commitLocked journals rec (when a journal is attached) and applies it.
// Must be called with the write lock held, after all validation passed: an
// apply failure after a successful append would leave a durable record
// without its effect, which recovery would then resurrect — so apply
// failures here are programming errors and are surfaced loudly.
//
// When ctx carries an active trace, the append is recorded as a
// "wal.append" span. Append returns only once the record is durable
// (group commit included), so the span duration covers the fsync wait —
// the number an operator needs when a mutation is slow.
func (c *Catalog) commitLocked(ctx context.Context, rec *wal.Record) error {
	if c.journal != nil {
		sp := obs.ChildSpan(ctx, "wal.append")
		sp.SetAttr("op", string(rec.Op))
		err := c.journal.Append(rec)
		sp.EndErr(err)
		if err != nil {
			return fmt.Errorf("catalog: journal append: %w", err)
		}
	}
	if err := c.applyLocked(rec); err != nil {
		return fmt.Errorf("catalog: apply journaled %s: %w", rec.Op, err)
	}
	return nil
}

// applyLocked is the replay constructor dispatch: it produces the in-memory
// effect of one journaled record. Called with the write lock held, both on
// the live mutation path (after validation) and during recovery (where the
// log itself is the validated history).
func (c *Catalog) applyLocked(rec *wal.Record) error {
	switch rec.Op {
	case wal.OpCreateUser:
		return c.applyCreateUser(rec)
	case wal.OpCreateDataset:
		return c.applyCreateDataset(rec)
	case wal.OpSaveView:
		return c.applySaveView(rec)
	case wal.OpAppend:
		return c.applyAppend(rec)
	case wal.OpMaterialize:
		return c.applyMaterialize(rec)
	case wal.OpMaterializeInPlace:
		return c.applyMaterializeInPlace(rec)
	case wal.OpDeleteDataset, wal.OpSetVisibility, wal.OpShare, wal.OpUpdateMeta, wal.OpMintDOI:
		return c.applyDatasetOp(rec)
	case wal.OpSaveMacro:
		return c.applySaveMacro(rec)
	case wal.OpShardMap:
		return c.applyShardMap(rec)
	default:
		return fmt.Errorf("catalog: unknown journal op %q", rec.Op)
	}
}

func (c *Catalog) applyCreateUser(rec *wal.Record) error {
	p := rec.CreateUser
	if p == nil || p.Name == "" {
		return fmt.Errorf("catalog: malformed %s record", rec.Op)
	}
	if _, ok := c.users[p.Name]; ok {
		return fmt.Errorf("catalog: user %q already exists", p.Name)
	}
	c.users[p.Name] = &User{Name: p.Name, Email: p.Email, Created: rec.Time}
	return nil
}

// recordTable returns the live table carried by the mutation path, or
// rebuilds it from the serialized form during replay.
func recordTable(live *storage.Table, data *storage.TableData) (*storage.Table, error) {
	if live != nil {
		return live, nil
	}
	if data == nil {
		return nil, fmt.Errorf("catalog: record carries no table")
	}
	return data.Table()
}

func (c *Catalog) applyCreateDataset(rec *wal.Record) error {
	p := rec.CreateDataset
	if p == nil || p.Owner == "" || p.Name == "" {
		return fmt.Errorf("catalog: malformed %s record", rec.Op)
	}
	tbl, err := recordTable(p.LiveTable, p.Table)
	if err != nil {
		return err
	}
	full := p.Owner + "." + p.Name
	baseName := basePrefix + full
	viewSQL := fmt.Sprintf("SELECT * FROM [%s]", baseName)
	q, err := sqlparser.Parse(viewSQL)
	if err != nil {
		return fmt.Errorf("catalog: wrapper view: %w", err)
	}
	c.baseTables[baseName] = tbl
	ds := &Dataset{
		Owner: p.Owner, Name: p.Name,
		SQL: viewSQL, Query: q,
		Meta:       Meta{Description: p.Description, Tags: p.Tags},
		IsWrapper:  true,
		SharedWith: map[string]bool{},
		Created:    rec.Time,
	}
	c.datasets[full] = ds
	c.bumpVersionLocked(full)
	c.refreshPreviewLocked(ds)
	c.refreshStalePreviewsLocked()
	return nil
}

func (c *Catalog) applySaveView(rec *wal.Record) error {
	p := rec.SaveView
	if p == nil || p.Owner == "" || p.Name == "" {
		return fmt.Errorf("catalog: malformed %s record", rec.Op)
	}
	q, err := sqlparser.Parse(p.SQL)
	if err != nil {
		return err
	}
	ds := &Dataset{
		Owner: p.Owner, Name: p.Name,
		SQL: p.SQL, Query: q,
		Meta:       Meta{Description: p.Description, Tags: p.Tags},
		SharedWith: map[string]bool{},
		Created:    rec.Time,
	}
	c.datasets[p.Owner+"."+p.Name] = ds
	c.bumpVersionLocked(p.Owner + "." + p.Name)
	c.refreshPreviewLocked(ds)
	c.refreshStalePreviewsLocked()
	return nil
}

func (c *Catalog) applyAppend(rec *wal.Record) error {
	p := rec.Append
	if p == nil {
		return fmt.Errorf("catalog: malformed %s record", rec.Op)
	}
	ds, err := c.lookupLocked(p.Owner, p.Dataset)
	if err != nil {
		return err
	}
	nds, err := c.lookupLocked(p.Owner, p.Source)
	if err != nil {
		return err
	}
	sql := fmt.Sprintf("(%s) UNION ALL (SELECT * FROM [%s])", ds.SQL, nds.FullName())
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return err
	}
	ds.SQL = sql
	ds.Query = q
	ds.IsWrapper = false
	c.bumpVersionLocked(ds.FullName())
	c.refreshPreviewLocked(ds)
	c.refreshStalePreviewsLocked()
	return nil
}

func (c *Catalog) applyMaterialize(rec *wal.Record) error {
	p := rec.Materialize
	if p == nil || p.Owner == "" || p.Name == "" {
		return fmt.Errorf("catalog: malformed %s record", rec.Op)
	}
	tbl, err := recordTable(p.LiveTable, p.Table)
	if err != nil {
		return err
	}
	full := p.Owner + "." + p.Name
	baseName := basePrefix + full
	viewSQL := fmt.Sprintf("SELECT * FROM [%s]", baseName)
	q, err := sqlparser.Parse(viewSQL)
	if err != nil {
		return err
	}
	c.baseTables[baseName] = tbl
	snap := &Dataset{
		Owner: p.Owner, Name: p.Name,
		SQL: viewSQL, Query: q,
		Meta:       Meta{Description: "snapshot of " + p.Source},
		IsWrapper:  true,
		SharedWith: map[string]bool{},
		Created:    rec.Time,
	}
	c.datasets[full] = snap
	c.bumpVersionLocked(full)
	c.refreshPreviewLocked(snap)
	c.refreshStalePreviewsLocked()
	return nil
}

func (c *Catalog) applyMaterializeInPlace(rec *wal.Record) error {
	p := rec.Materialize
	if p == nil || !p.InPlace {
		return fmt.Errorf("catalog: malformed %s record", rec.Op)
	}
	ds, err := c.lookupLocked(p.Owner, p.Name)
	if err != nil {
		return err
	}
	tbl, err := recordTable(p.LiveTable, p.Table)
	if err != nil {
		return err
	}
	baseName := basePrefix + ds.FullName() + "#mat"
	viewSQL := fmt.Sprintf("SELECT * FROM [%s]", baseName)
	q, err := sqlparser.Parse(viewSQL)
	if err != nil {
		return err
	}
	c.baseTables[baseName] = tbl
	ds.OriginalSQL = ds.SQL
	ds.SQL = viewSQL
	ds.Query = q
	ds.Materialized = true
	// The snapshot is row-identical at swap time, but the definition's
	// dependency closure changed shape, so stamps referencing the old
	// upstream names must be re-fenced.
	c.bumpVersionLocked(ds.FullName())
	c.refreshStalePreviewsLocked()
	return nil
}

func (c *Catalog) applyDatasetOp(rec *wal.Record) error {
	p := rec.DatasetOp
	if p == nil {
		return fmt.Errorf("catalog: malformed %s record", rec.Op)
	}
	ds, err := c.lookupLocked(p.Owner, p.Dataset)
	if err != nil {
		return err
	}
	switch rec.Op {
	case wal.OpDeleteDataset:
		ds.Deleted = true
		// Deletion changes what dependents resolve to (broken or shadowed
		// references), so it is a content change for fencing purposes. The
		// other ops in this family change only access, which every query
		// re-checks before the cache is probed, so they do not bump.
		c.bumpVersionLocked(ds.FullName())
		c.refreshStalePreviewsLocked()
	case wal.OpSetVisibility:
		if p.Public {
			ds.Visibility = Public
		} else {
			ds.Visibility = Private
		}
	case wal.OpShare:
		if p.User == "" {
			return fmt.Errorf("catalog: malformed %s record", rec.Op)
		}
		ds.SharedWith[p.User] = true
	case wal.OpUpdateMeta:
		ds.Meta = Meta{Description: p.Description, Tags: p.Tags}
	case wal.OpMintDOI:
		if p.DOI == "" {
			return fmt.Errorf("catalog: malformed %s record", rec.Op)
		}
		ds.DOI = p.DOI
	}
	return nil
}

func (c *Catalog) applySaveMacro(rec *wal.Record) error {
	p := rec.SaveMacro
	if p == nil {
		return fmt.Errorf("catalog: malformed %s record", rec.Op)
	}
	mac, err := parseMacro(p.Owner, p.Name, p.Template)
	if err != nil {
		return err
	}
	c.macros[p.Owner+"."+p.Name] = mac
	return nil
}
