package catalog

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

func seedTable(t testing.TB, name string) *storage.Table {
	t.Helper()
	tbl := storage.NewTable(name, storage.Schema{
		{Name: "station", Type: sqltypes.String},
		{Name: "val", Type: sqltypes.Float},
	})
	rows := []storage.Row{
		{sqltypes.NewString("s1"), sqltypes.NewFloat(1)},
		{sqltypes.NewString("s2"), sqltypes.NewFloat(2)},
		{sqltypes.NewString("s3"), sqltypes.NewFloat(3)},
	}
	if err := tbl.Insert(rows); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func newTestCatalog(t testing.TB) *Catalog {
	t.Helper()
	c := New()
	base := time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	var tick atomic.Int64
	c.SetClock(func() time.Time {
		return base.Add(time.Duration(tick.Add(1)) * time.Minute)
	})
	for _, u := range []string{"alice", "bob", "carol"} {
		if _, err := c.CreateUser(u, u+"@uw.edu"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.CreateDatasetFromTable("alice", "water", seedTable(t, "water"), Meta{Description: "water quality"}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUploadCreatesWrapperView(t *testing.T) {
	c := newTestCatalog(t)
	ds, err := c.Dataset("alice", "water")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.IsWrapper {
		t.Error("upload should create a wrapper view")
	}
	if !strings.HasPrefix(ds.SQL, "SELECT * FROM") {
		t.Errorf("wrapper SQL = %q", ds.SQL)
	}
	if len(ds.Preview) != 3 || len(ds.PreviewCols) != 2 {
		t.Errorf("preview: %v %v", ds.PreviewCols, ds.Preview)
	}
	if c.NumBaseTables() != 1 || c.TotalColumns() != 2 {
		t.Errorf("base tables=%d cols=%d", c.NumBaseTables(), c.TotalColumns())
	}
}

func TestQueryOwnDataset(t *testing.T) {
	c := newTestCatalog(t)
	res, entry, err := c.Query("alice", "SELECT station FROM water WHERE val > 1.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if entry.Plan == nil || entry.Meta == nil {
		t.Fatal("log entry should carry plan and metadata")
	}
	if len(entry.Datasets) != 1 || entry.Datasets[0] != "alice.water" {
		t.Errorf("datasets = %v", entry.Datasets)
	}
	if entry.RowsReturned != 2 {
		t.Errorf("rows returned = %d", entry.RowsReturned)
	}
	if c.LogSize() != 1 {
		t.Errorf("log size = %d", c.LogSize())
	}
}

func TestSaveViewStripsOrderBy(t *testing.T) {
	c := newTestCatalog(t)
	ds, err := c.SaveView("alice", "sorted", "SELECT station, val FROM water ORDER BY val DESC", Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ds.SQL, "ORDER BY") {
		t.Errorf("ORDER BY should be stripped: %s", ds.SQL)
	}
	if ds.IsWrapper {
		t.Error("saved view is a derived dataset")
	}
}

func TestSaveViewRejectsBrokenSQL(t *testing.T) {
	c := newTestCatalog(t)
	if _, err := c.SaveView("alice", "broken", "SELECT nothere FROM water", Meta{}); err == nil {
		t.Error("saving a non-compiling view should fail")
	}
	if _, err := c.SaveView("alice", "bad", "SELEC *", Meta{}); err == nil {
		t.Error("saving an unparsable view should fail")
	}
}

func TestViewChainAndDepth(t *testing.T) {
	c := newTestCatalog(t)
	mustView := func(owner, name, sql string) *Dataset {
		ds, err := c.SaveView(owner, name, sql, Meta{})
		if err != nil {
			t.Fatalf("SaveView(%s): %v", name, err)
		}
		return ds
	}
	v1 := mustView("alice", "clean", "SELECT station, val FROM water WHERE val IS NOT NULL")
	v2 := mustView("alice", "rounded", "SELECT station, ROUND(val, 0) AS v FROM clean")
	v3 := mustView("alice", "summary", "SELECT station, COUNT(*) AS n FROM rounded GROUP BY station")
	wrapper, _ := c.Dataset("alice", "water")
	if d := c.ViewDepth(wrapper); d != -1 {
		t.Errorf("wrapper depth = %d", d)
	}
	if d := c.ViewDepth(v1); d != 0 {
		t.Errorf("v1 depth = %d", d)
	}
	if d := c.ViewDepth(v2); d != 1 {
		t.Errorf("v2 depth = %d", d)
	}
	if d := c.ViewDepth(v3); d != 2 {
		t.Errorf("v3 depth = %d", d)
	}
	// Query through the chain.
	res, _, err := c.Query("alice", "SELECT * FROM summary")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("chain query rows = %d", len(res.Rows))
	}
}

func TestPrivateByDefault(t *testing.T) {
	c := newTestCatalog(t)
	if _, _, err := c.Query("bob", "SELECT * FROM [alice.water]"); err == nil {
		t.Fatal("bob should not read alice's private data")
	} else if !IsAccessError(err) {
		t.Fatalf("want AccessError, got %v", err)
	}
}

func TestPublicAndSharedAccess(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.SetVisibility("alice", "water", Public); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query("bob", "SELECT * FROM [alice.water]"); err != nil {
		t.Fatalf("public dataset should be readable: %v", err)
	}
	if err := c.SetVisibility("alice", "water", Private); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query("bob", "SELECT * FROM [alice.water]"); err == nil {
		t.Fatal("private again")
	}
	if err := c.ShareWith("alice", "water", "bob"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query("bob", "SELECT * FROM [alice.water]"); err != nil {
		t.Fatalf("shared dataset should be readable: %v", err)
	}
	if _, _, err := c.Query("carol", "SELECT * FROM [alice.water]"); err == nil {
		t.Fatal("carol was not granted access")
	}
}

// TestOwnershipChainScenario reproduces the paper's A→B→C example (§3.2):
// alice owns T, shares view V1(T) with bob; bob derives V2(V1) and shares
// it with carol; carol's query fails because the ownership chain
// V2→V1→T is broken (it involves two different owners).
func TestOwnershipChainScenario(t *testing.T) {
	c := newTestCatalog(t)
	// Alice derives V1 over her private table and shares it with bob only.
	if _, err := c.SaveView("alice", "v1", "SELECT station, val FROM water WHERE val > 0", Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := c.ShareWith("alice", "v1", "bob"); err != nil {
		t.Fatal(err)
	}
	// Bob can query V1 even though the underlying table was never shared:
	// the chain alice→alice is unbroken.
	if _, _, err := c.Query("bob", "SELECT * FROM [alice.v1]"); err != nil {
		t.Fatalf("bob should read v1 through the unbroken chain: %v", err)
	}
	// Bob derives V2 over V1 and shares it with carol.
	if _, err := c.SaveView("bob", "v2", "SELECT station FROM [alice.v1]", Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := c.ShareWith("bob", "v2", "carol"); err != nil {
		t.Fatal(err)
	}
	// Carol hits the broken chain: v2 (bob) references v1 (alice), and v1
	// does not grant carol.
	_, _, err := c.Query("carol", "SELECT * FROM [bob.v2]")
	if err == nil {
		t.Fatal("carol's query should fail on the broken ownership chain")
	}
	if !IsAccessError(err) {
		t.Fatalf("want AccessError, got: %v", err)
	}
	if !strings.Contains(err.Error(), "ownership chain broken") {
		t.Errorf("error should explain the broken chain: %v", err)
	}
	// Once alice also shares v1 with carol, the query works.
	if err := c.ShareWith("alice", "v1", "carol"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query("carol", "SELECT * FROM [bob.v2]"); err != nil {
		t.Fatalf("carol should now succeed: %v", err)
	}
}

func TestAppendRewritesViewAsUnion(t *testing.T) {
	c := newTestCatalog(t)
	batch2 := seedTable(t, "water2")
	if _, err := c.CreateDatasetFromTable("alice", "water_mar", batch2, Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("alice", "water", "water_mar"); err != nil {
		t.Fatal(err)
	}
	ds, err := c.Dataset("alice", "water")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ds.SQL, "UNION ALL") {
		t.Errorf("append should rewrite as UNION ALL: %s", ds.SQL)
	}
	res, _, err := c.Query("alice", "SELECT * FROM water")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Errorf("rows after append = %d", len(res.Rows))
	}
}

func TestAppendSchemaMismatch(t *testing.T) {
	c := newTestCatalog(t)
	bad := storage.NewTable("bad", storage.Schema{{Name: "only", Type: sqltypes.Int}})
	if err := bad.Insert([]storage.Row{{sqltypes.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateDatasetFromTable("alice", "bad", bad, Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("alice", "water", "bad"); err == nil {
		t.Error("append with mismatched schema should fail")
	}
}

func TestMaterializeSnapshot(t *testing.T) {
	c := newTestCatalog(t)
	if _, err := c.SaveView("alice", "doubled", "SELECT station, val * 2 AS v FROM water", Meta{}); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Materialize("alice", "doubled", "doubled_snap")
	if err != nil {
		t.Fatal(err)
	}
	if !snap.IsWrapper {
		t.Error("snapshot should be a physical dataset")
	}
	// Append more data to water; the snapshot must not change.
	more := seedTable(t, "more")
	if _, err := c.CreateDatasetFromTable("alice", "more", more, Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("alice", "water", "more"); err != nil {
		t.Fatal(err)
	}
	live, _, err := c.Query("alice", "SELECT * FROM doubled")
	if err != nil {
		t.Fatal(err)
	}
	frozen, _, err := c.Query("alice", "SELECT * FROM doubled_snap")
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Rows) != 6 || len(frozen.Rows) != 3 {
		t.Errorf("live=%d frozen=%d", len(live.Rows), len(frozen.Rows))
	}
}

func TestDeleteHidesDataset(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.Delete("alice", "water"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query("alice", "SELECT * FROM water"); err == nil {
		t.Error("deleted dataset should not resolve")
	}
	if got := len(c.Datasets(false)); got != 0 {
		t.Errorf("live datasets = %d", got)
	}
	if got := len(c.Datasets(true)); got != 1 {
		t.Errorf("all datasets = %d", got)
	}
}

func TestFailedQueriesAreLogged(t *testing.T) {
	c := newTestCatalog(t)
	_, entry, err := c.Query("alice", "SELECT missing_col FROM water")
	if err == nil {
		t.Fatal("expected error")
	}
	if entry == nil || entry.Err == "" {
		t.Fatal("failed query should be logged with its error")
	}
	if c.LogSize() != 1 {
		t.Errorf("log size = %d", c.LogSize())
	}
}

func TestOnlyOwnerCanManage(t *testing.T) {
	c := newTestCatalog(t)
	if err := c.SetVisibility("bob", "alice.water", Public); err == nil {
		t.Error("bob cannot publish alice's dataset")
	}
	if err := c.ShareWith("bob", "alice.water", "carol"); err == nil {
		t.Error("bob cannot share alice's dataset")
	}
	if err := c.Delete("bob", "alice.water"); err == nil {
		t.Error("bob cannot delete alice's dataset")
	}
	if err := c.UpdateMeta("bob", "alice.water", Meta{}); err == nil {
		t.Error("bob cannot edit alice's metadata")
	}
}

func TestDuplicateUserAndDataset(t *testing.T) {
	c := newTestCatalog(t)
	if _, err := c.CreateUser("alice", "x"); err == nil {
		t.Error("duplicate user should fail")
	}
	if _, err := c.CreateDatasetFromTable("alice", "water", seedTable(t, "w"), Meta{}); err == nil {
		t.Error("duplicate dataset should fail")
	}
	if _, err := c.SaveView("alice", "water", "SELECT 1 AS x", Meta{}); err == nil {
		t.Error("view over existing name should fail")
	}
}

func TestQueryCannotTouchBaseTables(t *testing.T) {
	c := newTestCatalog(t)
	if _, _, err := c.Query("alice", "SELECT * FROM [~base:alice.water]"); err == nil {
		t.Error("base tables must be internal")
	}
}

func TestShortNameResolution(t *testing.T) {
	c := newTestCatalog(t)
	// bob refers to alice's public dataset by short name: unique match.
	if err := c.SetVisibility("alice", "water", Public); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query("bob", "SELECT * FROM water"); err != nil {
		t.Fatalf("unique short name should resolve: %v", err)
	}
	// A second dataset of the same short name makes it ambiguous.
	if _, err := c.CreateDatasetFromTable("bob", "water", seedTable(t, "bw"), Meta{}); err != nil {
		t.Fatal(err)
	}
	// bob's own dataset now wins (user context).
	res, _, err := c.Query("bob", "SELECT * FROM water")
	if err != nil {
		t.Fatalf("own dataset should win: %v", err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d", len(res.Rows))
	}
	// carol sees two candidates → ambiguous.
	if err := c.SetVisibility("bob", "water", Public); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query("carol", "SELECT * FROM water"); err == nil {
		t.Error("ambiguous short name should error")
	}
}

func TestExplainDoesNotLog(t *testing.T) {
	c := newTestCatalog(t)
	qp, err := c.Explain("alice", "SELECT * FROM water WHERE val > 1")
	if err != nil {
		t.Fatal(err)
	}
	if qp.Root == nil {
		t.Fatal("no plan")
	}
	if c.LogSize() != 0 {
		t.Error("explain must not log")
	}
}

func TestLogTimesUseCatalogClock(t *testing.T) {
	c := newTestCatalog(t)
	_, e1, _ := c.Query("alice", "SELECT * FROM water")
	_, e2, _ := c.Query("alice", "SELECT * FROM water")
	if !e1.Time.Before(e2.Time) {
		t.Errorf("log times not monotonic: %v %v", e1.Time, e2.Time)
	}
	if e1.Time.Year() != 2012 {
		t.Errorf("clock not injected: %v", e1.Time)
	}
}
