package catalog

import (
	"strings"
	"time"

	"sqlshare/internal/engine"
	"sqlshare/internal/plan"
	"sqlshare/internal/sqlparser"
)

// LogEntry is one record of the query log — the unit of the released
// workload corpus (§4). Every executed query is logged with its plan and
// extracted metadata.
type LogEntry struct {
	ID   int
	User string
	SQL  string
	Time time.Time
	// Runtime is the measured wall-clock execution time.
	Runtime time.Duration
	// Datasets lists the dataset full names the query referenced directly.
	Datasets []string
	// Plan and Meta are the Phase 1/Phase 2 extraction outputs.
	Plan *plan.QueryPlan
	Meta *plan.Metadata
	// Err records a failed execution; failed queries are logged too.
	Err string
	// RowsReturned is the result cardinality of a successful run.
	RowsReturned int
}

// Query parses, permission-checks, compiles, executes and logs a query on
// behalf of user. This is the code path behind the REST query endpoint
// (§3.3).
func (c *Catalog) Query(user, sql string) (*engine.Result, *LogEntry, error) {
	start := time.Now()
	res, datasets, planned, execErr := c.runQuery(user, sql)
	elapsed := time.Since(start)

	entry := &LogEntry{
		User:     user,
		SQL:      sql,
		Datasets: datasets,
		Runtime:  elapsed,
	}
	if planned != nil {
		entry.Plan = plan.FromEngine(sql, planned)
		entry.Meta = plan.Extract(sql, entry.Plan)
	}
	if execErr != nil {
		entry.Err = execErr.Error()
	} else {
		entry.RowsReturned = len(res.Rows)
	}

	c.mu.Lock()
	c.seq++
	entry.ID = c.seq
	entry.Time = c.now()
	c.log = append(c.log, entry)
	c.mu.Unlock()

	if execErr != nil {
		return nil, entry, execErr
	}
	return res, entry, nil
}

// runQuery performs the read phase of Query under the read lock.
func (c *Catalog) runQuery(user, sql string) (*engine.Result, []string, *engine.Plan, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, nil, nil, err
	}
	// Permission-check every directly referenced dataset before compiling.
	var datasets []string
	for _, name := range sqlparser.ReferencedTables(q) {
		if strings.HasPrefix(name, basePrefix) {
			return nil, nil, nil, &AccessError{User: user, Dataset: name, Reason: "base tables are internal"}
		}
		ds, err := c.lookupLocked(user, name)
		if err != nil {
			return nil, datasets, nil, err
		}
		if err := c.checkAccessLocked(user, ds); err != nil {
			return nil, datasets, nil, err
		}
		datasets = append(datasets, ds.FullName())
	}
	p, err := engine.Compile(q, c.resolverLocked(user))
	if err != nil {
		return nil, datasets, nil, err
	}
	res, err := p.Execute(&engine.ExecContext{Now: c.now()})
	if err != nil {
		return nil, datasets, p, err
	}
	return res, datasets, p, nil
}

// Explain returns the extracted plan for a query without executing it.
func (c *Catalog) Explain(user, sql string) (*plan.QueryPlan, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	for _, name := range sqlparser.ReferencedTables(q) {
		if strings.HasPrefix(name, basePrefix) {
			continue
		}
		ds, err := c.lookupLocked(user, name)
		if err != nil {
			return nil, err
		}
		if err := c.checkAccessLocked(user, ds); err != nil {
			return nil, err
		}
	}
	p, err := engine.Compile(q, c.resolverLocked(user))
	if err != nil {
		return nil, err
	}
	return plan.FromEngine(sql, p), nil
}

// Log returns the query log in execution order.
func (c *Catalog) Log() []*LogEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*LogEntry(nil), c.log...)
}

// LogSize returns the number of logged queries.
func (c *Catalog) LogSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.log)
}
