package catalog

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"sqlshare/internal/engine"
	"sqlshare/internal/obs"
	"sqlshare/internal/ops"
	"sqlshare/internal/plan"
	"sqlshare/internal/qcache"
	"sqlshare/internal/sqlparser"
)

// Cache states recorded on LogEntry.Cache and surfaced in EXPLAIN ANALYZE
// output, job status and traces.
const (
	// CacheHit: the result was served from the version-fenced cache.
	CacheHit = "hit"
	// CacheMiss: the cache was probed, missed, and the query executed.
	CacheMiss = "miss"
	// CacheBypass: the cache was not probed (detached, NoCache, EXPLAIN,
	// or an unresolvable dependency closure).
	CacheBypass = "bypass"
)

// LogEntry is one record of the query log — the unit of the released
// workload corpus (§4). Every executed query is logged with its plan and
// extracted metadata.
type LogEntry struct {
	ID   int
	User string
	SQL  string
	Time time.Time
	// Runtime is the measured wall-clock execution time.
	Runtime time.Duration
	// Datasets lists the dataset full names the query referenced directly.
	Datasets []string
	// Plan and Meta are the Phase 1/Phase 2 extraction outputs.
	Plan *plan.QueryPlan
	Meta *plan.Metadata
	// Err records a failed execution; failed queries are logged too.
	Err string
	// RowsReturned is the result cardinality of a successful run.
	RowsReturned int
	// Compile and Execute split Runtime into the parse/permission/plan
	// phase and the execution phase.
	Compile time.Duration
	Execute time.Duration
	// Digest is the stable hash of the normalized operator tree
	// (plan.QueryPlan.Digest). It is computed on demand — when a history
	// recorder is attached — and stays empty otherwise, keeping template
	// rendering off the untracked query fast path.
	Digest string
	// Cache records how the result cache participated in this execution:
	// CacheHit, CacheMiss or CacheBypass.
	Cache string
	// TraceID links this entry to the request span tree in the trace store,
	// when the execution ran inside an active trace.
	TraceID string
	// ResultBytes estimates the result payload width (sum of value widths),
	// the bytes dimension of per-user resource accounting.
	ResultBytes int64
}

// QueryOptions tunes one catalog query execution.
type QueryOptions struct {
	// Trace enables per-operator runtime instrumentation; the resulting
	// trace tree is attached to the log entry's Plan.
	Trace bool
	// MaxRows aborts the execution with engine.ErrRowLimit when any
	// operator materializes more than this many rows (0 = unlimited).
	MaxRows int
	// Parallelism caps the workers one query may use for intra-query
	// parallel execution: 0 = automatic (all of GOMAXPROCS), 1 = serial,
	// N>1 = at most N workers. Results are identical at every setting.
	Parallelism int
	// Context, when non-nil, cancels the execution: the engine checks it at
	// every operator boundary and between parallel morsels.
	Context context.Context
	// NoCache forces execution even when a result cache is attached; the
	// run is recorded as CacheBypass and fills nothing.
	NoCache bool
	// MaxBytes aborts the execution with engine.ErrMemLimit when its
	// reserved in-flight memory estimate exceeds this many bytes (0 =
	// unlimited) — the memory twin of MaxRows.
	MaxBytes int64
	// OpsID, when non-empty, is the id this query registers under in the
	// live-operations registry; the async job path passes its job id so
	// operators can kill by the id they already see in /api/queries. Empty
	// lets the registry assign one.
	OpsID string
}

// Query parses, permission-checks, compiles, executes and logs a query on
// behalf of user. This is the code path behind the REST query endpoint
// (§3.3).
func (c *Catalog) Query(user, sql string) (*engine.Result, *LogEntry, error) {
	return c.QueryWithOptions(user, sql, QueryOptions{})
}

// QueryWithOptions is Query with execution tracing and row limits.
func (c *Catalog) QueryWithOptions(user, sql string, opts QueryOptions) (*engine.Result, *LogEntry, error) {
	if opts.Context == nil {
		opts.Context = context.Background()
	}
	start := time.Now()
	// Phase spans are retained-only instrumentation: runQuery records phase
	// boundaries into a flat recorder, and the detail spans (parse →
	// authorize → cache.probe → plan.compile → execute, plus the operator
	// waterfall) materialize under the caller's span only if the tail
	// sampler keeps the trace. A sampled-out point query pays for one
	// recorder and one closure, not five span lifecycles.
	cur := obs.SpanFromContext(opts.Context)
	var rec *phaseRecorder
	if cur != nil {
		rec = recorderPool.Get().(*phaseRecorder)
	}
	// Register with the live-operations registry, when one is attached: the
	// query becomes visible in /api/queries/running and killable by id, and
	// the execution context is replaced by the registry's cancelable one.
	var live *ops.Entry
	if reg := c.liveOps.Load(); reg != nil {
		dop := opts.Parallelism
		if dop <= 0 {
			dop = runtime.GOMAXPROCS(0)
		}
		var lctx context.Context
		live, lctx = reg.Register(opts.Context, opts.OpsID, user, sql, dop)
		opts.Context = lctx
		defer live.Finish()
	}
	run := c.runQuery(user, sql, opts, rec, live)
	elapsed := time.Since(start)
	if rec != nil {
		// DeferOn guarantees Release (back to the pool) whether or not the
		// tail sampler retains the trace and materializes the phases.
		cur.DeferOn(rec)
	}
	res, execErr := run.res, run.err

	entry := &LogEntry{
		User:        user,
		SQL:         sql,
		Datasets:    run.datasets,
		Runtime:     elapsed,
		Compile:     run.compile,
		Execute:     run.execute,
		TraceID:     obs.TraceIDFromContext(opts.Context),
		ResultBytes: run.resultBytes,
	}
	entry.Cache = run.cache
	if run.plan != nil {
		if run.prePlan != nil {
			// The live registry already paid for extraction (for the template
			// shown in /api/queries/running); reuse it instead of re-deriving.
			// Digest stays empty here exactly as on the registry-less path:
			// ensureDigest fills it on demand when history or usage wants it.
			entry.Plan = run.prePlan
			entry.Meta = run.preMeta
		} else {
			entry.Plan = plan.FromEngine(sql, run.plan)
			entry.Meta = plan.Extract(sql, entry.Plan)
		}
		if run.trace != nil {
			entry.Plan.Trace = plan.FromTrace(run.trace)
		}
	} else if run.cache == CacheHit {
		// A hit skips compilation; the log entry reuses the plan artifacts
		// cached alongside the result.
		entry.Plan = run.cachedPlan
		entry.Meta = run.cachedMeta
		entry.Digest = run.cachedDigest
	}
	if execErr == nil && run.explain {
		// EXPLAIN [ANALYZE]: the result set is the operator tree itself —
		// estimates alone, or estimates beside traced actuals.
		if run.analyze {
			res = explainAnalyzeResult(entry.Plan.Trace, run.cache)
		} else {
			res = explainResult(entry.Plan.Root)
		}
	}
	if execErr != nil {
		entry.Err = execErr.Error()
	} else {
		entry.RowsReturned = len(res.Rows)
	}

	c.recordQueryMetrics(run, elapsed, execErr)

	// Fill the result cache outside the lock: the versions in storeKey were
	// captured under the read lock the execution held, so a mutation that
	// raced this fill simply makes the stored entry unreachable.
	if execErr == nil && run.storeKey != "" && entry.Plan != nil {
		if qc := c.resultCache.Load(); qc != nil {
			stored := *entry.Plan
			stored.Trace = nil
			if entry.Digest == "" && entry.Meta != nil {
				entry.Digest = plan.DigestTemplate(entry.Meta.Template)
			}
			qc.PutResult(run.storeKey, &qcache.ResultEntry{
				Result: res,
				Plan:   &stored,
				Meta:   entry.Meta,
				Digest: entry.Digest,
			})
		}
	}

	c.mu.Lock()
	c.seq++
	entry.ID = c.seq
	entry.Time = c.now()
	c.log = append(c.log, entry)
	c.mu.Unlock()

	c.recordHistory(entry)
	c.recordUsage(entry, execErr)

	if execErr != nil {
		return nil, entry, execErr
	}
	return res, entry, nil
}

// recordUsage folds the finished entry into the per-user/per-digest usage
// meters. CPU is estimated as compile+execute wall time — honest for this
// engine's mostly-serial phases; parallel operators under-report slightly,
// which keeps the estimate conservative for admission-control use.
func (c *Catalog) recordUsage(entry *LogEntry, execErr error) {
	m := c.metrics.Load()
	if m == nil || m.Usage == nil {
		return
	}
	ensureDigest(entry)
	cpu := (entry.Compile + entry.Execute).Seconds()
	m.Usage.Record(entry.User, entry.Digest, cpu,
		int64(entry.RowsReturned), entry.ResultBytes,
		execErr != nil, entry.Cache == CacheHit)
}

// resultBytesOf estimates a result's payload width: the sum of value widths
// across all cells, the same estimate the result cache charges.
func resultBytesOf(res *engine.Result) int64 {
	if res == nil {
		return 0
	}
	var n int64
	for _, row := range res.Rows {
		for _, v := range row {
			n += int64(v.SizeBytes())
		}
	}
	return n
}

// queryRun is the outcome of the read phase of a query: the result (or
// error), the permission-checked dataset names, the compiled plan, the
// execution trace, and the compile/execute latency split.
type queryRun struct {
	res      *engine.Result
	datasets []string
	plan     *engine.Plan
	trace    *engine.TraceNode
	compile  time.Duration
	execute  time.Duration
	err      error
	// explain marks an EXPLAIN [ANALYZE] statement; analyze additionally
	// forces tracing and executes the inner query.
	explain bool
	analyze bool
	// workers is the largest worker count any operator actually used
	// (1 = the whole query ran serial).
	workers int
	// cache is the CacheHit/CacheMiss/CacheBypass disposition of the run.
	cache string
	// storeKey, when non-empty, is the version-fenced key a successful
	// result should be stored under. The versions inside it were captured
	// under the same read lock the execution ran under, so filling after
	// the lock is released is safe: a concurrent mutation produces a new
	// key, never a match for this one.
	storeKey string
	// cachedPlan/cachedMeta/cachedDigest carry the plan artifacts of a
	// cache hit so the log entry is populated without recompiling.
	cachedPlan   *plan.QueryPlan
	cachedMeta   *plan.Metadata
	cachedDigest string
	// prePlan/preMeta carry extraction artifacts computed eagerly for the
	// live-operations registry, so the log entry reuses them instead of
	// extracting twice.
	prePlan *plan.QueryPlan
	preMeta *plan.Metadata
	// resultBytes estimates the result payload width (0 on error).
	resultBytes int64
}

// recordQueryMetrics reports one finished query run to the metrics bundle,
// if one is attached. elapsed is the end-to-end latency (the hit histogram
// wants the full round trip, not the phase split).
func (c *Catalog) recordQueryMetrics(run queryRun, elapsed time.Duration, execErr error) {
	m := c.metrics.Load()
	if m == nil {
		return
	}
	m.QueriesTotal.Inc()
	switch run.cache {
	case CacheHit:
		m.CacheHits.Inc()
		m.CacheHitSeconds.Observe(elapsed.Seconds())
	case CacheMiss:
		m.CacheMisses.Inc()
	}
	m.CompileSeconds.Observe(run.compile.Seconds())
	if run.plan != nil {
		m.ExecSeconds.Observe(run.execute.Seconds())
	}
	if run.workers > 1 {
		m.ParallelQueries.Inc()
	}
	if execErr != nil {
		m.QueriesFailed.Inc()
		if errors.Is(execErr, engine.ErrRowLimit) || errors.Is(execErr, engine.ErrMemLimit) {
			m.QueriesAborted.Inc()
		}
	} else if run.res != nil {
		m.RowsReturned.Add(int64(len(run.res.Rows)))
	}
	if run.trace != nil {
		var scanned int64
		walkTrace(run.trace, func(t *engine.TraceNode) {
			if t.Object != "" {
				scanned += t.ActualRows
			}
		})
		m.RowsScanned.Add(scanned)
	}
}

func walkTrace(t *engine.TraceNode, f func(*engine.TraceNode)) {
	if t == nil {
		return
	}
	f(t)
	for _, ch := range t.Children {
		walkTrace(ch, f)
	}
}

// phaseRec is one recorded pipeline phase, enough to rebuild its span.
type phaseRec struct {
	name         string
	start        time.Time
	dur          time.Duration
	err          error
	attrK, attrV string
	rows, bytes  int64
	cpu          time.Duration
}

// setAttr records the phase's single attribute. Nil-safe so call sites can
// chain off endPhase without re-checking the recorder.
func (p *phaseRec) setAttr(k, v string) {
	if p != nil {
		p.attrK, p.attrV = k, v
	}
}

// phaseRecorder captures the pipeline phases of one traced run so their
// detail spans can be deferred to trace assembly (retained traces only).
// A nil recorder — any untraced run — makes every method a no-op.
type phaseRecorder struct {
	phases [6]phaseRec
	n      int
	// last is the previous phase's end — which on the contiguous pipeline
	// is the next phase's start, saving a clock read per boundary.
	last time.Time
	// opTree/execStart carry the engine's per-operator trace so the
	// waterfall can hang off the materialized execute span.
	opTree    *engine.TraceNode
	execStart time.Time
}

// lastTime returns the previous phase's end (the next phase's start).
// Nil-safe: the untraced path takes no extra clock readings.
func (r *phaseRecorder) lastTime() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.last
}

// endPhase records a phase that started at start and just finished.
func (r *phaseRecorder) endPhase(name string, start time.Time, err error) *phaseRec {
	if r == nil || r.n == len(r.phases) {
		return nil
	}
	end := time.Now()
	r.last = end
	p := &r.phases[r.n]
	r.n++
	*p = phaseRec{name: name, start: start, dur: end.Sub(start), err: err}
	return p
}

// recorderPool recycles phase recorders: one is taken per traced query and
// always returned (DeferOn's Release guarantee), so steady-state tracing
// records phases without allocating.
var recorderPool = sync.Pool{New: func() any { return new(phaseRecorder) }}

// Release implements obs.Deferred: reset and return to the pool.
func (r *phaseRecorder) Release() {
	*r = phaseRecorder{}
	recorderPool.Put(r)
}

// Materialize implements obs.Deferred: render the recorded phases as
// completed children of sp, the operator waterfall under the execute
// phase. Runs only after the tail sampler decided to retain the trace.
func (r *phaseRecorder) Materialize(sp *obs.Span) {
	for i := 0; i < r.n; i++ {
		p := &r.phases[i]
		ch := sp.Child(p.name, p.start, p.dur)
		if ch == nil {
			return
		}
		ch.Fail(p.err)
		if p.attrK != "" {
			ch.SetAttr(p.attrK, p.attrV)
		}
		ch.AddRows(p.rows)
		ch.AddBytes(p.bytes)
		ch.AddCPU(p.cpu)
		if p.name == "execute" && r.opTree != nil {
			attachOperatorSpans(ch, r.opTree, r.execStart)
		}
	}
}

// runQuery performs the read phase of Query under the read lock. On traced
// runs each pipeline phase — sql.parse → authorize → cache.probe →
// plan.compile → execute — is recorded into rec (nil when the request
// carries no active trace); the caller defers materializing them as
// siblings under its span so the waterfall reads as the phases of one
// request without costing sampled-out traces anything.
func (c *Catalog) runQuery(user, sql string, opts QueryOptions, rec *phaseRecorder, live *ops.Entry) queryRun {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var run queryRun
	run.cache = CacheBypass
	cur := obs.SpanFromContext(opts.Context)
	live.SetPhase(ops.PhaseParse)
	compileStart := time.Now()
	stmt, err := sqlparser.ParseStatement(sql)
	rec.endPhase("sql.parse", compileStart, err)
	if err != nil {
		run.compile = time.Since(compileStart)
		run.err = err
		return run
	}
	var q sqlparser.QueryExpr
	switch s := stmt.(type) {
	case *sqlparser.ExplainStmt:
		run.explain = true
		run.analyze = s.Analyze
		if s.Analyze {
			// EXPLAIN ANALYZE executes with tracing forced on: the result
			// is the estimate-vs-actual operator tree.
			opts.Trace = true
		}
		q = s.Query
	case *sqlparser.QueryStatement:
		q = s.Query
	}
	// Permission-check every directly referenced dataset before compiling.
	live.SetPhase(ops.PhaseAuthorize)
	authStart := rec.lastTime()
	for _, name := range sqlparser.ReferencedTables(q) {
		if strings.HasPrefix(name, basePrefix) {
			run.compile = time.Since(compileStart)
			run.err = &AccessError{User: user, Dataset: name, Reason: "base tables are internal"}
			rec.endPhase("authorize", authStart, run.err)
			return run
		}
		ds, err := c.lookupLocked(user, name)
		if err != nil {
			run.compile = time.Since(compileStart)
			run.err = err
			rec.endPhase("authorize", authStart, err)
			return run
		}
		if err := c.checkAccessLocked(user, ds); err != nil {
			run.compile = time.Since(compileStart)
			run.err = err
			rec.endPhase("authorize", authStart, err)
			return run
		}
		run.datasets = append(run.datasets, ds.FullName())
	}
	if p := rec.endPhase("authorize", authStart, nil); p != nil {
		p.setAttr("datasets", strconv.Itoa(len(run.datasets)))
	}
	// Probe the version-fenced cache. The closure versions are read under
	// the same read lock the whole run holds, so they describe exactly the
	// catalog state this execution observes — captured before execution
	// starts, as the fencing contract requires. EXPLAIN always bypasses:
	// its product is the plan, not the result.
	cache := c.resultCache.Load()
	cacheable := cache != nil && !opts.NoCache && !run.explain && q != nil
	var resultKey, planKey string
	live.SetPhase(ops.PhaseCacheProbe)
	probeStart := rec.lastTime()
	if cacheable {
		canonical := q.SQL()
		vv, ok := c.versionClosureLocked(user, q)
		if !ok {
			// Unresolvable dependency closure (the compile below will fail,
			// or resolution is ambiguous): don't cache against it.
			cacheable = false
		} else {
			resultKey = qcache.ResultKey(user, canonical, opts.MaxRows, vv)
			planKey = qcache.PlanKey(user, canonical, opts.MaxRows, vv)
			if ent := cache.GetResult(resultKey); ent != nil {
				run.compile = time.Since(compileStart)
				run.cache = CacheHit
				run.res = ent.Result
				run.cachedPlan = ent.Plan
				run.cachedMeta = ent.Meta
				run.cachedDigest = ent.Digest
				run.resultBytes = resultBytesOf(run.res)
				// The cache disposition must land on a *live* span: the
				// tail sampler reads it before deferred phases materialize.
				cur.SetAttr("cache", run.cache)
				if p := rec.endPhase("cache.probe", probeStart, nil); p != nil {
					p.setAttr("cache", run.cache)
					p.rows = int64(len(run.res.Rows))
					p.bytes = run.resultBytes
				}
				return run
			}
			run.cache = CacheMiss
		}
	}
	// Tag the disposition only when a cache was in play or the caller
	// explicitly skipped one: the tail sampler retains "bypass" traces as
	// interesting, which a cacheless server's every query is not.
	tagCache := cache != nil || opts.NoCache
	if tagCache {
		cur.SetAttr("cache", run.cache)
	}
	if p := rec.endPhase("cache.probe", probeStart, nil); p != nil && tagCache {
		p.setAttr("cache", run.cache)
	}
	var p *engine.Plan
	live.SetPhase(ops.PhasePlanCompile)
	compilePhaseStart := rec.lastTime()
	if cacheable {
		p = cache.GetPlan(planKey)
	}
	planCached := p != nil
	if p == nil {
		var err error
		p, err = engine.Compile(q, c.resolverLocked(user))
		if err != nil {
			run.compile = time.Since(compileStart)
			run.err = err
			rec.endPhase("plan.compile", compilePhaseStart, err)
			return run
		}
		if cacheable {
			cache.PutPlan(planKey, p)
		}
	}
	if pr := rec.endPhase("plan.compile", compilePhaseStart, nil); pr != nil && planCached {
		pr.setAttr("planCache", "hit")
	}
	run.compile = time.Since(compileStart)
	run.plan = p
	if live != nil {
		// Publish plan identity to the live registry: the normalized template
		// (what history clusters on; the registry hashes it into a digest only
		// when a snapshot asks) and the progress-estimate denominator. The
		// extraction artifacts ride along on the run so the log entry reuses
		// them — one extraction per query either way.
		run.prePlan = plan.FromEngine(sql, p)
		run.preMeta = plan.Extract(sql, run.prePlan)
		live.SetPlan(run.preMeta.Template, p.EstRowsTotal())
	}
	if run.explain && !run.analyze {
		// Plain EXPLAIN compiles only; the caller renders the estimates.
		return run
	}
	dop := opts.Parallelism
	if dop <= 0 {
		dop = runtime.GOMAXPROCS(0)
	}
	live.SetPhase(ops.PhaseExecute)
	ctx := &engine.ExecContext{
		Now: c.now(), MaxRows: opts.MaxRows, MaxBytes: opts.MaxBytes,
		DOP: dop, Ctx: opts.Context, Progress: live.Progress(),
	}
	if opts.Trace {
		ctx.EnableTracing()
	}
	execStart := time.Now()
	res, err := p.Execute(ctx)
	run.execute = time.Since(execStart)
	run.trace = p.BuildTrace(ctx)
	run.workers = ctx.MaxWorkers()
	ep := rec.endPhase("execute", execStart, err)
	if ep != nil {
		ep.cpu = run.execute
		if run.workers > 1 {
			ep.setAttr("workers", strconv.Itoa(run.workers))
		}
		// The operator tree rides along so the waterfall can hang off the
		// materialized execute span — retained-only work, like the phases.
		rec.opTree = run.trace
		rec.execStart = execStart
	}
	if err != nil {
		run.err = err
		return run
	}
	run.res = res
	run.resultBytes = resultBytesOf(res)
	if ep != nil {
		ep.rows = int64(len(res.Rows))
		ep.bytes = run.resultBytes
	}
	if cacheable && p.Deterministic() {
		run.storeKey = resultKey
	}
	return run
}

// attachOperatorSpans bridges the engine's per-operator TraceNode tree
// (measured by the PR-1 operator tracer, present only on traced runs) into
// the span tree as completed children of the execute span. Operator wall
// times are inclusive of children, and per-operator start offsets are not
// tracked by the engine, so every bridged span starts at the execution
// start: the waterfall shows relative operator cost, not scheduling order.
func attachOperatorSpans(parent *obs.Span, t *engine.TraceNode, start time.Time) {
	if parent == nil || t == nil {
		return
	}
	sp := parent.Child("op:"+t.PhysicalOp, start, t.Wall)
	if sp == nil {
		return
	}
	sp.SetAttr("object", t.Object)
	if t.Workers > 1 {
		sp.SetAttr("workers", strconv.FormatInt(t.Workers, 10))
	}
	sp.AddRows(t.ActualRows)
	sp.AddBytes(t.ActualBytes)
	for _, ch := range t.Children {
		attachOperatorSpans(sp, ch, start)
	}
}

// Explain returns the extracted plan for a query without executing it.
func (c *Catalog) Explain(user, sql string) (*plan.QueryPlan, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	for _, name := range sqlparser.ReferencedTables(q) {
		if strings.HasPrefix(name, basePrefix) {
			continue
		}
		ds, err := c.lookupLocked(user, name)
		if err != nil {
			return nil, err
		}
		if err := c.checkAccessLocked(user, ds); err != nil {
			return nil, err
		}
	}
	p, err := engine.Compile(q, c.resolverLocked(user))
	if err != nil {
		return nil, err
	}
	return plan.FromEngine(sql, p), nil
}

// Log returns the query log in execution order.
func (c *Catalog) Log() []*LogEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*LogEntry(nil), c.log...)
}

// LogSize returns the number of logged queries.
func (c *Catalog) LogSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.log)
}
