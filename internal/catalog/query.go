package catalog

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"time"

	"sqlshare/internal/engine"
	"sqlshare/internal/plan"
	"sqlshare/internal/qcache"
	"sqlshare/internal/sqlparser"
)

// Cache states recorded on LogEntry.Cache and surfaced in EXPLAIN ANALYZE
// output, job status and traces.
const (
	// CacheHit: the result was served from the version-fenced cache.
	CacheHit = "hit"
	// CacheMiss: the cache was probed, missed, and the query executed.
	CacheMiss = "miss"
	// CacheBypass: the cache was not probed (detached, NoCache, EXPLAIN,
	// or an unresolvable dependency closure).
	CacheBypass = "bypass"
)

// LogEntry is one record of the query log — the unit of the released
// workload corpus (§4). Every executed query is logged with its plan and
// extracted metadata.
type LogEntry struct {
	ID   int
	User string
	SQL  string
	Time time.Time
	// Runtime is the measured wall-clock execution time.
	Runtime time.Duration
	// Datasets lists the dataset full names the query referenced directly.
	Datasets []string
	// Plan and Meta are the Phase 1/Phase 2 extraction outputs.
	Plan *plan.QueryPlan
	Meta *plan.Metadata
	// Err records a failed execution; failed queries are logged too.
	Err string
	// RowsReturned is the result cardinality of a successful run.
	RowsReturned int
	// Compile and Execute split Runtime into the parse/permission/plan
	// phase and the execution phase.
	Compile time.Duration
	Execute time.Duration
	// Digest is the stable hash of the normalized operator tree
	// (plan.QueryPlan.Digest). It is computed on demand — when a history
	// recorder is attached — and stays empty otherwise, keeping template
	// rendering off the untracked query fast path.
	Digest string
	// Cache records how the result cache participated in this execution:
	// CacheHit, CacheMiss or CacheBypass.
	Cache string
}

// QueryOptions tunes one catalog query execution.
type QueryOptions struct {
	// Trace enables per-operator runtime instrumentation; the resulting
	// trace tree is attached to the log entry's Plan.
	Trace bool
	// MaxRows aborts the execution with engine.ErrRowLimit when any
	// operator materializes more than this many rows (0 = unlimited).
	MaxRows int
	// Parallelism caps the workers one query may use for intra-query
	// parallel execution: 0 = automatic (all of GOMAXPROCS), 1 = serial,
	// N>1 = at most N workers. Results are identical at every setting.
	Parallelism int
	// Context, when non-nil, cancels the execution: the engine checks it at
	// every operator boundary and between parallel morsels.
	Context context.Context
	// NoCache forces execution even when a result cache is attached; the
	// run is recorded as CacheBypass and fills nothing.
	NoCache bool
}

// Query parses, permission-checks, compiles, executes and logs a query on
// behalf of user. This is the code path behind the REST query endpoint
// (§3.3).
func (c *Catalog) Query(user, sql string) (*engine.Result, *LogEntry, error) {
	return c.QueryWithOptions(user, sql, QueryOptions{})
}

// QueryWithOptions is Query with execution tracing and row limits.
func (c *Catalog) QueryWithOptions(user, sql string, opts QueryOptions) (*engine.Result, *LogEntry, error) {
	start := time.Now()
	run := c.runQuery(user, sql, opts)
	elapsed := time.Since(start)
	res, execErr := run.res, run.err

	entry := &LogEntry{
		User:     user,
		SQL:      sql,
		Datasets: run.datasets,
		Runtime:  elapsed,
		Compile:  run.compile,
		Execute:  run.execute,
	}
	entry.Cache = run.cache
	if run.plan != nil {
		entry.Plan = plan.FromEngine(sql, run.plan)
		entry.Meta = plan.Extract(sql, entry.Plan)
		if run.trace != nil {
			entry.Plan.Trace = plan.FromTrace(run.trace)
		}
	} else if run.cache == CacheHit {
		// A hit skips compilation; the log entry reuses the plan artifacts
		// cached alongside the result.
		entry.Plan = run.cachedPlan
		entry.Meta = run.cachedMeta
		entry.Digest = run.cachedDigest
	}
	if execErr == nil && run.explain {
		// EXPLAIN [ANALYZE]: the result set is the operator tree itself —
		// estimates alone, or estimates beside traced actuals.
		if run.analyze {
			res = explainAnalyzeResult(entry.Plan.Trace, run.cache)
		} else {
			res = explainResult(entry.Plan.Root)
		}
	}
	if execErr != nil {
		entry.Err = execErr.Error()
	} else {
		entry.RowsReturned = len(res.Rows)
	}

	c.recordQueryMetrics(run, elapsed, execErr)

	// Fill the result cache outside the lock: the versions in storeKey were
	// captured under the read lock the execution held, so a mutation that
	// raced this fill simply makes the stored entry unreachable.
	if execErr == nil && run.storeKey != "" && entry.Plan != nil {
		if qc := c.resultCache.Load(); qc != nil {
			stored := *entry.Plan
			stored.Trace = nil
			if entry.Digest == "" && entry.Meta != nil {
				entry.Digest = plan.DigestTemplate(entry.Meta.Template)
			}
			qc.PutResult(run.storeKey, &qcache.ResultEntry{
				Result: res,
				Plan:   &stored,
				Meta:   entry.Meta,
				Digest: entry.Digest,
			})
		}
	}

	c.mu.Lock()
	c.seq++
	entry.ID = c.seq
	entry.Time = c.now()
	c.log = append(c.log, entry)
	c.mu.Unlock()

	c.recordHistory(entry)

	if execErr != nil {
		return nil, entry, execErr
	}
	return res, entry, nil
}

// queryRun is the outcome of the read phase of a query: the result (or
// error), the permission-checked dataset names, the compiled plan, the
// execution trace, and the compile/execute latency split.
type queryRun struct {
	res      *engine.Result
	datasets []string
	plan     *engine.Plan
	trace    *engine.TraceNode
	compile  time.Duration
	execute  time.Duration
	err      error
	// explain marks an EXPLAIN [ANALYZE] statement; analyze additionally
	// forces tracing and executes the inner query.
	explain bool
	analyze bool
	// workers is the largest worker count any operator actually used
	// (1 = the whole query ran serial).
	workers int
	// cache is the CacheHit/CacheMiss/CacheBypass disposition of the run.
	cache string
	// storeKey, when non-empty, is the version-fenced key a successful
	// result should be stored under. The versions inside it were captured
	// under the same read lock the execution ran under, so filling after
	// the lock is released is safe: a concurrent mutation produces a new
	// key, never a match for this one.
	storeKey string
	// cachedPlan/cachedMeta/cachedDigest carry the plan artifacts of a
	// cache hit so the log entry is populated without recompiling.
	cachedPlan   *plan.QueryPlan
	cachedMeta   *plan.Metadata
	cachedDigest string
}

// recordQueryMetrics reports one finished query run to the metrics bundle,
// if one is attached. elapsed is the end-to-end latency (the hit histogram
// wants the full round trip, not the phase split).
func (c *Catalog) recordQueryMetrics(run queryRun, elapsed time.Duration, execErr error) {
	m := c.metrics.Load()
	if m == nil {
		return
	}
	m.QueriesTotal.Inc()
	switch run.cache {
	case CacheHit:
		m.CacheHits.Inc()
		m.CacheHitSeconds.Observe(elapsed.Seconds())
	case CacheMiss:
		m.CacheMisses.Inc()
	}
	m.CompileSeconds.Observe(run.compile.Seconds())
	if run.plan != nil {
		m.ExecSeconds.Observe(run.execute.Seconds())
	}
	if run.workers > 1 {
		m.ParallelQueries.Inc()
	}
	if execErr != nil {
		m.QueriesFailed.Inc()
		if errors.Is(execErr, engine.ErrRowLimit) {
			m.QueriesAborted.Inc()
		}
	} else if run.res != nil {
		m.RowsReturned.Add(int64(len(run.res.Rows)))
	}
	if run.trace != nil {
		var scanned int64
		walkTrace(run.trace, func(t *engine.TraceNode) {
			if t.Object != "" {
				scanned += t.ActualRows
			}
		})
		m.RowsScanned.Add(scanned)
	}
}

func walkTrace(t *engine.TraceNode, f func(*engine.TraceNode)) {
	if t == nil {
		return
	}
	f(t)
	for _, ch := range t.Children {
		walkTrace(ch, f)
	}
}

// runQuery performs the read phase of Query under the read lock.
func (c *Catalog) runQuery(user, sql string, opts QueryOptions) queryRun {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var run queryRun
	run.cache = CacheBypass
	compileStart := time.Now()
	stmt, err := sqlparser.ParseStatement(sql)
	if err != nil {
		run.compile = time.Since(compileStart)
		run.err = err
		return run
	}
	var q sqlparser.QueryExpr
	switch s := stmt.(type) {
	case *sqlparser.ExplainStmt:
		run.explain = true
		run.analyze = s.Analyze
		if s.Analyze {
			// EXPLAIN ANALYZE executes with tracing forced on: the result
			// is the estimate-vs-actual operator tree.
			opts.Trace = true
		}
		q = s.Query
	case *sqlparser.QueryStatement:
		q = s.Query
	}
	// Permission-check every directly referenced dataset before compiling.
	for _, name := range sqlparser.ReferencedTables(q) {
		if strings.HasPrefix(name, basePrefix) {
			run.compile = time.Since(compileStart)
			run.err = &AccessError{User: user, Dataset: name, Reason: "base tables are internal"}
			return run
		}
		ds, err := c.lookupLocked(user, name)
		if err != nil {
			run.compile = time.Since(compileStart)
			run.err = err
			return run
		}
		if err := c.checkAccessLocked(user, ds); err != nil {
			run.compile = time.Since(compileStart)
			run.err = err
			return run
		}
		run.datasets = append(run.datasets, ds.FullName())
	}
	// Probe the version-fenced cache. The closure versions are read under
	// the same read lock the whole run holds, so they describe exactly the
	// catalog state this execution observes — captured before execution
	// starts, as the fencing contract requires. EXPLAIN always bypasses:
	// its product is the plan, not the result.
	cache := c.resultCache.Load()
	cacheable := cache != nil && !opts.NoCache && !run.explain && q != nil
	var resultKey, planKey string
	if cacheable {
		canonical := q.SQL()
		vv, ok := c.versionClosureLocked(user, q)
		if !ok {
			// Unresolvable dependency closure (the compile below will fail,
			// or resolution is ambiguous): don't cache against it.
			cacheable = false
		} else {
			resultKey = qcache.ResultKey(user, canonical, opts.MaxRows, vv)
			planKey = qcache.PlanKey(user, canonical, opts.MaxRows, vv)
			if ent := cache.GetResult(resultKey); ent != nil {
				run.compile = time.Since(compileStart)
				run.cache = CacheHit
				run.res = ent.Result
				run.cachedPlan = ent.Plan
				run.cachedMeta = ent.Meta
				run.cachedDigest = ent.Digest
				return run
			}
			run.cache = CacheMiss
		}
	}
	var p *engine.Plan
	if cacheable {
		p = cache.GetPlan(planKey)
	}
	if p == nil {
		var err error
		p, err = engine.Compile(q, c.resolverLocked(user))
		if err != nil {
			run.compile = time.Since(compileStart)
			run.err = err
			return run
		}
		if cacheable {
			cache.PutPlan(planKey, p)
		}
	}
	run.compile = time.Since(compileStart)
	run.plan = p
	if run.explain && !run.analyze {
		// Plain EXPLAIN compiles only; the caller renders the estimates.
		return run
	}
	dop := opts.Parallelism
	if dop <= 0 {
		dop = runtime.GOMAXPROCS(0)
	}
	ctx := &engine.ExecContext{Now: c.now(), MaxRows: opts.MaxRows, DOP: dop, Ctx: opts.Context}
	if opts.Trace {
		ctx.EnableTracing()
	}
	execStart := time.Now()
	res, err := p.Execute(ctx)
	run.execute = time.Since(execStart)
	run.trace = p.BuildTrace(ctx)
	run.workers = ctx.MaxWorkers()
	if err != nil {
		run.err = err
		return run
	}
	run.res = res
	if cacheable && p.Deterministic() {
		run.storeKey = resultKey
	}
	return run
}

// Explain returns the extracted plan for a query without executing it.
func (c *Catalog) Explain(user, sql string) (*plan.QueryPlan, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	for _, name := range sqlparser.ReferencedTables(q) {
		if strings.HasPrefix(name, basePrefix) {
			continue
		}
		ds, err := c.lookupLocked(user, name)
		if err != nil {
			return nil, err
		}
		if err := c.checkAccessLocked(user, ds); err != nil {
			return nil, err
		}
	}
	p, err := engine.Compile(q, c.resolverLocked(user))
	if err != nil {
		return nil, err
	}
	return plan.FromEngine(sql, p), nil
}

// Log returns the query log in execution order.
func (c *Catalog) Log() []*LogEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*LogEntry(nil), c.log...)
}

// LogSize returns the number of logged queries.
func (c *Catalog) LogSize() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.log)
}
