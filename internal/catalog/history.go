package catalog

import (
	"sync/atomic"

	"sqlshare/internal/history"
	"sqlshare/internal/plan"
)

// historyRef holds the optional continuous-insights recorder. Like the
// metrics bundle, it lives in an atomic pointer so SetHistory is safe
// while queries run.
type historyRef struct {
	h atomic.Pointer[history.History]
}

// SetHistory attaches a query-history recorder; every statement executed
// through the query path is recorded from then on. Passing nil detaches.
func (c *Catalog) SetHistory(h *history.History) {
	if h == nil {
		c.history.h.Store(nil)
		return
	}
	c.history.h.Store(h)
}

// History returns the attached recorder, or nil.
func (c *Catalog) History() *history.History { return c.history.h.Load() }

// ensureDigest lazily fills the entry's plan-template digest. Extract
// already rendered the template into Meta; hashing it directly avoids a
// second template render per statement. Idempotent; a no-op when the entry
// carries no plan artifacts (e.g. a parse failure).
func ensureDigest(entry *LogEntry) {
	if entry.Digest != "" {
		return
	}
	if entry.Meta != nil && entry.Meta.Template != "" {
		entry.Digest = plan.DigestTemplate(entry.Meta.Template)
	} else if entry.Plan != nil {
		entry.Digest = entry.Plan.Digest()
	}
}

// recordHistory converts a finished log entry into a history record and
// hands it to the recorder, if one is attached. Called outside the
// catalog lock, after the entry got its ID and timestamp.
func (c *Catalog) recordHistory(entry *LogEntry) {
	h := c.history.h.Load()
	if h == nil {
		return
	}
	ensureDigest(entry)
	rec := &history.Record{
		ID:            entry.ID,
		Time:          entry.Time,
		User:          entry.User,
		SQL:           entry.SQL,
		Datasets:      entry.Datasets,
		CompileMillis: float64(entry.Compile.Nanoseconds()) / 1e6,
		ExecuteMillis: float64(entry.Execute.Nanoseconds()) / 1e6,
		RuntimeMillis: float64(entry.Runtime.Nanoseconds()) / 1e6,
		RowsReturned:  entry.RowsReturned,
		Err:           entry.Err,
		Digest:        entry.Digest,
		CacheHit:      entry.Cache == CacheHit,
		TraceID:       entry.TraceID,
		ResultBytes:   entry.ResultBytes,
	}
	if entry.Meta != nil && !rec.CacheHit {
		// Cache hits skip execution, so folding their operator and column
		// counts again would double-count the work the fill run already
		// reported. The hit itself is still recorded (digest, latency, row
		// count) so per-template frequency analyses stay complete.
		rec.Operators = entry.Meta.OperatorCounts
		rec.Columns = entry.Meta.Columns
	}
	if entry.Plan != nil {
		rec.Trace = entry.Plan.Trace
	}
	h.Record(rec)
}
