package catalog

import (
	"strings"
	"testing"

	"sqlshare/internal/engine"
	"sqlshare/internal/history"
	"sqlshare/internal/qcache"
)

// resultString flattens a result for byte-identity comparison.
func resultString(res *engine.Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.ColumnNames(), "\x1f"))
	b.WriteByte('\n')
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('\x1f')
			}
			b.WriteString(v.Key())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestVersionCountersBumpOnContentMutations(t *testing.T) {
	c := newTestCatalog(t)
	v := func(full string) uint64 { return c.DatasetVersion(full) }

	if got := v("alice.water"); got != 1 {
		t.Fatalf("version after create = %d, want 1", got)
	}
	if _, err := c.CreateDatasetFromTable("alice", "water2", seedTable(t, "water2"), Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("alice", "water", "water2"); err != nil {
		t.Fatal(err)
	}
	if got := v("alice.water"); got != 2 {
		t.Fatalf("version after append = %d, want 2", got)
	}

	// Access-only mutations must NOT bump: they change who may read, not
	// what is read, and every query re-checks access before the cache.
	if err := c.SetVisibility("alice", "water", Public); err != nil {
		t.Fatal(err)
	}
	if err := c.ShareWith("alice", "water", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := c.UpdateMeta("alice", "water", Meta{Description: "x"}); err != nil {
		t.Fatal(err)
	}
	if got := v("alice.water"); got != 2 {
		t.Fatalf("version after access/meta ops = %d, want 2 (no bump)", got)
	}

	if err := c.MaterializeInPlace("alice", "water"); err != nil {
		t.Fatal(err)
	}
	if got := v("alice.water"); got != 3 {
		t.Fatalf("version after materialize-in-place = %d, want 3", got)
	}
	if err := c.Delete("alice", "water2"); err != nil {
		t.Fatal(err)
	}
	if got := v("alice.water2"); got != 2 {
		t.Fatalf("version after delete = %d, want 2", got)
	}
}

func TestQueryCacheHitMissAndFencing(t *testing.T) {
	c := newTestCatalog(t)
	qc := qcache.New(1<<20, 0)
	c.SetQueryCache(qc)
	const sql = "SELECT station, val FROM water WHERE val > 1 ORDER BY val"

	res1, e1, err := c.Query("alice", sql)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Cache != CacheMiss {
		t.Fatalf("cold run cache = %q, want miss", e1.Cache)
	}
	res2, e2, err := c.Query("alice", sql)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Cache != CacheHit {
		t.Fatalf("warm run cache = %q, want hit", e2.Cache)
	}
	if resultString(res1) != resultString(res2) {
		t.Fatalf("cached result differs:\n%s\nvs\n%s", resultString(res1), resultString(res2))
	}
	if e2.Plan == nil || e2.Meta == nil || e2.Digest == "" {
		t.Error("cache hit should carry plan artifacts on the log entry")
	}
	if e2.Plan.Trace != nil {
		t.Error("cached plan must not carry the fill run's trace")
	}

	// NoCache bypasses without touching the cache.
	_, e3, err := c.QueryWithOptions("alice", sql, QueryOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if e3.Cache != CacheBypass {
		t.Fatalf("NoCache run cache = %q, want bypass", e3.Cache)
	}

	// A content mutation fences the old entry out: next run must miss and
	// see the new rows.
	if _, err := c.CreateDatasetFromTable("alice", "more", seedTable(t, "more"), Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("alice", "water", "more"); err != nil {
		t.Fatal(err)
	}
	res4, e4, err := c.Query("alice", sql)
	if err != nil {
		t.Fatal(err)
	}
	if e4.Cache != CacheMiss {
		t.Fatalf("post-mutation run cache = %q, want miss", e4.Cache)
	}
	if len(res4.Rows) <= len(res1.Rows) {
		t.Fatalf("post-append rows = %d, want more than %d", len(res4.Rows), len(res1.Rows))
	}

	st := qc.Stats()
	if st.ResultHits != 1 || st.ResultMisses != 2 {
		t.Errorf("stats = %+v, want 1 hit / 2 misses", st)
	}
}

func TestQueryCachePerUserAndMaxRowsKeys(t *testing.T) {
	c := newTestCatalog(t)
	c.SetQueryCache(qcache.New(1<<20, 0))
	if err := c.SetVisibility("alice", "water", Public); err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT station FROM [alice.water]"
	if _, e, err := c.Query("alice", sql); err != nil || e.Cache != CacheMiss {
		t.Fatalf("alice cold: %v %v", e.Cache, err)
	}
	// Same SQL, different user: separate key (name resolution and row
	// visibility are per-user).
	if _, e, err := c.Query("bob", sql); err != nil || e.Cache != CacheMiss {
		t.Fatalf("bob cold: %v %v", e.Cache, err)
	}
	if _, e, err := c.Query("bob", sql); err != nil || e.Cache != CacheHit {
		t.Fatalf("bob warm: %v %v", e.Cache, err)
	}
	// Same SQL and user, different row limit: separate key (a limit abort
	// is an observable outcome).
	if _, e, err := c.QueryWithOptions("alice", sql, QueryOptions{MaxRows: 100}); err != nil || e.Cache != CacheMiss {
		t.Fatalf("alice maxrows cold: %v %v", e.Cache, err)
	}
}

func TestQueryCacheViewClosureFencing(t *testing.T) {
	c := newTestCatalog(t)
	c.SetQueryCache(qcache.New(1<<20, 0))
	if _, err := c.SaveView("alice", "clean", "SELECT station, val FROM water WHERE val > 0", Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SaveView("alice", "tops", "SELECT station FROM clean WHERE val > 1", Meta{}); err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT COUNT(*) AS n FROM tops"
	res1, e1, err := c.Query("alice", sql)
	if err != nil || e1.Cache != CacheMiss {
		t.Fatalf("cold: %v %v", e1, err)
	}
	if _, e, err := c.Query("alice", sql); err != nil || e.Cache != CacheHit {
		t.Fatalf("warm: %v %v", e.Cache, err)
	}
	// Mutate the ROOT of the chain (water), two hops below the queried
	// view: §3.4 ownership-chain semantics say the cached result is only
	// valid while ALL upstream datasets are unchanged.
	if _, err := c.CreateDatasetFromTable("alice", "extra", seedTable(t, "extra"), Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("alice", "water", "extra"); err != nil {
		t.Fatal(err)
	}
	res2, e2, err := c.Query("alice", sql)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Cache != CacheMiss {
		t.Fatalf("post-upstream-mutation cache = %q, want miss", e2.Cache)
	}
	if resultString(res1) == resultString(res2) {
		t.Fatal("count over doubled base should change")
	}
}

func TestQueryCacheNondeterministicNeverStored(t *testing.T) {
	c := newTestCatalog(t)
	qc := qcache.New(1<<20, 0)
	c.SetQueryCache(qc)
	const sql = "SELECT station, GETDATE() AS now FROM water"
	for i := 0; i < 3; i++ {
		_, e, err := c.Query("alice", sql)
		if err != nil {
			t.Fatal(err)
		}
		if e.Cache != CacheMiss {
			t.Fatalf("run %d cache = %q: GETDATE results must never be served from cache", i, e.Cache)
		}
	}
	// The RESULT is nondeterministic but the compiled PLAN is not: repeat
	// executions skip recompilation via the plan cache.
	if st := qc.Stats(); st.PlanHits < 2 || st.ResultHits != 0 {
		t.Errorf("plan cache should serve repeat GETDATE compilations: %+v", st)
	}
}

func TestQueryCacheExplainBypasses(t *testing.T) {
	c := newTestCatalog(t)
	c.SetQueryCache(qcache.New(1<<20, 0))
	// Prime the result cache with the inner query.
	if _, _, err := c.Query("alice", "SELECT station FROM water"); err != nil {
		t.Fatal(err)
	}
	res, e, err := c.Query("alice", "EXPLAIN ANALYZE SELECT station FROM water")
	if err != nil {
		t.Fatal(err)
	}
	if e.Cache != CacheBypass {
		t.Fatalf("EXPLAIN ANALYZE cache = %q, want bypass", e.Cache)
	}
	last := res.Rows[len(res.Rows)-1]
	if last[0].String() != "Result Cache" || last[1].String() != "cache: bypass" {
		t.Errorf("EXPLAIN ANALYZE footer = %v", last)
	}
}

func TestQueryCacheAccessCheckedBeforeProbe(t *testing.T) {
	c := newTestCatalog(t)
	c.SetQueryCache(qcache.New(1<<20, 0))
	if err := c.SetVisibility("alice", "water", Public); err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT station FROM [alice.water]"
	// Bob fills the cache while the dataset is public.
	if _, e, err := c.Query("bob", sql); err != nil || e.Cache != CacheMiss {
		t.Fatalf("fill: %v %v", e.Cache, err)
	}
	if _, e, err := c.Query("bob", sql); err != nil || e.Cache != CacheHit {
		t.Fatalf("warm: %v %v", e.Cache, err)
	}
	// Revoking visibility must block bob even though a fresh entry exists:
	// permissions are checked live, before the cache is probed. Visibility
	// changes deliberately do not bump versions, so this is the path that
	// protects revocation.
	if err := c.SetVisibility("alice", "water", Private); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query("bob", sql); !IsAccessError(err) {
		t.Fatalf("revoked access: err = %v, want AccessError", err)
	}
}

func TestPreviewVersionsAgreeWithResultCache(t *testing.T) {
	c := newTestCatalog(t)
	c.SetQueryCache(qcache.New(1<<20, 0))
	if _, err := c.SaveView("alice", "clean", "SELECT station, val FROM water WHERE val > 1", Meta{}); err != nil {
		t.Fatal(err)
	}
	ds, err := c.Dataset("alice", "clean")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.PreviewVersions) == 0 {
		t.Fatal("preview should carry a version stamp")
	}
	if ds.PreviewVersions["alice.water"] != c.DatasetVersion("alice.water") {
		t.Fatalf("stamp %v disagrees with live version %d",
			ds.PreviewVersions, c.DatasetVersion("alice.water"))
	}
	before := len(ds.Preview)

	// Mutating the upstream dataset must refresh the dependent preview in
	// the same commit that fences the result cache: afterwards both agree.
	if _, err := c.CreateDatasetFromTable("alice", "more", seedTable(t, "more"), Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("alice", "water", "more"); err != nil {
		t.Fatal(err)
	}
	ds, err = c.Dataset("alice", "clean")
	if err != nil {
		t.Fatal(err)
	}
	if ds.PreviewVersions["alice.water"] != c.DatasetVersion("alice.water") {
		t.Fatalf("stale preview stamp %v after upstream append (live %d)",
			ds.PreviewVersions, c.DatasetVersion("alice.water"))
	}
	if len(ds.Preview) <= before {
		t.Fatalf("dependent preview rows = %d, want more than %d after upstream append",
			len(ds.Preview), before)
	}
	// The refreshed preview matches what an uncached query sees.
	res, _, err := c.QueryWithOptions("alice", ds.SQL, QueryOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Preview) != len(res.Rows) {
		t.Fatalf("preview rows %d != live query rows %d", len(ds.Preview), len(res.Rows))
	}
	for i, row := range ds.Preview {
		for j, cell := range row {
			if cell != res.Rows[i][j].String() {
				t.Fatalf("preview[%d][%d] = %q, live = %q", i, j, cell, res.Rows[i][j].String())
			}
		}
	}
}

func TestVersionsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, nil)
	if _, err := c.CreateUser("alice", "alice@uw.edu"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateDatasetFromTable("alice", "water", seedTable(t, "water"), Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateDatasetFromTable("alice", "water2", seedTable(t, "water2"), Meta{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Append("alice", "water", "water2"); err != nil {
			t.Fatal(err)
		}
	}
	want := c.DatasetVersion("alice.water")
	if want != 4 {
		t.Fatalf("live version = %d, want 4", want)
	}
	fp := c.Fingerprint()
	// Checkpoint so half the state comes from the snapshot and the rest
	// from log replay on reopen.
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("alice", "water", "water2"); err != nil {
		t.Fatal(err)
	}
	want = c.DatasetVersion("alice.water")
	fp = c.Fingerprint()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	c2, d2 := openDurable(t, dir, nil)
	defer d2.Close()
	if got := c2.DatasetVersion("alice.water"); got != want {
		t.Fatalf("recovered version = %d, want %d", got, want)
	}
	if got := c2.Fingerprint(); got != fp {
		t.Fatalf("recovered fingerprint %s != live %s", got, fp)
	}
}

func TestVersionContinuesAcrossDeleteRecreate(t *testing.T) {
	c := newTestCatalog(t)
	v1 := c.DatasetVersion("alice.water")
	if err := c.Delete("alice", "water"); err != nil {
		t.Fatal(err)
	}
	v2 := c.DatasetVersion("alice.water")
	if v2 <= v1 {
		t.Fatalf("delete should bump: %d -> %d", v1, v2)
	}
	if _, err := c.CreateDatasetFromTable("alice", "water", seedTable(t, "water"), Meta{}); err != nil {
		t.Fatal(err)
	}
	if v3 := c.DatasetVersion("alice.water"); v3 <= v2 {
		t.Fatalf("re-create under the same name must continue the counter (%d -> %d), or old-generation cache keys could come back alive", v2, v3)
	}
}

func TestQueryCacheBypassWhenUnresolvable(t *testing.T) {
	c := newTestCatalog(t)
	c.SetQueryCache(qcache.New(1<<20, 0))
	_, e, err := c.Query("alice", "SELECT * FROM nothere")
	if err == nil {
		t.Fatal("query over a missing dataset should fail")
	}
	if e.Cache == CacheHit || e.Cache == CacheMiss {
		t.Fatalf("unresolvable query cache = %q, want bypass", e.Cache)
	}
}

func TestHistoryFlagsCacheHits(t *testing.T) {
	c := newTestCatalog(t)
	c.SetQueryCache(qcache.New(1<<20, 0))
	h, err := history.New(history.Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.SetHistory(h)
	const sql = "SELECT station, COUNT(*) AS n FROM water GROUP BY station"
	if _, _, err := c.Query("alice", sql); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query("alice", sql); err != nil {
		t.Fatal(err)
	}
	sum := h.Analyzer().Summarize()
	if sum.Queries != 2 || sum.CacheHits != 1 {
		t.Fatalf("summary queries=%d cacheHits=%d, want 2/1", sum.Queries, sum.CacheHits)
	}
	// Operator stats fold only the executed run — a hit must not
	// double-count the fill run's operators.
	var aggExecs int
	for _, rec := range h.Recent(10) {
		if rec.CacheHit {
			if len(rec.Operators) != 0 {
				t.Errorf("cache-hit record carries operator stats: %v", rec.Operators)
			}
		}
		for op, n := range rec.Operators {
			if strings.Contains(strings.ToLower(op), "aggregate") {
				aggExecs += n
			}
		}
	}
	if aggExecs != 1 {
		t.Errorf("aggregate operator folded %d times across records, want 1", aggExecs)
	}
}

// sanity check: the version closure resolves shadowed names with the
// querying user, exactly like execution does.
func TestVersionClosureUsesQueryingUserResolution(t *testing.T) {
	c := newTestCatalog(t)
	c.SetQueryCache(qcache.New(1<<20, 0))
	if err := c.SetVisibility("alice", "water", Public); err != nil {
		t.Fatal(err)
	}
	// Bob creates his own "water"; the bare name now resolves to bob.water
	// for bob and alice.water for alice.
	if _, err := c.CreateDatasetFromTable("bob", "water", seedTable(t, "bobwater"), Meta{}); err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT COUNT(*) AS n FROM water"
	if _, _, err := c.Query("alice", sql); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query("bob", sql); err != nil {
		t.Fatal(err)
	}
	// Mutating bob.water must fence bob's entry but not alice's.
	if _, err := c.CreateDatasetFromTable("bob", "extra", seedTable(t, "extra"), Meta{}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append("bob", "water", "extra"); err != nil {
		t.Fatal(err)
	}
	if _, e, err := c.Query("alice", sql); err != nil || e.Cache != CacheHit {
		t.Fatalf("alice post-bob-mutation: cache = %v, err = %v (want hit: her closure is untouched)", e.Cache, err)
	}
	if _, e, err := c.Query("bob", sql); err != nil || e.Cache != CacheMiss {
		t.Fatalf("bob post-mutation: cache = %v, err = %v (want miss)", e.Cache, err)
	}
}
