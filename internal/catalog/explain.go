package catalog

import (
	"strings"

	"sqlshare/internal/engine"
	"sqlshare/internal/plan"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// explain.go renders EXPLAIN [ANALYZE] operator trees as ordinary result
// sets, so the statements flow through the unchanged query protocol: the
// REST job endpoints and the CLI render them like any other rows.

// opIndent prefixes an operator label with its tree depth.
func opIndent(depth int, label string) string {
	return strings.Repeat("  ", depth) + label
}

// explainResult renders a compiled plan's estimates (plain EXPLAIN — no
// execution happened).
func explainResult(root *plan.Node) *engine.Result {
	res := &engine.Result{Cols: []engine.ColMeta{
		{Name: "operator", Type: sqltypes.String},
		{Name: "object", Type: sqltypes.String},
		{Name: "estRows", Type: sqltypes.Float},
		{Name: "io", Type: sqltypes.Float},
		{Name: "cpu", Type: sqltypes.Float},
		{Name: "totalCost", Type: sqltypes.Float},
		{Name: "vectorized", Type: sqltypes.Bool},
	}}
	var walk func(n *plan.Node, depth int)
	walk = func(n *plan.Node, depth int) {
		if n == nil {
			return
		}
		label := n.PhysicalOp
		if n.LogicalOp != "" && n.LogicalOp != n.PhysicalOp {
			label += " (" + n.LogicalOp + ")"
		}
		res.Rows = append(res.Rows, storage.Row{
			sqltypes.NewString(opIndent(depth, label)),
			sqltypes.NewString(n.Object),
			sqltypes.NewFloat(n.NumRows),
			sqltypes.NewFloat(n.IO),
			sqltypes.NewFloat(n.CPU),
			sqltypes.NewFloat(n.Total),
			sqltypes.NewBool(n.Vectorized),
		})
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return res
}

// explainAnalyzeResult renders a traced execution as the estimate-vs-
// actual operator tree (EXPLAIN ANALYZE) — the SHOWPLAN
// RunTimeInformation pairing of §4, as a result set. cacheState reports how
// the result cache participated in the run; EXPLAIN ANALYZE itself always
// executes (bypass), but the footer keeps the disposition visible where
// users already look for runtime facts.
func explainAnalyzeResult(root *plan.TraceNode, cacheState string) *engine.Result {
	res := &engine.Result{Cols: []engine.ColMeta{
		{Name: "operator", Type: sqltypes.String},
		{Name: "object", Type: sqltypes.String},
		{Name: "estRows", Type: sqltypes.Float},
		{Name: "actualRows", Type: sqltypes.Int},
		{Name: "executions", Type: sqltypes.Int},
		{Name: "wallMs", Type: sqltypes.Float},
		{Name: "bytes", Type: sqltypes.Int},
		{Name: "workers", Type: sqltypes.Int},
		{Name: "vectorized", Type: sqltypes.Bool},
		{Name: "segsScanned", Type: sqltypes.Int},
		{Name: "segsSkipped", Type: sqltypes.Int},
	}}
	var walk func(n *plan.TraceNode, depth int)
	walk = func(n *plan.TraceNode, depth int) {
		if n == nil {
			return
		}
		label := n.PhysicalOp
		if n.LogicalOp != "" && n.LogicalOp != n.PhysicalOp {
			label += " (" + n.LogicalOp + ")"
		}
		res.Rows = append(res.Rows, storage.Row{
			sqltypes.NewString(opIndent(depth, label)),
			sqltypes.NewString(n.Object),
			sqltypes.NewFloat(n.EstRows),
			sqltypes.NewInt(n.ActualRows),
			sqltypes.NewInt(n.Executions),
			sqltypes.NewFloat(n.WallMillis),
			sqltypes.NewInt(n.ActualBytes),
			sqltypes.NewInt(n.Workers),
			sqltypes.NewBool(n.Vectorized),
			sqltypes.NewInt(n.SegmentsScanned),
			sqltypes.NewInt(n.SegmentsSkipped),
		})
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	if cacheState != "" {
		res.Rows = append(res.Rows, storage.Row{
			sqltypes.NewString("Result Cache"),
			sqltypes.NewString("cache: " + cacheState),
			sqltypes.NewFloat(0),
			sqltypes.NewInt(0),
			sqltypes.NewInt(0),
			sqltypes.NewFloat(0),
			sqltypes.NewInt(0),
			sqltypes.NewInt(0),
			sqltypes.NewBool(false),
			sqltypes.NewInt(0),
			sqltypes.NewInt(0),
		})
	}
	return res
}
