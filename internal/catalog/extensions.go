package catalog

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"regexp"
	"sort"
	"strings"

	"sqlshare/internal/engine"
	"sqlshare/internal/sqlext"
	"sqlshare/internal/sqlparser"
	"sqlshare/internal/wal"
)

// ----------------------------------------------------------------- DOIs
//
// §5.2: "One user minted DOIs for datasets in SQLShare; we are adding DOI
// minting into the interface as a feature in the next release." This is
// that feature: a stable, content-derived identifier for a published
// dataset, so papers can cite it.

// doiPrefix is the DataCite test prefix; a production deployment would use
// its registered prefix.
const doiPrefix = "10.5072/sqlshare"

// MintDOI assigns (or returns the existing) DOI for a dataset. Only the
// owner may mint, and the dataset must be public — a DOI is a promise of
// public resolvability. The identifier is derived from the dataset identity
// and definition, so re-minting is idempotent and two different definitions
// never share a DOI.
func (c *Catalog) MintDOI(owner, name string) (string, error) {
	return c.MintDOIContext(context.Background(), owner, name)
}

// MintDOIContext is MintDOI under a trace context.
func (c *Catalog) MintDOIContext(ctx context.Context, owner, name string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ds, err := c.lookupLocked(owner, name)
	if err != nil {
		return "", err
	}
	if ds.Owner != owner {
		return "", fmt.Errorf("catalog: only the owner can mint a DOI for %q", ds.FullName())
	}
	if ds.Visibility != Public {
		return "", fmt.Errorf("catalog: %q must be public before minting a DOI", ds.FullName())
	}
	if ds.DOI != "" {
		return ds.DOI, nil
	}
	sum := sha256.Sum256([]byte(ds.FullName() + "\x00" + ds.SQL))
	doi := fmt.Sprintf("%s.%s", doiPrefix, hex.EncodeToString(sum[:8]))
	rec := &wal.Record{
		Op: wal.OpMintDOI, Time: c.now(),
		DatasetOp: &wal.DatasetOp{Owner: owner, Dataset: ds.FullName(), DOI: doi},
	}
	if err := c.commitLocked(ctx, rec); err != nil {
		return "", err
	}
	return ds.DOI, nil
}

// ResolveDOI finds the dataset carrying a DOI.
func (c *Catalog) ResolveDOI(doi string) (*Dataset, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, ds := range c.datasets {
		if ds.DOI == doi && !ds.Deleted {
			return ds, nil
		}
	}
	return nil, fmt.Errorf("catalog: no dataset with DOI %q", doi)
}

// ----------------------------------------------------------------- macros
//
// §5.2: users applied the same query to multiple source datasets by
// copy-pasting the view definition and changing only the table name —
// "copy-and-paste seems inadequate here; motivated by this finding we
// intend to lift parameterized query macros into the interface". A macro
// differs from a conventional parameterized query in that parameters may
// appear in the FROM clause.

// Macro is a saved query template with named parameters written as
// $name. Parameters may stand for dataset references (FROM positions) or
// literal values.
type Macro struct {
	Owner    string
	Name     string
	Template string
	Params   []string
}

var macroParamRe = regexp.MustCompile(`\$([A-Za-z_][A-Za-z0-9_]*)`)

// parseMacro validates a macro template and infers its parameters from the
// $name placeholders. It is the shared constructor of the save path, journal
// replay and snapshot restore.
func parseMacro(owner, name, template string) (*Macro, error) {
	seen := map[string]bool{}
	var params []string
	for _, m := range macroParamRe.FindAllStringSubmatch(template, -1) {
		if !seen[m[1]] {
			seen[m[1]] = true
			params = append(params, m[1])
		}
	}
	if len(params) == 0 {
		return nil, fmt.Errorf("catalog: macro %q has no $parameters; save a view instead", name)
	}
	sort.Strings(params)
	return &Macro{Owner: owner, Name: name, Template: template, Params: params}, nil
}

// SaveMacro stores a query macro. The template's parameters are inferred
// from its $name placeholders.
func (c *Catalog) SaveMacro(owner, name, template string) (*Macro, error) {
	return c.SaveMacroContext(context.Background(), owner, name, template)
}

// SaveMacroContext is SaveMacro under a trace context.
func (c *Catalog) SaveMacroContext(ctx context.Context, owner, name, template string) (*Macro, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.users[owner]; !ok {
		return nil, fmt.Errorf("catalog: unknown user %q", owner)
	}
	key := owner + "." + name
	if _, ok := c.macros[key]; ok {
		return nil, fmt.Errorf("catalog: macro %q already exists", key)
	}
	if _, err := parseMacro(owner, name, template); err != nil {
		return nil, err
	}
	rec := &wal.Record{
		Op: wal.OpSaveMacro, Time: c.now(),
		SaveMacro: &wal.SaveMacro{Owner: owner, Name: name, Template: template},
	}
	if err := c.commitLocked(ctx, rec); err != nil {
		return nil, err
	}
	return c.macros[key], nil
}

// identRe matches a bare or qualified dataset/column identifier.
var identRe = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)?$`)

// numberRe matches a numeric literal.
var numberRe = regexp.MustCompile(`^-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// ExpandMacro substitutes arguments into a macro and returns the resulting
// SQL, which is parsed to verify it is a well-formed query. Argument values
// must be identifiers (for FROM-position parameters; they are bracketed),
// numbers, or single-quoted strings — anything else is rejected, which
// keeps expansion injection-free.
func (c *Catalog) ExpandMacro(user, name string, args map[string]string) (string, error) {
	c.mu.RLock()
	mac, ok := c.macros[user+"."+name]
	if !ok {
		// Fall back to a unique match across owners (macros shared by
		// convention; a fuller permission model could mirror datasets').
		for key, m := range c.macros {
			if strings.HasSuffix(key, "."+name) {
				if mac != nil {
					c.mu.RUnlock()
					return "", fmt.Errorf("catalog: macro name %q is ambiguous", name)
				}
				mac = m
			}
		}
	}
	c.mu.RUnlock()
	if mac == nil {
		return "", fmt.Errorf("catalog: macro %q not found", name)
	}
	for _, p := range mac.Params {
		if _, ok := args[p]; !ok {
			return "", fmt.Errorf("catalog: macro %q requires argument $%s", name, p)
		}
	}
	sql := macroParamRe.ReplaceAllStringFunc(mac.Template, func(ph string) string {
		val := args[ph[1:]]
		switch {
		case identRe.MatchString(val):
			return "[" + val + "]"
		case numberRe.MatchString(val):
			return val
		case len(val) >= 2 && val[0] == '\'' && val[len(val)-1] == '\'':
			return val
		default:
			return ph // leaves the placeholder; parse below will fail loudly
		}
	})
	if strings.Contains(sql, "$") {
		return "", fmt.Errorf("catalog: macro %q: invalid argument value (identifiers, numbers or 'strings' only)", name)
	}
	if _, err := sqlparser.Parse(sql); err != nil {
		return "", fmt.Errorf("catalog: macro %q expansion does not parse: %w", name, err)
	}
	return sql, nil
}

// QueryMacro expands and executes a macro in one step, logging the
// expanded query like any other.
func (c *Catalog) QueryMacro(user, name string, args map[string]string) (*LogEntry, error) {
	sql, err := c.ExpandMacro(user, name, args)
	if err != nil {
		return nil, err
	}
	_, entry, err := c.Query(user, sql)
	if err != nil {
		return entry, err
	}
	return entry, nil
}

// -------------------------------------------------------- column patterns
//
// §5.3: "the ability to refer to and transform a set of related columns in
// the same way would simplify query authoring" — implemented by
// internal/sqlext; this is the catalog integration that resolves dataset
// schemas for the expansion.

// ExpandPatterns rewrites the column patterns ([var*], [* EXCEPT ...],
// [$v]) in sql against the referenced datasets' schemas and returns the
// plain SQL. Queries without patterns come back unchanged.
func (c *Catalog) ExpandPatterns(user, sql string) (string, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return "", err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	columnsOf := func(table string) ([]string, error) {
		ds, err := c.lookupLocked(user, table)
		if err != nil {
			return nil, err
		}
		p, err := engine.Compile(ds.Query, c.resolverLocked(ds.Owner))
		if err != nil {
			return nil, err
		}
		names := make([]string, len(p.Columns))
		for i, col := range p.Columns {
			names[i] = col.Name
		}
		return names, nil
	}
	changed, err := sqlext.Expand(q, columnsOf)
	if err != nil {
		return "", err
	}
	if !changed {
		return sql, nil
	}
	return q.SQL(), nil
}

// QueryWithPatterns expands column patterns and executes the result,
// logging the expanded query.
func (c *Catalog) QueryWithPatterns(user, sql string) (*engine.Result, *LogEntry, error) {
	expanded, err := c.ExpandPatterns(user, sql)
	if err != nil {
		return nil, nil, err
	}
	return c.Query(user, expanded)
}

// Macros lists a user's macros sorted by name.
func (c *Catalog) Macros(owner string) []*Macro {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Macro
	for _, m := range c.macros {
		if m.Owner == owner {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
