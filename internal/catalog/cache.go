package catalog

import "sqlshare/internal/qcache"

// SetQueryCache attaches (or, with nil, detaches) the version-fenced result
// & plan cache. Safe while queries run: the pointer is read once per query,
// and entries filled against a detached cache are simply dropped with it.
func (c *Catalog) SetQueryCache(q *qcache.Cache) {
	c.resultCache.Store(q)
}

// QueryCache returns the attached cache, or nil when caching is off.
func (c *Catalog) QueryCache() *qcache.Cache {
	return c.resultCache.Load()
}
