package catalog

import (
	"strings"
	"testing"
	"time"

	"sqlshare/internal/history"
)

func TestExplainStatementReturnsEstimates(t *testing.T) {
	c := newTestCatalog(t)
	logBefore := c.LogSize()
	res, entry, err := c.Query("alice", "EXPLAIN SELECT station FROM water WHERE val > 1")
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"operator", "object", "estRows", "io", "cpu", "totalCost", "vectorized"}
	if strings.Join(res.ColumnNames(), ",") != strings.Join(wantCols, ",") {
		t.Fatalf("columns = %v, want %v", res.ColumnNames(), wantCols)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no operator rows")
	}
	// The scan row names the object and carries cost estimates.
	var sawScan bool
	for _, row := range res.Rows {
		if row[1].String() == "water" {
			sawScan = true
		}
	}
	if !sawScan {
		t.Fatalf("no scan of 'water' in EXPLAIN output: %v", res.Rows)
	}
	// Plain EXPLAIN compiles without executing: no trace is attached, but
	// the statement is logged like any other.
	if entry.Plan == nil || entry.Plan.Trace != nil {
		t.Fatalf("plain EXPLAIN should log a plan without a trace (plan=%v)", entry.Plan)
	}
	if c.LogSize() != logBefore+1 {
		t.Errorf("EXPLAIN should append to the query log")
	}
}

func TestExplainAnalyzeExecutesWithTracing(t *testing.T) {
	c := newTestCatalog(t)
	res, entry, err := c.Query("alice", "EXPLAIN ANALYZE SELECT station FROM water WHERE val > 1")
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"operator", "object", "estRows", "actualRows", "executions", "wallMs", "bytes", "workers", "vectorized", "segsScanned", "segsSkipped"}
	if strings.Join(res.ColumnNames(), ",") != strings.Join(wantCols, ",") {
		t.Fatalf("columns = %v, want %v", res.ColumnNames(), wantCols)
	}
	if entry.Plan == nil || entry.Plan.Trace == nil {
		t.Fatal("EXPLAIN ANALYZE must attach a trace even when the caller did not request tracing")
	}
	// Estimates and actuals sit side by side; the scan of water emitted the
	// 2 rows with val > 1.
	var sawActual bool
	for _, row := range res.Rows {
		if row[1].String() == "water" && row[3].String() == "2" {
			sawActual = true
		}
	}
	if !sawActual {
		t.Fatalf("no scan row with actualRows=2 in EXPLAIN ANALYZE output: %v", res.Rows)
	}
}

func TestExplainAnalyzeChecksPermissions(t *testing.T) {
	c := newTestCatalog(t)
	// bob cannot see alice's private dataset, with or without EXPLAIN.
	if _, _, err := c.Query("bob", "EXPLAIN ANALYZE SELECT * FROM [alice.water]"); err == nil {
		t.Fatal("EXPLAIN ANALYZE must enforce dataset permissions")
	}
}

func TestQueryRecordsHistory(t *testing.T) {
	c := newTestCatalog(t)
	h, err := history.New(history.Config{SlowThreshold: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	c.SetHistory(h)
	if c.History() != h {
		t.Fatal("History() should return the attached recorder")
	}

	if _, _, err := c.QueryWithOptions("alice", "SELECT station FROM water WHERE val > 1", QueryOptions{Trace: true}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query("alice", "SELECT nope FROM water"); err == nil {
		t.Fatal("expected failure")
	}

	if got := h.Size(); got != 2 {
		t.Fatalf("history size = %d, want 2 (failures recorded too)", got)
	}
	recent := h.Recent(0)
	if !recent[0].Failed() || recent[1].Failed() {
		t.Fatalf("newest-first order wrong: %+v", recent)
	}
	ok := recent[1]
	if ok.User != "alice" || ok.Digest == "" || ok.Trace == nil {
		t.Errorf("recorded statement incomplete: %+v", ok)
	}
	if ok.RowsReturned != 2 {
		t.Errorf("rowsReturned = %d, want 2", ok.RowsReturned)
	}
	if ok.RuntimeMillis <= 0 {
		t.Errorf("runtimeMillis = %v, want > 0", ok.RuntimeMillis)
	}
	s := h.Analyzer().Summarize()
	if s.Queries != 2 || s.Failed != 1 {
		t.Errorf("analyzer summary = %+v", s)
	}
	// The analyzer folds the bare column-map key onto the dataset full
	// name: one census row per dataset, column counts attached to it.
	touches := h.Analyzer().TableTouches()
	if len(touches) != 1 || touches[0].Table != "alice.water" {
		t.Fatalf("table touches = %+v, want a single alice.water row", touches)
	}
	if touches[0].Columns["val"] == 0 {
		t.Errorf("column counts missing: %+v", touches[0].Columns)
	}

	// Detaching stops recording.
	c.SetHistory(nil)
	c.Query("alice", "SELECT station FROM water")
	if got := h.Size(); got != 2 {
		t.Errorf("history grew after detach: %d", got)
	}
}
