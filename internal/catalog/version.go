package catalog

import (
	"strings"

	"sqlshare/internal/qcache"
	"sqlshare/internal/sqlparser"
)

// Dataset content versions underpin the result cache's fencing and the
// preview staleness check. Every mutation that can change what a dataset
// returns — create, view save, UNION-append, materialize (plain and
// in-place), delete — bumps a monotonic per-name counter inside the WAL
// replay constructor that applies it, so a recovered catalog reproduces
// the live counters exactly. Sharing, visibility, metadata and DOI edits
// do not bump: they change who may read, not what is read, and access is
// re-checked on every query before the cache is ever probed.
//
// Counters live in their own map rather than on *Dataset so that delete +
// re-create under the same name continues the counter instead of starting
// a fresh one: a result cached against the deleted generation can never be
// keyed alive again by a successor dataset.

// bumpVersionLocked advances a dataset's content version. Must be called
// with the write lock held, from an apply function.
func (c *Catalog) bumpVersionLocked(full string) {
	c.versions[full]++
}

// DatasetVersion reports the current content version of a dataset full
// name (0 = never mutated / unknown).
func (c *Catalog) DatasetVersion(full string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.versions[full]
}

// versionClosureLocked resolves the transitive dataset dependency closure
// of q as user would see it and returns one (name, version) pair per
// closure member. Name resolution deliberately mirrors resolverLocked —
// every reference, including those inside expanded view definitions, is
// resolved through lookupLocked in the querying user's context — so the
// closure fences exactly the datasets execution would read. ok=false means
// some reference does not resolve (the query will fail, or resolution is
// ambiguous); the caller must bypass the cache.
func (c *Catalog) versionClosureLocked(user string, q sqlparser.QueryExpr) (qcache.VersionVector, bool) {
	seen := map[string]bool{}
	var vv qcache.VersionVector
	if !c.closureWalkLocked(user, q, seen, &vv) {
		return nil, false
	}
	return vv, true
}

func (c *Catalog) closureWalkLocked(user string, q sqlparser.QueryExpr, seen map[string]bool, vv *qcache.VersionVector) bool {
	for _, name := range sqlparser.ReferencedTables(q) {
		if strings.HasPrefix(name, basePrefix) {
			continue
		}
		ds, err := c.lookupLocked(user, name)
		if err != nil {
			return false
		}
		full := ds.FullName()
		if seen[full] {
			continue
		}
		seen[full] = true
		*vv = append(*vv, qcache.DatasetVersion{Name: full, Version: c.versions[full]})
		if !c.closureWalkLocked(user, ds.Query, seen, vv) {
			return false
		}
	}
	return true
}

// stalePreviewSentinel marks a preview whose dependency closure could not
// be resolved (broken view). The sentinel never matches a live version, so
// the preview is retried on every subsequent mutation and heals itself as
// soon as the definition resolves again.
const stalePreviewSentinel = "~preview:unresolvable"

// previewStampLocked computes the version stamp refreshPreviewLocked
// records next to a preview: the closure versions plus the dataset's own.
// Previews resolve in the owner's naming context, so the walk does too.
func (c *Catalog) previewStampLocked(ds *Dataset) map[string]uint64 {
	seen := map[string]bool{}
	var vv qcache.VersionVector
	if !c.closureWalkLocked(ds.Owner, ds.Query, seen, &vv) {
		return map[string]uint64{stalePreviewSentinel: 1}
	}
	m := make(map[string]uint64, len(vv)+1)
	for _, d := range vv {
		m[d.Name] = d.Version
	}
	m[ds.FullName()] = c.versions[ds.FullName()]
	return m
}

// previewFreshLocked reports whether ds's preview still reflects the
// current versions of everything it was computed from — the same fencing
// the result cache applies, so previews and cached results can never
// disagree about staleness.
func (c *Catalog) previewFreshLocked(ds *Dataset) bool {
	if ds.PreviewVersions == nil {
		return false
	}
	for name, ver := range ds.PreviewVersions {
		if c.versions[name] != ver {
			return false
		}
	}
	return true
}

// refreshStalePreviewsLocked re-renders every live preview whose version
// stamp no longer matches. Called from the apply functions after a version
// bump; one pass suffices because previews depend only on base tables and
// view definitions, never on other previews.
func (c *Catalog) refreshStalePreviewsLocked() {
	for _, ds := range c.datasets {
		if ds.Deleted {
			continue
		}
		if !c.previewFreshLocked(ds) {
			c.refreshPreviewLocked(ds)
		}
	}
}
