package catalog

import (
	"os"
	"path/filepath"
	"testing"

	"sqlshare/internal/wal"
)

// workloadStep is one catalog mutation producing exactly one WAL record.
type workloadStep struct {
	name string
	fn   func(t *testing.T, c *Catalog)
}

// scriptedWorkload exercises every journaled operation once. Each step
// appends exactly one record, so step i's post-state corresponds to a log
// prefix of i records — the invariant TestCrashMatrix leans on.
func scriptedWorkload(t *testing.T) []workloadStep {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	return []workloadStep{
		{"create_user alice", func(t *testing.T, c *Catalog) {
			_, err := c.CreateUser("alice", "alice@uw.edu")
			must(err)
		}},
		{"create_user bob", func(t *testing.T, c *Catalog) {
			_, err := c.CreateUser("bob", "bob@uw.edu")
			must(err)
		}},
		{"upload water", func(t *testing.T, c *Catalog) {
			_, err := c.CreateDatasetFromTable("alice", "water", seedTable(t, "water"),
				Meta{Description: "water quality", Tags: []string{"env"}})
			must(err)
		}},
		{"save_view clean", func(t *testing.T, c *Catalog) {
			_, err := c.SaveView("alice", "clean", "SELECT station FROM water", Meta{})
			must(err)
		}},
		{"upload water2", func(t *testing.T, c *Catalog) {
			_, err := c.CreateDatasetFromTable("alice", "water2", seedTable(t, "water2"), Meta{})
			must(err)
		}},
		{"append water2 into water", func(t *testing.T, c *Catalog) {
			must(c.Append("alice", "water", "water2"))
		}},
		{"publish water", func(t *testing.T, c *Catalog) {
			must(c.SetVisibility("alice", "water", Public))
		}},
		{"share clean with bob", func(t *testing.T, c *Catalog) {
			must(c.ShareWith("alice", "clean", "bob"))
		}},
		{"update clean meta", func(t *testing.T, c *Catalog) {
			must(c.UpdateMeta("alice", "clean", Meta{Description: "stations only", Tags: []string{"derived", "env"}}))
		}},
		{"mint DOI for water", func(t *testing.T, c *Catalog) {
			_, err := c.MintDOI("alice", "water")
			must(err)
		}},
		{"save macro", func(t *testing.T, c *Catalog) {
			_, err := c.SaveMacro("alice", "stats", "SELECT COUNT(*) FROM $t")
			must(err)
		}},
		{"materialize clean", func(t *testing.T, c *Catalog) {
			_, err := c.Materialize("alice", "clean", "cleansnap")
			must(err)
		}},
		{"materialize clean in place", func(t *testing.T, c *Catalog) {
			must(c.MaterializeInPlace("alice", "clean"))
		}},
		{"delete cleansnap", func(t *testing.T, c *Catalog) {
			must(c.Delete("alice", "cleansnap"))
		}},
	}
}

func openDurable(t *testing.T, dir string, opts *DurableOptions) (*Catalog, *Durability) {
	t.Helper()
	c, d, err := OpenDurable(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, d
}

// TestDurableRoundTrip runs the whole workload durably, reopens the
// directory and requires the recovered catalog to be indistinguishable.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, nil)
	for _, step := range scriptedWorkload(t) {
		step.fn(t, c)
	}
	want := c.Fingerprint()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	c2, d2 := openDurable(t, dir, nil)
	defer d2.Close()
	if got := c2.Fingerprint(); got != want {
		t.Fatalf("recovered fingerprint %s != live %s", got, want)
	}
	rec := d2.RecoveryStats()
	if rec.RecordsReplayed != 14 || rec.SnapshotPath != "" {
		t.Errorf("recovery stats: %+v", rec)
	}
	// The recovered catalog accepts new mutations.
	if _, err := c2.CreateUser("carol", "carol@uw.edu"); err != nil {
		t.Fatal(err)
	}
	if d2.LastLSN() != 15 {
		t.Errorf("LastLSN after post-recovery mutation = %d, want 15", d2.LastLSN())
	}
}

// TestCrashMatrix kills the log at every record boundary and at several
// offsets inside every record, and requires recovery to land exactly on the
// state the surviving prefix describes — bit-for-bit, via Fingerprint.
func TestCrashMatrix(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, &DurableOptions{SyncMode: wal.SyncNone})
	fps := []string{c.Fingerprint()} // fps[i] = state after i records
	steps := scriptedWorkload(t)
	for _, step := range steps {
		step.fn(t, c)
		fps = append(fps, c.Fingerprint())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	seg := wal.SegmentPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recs, validLen, err := wal.DecodeAll(data)
	if err != nil || validLen != int64(len(data)) {
		t.Fatalf("workload segment: %d records, validLen %d/%d, err %v", len(recs), validLen, len(data), err)
	}
	if len(recs) != len(steps) {
		t.Fatalf("%d records for %d steps — the 1:1 invariant broke", len(recs), len(steps))
	}
	// boundaries[i] = file offset just after record i.
	boundaries := []int64{8} // len of the segment magic
	for _, rec := range recs {
		enc, err := wal.EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, boundaries[len(boundaries)-1]+int64(len(enc)))
	}

	recoverAt := func(t *testing.T, cut int64, wantRecords int, wantTorn bool) {
		t.Helper()
		crashDir := t.TempDir()
		if err := os.WriteFile(wal.SegmentPath(crashDir, 1), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rc, rd, err := OpenDurable(crashDir, &DurableOptions{SyncMode: wal.SyncNone})
		if err != nil {
			t.Fatalf("recovery at cut %d: %v", cut, err)
		}
		defer rd.Close()
		stats := rd.RecoveryStats()
		if stats.RecordsReplayed != wantRecords {
			t.Errorf("cut %d: replayed %d records, want %d", cut, stats.RecordsReplayed, wantRecords)
		}
		if wantTorn && stats.TornBytes == 0 {
			t.Errorf("cut %d: expected a torn tail", cut)
		}
		if got := rc.Fingerprint(); got != fps[wantRecords] {
			t.Errorf("cut %d: recovered state does not match the %d-record prefix", cut, wantRecords)
		}
		// The torn tail is gone and the log accepts appends again.
		if _, err := rc.CreateUser("postcrash", ""); err != nil {
			t.Errorf("cut %d: post-recovery mutation: %v", cut, err)
		}
		if rd.LastLSN() != uint64(wantRecords)+1 {
			t.Errorf("cut %d: post-recovery LSN %d, want %d", cut, rd.LastLSN(), wantRecords+1)
		}
	}

	for i := 0; i < len(recs); i++ {
		// Crash exactly at the boundary after record i…
		recoverAt(t, boundaries[i], i, false)
		// …and torn inside record i+1: right after the boundary, mid-frame,
		// and one byte short of complete.
		next := boundaries[i+1] - boundaries[i]
		for _, delta := range []int64{1, next / 2, next - 1} {
			recoverAt(t, boundaries[i]+delta, i, true)
		}
	}
	recoverAt(t, boundaries[len(recs)], len(recs), false) // intact log
}

// TestFailedMutationsJournalNothing pins satellite invariant #2: a mutation
// that fails validation must leave neither a WAL record nor an in-memory
// effect.
func TestFailedMutationsJournalNothing(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, nil)
	defer d.Close()
	if _, err := c.CreateUser("alice", "alice@uw.edu"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateDatasetFromTable("alice", "water", seedTable(t, "water"), Meta{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SaveMacro("alice", "m", "SELECT * FROM $t"); err != nil {
		t.Fatal(err)
	}
	baseLSN := d.LastLSN()
	baseFP := c.Fingerprint()

	failures := []struct {
		name string
		fn   func() error
	}{
		{"empty user name", func() error { _, err := c.CreateUser("", ""); return err }},
		{"duplicate user", func() error { _, err := c.CreateUser("alice", ""); return err }},
		{"upload for unknown owner", func() error {
			_, err := c.CreateDatasetFromTable("nobody", "x", seedTable(t, "x"), Meta{})
			return err
		}},
		{"duplicate dataset", func() error {
			_, err := c.CreateDatasetFromTable("alice", "water", seedTable(t, "water"), Meta{})
			return err
		}},
		{"upload over quota", func() error {
			c.SetQuotaBytes(1)
			defer c.SetQuotaBytes(0)
			_, err := c.CreateDatasetFromTable("alice", "big", seedTable(t, "big"), Meta{})
			return err
		}},
		{"view with bad SQL", func() error { _, err := c.SaveView("alice", "v", "SELEC nope", Meta{}); return err }},
		{"view that does not compile", func() error {
			_, err := c.SaveView("alice", "v", "SELECT * FROM missing_table", Meta{})
			return err
		}},
		{"append to missing dataset", func() error { return c.Append("alice", "nope", "water") }},
		{"share with unknown user", func() error { return c.ShareWith("alice", "water", "nobody") }},
		{"delete by non-owner", func() error {
			if _, err := c.CreateUser("eve", ""); err != nil { // one real record
				return nil
			}
			return c.Delete("eve", "alice.water")
		}},
		{"DOI on private dataset", func() error { _, err := c.MintDOI("alice", "water"); return err }},
		{"macro without params", func() error { _, err := c.SaveMacro("alice", "m2", "SELECT 1"); return err }},
		{"duplicate macro", func() error { _, err := c.SaveMacro("alice", "m", "SELECT * FROM $t"); return err }},
		{"materialize missing dataset", func() error { _, err := c.Materialize("alice", "nope", "snap"); return err }},
		{"materialize wrapper in place", func() error { return c.MaterializeInPlace("alice", "water") }},
	}
	// "delete by non-owner" creates user eve first, which is one legitimate
	// record; account for it.
	extraLSN := uint64(0)
	for _, f := range failures {
		if f.name == "delete by non-owner" {
			extraLSN = 1
		}
		if err := f.fn(); err == nil {
			t.Errorf("%s: expected an error", f.name)
		}
		if got := d.LastLSN(); got != baseLSN+extraLSN {
			t.Errorf("%s: LSN advanced to %d (base %d) — a failed mutation was journaled", f.name, got, baseLSN)
		}
	}

	// Reopen: the recovered state matches the live one, proving no failed
	// mutation left a record behind.
	liveFP := c.Fingerprint()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	c2, d2 := openDurable(t, dir, nil)
	defer d2.Close()
	if got := c2.Fingerprint(); got != liveFP {
		t.Fatalf("recovered fingerprint differs after failed mutations")
	}
	_ = baseFP
}

// TestCheckpointAndRecovery snapshots mid-workload and requires the next
// boot to restore the snapshot and replay only the tail.
func TestCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, nil)
	steps := scriptedWorkload(t)
	for _, step := range steps[:7] {
		step.fn(t, c)
	}
	stats, err := d.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if stats.LSN != 7 || stats.Path == "" || stats.Users != 2 {
		t.Fatalf("checkpoint stats: %+v", stats)
	}
	// A checkpoint with nothing new is skipped.
	again, err := d.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if again.Path != "" {
		t.Errorf("no-op checkpoint wrote %s", again.Path)
	}
	for _, step := range steps[7:] {
		step.fn(t, c)
	}
	want := c.Fingerprint()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	c2, d2 := openDurable(t, dir, nil)
	rec := d2.RecoveryStats()
	if rec.SnapshotLSN != 7 || rec.RecordsReplayed != 7 {
		t.Errorf("recovery stats: %+v", rec)
	}
	if got := c2.Fingerprint(); got != want {
		t.Fatalf("recovered fingerprint differs after checkpointed recovery")
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotFallback corrupts the newest snapshot and requires recovery
// to fall back (to an older snapshot or to full replay) with no data loss.
func TestSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, nil)
	steps := scriptedWorkload(t)
	for _, step := range steps[:7] {
		step.fn(t, c)
	}
	if _, err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for _, step := range steps[7:12] {
		step.fn(t, c)
	}
	ck2, err := d.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range steps[12:] {
		step.fn(t, c)
	}
	want := c.Fingerprint()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte in the newest snapshot.
	raw, err := os.ReadFile(ck2.Path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(ck2.Path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, d2 := openDurable(t, dir, nil)
	defer d2.Close()
	rec := d2.RecoveryStats()
	if rec.SnapshotsSkipped != 1 || rec.SnapshotLSN != 7 {
		t.Errorf("fallback recovery stats: %+v", rec)
	}
	if got := c2.Fingerprint(); got != want {
		t.Fatalf("fallback recovery lost data")
	}
}

// TestOpenReadOnly recovers without modifying the directory, even with a
// torn tail on disk.
func TestOpenReadOnly(t *testing.T) {
	dir := t.TempDir()
	c, d := openDurable(t, dir, &DurableOptions{SyncMode: wal.SyncNone})
	for _, step := range scriptedWorkload(t) {
		step.fn(t, c)
	}
	want := c.Fingerprint()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record.
	seg := wal.SegmentPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := wal.DecodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	last, err := wal.EncodeRecord(recs[len(recs)-1])
	if err != nil {
		t.Fatal(err)
	}
	torn := data[:int64(len(data))-int64(len(last))/2]
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	before := dirListing(t, dir)
	ro, stats, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RecordsReplayed != len(recs)-1 || stats.TornBytes == 0 {
		t.Errorf("read-only recovery stats: %+v", stats)
	}
	if got := ro.Fingerprint(); got == want {
		t.Errorf("torn-tail recovery should differ from the full state")
	}
	if after := dirListing(t, dir); before != after {
		t.Errorf("OpenReadOnly modified the directory:\nbefore %s\nafter  %s", before, after)
	}
	// A writable open then truncates the torn tail as usual.
	c2, d2 := openDurable(t, dir, &DurableOptions{SyncMode: wal.SyncNone})
	defer d2.Close()
	if c2.Fingerprint() != ro.Fingerprint() {
		t.Errorf("writable recovery disagrees with read-only recovery")
	}
}

func dirListing(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := ""
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		out += e.Name() + ":" + info.ModTime().String() + ":" + filepath.Ext(e.Name()) + ":" + fmtInt(info.Size()) + ";"
	}
	return out
}

func fmtInt(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}
