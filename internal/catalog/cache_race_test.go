package catalog

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlshare/internal/qcache"
)

// TestQueryCacheUnderConcurrentMutation hammers the cache with reader
// goroutines while mutators append to the queried dataset. The invariant
// under test is the version fence itself: a reader that observed K
// committed appends before submitting its query must never receive a
// result older than those K appends, no matter how the cache interleaves
// probes, fills and evictions. Run under -race in CI (`make ci`).
func TestQueryCacheUnderConcurrentMutation(t *testing.T) {
	c := newTestCatalog(t)
	qc := qcache.New(4<<20, 0)
	c.SetQueryCache(qc)
	if _, err := c.CreateDatasetFromTable("alice", "events", seedTable(t, "events"), Meta{}); err != nil {
		t.Fatal(err)
	}
	const (
		mutators      = 4
		appendsPer    = 5
		readers       = 8
		readsPer      = 50
		rowsPerAppend = 3 // seedTable rows
	)
	before := runtime.NumGoroutine()

	// committed counts appends whose catalog commit has completed; a
	// reader snapshots it BEFORE querying, so every committed append at
	// that instant must be visible in the answer.
	var committed atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, mutators+readers)

	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < appendsPer; i++ {
				name := fmt.Sprintf("chunk_%d_%d", m, i)
				if _, err := c.CreateDatasetFromTable("alice", name, seedTable(t, name), Meta{}); err != nil {
					errs <- err
					return
				}
				if err := c.Append("alice", "events", name); err != nil {
					errs <- err
					return
				}
				committed.Add(1)
			}
		}(m)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readsPer; i++ {
				lo := committed.Load()
				res, _, err := c.Query("alice", "SELECT COUNT(*) AS n FROM events")
				if err != nil {
					errs <- err
					return
				}
				n := res.Rows[0][0].Int()
				min := rowsPerAppend * (1 + lo)
				max := rowsPerAppend * (1 + int64(mutators*appendsPer))
				if n < min {
					errs <- fmt.Errorf("stale result: count %d after %d committed appends (want >= %d)", n, lo, min)
					return
				}
				if n > max || n%rowsPerAppend != 0 {
					errs <- fmt.Errorf("impossible count %d (max %d)", n, max)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Once mutation stops, the cache must converge: a repeated query hits.
	if _, e, err := c.Query("alice", "SELECT COUNT(*) AS n FROM events"); err != nil || e.Cache == CacheBypass {
		t.Fatalf("quiesced query: cache=%v err=%v", e.Cache, err)
	}
	if _, e, err := c.Query("alice", "SELECT COUNT(*) AS n FROM events"); err != nil || e.Cache != CacheHit {
		t.Fatalf("quiesced re-query: cache=%v err=%v, want hit", e.Cache, err)
	}
	if st := qc.Stats(); st.ResultMisses == 0 {
		t.Errorf("expected result misses during churn, stats=%+v", st)
	}

	// No goroutines may outlive the workload (the cache spawns none; a
	// leak here would point at the query path).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}
