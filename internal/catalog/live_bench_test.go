package catalog

import (
	"fmt"
	"testing"

	"sqlshare/internal/ops"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// benchCatalog builds a catalog with a fact table wide enough that the
// point query resolves through a clustered-index seek — the adversarial
// denominator opsbench uses, reproduced here so the live-ops layer can be
// profiled with go test -bench -cpuprofile.
func benchCatalog(b *testing.B, rows int) *Catalog {
	b.Helper()
	fact := storage.NewTable("fact", storage.Schema{
		{Name: "id", Type: sqltypes.Int},
		{Name: "grp", Type: sqltypes.String},
		{Name: "val", Type: sqltypes.Float},
	})
	batch := make([]storage.Row, rows)
	for i := range batch {
		batch[i] = storage.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("group-%02d", i%40)),
			sqltypes.NewFloat(float64(i%100000) / 64),
		}
	}
	if err := fact.Insert(batch); err != nil {
		b.Fatal(err)
	}
	c := New()
	if _, err := c.CreateUser("bench", "bench@example.org"); err != nil {
		b.Fatal(err)
	}
	if _, err := c.CreateDatasetFromTable("bench", "fact", fact, Meta{}); err != nil {
		b.Fatal(err)
	}
	return c
}

const benchPointSQL = "SELECT id, grp, val FROM fact WHERE id = 12345"

// BenchmarkPointQuery pits the bare point-query path against the same path
// with the live-operations registry attached (and with the memory budget on
// top), the comparison behind BENCH_ops.json's engine_overhead section.
func BenchmarkPointQuery(b *testing.B) {
	for _, mode := range []struct {
		name     string
		attach   bool
		maxBytes int64
	}{
		{"baseline", false, 0},
		{"registry", true, 0},
		{"registry_accounting", true, 1 << 40},
	} {
		b.Run(mode.name, func(b *testing.B) {
			c := benchCatalog(b, 100_000)
			if mode.attach {
				c.SetOpsRegistry(ops.NewRegistry())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := c.QueryWithOptions("bench", benchPointSQL,
					QueryOptions{MaxBytes: mode.maxBytes}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
