package storage

import (
	"testing"
	"testing/quick"

	"sqlshare/internal/sqltypes"
)

func intRow(vals ...int64) Row {
	r := make(Row, len(vals))
	for i, v := range vals {
		r[i] = sqltypes.NewInt(v)
	}
	return r
}

func newTestTable(t *testing.T, firstCol []int64) *Table {
	t.Helper()
	tbl := NewTable("t", Schema{{Name: "a", Type: sqltypes.Int}, {Name: "b", Type: sqltypes.Int}})
	rows := make([]Row, len(firstCol))
	for i, v := range firstCol {
		rows[i] = intRow(v, int64(i))
	}
	if err := tbl.Insert(rows); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestInsertKeepsClusteredOrder(t *testing.T) {
	tbl := newTestTable(t, []int64{5, 1, 3, 2, 4})
	rows := tbl.Scan()
	for i := 1; i < len(rows); i++ {
		if compareRows(rows[i-1], rows[i]) > 0 {
			t.Fatalf("rows out of order at %d: %v > %v", i, rows[i-1], rows[i])
		}
	}
}

func TestInsertArityMismatch(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "a", Type: sqltypes.Int}})
	if err := tbl.Insert([]Row{intRow(1, 2)}); err == nil {
		t.Fatal("arity mismatch should error")
	}
}

func TestSeekEqual(t *testing.T) {
	tbl := newTestTable(t, []int64{1, 2, 2, 2, 3, 5})
	got := tbl.SeekEqual(sqltypes.NewInt(2))
	if len(got) != 3 {
		t.Fatalf("seek 2 returned %d rows", len(got))
	}
	for _, r := range got {
		if r[0].Int() != 2 {
			t.Fatalf("wrong row: %v", r)
		}
	}
	if got := tbl.SeekEqual(sqltypes.NewInt(4)); len(got) != 0 {
		t.Fatalf("seek 4 should be empty, got %d", len(got))
	}
}

func TestSeekRange(t *testing.T) {
	tbl := newTestTable(t, []int64{1, 2, 3, 4, 5})
	got := tbl.SeekRange(sqltypes.NewInt(2), sqltypes.NewInt(4), true, false)
	if len(got) != 2 || got[0][0].Int() != 2 || got[1][0].Int() != 3 {
		t.Fatalf("range [2,4) = %v", got)
	}
	got = tbl.SeekRange(sqltypes.NewInt(2), sqltypes.NewInt(4), false, true)
	if len(got) != 2 || got[0][0].Int() != 3 || got[1][0].Int() != 4 {
		t.Fatalf("range (2,4] = %v", got)
	}
}

func TestSeekMatchesScanFilter(t *testing.T) {
	// Property: seek(v) must equal the brute-force filter of scan.
	f := func(keys []int16, probe int16) bool {
		vals := make([]int64, len(keys))
		for i, k := range keys {
			vals[i] = int64(k % 16)
		}
		tbl := NewTable("t", Schema{{Name: "a", Type: sqltypes.Int}})
		rows := make([]Row, len(vals))
		for i, v := range vals {
			rows[i] = intRow(v)
		}
		if err := tbl.Insert(rows); err != nil {
			return false
		}
		p := sqltypes.NewInt(int64(probe % 16))
		want := 0
		for _, r := range tbl.Scan() {
			if c, ok := sqltypes.Compare(r[0], p); ok && c == 0 {
				want++
			}
		}
		return len(tbl.SeekEqual(p)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWidenColumn(t *testing.T) {
	tbl := newTestTable(t, []int64{3, 1})
	if err := tbl.WidenColumn(0); err != nil {
		t.Fatal(err)
	}
	sch := tbl.Schema()
	if sch[0].Type != sqltypes.String {
		t.Fatalf("type after widen: %v", sch[0].Type)
	}
	for _, r := range tbl.Scan() {
		if r[0].Type() != sqltypes.String {
			t.Fatalf("row value not widened: %v", r[0].Type())
		}
	}
	// Widening a string column is a no-op.
	if err := tbl.WidenColumn(0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WidenColumn(9); err == nil {
		t.Fatal("out-of-range widen should error")
	}
}

func TestWidenPreservesNulls(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "a", Type: sqltypes.Int}})
	if err := tbl.Insert([]Row{{sqltypes.TypedNull(sqltypes.Int)}, {sqltypes.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WidenColumn(0); err != nil {
		t.Fatal(err)
	}
	rows := tbl.Scan()
	if !rows[0][0].IsNull() {
		t.Fatal("NULL should survive widening")
	}
}

func TestAddColumnPadsExistingRows(t *testing.T) {
	tbl := newTestTable(t, []int64{1, 2})
	tbl.AddColumn(Column{Name: "c", Type: sqltypes.Float})
	sch := tbl.Schema()
	if len(sch) != 3 {
		t.Fatalf("schema len = %d", len(sch))
	}
	for _, r := range tbl.Scan() {
		if len(r) != 3 || !r[2].IsNull() {
			t.Fatalf("row not padded: %v", r)
		}
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := Schema{{Name: "x", Type: sqltypes.Int}, {Name: "y", Type: sqltypes.String}}
	if s.ColumnIndex("y") != 1 || s.ColumnIndex("z") != -1 {
		t.Error("ColumnIndex broken")
	}
	names := s.Names()
	if names[0] != "x" || names[1] != "y" {
		t.Errorf("Names = %v", names)
	}
	c := s.Clone()
	c[0].Name = "mutated"
	if s[0].Name != "x" {
		t.Error("Clone should be deep for the slice header")
	}
}

func TestRowSizeBytes(t *testing.T) {
	tbl := NewTable("t", Schema{
		{Name: "a", Type: sqltypes.Int},
		{Name: "b", Type: sqltypes.String},
		{Name: "c", Type: sqltypes.Bool},
	})
	if got := tbl.RowSizeBytes(); got != 8+24+1 {
		t.Errorf("RowSizeBytes = %d", got)
	}
	empty := NewTable("e", Schema{})
	if empty.RowSizeBytes() < 1 {
		t.Error("empty schema should report at least 1 byte")
	}
}

func TestNullsSortFirst(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "a", Type: sqltypes.Int}})
	if err := tbl.Insert([]Row{{sqltypes.NewInt(1)}, {sqltypes.TypedNull(sqltypes.Int)}}); err != nil {
		t.Fatal(err)
	}
	rows := tbl.Scan()
	if !rows[0][0].IsNull() {
		t.Fatal("NULL should cluster first")
	}
}
