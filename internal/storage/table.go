// Package storage implements the base-table store underneath the SQLShare
// catalog. It mirrors the properties of the paper's backend (Microsoft SQL
// Azure, §3.4) that the workload study depends on: every table carries a
// mandatory clustered index over all columns in column order, tables are
// append-only (datasets are read-only; "updates" happen by view rewriting),
// and column types can be widened in place when ingest discovers a type
// conflict below the inference prefix (§3.1).
package storage

import (
	"fmt"
	"sort"
	"sync"

	"sqlshare/internal/sqltypes"
)

// Column describes one column of a table schema.
type Column struct {
	Name string
	Type sqltypes.Type
}

// Schema is an ordered list of columns.
type Schema []Column

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	names := make([]string, len(s))
	for i, c := range s {
		names[i] = c.Name
	}
	return names
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Row is a single tuple. len(Row) always equals len(Schema).
type Row []sqltypes.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an in-memory base table with a clustered index over all columns
// in column order. Rows are kept in clustered-index order at all times, so
// scans return sorted data and prefix predicates on the first column can be
// answered with a binary-search seek.
type Table struct {
	mu     sync.RWMutex
	name   string
	schema Schema
	rows   []Row
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	return &Table{name: name, schema: schema.Clone()}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns a copy of the table schema.
func (t *Table) Schema() Schema {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.schema.Clone()
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// RowSizeBytes estimates the average stored row width in bytes, used by the
// cost model's I/O estimates.
func (t *Table) RowSizeBytes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	size := 0
	for _, c := range t.schema {
		switch c.Type {
		case sqltypes.Int, sqltypes.Float, sqltypes.DateTime:
			size += 8
		case sqltypes.Bool:
			size++
		default:
			size += 24 // average varchar payload estimate
		}
	}
	if size == 0 {
		size = 1
	}
	return size
}

// Insert appends rows and restores clustered-index order. Every row must
// match the schema arity; values are not re-validated against column types
// (ingest is responsible for parsing).
func (t *Table) Insert(rows []Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		if len(r) != len(t.schema) {
			return fmt.Errorf("storage: row arity %d does not match schema arity %d of %s",
				len(r), len(t.schema), t.name)
		}
	}
	t.rows = append(t.rows, rows...)
	t.sortLocked()
	return nil
}

func (t *Table) sortLocked() {
	sort.SliceStable(t.rows, func(i, j int) bool {
		return compareRows(t.rows[i], t.rows[j]) < 0
	})
}

func compareRows(a, b Row) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if c := sqltypes.SortCompare(a[i], b[i]); c != 0 {
			return c
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// Scan returns all rows in clustered-index order. The returned slice is
// shared; callers must not mutate rows.
func (t *Table) Scan() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// SeekEqual returns the rows whose first clustered-key column equals v,
// found by binary search — the storage operation behind the "Clustered
// Index Seek" physical operator.
func (t *Table) SeekEqual(v sqltypes.Value) []Row {
	return t.SeekRange(v, v, true, true)
}

// SeekRange returns rows whose first column lies in [lo, hi] under the
// clustered sort order. A nil bound (NULL value with inclusive=false ignored)
// is expressed by passing includeLo/includeHi and using the zero Value to
// mean unbounded.
func (t *Table) SeekRange(lo, hi sqltypes.Value, includeLo, includeHi bool) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := len(t.rows)
	start := 0
	if !lo.IsNull() || lo.Type() != sqltypes.Null {
		start = sort.Search(n, func(i int) bool {
			c := sqltypes.SortCompare(t.rows[i][0], lo)
			if includeLo {
				return c >= 0
			}
			return c > 0
		})
	}
	end := n
	if !hi.IsNull() || hi.Type() != sqltypes.Null {
		end = sort.Search(n, func(i int) bool {
			c := sqltypes.SortCompare(t.rows[i][0], hi)
			if includeHi {
				return c > 0
			}
			return c >= 0
		})
	}
	if start > end {
		return nil
	}
	return t.rows[start:end]
}

// WidenColumn changes the type of column idx to String and re-renders the
// stored values as text — the "revert the type via ALTER TABLE" recovery
// path ingest takes when prefix inference guessed too narrow a type (§3.1).
func (t *Table) WidenColumn(idx int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx < 0 || idx >= len(t.schema) {
		return fmt.Errorf("storage: no column %d in %s", idx, t.name)
	}
	if t.schema[idx].Type == sqltypes.String {
		return nil
	}
	t.schema[idx].Type = sqltypes.String
	for _, r := range t.rows {
		if r[idx].IsNull() {
			r[idx] = sqltypes.TypedNull(sqltypes.String)
			continue
		}
		r[idx] = sqltypes.NewString(r[idx].String())
	}
	t.sortLocked()
	return nil
}

// AddColumn appends a new column (used by ingest when a later row is longer
// than the inferred header); existing rows are padded with typed NULLs.
func (t *Table) AddColumn(col Column) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.schema = append(t.schema, col)
	for i, r := range t.rows {
		t.rows[i] = append(r, sqltypes.TypedNull(col.Type))
	}
}
