// Package storage implements the base-table store underneath the SQLShare
// catalog. It mirrors the properties of the paper's backend (Microsoft SQL
// Azure, §3.4) that the workload study depends on: every table carries a
// mandatory clustered index over all columns in column order, tables are
// append-only (datasets are read-only; "updates" happen by view rewriting),
// and column types can be widened in place when ingest discovers a type
// conflict below the inference prefix (§3.1).
//
// Physically each table is stored twice: a row view in clustered-index
// order (the canonical copy, behind Scan/SeekEqual/SeekRange) and a derived
// columnar view of fixed-size typed segments (see segment.go) that the
// engine's vectorized scan/filter/project/aggregate path reads. Mutations
// invalidate only the segments they touch; the re-encode is deferred to the
// next columnar read and done copy-on-write, so readers holding either view
// stay consistent and a burst of small appends pays for one rebuild.
package storage

import (
	"fmt"
	"sort"
	"sync"

	"sqlshare/internal/sqltypes"
)

// Column describes one column of a table schema.
type Column struct {
	Name string
	Type sqltypes.Type
}

// Schema is an ordered list of columns.
type Schema []Column

// ColumnIndex returns the position of the named column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	names := make([]string, len(s))
	for i, c := range s {
		names[i] = c.Name
	}
	return names
}

// Clone returns a deep copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Row is a single tuple. len(Row) always equals len(Schema).
type Row []sqltypes.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an in-memory base table with a clustered index over all columns
// in column order. Rows are kept in clustered-index order at all times, so
// scans return sorted data and prefix predicates on the first column can be
// answered with a binary-search seek. The same rows are mirrored into
// columnar segments for the vectorized execution path.
type Table struct {
	mu     sync.RWMutex
	name   string
	schema Schema
	rows   []Row
	segs   []*Segment
	// segsDirtyFrom is the lowest row index whose segment no longer mirrors
	// rows, or -1 when the columnar view is current. Mutations only
	// invalidate; the rebuild happens lazily on the next columnar read, so a
	// burst of small appends pays for one re-encode instead of one per batch.
	segsDirtyFrom int
	segRows       int
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) *Table {
	return &Table{name: name, schema: schema.Clone(), segRows: segmentRowsGlobal, segsDirtyFrom: -1}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns a copy of the table schema.
func (t *Table) Schema() Schema {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.schema.Clone()
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// RowSizeBytes reports the average stored row width in bytes, used by the
// cost model's I/O estimates. For non-empty tables it is measured from the
// segment column stats (real dictionary and string payload sizes) rather
// than guessed from the schema; the schema heuristic remains only for
// empty tables, which have nothing to measure.
func (t *Table) RowSizeBytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.rows) > 0 {
		t.rebuildSegmentsLocked()
		var total int64
		for _, seg := range t.segs {
			for c := range seg.cols {
				total += seg.cols[c].Bytes
			}
		}
		size := int(total / int64(len(t.rows)))
		if size < 1 {
			size = 1
		}
		return size
	}
	size := 0
	for _, c := range t.schema {
		switch c.Type {
		case sqltypes.Int, sqltypes.Float, sqltypes.DateTime:
			size += 8
		case sqltypes.Bool:
			size++
		default:
			size += 24 // average varchar payload estimate
		}
	}
	if size == 0 {
		size = 1
	}
	return size
}

// Insert adds rows in clustered-index order. Every row must match the
// schema arity; values are not re-validated against column types (ingest is
// responsible for parsing). Only the incoming batch is sorted — O(k log k) —
// and merged into the already-sorted table at its insertion point, so a
// small append no longer pays a full-table re-sort; the common bulk-load
// case (batch sorts entirely after the existing rows) is a plain append
// that rebuilds only the trailing partial segment.
func (t *Table) Insert(rows []Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range rows {
		if len(r) != len(t.schema) {
			return fmt.Errorf("storage: row arity %d does not match schema arity %d of %s",
				len(r), len(t.schema), t.name)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	batch := make([]Row, len(rows))
	copy(batch, rows)
	sort.SliceStable(batch, func(i, j int) bool {
		return compareRows(batch[i], batch[j]) < 0
	})
	n := len(t.rows)
	if n == 0 || compareRows(batch[0], t.rows[n-1]) >= 0 {
		from := n - n%t.segRows
		t.rows = append(t.rows, batch...)
		t.invalidateSegmentsLocked(from)
		return nil
	}
	// Merge keeps existing rows first on ties, matching what a stable sort
	// of append(existing, batch...) would produce.
	pos := sort.Search(n, func(i int) bool {
		return compareRows(batch[0], t.rows[i]) < 0
	})
	merged := make([]Row, 0, n+len(batch))
	merged = append(merged, t.rows[:pos]...)
	i, j := pos, 0
	for i < n && j < len(batch) {
		if compareRows(batch[j], t.rows[i]) < 0 {
			merged = append(merged, batch[j])
			j++
		} else {
			merged = append(merged, t.rows[i])
			i++
		}
	}
	merged = append(merged, t.rows[i:]...)
	merged = append(merged, batch[j:]...)
	t.rows = merged
	t.invalidateSegmentsLocked(pos)
	return nil
}

// invalidateSegmentsLocked records that segments covering fromRow onward are
// stale. The actual re-encode is deferred to the next columnar read.
func (t *Table) invalidateSegmentsLocked(fromRow int) {
	if fromRow < 0 {
		fromRow = 0
	}
	if t.segsDirtyFrom < 0 || fromRow < t.segsDirtyFrom {
		t.segsDirtyFrom = fromRow
	}
}

// rebuildSegmentsLocked re-columnarizes every segment from the one covering
// the first stale row onward, sharing the untouched prefix segments with the
// previous version (copy-on-write: readers that already fetched the old
// segment slice keep a consistent snapshot). No-op when the view is current.
func (t *Table) rebuildSegmentsLocked() {
	if t.segsDirtyFrom < 0 {
		return
	}
	fromRow := t.segsDirtyFrom
	t.segsDirtyFrom = -1
	fromRow -= fromRow % t.segRows
	firstSeg := fromRow / t.segRows
	n := len(t.rows)
	nSegs := (n + t.segRows - 1) / t.segRows
	segs := make([]*Segment, nSegs)
	if firstSeg > len(t.segs) {
		firstSeg = len(t.segs)
	}
	if firstSeg > nSegs {
		firstSeg = nSegs
	}
	copy(segs, t.segs[:firstSeg])
	width := len(t.schema)
	for i := firstSeg; i < nSegs; i++ {
		lo := i * t.segRows
		hi := lo + t.segRows
		if hi > n {
			hi = n
		}
		segs[i] = buildSegment(t.rows[lo:hi], width)
	}
	t.segs = segs
}

func (t *Table) sortLocked() {
	sort.SliceStable(t.rows, func(i, j int) bool {
		return compareRows(t.rows[i], t.rows[j]) < 0
	})
}

func compareRows(a, b Row) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if c := sqltypes.SortCompare(a[i], b[i]); c != 0 {
			return c
		}
	}
	if len(a) < len(b) {
		return -1
	}
	return 0
}

// Scan returns all rows in clustered-index order. The returned slice is
// shared; callers must not mutate rows.
func (t *Table) Scan() []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// ScanSegments returns the row view and its columnar mirror as one
// consistent snapshot: segment i covers rows[i*segRows : i*segRows+Len()].
// Both are shared and must not be mutated. If mutations left the columnar
// view stale this is where the deferred re-encode happens, once, under the
// write lock.
func (t *Table) ScanSegments() ([]Row, []*Segment) {
	t.mu.RLock()
	if t.segsDirtyFrom < 0 {
		rows, segs := t.rows, t.segs
		t.mu.RUnlock()
		return rows, segs
	}
	t.mu.RUnlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rebuildSegmentsLocked()
	return t.rows, t.segs
}

// SeekEqual returns the rows whose first clustered-key column equals v,
// found by binary search — the storage operation behind the "Clustered
// Index Seek" physical operator.
func (t *Table) SeekEqual(v sqltypes.Value) []Row {
	return t.SeekRange(v, v, true, true)
}

// SeekRange returns rows whose first column lies in [lo, hi] under the
// clustered sort order. A nil bound (NULL value with inclusive=false ignored)
// is expressed by passing includeLo/includeHi and using the zero Value to
// mean unbounded.
func (t *Table) SeekRange(lo, hi sqltypes.Value, includeLo, includeHi bool) []Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := len(t.rows)
	start := 0
	if !lo.IsNull() || lo.Type() != sqltypes.Null {
		start = sort.Search(n, func(i int) bool {
			c := sqltypes.SortCompare(t.rows[i][0], lo)
			if includeLo {
				return c >= 0
			}
			return c > 0
		})
	}
	end := n
	if !hi.IsNull() || hi.Type() != sqltypes.Null {
		end = sort.Search(n, func(i int) bool {
			c := sqltypes.SortCompare(t.rows[i][0], hi)
			if includeHi {
				return c > 0
			}
			return c >= 0
		})
	}
	if start > end {
		return nil
	}
	return t.rows[start:end]
}

// WidenColumn changes the type of column idx to String and re-renders the
// stored values as text — the "revert the type via ALTER TABLE" recovery
// path ingest takes when prefix inference guessed too narrow a type (§3.1).
// Rows are re-allocated rather than mutated so readers holding the previous
// snapshot are unaffected, and all segments are rebuilt.
func (t *Table) WidenColumn(idx int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx < 0 || idx >= len(t.schema) {
		return fmt.Errorf("storage: no column %d in %s", idx, t.name)
	}
	if t.schema[idx].Type == sqltypes.String {
		return nil
	}
	t.schema[idx].Type = sqltypes.String
	rows := make([]Row, len(t.rows))
	for i, r := range t.rows {
		nr := r.Clone()
		if nr[idx].IsNull() {
			nr[idx] = sqltypes.TypedNull(sqltypes.String)
		} else {
			nr[idx] = sqltypes.NewString(nr[idx].String())
		}
		rows[i] = nr
	}
	t.rows = rows
	t.sortLocked()
	t.invalidateSegmentsLocked(0)
	return nil
}

// AddColumn appends a new column (used by ingest when a later row is longer
// than the inferred header); existing rows are padded with typed NULLs in
// freshly allocated rows, and all segments are rebuilt for the new width.
func (t *Table) AddColumn(col Column) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.schema = append(t.schema, col)
	rows := make([]Row, len(t.rows))
	for i, r := range t.rows {
		nr := make(Row, len(r)+1)
		copy(nr, r)
		nr[len(r)] = sqltypes.TypedNull(col.Type)
		rows[i] = nr
	}
	t.rows = rows
	t.invalidateSegmentsLocked(0)
}
