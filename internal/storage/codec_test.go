package storage

import (
	"testing"
	"time"

	"sqlshare/internal/sqltypes"
)

func TestTableDataRoundTrip(t *testing.T) {
	tbl := NewTable("t", Schema{
		{Name: "i", Type: sqltypes.Int},
		{Name: "f", Type: sqltypes.Float},
		{Name: "s", Type: sqltypes.String},
		{Name: "b", Type: sqltypes.Bool},
		{Name: "d", Type: sqltypes.DateTime},
	})
	rows := []Row{
		{sqltypes.NewInt(2), sqltypes.NewFloat(2.5), sqltypes.NewString("two"),
			sqltypes.NewBool(true), sqltypes.NewDateTime(time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC))},
		{sqltypes.NewInt(1), sqltypes.TypedNull(sqltypes.Float), sqltypes.NewString(""),
			sqltypes.NewBool(false), sqltypes.NewDateTime(time.Date(2014, 3, 1, 1, 0, 0, 123456789, time.UTC))},
		{sqltypes.TypedNull(sqltypes.Int), sqltypes.NewFloat(-1), sqltypes.NewString("héllo\x00world"),
			sqltypes.NullValue(), sqltypes.TypedNull(sqltypes.DateTime)},
	}
	if err := tbl.Insert(rows); err != nil {
		t.Fatal(err)
	}

	rt, err := tbl.Data().Table()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name() != "t" || rt.NumRows() != 3 {
		t.Fatalf("restored: name %q, %d rows", rt.Name(), rt.NumRows())
	}
	if len(rt.Schema()) != 5 {
		t.Fatalf("restored schema: %v", rt.Schema())
	}
	for i, col := range tbl.Schema() {
		if rt.Schema()[i] != col {
			t.Errorf("column %d: %v != %v", i, rt.Schema()[i], col)
		}
	}
	orig, back := tbl.Scan(), rt.Scan()
	for i := range orig {
		for j := range orig[i] {
			a, b := orig[i][j], back[i][j]
			if a.IsNull() != b.IsNull() || a.Type() != b.Type() || a.String() != b.String() {
				t.Errorf("row %d col %d: %v != %v", i, j, a, b)
			}
		}
	}
}

func TestTableDataIsDeepCopy(t *testing.T) {
	tbl := NewTable("t", Schema{{Name: "s", Type: sqltypes.String}})
	if err := tbl.Insert([]Row{{sqltypes.NewString("a")}}); err != nil {
		t.Fatal(err)
	}
	data := tbl.Data()
	if err := tbl.Insert([]Row{{sqltypes.NewString("b")}}); err != nil {
		t.Fatal(err)
	}
	if len(data.Rows) != 1 {
		t.Errorf("serialized copy grew with the source table: %d rows", len(data.Rows))
	}
}

func TestValueDataRejectsBadTimestamp(t *testing.T) {
	d := ValueData{T: uint8(sqltypes.DateTime), TS: "not-a-time"}
	if _, err := d.Value(); err == nil {
		t.Error("bad timestamp decoded without error")
	}
}
