package storage

import (
	"fmt"
	"time"

	"sqlshare/internal/sqltypes"
)

// This file is the serialization boundary of the storage layer: TableData is
// the durable form of a Table, used by the write-ahead log (upload and
// materialization records carry the full table) and by catalog snapshots.
// The encoding is value-faithful — types, typed NULLs and sub-second
// timestamps all round-trip — so a recovered table is indistinguishable from
// the one that was journaled.

// ColumnData is the serializable form of a Column.
type ColumnData struct {
	Name string `json:"name"`
	Type uint8  `json:"type"`
}

// ValueData is the serializable form of a sqltypes.Value. Exactly one
// payload field is meaningful, selected by T; N marks a typed NULL.
// Timestamps are RFC 3339 with nanoseconds so sub-second precision
// round-trips.
type ValueData struct {
	T  uint8   `json:"t"`
	N  bool    `json:"n,omitempty"`
	I  int64   `json:"i,omitempty"`
	F  float64 `json:"f,omitempty"`
	S  string  `json:"s,omitempty"`
	TS string  `json:"ts,omitempty"`
}

// EncodeValue converts a value to its serializable form.
func EncodeValue(v sqltypes.Value) ValueData {
	d := ValueData{T: uint8(v.Type())}
	if v.IsNull() {
		d.N = true
		return d
	}
	switch v.Type() {
	case sqltypes.Int:
		d.I = v.Int()
	case sqltypes.Bool:
		if v.Bool() {
			d.I = 1
		}
	case sqltypes.Float:
		d.F = v.Float()
	case sqltypes.String:
		d.S = v.Str()
	case sqltypes.DateTime:
		d.TS = v.Time().Format(time.RFC3339Nano)
	}
	return d
}

// Value converts the serialized form back to a sqltypes.Value.
func (d ValueData) Value() (sqltypes.Value, error) {
	t := sqltypes.Type(d.T)
	switch t {
	case sqltypes.Null, sqltypes.Bool, sqltypes.Int, sqltypes.Float, sqltypes.DateTime, sqltypes.String:
	default:
		return sqltypes.Value{}, fmt.Errorf("storage: unknown value type %d", d.T)
	}
	if d.N {
		return sqltypes.TypedNull(t), nil
	}
	switch t {
	case sqltypes.Null:
		return sqltypes.NullValue(), nil
	case sqltypes.Bool:
		return sqltypes.NewBool(d.I != 0), nil
	case sqltypes.Int:
		return sqltypes.NewInt(d.I), nil
	case sqltypes.Float:
		return sqltypes.NewFloat(d.F), nil
	case sqltypes.DateTime:
		ts, err := time.Parse(time.RFC3339Nano, d.TS)
		if err != nil {
			return sqltypes.Value{}, fmt.Errorf("storage: bad timestamp %q: %w", d.TS, err)
		}
		return sqltypes.NewDateTime(ts), nil
	default:
		return sqltypes.NewString(d.S), nil
	}
}

// TableData is the serializable form of a Table.
type TableData struct {
	Name string        `json:"name"`
	Cols []ColumnData  `json:"cols"`
	Rows [][]ValueData `json:"rows,omitempty"`
}

// Data snapshots the table into its serializable form. The copy is deep:
// later widening or inserts do not affect it.
func (t *Table) Data() *TableData {
	t.mu.RLock()
	defer t.mu.RUnlock()
	d := &TableData{Name: t.name, Cols: make([]ColumnData, len(t.schema))}
	for i, c := range t.schema {
		d.Cols[i] = ColumnData{Name: c.Name, Type: uint8(c.Type)}
	}
	if len(t.rows) > 0 {
		d.Rows = make([][]ValueData, len(t.rows))
		for i, r := range t.rows {
			row := make([]ValueData, len(r))
			for j, v := range r {
				row[j] = EncodeValue(v)
			}
			d.Rows[i] = row
		}
	}
	return d
}

// Table rebuilds a live table from its serialized form. Rows are re-sorted
// into clustered-index order, so the result is valid even if the data was
// produced by an older encoder or edited by hand.
func (d *TableData) Table() (*Table, error) {
	schema := make(Schema, len(d.Cols))
	for i, c := range d.Cols {
		schema[i] = Column{Name: c.Name, Type: sqltypes.Type(c.Type)}
	}
	t := NewTable(d.Name, schema)
	if len(d.Rows) == 0 {
		return t, nil
	}
	rows := make([]Row, len(d.Rows))
	for i, rd := range d.Rows {
		if len(rd) != len(schema) {
			return nil, fmt.Errorf("storage: row %d arity %d does not match schema arity %d of %s",
				i, len(rd), len(schema), d.Name)
		}
		row := make(Row, len(rd))
		for j, vd := range rd {
			v, err := vd.Value()
			if err != nil {
				return nil, fmt.Errorf("storage: table %s row %d col %d: %w", d.Name, i, j, err)
			}
			row[j] = v
		}
		rows[i] = row
	}
	if err := t.Insert(rows); err != nil {
		return nil, err
	}
	return t, nil
}
