package storage

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"sqlshare/internal/sqltypes"
)

// smallSegments shrinks the segment size for the duration of one test so
// tiny tables span many segments.
func smallSegments(t testing.TB, n int) {
	t.Helper()
	prev := SetSegmentRows(n)
	t.Cleanup(func() { SetSegmentRows(prev) })
}

func randValue(rng *rand.Rand) sqltypes.Value {
	switch rng.Intn(6) {
	case 0:
		return sqltypes.NewInt(int64(rng.Intn(50)))
	case 1:
		return sqltypes.NewFloat(float64(rng.Intn(400)) / 8)
	case 2:
		return sqltypes.NewString(fmt.Sprintf("s%02d", rng.Intn(40)))
	case 3:
		return sqltypes.NewBool(rng.Intn(2) == 0)
	case 4:
		return sqltypes.TypedNull(sqltypes.Int)
	default:
		return sqltypes.NewDateTime(time.Date(2014, 1, 1+rng.Intn(300), 0, 0, 0, 0, time.UTC))
	}
}

// TestInsertMergeMatchesSortOracle drives a table through many random
// insert batches and checks, after every batch, that the merge-based
// Insert produces exactly the row order of the seed implementation: append
// everything and stable-sort the whole table.
func TestInsertMergeMatchesSortOracle(t *testing.T) {
	smallSegments(t, 8)
	schema := Schema{
		{Name: "a", Type: sqltypes.Int},
		{Name: "b", Type: sqltypes.String},
	}
	tbl := NewTable("t", schema)
	rng := rand.New(rand.NewSource(11))
	var oracle []Row
	for batch := 0; batch < 40; batch++ {
		k := rng.Intn(7) + 1
		rows := make([]Row, k)
		for i := range rows {
			rows[i] = Row{randValue(rng), sqltypes.NewString(fmt.Sprintf("v%d", rng.Intn(9)))}
		}
		if err := tbl.Insert(rows); err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			oracle = append(oracle, r.Clone())
		}
		sort.SliceStable(oracle, func(i, j int) bool {
			return compareRows(oracle[i], oracle[j]) < 0
		})
		got := tbl.Scan()
		if len(got) != len(oracle) {
			t.Fatalf("batch %d: %d rows, want %d", batch, len(got), len(oracle))
		}
		for i := range got {
			for c := range got[i] {
				if got[i][c].Key() != oracle[i][c].Key() {
					t.Fatalf("batch %d row %d col %d: got %v want %v", batch, i, c, got[i][c], oracle[i][c])
				}
			}
		}
	}
}

// TestSegmentsMirrorRows checks the core invariant of the columnar view:
// segment i covers rows[i*segRows:...] and every vector cell decodes to
// the same value (and null-ness) as the row view.
func TestSegmentsMirrorRows(t *testing.T) {
	smallSegments(t, 16)
	schema := Schema{
		{Name: "i", Type: sqltypes.Int},
		{Name: "f", Type: sqltypes.Float},
		{Name: "s", Type: sqltypes.String},
		{Name: "b", Type: sqltypes.Bool},
		{Name: "d", Type: sqltypes.DateTime},
	}
	tbl := NewTable("t", schema)
	rng := rand.New(rand.NewSource(5))
	var batch []Row
	for i := 0; i < 333; i++ {
		row := Row{
			sqltypes.NewInt(int64(rng.Intn(1000))),
			sqltypes.NewFloat(rng.Float64() * 100),
			sqltypes.NewString(fmt.Sprintf("str-%03d", rng.Intn(500))),
			sqltypes.NewBool(rng.Intn(2) == 0),
			sqltypes.NewDateTime(time.Date(2014, 1, 1+rng.Intn(100), 0, 0, 0, 0, time.UTC)),
		}
		for c := range row {
			if rng.Intn(8) == 0 {
				row[c] = sqltypes.TypedNull(schema[c].Type)
			}
		}
		batch = append(batch, row)
	}
	if err := tbl.Insert(batch); err != nil {
		t.Fatal(err)
	}
	rows, segs := tbl.ScanSegments()
	total := 0
	for _, sg := range segs {
		total += sg.Len()
	}
	if total != len(rows) {
		t.Fatalf("segments cover %d rows, table has %d", total, len(rows))
	}
	base := 0
	for si, sg := range segs {
		for c := 0; c < len(schema); c++ {
			vec := sg.Col(c)
			for i := 0; i < sg.Len(); i++ {
				want := rows[base+i][c]
				if vec.IsNull(i) != want.IsNull() {
					t.Fatalf("seg %d col %d row %d: IsNull=%v, row value %v", si, c, i, vec.IsNull(i), want)
				}
				if want.IsNull() {
					continue
				}
				var got sqltypes.Value
				switch vec.Enc {
				case EncInt:
					got = sqltypes.NewInt(vec.Ints[i])
				case EncFloat:
					got = sqltypes.NewFloat(vec.Floats[i])
				case EncBool:
					got = sqltypes.NewBool(vec.Bools[i])
				case EncTime:
					got = sqltypes.NewDateTime(vec.Times[i])
				case EncString:
					got = sqltypes.NewString(vec.Strs[i])
				case EncDict:
					got = sqltypes.NewString(vec.Dict[vec.Codes[i]])
				default:
					got = want // EncValues reads through the row view by design
				}
				if got.Key() != want.Key() {
					t.Fatalf("seg %d col %d row %d: vector %v, row %v", si, c, i, got, want)
				}
				if c := sqltypes.SortCompare(want, vec.Min); c < 0 {
					t.Fatalf("seg %d col %d: value %v below zone Min %v", si, c, want, vec.Min)
				}
				if c := sqltypes.SortCompare(want, vec.Max); c > 0 {
					t.Fatalf("seg %d col %d: value %v above zone Max %v", si, c, want, vec.Max)
				}
			}
		}
		base += sg.Len()
	}
}

// TestAllNullAndMixedVectors covers the zone-map edge cases: an all-NULL
// segment has no zone map and falls back to EncValues, and a column whose
// non-null values mix types (after widening-style ingest) also degrades to
// EncValues without losing null tracking.
func TestAllNullAndMixedVectors(t *testing.T) {
	smallSegments(t, 4)
	tbl := NewTable("t", Schema{
		{Name: "k", Type: sqltypes.Int},
		{Name: "x", Type: sqltypes.String},
	})
	var batch []Row
	for i := 0; i < 8; i++ {
		batch = append(batch, Row{sqltypes.NewInt(int64(i)), sqltypes.TypedNull(sqltypes.String)})
	}
	if err := tbl.Insert(batch); err != nil {
		t.Fatal(err)
	}
	_, segs := tbl.ScanSegments()
	for si, sg := range segs {
		vec := sg.Col(1)
		if !vec.AllNull || !vec.HasNulls || vec.Enc != EncValues {
			t.Fatalf("seg %d: all-NULL vector misclassified: %+v", si, vec)
		}
	}
	if err := tbl.Insert([]Row{
		{sqltypes.NewInt(100), sqltypes.NewString("a")},
		{sqltypes.NewInt(101), sqltypes.NewInt(7)}, // type conflict in one segment
		{sqltypes.NewInt(102), sqltypes.TypedNull(sqltypes.String)},
		{sqltypes.NewInt(103), sqltypes.NewString("b")},
	}); err != nil {
		t.Fatal(err)
	}
	_, segs = tbl.ScanSegments()
	last := segs[len(segs)-1]
	vec := last.Col(1)
	if vec.Enc != EncValues || vec.AllNull {
		t.Fatalf("mixed-type vector should be EncValues, got %+v", vec)
	}
	if !vec.HasNulls || !vec.IsNull(2) {
		t.Fatalf("mixed-type vector lost null tracking: %+v", vec)
	}
}

// TestDictionaryOverflow checks both sides of the per-segment dictionary
// cardinality limit.
func TestDictionaryOverflow(t *testing.T) {
	smallSegments(t, 1024)
	low := NewTable("low", Schema{{Name: "s", Type: sqltypes.String}})
	var rows []Row
	for i := 0; i < 1000; i++ {
		rows = append(rows, Row{sqltypes.NewString(fmt.Sprintf("v%02d", i%40))})
	}
	if err := low.Insert(rows); err != nil {
		t.Fatal(err)
	}
	_, segs := low.ScanSegments()
	vec := segs[0].Col(0)
	if vec.Enc != EncDict {
		t.Fatalf("low-cardinality column should dictionary-encode, got enc %d", vec.Enc)
	}
	if len(vec.Dict) != 40 || !sort.StringsAreSorted(vec.Dict) {
		t.Fatalf("dictionary wrong: %v", vec.Dict)
	}

	high := NewTable("high", Schema{{Name: "s", Type: sqltypes.String}})
	rows = nil
	for i := 0; i < 1000; i++ { // 1000 distinct > dictMaxCard
		rows = append(rows, Row{sqltypes.NewString(fmt.Sprintf("u%04d", i))})
	}
	if err := high.Insert(rows); err != nil {
		t.Fatal(err)
	}
	_, segs = high.ScanSegments()
	if enc := segs[0].Col(0).Enc; enc != EncString {
		t.Fatalf("dictionary overflow should fall back to plain strings, got enc %d", enc)
	}
}

// TestWidenAndAddColumnRebuildSegments checks that schema changes rebuild
// the columnar mirror: widening re-renders an int column as strings (the
// vectors follow), and adding a column pads with NULLs mid-segment.
func TestWidenAndAddColumnRebuildSegments(t *testing.T) {
	smallSegments(t, 4)
	tbl := NewTable("t", Schema{
		{Name: "k", Type: sqltypes.Int},
		{Name: "v", Type: sqltypes.Int},
	})
	var rows []Row
	for i := 0; i < 10; i++ { // 2.5 segments: exercises the partial tail
		rows = append(rows, Row{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i * 11))})
	}
	if err := tbl.Insert(rows); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WidenColumn(1); err != nil {
		t.Fatal(err)
	}
	got, segs := tbl.ScanSegments()
	base := 0
	for _, sg := range segs {
		vec := sg.Col(1)
		if vec.Enc != EncDict && vec.Enc != EncString {
			t.Fatalf("widened column should re-encode as strings, got enc %d", vec.Enc)
		}
		for i := 0; i < sg.Len(); i++ {
			if got[base+i][1].Type() != sqltypes.String {
				t.Fatalf("row %d not re-rendered: %v", base+i, got[base+i][1])
			}
		}
		base += sg.Len()
	}
	tbl.AddColumn(Column{Name: "extra", Type: sqltypes.Float})
	got, segs = tbl.ScanSegments()
	for _, r := range got {
		if len(r) != 3 || !r[2].IsNull() {
			t.Fatalf("AddColumn row not padded: %v", r)
		}
	}
	for si, sg := range segs {
		vec := sg.Col(2)
		if !vec.AllNull {
			t.Fatalf("seg %d: new column should be all-NULL, got %+v", si, vec)
		}
	}
}

// TestFloatNaNDisablesPruning: a segment containing NaN has no usable
// ordering bound (NaN compares equal to everything in the engine's float
// order), so its vector must advertise NoPrune.
func TestFloatNaNDisablesPruning(t *testing.T) {
	smallSegments(t, 4)
	tbl := NewTable("t", Schema{{Name: "f", Type: sqltypes.Float}})
	if err := tbl.Insert([]Row{
		{sqltypes.NewFloat(1)}, {sqltypes.NewFloat(2)},
		{sqltypes.NewFloat(math.NaN())}, {sqltypes.NewFloat(3)},
	}); err != nil {
		t.Fatal(err)
	}
	_, segs := tbl.ScanSegments()
	sawNoPrune := false
	for _, sg := range segs {
		if sg.Col(0).NoPrune {
			sawNoPrune = true
		}
	}
	if !sawNoPrune {
		t.Fatal("segment containing NaN must set NoPrune")
	}
}

// TestRowSizeBytesMeasured: non-empty tables report measured widths (long
// strings weigh more than short ones), empty tables keep the schema
// heuristic.
func TestRowSizeBytesMeasured(t *testing.T) {
	schema := Schema{{Name: "s", Type: sqltypes.String}}
	empty := NewTable("e", schema)
	if empty.RowSizeBytes() != 24 {
		t.Fatalf("empty table heuristic = %d, want 24", empty.RowSizeBytes())
	}
	short := NewTable("s", schema)
	long := NewTable("l", schema)
	var shortRows, longRows []Row
	for i := 0; i < 100; i++ {
		shortRows = append(shortRows, Row{sqltypes.NewString("ab")})
		longRows = append(longRows, Row{sqltypes.NewString(fmt.Sprintf("%0200d", i))})
	}
	if err := short.Insert(shortRows); err != nil {
		t.Fatal(err)
	}
	if err := long.Insert(longRows); err != nil {
		t.Fatal(err)
	}
	if short.RowSizeBytes() >= long.RowSizeBytes() {
		t.Fatalf("measured widths not ordered: short=%d long=%d", short.RowSizeBytes(), long.RowSizeBytes())
	}
}

// BenchmarkAppendSmallBatches is the regression benchmark for the
// satellite fix: repeated small appends into a large table used to re-sort
// every row, O(n log n) per batch; the merge path is O(n + k log k) and
// rebuilds only the segments at or after the insertion point.
func BenchmarkAppendSmallBatches(b *testing.B) {
	schema := Schema{
		{Name: "id", Type: sqltypes.Int},
		{Name: "val", Type: sqltypes.Float},
	}
	tbl := NewTable("t", schema)
	var seedRows []Row
	for i := 0; i < 20000; i++ {
		seedRows = append(seedRows, Row{sqltypes.NewInt(int64(i)), sqltypes.NewFloat(float64(i))})
	}
	if err := tbl.Insert(seedRows); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make([]Row, 10)
		for j := range batch {
			id := int64(rng.Intn(40000))
			batch[j] = Row{sqltypes.NewInt(id), sqltypes.NewFloat(float64(id))}
		}
		if err := tbl.Insert(batch); err != nil {
			b.Fatal(err)
		}
	}
}
