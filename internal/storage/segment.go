package storage

import (
	"math"
	"sort"
	"time"

	"sqlshare/internal/sqltypes"
)

// segment.go implements the columnar half of the store: every table keeps,
// next to its clustered row view, a sequence of fixed-size segments holding
// the same rows as typed column vectors. A segment is the engine's scan
// unit — it is sized to the morsel the parallel scheduler hands one worker,
// so "a morsel becomes a segment" — and each vector carries a null bitmap,
// a min/max zone map, and (for low-cardinality string columns) a sorted
// per-segment dictionary. The row view stays canonical: vectors are a
// derived, copy-on-write acceleration structure, so the row-oriented
// Scan/Seek API, joins, sorts and the WAL codec are untouched by columnar
// execution and the engine can emit result rows by reference for
// bit-identical output.

// defaultSegmentRows is the production segment size: it matches the
// engine's morsel granule (2048 rows) so segment-at-a-time scans and
// morsel-at-a-time parallelism share one unit.
const defaultSegmentRows = 2048

// segmentRowsGlobal is read by NewTable; tests shrink it (SetSegmentRows)
// so tiny synthetic tables still span many segments. Each table pins the
// value it was created with, keeping its segment geometry self-consistent.
var segmentRowsGlobal = defaultSegmentRows

// SetSegmentRows overrides the segment size used by tables created from
// now on, returning the previous value. Intended for tests; call only
// while no table is being built.
func SetSegmentRows(n int) (prev int) {
	prev = segmentRowsGlobal
	if n > 0 {
		segmentRowsGlobal = n
	}
	return prev
}

// SegmentRows reports the segment size tables created now will use.
func SegmentRows() int { return segmentRowsGlobal }

// dictMaxCard is the per-segment distinct-string ceiling for dictionary
// encoding; a column with more distinct values in one segment overflows to
// plain string encoding.
const dictMaxCard = 256

// Encoding identifies the physical layout of one column vector.
type Encoding uint8

// The vector encodings. EncValues is the fallback for columns whose
// non-null values are not all of one type (widened columns and
// materialized query outputs can hold anything): such vectors store no
// typed array and readers go through the row view.
const (
	EncValues Encoding = iota
	EncInt
	EncFloat
	EncBool
	EncTime
	EncString
	EncDict
)

// Vector is one column of one segment. Exactly one typed array is
// populated, selected by Enc; null positions hold the array's zero value
// and are marked in the null bitmap. All fields are read-only once built.
type Vector struct {
	Enc    Encoding
	Ints   []int64
	Floats []float64
	Bools  []bool
	Times  []time.Time
	Strs   []string
	Codes  []uint16 // EncDict: per-row index into Dict
	Dict   []string // EncDict: sorted distinct values

	nulls []uint64 // bitmap, bit i set ⇒ row i is NULL; nil when no NULLs

	// Zone map over the non-null values, under SortCompare order. Unset
	// when AllNull. Pruning is only sound when a predicate literal's
	// comparison semantics agree with the vector's storage order, which
	// the engine decides from Enc.
	Min, Max sqltypes.Value
	HasNulls bool
	AllNull  bool
	// NoPrune disables zone-map pruning for this vector: NaN compares
	// equal to everything under the engine's float ordering, so a segment
	// containing NaN has no usable Min/Max bound.
	NoPrune bool
	// Bytes is the measured in-memory width of the column's values in
	// this segment (sum of SizeBytes), feeding the cost model's real
	// per-column stats.
	Bytes int64
}

// IsNull reports whether row i of the vector is NULL.
func (v *Vector) IsNull(i int) bool {
	return v.nulls != nil && v.nulls[i>>6]&(1<<uint(i&63)) != 0
}

// Segment is a fixed-size run of a table's clustered order in columnar
// form. Segments are immutable once built; mutations rebuild affected
// segments copy-on-write.
type Segment struct {
	n    int
	cols []Vector
}

// Len returns the segment's row count.
func (s *Segment) Len() int { return s.n }

// Col returns column c of the segment.
func (s *Segment) Col(c int) *Vector { return &s.cols[c] }

// buildSegment columnarizes rows (one segment's worth, already in
// clustered order) across width columns.
func buildSegment(rows []Row, width int) *Segment {
	seg := &Segment{n: len(rows), cols: make([]Vector, width)}
	for c := 0; c < width; c++ {
		seg.cols[c] = buildVector(rows, c)
	}
	return seg
}

func buildVector(rows []Row, col int) Vector {
	n := len(rows)
	var v Vector
	homogeneous := true
	var typ sqltypes.Type
	seen := false
	for i := 0; i < n; i++ {
		val := rows[i][col]
		v.Bytes += int64(val.SizeBytes())
		if val.IsNull() {
			if v.nulls == nil {
				v.nulls = make([]uint64, (n+63)/64)
			}
			v.nulls[i>>6] |= 1 << uint(i&63)
			v.HasNulls = true
			continue
		}
		t := val.Type()
		if !seen {
			seen = true
			typ = t
			v.Min, v.Max = val, val
		} else {
			if t != typ {
				homogeneous = false
			}
			if sqltypes.SortCompare(val, v.Min) < 0 {
				v.Min = val
			}
			if sqltypes.SortCompare(val, v.Max) > 0 {
				v.Max = val
			}
		}
	}
	if !seen {
		v.AllNull = true
		v.Enc = EncValues
		return v
	}
	if !homogeneous {
		v.Enc = EncValues
		return v
	}
	switch typ {
	case sqltypes.Int:
		v.Enc = EncInt
		v.Ints = make([]int64, n)
		for i := 0; i < n; i++ {
			if !rows[i][col].IsNull() {
				v.Ints[i] = rows[i][col].Int()
			}
		}
	case sqltypes.Float:
		v.Enc = EncFloat
		v.Floats = make([]float64, n)
		for i := 0; i < n; i++ {
			if !rows[i][col].IsNull() {
				f := rows[i][col].Float()
				v.Floats[i] = f
				if math.IsNaN(f) {
					v.NoPrune = true
				}
			}
		}
	case sqltypes.Bool:
		v.Enc = EncBool
		v.Bools = make([]bool, n)
		for i := 0; i < n; i++ {
			if !rows[i][col].IsNull() {
				v.Bools[i] = rows[i][col].Bool()
			}
		}
	case sqltypes.DateTime:
		v.Enc = EncTime
		v.Times = make([]time.Time, n)
		for i := 0; i < n; i++ {
			if !rows[i][col].IsNull() {
				v.Times[i] = rows[i][col].Time()
			}
		}
	case sqltypes.String:
		encodeStrings(rows, col, &v)
	default:
		v.Enc = EncValues
	}
	return v
}

// encodeStrings picks dictionary or plain encoding for an all-string
// vector: a sorted per-segment dictionary when the distinct count stays
// within dictMaxCard, plain otherwise (dictionary overflow).
func encodeStrings(rows []Row, col int, v *Vector) {
	n := len(rows)
	distinct := make(map[string]uint16, 16)
	for i := 0; i < n && len(distinct) <= dictMaxCard; i++ {
		if !rows[i][col].IsNull() {
			distinct[rows[i][col].Str()] = 0
		}
	}
	if len(distinct) > dictMaxCard {
		v.Enc = EncString
		v.Strs = make([]string, n)
		for i := 0; i < n; i++ {
			if !rows[i][col].IsNull() {
				v.Strs[i] = rows[i][col].Str()
			}
		}
		return
	}
	v.Enc = EncDict
	v.Dict = make([]string, 0, len(distinct))
	for s := range distinct {
		v.Dict = append(v.Dict, s)
	}
	sort.Strings(v.Dict)
	for code, s := range v.Dict {
		distinct[s] = uint16(code)
	}
	v.Codes = make([]uint16, n)
	for i := 0; i < n; i++ {
		if !rows[i][col].IsNull() {
			v.Codes[i] = distinct[rows[i][col].Str()]
		}
	}
}
