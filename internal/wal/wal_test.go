package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

func testRecord(i int) *Record {
	return &Record{
		Op:   OpCreateUser,
		Time: time.Date(2016, 6, 26, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Second),
		CreateUser: &CreateUser{
			Name:  fmt.Sprintf("user%d", i),
			Email: fmt.Sprintf("user%d@uw.edu", i),
		},
	}
}

func openEmpty(t *testing.T, dir string, mode SyncMode) *Writer {
	t.Helper()
	scan, err := ScanDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	w, err := OpenWriter(dir, scan, mode)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFrameRoundTrip(t *testing.T) {
	rec := testRecord(1)
	rec.LSN = 42
	data, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	file := append([]byte(segmentMagic), data...)
	recs, validLen, err := DecodeAll(file)
	if err != nil {
		t.Fatal(err)
	}
	if validLen != int64(len(file)) {
		t.Errorf("validLen = %d, want %d", validLen, len(file))
	}
	if len(recs) != 1 || recs[0].LSN != 42 || recs[0].CreateUser.Name != "user1" {
		t.Errorf("decoded %+v", recs)
	}
}

func TestDecodeAllTornTail(t *testing.T) {
	var file []byte
	file = append(file, segmentMagic...)
	for i := 1; i <= 3; i++ {
		rec := testRecord(i)
		rec.LSN = uint64(i)
		data, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		file = append(file, data...)
	}
	whole := int64(len(file))

	// Chopping anywhere inside the third record must yield exactly two
	// records and a validLen at the second record's end.
	recs, _, err := DecodeAll(file)
	if err != nil || len(recs) != 3 {
		t.Fatalf("full decode: %d records, err %v", len(recs), err)
	}
	third, err := EncodeRecord(recs[2])
	if err != nil {
		t.Fatal(err)
	}
	boundary := whole - int64(len(third))
	for cut := boundary + 1; cut < whole; cut++ {
		recs, validLen, err := DecodeAll(file[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(recs) != 2 || validLen != boundary {
			t.Fatalf("cut %d: %d records, validLen %d (want 2, %d)", cut, len(recs), validLen, boundary)
		}
	}

	// A flipped payload bit breaks the checksum: the record and everything
	// after it is the torn tail.
	corrupt := append([]byte(nil), file...)
	corrupt[boundary+frameHeaderSize] ^= 0xff
	recs, validLen, err := DecodeAll(corrupt)
	if err != nil || len(recs) != 2 || validLen != boundary {
		t.Errorf("corrupt: %d records, validLen %d, err %v", len(recs), validLen, err)
	}

	// Wrong magic is not a torn tail.
	bad := append([]byte("NOTAWAL0"), file[len(segmentMagic):]...)
	if _, _, err := DecodeAll(bad); err != ErrBadSegment {
		t.Errorf("bad magic: err = %v, want ErrBadSegment", err)
	}

	// Shorter than the magic decodes as empty (crash during creation).
	if recs, validLen, err := DecodeAll(file[:3]); err != nil || len(recs) != 0 || validLen != 0 {
		t.Errorf("short file: %d records, validLen %d, err %v", len(recs), validLen, err)
	}
}

func TestWriterAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openEmpty(t, dir, SyncNone)
	for i := 1; i <= 10; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.LastLSN() != 10 {
		t.Errorf("LastLSN = %d, want 10", w.LastLSN())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	scan, err := ScanDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 10 || scan.LastLSN != 10 {
		t.Fatalf("scan: %d records, last %d", len(scan.Records), scan.LastLSN)
	}
	for i, rec := range scan.Records {
		if rec.LSN != uint64(i+1) || rec.CreateUser.Name != fmt.Sprintf("user%d", i+1) {
			t.Errorf("record %d: %+v", i, rec)
		}
	}
	// afterLSN skips the prefix.
	scan, err = ScanDir(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 3 || scan.Records[0].LSN != 8 {
		t.Errorf("afterLSN scan: %d records, first %d", len(scan.Records), scan.Records[0].LSN)
	}
}

func TestWriterConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w := openEmpty(t, dir, SyncGroup)
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := w.Append(testRecord(g*each + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	scan, err := ScanDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != writers*each || scan.LastLSN != writers*each {
		t.Fatalf("scan: %d records, last %d", len(scan.Records), scan.LastLSN)
	}
}

func TestWriterReopenAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	w := openEmpty(t, dir, SyncNone)
	for i := 1; i <= 5; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record.
	seg := SegmentPath(dir, 1)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	scan, err := ScanDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 4 || scan.TornBytes == 0 {
		t.Fatalf("scan after tear: %d records, torn %d", len(scan.Records), scan.TornBytes)
	}
	// Reopening truncates the tail; appending continues at LSN 5.
	w, err = OpenWriter(dir, scan, SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testRecord(99)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	scan, err = ScanDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 5 || scan.LastLSN != 5 || scan.TornBytes != 0 {
		t.Fatalf("after reopen: %d records, last %d, torn %d", len(scan.Records), scan.LastLSN, scan.TornBytes)
	}
	if scan.Records[4].CreateUser.Name != "user99" {
		t.Errorf("replacement record: %+v", scan.Records[4])
	}
}

func TestWriterRotateAndScan(t *testing.T) {
	dir := t.TempDir()
	w := openEmpty(t, dir, SyncNone)
	for i := 1; i <= 3; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(SegmentPath(dir, 4)); err != nil {
		t.Fatal(err)
	}
	for i := 4; i <= 6; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 2 {
		t.Fatalf("segments: %v, err %v", segs, err)
	}
	scan, err := ScanDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 6 || scan.LastLSN != 6 {
		t.Fatalf("scan: %d records, last %d", len(scan.Records), scan.LastLSN)
	}
}

func TestClosedWriterRejectsAppends(t *testing.T) {
	dir := t.TempDir()
	w := openEmpty(t, dir, SyncNone)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testRecord(1)); err != ErrWriterClosed {
		t.Errorf("append after close: %v, want ErrWriterClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tbl := storage.NewTable("~base:alice.water", storage.Schema{
		{Name: "station", Type: sqltypes.String},
		{Name: "val", Type: sqltypes.Float},
	})
	if err := tbl.Insert([]storage.Row{
		{sqltypes.NewString("s1"), sqltypes.NewFloat(1.5)},
		{sqltypes.NewString("s2"), sqltypes.TypedNull(sqltypes.Float)},
	}); err != nil {
		t.Fatal(err)
	}
	s := &Snapshot{
		LSN:  7,
		Time: time.Date(2016, 6, 26, 12, 0, 0, 0, time.UTC),
		Users: []SnapUser{{Name: "alice", Email: "alice@uw.edu",
			Created: time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)}},
		Datasets: []SnapDataset{{
			Owner: "alice", Name: "water", SQL: "SELECT * FROM [~base:alice.water]",
			IsWrapper: true, Public: true, SharedWith: []string{"bob"},
			Created:     time.Date(2012, 1, 1, 0, 1, 0, 0, time.UTC),
			PreviewCols: []string{"station", "val"},
			Preview:     [][]string{{"s1", "1.5"}},
		}},
		Macros: []SnapMacro{{Owner: "alice", Name: "m", Template: "SELECT * FROM $t"}},
		Tables: []SnapTable{{Key: "~base:alice.water", Data: tbl.Data()}},
	}
	path, err := WriteSnapshot(dir, s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.LSN != 7 || len(got.Users) != 1 || len(got.Datasets) != 1 || len(got.Macros) != 1 {
		t.Fatalf("loaded %+v", got)
	}
	if got.Tables[0].Key != "~base:alice.water" {
		t.Errorf("restored table key: %s", got.Tables[0].Key)
	}
	rt, err := got.Tables[0].Data.Table()
	if err != nil {
		t.Fatal(err)
	}
	if rt.NumRows() != 2 {
		t.Errorf("restored table: %s, %d rows", rt.Name(), rt.NumRows())
	}

	// Any single-byte truncation must be detected, not half-loaded.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "snap-00000000000000aa.snap")
	if err := os.WriteFile(trunc, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(trunc); err == nil {
		t.Error("truncated snapshot loaded without error")
	}
	// So must a flipped byte in the middle.
	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0xff
	if err := os.WriteFile(trunc, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(trunc); err == nil {
		t.Error("corrupted snapshot loaded without error")
	}
}

func TestListSnapshotsNewestFirst(t *testing.T) {
	dir := t.TempDir()
	for _, lsn := range []uint64{3, 12, 7} {
		if _, err := WriteSnapshot(dir, &Snapshot{LSN: lsn}); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 || snaps[0].LSN != 12 || snaps[1].LSN != 7 || snaps[2].LSN != 3 {
		t.Errorf("snapshots: %+v", snaps)
	}
}

func TestRemoveObsolete(t *testing.T) {
	dir := t.TempDir()
	w := openEmpty(t, dir, SyncNone)
	appendN := func(from, to int) {
		for i := from; i <= to; i++ {
			if err := w.Append(testRecord(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Three checkpoint cycles: snapshot at 3, 6, 9 with rotation after each.
	for cycle := 0; cycle < 3; cycle++ {
		appendN(cycle*3+1, cycle*3+3)
		lsn := uint64(cycle*3 + 3)
		if _, err := WriteSnapshot(dir, &Snapshot{LSN: lsn}); err != nil {
			t.Fatal(err)
		}
		if err := w.Rotate(SegmentPath(dir, lsn+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := RemoveObsolete(dir, 2); err != nil {
		t.Fatal(err)
	}
	snaps, err := ListSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].LSN != 9 || snaps[1].LSN != 6 {
		t.Fatalf("retained snapshots: %+v", snaps)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Oldest retained snapshot covers LSN 6: the segment holding 1–3 is
	// removable, the ones from 4 on are not.
	for _, seg := range segs {
		if seg.startLSN < 4 {
			t.Errorf("segment %s should have been removed", seg.path)
		}
	}
	// Recovery from the oldest retained snapshot still works.
	scan, err := ScanDir(dir, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 3 || scan.LastLSN != 9 {
		t.Errorf("scan after cleanup: %d records, last %d", len(scan.Records), scan.LastLSN)
	}
}

func TestScanDirRejectsLSNGap(t *testing.T) {
	dir := t.TempDir()
	w := openEmpty(t, dir, SyncNone)
	for i := 1; i <= 3; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite the segment with the middle record missing.
	seg := SegmentPath(dir, 1)
	scan, err := ScanDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString(segmentMagic)
	for _, rec := range []*Record{scan.Records[0], scan.Records[2]} {
		data, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
	}
	if err := os.WriteFile(seg, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanDir(dir, 0); err == nil {
		t.Error("scan of a log with an LSN gap should fail")
	}
}
