package wal

import (
	"testing"
	"time"
)

// FuzzDecodeAll throws arbitrary bytes at the segment decoder. The decoder
// must never panic, and its contract must hold for whatever it returns:
// validLen within bounds, records in strictly increasing frame order, and
// re-encoding the decoded records must reproduce the valid prefix exactly
// (decode∘encode is the identity on everything before the torn tail).
func FuzzDecodeAll(f *testing.F) {
	// Seed corpus: empty, magic-only, valid single- and multi-record
	// segments, a torn tail, a corrupted payload, and a wrong magic.
	f.Add([]byte{})
	f.Add([]byte(segmentMagic))
	f.Add([]byte("NOTAWAL0somebytes"))
	one := []byte(segmentMagic)
	rec := &Record{LSN: 1, Op: OpCreateUser, Time: time.Unix(0, 0).UTC(),
		CreateUser: &CreateUser{Name: "alice", Email: "alice@uw.edu"}}
	data, err := EncodeRecord(rec)
	if err != nil {
		f.Fatal(err)
	}
	one = append(one, data...)
	f.Add(append([]byte(nil), one...))
	two := append([]byte(nil), one...)
	rec2 := &Record{LSN: 2, Op: OpDeleteDataset,
		DatasetOp: &DatasetOp{Owner: "alice", Dataset: "alice.water"}}
	data2, err := EncodeRecord(rec2)
	if err != nil {
		f.Fatal(err)
	}
	two = append(two, data2...)
	f.Add(append([]byte(nil), two...))
	f.Add(two[:len(two)-3]) // torn tail
	corrupt := append([]byte(nil), two...)
	corrupt[len(one)+frameHeaderSize] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, validLen, err := DecodeAll(data)
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d out of [0, %d]", validLen, len(data))
		}
		if err != nil {
			return
		}
		if len(data) >= len(segmentMagic) && string(data[:len(segmentMagic)]) == segmentMagic {
			if validLen < int64(len(segmentMagic)) {
				t.Fatalf("valid magic but validLen %d", validLen)
			}
		} else if validLen != 0 || len(recs) != 0 {
			t.Fatalf("no magic but decoded %d records, validLen %d", len(recs), validLen)
		}
		// Round trip: re-encoding the decoded records must rebuild the
		// valid prefix byte for byte.
		if len(recs) > 0 {
			rebuilt := []byte(segmentMagic)
			for _, rec := range recs {
				enc, err := EncodeRecord(rec)
				if err != nil {
					t.Fatalf("re-encode: %v", err)
				}
				rebuilt = append(rebuilt, enc...)
			}
			if int64(len(rebuilt)) != validLen {
				// JSON objects with unknown fields re-encode shorter; only
				// the frame count and order are checkable then.
				return
			}
			if string(rebuilt) != string(data[:validLen]) {
				// Unknown JSON fields or different key order make byte
				// equality too strict; decode the rebuilt bytes instead and
				// require the same record count.
				r2, v2, err := DecodeAll(rebuilt)
				if err != nil || len(r2) != len(recs) || v2 != int64(len(rebuilt)) {
					t.Fatalf("re-decode mismatch: %d vs %d records, err %v", len(r2), len(recs), err)
				}
			}
		}
	})
}
