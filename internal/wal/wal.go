// Package wal implements the durable persistence layer of the SQLShare
// reproduction. The production system ran for years on SQL Azure (paper
// §3.4): users uploaded datasets once and queried them for the rest of the
// study, which is only possible when the catalog — base tables, views,
// users, grants — survives process death. This package supplies that
// property for the in-memory reproduction with the classic recipe:
//
//   - every catalog mutation is encoded as a typed Record and appended to a
//     length-prefixed, CRC-checksummed write-ahead log before it is applied
//     in memory (append-then-apply);
//   - a single fsync goroutine batches concurrent appenders (group commit),
//     amortizing the dominant fsync cost under load;
//   - a checkpoint writes the full catalog state as a snapshot file and
//     rotates the log, bounding recovery time;
//   - on startup, recovery restores the latest valid snapshot and replays
//     the log tail, tolerating a torn final record exactly like the query-
//     history JSONL reader does.
//
// The package knows nothing about the catalog's semantics: records carry
// plain values (and serialized tables, via storage.TableData), and the
// catalog owns the replay constructors that turn records back into state.
package wal

import (
	"encoding/json"
	"time"

	"sqlshare/internal/storage"
)

// Op names the catalog mutation a record encodes. The values are stable:
// they are written to disk.
const (
	OpCreateUser         = "create_user"
	OpCreateDataset      = "create_dataset"
	OpSaveView           = "save_view"
	OpAppend             = "append"
	OpMaterialize        = "materialize"
	OpMaterializeInPlace = "materialize_in_place"
	OpDeleteDataset      = "delete_dataset"
	OpSetVisibility      = "set_visibility"
	OpShare              = "share"
	OpUpdateMeta         = "update_meta"
	OpMintDOI            = "mint_doi"
	OpSaveMacro          = "save_macro"
	OpShardMap           = "shard_map"
)

// Record is one journaled catalog mutation. Exactly one payload pointer is
// non-nil, selected by Op; LSN is assigned by the Writer at append time and
// is strictly increasing across the log's life, surviving rotation.
type Record struct {
	LSN  uint64    `json:"lsn"`
	Time time.Time `json:"ts"`
	Op   string    `json:"op"`

	CreateUser    *CreateUser     `json:"createUser,omitempty"`
	CreateDataset *CreateDataset  `json:"createDataset,omitempty"`
	SaveView      *SaveView       `json:"saveView,omitempty"`
	Append        *AppendView     `json:"append,omitempty"`
	Materialize   *Materialize    `json:"materialize,omitempty"`
	DatasetOp     *DatasetOp      `json:"datasetOp,omitempty"`
	SaveMacro     *SaveMacro      `json:"saveMacro,omitempty"`
	ShardMap      *ShardMapChange `json:"shardMap,omitempty"`
}

// CreateUser registers a user.
type CreateUser struct {
	Name  string `json:"name"`
	Email string `json:"email,omitempty"`
}

// CreateDataset is the upload path: the ingested table is journaled in full
// so replay does not depend on the original file. LiveTable optionally
// carries the already-built in-memory table on the live mutation path; it
// is never serialized.
type CreateDataset struct {
	Owner       string             `json:"owner"`
	Name        string             `json:"name"`
	Description string             `json:"description,omitempty"`
	Tags        []string           `json:"tags,omitempty"`
	Table       *storage.TableData `json:"table"`

	LiveTable *storage.Table `json:"-"`
}

// SaveView creates a derived dataset from a definition.
type SaveView struct {
	Owner       string   `json:"owner"`
	Name        string   `json:"name"`
	SQL         string   `json:"sql"`
	Description string   `json:"description,omitempty"`
	Tags        []string `json:"tags,omitempty"`
}

// AppendView rewrites Dataset as (Dataset) UNION ALL (Source). Both names
// are resolved full names so replay is context-independent.
type AppendView struct {
	Owner   string `json:"owner"`
	Dataset string `json:"dataset"`
	Source  string `json:"source"`
}

// Materialize snapshots a view's contents into a physical table — as a new
// dataset (InPlace false; Name is the snapshot dataset name) or by swapping
// the view's own definition (InPlace true; Name is the dataset's full
// name). The computed table is journaled so replay does not re-execute the
// query against a clock-dependent engine.
type Materialize struct {
	Owner   string             `json:"owner"`
	Source  string             `json:"source,omitempty"`
	Name    string             `json:"name"`
	InPlace bool               `json:"inPlace,omitempty"`
	Table   *storage.TableData `json:"table"`

	LiveTable *storage.Table `json:"-"`
}

// DatasetOp covers the small single-dataset mutations: delete, visibility,
// share, metadata edits and DOI minting. Dataset is a resolved full name.
type DatasetOp struct {
	Owner       string   `json:"owner"`
	Dataset     string   `json:"dataset"`
	User        string   `json:"user,omitempty"`   // share grantee
	Public      bool     `json:"public,omitempty"` // set_visibility
	Description string   `json:"description,omitempty"`
	Tags        []string `json:"tags,omitempty"`
	DOI         string   `json:"doi,omitempty"`
}

// SaveMacro stores a parameterized query macro.
type SaveMacro struct {
	Owner    string `json:"owner"`
	Name     string `json:"name"`
	Template string `json:"template"`
}

// ShardMapChange journals a cluster placement-table change so the shard
// map a node serves with is exactly the one recovery rebuilds (live ==
// recovered). Data is the serialized cluster map kept as raw JSON — this
// package stays as agnostic of cluster semantics as it is of catalog
// semantics.
type ShardMapChange struct {
	Epoch uint64          `json:"epoch"`
	Data  json.RawMessage `json:"data"`
}
