package wal

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"

	"sqlshare/internal/obs"
	"time"
)

// SyncMode selects the durability/latency trade-off of the Writer.
type SyncMode int

const (
	// SyncGroup (the default) makes every Append wait for an fsync, but a
	// single sync goroutine batches all appenders that arrived while the
	// previous fsync was in flight — one disk flush commits the whole
	// group. Durable against OS crash; throughput scales with concurrency.
	SyncGroup SyncMode = iota
	// SyncEach fsyncs after every individual record — the classic
	// one-commit-one-flush baseline the group-commit benchmark compares
	// against.
	SyncEach
	// SyncNone never fsyncs on append (the OS flushes eventually). Durable
	// against process death only; used by tests and bulk loads.
	SyncNone
)

// ErrWriterClosed is returned by operations on a closed Writer.
var ErrWriterClosed = errors.New("wal: writer is closed")

// batchMax caps how many pending appends one fsync commits. 256 keeps the
// latency of the last writer in a batch bounded even under extreme load.
const batchMax = 256

type appendReq struct {
	data []byte   // framed record; nil for control requests
	lsn  uint64   // LSN carried by data
	swap *os.File // rotate: fsync+close the current file, continue on swap
	done chan error
}

// Writer appends records to the newest WAL segment. Append is safe for
// concurrent use; every successful Append returns only after the record is
// durable under the configured SyncMode. LSNs are assigned at append time
// in file order.
type Writer struct {
	mode SyncMode

	mu      sync.Mutex // LSN assignment + enqueue order + lifecycle
	nextLSN uint64
	closed  bool
	reqs    chan *appendReq
	syncerD sync.WaitGroup

	lastDurable atomic.Uint64 // highest LSN the syncer has committed

	notifyMu  sync.Mutex    // guards durableCh swap
	durableCh chan struct{} // closed each time lastDurable advances

	// Metrics are optional and attachable after recovery (the server's
	// registry does not exist yet when the writer opens).
	fsyncSeconds atomic.Pointer[obs.Histogram]
	records      atomic.Pointer[obs.Counter]
	bytes        atomic.Pointer[obs.Counter]

	f *os.File // owned by the syncer goroutine after start
}

// newWriter wraps an already-positioned segment file.
func newWriter(f *os.File, lastLSN uint64, mode SyncMode) *Writer {
	w := &Writer{
		mode:      mode,
		nextLSN:   lastLSN,
		reqs:      make(chan *appendReq, batchMax),
		durableCh: make(chan struct{}),
		f:         f,
	}
	w.lastDurable.Store(lastLSN)
	w.syncerD.Add(1)
	go w.syncer()
	return w
}

// SetMetrics attaches the fsync-latency histogram and append counters.
// Passing nils detaches.
func (w *Writer) SetMetrics(fsyncSeconds *obs.Histogram, records, bytes *obs.Counter) {
	w.fsyncSeconds.Store(fsyncSeconds)
	w.records.Store(records)
	w.bytes.Store(bytes)
}

// LastLSN returns the highest durably committed LSN.
func (w *Writer) LastLSN() uint64 { return w.lastDurable.Load() }

// Durable returns the highest durably committed LSN together with a
// channel that is closed the next time that LSN advances — the wait
// primitive behind replication long-polls: read the LSN, and if it is not
// new enough yet, block on the channel (or a timeout) and re-check.
func (w *Writer) Durable() (uint64, <-chan struct{}) {
	w.notifyMu.Lock()
	ch := w.durableCh
	w.notifyMu.Unlock()
	return w.lastDurable.Load(), ch
}

// advanceDurable publishes a new durable high-water mark and wakes every
// Durable waiter.
func (w *Writer) advanceDurable(lsn uint64) {
	for {
		cur := w.lastDurable.Load()
		if lsn <= cur {
			return
		}
		if w.lastDurable.CompareAndSwap(cur, lsn) {
			w.notifyMu.Lock()
			close(w.durableCh)
			w.durableCh = make(chan struct{})
			w.notifyMu.Unlock()
			return
		}
	}
}

// AdvanceTo moves the LSN sequence forward to lsn without writing
// records: the next Append is assigned lsn+1 and lsn is reported durable.
// A follower uses this after installing a snapshot — the snapshot's
// effects stand in for records 1..lsn, which this node never saw as
// frames. Moving backwards is refused; the caller must be quiescent (no
// concurrent Appends in flight).
func (w *Writer) AdvanceTo(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrWriterClosed
	}
	if lsn < w.nextLSN {
		return fmt.Errorf("wal: AdvanceTo %d would move the LSN sequence backwards (next append is %d)", lsn, w.nextLSN+1)
	}
	w.nextLSN = lsn
	w.advanceDurable(lsn)
	return nil
}

// Append assigns rec the next LSN, writes it to the log and waits until it
// is durable (per the SyncMode). On error the record is not considered
// written and the caller must not apply its effect.
func (w *Writer) Append(rec *Record) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWriterClosed
	}
	rec.LSN = w.nextLSN + 1
	data, err := EncodeRecord(rec)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	w.nextLSN++
	req := &appendReq{data: data, lsn: rec.LSN, done: make(chan error, 1)}
	w.reqs <- req // under mu: enqueue order == LSN order
	w.mu.Unlock()
	return <-req.done
}

// Sync blocks until everything appended so far is flushed (and fsynced
// unless the mode is SyncNone).
func (w *Writer) Sync() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrWriterClosed
	}
	req := &appendReq{done: make(chan error, 1)}
	w.reqs <- req
	w.mu.Unlock()
	return <-req.done
}

// Rotate fsyncs and closes the current segment and continues appending to a
// fresh segment at path (created with the WAL magic and made durable before
// any record lands in it).
func (w *Writer) Rotate(path string) error {
	f, err := createSegment(path)
	if err != nil {
		return err
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		f.Close()
		return ErrWriterClosed
	}
	req := &appendReq{swap: f, done: make(chan error, 1)}
	w.reqs <- req
	w.mu.Unlock()
	if err := <-req.done; err != nil {
		f.Close()
		return err
	}
	return nil
}

// Close flushes and fsyncs outstanding records and closes the segment.
// Further appends return ErrWriterClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	close(w.reqs)
	w.mu.Unlock()
	w.syncerD.Wait()
	return nil
}

// syncer is the single goroutine that owns the segment file: it drains
// batches of pending appends, writes them with one file write each, and
// commits the whole batch with a single fsync (SyncGroup).
func (w *Writer) syncer() {
	defer w.syncerD.Done()
	for req := range w.reqs {
		batch := []*appendReq{req}
		// Yield once before draining: concurrent appenders that are already
		// runnable get to enqueue first, so one fsync commits the whole
		// group. Without this, a single-CPU scheduler hands the first
		// request straight to the syncer and every batch degenerates to one
		// record — group commit in name only.
		runtime.Gosched()
	drain:
		for len(batch) < batchMax {
			select {
			case r, ok := <-w.reqs:
				if !ok {
					break drain
				}
				batch = append(batch, r)
			default:
				break drain
			}
		}
		w.commit(batch)
	}
	// Closed: a final fsync makes Close a durability barrier.
	if w.f != nil {
		w.fsync()
		w.f.Close()
		w.f = nil
	}
}

// commit writes and flushes one batch, then wakes every waiter.
func (w *Writer) commit(batch []*appendReq) {
	var err error
	var maxLSN uint64
	var nrec, nbytes int64
	for _, r := range batch {
		switch {
		case r.swap != nil:
			if err == nil {
				err = w.fsync()
			}
			if err == nil {
				w.f.Close()
				w.f = r.swap
			}
		case r.data != nil:
			if err == nil {
				_, werr := w.f.Write(r.data)
				err = werr
			}
			if err == nil {
				if r.lsn > maxLSN {
					maxLSN = r.lsn
				}
				nrec++
				nbytes += int64(len(r.data))
				if w.mode == SyncEach {
					err = w.fsync()
				}
			}
		}
		// Bare done channels (Sync) need no per-request work: the batch
		// fsync below is their barrier.
	}
	if err == nil && w.mode == SyncGroup {
		err = w.fsync()
	}
	if err == nil {
		w.advanceDurable(maxLSN)
		if c := w.records.Load(); c != nil {
			c.Add(nrec)
		}
		if c := w.bytes.Load(); c != nil {
			c.Add(nbytes)
		}
	}
	for _, r := range batch {
		r.done <- err
	}
}

func (w *Writer) fsync() error {
	if w.mode == SyncNone {
		return nil
	}
	start := time.Now()
	err := w.f.Sync()
	if h := w.fsyncSeconds.Load(); h != nil {
		h.Observe(time.Since(start).Seconds())
	}
	return err
}

// createSegment creates a fresh segment file with the WAL magic, durable
// (file and directory entry fsynced) before it is used.
func createSegment(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write([]byte(segmentMagic)); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(path); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// syncDir fsyncs the directory containing path so renames and creations
// survive an OS crash.
func syncDir(path string) error {
	d, err := os.Open(dirOf(path))
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	return nil
}
