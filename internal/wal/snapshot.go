package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sqlshare/internal/storage"
)

// Snapshot is the full serialized catalog state as of LSN: everything a
// restart needs to rebuild the in-memory catalog without the log prefix the
// snapshot covers. Previews are stored rather than recomputed so recovery
// reproduces the pre-crash catalog bit-for-bit (previews refresh only on
// dataset mutation, so a recomputed preview could be fresher than the one
// users saw).
type Snapshot struct {
	LSN      uint64        `json:"lsn"`
	Time     time.Time     `json:"ts"`
	Users    []SnapUser    `json:"users,omitempty"`
	Datasets []SnapDataset `json:"datasets,omitempty"`
	Macros   []SnapMacro   `json:"macros,omitempty"`
	Tables   []SnapTable   `json:"tables,omitempty"`
	// Versions carries the per-dataset monotonic content counters that
	// fence the result cache, so recovered counters continue — never
	// restart — and pre-crash cache keys can never be re-minted.
	Versions map[string]uint64 `json:"versions,omitempty"`
	// ShardMapEpoch and ShardMap carry the cluster placement table (see
	// OpShardMap) so a recovered or snapshot-bootstrapped node serves the
	// same shard map the live one did.
	ShardMapEpoch uint64          `json:"shardMapEpoch,omitempty"`
	ShardMap      json.RawMessage `json:"shardMap,omitempty"`
}

// SnapTable is a serialized base table plus the catalog key it is
// registered under (the hidden "~base:owner.name" name, distinct from the
// table's own name).
type SnapTable struct {
	Key  string             `json:"key"`
	Data *storage.TableData `json:"data"`
}

// SnapUser is a serialized catalog user.
type SnapUser struct {
	Name    string    `json:"name"`
	Email   string    `json:"email,omitempty"`
	Created time.Time `json:"created"`
}

// SnapDataset is a serialized dataset. The parsed query and the preview are
// reconstructed at restore time from SQL and the stored preview cells.
type SnapDataset struct {
	Owner        string     `json:"owner"`
	Name         string     `json:"name"`
	SQL          string     `json:"sql"`
	Description  string     `json:"description,omitempty"`
	Tags         []string   `json:"tags,omitempty"`
	IsWrapper    bool       `json:"isWrapper,omitempty"`
	Public       bool       `json:"public,omitempty"`
	SharedWith   []string   `json:"sharedWith,omitempty"`
	Created      time.Time  `json:"created"`
	Deleted      bool       `json:"deleted,omitempty"`
	DOI          string     `json:"doi,omitempty"`
	Materialized bool       `json:"materialized,omitempty"`
	OriginalSQL  string     `json:"originalSql,omitempty"`
	PreviewCols  []string   `json:"previewCols,omitempty"`
	Preview      [][]string `json:"preview,omitempty"`
	// PreviewVersions is the version stamp the preview was rendered at
	// (see catalog version fencing).
	PreviewVersions map[string]uint64 `json:"previewVersions,omitempty"`
}

// SnapMacro is a serialized query macro.
type SnapMacro struct {
	Owner    string `json:"owner"`
	Name     string `json:"name"`
	Template string `json:"template"`
}

// SnapshotInfo locates one snapshot file.
type SnapshotInfo struct {
	Path string
	LSN  uint64
}

// ListSnapshots returns the directory's snapshots, newest (highest LSN)
// first.
func ListSnapshots(dir string) ([]SnapshotInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []SnapshotInfo
	for _, e := range entries {
		if lsn, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			snaps = append(snaps, SnapshotInfo{Path: filepath.Join(dir, e.Name()), LSN: lsn})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].LSN > snaps[j].LSN })
	return snaps, nil
}

// WriteSnapshot makes s durable in dir: the checksummed file is written to
// a temp name, fsynced, atomically renamed into place, and the directory
// entry fsynced. A crash at any point leaves either the old state or the
// complete new snapshot — never a half-written file under the final name.
func WriteSnapshot(dir string, s *Snapshot) (string, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("wal: encode snapshot: %w", err)
	}
	data := appendFrame([]byte(snapshotMagic), payload)
	final := snapshotPath(dir, s.LSN)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := syncDir(final); err != nil {
		return "", err
	}
	return final, nil
}

// LoadSnapshot reads and validates one snapshot file. Any truncation,
// checksum mismatch or decode failure is an error — the caller falls back
// to an older snapshot.
func LoadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapshotMagic) || string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("wal: %s: not a snapshot (bad magic)", path)
	}
	payload, frameLen, ok := decodeFrame(data[len(snapshotMagic):])
	if !ok || len(snapshotMagic)+frameLen != len(data) {
		return nil, fmt.Errorf("wal: %s: snapshot truncated or checksum mismatch", path)
	}
	s := &Snapshot{}
	if err := json.Unmarshal(payload, s); err != nil {
		return nil, fmt.Errorf("wal: %s: undecodable snapshot: %w", path, err)
	}
	return s, nil
}
