package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"strings"
	"testing"
	"time"
)

// rewriteSegment replaces the segment file at path with magic + the given
// records, bypassing the Writer's LSN assignment.
func rewriteSegment(t *testing.T, path string, recs ...*Record) {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString(segmentMagic)
	for _, rec := range recs {
		data, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScanDirGapErrorNamesMissingRange(t *testing.T) {
	dir := t.TempDir()
	w := openEmpty(t, dir, SyncNone)
	for i := 1; i <= 5; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	scan, err := ScanDir(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Punch a hole: records 3 and 4 vanish from the middle of the segment.
	rewriteSegment(t, SegmentPath(dir, 1), scan.Records[0], scan.Records[1], scan.Records[4])

	_, err = ScanDir(dir, 0)
	if err == nil {
		t.Fatal("scan of a log missing LSNs 3-4 should fail")
	}
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("error should be a *GapError, got %T: %v", err, err)
	}
	if gap.After != 2 || gap.Before != 5 {
		t.Errorf("gap bounds = (%d, %d), want (2, 5)", gap.After, gap.Before)
	}
	if gap.Segment != SegmentPath(dir, 1) {
		t.Errorf("gap.Segment = %q, want %q", gap.Segment, SegmentPath(dir, 1))
	}
	// The message must name the missing LSN range and the segment to
	// backfill — the whole point of the typed error.
	for _, want := range []string{"missing LSNs 3 through 4", SegmentPath(dir, 1), "wal-0000000000000003.log"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %q", err.Error(), want)
		}
	}
}

func TestScanDirGapErrorAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	w := openEmpty(t, dir, SyncNone)
	for i := 1; i <= 2; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Rotate as a checkpoint would, then write more records; deleting the
	// second segment leaves a hole between segment files.
	if err := w.Rotate(SegmentPath(dir, 3)); err != nil {
		t.Fatal(err)
	}
	for i := 3; i <= 4; i++ {
		if err := w.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Rotate(SegmentPath(dir, 5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(testRecord(5)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(SegmentPath(dir, 3)); err != nil {
		t.Fatal(err)
	}

	_, err := ScanDir(dir, 0)
	var gap *GapError
	if !errors.As(err, &gap) {
		t.Fatalf("error should be a *GapError, got %T: %v", err, err)
	}
	if gap.After != 2 || gap.Before != 5 {
		t.Errorf("gap bounds = (%d, %d), want (2, 5)", gap.After, gap.Before)
	}
	if gap.PrevSegment != SegmentPath(dir, 1) || gap.Segment != SegmentPath(dir, 5) {
		t.Errorf("gap segments = (%q, %q), want (%q, %q)",
			gap.PrevSegment, gap.Segment, SegmentPath(dir, 1), SegmentPath(dir, 5))
	}
	if !strings.Contains(err.Error(), "between "+SegmentPath(dir, 1)+" and "+SegmentPath(dir, 5)) {
		t.Errorf("error %q should name the bounding segments", err.Error())
	}
}

func TestReadFrameStream(t *testing.T) {
	var buf bytes.Buffer
	want := []*Record{testRecord(1), testRecord(2), testRecord(3)}
	for i, rec := range want {
		rec.LSN = uint64(i + 1)
		data, err := EncodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
	}
	r := bytes.NewReader(buf.Bytes())
	for i := 0; ; i++ {
		payload, err := ReadFrame(r)
		if err == io.EOF {
			if i != len(want) {
				t.Errorf("stream ended after %d frames, want %d", i, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rec, err := DecodeRecordPayload(payload)
		if err != nil {
			t.Fatal(err)
		}
		if rec.LSN != want[i].LSN || rec.CreateUser.Name != want[i].CreateUser.Name {
			t.Errorf("frame %d decoded %+v", i, rec)
		}
	}
}

func TestReadFrameTorn(t *testing.T) {
	rec := testRecord(1)
	rec.LSN = 1
	whole, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short header":  whole[:frameHeaderSize-3],
		"short payload": whole[:len(whole)-5],
	}
	// Flip a payload byte: checksum mismatch.
	corrupt := append([]byte(nil), whole...)
	corrupt[frameHeaderSize+2] ^= 0xff
	cases["checksum mismatch"] = corrupt
	// Implausible length field.
	huge := append([]byte(nil), whole...)
	huge[3] = 0xff
	cases["implausible length"] = huge
	for name, data := range cases {
		_, err := ReadFrame(bytes.NewReader(data))
		if !errors.Is(err, ErrTornFrame) {
			t.Errorf("%s: err = %v, want ErrTornFrame", name, err)
		}
	}
	// Clean EOF exactly on a frame boundary is not torn.
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: err = %v, want io.EOF", err)
	}
}

func TestWriterDurableNotify(t *testing.T) {
	dir := t.TempDir()
	w := openEmpty(t, dir, SyncNone)
	defer w.Close()

	lsn, ch := w.Durable()
	if lsn != 0 {
		t.Fatalf("fresh log durable LSN = %d, want 0", lsn)
	}
	if err := w.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("durable channel not closed after a committed append")
	}
	if lsn, _ = w.Durable(); lsn != 1 {
		t.Errorf("durable LSN after append = %d, want 1", lsn)
	}
}

func TestWriterAdvanceTo(t *testing.T) {
	dir := t.TempDir()
	w := openEmpty(t, dir, SyncNone)
	if err := w.AdvanceTo(7); err != nil {
		t.Fatal(err)
	}
	if err := w.AdvanceTo(3); err == nil {
		t.Error("AdvanceTo must refuse to move backwards")
	}
	if lsn, _ := w.Durable(); lsn != 7 {
		t.Errorf("durable LSN after AdvanceTo(7) = %d, want 7", lsn)
	}
	rec := testRecord(8)
	if err := w.Append(rec); err != nil {
		t.Fatal(err)
	}
	if rec.LSN != 8 {
		t.Errorf("first append after AdvanceTo(7) got LSN %d, want 8", rec.LSN)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A scan from the advanced base must see exactly the appended record.
	scan, err := ScanDir(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 1 || scan.LastLSN != 8 {
		t.Errorf("scan after AdvanceTo: %d records, last %d", len(scan.Records), scan.LastLSN)
	}
}
