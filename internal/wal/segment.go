package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segments are named wal-<first LSN, hex>.log so a directory listing sorts
// them in log order; snapshots are snap-<last covered LSN, hex>.snap.
// Rotation happens only at checkpoints, so every segment boundary is also a
// snapshot boundary.

// SegmentPath returns the path of the segment whose first record will be
// startLSN.
func SegmentPath(dir string, startLSN uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", startLSN))
}

func snapshotPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", lsn))
}

func dirOf(path string) string { return filepath.Dir(path) }

// parseSeq extracts the hex sequence number from a "prefix-<hex>.suffix"
// file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

type segmentInfo struct {
	path     string
	startLSN uint64
}

// listSegments returns the directory's WAL segments sorted by start LSN.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segmentInfo
	for _, e := range entries {
		if lsn, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, segmentInfo{path: filepath.Join(dir, e.Name()), startLSN: lsn})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].startLSN < segs[j].startLSN })
	return segs, nil
}

// GapError reports a hole in the LSN sequence: the log jumps from After to
// Before, so records After+1 through Before-1 are missing. The message
// names the missing range and the segment files bounding it, so an
// operator (or the replication catch-up path) knows exactly which segment
// range to backfill — "log is missing records" alone left callers
// guessing. Replication uses errors.As to detect this and fall back to a
// snapshot sync.
type GapError struct {
	// After and Before bound the hole: every LSN in (After, Before) is
	// missing.
	After, Before uint64
	// Segment is the file in which the too-new record was found.
	Segment string
	// PrevSegment is the newest segment whose records precede the hole
	// ("" when the hole starts at the scan's base LSN, i.e. the segment
	// that should follow the snapshot is gone).
	PrevSegment string
}

func (e *GapError) Error() string {
	where := fmt.Sprintf("before %s", e.Segment)
	switch e.PrevSegment {
	case "":
	case e.Segment:
		where = fmt.Sprintf("within %s", e.Segment)
	default:
		where = fmt.Sprintf("between %s and %s", e.PrevSegment, e.Segment)
	}
	return fmt.Sprintf("wal: log is missing LSNs %d through %d: no segment %s covers them; backfill a segment starting at wal-%016x.log or recover from a snapshot at LSN >= %d",
		e.After+1, e.Before-1, where, e.After+1, e.Before-1)
}

// ScanResult is what recovery learned from reading the log directory.
type ScanResult struct {
	// Records holds every record with LSN > the afterLSN passed to ScanDir,
	// in log order with consecutive LSNs.
	Records []*Record
	// LastLSN is the highest LSN on disk (afterLSN if the log is empty).
	LastLSN uint64
	// TornBytes counts bytes discarded from the newest segment's tail — a
	// record a crash tore mid-append.
	TornBytes int64

	lastSegment  string // newest segment path; "" when the log is empty
	lastValidLen int64  // valid prefix length of that segment
}

// ScanDir reads every segment under dir and returns the records that
// post-date afterLSN (the snapshot's last covered LSN). A torn final record
// in the newest segment is tolerated and reported via TornBytes; a torn
// record anywhere else — or a gap in the LSN sequence above afterLSN — is
// corruption and an error.
func ScanDir(dir string, afterLSN uint64) (*ScanResult, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	res := &ScanResult{LastLSN: afterLSN}
	prevSegment := "" // segment holding the most recent in-sequence record
	for i, seg := range segs {
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return nil, err
		}
		recs, validLen, err := DecodeAll(data)
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", seg.path, err)
		}
		last := i == len(segs)-1
		if validLen < int64(len(data)) && !last {
			return nil, fmt.Errorf("wal: segment %s: torn record at offset %d in a non-final segment", seg.path, validLen)
		}
		for _, rec := range recs {
			if rec.LSN <= afterLSN {
				prevSegment = seg.path
				continue
			}
			if rec.LSN != res.LastLSN+1 {
				return nil, &GapError{After: res.LastLSN, Before: rec.LSN, Segment: seg.path, PrevSegment: prevSegment}
			}
			prevSegment = seg.path
			res.Records = append(res.Records, rec)
			res.LastLSN = rec.LSN
		}
		if last {
			res.TornBytes = int64(len(data)) - validLen
			res.lastSegment = seg.path
			res.lastValidLen = validLen
		}
	}
	return res, nil
}

// OpenWriter opens the log for appending after a ScanDir: the newest
// segment is truncated to its valid prefix (discarding the torn tail) and
// reopened, or a first segment is created when the directory has none.
func OpenWriter(dir string, scan *ScanResult, mode SyncMode) (*Writer, error) {
	if scan.lastSegment == "" {
		f, err := createSegment(SegmentPath(dir, scan.LastLSN+1))
		if err != nil {
			return nil, err
		}
		return newWriter(f, scan.LastLSN, mode), nil
	}
	f, err := os.OpenFile(scan.lastSegment, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	// A segment torn before the magic completed is re-stamped from scratch.
	if scan.lastValidLen < int64(len(segmentMagic)) {
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write([]byte(segmentMagic)); err != nil {
			f.Close()
			return nil, err
		}
	} else if err := f.Truncate(scan.lastValidLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return newWriter(f, scan.LastLSN, mode), nil
}

// RemoveObsolete deletes snapshots beyond the keep newest and every segment
// whose records are all covered by the oldest retained snapshot. It is
// called after a checkpoint made a newer snapshot durable; failures are
// returned but recovery never depends on cleanup having run.
func RemoveObsolete(dir string, keep int) error {
	if keep < 1 {
		keep = 1
	}
	snaps, err := ListSnapshots(dir)
	if err != nil {
		return err
	}
	for _, s := range snaps[min(keep, len(snaps)):] {
		if err := os.Remove(s.Path); err != nil {
			return err
		}
	}
	// Until keep snapshots exist, the whole log is retained: the fallback
	// chain must end in "empty catalog + full replay", so the prefix only
	// becomes deletable once enough snapshots stand in front of it.
	if len(snaps) < keep {
		return nil
	}
	oldest := snaps[keep-1].LSN
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		// A segment is removable only when the next segment starts at or
		// below oldest+1 — then every record here is ≤ oldest and the
		// retained snapshots already contain its effects.
		if i+1 < len(segs) && segs[i+1].startLSN <= oldest+1 {
			if err := os.Remove(seg.path); err != nil {
				return err
			}
		}
	}
	return nil
}
