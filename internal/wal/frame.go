package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// On-disk layout. Every segment starts with an 8-byte magic; each record is
// framed as
//
//	u32 little-endian payload length
//	u32 little-endian CRC-32C (Castagnoli) of the payload
//	payload (JSON-encoded Record)
//
// A crash can tear the final frame anywhere — mid-header, mid-payload, or
// leave a payload whose checksum does not match the bytes that made it to
// disk. DecodeAll treats any such suffix as the torn tail and returns every
// record before it; recovery truncates the file at that offset before
// appending again.

const (
	// segmentMagic begins every WAL segment file.
	segmentMagic = "SQLSWAL1"
	// snapshotMagic begins every snapshot file.
	snapshotMagic = "SQLSSNP1"
	// frameHeaderSize is the length + CRC prefix of each record.
	frameHeaderSize = 8
	// maxFrameSize caps a single record (a full journaled table upload fits
	// comfortably; anything larger is corruption, not data).
	maxFrameSize = 1 << 30
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrBadSegment reports a file that does not start with the WAL magic —
// not a torn tail but a file that was never a segment.
var ErrBadSegment = errors.New("wal: not a log segment (bad magic)")

// ErrTornFrame reports a frame that could not be read whole: a header or
// payload cut short, an implausible length, or a checksum mismatch. On the
// replication stream this is the resume signal — the receiver discards the
// partial frame and re-requests from its last durable LSN; it must never
// apply anything from a torn frame.
var ErrTornFrame = errors.New("wal: torn or corrupt frame")

// EncodeRecord renders rec as one framed record.
func EncodeRecord(rec *Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encode record: %w", err)
	}
	return appendFrame(make([]byte, 0, frameHeaderSize+len(payload)), payload), nil
}

func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// decodeFrame reads one frame from data. It returns the payload and the
// total frame length, or ok=false when the remaining bytes do not hold one
// complete, checksum-valid frame (the torn-tail condition).
func decodeFrame(data []byte) (payload []byte, frameLen int, ok bool) {
	if len(data) < frameHeaderSize {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n > maxFrameSize || int(n) > len(data)-frameHeaderSize {
		return nil, 0, false
	}
	payload = data[frameHeaderSize : frameHeaderSize+int(n)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, 0, false
	}
	return payload, frameHeaderSize + int(n), true
}

// ReadFrame reads one framed payload from r — the streaming twin of
// decodeFrame, used by WAL shipping where records arrive over a connection
// rather than from a file. A clean end of stream exactly on a frame
// boundary returns io.EOF; anything else that prevents reading one whole,
// checksum-valid frame (short header, short payload, implausible length,
// CRC mismatch) returns an error wrapping ErrTornFrame. The caller owns
// the returned slice.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: short header: %v", ErrTornFrame, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrameSize {
		return nil, fmt.Errorf("%w: implausible frame length %d", ErrTornFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: short payload: %v", ErrTornFrame, err)
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrTornFrame)
	}
	return payload, nil
}

// DecodeRecordPayload decodes one frame payload (as returned by ReadFrame)
// into a Record. A payload that passed its checksum but does not decode is
// reported as torn too: on a replication stream the receiver's only safe
// move is the same — drop it and re-request.
func DecodeRecordPayload(payload []byte) (*Record, error) {
	rec := &Record{}
	if err := json.Unmarshal(payload, rec); err != nil {
		return nil, fmt.Errorf("%w: checksum valid but undecodable: %v", ErrTornFrame, err)
	}
	return rec, nil
}

// DecodeAll decodes a segment's records. data is the whole file including
// the magic. It returns the decoded records and validLen, the byte offset
// of the first torn or trailing-garbage byte (== len(data) when the
// segment is fully intact). A file too short to hold the magic decodes as
// empty with validLen 0 — the crash-during-creation case. A present but
// wrong magic is ErrBadSegment; a record whose checksum passes but whose
// JSON does not decode is hard corruption, not a torn tail, and is an
// error too.
func DecodeAll(data []byte) (recs []*Record, validLen int64, err error) {
	if len(data) < len(segmentMagic) {
		return nil, 0, nil
	}
	if string(data[:len(segmentMagic)]) != segmentMagic {
		return nil, 0, ErrBadSegment
	}
	off := int64(len(segmentMagic))
	for {
		payload, frameLen, ok := decodeFrame(data[off:])
		if !ok {
			return recs, off, nil
		}
		rec := &Record{}
		if err := json.Unmarshal(payload, rec); err != nil {
			return recs, off, fmt.Errorf("wal: record at offset %d: checksum valid but undecodable: %w", off, err)
		}
		recs = append(recs, rec)
		off += int64(frameLen)
	}
}
