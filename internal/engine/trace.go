package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sqlshare/internal/storage"
)

// ErrRowLimit is the sentinel returned when an execution exceeds
// ExecContext.MaxRows. Callers use errors.Is to map it to a distinct
// failure class (the REST server maps it to HTTP 422 and counts it in the
// queries_aborted_total metric).
var ErrRowLimit = errors.New("engine: row limit exceeded")

// ErrMemLimit is the sentinel returned when an execution's reserved
// in-flight memory estimate exceeds ExecContext.MaxBytes — the memory
// dimension of the runaway guard. As with ErrRowLimit, callers use
// errors.Is to map it to a distinct failure class (the REST server maps it
// to HTTP 422 and counts it in queries_aborted_total).
var ErrMemLimit = errors.New("engine: memory limit exceeded")

// TraceNode is one operator of an execution trace: the plan-time estimates
// next to the run-time actuals, mirroring the EstimateRows/ActualRows
// pairing of SQL Server's SHOWPLAN XML RunTimeInformation that the paper's
// telemetry was built on (§4).
type TraceNode struct {
	PhysicalOp string
	LogicalOp  string
	Object     string
	// EstRows is the compile-time cardinality estimate; ActualRows is the
	// total rows the operator produced across all executions.
	EstRows    float64
	ActualRows int64
	// Executions counts how often the operator ran: 1 for the main tree,
	// once per outer row for correlated subplans, 0 if never reached.
	Executions int64
	// Wall is the operator's wall time, inclusive of its children.
	Wall time.Duration
	// ActualBytes estimates the memory footprint of the operator's output
	// (sum of value widths across all produced rows).
	ActualBytes int64
	// Workers is the widest intra-operator fan-out observed across the
	// operator's executions: 1 for operators that ran serial, >1 when the
	// morsel scheduler spread the work over that many workers.
	Workers int64
	// Vectorized reports whether the plan marked this operator for the
	// columnar path; SegsScanned/SegsSkipped count the segments a
	// vectorized scan touched vs pruned via zone maps.
	Vectorized  bool
	SegsScanned int64
	SegsSkipped int64
	Children    []*TraceNode
}

// opAccum accumulates run-time stats for one plan node.
type opAccum struct {
	execs       int64
	rows        int64
	bytes       int64
	wall        time.Duration
	workers     int64
	segsScanned int64
	segsSkipped int64
}

// tracer collects per-node accumulators. The map is mutex-guarded: the
// main execution is single-goroutine per operator, but expression-level
// subplans execute through execNode from inside parallel workers, and the
// morsel scheduler reports per-operator worker counts concurrently.
type tracer struct {
	mu    sync.Mutex
	stats map[Node]*opAccum
}

// noteWorkers merges one operator invocation's fan-out, keeping the max.
func (t *tracer) noteWorkers(n Node, workers int) {
	t.mu.Lock()
	acc := t.stats[n]
	if acc == nil {
		acc = &opAccum{}
		t.stats[n] = acc
	}
	if int64(workers) > acc.workers {
		acc.workers = int64(workers)
	}
	t.mu.Unlock()
}

// EnableTracing turns on per-operator instrumentation for executions using
// this context. After Execute, Plan.BuildTrace assembles the trace tree.
func (ctx *ExecContext) EnableTracing() {
	if ctx.tracer == nil {
		ctx.tracer = &tracer{stats: map[Node]*opAccum{}}
	}
}

// TracingEnabled reports whether EnableTracing was called.
func (ctx *ExecContext) TracingEnabled() bool { return ctx.tracer != nil }

// execNode invokes one operator, recording trace statistics, publishing
// live progress counters and enforcing the MaxRows/MaxBytes runaway guards
// when any of them is enabled. Every recursive operator invocation goes
// through here; the fast path (no tracing, no progress, no limit) is a
// direct call.
func execNode(ctx *ExecContext, n Node, env *Env) (*relation, error) {
	if err := ctx.canceled(); err != nil {
		return nil, err
	}
	if ctx.tracer == nil && ctx.Progress == nil {
		if ctx.MaxRows <= 0 {
			return n.exec(ctx, env)
		}
		rel, err := n.exec(ctx, env)
		if err != nil {
			return nil, err
		}
		if err := ctx.checkRowLimit(n, len(rel.rows)); err != nil {
			return nil, err
		}
		return rel, nil
	}
	if p := ctx.Progress; p != nil {
		p.op.Store(&n.Props().PhysicalOp)
	}
	var start time.Time
	if ctx.tracer != nil {
		start = time.Now()
	}
	rel, err := n.exec(ctx, env)
	var rows, bytes int64
	if rel != nil {
		rows = int64(len(rel.rows))
		bytes = relationBytes(rel)
	}
	if t := ctx.tracer; t != nil {
		elapsed := time.Since(start)
		t.mu.Lock()
		acc := t.stats[n]
		if acc == nil {
			acc = &opAccum{}
			t.stats[n] = acc
		}
		acc.execs++
		acc.wall += elapsed
		acc.rows += rows
		acc.bytes += bytes
		t.mu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	if p := ctx.Progress; p != nil {
		p.Ops.Add(1)
		p.Rows.Add(rows)
		p.Bytes.Add(bytes)
		// Charge the materialized output once per relation: pass-through
		// operators (Segment, Window Spool) forward their child's relation,
		// which is already charged. The consuming parent releases the charge
		// (releaseRel) when it is done with the input; the root result stays
		// charged until the execution finishes.
		if rel.memBytes == 0 && bytes > 0 {
			rel.memBytes = bytes
			if err := ctx.reserve(n, bytes); err != nil {
				return nil, err
			}
		}
	}
	if err := ctx.checkRowLimit(n, len(rel.rows)); err != nil {
		return nil, err
	}
	return rel, nil
}

// accounting reports whether per-query memory accounting is active — the
// gate operators use before computing byte estimates for their working
// state (key vectors, build tables, argument vectors).
func (ctx *ExecContext) accounting() bool { return ctx.Progress != nil }

// reserve charges n bytes of working memory against the execution's live
// estimate, failing with ErrMemLimit when a budget is set and exceeded.
// The failed reservation stays charged — the execution is aborting and the
// whole accumulator is discarded with it.
func (ctx *ExecContext) reserve(n Node, bytes int64) error {
	p := ctx.Progress
	if p == nil || bytes <= 0 {
		return nil
	}
	cur := p.reserve(bytes)
	if ctx.MaxBytes > 0 && cur > ctx.MaxBytes {
		return fmt.Errorf("%w: %s holds ~%d bytes in flight (limit %d)",
			ErrMemLimit, opLabel(n), cur, ctx.MaxBytes)
	}
	return nil
}

// release returns n bytes of working memory to the budget.
func (ctx *ExecContext) release(bytes int64) {
	if p := ctx.Progress; p != nil && bytes > 0 {
		p.Mem.Add(-bytes)
	}
}

// releaseRel releases a consumed input relation's materialization charge.
// Idempotent per relation (the charge moves to zero), which makes
// pass-through chains — where parent and child share one relation — safe:
// whoever consumes the shared relation releases it exactly once.
func (ctx *ExecContext) releaseRel(rel *relation) {
	if rel == nil || rel.memBytes == 0 {
		return
	}
	ctx.release(rel.memBytes)
	rel.memBytes = 0
}

// checkRowLimit enforces MaxRows against one operator's output. Applying
// the limit to every intermediate result (not just the final one) is what
// makes it a runaway guard: a cross join that explodes mid-plan aborts
// before it consumes the machine.
func (ctx *ExecContext) checkRowLimit(n Node, rows int) error {
	if ctx.MaxRows > 0 && rows > ctx.MaxRows {
		return fmt.Errorf("%w: %s produced %d rows (limit %d)",
			ErrRowLimit, opLabel(n), rows, ctx.MaxRows)
	}
	return nil
}

func opLabel(n Node) string {
	p := n.Props()
	if p.PhysicalOp != "" {
		return p.PhysicalOp
	}
	return "operator"
}

// relationBytes estimates the memory footprint of a materialized relation.
func relationBytes(rel *relation) int64 {
	return rowsBytes(rel.rows)
}

// rowsBytes estimates the footprint of a row batch (sum of value widths) —
// the same measuring stick SizeBytes gives the result cache and the
// per-user usage meter.
func rowsBytes(rows []storage.Row) int64 {
	var total int64
	for _, r := range rows {
		for _, v := range r {
			total += int64(v.SizeBytes())
		}
	}
	return total
}

// BuildTrace assembles the per-operator trace tree for p from a traced
// execution under ctx. It returns nil if tracing was not enabled.
// Operators the execution never reached report zero executions.
func (p *Plan) BuildTrace(ctx *ExecContext) *TraceNode {
	if ctx == nil || ctx.tracer == nil {
		return nil
	}
	return buildTraceNode(p.Root, ctx.tracer)
}

func buildTraceNode(n Node, t *tracer) *TraceNode {
	props := n.Props()
	tn := &TraceNode{
		PhysicalOp: props.PhysicalOp,
		LogicalOp:  props.LogicalOp,
		Object:     props.Object,
		EstRows:    props.EstRows,
		Vectorized: props.Vectorized,
	}
	t.mu.Lock()
	acc := t.stats[n]
	t.mu.Unlock()
	if acc != nil {
		tn.ActualRows = acc.rows
		tn.Executions = acc.execs
		tn.Wall = acc.wall
		tn.ActualBytes = acc.bytes
		tn.Workers = acc.workers
		tn.SegsScanned = acc.segsScanned
		tn.SegsSkipped = acc.segsSkipped
	}
	for _, c := range n.Children() {
		tn.Children = append(tn.Children, buildTraceNode(c, t))
	}
	return tn
}
