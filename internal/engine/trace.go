package engine

import (
	"errors"
	"fmt"
	"time"
)

// ErrRowLimit is the sentinel returned when an execution exceeds
// ExecContext.MaxRows. Callers use errors.Is to map it to a distinct
// failure class (the REST server maps it to HTTP 422 and counts it in the
// queries_aborted_total metric).
var ErrRowLimit = errors.New("engine: row limit exceeded")

// TraceNode is one operator of an execution trace: the plan-time estimates
// next to the run-time actuals, mirroring the EstimateRows/ActualRows
// pairing of SQL Server's SHOWPLAN XML RunTimeInformation that the paper's
// telemetry was built on (§4).
type TraceNode struct {
	PhysicalOp string
	LogicalOp  string
	Object     string
	// EstRows is the compile-time cardinality estimate; ActualRows is the
	// total rows the operator produced across all executions.
	EstRows    float64
	ActualRows int64
	// Executions counts how often the operator ran: 1 for the main tree,
	// once per outer row for correlated subplans, 0 if never reached.
	Executions int64
	// Wall is the operator's wall time, inclusive of its children.
	Wall time.Duration
	// ActualBytes estimates the memory footprint of the operator's output
	// (sum of value widths across all produced rows).
	ActualBytes int64
	Children    []*TraceNode
}

// opAccum accumulates run-time stats for one plan node. Execution is
// single-goroutine per query, so no locking is needed.
type opAccum struct {
	execs int64
	rows  int64
	bytes int64
	wall  time.Duration
}

type tracer struct {
	stats map[Node]*opAccum
}

// EnableTracing turns on per-operator instrumentation for executions using
// this context. After Execute, Plan.BuildTrace assembles the trace tree.
func (ctx *ExecContext) EnableTracing() {
	if ctx.tracer == nil {
		ctx.tracer = &tracer{stats: map[Node]*opAccum{}}
	}
}

// TracingEnabled reports whether EnableTracing was called.
func (ctx *ExecContext) TracingEnabled() bool { return ctx.tracer != nil }

// execNode invokes one operator, recording trace statistics and enforcing
// the MaxRows runaway guard when either is enabled. Every recursive
// operator invocation goes through here; the fast path (no tracing, no
// limit) is a direct call.
func execNode(ctx *ExecContext, n Node, env *Env) (*relation, error) {
	if ctx.tracer == nil {
		if ctx.MaxRows <= 0 {
			return n.exec(ctx, env)
		}
		rel, err := n.exec(ctx, env)
		if err != nil {
			return nil, err
		}
		if err := ctx.checkRowLimit(n, len(rel.rows)); err != nil {
			return nil, err
		}
		return rel, nil
	}
	start := time.Now()
	rel, err := n.exec(ctx, env)
	acc := ctx.tracer.stats[n]
	if acc == nil {
		acc = &opAccum{}
		ctx.tracer.stats[n] = acc
	}
	acc.execs++
	acc.wall += time.Since(start)
	if rel != nil {
		acc.rows += int64(len(rel.rows))
		acc.bytes += relationBytes(rel)
	}
	if err != nil {
		return nil, err
	}
	if err := ctx.checkRowLimit(n, len(rel.rows)); err != nil {
		return nil, err
	}
	return rel, nil
}

// checkRowLimit enforces MaxRows against one operator's output. Applying
// the limit to every intermediate result (not just the final one) is what
// makes it a runaway guard: a cross join that explodes mid-plan aborts
// before it consumes the machine.
func (ctx *ExecContext) checkRowLimit(n Node, rows int) error {
	if ctx.MaxRows > 0 && rows > ctx.MaxRows {
		return fmt.Errorf("%w: %s produced %d rows (limit %d)",
			ErrRowLimit, opLabel(n), rows, ctx.MaxRows)
	}
	return nil
}

func opLabel(n Node) string {
	p := n.Props()
	if p.PhysicalOp != "" {
		return p.PhysicalOp
	}
	return "operator"
}

// relationBytes estimates the memory footprint of a materialized relation.
func relationBytes(rel *relation) int64 {
	var total int64
	for _, r := range rel.rows {
		for _, v := range r {
			total += int64(v.SizeBytes())
		}
	}
	return total
}

// BuildTrace assembles the per-operator trace tree for p from a traced
// execution under ctx. It returns nil if tracing was not enabled.
// Operators the execution never reached report zero executions.
func (p *Plan) BuildTrace(ctx *ExecContext) *TraceNode {
	if ctx == nil || ctx.tracer == nil {
		return nil
	}
	return buildTraceNode(p.Root, ctx.tracer)
}

func buildTraceNode(n Node, t *tracer) *TraceNode {
	props := n.Props()
	tn := &TraceNode{
		PhysicalOp: props.PhysicalOp,
		LogicalOp:  props.LogicalOp,
		Object:     props.Object,
		EstRows:    props.EstRows,
	}
	if acc := t.stats[n]; acc != nil {
		tn.ActualRows = acc.rows
		tn.Executions = acc.execs
		tn.Wall = acc.wall
		tn.ActualBytes = acc.bytes
	}
	for _, c := range n.Children() {
		tn.Children = append(tn.Children, buildTraceNode(c, t))
	}
	return tn
}
