package engine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// parallelTestSetup makes tiny tables eligible for parallel execution and
// gives the scheduler real workers to interleave even on a 1-CPU host:
// morsels shrink to a handful of rows and GOMAXPROCS is raised so the
// extra-worker budget grants fan-out. Everything is restored on cleanup.
func parallelTestSetup(t testing.TB) {
	t.Helper()
	prevMorsel, prevMin := SetParallelTuning(7, 10)
	prevProcs := runtime.GOMAXPROCS(8)
	t.Cleanup(func() {
		SetParallelTuning(prevMorsel, prevMin)
		runtime.GOMAXPROCS(prevProcs)
	})
}

// parallelResolver builds a deterministic pseudo-random fact/dim schema
// large enough (at test tuning) that every operator parallelizes: NULLs in
// both key and measure columns, duplicate sort keys to stress stability,
// and a dim table with keys the fact side partially misses (and vice
// versa) to stress every outer-join flavour.
func parallelResolver(t testing.TB, factRows int) MapResolver {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	fact := storage.NewTable("fact", storage.Schema{
		{Name: "id", Type: sqltypes.Int},
		{Name: "grp", Type: sqltypes.String},
		{Name: "cat", Type: sqltypes.Int},
		{Name: "val", Type: sqltypes.Float},
		{Name: "note", Type: sqltypes.String},
	})
	rows := make([]storage.Row, factRows)
	for i := range rows {
		cat := sqltypes.NewInt(int64(rng.Intn(12)))
		if rng.Intn(10) == 0 {
			cat = sqltypes.TypedNull(sqltypes.Int)
		}
		val := sqltypes.NewFloat(float64(rng.Intn(1000)) / 8)
		if rng.Intn(15) == 0 {
			val = sqltypes.TypedNull(sqltypes.Float)
		}
		rows[i] = storage.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("g%d", rng.Intn(5))),
			cat,
			val,
			sqltypes.NewString(strings.Repeat("x", rng.Intn(4)) + fmt.Sprint(rng.Intn(30))),
		}
	}
	if err := fact.Insert(rows); err != nil {
		t.Fatal(err)
	}
	dim := storage.NewTable("dim", storage.Schema{
		{Name: "cat", Type: sqltypes.Int},
		{Name: "label", Type: sqltypes.String},
	})
	var drows []storage.Row
	for c := 0; c < 16; c += 2 { // even keys only: odd fact cats miss
		drows = append(drows, storage.Row{
			sqltypes.NewInt(int64(c)),
			sqltypes.NewString(fmt.Sprintf("label-%d", c)),
		})
	}
	if err := dim.Insert(drows); err != nil {
		t.Fatal(err)
	}
	return MapResolver{
		Tables: map[string]*storage.Table{"fact": fact, "dim": dim},
		Views:  map[string]sqlparser.QueryExpr{},
	}
}

// parallelCorpusQueries covers every parallelized operator: predicate
// scans, computed projections, all hash-join flavours, scalar and grouped
// aggregation (FLOAT folds included), sorts with heavy ties, DISTINCT,
// TOP, UNION, windows, and correlated plus uncorrelated subqueries.
var parallelCorpusQueries = []string{
	"SELECT * FROM fact WHERE val > 50",
	"SELECT id, val * 2 + 1 AS v2, UPPER(grp) AS g FROM fact WHERE id >= 100",
	"SELECT grp, COUNT(*) AS n, SUM(val) AS s, AVG(val) AS a, STDEV(val) AS sd FROM fact GROUP BY grp ORDER BY grp",
	"SELECT COUNT(*) AS n, COUNT(DISTINCT grp) AS g, SUM(val) AS s, MIN(note) AS lo, MAX(note) AS hi FROM fact",
	"SELECT f.id, d.label FROM fact f JOIN dim d ON f.cat = d.cat WHERE f.val < 100",
	"SELECT f.id, d.label FROM fact f LEFT JOIN dim d ON f.cat = d.cat",
	"SELECT d.label, COUNT(*) AS n FROM fact f RIGHT JOIN dim d ON f.cat = d.cat GROUP BY d.label",
	"SELECT f.id, d.cat FROM fact f FULL OUTER JOIN dim d ON f.cat = d.cat WHERE f.id IS NULL OR d.cat IS NULL OR f.id < 40",
	"SELECT grp, val FROM fact ORDER BY grp, val DESC, id",
	"SELECT DISTINCT grp, cat FROM fact ORDER BY grp, cat",
	"SELECT TOP 25 id, val FROM fact ORDER BY val DESC, id",
	"SELECT id FROM fact WHERE val > 100 UNION SELECT id FROM fact WHERE cat = 3 ORDER BY id",
	"SELECT id, grp, ROW_NUMBER() OVER (PARTITION BY grp ORDER BY val DESC, id) AS rk, SUM(val) OVER (PARTITION BY grp) AS gs FROM fact",
	"SELECT id FROM fact WHERE cat IN (SELECT cat FROM dim WHERE cat >= 4) ORDER BY id",
	"SELECT grp, (SELECT COUNT(*) FROM dim) AS dims FROM fact WHERE id < 30",
	"SELECT f.id FROM fact f WHERE EXISTS (SELECT 1 FROM dim d WHERE d.cat = f.cat) ORDER BY f.id",
	"SELECT grp, CASE WHEN AVG(val) > 60 THEN 'hi' ELSE 'lo' END AS band FROM fact GROUP BY grp HAVING COUNT(*) > 10 ORDER BY grp",
}

// resultKey renders a result to a canonical string so two runs can be
// compared for bit-identical columns, rows and row order.
func resultKey(r *Result) string {
	var b strings.Builder
	for _, c := range r.Cols {
		b.WriteString(c.Name)
		b.WriteByte(':')
		b.WriteString(fmt.Sprint(c.Type))
		b.WriteByte('|')
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		for _, v := range row {
			b.WriteString(v.Key())
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// traceShape renders the statistics of a trace tree that must not depend
// on the degree of parallelism: operators, row counts, executions.
func traceShape(tn *TraceNode, depth int, b *strings.Builder) {
	if tn == nil {
		return
	}
	fmt.Fprintf(b, "%s%s/%s[%s] rows=%d execs=%d\n",
		strings.Repeat(" ", depth), tn.PhysicalOp, tn.LogicalOp, tn.Object,
		tn.ActualRows, tn.Executions)
	for _, c := range tn.Children {
		traceShape(c, depth+1, b)
	}
}

func runAtDOP(t *testing.T, res Resolver, sql string, dop int) (*Result, *TraceNode) {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	p, err := Compile(q, res)
	if err != nil {
		t.Fatalf("compile %q: %v", sql, err)
	}
	ctx := &ExecContext{Now: time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC), DOP: dop}
	ctx.EnableTracing()
	r, err := p.Execute(ctx)
	if err != nil {
		t.Fatalf("execute %q at DOP %d: %v", sql, dop, err)
	}
	return r, p.BuildTrace(ctx)
}

// TestParallelMatchesSerial is the differential gate: every corpus query
// must return bit-identical columns, rows and row order — and identical
// per-operator row counts in the trace — at DOP 1, 2 and 8.
func TestParallelMatchesSerial(t *testing.T) {
	parallelTestSetup(t)
	res := parallelResolver(t, 600)
	for _, sql := range parallelCorpusQueries {
		serialRes, serialTrace := runAtDOP(t, res, sql, 1)
		wantKey := resultKey(serialRes)
		var wantShape strings.Builder
		traceShape(serialTrace, 0, &wantShape)
		for _, dop := range []int{2, 8} {
			gotRes, gotTrace := runAtDOP(t, res, sql, dop)
			if gotKey := resultKey(gotRes); gotKey != wantKey {
				t.Errorf("query %q: DOP %d result differs from serial\nserial:\n%s\nparallel:\n%s",
					sql, dop, wantKey, gotKey)
				continue
			}
			var gotShape strings.Builder
			traceShape(gotTrace, 0, &gotShape)
			if gotShape.String() != wantShape.String() {
				t.Errorf("query %q: DOP %d trace shape differs\nserial:\n%s\nparallel:\n%s",
					sql, dop, wantShape.String(), gotShape.String())
			}
		}
	}
}

// TestParallelActuallyFansOut guards against the parallel path silently
// degrading to serial: with tiny morsels and workers available, a scan
// with a predicate must report more than one worker in its trace.
func TestParallelActuallyFansOut(t *testing.T) {
	parallelTestSetup(t)
	res := parallelResolver(t, 600)
	q, err := sqlparser.Parse("SELECT * FROM fact WHERE val > 50")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &ExecContext{Now: time.Now(), DOP: 4}
	ctx.EnableTracing()
	if _, err := p.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ctx.MaxWorkers(); got < 2 {
		t.Fatalf("MaxWorkers() = %d, want >= 2 (parallel path did not engage)", got)
	}
	var maxTraced int64
	var walk func(tn *TraceNode)
	walk = func(tn *TraceNode) {
		if tn == nil {
			return
		}
		if tn.Workers > maxTraced {
			maxTraced = tn.Workers
		}
		for _, c := range tn.Children {
			walk(c)
		}
	}
	walk(p.BuildTrace(ctx))
	if maxTraced < 2 {
		t.Fatalf("trace reports max workers %d, want >= 2", maxTraced)
	}
	// The compile-time annotation agrees: some operator is marked Parallel.
	marked := false
	var mark func(n Node)
	mark = func(n Node) {
		if n.Props().Parallel {
			marked = true
		}
		for _, c := range n.Children() {
			mark(c)
		}
	}
	mark(p.Root)
	if !marked {
		t.Fatal("no operator carries the Parallel plan annotation")
	}
}

// TestParallelPoolDrains checks the global extra-worker pool is balanced:
// after a burst of concurrent parallel queries, no tokens stay leaked.
func TestParallelPoolDrains(t *testing.T) {
	parallelTestSetup(t)
	res := parallelResolver(t, 600)
	if busy := PoolBusy(); busy != 0 {
		t.Fatalf("pool busy = %d before test, want 0", busy)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := &ExecContext{Now: time.Now(), DOP: 8}
			_, err := Query("SELECT grp, SUM(val) AS s FROM fact GROUP BY grp ORDER BY grp", res, ctx)
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if busy := PoolBusy(); busy != 0 {
		t.Fatalf("pool busy = %d after queries, want 0 (leaked worker tokens)", busy)
	}
}

// TestParallelWorkerHookBalanced checks the occupancy hook ends at zero
// and went positive while parallel operators ran.
func TestParallelWorkerHookBalanced(t *testing.T) {
	parallelTestSetup(t)
	res := parallelResolver(t, 600)
	var mu sync.Mutex
	var cur, peak int64
	SetWorkersBusyHook(func(delta int64) {
		mu.Lock()
		cur += delta
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
	})
	defer SetWorkersBusyHook(nil)
	ctx := &ExecContext{Now: time.Now(), DOP: 4}
	if _, err := Query("SELECT * FROM fact WHERE val > 10", res, ctx); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if cur != 0 {
		t.Fatalf("hook balance = %d after query, want 0", cur)
	}
	if peak < 2 {
		t.Fatalf("hook peak = %d, want >= 2 (gauge never observed parallel workers)", peak)
	}
}

// TestParallelCancellation cancels executions mid-flight and checks that
// they return promptly with the context error and leak no goroutines.
func TestParallelCancellation(t *testing.T) {
	parallelTestSetup(t)
	res := parallelResolver(t, 5000)
	q, err := sqlparser.Parse("SELECT f.grp, SUM(f.val) AS s FROM fact f JOIN fact g ON f.cat = g.cat GROUP BY f.grp ORDER BY f.grp")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	// A context canceled before execution fails at the first operator.
	pre, cancelPre := context.WithCancel(context.Background())
	cancelPre()
	if _, err := p.Execute(&ExecContext{Now: time.Now(), DOP: 8, Ctx: pre}); err != context.Canceled {
		t.Fatalf("pre-canceled execute: err = %v, want context.Canceled", err)
	}

	// Cancel at staggered points while workers are mid-query: every run
	// must end in either a clean result or the context's error — never a
	// hang, never a panic.
	for _, delay := range []time.Duration{0, 50 * time.Microsecond, 500 * time.Microsecond, 5 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(delay, cancel)
		done := make(chan error, 1)
		go func() {
			_, err := p.Execute(&ExecContext{Now: time.Now(), DOP: 8, Ctx: ctx})
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil && err != context.Canceled {
				t.Fatalf("cancel after %v: err = %v, want nil or context.Canceled", delay, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("cancel after %v: execution did not return", delay)
		}
		timer.Stop()
		cancel()
	}

	// All workers must have drained: goroutine count settles back to the
	// pre-test level (allowing scheduler slack).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, was %d before: workers leaked", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if busy := PoolBusy(); busy != 0 {
		t.Fatalf("pool busy = %d after cancellations, want 0", busy)
	}
}

// TestScanSharedSliceNotMutated pins the satellite fix: a predicate-free
// scan returns the table's shared row slice, and downstream operators
// (sort, projection with new columns) must not mutate it.
func TestScanSharedSliceNotMutated(t *testing.T) {
	res := parallelResolver(t, 100)
	fact := res.Tables["fact"]
	snap := make([]string, 0, 100)
	for _, r := range fact.Scan() {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.Key())
			b.WriteByte('|')
		}
		snap = append(snap, b.String())
	}
	for _, sql := range []string{
		"SELECT * FROM fact",
		"SELECT * FROM fact ORDER BY val DESC, id",
		"SELECT id, val + 1 AS v FROM fact",
		"SELECT id, ROW_NUMBER() OVER (ORDER BY id) AS rk FROM fact",
	} {
		if _, err := Query(sql, res, nil); err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
	}
	for i, r := range fact.Scan() {
		var b strings.Builder
		for _, v := range r {
			b.WriteString(v.Key())
			b.WriteByte('|')
		}
		if b.String() != snap[i] {
			t.Fatalf("base table row %d mutated by query execution:\nbefore %s\nafter  %s", i, snap[i], b.String())
		}
	}
}

// TestSeekRangeSkipsNullsBinary pins the satellite fix: an open-lower-bound
// range seek over a column with a NULL prefix returns exactly the non-NULL
// rows in range (the NULL prefix is skipped via binary search, but the
// observable contract is correctness of the result).
func TestSeekRangeSkipsNullsBinary(t *testing.T) {
	tbl := storage.NewTable("t", storage.Schema{
		{Name: "k", Type: sqltypes.Int},
		{Name: "v", Type: sqltypes.String},
	})
	rows := []storage.Row{}
	for i := 0; i < 50; i++ {
		rows = append(rows, storage.Row{sqltypes.TypedNull(sqltypes.Int), sqltypes.NewString(fmt.Sprint("n", i))})
	}
	for i := 0; i < 50; i++ {
		rows = append(rows, storage.Row{sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprint("v", i))})
	}
	if err := tbl.Insert(rows); err != nil {
		t.Fatal(err)
	}
	res := MapResolver{Tables: map[string]*storage.Table{"t": tbl}, Views: map[string]sqlparser.QueryExpr{}}
	r := run(t, res, "SELECT k FROM t WHERE k < 10")
	if len(r.Rows) != 10 {
		t.Fatalf("k < 10 over NULL-prefixed key: rows = %d, want 10", len(r.Rows))
	}
	for i, row := range r.Rows {
		if row[0].IsNull() || row[0].Int() != int64(i) {
			t.Fatalf("row %d = %v, want %d", i, row[0], i)
		}
	}
	r = run(t, res, "SELECT COUNT(*) AS n FROM t WHERE k <= 48")
	if r.Rows[0][0].Int() != 49 {
		t.Fatalf("k <= 48: count = %v, want 49", r.Rows[0][0])
	}
}

// TestSetParallelTuningRestores pins the knob contract used by tests and
// benchmarks.
func TestSetParallelTuningRestores(t *testing.T) {
	pm, pn := SetParallelTuning(64, 128)
	if parMorselRows != 64 || parMinRows != 128 {
		t.Fatalf("tuning not applied: morsel=%d min=%d", parMorselRows, parMinRows)
	}
	SetParallelTuning(pm, pn)
	if parMorselRows != pm || parMinRows != pn {
		t.Fatalf("tuning not restored: morsel=%d min=%d", parMorselRows, parMinRows)
	}
}
