package engine

import (
	"errors"
	"testing"
	"time"

	"sqlshare/internal/sqlparser"
)

func compileFor(t *testing.T, sql string) *Plan {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q, testResolver(t))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func execCtx() *ExecContext {
	return &ExecContext{Now: time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)}
}

func TestTraceRecordsActualRows(t *testing.T) {
	p := compileFor(t, "SELECT name FROM emp WHERE salary > 150")
	ctx := execCtx()
	ctx.EnableTracing()
	res, err := p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tr := p.BuildTrace(ctx)
	if tr == nil {
		t.Fatal("BuildTrace returned nil for a traced execution")
	}
	if tr.ActualRows != int64(len(res.Rows)) {
		t.Fatalf("root actual rows = %d, want %d", tr.ActualRows, len(res.Rows))
	}
	if tr.Executions != 1 {
		t.Fatalf("root executions = %d, want 1", tr.Executions)
	}
	// The scan at the leaves must report the full table cardinality and
	// carry both an estimate and an actual.
	var scan *TraceNode
	var walk func(*TraceNode)
	walk = func(n *TraceNode) {
		if n.Object == "emp" {
			scan = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tr)
	if scan == nil {
		t.Fatal("no scan node in trace")
	}
	// The predicate is sargable-ish and may be folded into the scan; either
	// way the scan's actual output is the 4 qualifying rows or all 5.
	if scan.ActualRows != 4 && scan.ActualRows != 5 {
		t.Fatalf("scan actual rows = %d, want 4 or 5", scan.ActualRows)
	}
	if scan.EstRows <= 0 {
		t.Fatalf("scan estimate = %v, want > 0", scan.EstRows)
	}
	if scan.ActualBytes <= 0 {
		t.Fatalf("scan actual bytes = %d, want > 0", scan.ActualBytes)
	}
}

func TestTraceDisabledIsNil(t *testing.T) {
	p := compileFor(t, "SELECT name FROM emp")
	ctx := execCtx()
	if _, err := p.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if tr := p.BuildTrace(ctx); tr != nil {
		t.Fatal("BuildTrace should return nil when tracing was not enabled")
	}
}

func TestCorrelatedSubqueryCountsExecutions(t *testing.T) {
	p := compileFor(t, "SELECT name FROM emp e WHERE salary > (SELECT AVG(salary) FROM emp x WHERE x.dept = e.dept)")
	ctx := execCtx()
	ctx.EnableTracing()
	if _, err := p.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	tr := p.BuildTrace(ctx)
	// At least one operator (the correlated subplan) must have executed
	// more than once — once per outer row of its department.
	multi := false
	var walk func(*TraceNode)
	walk = func(n *TraceNode) {
		if n.Executions > 1 {
			multi = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tr)
	if !multi {
		t.Fatal("expected a correlated subplan operator with multiple executions")
	}
}

func TestMaxRowsAbortsWithSentinel(t *testing.T) {
	// The cross join materializes 5*5=25 rows mid-plan; a limit of 10
	// must abort with the typed sentinel.
	p := compileFor(t, "SELECT e.name FROM emp e, emp f")
	ctx := execCtx()
	ctx.MaxRows = 10
	_, err := p.Execute(ctx)
	if err == nil {
		t.Fatal("expected row-limit abort")
	}
	if !errors.Is(err, ErrRowLimit) {
		t.Fatalf("error %v is not ErrRowLimit", err)
	}
	// The same query under a sufficient limit succeeds.
	ctx = execCtx()
	ctx.MaxRows = 100
	if _, err := p.Execute(ctx); err != nil {
		t.Fatalf("execute under sufficient limit: %v", err)
	}
}

func TestMaxRowsWithTracingAlsoAborts(t *testing.T) {
	p := compileFor(t, "SELECT e.name FROM emp e, emp f")
	ctx := execCtx()
	ctx.MaxRows = 10
	ctx.EnableTracing()
	if _, err := p.Execute(ctx); !errors.Is(err, ErrRowLimit) {
		t.Fatalf("traced execution: error %v is not ErrRowLimit", err)
	}
}
