package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

func liveResolver(t testing.TB, rows int) MapResolver {
	t.Helper()
	tbl := storage.NewTable("t", storage.Schema{
		{Name: "id", Type: sqltypes.Int},
		{Name: "grp", Type: sqltypes.Int},
		{Name: "pad", Type: sqltypes.String},
	})
	data := make([]storage.Row, rows)
	for i := range data {
		data[i] = storage.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(i % 7)),
			sqltypes.NewString(strings.Repeat("x", 32)),
		}
	}
	if err := tbl.Insert(data); err != nil {
		t.Fatal(err)
	}
	return MapResolver{Tables: map[string]*storage.Table{"t": tbl}}
}

func compileLive(t testing.TB, res Resolver, sql string) *Plan {
	t.Helper()
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestProgressCounters checks that an execution with a Progress attached
// publishes operator, row and byte counters, and that the in-flight memory
// estimate drains back to exactly the final result's footprint.
func TestProgressCounters(t *testing.T) {
	res := liveResolver(t, 500)
	p := compileLive(t, res, "SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp")
	prog := &Progress{}
	ctx := &ExecContext{Progress: prog}
	r, err := p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("got %d groups, want 7", len(r.Rows))
	}
	if prog.Ops.Load() == 0 || prog.Rows.Load() < 500 || prog.Bytes.Load() == 0 {
		t.Fatalf("progress counters not published: ops=%d rows=%d bytes=%d",
			prog.Ops.Load(), prog.Rows.Load(), prog.Bytes.Load())
	}
	// Intermediates were consumed and released; only the root result stays
	// charged, and the peak saw the big scan.
	final := rowsBytes(storageRows(r))
	if got := prog.Mem.Load(); got != final {
		t.Fatalf("in-flight mem after execution = %d, want final result footprint %d", got, final)
	}
	if prog.MemPeak.Load() < prog.Mem.Load() {
		t.Fatalf("peak %d below current %d", prog.MemPeak.Load(), prog.Mem.Load())
	}
	if prog.CurrentOp() == "" {
		t.Fatal("CurrentOp empty after execution")
	}
}

func storageRows(r *Result) []storage.Row { return r.Rows }

// TestMemLimitAbortsHashJoin runs a many-to-many self join whose output
// explodes past the budget and checks the execution aborts with ErrMemLimit.
func TestMemLimitAbortsHashJoin(t *testing.T) {
	res := liveResolver(t, 2000)
	p := compileLive(t, res,
		"SELECT a.id FROM t a JOIN t b ON a.grp = b.grp")
	_, err := p.Execute(&ExecContext{MaxBytes: 64 * 1024})
	if !errors.Is(err, ErrMemLimit) {
		t.Fatalf("err = %v, want ErrMemLimit", err)
	}
	// Well under budget, the same plan succeeds.
	if _, err := p.Execute(&ExecContext{MaxBytes: 1 << 30}); err != nil {
		t.Fatalf("generous budget: %v", err)
	}
}

// TestMemLimitAbortsSort checks the sort working-state reservation trips the
// budget too, and that the error names the operator.
func TestMemLimitAbortsSort(t *testing.T) {
	res := liveResolver(t, 3000)
	p := compileLive(t, res, "SELECT pad FROM t ORDER BY pad")
	_, err := p.Execute(&ExecContext{MaxBytes: 16 * 1024})
	if !errors.Is(err, ErrMemLimit) {
		t.Fatalf("err = %v, want ErrMemLimit", err)
	}
	if err != nil && !strings.Contains(err.Error(), "limit") {
		t.Fatalf("error should mention the limit: %v", err)
	}
}

// TestMemLimitUnlimitedByDefault checks MaxBytes == 0 never aborts.
func TestMemLimitUnlimitedByDefault(t *testing.T) {
	res := liveResolver(t, 2000)
	p := compileLive(t, res, "SELECT a.id FROM t a JOIN t b ON a.grp = b.grp")
	if _, err := p.Execute(&ExecContext{Progress: &Progress{}}); err != nil {
		t.Fatalf("unlimited execution failed: %v", err)
	}
}

// TestAccountingMatchesPlainResults checks accounting changes no answers:
// a spread of query shapes returns identical rows with and without Progress
// and a generous budget attached, at DOP 1 and DOP 4.
func TestAccountingMatchesPlainResults(t *testing.T) {
	res := liveResolver(t, 800)
	queries := []string{
		"SELECT id FROM t WHERE grp = 3",
		"SELECT grp, COUNT(*), SUM(id) FROM t GROUP BY grp",
		"SELECT a.id FROM t a JOIN t b ON a.id = b.id WHERE a.grp = 1",
		"SELECT DISTINCT grp FROM t ORDER BY grp",
		"SELECT TOP 10 id FROM t ORDER BY id DESC",
		"SELECT id FROM t WHERE grp IN (SELECT grp FROM t WHERE id < 5)",
		"SELECT id, ROW_NUMBER() OVER (PARTITION BY grp ORDER BY id) FROM t WHERE id < 50",
		"SELECT id FROM t WHERE id < 10 UNION ALL SELECT id FROM t WHERE id >= 790",
		"SELECT id FROM t WHERE EXISTS (SELECT 1 FROM t b WHERE b.id = t.id AND b.grp = 2)",
	}
	for _, sql := range queries {
		p := compileLive(t, res, sql)
		plain, err := p.Execute(&ExecContext{})
		if err != nil {
			t.Fatalf("%s: plain: %v", sql, err)
		}
		for _, dop := range []int{1, 4} {
			got, err := p.Execute(&ExecContext{
				Progress: &Progress{},
				MaxBytes: 1 << 30,
				DOP:      dop,
			})
			if err != nil {
				t.Fatalf("%s (dop %d): accounted: %v", sql, dop, err)
			}
			if fmt.Sprint(got.Rows) != fmt.Sprint(plain.Rows) {
				t.Fatalf("%s (dop %d): accounted results differ", sql, dop)
			}
		}
	}
}

// TestCorrelatedSubqueryReleasesPerRow checks the per-outer-row subplan
// results do not pile up in the live estimate: a correlated EXISTS over many
// outer rows stays within a budget far smaller than the sum of all subquery
// results.
func TestCorrelatedSubqueryReleasesPerRow(t *testing.T) {
	res := liveResolver(t, 400)
	p := compileLive(t, res,
		"SELECT id FROM t WHERE EXISTS (SELECT 1 FROM t b WHERE b.grp = t.grp AND b.pad = t.pad)")
	prog := &Progress{}
	if _, err := p.Execute(&ExecContext{Progress: prog, MaxBytes: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	// Each correlated evaluation scans ~57 padded rows (~2KB); 400 outer rows
	// would pile up ~800KB if releases leaked. The final charge must stay in
	// the neighborhood of the base scan plus one result.
	if got := prog.Mem.Load(); got > 200*1024 {
		t.Fatalf("correlated subquery charges leaked: %d bytes still held", got)
	}
}

// TestEstRowsTotal checks the planner-estimate denominator is positive and
// covers every operator.
func TestEstRowsTotal(t *testing.T) {
	res := liveResolver(t, 100)
	p := compileLive(t, res, "SELECT grp, COUNT(*) FROM t GROUP BY grp")
	if est := p.EstRowsTotal(); est <= 0 {
		t.Fatalf("EstRowsTotal = %v, want > 0", est)
	}
}
