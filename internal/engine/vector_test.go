package engine

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// vecTestSetup shrinks segments so small tables span many of them, and
// restores everything (including the vectorized toggle) on cleanup.
func vecTestSetup(t testing.TB, segRows int) {
	t.Helper()
	prevSeg := storage.SetSegmentRows(segRows)
	prevVec := SetVectorizedEnabled(true)
	t.Cleanup(func() {
		storage.SetSegmentRows(prevSeg)
		SetVectorizedEnabled(prevVec)
	})
}

func TestExtractVecPreds(t *testing.T) {
	cols := []ColMeta{
		{Binding: "t", Name: "a", Type: sqltypes.Int},
		{Binding: "t", Name: "b", Type: sqltypes.String},
	}
	colA := &sqlparser.ColumnRef{Name: "a"}
	lit5 := &sqlparser.Literal{Val: sqltypes.NewInt(5)}
	lit9 := &sqlparser.Literal{Val: sqltypes.NewInt(9)}

	if ps, ok := extractVecPreds(&sqlparser.Binary{Op: "<", L: colA, R: lit5}, cols); !ok ||
		len(ps) != 1 || ps[0].col != 0 || ps[0].op != "<" {
		t.Fatalf("col<lit: got %v ok=%v", ps, ok)
	}
	// Literal on the left flips the comparison.
	if ps, ok := extractVecPreds(&sqlparser.Binary{Op: "<", L: lit5, R: colA}, cols); !ok || ps[0].op != ">" {
		t.Fatalf("lit<col should flip to >: got %v ok=%v", ps, ok)
	}
	// BETWEEN decomposes into >= lo AND <= hi.
	if ps, ok := extractVecPreds(&sqlparser.BetweenExpr{X: colA, Lo: lit5, Hi: lit9}, cols); !ok ||
		len(ps) != 2 || ps[0].op != ">=" || ps[1].op != "<=" {
		t.Fatalf("BETWEEN: got %v ok=%v", ps, ok)
	}
	// NOT BETWEEN is not decomposable under three-valued logic (one bound
	// Unknown and the other False must keep the row) and must not extract.
	if _, ok := extractVecPreds(&sqlparser.BetweenExpr{X: colA, Lo: lit5, Hi: lit9, Not: true}, cols); ok {
		t.Fatal("NOT BETWEEN must not vectorize")
	}
	if ps, ok := extractVecPreds(&sqlparser.IsNullExpr{X: colA, Not: true}, cols); !ok || ps[0].op != "isnotnull" {
		t.Fatalf("IS NOT NULL: got %v ok=%v", ps, ok)
	}
	// Unknown column (resolves outward / typo) must not extract.
	if _, ok := extractVecPreds(&sqlparser.Binary{Op: "=", L: &sqlparser.ColumnRef{Name: "zz"}, R: lit5}, cols); ok {
		t.Fatal("unresolvable column must not vectorize")
	}
	// Column-vs-column comparisons stay on the closure path.
	if _, ok := extractVecPreds(&sqlparser.Binary{Op: "=", L: colA, R: &sqlparser.ColumnRef{Name: "b"}}, cols); ok {
		t.Fatal("col=col must not vectorize")
	}
}

// vecDiffResolver builds a table designed to stress every kernel and
// coercion edge: ints and floats with NULLs, NaN and negative zero,
// numeric-looking and unparseable strings (dictionary and overflow
// cardinalities), datetimes, booleans, and an all-NULL column.
func vecDiffResolver(t testing.TB, rows int) MapResolver {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	tbl := storage.NewTable("mix", storage.Schema{
		{Name: "id", Type: sqltypes.Int},
		{Name: "n", Type: sqltypes.Int},
		{Name: "f", Type: sqltypes.Float},
		{Name: "s", Type: sqltypes.String},
		{Name: "big", Type: sqltypes.String},
		{Name: "b", Type: sqltypes.Bool},
		{Name: "d", Type: sqltypes.DateTime},
		{Name: "z", Type: sqltypes.Int},
	})
	var batch []storage.Row
	for i := 0; i < rows; i++ {
		n := sqltypes.NewInt(int64(rng.Intn(200) - 100))
		if rng.Intn(11) == 0 {
			n = sqltypes.TypedNull(sqltypes.Int)
		}
		var f sqltypes.Value
		switch rng.Intn(12) {
		case 0:
			f = sqltypes.NewFloat(math.NaN())
		case 1:
			f = sqltypes.NewFloat(math.Copysign(0, -1))
		case 2:
			f = sqltypes.TypedNull(sqltypes.Float)
		default:
			f = sqltypes.NewFloat(float64(rng.Intn(2000)-1000) / 16)
		}
		var s sqltypes.Value
		switch rng.Intn(4) {
		case 0:
			s = sqltypes.NewString(fmt.Sprintf("%d", rng.Intn(60)-30)) // parses numeric
		case 1:
			s = sqltypes.NewString(fmt.Sprintf("w%02d", rng.Intn(20))) // dictionary-sized
		case 2:
			s = sqltypes.NewString("2014-03-0" + fmt.Sprint(1+rng.Intn(9))) // parses datetime
		default:
			s = sqltypes.TypedNull(sqltypes.String)
		}
		batch = append(batch, storage.Row{
			sqltypes.NewInt(int64(i)),
			n,
			f,
			s,
			sqltypes.NewString(fmt.Sprintf("u%05d", rng.Intn(rows))), // overflows the dictionary
			sqltypes.NewBool(rng.Intn(2) == 0),
			sqltypes.NewDateTime(time.Date(2014, 1, 1+rng.Intn(400), 0, 0, 0, 0, time.UTC)),
			sqltypes.TypedNull(sqltypes.Int),
		})
	}
	if err := tbl.Insert(batch); err != nil {
		t.Fatal(err)
	}
	return MapResolver{Tables: map[string]*storage.Table{"mix": tbl}, Views: map[string]sqlparser.QueryExpr{}}
}

// vecDiffQueries hit every kernel/literal alignment, the zone-map rules,
// residual predicates, the fused projections and the fused scalar
// aggregates — each must be byte-identical with the row path.
var vecDiffQueries = []string{
	"SELECT id, n FROM mix WHERE n > 10",
	"SELECT id FROM mix WHERE n <= -50",
	"SELECT id FROM mix WHERE n BETWEEN -5 AND 5",
	"SELECT id FROM mix WHERE n = '7'",            // string literal vs int column
	"SELECT id FROM mix WHERE n > 'not a number'", // unparseable: constant false
	"SELECT id FROM mix WHERE f > 0",
	"SELECT id FROM mix WHERE f = 0",  // hits -0.0 rows too
	"SELECT id FROM mix WHERE f <> 0", // NaN compares equal to everything
	"SELECT id FROM mix WHERE s = 'w07'",
	"SELECT id FROM mix WHERE s > 'w'",
	"SELECT id FROM mix WHERE s < 12",                   // numeric literal vs string column: per-row parse
	"SELECT id FROM mix WHERE big >= 'u00900'",          // plain-encoded strings
	"SELECT id FROM mix WHERE b = 1",                    // bool as numeric
	"SELECT id FROM mix WHERE d >= '2014-06-01'",        // string literal vs datetime column
	"SELECT id FROM mix WHERE d < '2014-02-01 00:00'",   // another layout
	"SELECT id FROM mix WHERE z IS NULL",                // all-NULL column
	"SELECT id FROM mix WHERE z IS NOT NULL",            // always-empty
	"SELECT id FROM mix WHERE n IS NOT NULL AND f > 20", // two kernels
	"SELECT id FROM mix WHERE n > 0 AND f + 1 > n",      // kernel + residual closure
	"SELECT id, s FROM mix WHERE s IS NULL",
	"SELECT n, f FROM mix WHERE id >= 100 AND id < 500 AND n < 0", // seek + preds
	"SELECT COUNT(*) AS c FROM mix",
	"SELECT COUNT(n) AS c, SUM(n) AS s, AVG(n) AS a, MIN(n) AS lo, MAX(n) AS hi FROM mix",
	"SELECT SUM(f) AS s, AVG(f) AS a, MIN(f) AS lo, MAX(f) AS hi FROM mix", // NaN in the fold
	"SELECT MIN(s) AS lo, MAX(s) AS hi, COUNT(s) AS c FROM mix",
	"SELECT MIN(d) AS lo, MAX(d) AS hi FROM mix",
	"SELECT SUM(b) AS s FROM mix",                 // bool is numeric for SUM
	"SELECT COUNT(z) AS c, MIN(z) AS lo FROM mix", // all-NULL aggregate input
	"SELECT SUM(n) AS s FROM mix WHERE n BETWEEN 0 AND 40",
	"SELECT COUNT(*) AS c, AVG(f) AS a FROM mix WHERE f > 0 AND id % 2 = 0", // kernel + residual under fused agg
	"SELECT SUM(s) AS s FROM mix WHERE s < 100 AND s > -100",                // string args folded numerically
}

// TestVectorizedDifferential runs every differential query with the
// vectorized path off (ground truth) and on, and requires byte-identical
// results. The aggregate queries with errors must fail identically too.
func TestVectorizedDifferential(t *testing.T) {
	vecTestSetup(t, 32)
	res := vecDiffResolver(t, 1000)
	for _, sql := range vecDiffQueries {
		SetVectorizedEnabled(false)
		rowRes, rowErr := Query(sql, res, nil)
		SetVectorizedEnabled(true)
		vecRes, vecErr := Query(sql, res, nil)
		if (rowErr == nil) != (vecErr == nil) {
			t.Errorf("%s: outcome differs: row err=%v, vec err=%v", sql, rowErr, vecErr)
			continue
		}
		if rowErr != nil {
			if rowErr.Error() != vecErr.Error() {
				t.Errorf("%s: error text differs: row %q, vec %q", sql, rowErr, vecErr)
			}
			continue
		}
		if want, got := resultKey(rowRes), resultKey(vecRes); want != got {
			t.Errorf("%s: results differ\nrow path:\n%s\nvectorized:\n%s", sql, want, got)
		}
	}
}

// TestVectorizedDifferentialParallel re-runs the differential suite at
// DOP 8 with tiny morsels, exercising the segment-chunked parallel scan.
func TestVectorizedDifferentialParallel(t *testing.T) {
	vecTestSetup(t, 32)
	parallelTestSetup(t)
	res := vecDiffResolver(t, 1000)
	for _, sql := range vecDiffQueries {
		SetVectorizedEnabled(false)
		rowRes, rowErr := Query(sql, res, &ExecContext{DOP: 8})
		SetVectorizedEnabled(true)
		vecRes, vecErr := Query(sql, res, &ExecContext{DOP: 8})
		if (rowErr == nil) != (vecErr == nil) {
			t.Errorf("%s: outcome differs at DOP 8: row err=%v, vec err=%v", sql, rowErr, vecErr)
			continue
		}
		if rowErr != nil {
			continue
		}
		if want, got := resultKey(rowRes), resultKey(vecRes); want != got {
			t.Errorf("%s: DOP 8 results differ\nrow path:\n%s\nvectorized:\n%s", sql, want, got)
		}
	}
}

// TestZoneMapSkipsSegments checks that a selective predicate on a column
// correlated with the clustered order prunes most segments, that the
// skip/scan counts surface through both the hook and the trace, and that
// pruning never changes the answer.
func TestZoneMapSkipsSegments(t *testing.T) {
	vecTestSetup(t, 64)
	tbl := storage.NewTable("seq", storage.Schema{
		{Name: "id", Type: sqltypes.Int},
		{Name: "v", Type: sqltypes.Int},
	})
	var rows []storage.Row
	for i := 0; i < 4096; i++ {
		rows = append(rows, storage.Row{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i * 3))})
	}
	if err := tbl.Insert(rows); err != nil {
		t.Fatal(err)
	}
	res := MapResolver{Tables: map[string]*storage.Table{"seq": tbl}, Views: map[string]sqlparser.QueryExpr{}}

	var scanned, skipped int64
	SetSegmentsHook(func(sc, sk int64) { scanned += sc; skipped += sk })
	defer SetSegmentsHook(nil)

	// Predicate on v (not the leading clustered column, so no seek), but v
	// follows the clustered order, so zone maps prune almost everything.
	sql := "SELECT id FROM seq WHERE v BETWEEN 600 AND 660"
	q, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if !scanHasVectorized(p.Root) {
		t.Fatal("scan not marked vectorized in plan props")
	}
	ctx := &ExecContext{}
	ctx.EnableTracing()
	out, err := p.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 21 {
		t.Fatalf("got %d rows, want 21", len(out.Rows))
	}
	if skipped == 0 || scanned == 0 || skipped < scanned {
		t.Fatalf("zone maps did not prune: scanned=%d skipped=%d", scanned, skipped)
	}
	var traceSkipped int64
	var walk func(tn *TraceNode)
	walk = func(tn *TraceNode) {
		traceSkipped += tn.SegsSkipped
		for _, c := range tn.Children {
			walk(c)
		}
	}
	walk(p.BuildTrace(ctx))
	if traceSkipped != skipped {
		t.Fatalf("trace skip count %d != hook skip count %d", traceSkipped, skipped)
	}
}

func scanHasVectorized(n Node) bool {
	if sc, ok := n.(*scanNode); ok && sc.props.Vectorized {
		return true
	}
	for _, c := range n.Children() {
		if scanHasVectorized(c) {
			return true
		}
	}
	return false
}

// TestVectorizedToggleInvisible: flipping the toggle between executions of
// the SAME compiled plan must not change results (the plan-cache safety
// property of the static Vectorized annotation).
func TestVectorizedToggleInvisible(t *testing.T) {
	vecTestSetup(t, 32)
	res := vecDiffResolver(t, 500)
	q, err := sqlparser.Parse("SELECT id, n, f FROM mix WHERE n > 0 AND f > 0")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	SetVectorizedEnabled(true)
	on, err := p.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	SetVectorizedEnabled(false)
	off, err := p.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if resultKey(on) != resultKey(off) {
		t.Fatal("same compiled plan produced different results across toggle flip")
	}
}

// TestScanTaskLayout pins the satellite-2 geometry: small inputs stay on
// default morsels, large inputs widen so there are at most ~8 tasks per
// worker.
func TestScanTaskLayout(t *testing.T) {
	if tasks, _ := scanTaskLayout(0, 4); tasks != 0 {
		t.Fatalf("empty input: %d tasks", tasks)
	}
	tasks, width := scanTaskLayout(4096, 2)
	if width != parMorselRows || tasks != (4096+width-1)/width {
		t.Fatalf("small input should keep morsel width: tasks=%d width=%d", tasks, width)
	}
	tasks, width = scanTaskLayout(1_000_000, 2)
	if tasks > 16 {
		t.Fatalf("1M rows at DOP 2: %d tasks (width %d), want <= 16", tasks, width)
	}
	total := 0
	for i := 0; i < tasks; i++ {
		lo, hi := i*width, i*width+width
		if hi > 1_000_000 {
			hi = 1_000_000
		}
		total += hi - lo
	}
	if total != 1_000_000 {
		t.Fatalf("task layout covers %d rows, want 1000000", total)
	}
}

// TestVectorizedFusedAggTrace: the fused scalar aggregation skips the
// intermediate scan relation, but the trace must still report the scan's
// survivors and one execution, identically to the row path.
func TestVectorizedFusedAggTrace(t *testing.T) {
	vecTestSetup(t, 32)
	res := vecDiffResolver(t, 800)
	sql := "SELECT COUNT(*) AS c, SUM(n) AS s FROM mix WHERE n > 0"

	shape := func() string {
		q, err := sqlparser.Parse(sql)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Compile(q, res)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &ExecContext{}
		ctx.EnableTracing()
		if _, err := p.Execute(ctx); err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		traceShape(p.BuildTrace(ctx), 0, &b)
		return b.String()
	}
	SetVectorizedEnabled(false)
	want := shape()
	SetVectorizedEnabled(true)
	got := shape()
	if want != got {
		t.Fatalf("fused aggregation changed the trace shape\nrow path:\n%s\nvectorized:\n%s", want, got)
	}
}
