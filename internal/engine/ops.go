package engine

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// ---------------------------------------------------------------- scans

type seekInfo struct {
	op  string // "=", "<", "<=", ">", ">="
	val sqltypes.Value
}

// scanNode reads a base table: "Clustered Index Scan" or, when a sargable
// predicate on the leading clustered-key column exists, "Clustered Index
// Seek". All SQLShare tables carry a clustered index (§3.4).
type scanNode struct {
	base
	table *storage.Table
	preds []exprFn
	seek  *seekInfo
	// vecPreds holds the kernel form of the leading nVec entries of preds
	// (the vectorizable conjunct prefix); preds[nVec:] run as residual
	// closures on kernel survivors.
	vecPreds []vecPred
	nVec     int
}

func (s *scanNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	if s.seek == nil && s.nVec > 0 && VectorizedEnabled() {
		return s.execVec(ctx, env)
	}
	var rows []storage.Row
	if s.seek != nil {
		switch s.seek.op {
		case "=":
			rows = s.table.SeekEqual(s.seek.val)
		case "<":
			rows = s.table.SeekRange(sqltypes.Value{}, s.seek.val, false, false)
		case "<=":
			rows = s.table.SeekRange(sqltypes.Value{}, s.seek.val, false, true)
		case ">":
			rows = s.table.SeekRange(s.seek.val, sqltypes.Value{}, false, false)
		case ">=":
			rows = s.table.SeekRange(s.seek.val, sqltypes.Value{}, true, false)
		}
		// NULLs cluster at the front and never satisfy a comparison; a
		// range seek with an open lower bound must skip them. They are a
		// contiguous prefix of the clustered order, so binary-search the
		// first non-NULL row instead of stepping over them one by one.
		if s.seek.op == "<" || s.seek.op == "<=" {
			rows = rows[sort.Search(len(rows), func(i int) bool {
				return !rows[i][0].IsNull()
			}):]
		}
	} else {
		rows = s.table.Scan()
	}
	rel := &relation{cols: s.props.Cols}
	if len(s.preds) == 0 {
		// No predicates: the scan output aliases the table's clustered
		// slice directly instead of copying every row. This is safe
		// because relations are read-only downstream — operators reslice
		// and rearrange row slices but never write into a row they did
		// not allocate (the no-mutation invariant; see relation).
		rel.rows = rows
		return rel, nil
	}
	// Pushed-down predicate evaluation over contiguous row-range tasks.
	// Each task filters its range into its own slot; merging slots in task
	// order reproduces the serial output order exactly. Task width grows
	// with the input (scanTaskLayout) so cheap predicates are not dominated
	// by per-task overhead at low DOP.
	ntasks, width := scanTaskLayout(len(rows), ctx.DOP)
	kept := make([][]storage.Row, ntasks)
	if _, err := parallelRun(ctx, s, len(rows), len(kept), func(t int) error {
		lo, hi := t*width, t*width+width
		if hi > len(rows) {
			hi = len(rows)
		}
		ev := &Env{cols: s.props.Cols, outer: env}
		var out []storage.Row
		for _, r := range rows[lo:hi] {
			ev.row = r
			keep := true
			for _, p := range s.preds {
				v, err := p(ctx, ev)
				if err != nil {
					return err
				}
				if truth(v) != sqltypes.True {
					keep = false
					break
				}
			}
			if keep {
				out = append(out, r)
			}
		}
		kept[t] = out
		return nil
	}); err != nil {
		return nil, err
	}
	rel.rows = concatRowSlots(kept)
	return rel, nil
}

// constantScanNode produces a single zero-column row, for FROM-less
// SELECTs ("Constant Scan" in SQL Server plans).
type constantScanNode struct{ base }

func (c *constantScanNode) exec(*ExecContext, *Env) (*relation, error) {
	return &relation{cols: nil, rows: []storage.Row{{}}}, nil
}

// ---------------------------------------------------------------- filter

type filterNode struct {
	base
	pred exprFn
}

func (f *filterNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	in, err := execNode(ctx, f.children[0], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(in)
	out := &relation{cols: in.cols}
	kept := make([][]storage.Row, morselCount(len(in.rows)))
	if _, err := parallelRun(ctx, f, len(in.rows), len(kept), func(t int) error {
		lo, hi := morselBounds(t, len(in.rows))
		ev := &Env{cols: in.cols, outer: env}
		var rows []storage.Row
		for _, r := range in.rows[lo:hi] {
			ev.row = r
			v, err := f.pred(ctx, ev)
			if err != nil {
				return err
			}
			if truth(v) == sqltypes.True {
				rows = append(rows, r)
			}
		}
		kept[t] = rows
		return nil
	}); err != nil {
		return nil, err
	}
	out.rows = concatRowSlots(kept)
	return out, nil
}

// ---------------------------------------------------------------- project

// projectNode evaluates the select list. Its PhysicalOp is "Compute Scalar"
// when any item computes a new value; a pure column rearrangement has an
// empty PhysicalOp and is invisible to plan extraction, matching how SQL
// Server folds trivial projection into its scans.
type projectNode struct {
	base
	fns []exprFn
	// srcCols, when non-nil, means every output item is a plain column
	// reference into the input (srcCols[i] = input column index), so the
	// projection is a pure gather that skips expression evaluation.
	srcCols []int
}

func (p *projectNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	in, err := execNode(ctx, p.children[0], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(in)
	if p.srcCols != nil && VectorizedEnabled() {
		// Column gather: index-pick the referenced columns per row. The
		// compiled column-ref closures return exactly in.rows[r][c], so
		// the output is value-identical to the expression path.
		out := make([]storage.Row, len(in.rows))
		ntasks, width := scanTaskLayout(len(in.rows), ctx.DOP)
		if _, err := parallelRun(ctx, p, len(in.rows), ntasks, func(t int) error {
			lo, hi := t*width, t*width+width
			if hi > len(in.rows) {
				hi = len(in.rows)
			}
			for ri := lo; ri < hi; ri++ {
				r := in.rows[ri]
				nr := make(storage.Row, len(p.srcCols))
				for i, c := range p.srcCols {
					nr[i] = r[c]
				}
				out[ri] = nr
			}
			return nil
		}); err != nil {
			return nil, err
		}
		return &relation{cols: p.props.Cols, rows: out}, nil
	}
	rows, err := evalRows(ctx, p, in, p.fns, env)
	if err != nil {
		return nil, err
	}
	return &relation{cols: p.props.Cols, rows: rows}, nil
}

// ---------------------------------------------------------------- joins

type joinSide uint8

const (
	joinInner joinSide = iota
	joinLeftOuter
	joinRightOuter
	joinFullOuter
)

// nestedLoopsNode implements cross joins and non-equi joins.
type nestedLoopsNode struct {
	base
	side joinSide
	pred exprFn // nil = cross join
}

func (n *nestedLoopsNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	left, err := execNode(ctx, n.children[0], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(left)
	right, err := execNode(ctx, n.children[1], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(right)
	out := &relation{cols: n.props.Cols}
	ev := &Env{cols: n.props.Cols, outer: env}
	rightMatched := make([]bool, len(right.rows))
	lw, rw := relWidth(left), relWidth(right)
	for li, lr := range left.rows {
		// O(n·m) with no morsel boundaries: recheck cancellation every few
		// outer rows so a kill lands promptly mid-join.
		if li%64 == 0 {
			if err := ctx.canceled(); err != nil {
				return nil, err
			}
		}
		matched := false
		for ri, rr := range right.rows {
			joined := joinRows(lr, rr)
			if n.pred != nil {
				ev.row = joined
				v, err := n.pred(ctx, ev)
				if err != nil {
					return nil, err
				}
				if truth(v) != sqltypes.True {
					continue
				}
			}
			matched = true
			rightMatched[ri] = true
			out.rows = append(out.rows, joined)
		}
		if !matched && (n.side == joinLeftOuter || n.side == joinFullOuter) {
			out.rows = append(out.rows, joinRows(lr, nullRow(rw)))
		}
	}
	if n.side == joinRightOuter || n.side == joinFullOuter {
		for ri, rr := range right.rows {
			if !rightMatched[ri] {
				out.rows = append(out.rows, joinRows(nullRow(lw), rr))
			}
		}
	}
	return out, nil
}

func relWidth(r *relation) int { return len(r.cols) }

func joinRows(l, r storage.Row) storage.Row {
	out := make(storage.Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func nullRow(w int) storage.Row {
	r := make(storage.Row, w)
	for i := range r {
		r[i] = sqltypes.NullValue()
	}
	return r
}

// hashMatchNode implements equi-joins (inner and outer) by building a hash
// table on the right input ("Hash Match").
type hashMatchNode struct {
	base
	side      joinSide
	leftKeys  []exprFn // evaluated against the left relation
	rightKeys []exprFn // evaluated against the right relation
	residual  exprFn   // extra non-equi conjuncts, evaluated on joined rows
}

func (h *hashMatchNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	left, err := execNode(ctx, h.children[0], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(left)
	right, err := execNode(ctx, h.children[1], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(right)
	// Build phase, step 1: evaluate the build-side join keys over
	// row-range morsels. Key strings land in per-row slots, so the pass
	// is order-independent.
	nr := len(right.rows)
	rkeys := make([]string, nr)
	rnull := make([]bool, nr)
	rpart := make([]uint8, nr)
	if _, err := parallelRun(ctx, h, nr, morselCount(nr), func(t int) error {
		lo, hi := morselBounds(t, nr)
		rev := &Env{cols: right.cols, outer: env}
		for ri := lo; ri < hi; ri++ {
			rev.row = right.rows[ri]
			key, null, err := hashKey(ctx, rev, h.rightKeys)
			if err != nil {
				return err
			}
			if null {
				rnull[ri] = true // NULL keys never join
				continue
			}
			rkeys[ri] = key
			rpart[ri] = uint8(hashPartition(key, joinPartitions))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// Account for the build table's working state: the key strings plus the
	// per-entry bookkeeping of the partition hash maps, held until the join
	// returns. This is the allocation a runaway many-to-many join makes
	// before its output materializes, so the budget must see it.
	if ctx.accounting() {
		var keyBytes int64
		for ri := 0; ri < nr; ri++ {
			if !rnull[ri] {
				keyBytes += int64(len(rkeys[ri])) + hashEntryOverhead
			}
		}
		if err := ctx.reserve(h, keyBytes); err != nil {
			return nil, err
		}
		defer ctx.release(keyBytes)
	}
	// Build phase, step 2: one hash table per partition, built in
	// parallel. Each partition scans the (cheap) partition vector and
	// inserts its rows in ascending row order — the same per-key list
	// order the serial single-table build produces.
	builds := make([]map[string][]int, joinPartitions)
	if _, err := parallelRun(ctx, h, nr, joinPartitions, func(p int) error {
		m := map[string][]int{}
		for ri := 0; ri < nr; ri++ {
			if !rnull[ri] && rpart[ri] == uint8(p) {
				m[rkeys[ri]] = append(m[rkeys[ri]], ri)
			}
		}
		builds[p] = m
		return nil
	}); err != nil {
		return nil, err
	}
	// Probe phase: morsel-parallel over the left input. Each task joins
	// its contiguous left range into its own slot; merging slots in task
	// order reproduces the serial output order (left order, and per left
	// row the build list's ascending right order). Right-match flags are
	// set atomically — multiple probes may match the same build row.
	out := &relation{cols: h.props.Cols}
	rightMatched := make([]int32, nr)
	lw, rw := relWidth(left), relWidth(right)
	nl := len(left.rows)
	slots := make([][]storage.Row, morselCount(nl))
	// outCharged accumulates the bytes each probe task has already reserved
	// for its output slot, so an exploding many-to-many join trips the
	// budget while probing, morsel by morsel, instead of only after the full
	// output exists. The total moves onto out.memBytes below, which tells
	// execNode the output charge is already paid.
	var outCharged atomic.Int64
	if _, err := parallelRun(ctx, h, nl, len(slots), func(t int) error {
		lo, hi := morselBounds(t, nl)
		lev := &Env{cols: left.cols, outer: env}
		jev := &Env{cols: h.props.Cols, outer: env}
		var rows []storage.Row
		// charged tracks how much of rows this task has already reserved, so
		// the budget is consulted while the morsel grows (an exploding
		// many-to-many morsel can emit a million rows — waiting for the end
		// of the task would let it blow far past the limit first).
		charged := 0
		chargeRows := func() error {
			if !ctx.accounting() || len(rows) == charged {
				return nil
			}
			b := rowsBytes(rows[charged:])
			charged = len(rows)
			if err := ctx.reserve(h, b); err != nil {
				return err
			}
			outCharged.Add(b)
			return nil
		}
		for li, lr := range left.rows[lo:hi] {
			// A many-to-many probe can emit thousands of rows per left row,
			// so the between-morsels cancellation check alone would let a
			// killed query run on for the rest of the morsel. Recheck per
			// left row (amortized to noise by the match fan-out), and charge
			// the rows emitted since the last checkpoint on the same cadence.
			if li%64 == 0 {
				if err := ctx.canceled(); err != nil {
					return err
				}
				if err := chargeRows(); err != nil {
					return err
				}
			}
			lev.row = lr
			key, null, err := hashKey(ctx, lev, h.leftKeys)
			matched := false
			if err != nil {
				return err
			}
			if !null {
				for _, ri := range builds[hashPartition(key, joinPartitions)][key] {
					joined := joinRows(lr, right.rows[ri])
					if h.residual != nil {
						jev.row = joined
						v, err := h.residual(ctx, jev)
						if err != nil {
							return err
						}
						if truth(v) != sqltypes.True {
							continue
						}
					}
					matched = true
					atomic.StoreInt32(&rightMatched[ri], 1)
					rows = append(rows, joined)
				}
			}
			if !matched && (h.side == joinLeftOuter || h.side == joinFullOuter) {
				rows = append(rows, joinRows(lr, nullRow(rw)))
			}
		}
		if err := chargeRows(); err != nil {
			return err
		}
		slots[t] = rows
		return nil
	}); err != nil {
		return nil, err
	}
	out.rows = concatRowSlots(slots)
	if h.side == joinRightOuter || h.side == joinFullOuter {
		unmatchedStart := len(out.rows)
		for ri, rr := range right.rows {
			if rightMatched[ri] == 0 {
				out.rows = append(out.rows, joinRows(nullRow(lw), rr))
			}
		}
		if ctx.accounting() {
			b := rowsBytes(out.rows[unmatchedStart:])
			if err := ctx.reserve(h, b); err != nil {
				return nil, err
			}
			outCharged.Add(b)
		}
	}
	if ctx.accounting() {
		// The output is already charged piecemeal; record it on the relation
		// so execNode doesn't charge it a second time.
		out.memBytes = outCharged.Load()
	}
	return out, nil
}

// hashEntryOverhead approximates the per-entry bookkeeping of a build-side
// hash table (map header slot plus the row-index list entry), charged on top
// of the key string itself.
const hashEntryOverhead = 24

func hashKey(ctx *ExecContext, ev *Env, keys []exprFn) (string, bool, error) {
	var k string
	for _, fn := range keys {
		v, err := fn(ctx, ev)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		k += v.Key() + "\x1f"
	}
	return k, false, nil
}

// mergeJoinNode joins two inputs already sorted on their leading join
// column — chosen when both sides are clustered scans keyed on the join
// column ("Merge Join"). Inner joins only.
type mergeJoinNode struct {
	base
	leftIdx, rightIdx int
}

func (m *mergeJoinNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	left, err := execNode(ctx, m.children[0], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(left)
	right, err := execNode(ctx, m.children[1], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(right)
	out := &relation{cols: m.props.Cols}
	i, j := 0, 0
	for i < len(left.rows) && j < len(right.rows) {
		lv := left.rows[i][m.leftIdx]
		rv := right.rows[j][m.rightIdx]
		if lv.IsNull() {
			i++
			continue
		}
		if rv.IsNull() {
			j++
			continue
		}
		c := sqltypes.SortCompare(lv, rv)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Emit the cross product of the equal runs.
			jEnd := j
			for jEnd < len(right.rows) && sqltypes.SortCompare(right.rows[jEnd][m.rightIdx], rv) == 0 {
				jEnd++
			}
			iEnd := i
			for iEnd < len(left.rows) && sqltypes.SortCompare(left.rows[iEnd][m.leftIdx], lv) == 0 {
				iEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					out.rows = append(out.rows, joinRows(left.rows[a], right.rows[b]))
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return out, nil
}

// ---------------------------------------------------------------- sort

// sortKey orders rows either by a precomputed column index or by an
// expression evaluated per row.
type sortKey struct {
	idx  int // used when fn == nil
	fn   exprFn
	desc bool
}

// sortNode sorts, optionally deduplicates ("Distinct Sort"), and optionally
// trims hidden trailing sort columns.
type sortNode struct {
	base
	keys           []sortKey
	distinct       bool
	distinctPrefix int // 0 = full row
	trimTo         int // 0 = keep all columns
}

func (s *sortNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	in, err := execNode(ctx, s.children[0], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(in)
	// Evaluate key vectors once, over row-range morsels (per-row slots, so
	// evaluation order is irrelevant).
	n := len(in.rows)
	keyVals := make([][]sqltypes.Value, n)
	if _, err := parallelRun(ctx, s, n, morselCount(n), func(t int) error {
		lo, hi := morselBounds(t, n)
		ev := &Env{cols: in.cols, outer: env}
		for i := lo; i < hi; i++ {
			r := in.rows[i]
			kv := make([]sqltypes.Value, len(s.keys))
			for j, k := range s.keys {
				if k.fn == nil {
					kv[j] = r[k.idx]
					continue
				}
				ev.row = r
				v, err := k.fn(ctx, ev)
				if err != nil {
					return err
				}
				kv[j] = v
			}
			keyVals[i] = kv
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// The sort buffer — every row's evaluated key vector — is working state
	// held until the sort returns; charge it against the budget.
	if ctx.accounting() {
		var kb int64
		for _, kv := range keyVals {
			for _, v := range kv {
				kb += int64(v.SizeBytes())
			}
		}
		if err := ctx.reserve(s, kb); err != nil {
			return nil, err
		}
		defer ctx.release(kb)
	}
	// less is a total strict order — sort keys, ties broken by original
	// row index — so per-chunk sort + k-way merge reproduces exactly what
	// a stable sort of the whole input produces.
	less := func(a, b int) bool {
		ka, kb := keyVals[a], keyVals[b]
		for j := range s.keys {
			c := sqltypes.SortCompare(ka[j], kb[j])
			if c == 0 {
				continue
			}
			if s.keys[j].desc {
				return c > 0
			}
			return c < 0
		}
		return a < b
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Parallel sort: split the index array into contiguous chunks, sort
	// each chunk in parallel, then k-way merge. With one chunk this is a
	// plain serial sort.
	chunks := morselCount(n)
	if chunks > 16 {
		chunks = 16
	}
	if chunks < 1 {
		chunks = 1
	}
	bound := func(t int) int { return t * n / chunks }
	if _, err := parallelRun(ctx, s, n, chunks, func(t int) error {
		part := order[bound(t):bound(t+1)]
		sort.Slice(part, func(a, b int) bool { return less(part[a], part[b]) })
		return nil
	}); err != nil {
		return nil, err
	}
	if chunks > 1 {
		order = mergeSortedChunks(order, chunks, bound, less)
	}
	out := &relation{cols: in.cols}
	var lastKey string
	for _, idx := range order {
		r := in.rows[idx]
		if s.distinct {
			w := s.distinctPrefix
			if w <= 0 || w > len(r) {
				w = len(r)
			}
			var k string
			for _, v := range r[:w] {
				k += v.Key() + "\x1f"
			}
			if out.rows != nil && k == lastKey {
				continue
			}
			lastKey = k
		}
		out.rows = append(out.rows, r)
	}
	if s.trimTo > 0 && s.trimTo < len(in.cols) {
		out.cols = in.cols[:s.trimTo]
		for i, r := range out.rows {
			out.rows[i] = r[:s.trimTo]
		}
	}
	return out, nil
}

// ---------------------------------------------------------------- aggregate

// streamAggregateNode groups its (sorted) input and computes aggregates
// ("Stream Aggregate"). Output columns are the group keys followed by the
// aggregate results.
type streamAggregateNode struct {
	base
	groupFns []exprFn
	specs    []aggSpec
	scalar   bool // aggregate without GROUP BY: exactly one output row
}

func (a *streamAggregateNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	if VectorizedEnabled() {
		if sc := fusedAggScan(a); sc != nil {
			return a.execVecScalar(ctx, env, sc)
		}
	}
	in, err := execNode(ctx, a.children[0], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(in)
	out := &relation{cols: a.props.Cols}
	n := len(in.rows)
	if a.scalar {
		// Scalar aggregation: the expensive part — evaluating each
		// aggregate's argument per row — runs over row-range morsels into
		// per-row slots; the fold then consumes the slots in row order, so
		// FLOAT accumulation order (and with it the result, bit for bit)
		// is identical to serial execution at every DOP.
		argVecs := make([][]sqltypes.Value, len(a.specs))
		evalSpecs := make([]int, 0, len(a.specs))
		for i, spec := range a.specs {
			if !spec.star {
				argVecs[i] = make([]sqltypes.Value, n)
				evalSpecs = append(evalSpecs, i)
			}
		}
		if len(evalSpecs) > 0 {
			if _, err := parallelRun(ctx, a, n, morselCount(n), func(t int) error {
				lo, hi := morselBounds(t, n)
				ev := &Env{cols: in.cols, outer: env}
				for ri := lo; ri < hi; ri++ {
					ev.row = in.rows[ri]
					for _, si := range evalSpecs {
						v, err := a.specs[si].argFn(ctx, ev)
						if err != nil {
							return err
						}
						argVecs[si][ri] = v
					}
				}
				return nil
			}); err != nil {
				return nil, err
			}
		}
		// Aggregation state: the per-row argument vectors held through the
		// fold.
		if ctx.accounting() {
			var ab int64
			for _, si := range evalSpecs {
				for _, v := range argVecs[si] {
					ab += int64(v.SizeBytes())
				}
			}
			if err := ctx.reserve(a, ab); err != nil {
				return nil, err
			}
			defer ctx.release(ab)
		}
		row := make(storage.Row, len(a.specs))
		for i, spec := range a.specs {
			var v sqltypes.Value
			var err error
			if spec.star {
				v = sqltypes.NewInt(int64(n))
			} else {
				v, err = foldAggregate(spec, filterAggArgs(spec, argVecs[i]))
			}
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.rows = []storage.Row{row}
		return out, nil
	}
	// Grouped aggregation, phase 1: evaluate the group key of every row
	// over row-range morsels into per-row slots.
	keys := make([]string, n)
	kvs := make([][]sqltypes.Value, n)
	if _, err := parallelRun(ctx, a, n, morselCount(n), func(t int) error {
		lo, hi := morselBounds(t, n)
		ev := &Env{cols: in.cols, outer: env}
		for ri := lo; ri < hi; ri++ {
			ev.row = in.rows[ri]
			kv := make([]sqltypes.Value, len(a.groupFns))
			var key string
			for i, fn := range a.groupFns {
				v, err := fn(ctx, ev)
				if err != nil {
					return err
				}
				kv[i] = v
				key += v.Key() + "\x1f"
			}
			keys[ri] = key
			kvs[ri] = kv
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// Aggregation state: the per-row group-key strings and key-value vectors
	// held through grouping and finalization.
	if ctx.accounting() {
		var gb int64
		for ri := 0; ri < n; ri++ {
			gb += int64(len(keys[ri]))
			for _, v := range kvs[ri] {
				gb += int64(v.SizeBytes())
			}
		}
		if err := ctx.reserve(a, gb); err != nil {
			return nil, err
		}
		defer ctx.release(gb)
	}
	// Phase 2: assign rows to groups serially in row order — first-seen
	// group order and per-group row order are then exactly the serial
	// ones, which pins both the stable group sort below and the FLOAT
	// accumulation order inside each group.
	type group struct {
		keyVals []sqltypes.Value
		rows    []storage.Row
	}
	idx := map[string]int{}
	var groups []*group
	for ri, r := range in.rows {
		gi, ok := idx[keys[ri]]
		if !ok {
			gi = len(groups)
			idx[keys[ri]] = gi
			groups = append(groups, &group{keyVals: kvs[ri]})
		}
		groups[gi].rows = append(groups[gi].rows, r)
	}
	// Deterministic output: order groups by key values.
	sort.SliceStable(groups, func(i, j int) bool {
		for k := range groups[i].keyVals {
			c := sqltypes.SortCompare(groups[i].keyVals[k], groups[j].keyVals[k])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	// Phase 3: finalize groups in parallel — each task owns whole groups
	// (per-group output slots), and within a group every aggregate folds
	// over the group's rows in original row order, exactly as serial
	// execution does.
	outRows := make([]storage.Row, len(groups))
	if _, err := parallelRun(ctx, a, n, len(groups), func(gi int) error {
		g := groups[gi]
		row := make(storage.Row, 0, len(a.groupFns)+len(a.specs))
		row = append(row, g.keyVals...)
		for _, spec := range a.specs {
			v, err := computeAggregate(ctx, spec, in.cols, g.rows, env)
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		outRows[gi] = row
		return nil
	}); err != nil {
		return nil, err
	}
	out.rows = outRows
	if len(outRows) == 0 {
		out.rows = nil
	}
	return out, nil
}

// ---------------------------------------------------------------- top

type topNode struct {
	base
	count   int64
	percent bool
}

func (t *topNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	in, err := execNode(ctx, t.children[0], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(in)
	n := t.count
	if t.percent {
		n = int64(math.Ceil(float64(len(in.rows)) * float64(t.count) / 100.0))
	}
	if n < 0 {
		n = 0
	}
	if n > int64(len(in.rows)) {
		n = int64(len(in.rows))
	}
	return &relation{cols: in.cols, rows: in.rows[:n]}, nil
}

// ---------------------------------------------------------------- set ops

// concatenationNode is UNION ALL ("Concatenation"). Children must be
// column-compatible by position; output uses the first child's names.
type concatenationNode struct{ base }

func (c *concatenationNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	out := &relation{cols: c.props.Cols}
	width := len(c.props.Cols)
	for _, ch := range c.children {
		rel, err := execNode(ctx, ch, env)
		if err != nil {
			return nil, err
		}
		for _, r := range rel.rows {
			if len(r) != width {
				return nil, fmt.Errorf("engine: UNION operand arity mismatch: %d vs %d", len(r), width)
			}
			out.rows = append(out.rows, r)
		}
		ctx.releaseRel(rel)
	}
	return out, nil
}

// hashSetOpNode implements INTERSECT and EXCEPT with distinct semantics
// ("Hash Match" with a semi/anti-semi logical op).
type hashSetOpNode struct {
	base
	anti bool // true = EXCEPT
}

func (h *hashSetOpNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	left, err := execNode(ctx, h.children[0], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(left)
	right, err := execNode(ctx, h.children[1], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(right)
	rightSet := map[string]bool{}
	for _, r := range right.rows {
		rightSet[rowKey(r)] = true
	}
	out := &relation{cols: h.props.Cols}
	emitted := map[string]bool{}
	for _, r := range left.rows {
		k := rowKey(r)
		if emitted[k] {
			continue
		}
		if rightSet[k] != h.anti {
			emitted[k] = true
			out.rows = append(out.rows, r)
		}
	}
	return out, nil
}

func rowKey(r storage.Row) string {
	var k string
	for _, v := range r {
		k += v.Key() + "\x1f"
	}
	return k
}

// ---------------------------------------------------------------- windows

// segmentNode marks partition boundaries ("Segment"). Materially it is a
// pass-through; it exists so plans carry the same operator sequence SQL
// Server emits for windowed queries.
type segmentNode struct{ base }

func (s *segmentNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	return execNode(ctx, s.children[0], env)
}

// windowCall is one window function computed by a windowProjectNode.
type windowCall struct {
	name    string
	argFn   exprFn // aggregate argument; nil for ranking functions
	ntileFn exprFn // NTILE bucket count
	outType sqltypes.Type
}

// windowProjectNode computes window functions over its (pre-sorted) input,
// appending one column per call. Its PhysicalOp is "Sequence Project" for
// ranking functions and "Stream Aggregate" for windowed aggregates
// (preceded by a "Window Spool" pass-through), mirroring SQL Server.
type windowProjectNode struct {
	base
	partFns   []exprFn
	orderKeys []sortKey // empty = whole-partition frames for aggregates
	calls     []windowCall
	inCols    []ColMeta
}

func (w *windowProjectNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	in, err := execNode(ctx, w.children[0], env)
	if err != nil {
		return nil, err
	}
	defer ctx.releaseRel(in)
	// Evaluate every row's partition key over row-range morsels, then
	// assign rows to partitions serially so the (already sorted) input
	// order is preserved within and across partitions.
	n := len(in.rows)
	keys := make([]string, n)
	if _, err := parallelRun(ctx, w, n, morselCount(n), func(t int) error {
		lo, hi := morselBounds(t, n)
		ev := &Env{cols: in.cols, outer: env}
		for i := lo; i < hi; i++ {
			ev.row = in.rows[i]
			var key string
			for _, fn := range w.partFns {
				v, err := fn(ctx, ev)
				if err != nil {
					return err
				}
				key += v.Key() + "\x1f"
			}
			keys[i] = key
		}
		return nil
	}); err != nil {
		return nil, err
	}
	partIdx := map[string][]int{}
	var partOrder []string
	for i := range in.rows {
		if _, ok := partIdx[keys[i]]; !ok {
			partOrder = append(partOrder, keys[i])
		}
		partIdx[keys[i]] = append(partIdx[keys[i]], i)
	}
	width := len(in.cols)
	outRows := make([]storage.Row, len(in.rows))
	for i, r := range in.rows {
		nr := make(storage.Row, width, width+len(w.calls))
		copy(nr, r)
		outRows[i] = nr
	}
	// Partitions are disjoint row sets, so they can be computed in
	// parallel: each task appends this partition's window columns to its
	// own rows only, in the fixed call order.
	if _, err := parallelRun(ctx, w, n, len(partOrder), func(p int) error {
		idxs := partIdx[partOrder[p]]
		for _, call := range w.calls {
			vals, err := w.computeCall(ctx, env, in, idxs, call)
			if err != nil {
				return err
			}
			for j, ri := range idxs {
				outRows[ri] = append(outRows[ri], vals[j])
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return &relation{cols: w.props.Cols, rows: outRows}, nil
}

// computeCall evaluates one window function over one partition (idxs are
// row indices into in.rows, in window order).
func (w *windowProjectNode) computeCall(ctx *ExecContext, env *Env, in *relation, idxs []int, call windowCall) ([]sqltypes.Value, error) {
	out := make([]sqltypes.Value, len(idxs))
	ev := &Env{cols: in.cols, outer: env}
	orderKeyAt := func(i int) ([]sqltypes.Value, error) {
		r := in.rows[idxs[i]]
		kv := make([]sqltypes.Value, len(w.orderKeys))
		for j, k := range w.orderKeys {
			if k.fn == nil {
				kv[j] = r[k.idx]
				continue
			}
			ev.row = r
			v, err := k.fn(ctx, ev)
			if err != nil {
				return nil, err
			}
			kv[j] = v
		}
		return kv, nil
	}
	sameOrderKey := func(a, b []sqltypes.Value) bool {
		for j := range a {
			if sqltypes.SortCompare(a[j], b[j]) != 0 {
				return false
			}
		}
		return true
	}
	switch call.name {
	case "ROW_NUMBER":
		for i := range idxs {
			out[i] = sqltypes.NewInt(int64(i + 1))
		}
	case "RANK", "DENSE_RANK":
		rank, dense := int64(1), int64(1)
		var prev []sqltypes.Value
		for i := range idxs {
			kv, err := orderKeyAt(i)
			if err != nil {
				return nil, err
			}
			if i > 0 && !sameOrderKey(kv, prev) {
				rank = int64(i + 1)
				dense++
			}
			if call.name == "RANK" {
				out[i] = sqltypes.NewInt(rank)
			} else {
				out[i] = sqltypes.NewInt(dense)
			}
			prev = kv
		}
	case "NTILE":
		ev.row = in.rows[idxs[0]]
		nv, err := call.ntileFn(ctx, ev)
		if err != nil {
			return nil, err
		}
		n, err := intArg(nv)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("engine: NTILE requires a positive bucket count")
		}
		total := int64(len(idxs))
		big := total % n
		size := total / n
		pos := int64(0)
		for b := int64(1); b <= n && pos < total; b++ {
			sz := size
			if b <= big {
				sz++
			}
			for k := int64(0); k < sz && pos < total; k++ {
				out[pos] = sqltypes.NewInt(b)
				pos++
			}
		}
	default: // windowed aggregate
		spec := aggSpec{name: call.name, argFn: call.argFn, outType: call.outType, argCol: -1}
		if call.argFn == nil {
			spec.star = true
		}
		if len(w.orderKeys) == 0 {
			// Whole-partition frame.
			rows := make([]storage.Row, len(idxs))
			for i, ri := range idxs {
				rows[i] = in.rows[ri]
			}
			v, err := computeAggregate(ctx, spec, in.cols, rows, env)
			if err != nil {
				return nil, err
			}
			for i := range out {
				out[i] = v
			}
			return out, nil
		}
		// Running frame: RANGE UNBOUNDED PRECEDING .. CURRENT ROW, peers
		// included (the SQL default).
		var prev []sqltypes.Value
		frameEnd := 0
		for i := range idxs {
			kv, err := orderKeyAt(i)
			if err != nil {
				return nil, err
			}
			if i == 0 || !sameOrderKey(kv, prev) {
				// Extend the frame through all peers of this key.
				frameEnd = i + 1
				for frameEnd < len(idxs) {
					nk, err := orderKeyAt(frameEnd)
					if err != nil {
						return nil, err
					}
					if !sameOrderKey(nk, kv) {
						break
					}
					frameEnd++
				}
				prev = kv
			}
			rows := make([]storage.Row, frameEnd)
			for k := 0; k < frameEnd; k++ {
				rows[k] = in.rows[idxs[k]]
			}
			v, err := computeAggregate(ctx, spec, in.cols, rows, env)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
	}
	return out, nil
}

// windowSpoolNode is the pass-through that precedes windowed aggregates in
// SQL Server plans ("Window Spool").
type windowSpoolNode struct{ base }

func (w *windowSpoolNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	return execNode(ctx, w.children[0], env)
}
