package engine

import (
	"fmt"
	"math"
	"sort"

	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// ---------------------------------------------------------------- scans

type seekInfo struct {
	op  string // "=", "<", "<=", ">", ">="
	val sqltypes.Value
}

// scanNode reads a base table: "Clustered Index Scan" or, when a sargable
// predicate on the leading clustered-key column exists, "Clustered Index
// Seek". All SQLShare tables carry a clustered index (§3.4).
type scanNode struct {
	base
	table *storage.Table
	preds []exprFn
	seek  *seekInfo
}

func (s *scanNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	var rows []storage.Row
	if s.seek != nil {
		switch s.seek.op {
		case "=":
			rows = s.table.SeekEqual(s.seek.val)
		case "<":
			rows = s.table.SeekRange(sqltypes.Value{}, s.seek.val, false, false)
		case "<=":
			rows = s.table.SeekRange(sqltypes.Value{}, s.seek.val, false, true)
		case ">":
			rows = s.table.SeekRange(s.seek.val, sqltypes.Value{}, false, false)
		case ">=":
			rows = s.table.SeekRange(s.seek.val, sqltypes.Value{}, true, false)
		}
		// NULLs cluster at the front and never satisfy a comparison; a
		// range seek with an open lower bound must skip them.
		if s.seek.op == "<" || s.seek.op == "<=" {
			for len(rows) > 0 && rows[0][0].IsNull() {
				rows = rows[1:]
			}
		}
	} else {
		rows = s.table.Scan()
	}
	rel := &relation{cols: s.props.Cols}
	if len(s.preds) == 0 {
		rel.rows = append([]storage.Row(nil), rows...)
		return rel, nil
	}
	ev := &Env{cols: s.props.Cols, outer: env}
	for _, r := range rows {
		ev.row = r
		keep := true
		for _, p := range s.preds {
			v, err := p(ctx, ev)
			if err != nil {
				return nil, err
			}
			if truth(v) != sqltypes.True {
				keep = false
				break
			}
		}
		if keep {
			rel.rows = append(rel.rows, r)
		}
	}
	return rel, nil
}

// constantScanNode produces a single zero-column row, for FROM-less
// SELECTs ("Constant Scan" in SQL Server plans).
type constantScanNode struct{ base }

func (c *constantScanNode) exec(*ExecContext, *Env) (*relation, error) {
	return &relation{cols: nil, rows: []storage.Row{{}}}, nil
}

// ---------------------------------------------------------------- filter

type filterNode struct {
	base
	pred exprFn
}

func (f *filterNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	in, err := execNode(ctx, f.children[0], env)
	if err != nil {
		return nil, err
	}
	out := &relation{cols: in.cols}
	ev := &Env{cols: in.cols, outer: env}
	for _, r := range in.rows {
		ev.row = r
		v, err := f.pred(ctx, ev)
		if err != nil {
			return nil, err
		}
		if truth(v) == sqltypes.True {
			out.rows = append(out.rows, r)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------- project

// projectNode evaluates the select list. Its PhysicalOp is "Compute Scalar"
// when any item computes a new value; a pure column rearrangement has an
// empty PhysicalOp and is invisible to plan extraction, matching how SQL
// Server folds trivial projection into its scans.
type projectNode struct {
	base
	fns []exprFn
}

func (p *projectNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	in, err := execNode(ctx, p.children[0], env)
	if err != nil {
		return nil, err
	}
	rows, err := evalRows(ctx, in, p.fns, env)
	if err != nil {
		return nil, err
	}
	return &relation{cols: p.props.Cols, rows: rows}, nil
}

// ---------------------------------------------------------------- joins

type joinSide uint8

const (
	joinInner joinSide = iota
	joinLeftOuter
	joinRightOuter
	joinFullOuter
)

// nestedLoopsNode implements cross joins and non-equi joins.
type nestedLoopsNode struct {
	base
	side joinSide
	pred exprFn // nil = cross join
}

func (n *nestedLoopsNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	left, err := execNode(ctx, n.children[0], env)
	if err != nil {
		return nil, err
	}
	right, err := execNode(ctx, n.children[1], env)
	if err != nil {
		return nil, err
	}
	out := &relation{cols: n.props.Cols}
	ev := &Env{cols: n.props.Cols, outer: env}
	rightMatched := make([]bool, len(right.rows))
	lw, rw := relWidth(left), relWidth(right)
	for _, lr := range left.rows {
		matched := false
		for ri, rr := range right.rows {
			joined := joinRows(lr, rr)
			if n.pred != nil {
				ev.row = joined
				v, err := n.pred(ctx, ev)
				if err != nil {
					return nil, err
				}
				if truth(v) != sqltypes.True {
					continue
				}
			}
			matched = true
			rightMatched[ri] = true
			out.rows = append(out.rows, joined)
		}
		if !matched && (n.side == joinLeftOuter || n.side == joinFullOuter) {
			out.rows = append(out.rows, joinRows(lr, nullRow(rw)))
		}
	}
	if n.side == joinRightOuter || n.side == joinFullOuter {
		for ri, rr := range right.rows {
			if !rightMatched[ri] {
				out.rows = append(out.rows, joinRows(nullRow(lw), rr))
			}
		}
	}
	return out, nil
}

func relWidth(r *relation) int { return len(r.cols) }

func joinRows(l, r storage.Row) storage.Row {
	out := make(storage.Row, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func nullRow(w int) storage.Row {
	r := make(storage.Row, w)
	for i := range r {
		r[i] = sqltypes.NullValue()
	}
	return r
}

// hashMatchNode implements equi-joins (inner and outer) by building a hash
// table on the right input ("Hash Match").
type hashMatchNode struct {
	base
	side      joinSide
	leftKeys  []exprFn // evaluated against the left relation
	rightKeys []exprFn // evaluated against the right relation
	residual  exprFn   // extra non-equi conjuncts, evaluated on joined rows
}

func (h *hashMatchNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	left, err := execNode(ctx, h.children[0], env)
	if err != nil {
		return nil, err
	}
	right, err := execNode(ctx, h.children[1], env)
	if err != nil {
		return nil, err
	}
	// Build side: right input.
	build := map[string][]int{}
	rev := &Env{cols: right.cols, outer: env}
	for ri, rr := range right.rows {
		rev.row = rr
		key, null, err := hashKey(ctx, rev, h.rightKeys)
		if err != nil {
			return nil, err
		}
		if null {
			continue // NULL keys never join
		}
		build[key] = append(build[key], ri)
	}
	out := &relation{cols: h.props.Cols}
	lev := &Env{cols: left.cols, outer: env}
	jev := &Env{cols: h.props.Cols, outer: env}
	rightMatched := make([]bool, len(right.rows))
	lw, rw := relWidth(left), relWidth(right)
	for _, lr := range left.rows {
		lev.row = lr
		key, null, err := hashKey(ctx, lev, h.leftKeys)
		matched := false
		if err != nil {
			return nil, err
		}
		if !null {
			for _, ri := range build[key] {
				joined := joinRows(lr, right.rows[ri])
				if h.residual != nil {
					jev.row = joined
					v, err := h.residual(ctx, jev)
					if err != nil {
						return nil, err
					}
					if truth(v) != sqltypes.True {
						continue
					}
				}
				matched = true
				rightMatched[ri] = true
				out.rows = append(out.rows, joined)
			}
		}
		if !matched && (h.side == joinLeftOuter || h.side == joinFullOuter) {
			out.rows = append(out.rows, joinRows(lr, nullRow(rw)))
		}
	}
	if h.side == joinRightOuter || h.side == joinFullOuter {
		for ri, rr := range right.rows {
			if !rightMatched[ri] {
				out.rows = append(out.rows, joinRows(nullRow(lw), rr))
			}
		}
	}
	return out, nil
}

func hashKey(ctx *ExecContext, ev *Env, keys []exprFn) (string, bool, error) {
	var k string
	for _, fn := range keys {
		v, err := fn(ctx, ev)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", true, nil
		}
		k += v.Key() + "\x1f"
	}
	return k, false, nil
}

// mergeJoinNode joins two inputs already sorted on their leading join
// column — chosen when both sides are clustered scans keyed on the join
// column ("Merge Join"). Inner joins only.
type mergeJoinNode struct {
	base
	leftIdx, rightIdx int
}

func (m *mergeJoinNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	left, err := execNode(ctx, m.children[0], env)
	if err != nil {
		return nil, err
	}
	right, err := execNode(ctx, m.children[1], env)
	if err != nil {
		return nil, err
	}
	out := &relation{cols: m.props.Cols}
	i, j := 0, 0
	for i < len(left.rows) && j < len(right.rows) {
		lv := left.rows[i][m.leftIdx]
		rv := right.rows[j][m.rightIdx]
		if lv.IsNull() {
			i++
			continue
		}
		if rv.IsNull() {
			j++
			continue
		}
		c := sqltypes.SortCompare(lv, rv)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Emit the cross product of the equal runs.
			jEnd := j
			for jEnd < len(right.rows) && sqltypes.SortCompare(right.rows[jEnd][m.rightIdx], rv) == 0 {
				jEnd++
			}
			iEnd := i
			for iEnd < len(left.rows) && sqltypes.SortCompare(left.rows[iEnd][m.leftIdx], lv) == 0 {
				iEnd++
			}
			for a := i; a < iEnd; a++ {
				for b := j; b < jEnd; b++ {
					out.rows = append(out.rows, joinRows(left.rows[a], right.rows[b]))
				}
			}
			i, j = iEnd, jEnd
		}
	}
	return out, nil
}

// ---------------------------------------------------------------- sort

// sortKey orders rows either by a precomputed column index or by an
// expression evaluated per row.
type sortKey struct {
	idx  int // used when fn == nil
	fn   exprFn
	desc bool
}

// sortNode sorts, optionally deduplicates ("Distinct Sort"), and optionally
// trims hidden trailing sort columns.
type sortNode struct {
	base
	keys           []sortKey
	distinct       bool
	distinctPrefix int // 0 = full row
	trimTo         int // 0 = keep all columns
}

func (s *sortNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	in, err := execNode(ctx, s.children[0], env)
	if err != nil {
		return nil, err
	}
	// Evaluate key vectors once.
	keyVals := make([][]sqltypes.Value, len(in.rows))
	ev := &Env{cols: in.cols, outer: env}
	for i, r := range in.rows {
		kv := make([]sqltypes.Value, len(s.keys))
		for j, k := range s.keys {
			if k.fn == nil {
				kv[j] = r[k.idx]
				continue
			}
			ev.row = r
			v, err := k.fn(ctx, ev)
			if err != nil {
				return nil, err
			}
			kv[j] = v
		}
		keyVals[i] = kv
	}
	order := make([]int, len(in.rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ka, kb := keyVals[order[a]], keyVals[order[b]]
		for j := range s.keys {
			c := sqltypes.SortCompare(ka[j], kb[j])
			if c == 0 {
				continue
			}
			if s.keys[j].desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := &relation{cols: in.cols}
	var lastKey string
	for _, idx := range order {
		r := in.rows[idx]
		if s.distinct {
			w := s.distinctPrefix
			if w <= 0 || w > len(r) {
				w = len(r)
			}
			var k string
			for _, v := range r[:w] {
				k += v.Key() + "\x1f"
			}
			if out.rows != nil && k == lastKey {
				continue
			}
			lastKey = k
		}
		out.rows = append(out.rows, r)
	}
	if s.trimTo > 0 && s.trimTo < len(in.cols) {
		out.cols = in.cols[:s.trimTo]
		for i, r := range out.rows {
			out.rows[i] = r[:s.trimTo]
		}
	}
	return out, nil
}

// ---------------------------------------------------------------- aggregate

// streamAggregateNode groups its (sorted) input and computes aggregates
// ("Stream Aggregate"). Output columns are the group keys followed by the
// aggregate results.
type streamAggregateNode struct {
	base
	groupFns []exprFn
	specs    []aggSpec
	scalar   bool // aggregate without GROUP BY: exactly one output row
}

func (a *streamAggregateNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	in, err := execNode(ctx, a.children[0], env)
	if err != nil {
		return nil, err
	}
	out := &relation{cols: a.props.Cols}
	if a.scalar {
		row := make(storage.Row, len(a.specs))
		for i, spec := range a.specs {
			v, err := computeAggregate(ctx, spec, in.cols, in.rows, env)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		out.rows = []storage.Row{row}
		return out, nil
	}
	type group struct {
		keyVals []sqltypes.Value
		rows    []storage.Row
	}
	idx := map[string]int{}
	var groups []*group
	ev := &Env{cols: in.cols, outer: env}
	for _, r := range in.rows {
		ev.row = r
		kvs := make([]sqltypes.Value, len(a.groupFns))
		var key string
		for i, fn := range a.groupFns {
			v, err := fn(ctx, ev)
			if err != nil {
				return nil, err
			}
			kvs[i] = v
			key += v.Key() + "\x1f"
		}
		gi, ok := idx[key]
		if !ok {
			gi = len(groups)
			idx[key] = gi
			groups = append(groups, &group{keyVals: kvs})
		}
		groups[gi].rows = append(groups[gi].rows, r)
	}
	// Deterministic output: order groups by key values.
	sort.SliceStable(groups, func(i, j int) bool {
		for k := range groups[i].keyVals {
			c := sqltypes.SortCompare(groups[i].keyVals[k], groups[j].keyVals[k])
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	for _, g := range groups {
		row := make(storage.Row, 0, len(a.groupFns)+len(a.specs))
		row = append(row, g.keyVals...)
		for _, spec := range a.specs {
			v, err := computeAggregate(ctx, spec, in.cols, g.rows, env)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// ---------------------------------------------------------------- top

type topNode struct {
	base
	count   int64
	percent bool
}

func (t *topNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	in, err := execNode(ctx, t.children[0], env)
	if err != nil {
		return nil, err
	}
	n := t.count
	if t.percent {
		n = int64(math.Ceil(float64(len(in.rows)) * float64(t.count) / 100.0))
	}
	if n < 0 {
		n = 0
	}
	if n > int64(len(in.rows)) {
		n = int64(len(in.rows))
	}
	return &relation{cols: in.cols, rows: in.rows[:n]}, nil
}

// ---------------------------------------------------------------- set ops

// concatenationNode is UNION ALL ("Concatenation"). Children must be
// column-compatible by position; output uses the first child's names.
type concatenationNode struct{ base }

func (c *concatenationNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	out := &relation{cols: c.props.Cols}
	width := len(c.props.Cols)
	for _, ch := range c.children {
		rel, err := execNode(ctx, ch, env)
		if err != nil {
			return nil, err
		}
		for _, r := range rel.rows {
			if len(r) != width {
				return nil, fmt.Errorf("engine: UNION operand arity mismatch: %d vs %d", len(r), width)
			}
			out.rows = append(out.rows, r)
		}
	}
	return out, nil
}

// hashSetOpNode implements INTERSECT and EXCEPT with distinct semantics
// ("Hash Match" with a semi/anti-semi logical op).
type hashSetOpNode struct {
	base
	anti bool // true = EXCEPT
}

func (h *hashSetOpNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	left, err := execNode(ctx, h.children[0], env)
	if err != nil {
		return nil, err
	}
	right, err := execNode(ctx, h.children[1], env)
	if err != nil {
		return nil, err
	}
	rightSet := map[string]bool{}
	for _, r := range right.rows {
		rightSet[rowKey(r)] = true
	}
	out := &relation{cols: h.props.Cols}
	emitted := map[string]bool{}
	for _, r := range left.rows {
		k := rowKey(r)
		if emitted[k] {
			continue
		}
		if rightSet[k] != h.anti {
			emitted[k] = true
			out.rows = append(out.rows, r)
		}
	}
	return out, nil
}

func rowKey(r storage.Row) string {
	var k string
	for _, v := range r {
		k += v.Key() + "\x1f"
	}
	return k
}

// ---------------------------------------------------------------- windows

// segmentNode marks partition boundaries ("Segment"). Materially it is a
// pass-through; it exists so plans carry the same operator sequence SQL
// Server emits for windowed queries.
type segmentNode struct{ base }

func (s *segmentNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	return execNode(ctx, s.children[0], env)
}

// windowCall is one window function computed by a windowProjectNode.
type windowCall struct {
	name    string
	argFn   exprFn // aggregate argument; nil for ranking functions
	ntileFn exprFn // NTILE bucket count
	outType sqltypes.Type
}

// windowProjectNode computes window functions over its (pre-sorted) input,
// appending one column per call. Its PhysicalOp is "Sequence Project" for
// ranking functions and "Stream Aggregate" for windowed aggregates
// (preceded by a "Window Spool" pass-through), mirroring SQL Server.
type windowProjectNode struct {
	base
	partFns   []exprFn
	orderKeys []sortKey // empty = whole-partition frames for aggregates
	calls     []windowCall
	inCols    []ColMeta
}

func (w *windowProjectNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	in, err := execNode(ctx, w.children[0], env)
	if err != nil {
		return nil, err
	}
	// Partition rows, preserving the (already sorted) input order.
	partIdx := map[string][]int{}
	var partOrder []string
	ev := &Env{cols: in.cols, outer: env}
	for i, r := range in.rows {
		ev.row = r
		var key string
		for _, fn := range w.partFns {
			v, err := fn(ctx, ev)
			if err != nil {
				return nil, err
			}
			key += v.Key() + "\x1f"
		}
		if _, ok := partIdx[key]; !ok {
			partOrder = append(partOrder, key)
		}
		partIdx[key] = append(partIdx[key], i)
	}
	width := len(in.cols)
	outRows := make([]storage.Row, len(in.rows))
	for i, r := range in.rows {
		nr := make(storage.Row, width, width+len(w.calls))
		copy(nr, r)
		outRows[i] = nr
	}
	for _, key := range partOrder {
		idxs := partIdx[key]
		for _, call := range w.calls {
			vals, err := w.computeCall(ctx, env, in, idxs, call)
			if err != nil {
				return nil, err
			}
			for j, ri := range idxs {
				outRows[ri] = append(outRows[ri], vals[j])
			}
		}
	}
	return &relation{cols: w.props.Cols, rows: outRows}, nil
}

// computeCall evaluates one window function over one partition (idxs are
// row indices into in.rows, in window order).
func (w *windowProjectNode) computeCall(ctx *ExecContext, env *Env, in *relation, idxs []int, call windowCall) ([]sqltypes.Value, error) {
	out := make([]sqltypes.Value, len(idxs))
	ev := &Env{cols: in.cols, outer: env}
	orderKeyAt := func(i int) ([]sqltypes.Value, error) {
		r := in.rows[idxs[i]]
		kv := make([]sqltypes.Value, len(w.orderKeys))
		for j, k := range w.orderKeys {
			if k.fn == nil {
				kv[j] = r[k.idx]
				continue
			}
			ev.row = r
			v, err := k.fn(ctx, ev)
			if err != nil {
				return nil, err
			}
			kv[j] = v
		}
		return kv, nil
	}
	sameOrderKey := func(a, b []sqltypes.Value) bool {
		for j := range a {
			if sqltypes.SortCompare(a[j], b[j]) != 0 {
				return false
			}
		}
		return true
	}
	switch call.name {
	case "ROW_NUMBER":
		for i := range idxs {
			out[i] = sqltypes.NewInt(int64(i + 1))
		}
	case "RANK", "DENSE_RANK":
		rank, dense := int64(1), int64(1)
		var prev []sqltypes.Value
		for i := range idxs {
			kv, err := orderKeyAt(i)
			if err != nil {
				return nil, err
			}
			if i > 0 && !sameOrderKey(kv, prev) {
				rank = int64(i + 1)
				dense++
			}
			if call.name == "RANK" {
				out[i] = sqltypes.NewInt(rank)
			} else {
				out[i] = sqltypes.NewInt(dense)
			}
			prev = kv
		}
	case "NTILE":
		ev.row = in.rows[idxs[0]]
		nv, err := call.ntileFn(ctx, ev)
		if err != nil {
			return nil, err
		}
		n, err := intArg(nv)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("engine: NTILE requires a positive bucket count")
		}
		total := int64(len(idxs))
		big := total % n
		size := total / n
		pos := int64(0)
		for b := int64(1); b <= n && pos < total; b++ {
			sz := size
			if b <= big {
				sz++
			}
			for k := int64(0); k < sz && pos < total; k++ {
				out[pos] = sqltypes.NewInt(b)
				pos++
			}
		}
	default: // windowed aggregate
		spec := aggSpec{name: call.name, argFn: call.argFn, outType: call.outType}
		if call.argFn == nil {
			spec.star = true
		}
		if len(w.orderKeys) == 0 {
			// Whole-partition frame.
			rows := make([]storage.Row, len(idxs))
			for i, ri := range idxs {
				rows[i] = in.rows[ri]
			}
			v, err := computeAggregate(ctx, spec, in.cols, rows, env)
			if err != nil {
				return nil, err
			}
			for i := range out {
				out[i] = v
			}
			return out, nil
		}
		// Running frame: RANGE UNBOUNDED PRECEDING .. CURRENT ROW, peers
		// included (the SQL default).
		var prev []sqltypes.Value
		frameEnd := 0
		for i := range idxs {
			kv, err := orderKeyAt(i)
			if err != nil {
				return nil, err
			}
			if i == 0 || !sameOrderKey(kv, prev) {
				// Extend the frame through all peers of this key.
				frameEnd = i + 1
				for frameEnd < len(idxs) {
					nk, err := orderKeyAt(frameEnd)
					if err != nil {
						return nil, err
					}
					if !sameOrderKey(nk, kv) {
						break
					}
					frameEnd++
				}
				prev = kv
			}
			rows := make([]storage.Row, frameEnd)
			for k := 0; k < frameEnd; k++ {
				rows[k] = in.rows[idxs[k]]
			}
			v, err := computeAggregate(ctx, spec, in.cols, rows, env)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
	}
	return out, nil
}

// windowSpoolNode is the pass-through that precedes windowed aggregates in
// SQL Server plans ("Window Spool").
type windowSpoolNode struct{ base }

func (w *windowSpoolNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	return execNode(ctx, w.children[0], env)
}
