package engine

import (
	"math"

	"sqlshare/internal/storage"
)

// Props holds the SHOWPLAN-style properties every physical operator
// exposes: its operator names, output schema, cardinality and cost
// estimates, and the predicate clauses it applies. The workload-analysis
// pipeline (§4) consumes exactly these fields.
type Props struct {
	// PhysicalOp is the SQL Server-style physical operator name, e.g.
	// "Clustered Index Seek", "Hash Match", "Compute Scalar".
	PhysicalOp string
	// LogicalOp is the logical operation implemented, e.g. "Inner Join",
	// "Aggregate", "Sort".
	LogicalOp string
	// Object is the referenced dataset name, set on scans and seeks.
	Object string
	// Cols is the output schema.
	Cols []ColMeta
	// Filters holds the predicate clauses applied by this operator,
	// rendered as SQL and split at conjunctions so subset/superset
	// reasoning works (Listing 1, §6.2 reuse matching).
	Filters []string
	// EstRows is the estimated output cardinality.
	EstRows float64
	// EstIO and EstCPU are the operator's own cost components.
	EstIO  float64
	EstCPU float64
	// RowSize is the estimated output row width in bytes.
	RowSize int
	// TotalCost is own cost plus all children's TotalCost.
	TotalCost float64
	// Parallel marks operators the executor can run with intra-query
	// parallelism on an input at or above the serial-fallback threshold —
	// the reproduction's analogue of SHOWPLAN's Parallel attribute on
	// exchange-style operators. Set by annotateParallelism at compile time.
	Parallel bool
	// Vectorized marks operators the executor runs on the columnar path:
	// kernel-filtered scans, column-gather projections, and scalar
	// aggregations fused with their scan. Set by annotateVectorized at
	// compile time; it describes the plan's capability independent of the
	// process-wide toggle (results are identical either way).
	Vectorized bool
}

// Node is a physical plan operator.
type Node interface {
	Props() *Props
	Children() []Node
	exec(ctx *ExecContext, env *Env) (*relation, error)
}

// base provides the common Node plumbing for operators.
type base struct {
	props    Props
	children []Node
}

// Props returns the operator's plan properties.
func (b *base) Props() *Props { return &b.props }

// Children returns the operator's plan children.
func (b *base) Children() []Node { return b.children }

// Env is the evaluation environment: the current row of the current
// relation plus the chain of outer rows for correlated subqueries.
type Env struct {
	cols  []ColMeta
	row   storage.Row
	outer *Env
}

// SQL Server-flavoured cost constants (the same orders of magnitude that
// SHOWPLAN reports and that Listing 1 in the paper shows).
const (
	costPageIO    = 0.003125  // one 8 KB page read
	costRowCPU    = 0.0000011 // per-row CPU
	costStartCPU  = 0.0001581 // operator startup CPU
	costHashBuild = 0.0000175 // per-row hash build surcharge
	costSortLogN  = 0.0000022 // per row*log(row) sort surcharge
	pageBytes     = 8192.0
)

// estimate fills in EstRows/EstIO/EstCPU/TotalCost bottom-up, mirroring the
// flavour of SQL Server's SHOWPLAN estimates (Listing 1 in the paper shows
// the magnitudes). Scans set EstRows at build time; derived operators
// estimate from their children here.
func estimate(n Node) {
	for _, c := range n.Children() {
		estimate(c)
	}
	p := n.Props()
	childRows := func(i int) float64 {
		ch := n.Children()
		if i < len(ch) {
			return ch[i].Props().EstRows
		}
		return 0
	}
	childSize := func(i int) int {
		ch := n.Children()
		if i < len(ch) {
			return ch[i].Props().RowSize
		}
		return 0
	}
	switch v := n.(type) {
	case *scanNode:
		pages := math.Ceil(float64(v.table.NumRows())*float64(p.RowSize)/pageBytes) + 1
		if v.seek != nil {
			// A seek touches only the qualifying fraction of pages.
			frac := p.EstRows / math.Max(1, float64(v.table.NumRows()))
			pages = math.Ceil(pages*frac) + 1
		}
		p.EstIO = pages * costPageIO
		p.EstCPU = costStartCPU + float64(v.table.NumRows())*costRowCPU
	case *constantScanNode:
		p.EstRows = 1
		p.EstCPU = costStartCPU
	case *filterNode:
		in := childRows(0)
		sel := math.Pow(0.3, math.Max(1, float64(len(p.Filters))))
		p.EstRows = in * sel
		p.EstCPU = costStartCPU + in*costRowCPU
		p.RowSize = childSize(0)
	case *projectNode:
		p.EstRows = childRows(0)
		p.EstCPU = costStartCPU + p.EstRows*costRowCPU
		p.RowSize = 8 * len(p.Cols)
	case *nestedLoopsNode:
		l, r := childRows(0), childRows(1)
		p.EstRows = l * r
		if v.pred != nil {
			p.EstRows *= 0.25
		}
		p.EstCPU = costStartCPU + l*r*costRowCPU
		p.RowSize = childSize(0) + childSize(1)
	case *hashMatchNode:
		l, r := childRows(0), childRows(1)
		p.EstRows = math.Max(l, r)
		if v.side == joinFullOuter {
			p.EstRows = l + r
		}
		p.EstCPU = costStartCPU + r*costHashBuild + l*costRowCPU
		p.RowSize = childSize(0) + childSize(1)
	case *mergeJoinNode:
		l, r := childRows(0), childRows(1)
		p.EstRows = math.Max(l, r)
		p.EstCPU = costStartCPU + (l+r)*costRowCPU
		p.RowSize = childSize(0) + childSize(1)
	case *sortNode:
		in := childRows(0)
		p.EstRows = in
		if v.distinct {
			p.EstRows = math.Max(1, in/3)
		}
		p.EstCPU = costStartCPU + in*math.Log2(in+2)*costSortLogN
		p.EstIO = math.Ceil(in*float64(childSize(0))/pageBytes) * costPageIO * 0.25
		p.RowSize = childSize(0)
	case *streamAggregateNode:
		in := childRows(0)
		if v.scalar {
			p.EstRows = 1
		} else {
			p.EstRows = math.Max(1, in/3)
		}
		p.EstCPU = costStartCPU + in*costRowCPU*float64(1+len(v.specs))
		p.RowSize = 8 * len(p.Cols)
	case *topNode:
		in := childRows(0)
		want := float64(v.count)
		if v.percent {
			want = in * float64(v.count) / 100
		}
		p.EstRows = math.Min(in, want)
		p.EstCPU = costStartCPU
		p.RowSize = childSize(0)
	case *concatenationNode:
		var sum float64
		for i := range n.Children() {
			sum += childRows(i)
		}
		p.EstRows = sum
		p.EstCPU = costStartCPU + sum*costRowCPU
		p.RowSize = childSize(0)
	case *hashSetOpNode:
		l, r := childRows(0), childRows(1)
		p.EstRows = math.Max(1, l/2)
		p.EstCPU = costStartCPU + r*costHashBuild + l*costRowCPU
		p.RowSize = childSize(0)
	case *segmentNode, *windowSpoolNode:
		p.EstRows = childRows(0)
		p.EstCPU = costRowCPU * p.EstRows
		p.RowSize = childSize(0)
	case *windowProjectNode:
		p.EstRows = childRows(0)
		p.EstCPU = costStartCPU + p.EstRows*costRowCPU*float64(len(v.calls))
		p.RowSize = childSize(0) + 8*len(v.calls)
	}
	total := p.EstIO + p.EstCPU
	for _, c := range n.Children() {
		total += c.Props().TotalCost
	}
	p.TotalCost = total
}
