package engine

import (
	"fmt"
	"math"
	"strings"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// exprFn is a compiled scalar expression, evaluated against an environment.
type exprFn func(ctx *ExecContext, ev *Env) (sqltypes.Value, error)

// scope is the compile-time mirror of the Env chain.
type scope struct {
	cols  []ColMeta
	outer *scope
}

func (s *scope) resolve(table, name string) (depth, idx int, typ sqltypes.Type, err error) {
	d := 0
	for f := s; f != nil; f = f.outer {
		found := -1
		for i, c := range f.cols {
			if !strings.EqualFold(c.Name, name) {
				continue
			}
			if table != "" && !strings.EqualFold(c.Binding, table) {
				continue
			}
			if found >= 0 {
				return 0, 0, 0, fmt.Errorf("engine: ambiguous column reference %q", refString(table, name))
			}
			found = i
		}
		if found >= 0 {
			return d, found, f.cols[found].Type, nil
		}
		d++
	}
	return 0, 0, 0, fmt.Errorf("engine: unknown column %q", refString(table, name))
}

func refString(table, name string) string {
	if table != "" {
		return table + "." + name
	}
	return name
}

func envAt(ev *Env, depth int) *Env {
	for depth > 0 && ev != nil {
		ev = ev.outer
		depth--
	}
	return ev
}

// compileExpr compiles e against sc. Subplans created for subqueries are
// appended to b.pendingSubplans so the builder can attach them to the
// owning operator for plan accounting.
func (b *builder) compileExpr(e sqlparser.Expr, sc *scope) (exprFn, sqltypes.Type, error) {
	switch n := e.(type) {
	case *sqlparser.Literal:
		v := n.Val
		t := v.Type()
		return func(*ExecContext, *Env) (sqltypes.Value, error) { return v, nil }, t, nil

	case *sqlparser.ColumnRef:
		depth, idx, typ, err := sc.resolve(n.Table, n.Name)
		if err != nil {
			return nil, 0, err
		}
		if depth > 0 {
			b.sawCorrelation = true
		}
		b.noteColumnRef(sc, depth, idx)
		return func(_ *ExecContext, ev *Env) (sqltypes.Value, error) {
			fr := envAt(ev, depth)
			if fr == nil || idx >= len(fr.row) {
				return sqltypes.NullValue(), nil
			}
			return fr.row[idx], nil
		}, typ, nil

	case *sqlparser.Unary:
		xf, xt, err := b.compileExpr(n.X, sc)
		if err != nil {
			return nil, 0, err
		}
		switch n.Op {
		case "-":
			return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
				v, err := xf(ctx, ev)
				if err != nil || v.IsNull() {
					return sqltypes.TypedNull(xt), err
				}
				if v.Type() == sqltypes.Int {
					return sqltypes.NewInt(-v.Int()), nil
				}
				return sqltypes.NewFloat(-v.Float()), nil
			}, xt, nil
		case "NOT":
			return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
				v, err := xf(ctx, ev)
				if err != nil {
					return v, err
				}
				return tristateValue(truth(v).Not()), nil
			}, sqltypes.Bool, nil
		default: // unary +
			return xf, xt, nil
		}

	case *sqlparser.Binary:
		return b.compileBinary(n, sc)

	case *sqlparser.CaseExpr:
		b.noteExprOp("case")
		return b.compileCase(n, sc)

	case *sqlparser.CastExpr:
		b.noteExprOp("cast")
		xf, _, err := b.compileExpr(n.X, sc)
		if err != nil {
			return nil, 0, err
		}
		to := n.Type
		return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
			v, err := xf(ctx, ev)
			if err != nil {
				return v, err
			}
			return sqltypes.Cast(v, to)
		}, to, nil

	case *sqlparser.IsNullExpr:
		xf, _, err := b.compileExpr(n.X, sc)
		if err != nil {
			return nil, 0, err
		}
		not := n.Not
		return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
			v, err := xf(ctx, ev)
			if err != nil {
				return v, err
			}
			return sqltypes.NewBool(v.IsNull() != not), nil
		}, sqltypes.Bool, nil

	case *sqlparser.BetweenExpr:
		xf, _, err := b.compileExpr(n.X, sc)
		if err != nil {
			return nil, 0, err
		}
		lof, _, err := b.compileExpr(n.Lo, sc)
		if err != nil {
			return nil, 0, err
		}
		hif, _, err := b.compileExpr(n.Hi, sc)
		if err != nil {
			return nil, 0, err
		}
		not := n.Not
		return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
			x, err := xf(ctx, ev)
			if err != nil {
				return x, err
			}
			lo, err := lof(ctx, ev)
			if err != nil {
				return lo, err
			}
			hi, err := hif(ctx, ev)
			if err != nil {
				return hi, err
			}
			ge := compareTristate(x, lo, ">=")
			le := compareTristate(x, hi, "<=")
			t := ge.And(le)
			if not {
				t = t.Not()
			}
			return tristateValue(t), nil
		}, sqltypes.Bool, nil

	case *sqlparser.LikeExpr:
		b.noteExprOp("like")
		return b.compileLike(n, sc)

	case *sqlparser.InExpr:
		return b.compileIn(n, sc)

	case *sqlparser.ExistsExpr:
		sub, err := b.buildSubplan(n.Query, sc)
		if err != nil {
			return nil, 0, err
		}
		not := n.Not
		return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
			rel, err := sub.run(ctx, ev)
			if err != nil {
				return sqltypes.Value{}, err
			}
			return sqltypes.NewBool((len(rel.rows) > 0) != not), nil
		}, sqltypes.Bool, nil

	case *sqlparser.SubqueryExpr:
		sub, err := b.buildSubplan(n.Query, sc)
		if err != nil {
			return nil, 0, err
		}
		var t sqltypes.Type = sqltypes.String
		if cols := sub.node.Props().Cols; len(cols) > 0 {
			t = cols[0].Type
		}
		return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
			rel, err := sub.run(ctx, ev)
			if err != nil {
				return sqltypes.Value{}, err
			}
			if len(rel.rows) == 0 {
				return sqltypes.NullValue(), nil
			}
			return rel.rows[0][0], nil
		}, t, nil

	case *sqlparser.FuncCall:
		if n.Over != nil {
			return nil, 0, fmt.Errorf("engine: window function %s not allowed here", n.Name)
		}
		if isAggregateName(n.Name) {
			return nil, 0, fmt.Errorf("engine: aggregate %s not allowed here", n.Name)
		}
		return b.compileScalarFunc(n, sc)
	}
	return nil, 0, fmt.Errorf("engine: unsupported expression %T", e)
}

func truth(v sqltypes.Value) sqltypes.Tristate {
	if v.IsNull() {
		return sqltypes.Unknown
	}
	switch v.Type() {
	case sqltypes.Bool:
		return sqltypes.TristateOf(v.Bool())
	case sqltypes.Int, sqltypes.Float:
		return sqltypes.TristateOf(v.Float() != 0)
	default:
		return sqltypes.Unknown
	}
}

func tristateValue(t sqltypes.Tristate) sqltypes.Value {
	switch t {
	case sqltypes.True:
		return sqltypes.NewBool(true)
	case sqltypes.False:
		return sqltypes.NewBool(false)
	default:
		return sqltypes.TypedNull(sqltypes.Bool)
	}
}

func compareTristate(a, bv sqltypes.Value, op string) sqltypes.Tristate {
	c, ok := sqltypes.Compare(a, bv)
	if !ok {
		return sqltypes.Unknown
	}
	switch op {
	case "=":
		return sqltypes.TristateOf(c == 0)
	case "<>":
		return sqltypes.TristateOf(c != 0)
	case "<":
		return sqltypes.TristateOf(c < 0)
	case "<=":
		return sqltypes.TristateOf(c <= 0)
	case ">":
		return sqltypes.TristateOf(c > 0)
	case ">=":
		return sqltypes.TristateOf(c >= 0)
	}
	return sqltypes.Unknown
}

func (b *builder) compileBinary(n *sqlparser.Binary, sc *scope) (exprFn, sqltypes.Type, error) {
	if name, ok := exprOpNames[n.Op]; ok {
		b.noteExprOp(name)
	}
	lf, lt, err := b.compileExpr(n.L, sc)
	if err != nil {
		return nil, 0, err
	}
	rf, rt, err := b.compileExpr(n.R, sc)
	if err != nil {
		return nil, 0, err
	}
	op := n.Op
	switch op {
	case "AND", "OR":
		return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
			lv, err := lf(ctx, ev)
			if err != nil {
				return lv, err
			}
			lt := truth(lv)
			// Short-circuit where three-valued logic allows it.
			if op == "AND" && lt == sqltypes.False {
				return tristateValue(sqltypes.False), nil
			}
			if op == "OR" && lt == sqltypes.True {
				return tristateValue(sqltypes.True), nil
			}
			rv, err := rf(ctx, ev)
			if err != nil {
				return rv, err
			}
			rt := truth(rv)
			if op == "AND" {
				return tristateValue(lt.And(rt)), nil
			}
			return tristateValue(lt.Or(rt)), nil
		}, sqltypes.Bool, nil

	case "=", "<>", "<", "<=", ">", ">=":
		return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
			lv, err := lf(ctx, ev)
			if err != nil {
				return lv, err
			}
			rv, err := rf(ctx, ev)
			if err != nil {
				return rv, err
			}
			return tristateValue(compareTristate(lv, rv, op)), nil
		}, sqltypes.Bool, nil

	case "||":
		return concatFn(lf, rf), sqltypes.String, nil

	case "+", "-", "*", "/", "%":
		// T-SQL: '+' concatenates when either operand is a string.
		if op == "+" && (lt == sqltypes.String || rt == sqltypes.String) {
			return concatFn(lf, rf), sqltypes.String, nil
		}
		outT := sqltypes.Float
		if lt == sqltypes.Int && rt == sqltypes.Int {
			outT = sqltypes.Int
		}
		return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
			lv, err := lf(ctx, ev)
			if err != nil {
				return lv, err
			}
			rv, err := rf(ctx, ev)
			if err != nil {
				return rv, err
			}
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.TypedNull(outT), nil
			}
			// Runtime string operands (from relaxed-schema data) also
			// concatenate under '+'.
			if op == "+" && (lv.Type() == sqltypes.String || rv.Type() == sqltypes.String) {
				return sqltypes.NewString(lv.String() + rv.String()), nil
			}
			return arith(op, lv, rv)
		}, outT, nil
	}
	return nil, 0, fmt.Errorf("engine: unsupported operator %q", op)
}

func concatFn(lf, rf exprFn) exprFn {
	return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
		lv, err := lf(ctx, ev)
		if err != nil {
			return lv, err
		}
		rv, err := rf(ctx, ev)
		if err != nil {
			return rv, err
		}
		if lv.IsNull() || rv.IsNull() {
			return sqltypes.TypedNull(sqltypes.String), nil
		}
		return sqltypes.NewString(lv.String() + rv.String()), nil
	}
}

func arith(op string, lv, rv sqltypes.Value) (sqltypes.Value, error) {
	bothInt := lv.Type() == sqltypes.Int && rv.Type() == sqltypes.Int
	if bothInt {
		a, c := lv.Int(), rv.Int()
		switch op {
		case "+":
			return sqltypes.NewInt(a + c), nil
		case "-":
			return sqltypes.NewInt(a - c), nil
		case "*":
			return sqltypes.NewInt(a * c), nil
		case "/":
			if c == 0 {
				return sqltypes.Value{}, fmt.Errorf("engine: division by zero")
			}
			return sqltypes.NewInt(a / c), nil // T-SQL integer division
		case "%":
			if c == 0 {
				return sqltypes.Value{}, fmt.Errorf("engine: modulo by zero")
			}
			return sqltypes.NewInt(a % c), nil
		}
	}
	a, aok := numericOf(lv)
	c, cok := numericOf(rv)
	if !aok || !cok {
		return sqltypes.TypedNull(sqltypes.Float), nil
	}
	switch op {
	case "+":
		return sqltypes.NewFloat(a + c), nil
	case "-":
		return sqltypes.NewFloat(a - c), nil
	case "*":
		return sqltypes.NewFloat(a * c), nil
	case "/":
		if c == 0 {
			return sqltypes.Value{}, fmt.Errorf("engine: division by zero")
		}
		return sqltypes.NewFloat(a / c), nil
	case "%":
		if c == 0 {
			return sqltypes.Value{}, fmt.Errorf("engine: modulo by zero")
		}
		return sqltypes.NewFloat(math.Mod(a, c)), nil
	}
	return sqltypes.Value{}, fmt.Errorf("engine: unsupported arithmetic %q", op)
}

// numericOf interprets a value numerically, coercing numeric-looking
// strings (relaxed-schema data is frequently string-typed numbers).
func numericOf(v sqltypes.Value) (float64, bool) {
	if v.IsNull() {
		return 0, false
	}
	if v.IsNumeric() {
		return v.Float(), true
	}
	if v.Type() == sqltypes.String {
		if f, err := sqltypes.Cast(v, sqltypes.Float); err == nil {
			return f.Float(), true
		}
	}
	return 0, false
}

func (b *builder) compileCase(n *sqlparser.CaseExpr, sc *scope) (exprFn, sqltypes.Type, error) {
	var operand exprFn
	if n.Operand != nil {
		var err error
		operand, _, err = b.compileExpr(n.Operand, sc)
		if err != nil {
			return nil, 0, err
		}
	}
	type arm struct{ cond, then exprFn }
	arms := make([]arm, len(n.Whens))
	outT := sqltypes.Null
	for i, w := range n.Whens {
		cf, _, err := b.compileExpr(w.Cond, sc)
		if err != nil {
			return nil, 0, err
		}
		tf, tt, err := b.compileExpr(w.Then, sc)
		if err != nil {
			return nil, 0, err
		}
		outT = sqltypes.Widen(outT, tt)
		arms[i] = arm{cond: cf, then: tf}
	}
	var elseFn exprFn
	if n.Else != nil {
		var err error
		var et sqltypes.Type
		elseFn, et, err = b.compileExpr(n.Else, sc)
		if err != nil {
			return nil, 0, err
		}
		outT = sqltypes.Widen(outT, et)
	}
	hasOperand := operand != nil
	return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
		var opv sqltypes.Value
		if hasOperand {
			var err error
			opv, err = operand(ctx, ev)
			if err != nil {
				return opv, err
			}
		}
		for _, a := range arms {
			cv, err := a.cond(ctx, ev)
			if err != nil {
				return cv, err
			}
			matched := false
			if hasOperand {
				matched = sqltypes.Equal(opv, cv) == sqltypes.True
			} else {
				matched = truth(cv) == sqltypes.True
			}
			if matched {
				return a.then(ctx, ev)
			}
		}
		if elseFn != nil {
			return elseFn(ctx, ev)
		}
		return sqltypes.TypedNull(outT), nil
	}, outT, nil
}

func (b *builder) compileLike(n *sqlparser.LikeExpr, sc *scope) (exprFn, sqltypes.Type, error) {
	xf, _, err := b.compileExpr(n.X, sc)
	if err != nil {
		return nil, 0, err
	}
	pf, _, err := b.compileExpr(n.Pattern, sc)
	if err != nil {
		return nil, 0, err
	}
	var ef exprFn
	if n.Escape != nil {
		ef, _, err = b.compileExpr(n.Escape, sc)
		if err != nil {
			return nil, 0, err
		}
	}
	not := n.Not
	return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
		xv, err := xf(ctx, ev)
		if err != nil {
			return xv, err
		}
		pv, err := pf(ctx, ev)
		if err != nil {
			return pv, err
		}
		if xv.IsNull() || pv.IsNull() {
			return tristateValue(sqltypes.Unknown), nil
		}
		esc := byte(0)
		if ef != nil {
			evv, err := ef(ctx, ev)
			if err != nil {
				return evv, err
			}
			if s := evv.String(); len(s) > 0 {
				esc = s[0]
			}
		}
		m := likeMatch(xv.String(), pv.String(), esc)
		t := sqltypes.TristateOf(m)
		if not {
			t = t.Not()
		}
		return tristateValue(t), nil
	}, sqltypes.Bool, nil
}

// likeMatch implements T-SQL LIKE: % (any run), _ (one char), [abc] and
// [a-z] character classes, [^...] negation, with an optional escape byte.
func likeMatch(s, pattern string, esc byte) bool {
	return likeRec(s, pattern, esc)
}

func likeRec(s, p string, esc byte) bool {
	for len(p) > 0 {
		c := p[0]
		switch {
		case esc != 0 && c == esc && len(p) > 1:
			if len(s) == 0 || s[0] != p[1] {
				return false
			}
			s, p = s[1:], p[2:]
		case c == '%':
			p = p[1:]
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeRec(s[i:], p, esc) {
					return true
				}
			}
			return false
		case c == '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		case c == '[':
			end := strings.IndexByte(p, ']')
			if end < 0 {
				// Literal '[' when unterminated.
				if len(s) == 0 || s[0] != '[' {
					return false
				}
				s, p = s[1:], p[1:]
				continue
			}
			if len(s) == 0 {
				return false
			}
			if !classMatch(s[0], p[1:end]) {
				return false
			}
			s, p = s[1:], p[end+1:]
		default:
			if len(s) == 0 || !equalFoldByte(s[0], c) {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

func classMatch(c byte, class string) bool {
	if class == "" {
		return false
	}
	negate := false
	if class[0] == '^' {
		negate = true
		class = class[1:]
	}
	matched := false
	for i := 0; i < len(class); i++ {
		if i+2 < len(class) && class[i+1] == '-' {
			if lowerByte(class[i]) <= lowerByte(c) && lowerByte(c) <= lowerByte(class[i+2]) {
				matched = true
			}
			i += 2
			continue
		}
		if equalFoldByte(c, class[i]) {
			matched = true
		}
	}
	return matched != negate
}

func lowerByte(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// equalFoldByte compares bytes case-insensitively, matching SQL Server's
// default collation behaviour for LIKE.
func equalFoldByte(a, b byte) bool { return lowerByte(a) == lowerByte(b) }

func (b *builder) compileIn(n *sqlparser.InExpr, sc *scope) (exprFn, sqltypes.Type, error) {
	xf, _, err := b.compileExpr(n.X, sc)
	if err != nil {
		return nil, 0, err
	}
	not := n.Not
	if n.Query != nil {
		sub, err := b.buildSubplan(n.Query, sc)
		if err != nil {
			return nil, 0, err
		}
		return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
			xv, err := xf(ctx, ev)
			if err != nil {
				return xv, err
			}
			rel, err := sub.run(ctx, ev)
			if err != nil {
				return sqltypes.Value{}, err
			}
			t := inSet(xv, rel)
			if not {
				t = t.Not()
			}
			return tristateValue(t), nil
		}, sqltypes.Bool, nil
	}
	fns := make([]exprFn, len(n.List))
	for i, item := range n.List {
		fns[i], _, err = b.compileExpr(item, sc)
		if err != nil {
			return nil, 0, err
		}
	}
	return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
		xv, err := xf(ctx, ev)
		if err != nil {
			return xv, err
		}
		t := sqltypes.False
		for _, fn := range fns {
			v, err := fn(ctx, ev)
			if err != nil {
				return v, err
			}
			t = t.Or(sqltypes.Equal(xv, v))
			if t == sqltypes.True {
				break
			}
		}
		if not {
			t = t.Not()
		}
		return tristateValue(t), nil
	}, sqltypes.Bool, nil
}

func inSet(x sqltypes.Value, rel *relation) sqltypes.Tristate {
	if x.IsNull() {
		return sqltypes.Unknown
	}
	sawNull := false
	for _, r := range rel.rows {
		if len(r) == 0 {
			continue
		}
		switch sqltypes.Equal(x, r[0]) {
		case sqltypes.True:
			return sqltypes.True
		case sqltypes.Unknown:
			sawNull = true
		}
	}
	if sawNull {
		return sqltypes.Unknown
	}
	return sqltypes.False
}

// splitConjuncts flattens nested ANDs into a clause list (§6.2: predicates
// are split into clauses for subset reasoning).
func splitConjuncts(e sqlparser.Expr) []sqlparser.Expr {
	if bin, ok := e.(*sqlparser.Binary); ok && bin.Op == "AND" {
		return append(splitConjuncts(bin.L), splitConjuncts(bin.R)...)
	}
	return []sqlparser.Expr{e}
}

// compileRows evaluates a compiled expression list over a relation,
// producing one output row per input row.
// evalRows evaluates the select-list expressions for every input row,
// splitting the work into row-range morsels when the owning node n runs
// with parallelism. Every task writes disjoint row slots, so the output
// order is position-identical to serial evaluation.
func evalRows(ctx *ExecContext, n Node, rel *relation, fns []exprFn, outer *Env) ([]storage.Row, error) {
	out := make([]storage.Row, len(rel.rows))
	if _, err := parallelRun(ctx, n, len(rel.rows), morselCount(len(rel.rows)), func(t int) error {
		lo, hi := morselBounds(t, len(rel.rows))
		ev := &Env{cols: rel.cols, outer: outer}
		for i := lo; i < hi; i++ {
			ev.row = rel.rows[i]
			row := make(storage.Row, len(fns))
			for j, fn := range fns {
				v, err := fn(ctx, ev)
				if err != nil {
					return err
				}
				row[j] = v
			}
			out[i] = row
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
