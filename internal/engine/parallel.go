// parallel.go implements intra-query parallelism: a process-wide worker
// budget sized from GOMAXPROCS, a morsel scheduler that splits row ranges
// across workers, and the determinism rules that keep parallel results
// bit-identical to serial execution. The paper's workload is dominated by
// scans, equi-joins and aggregates over modest science tables (§5, Table 6);
// those are exactly the operators parallelized here. Operators stay
// materialized — each exec still returns a *relation — so parallelism lives
// entirely inside an operator: inputs are split into row-range morsels (or
// hash partitions for join builds), each task writes into its own output
// slot, and slots are merged in task order, which reproduces the serial
// row order exactly.
package engine

import (
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"

	"sqlshare/internal/storage"
)

// Tuning knobs. Variables rather than constants so tests and benchmarks can
// tighten them (SetParallelTuning); production code never mutates them.
var (
	// parMorselRows is the scheduling granule: one task filters/projects
	// this many rows. Large enough that per-task overhead (one Env, one
	// output slice header, one atomic fetch) is noise, small enough that
	// work steals evenly across workers and cancellation checks stay prompt.
	parMorselRows = 2048
	// parMinRows is the fallback threshold: operators whose input is
	// smaller than this run serial (DOP falls back to 1) because fan-out
	// costs more than it saves on tiny inputs.
	parMinRows = 4096
)

// SetParallelTuning adjusts the morsel size and the serial-fallback
// threshold, returning the previous values so callers can restore them.
// Intended for tests (forcing parallel plans on tiny tables) and
// benchmarks; call only while no query is executing.
func SetParallelTuning(morselRows, minRows int) (prevMorsel, prevMin int) {
	prevMorsel, prevMin = parMorselRows, parMinRows
	if morselRows > 0 {
		parMorselRows = morselRows
	}
	if minRows > 0 {
		parMinRows = minRows
	}
	return prevMorsel, prevMin
}

// extraWorkersBusy meters the process-wide budget of *additional* worker
// goroutines across all concurrently executing queries. The querying
// goroutine itself is always worker zero and needs no token, so the budget
// — runtime.GOMAXPROCS(0), re-read on every acquire so tests that raise it
// take effect — only gates the extras. When the pool is saturated by other
// queries, an operator simply runs with fewer workers (possibly one); the
// result is identical either way, only the wall time changes.
var extraWorkersBusy atomic.Int64

// workersBusyHook, when set, observes worker occupancy: +n as a parallel
// operator starts n workers, -n as it finishes. The server points this at
// the sqlshare_parallel_workers_busy gauge. The hook in effect at acquire
// time is captured and reused for the matching release, so rebinding the
// hook (tests build many servers) can never unbalance a gauge.
var workersBusyHook atomic.Pointer[func(delta int64)]

// SetWorkersBusyHook installs (or, with nil, removes) the worker-occupancy
// observer.
func SetWorkersBusyHook(f func(delta int64)) {
	if f == nil {
		workersBusyHook.Store(nil)
		return
	}
	workersBusyHook.Store(&f)
}

// acquireExtraWorkers grabs up to want extra-worker tokens, returning how
// many it got. It never blocks: a saturated pool grants zero and the
// operator degrades toward serial.
func acquireExtraWorkers(want int) int {
	if want <= 0 {
		return 0
	}
	budget := int64(runtime.GOMAXPROCS(0))
	granted := 0
	for granted < want {
		busy := extraWorkersBusy.Load()
		if busy >= budget {
			break
		}
		if extraWorkersBusy.CompareAndSwap(busy, busy+1) {
			granted++
		}
	}
	return granted
}

func releaseExtraWorkers(n int) {
	if n > 0 {
		extraWorkersBusy.Add(int64(-n))
	}
}

// PoolBusy reports the extra workers currently running across all queries
// (the quantity behind the worker-occupancy gauge, exposed for tests).
func PoolBusy() int64 { return extraWorkersBusy.Load() }

// morselCount returns how many morsels cover rows input rows.
func morselCount(rows int) int {
	if rows <= 0 {
		return 0
	}
	return (rows + parMorselRows - 1) / parMorselRows
}

// morselBounds returns the half-open row range of morsel t.
func morselBounds(t, rows int) (lo, hi int) {
	lo = t * parMorselRows
	hi = lo + parMorselRows
	if hi > rows {
		hi = rows
	}
	return lo, hi
}

// parallelRun executes fn(task) for every task in [0, tasks), fanning out
// over the workers the context's DOP and the global pool allow. It returns
// the worker count used (1 = ran serial on the calling goroutine).
//
// Contract: fn must be safe to call concurrently for distinct tasks and
// must write its result into a per-task slot; the caller merges slots in
// task order, which is what makes parallel output order identical to
// serial. rows is the operator's input cardinality, used for the
// serial-fallback gate. The first error cancels remaining tasks; every
// worker also checks the context's cancellation between tasks, so a
// ctx cancellation propagates within one morsel of work.
func parallelRun(ctx *ExecContext, n Node, rows, tasks int, fn func(task int) error) (int, error) {
	if tasks <= 0 {
		ctx.noteWorkers(n, 1)
		return 1, nil
	}
	workers := 1
	extra := 0
	if ctx.DOP > 1 && rows >= parMinRows && tasks > 1 {
		want := ctx.DOP
		if want > tasks {
			want = tasks
		}
		extra = acquireExtraWorkers(want - 1)
		workers = extra + 1
	}
	ctx.noteWorkers(n, workers)

	var next atomic.Int64
	var stopped atomic.Bool
	run := func() error {
		for {
			if stopped.Load() {
				return nil
			}
			if err := ctx.canceled(); err != nil {
				return err
			}
			t := int(next.Add(1)) - 1
			if t >= tasks {
				return nil
			}
			if err := fn(t); err != nil {
				return err
			}
		}
	}
	if workers == 1 {
		return 1, run()
	}

	var hook func(delta int64)
	if p := workersBusyHook.Load(); p != nil {
		hook = *p
	}
	if hook != nil {
		hook(int64(workers))
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		stopped.Store(true)
	}
	for w := 0; w < extra; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := run(); err != nil {
				fail(err)
			}
		}()
	}
	if err := run(); err != nil {
		fail(err)
	}
	wg.Wait()
	releaseExtraWorkers(extra)
	if hook != nil {
		hook(int64(-workers))
	}
	return workers, firstErr
}

// concatRowSlots merges per-task output slices in task order. Returns nil
// for an empty result, matching what serial appends produce.
func concatRowSlots(slots [][]storage.Row) []storage.Row {
	total := 0
	nonEmpty := 0
	last := -1
	for i, s := range slots {
		total += len(s)
		if len(s) > 0 {
			nonEmpty++
			last = i
		}
	}
	if total == 0 {
		return nil
	}
	if nonEmpty == 1 {
		return slots[last]
	}
	out := make([]storage.Row, 0, total)
	for _, s := range slots {
		out = append(out, s...)
	}
	return out
}

// mergeSortedChunks k-way-merges the chunk-sorted ranges of order, where
// chunk t spans order[bound(t):bound(t+1)] and less is a total strict
// order. The merge is deterministic for any chunk count because less never
// reports equality for distinct indices.
func mergeSortedChunks(order []int, chunks int, bound func(int) int, less func(a, b int) bool) []int {
	heads := make([]int, chunks)
	for t := range heads {
		heads[t] = bound(t)
	}
	out := make([]int, 0, len(order))
	for {
		best := -1
		for t := 0; t < chunks; t++ {
			if heads[t] >= bound(t+1) {
				continue
			}
			if best == -1 || less(order[heads[t]], order[heads[best]]) {
				best = t
			}
		}
		if best == -1 {
			return out
		}
		out = append(out, order[heads[best]])
		heads[best]++
	}
}

// hashPartition maps a join key to one of parts hash partitions. Partition
// choice never affects results (lookups are exact on the full key), only
// which build table holds the key.
func hashPartition(key string, parts int) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(parts))
}

// joinPartitions is the build-side partition count for parallel hash
// joins. Fixed rather than DOP-derived so the partitioning — and with it
// any per-partition iteration order — is independent of the worker count
// the pool happened to grant.
const joinPartitions = 32

// annotateParallelism walks a compiled plan and marks the operators the
// executor is able to run with intra-query parallelism on an input at or
// above the serial-fallback threshold. The §4 extraction pipeline surfaces
// the flag as the "parallel" plan property — the reproduction's analogue of
// SHOWPLAN's Parallel="true" / exchange (Gather Streams) annotations.
func annotateParallelism(n Node) {
	for _, c := range n.Children() {
		annotateParallelism(c)
	}
	p := n.Props()
	inRows := func(i int) float64 {
		ch := n.Children()
		if i < len(ch) {
			return ch[i].Props().EstRows
		}
		return 0
	}
	eligible := false
	switch v := n.(type) {
	case *scanNode:
		eligible = len(v.preds) > 0 && float64(v.table.NumRows()) >= float64(parMinRows)
	case *filterNode, *sortNode, *streamAggregateNode, *windowProjectNode:
		eligible = inRows(0) >= float64(parMinRows)
	case *projectNode:
		eligible = v.props.PhysicalOp != "" && inRows(0) >= float64(parMinRows)
	case *hashMatchNode:
		eligible = inRows(0) >= float64(parMinRows) || inRows(1) >= float64(parMinRows)
	}
	p.Parallel = eligible
}
