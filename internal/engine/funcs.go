package engine

import (
	"fmt"
	"math"
	"strings"
	"time"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
)

// aggregateNames lists the aggregate functions the engine supports.
var aggregateNames = map[string]bool{
	"COUNT": true, "COUNT_BIG": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "STDEV": true, "STDEVP": true,
	"VAR": true, "VARP": true,
}

// rankingNames lists window-only ranking functions.
var rankingNames = map[string]bool{
	"ROW_NUMBER": true, "RANK": true, "DENSE_RANK": true, "NTILE": true,
}

func isAggregateName(name string) bool { return aggregateNames[name] }
func isRankingName(name string) bool   { return rankingNames[name] }

// scalarFunc describes one scalar function: its result type given argument
// types and its evaluator.
type scalarFunc struct {
	minArgs int
	maxArgs int // -1 = unbounded
	retType func(args []sqltypes.Type) sqltypes.Type
	eval    func(ctx *ExecContext, args []sqltypes.Value) (sqltypes.Value, error)
}

func fixed(t sqltypes.Type) func([]sqltypes.Type) sqltypes.Type {
	return func([]sqltypes.Type) sqltypes.Type { return t }
}

func firstArgType(args []sqltypes.Type) sqltypes.Type {
	if len(args) > 0 {
		return args[0]
	}
	return sqltypes.String
}

// nullIfAnyNull is the standard scalar-function NULL propagation helper.
func nullIfAnyNull(args []sqltypes.Value, t sqltypes.Type) (sqltypes.Value, bool) {
	for _, a := range args {
		if a.IsNull() {
			return sqltypes.TypedNull(t), true
		}
	}
	return sqltypes.Value{}, false
}

func strArg(v sqltypes.Value) string { return v.String() }

func intArg(v sqltypes.Value) (int64, error) {
	c, err := sqltypes.Cast(v, sqltypes.Int)
	if err != nil {
		return 0, err
	}
	return c.Int(), nil
}

func floatArg(v sqltypes.Value) (float64, error) {
	c, err := sqltypes.Cast(v, sqltypes.Float)
	if err != nil {
		return 0, err
	}
	return c.Float(), nil
}

// scalarFuncs is the T-SQL-flavoured function library (§3.5: "rich support
// for dates and times" plus the string functions Table 4a shows dominating
// the SQLShare workload).
var scalarFuncs = map[string]scalarFunc{
	// --- string functions ---
	"LEN": {1, 1, fixed(sqltypes.Int), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.Int); ok {
			return v, nil
		}
		return sqltypes.NewInt(int64(len(strings.TrimRight(strArg(a[0]), " ")))), nil
	}},
	"UPPER": {1, 1, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		return sqltypes.NewString(strings.ToUpper(strArg(a[0]))), nil
	}},
	"LOWER": {1, 1, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		return sqltypes.NewString(strings.ToLower(strArg(a[0]))), nil
	}},
	"LTRIM": {1, 1, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		return sqltypes.NewString(strings.TrimLeft(strArg(a[0]), " ")), nil
	}},
	"RTRIM": {1, 1, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		return sqltypes.NewString(strings.TrimRight(strArg(a[0]), " ")), nil
	}},
	"TRIM": {1, 1, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		return sqltypes.NewString(strings.TrimSpace(strArg(a[0]))), nil
	}},
	"REVERSE": {1, 1, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		r := []rune(strArg(a[0]))
		for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
			r[i], r[j] = r[j], r[i]
		}
		return sqltypes.NewString(string(r)), nil
	}},
	"SUBSTRING": {3, 3, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		s := strArg(a[0])
		start, err := intArg(a[1])
		if err != nil {
			return sqltypes.Value{}, err
		}
		length, err := intArg(a[2])
		if err != nil {
			return sqltypes.Value{}, err
		}
		// T-SQL is 1-based; a start below 1 eats into the length.
		if start < 1 {
			length += start - 1
			start = 1
		}
		if length <= 0 || int(start) > len(s) {
			return sqltypes.NewString(""), nil
		}
		end := int(start-1) + int(length)
		if end > len(s) {
			end = len(s)
		}
		return sqltypes.NewString(s[start-1 : end]), nil
	}},
	"LEFT": {2, 2, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		s := strArg(a[0])
		n, err := intArg(a[1])
		if err != nil {
			return sqltypes.Value{}, err
		}
		if n < 0 {
			return sqltypes.Value{}, fmt.Errorf("engine: LEFT length must be non-negative")
		}
		if int(n) > len(s) {
			n = int64(len(s))
		}
		return sqltypes.NewString(s[:n]), nil
	}},
	"RIGHT": {2, 2, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		s := strArg(a[0])
		n, err := intArg(a[1])
		if err != nil {
			return sqltypes.Value{}, err
		}
		if n < 0 {
			return sqltypes.Value{}, fmt.Errorf("engine: RIGHT length must be non-negative")
		}
		if int(n) > len(s) {
			n = int64(len(s))
		}
		return sqltypes.NewString(s[len(s)-int(n):]), nil
	}},
	"REPLACE": {3, 3, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		return sqltypes.NewString(strings.ReplaceAll(strArg(a[0]), strArg(a[1]), strArg(a[2]))), nil
	}},
	"CHARINDEX": {2, 3, fixed(sqltypes.Int), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.Int); ok {
			return v, nil
		}
		needle, hay := strArg(a[0]), strArg(a[1])
		from := 0
		if len(a) == 3 {
			f, err := intArg(a[2])
			if err != nil {
				return sqltypes.Value{}, err
			}
			if f > 1 {
				from = int(f) - 1
			}
		}
		if from > len(hay) {
			return sqltypes.NewInt(0), nil
		}
		idx := strings.Index(strings.ToLower(hay[from:]), strings.ToLower(needle))
		if idx < 0 {
			return sqltypes.NewInt(0), nil
		}
		return sqltypes.NewInt(int64(from + idx + 1)), nil
	}},
	"PATINDEX": {2, 2, fixed(sqltypes.Int), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.Int); ok {
			return v, nil
		}
		pat, s := strArg(a[0]), strArg(a[1])
		// PATINDEX patterns are LIKE patterns anchored anywhere; the usual
		// form is %...%. Strip the outer %s and search substrings.
		core := strings.TrimSuffix(strings.TrimPrefix(pat, "%"), "%")
		for i := 0; i < len(s); i++ {
			for j := i; j <= len(s); j++ {
				if likeMatch(s[i:j], core, 0) {
					return sqltypes.NewInt(int64(i + 1)), nil
				}
			}
		}
		return sqltypes.NewInt(0), nil
	}},
	"ISNUMERIC": {1, 1, fixed(sqltypes.Int), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if a[0].IsNull() {
			return sqltypes.NewInt(0), nil
		}
		if a[0].IsNumeric() {
			return sqltypes.NewInt(1), nil
		}
		if _, err := sqltypes.Cast(a[0], sqltypes.Float); err == nil {
			return sqltypes.NewInt(1), nil
		}
		return sqltypes.NewInt(0), nil
	}},
	"CONCAT": {2, -1, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		var sb strings.Builder
		for _, v := range a {
			if !v.IsNull() {
				sb.WriteString(v.String())
			}
		}
		return sqltypes.NewString(sb.String()), nil
	}},
	"REPLICATE": {2, 2, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		n, err := intArg(a[1])
		if err != nil || n < 0 || n > 1<<20 {
			return sqltypes.Value{}, fmt.Errorf("engine: bad REPLICATE count")
		}
		return sqltypes.NewString(strings.Repeat(strArg(a[0]), int(n))), nil
	}},
	"SPACE": {1, 1, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		n, err := intArg(a[0])
		if err != nil || n < 0 || n > 1<<20 {
			return sqltypes.Value{}, fmt.Errorf("engine: bad SPACE count")
		}
		return sqltypes.NewString(strings.Repeat(" ", int(n))), nil
	}},
	"STR": {1, 1, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		return sqltypes.NewString(a[0].String()), nil
	}},

	// --- null handling ---
	"COALESCE": {1, -1, firstArgType, func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		for _, v := range a {
			if !v.IsNull() {
				return v, nil
			}
		}
		return sqltypes.NullValue(), nil
	}},
	"ISNULL": {2, 2, firstArgType, func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if a[0].IsNull() {
			return a[1], nil
		}
		return a[0], nil
	}},
	"NULLIF": {2, 2, firstArgType, func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if sqltypes.Equal(a[0], a[1]) == sqltypes.True {
			return sqltypes.TypedNull(a[0].Type()), nil
		}
		return a[0], nil
	}},

	// --- math functions ---
	"ABS": {1, 1, firstArgType, func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.Float); ok {
			return v, nil
		}
		if a[0].Type() == sqltypes.Int {
			v := a[0].Int()
			if v < 0 {
				v = -v
			}
			return sqltypes.NewInt(v), nil
		}
		f, err := floatArg(a[0])
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewFloat(math.Abs(f)), nil
	}},
	"SQUARE":  {1, 1, fixed(sqltypes.Float), mathFn1(func(f float64) float64 { return f * f })},
	"SQRT":    {1, 1, fixed(sqltypes.Float), mathFn1(math.Sqrt)},
	"EXP":     {1, 1, fixed(sqltypes.Float), mathFn1(math.Exp)},
	"LOG":     {1, 1, fixed(sqltypes.Float), mathFn1(math.Log)},
	"LOG10":   {1, 1, fixed(sqltypes.Float), mathFn1(math.Log10)},
	"FLOOR":   {1, 1, fixed(sqltypes.Float), mathFn1(math.Floor)},
	"CEILING": {1, 1, fixed(sqltypes.Float), mathFn1(math.Ceil)},
	"SIN":     {1, 1, fixed(sqltypes.Float), mathFn1(math.Sin)},
	"COS":     {1, 1, fixed(sqltypes.Float), mathFn1(math.Cos)},
	"TAN":     {1, 1, fixed(sqltypes.Float), mathFn1(math.Tan)},
	"ASIN":    {1, 1, fixed(sqltypes.Float), mathFn1(math.Asin)},
	"ACOS":    {1, 1, fixed(sqltypes.Float), mathFn1(math.Acos)},
	"ATAN":    {1, 1, fixed(sqltypes.Float), mathFn1(math.Atan)},
	"DEGREES": {1, 1, fixed(sqltypes.Float), mathFn1(func(f float64) float64 { return f * 180 / math.Pi })},
	"RADIANS": {1, 1, fixed(sqltypes.Float), mathFn1(func(f float64) float64 { return f * math.Pi / 180 })},
	"PI": {0, 0, fixed(sqltypes.Float), func(_ *ExecContext, _ []sqltypes.Value) (sqltypes.Value, error) {
		return sqltypes.NewFloat(math.Pi), nil
	}},
	"ATN2": {2, 2, fixed(sqltypes.Float), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.Float); ok {
			return v, nil
		}
		y, err := floatArg(a[0])
		if err != nil {
			return sqltypes.Value{}, err
		}
		x, err := floatArg(a[1])
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewFloat(math.Atan2(y, x)), nil
	}},
	"ASCII": {1, 1, fixed(sqltypes.Int), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.Int); ok {
			return v, nil
		}
		s := strArg(a[0])
		if s == "" {
			return sqltypes.TypedNull(sqltypes.Int), nil
		}
		return sqltypes.NewInt(int64(s[0])), nil
	}},
	"CHAR": {1, 1, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.String); ok {
			return v, nil
		}
		n, err := intArg(a[0])
		if err != nil || n < 0 || n > 255 {
			return sqltypes.TypedNull(sqltypes.String), nil
		}
		return sqltypes.NewString(string(rune(n))), nil
	}},
	"DATENAME": {2, 2, fixed(sqltypes.String), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if a[1].IsNull() {
			return sqltypes.TypedNull(sqltypes.String), nil
		}
		t, err := timeArg(a[1])
		if err != nil {
			return sqltypes.Value{}, err
		}
		switch strings.ToLower(a[0].String()) {
		case "month", "mm", "m":
			return sqltypes.NewString(t.Month().String()), nil
		case "weekday", "dw":
			return sqltypes.NewString(t.Weekday().String()), nil
		case "year", "yy", "yyyy":
			return sqltypes.NewString(fmt.Sprintf("%d", t.Year())), nil
		}
		return sqltypes.Value{}, fmt.Errorf("engine: unknown DATENAME part %q", a[0].String())
	}},
	"SIGN": {1, 1, fixed(sqltypes.Int), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.Int); ok {
			return v, nil
		}
		f, err := floatArg(a[0])
		if err != nil {
			return sqltypes.Value{}, err
		}
		switch {
		case f > 0:
			return sqltypes.NewInt(1), nil
		case f < 0:
			return sqltypes.NewInt(-1), nil
		default:
			return sqltypes.NewInt(0), nil
		}
	}},
	"POWER": {2, 2, fixed(sqltypes.Float), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.Float); ok {
			return v, nil
		}
		x, err := floatArg(a[0])
		if err != nil {
			return sqltypes.Value{}, err
		}
		y, err := floatArg(a[1])
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewFloat(math.Pow(x, y)), nil
	}},
	"ROUND": {1, 2, fixed(sqltypes.Float), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.Float); ok {
			return v, nil
		}
		f, err := floatArg(a[0])
		if err != nil {
			return sqltypes.Value{}, err
		}
		digits := int64(0)
		if len(a) == 2 {
			digits, err = intArg(a[1])
			if err != nil {
				return sqltypes.Value{}, err
			}
		}
		scale := math.Pow(10, float64(digits))
		return sqltypes.NewFloat(math.Round(f*scale) / scale), nil
	}},

	// --- date/time functions ---
	"GETDATE": {0, 0, fixed(sqltypes.DateTime), func(ctx *ExecContext, _ []sqltypes.Value) (sqltypes.Value, error) {
		return sqltypes.NewDateTime(ctx.Now), nil
	}},
	"YEAR":  {1, 1, fixed(sqltypes.Int), datePartFn(func(t time.Time) int64 { return int64(t.Year()) })},
	"MONTH": {1, 1, fixed(sqltypes.Int), datePartFn(func(t time.Time) int64 { return int64(t.Month()) })},
	"DAY":   {1, 1, fixed(sqltypes.Int), datePartFn(func(t time.Time) int64 { return int64(t.Day()) })},
	"DATEPART": {2, 2, fixed(sqltypes.Int), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if a[1].IsNull() {
			return sqltypes.TypedNull(sqltypes.Int), nil
		}
		t, err := timeArg(a[1])
		if err != nil {
			return sqltypes.Value{}, err
		}
		part := strings.ToLower(a[0].String())
		switch part {
		case "year", "yy", "yyyy":
			return sqltypes.NewInt(int64(t.Year())), nil
		case "quarter", "qq", "q":
			return sqltypes.NewInt(int64((int(t.Month())-1)/3 + 1)), nil
		case "month", "mm", "m":
			return sqltypes.NewInt(int64(t.Month())), nil
		case "dayofyear", "dy":
			return sqltypes.NewInt(int64(t.YearDay())), nil
		case "day", "dd", "d":
			return sqltypes.NewInt(int64(t.Day())), nil
		case "week", "wk", "ww":
			_, wk := t.ISOWeek()
			return sqltypes.NewInt(int64(wk)), nil
		case "weekday", "dw":
			return sqltypes.NewInt(int64(t.Weekday()) + 1), nil
		case "hour", "hh":
			return sqltypes.NewInt(int64(t.Hour())), nil
		case "minute", "mi", "n":
			return sqltypes.NewInt(int64(t.Minute())), nil
		case "second", "ss", "s":
			return sqltypes.NewInt(int64(t.Second())), nil
		}
		return sqltypes.Value{}, fmt.Errorf("engine: unknown DATEPART %q", part)
	}},
	"DATEADD": {3, 3, fixed(sqltypes.DateTime), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if a[1].IsNull() || a[2].IsNull() {
			return sqltypes.TypedNull(sqltypes.DateTime), nil
		}
		n, err := intArg(a[1])
		if err != nil {
			return sqltypes.Value{}, err
		}
		t, err := timeArg(a[2])
		if err != nil {
			return sqltypes.Value{}, err
		}
		switch strings.ToLower(a[0].String()) {
		case "year", "yy", "yyyy":
			return sqltypes.NewDateTime(t.AddDate(int(n), 0, 0)), nil
		case "month", "mm", "m":
			return sqltypes.NewDateTime(t.AddDate(0, int(n), 0)), nil
		case "day", "dd", "d":
			return sqltypes.NewDateTime(t.AddDate(0, 0, int(n))), nil
		case "week", "wk", "ww":
			return sqltypes.NewDateTime(t.AddDate(0, 0, int(n)*7)), nil
		case "hour", "hh":
			return sqltypes.NewDateTime(t.Add(time.Duration(n) * time.Hour)), nil
		case "minute", "mi", "n":
			return sqltypes.NewDateTime(t.Add(time.Duration(n) * time.Minute)), nil
		case "second", "ss", "s":
			return sqltypes.NewDateTime(t.Add(time.Duration(n) * time.Second)), nil
		}
		return sqltypes.Value{}, fmt.Errorf("engine: unknown DATEADD part %q", a[0].String())
	}},
	"DATEDIFF": {3, 3, fixed(sqltypes.Int), func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if a[1].IsNull() || a[2].IsNull() {
			return sqltypes.TypedNull(sqltypes.Int), nil
		}
		t1, err := timeArg(a[1])
		if err != nil {
			return sqltypes.Value{}, err
		}
		t2, err := timeArg(a[2])
		if err != nil {
			return sqltypes.Value{}, err
		}
		d := t2.Sub(t1)
		switch strings.ToLower(a[0].String()) {
		case "year", "yy", "yyyy":
			return sqltypes.NewInt(int64(t2.Year() - t1.Year())), nil
		case "month", "mm", "m":
			return sqltypes.NewInt(int64((t2.Year()-t1.Year())*12 + int(t2.Month()) - int(t1.Month()))), nil
		case "day", "dd", "d":
			return sqltypes.NewInt(int64(d.Hours() / 24)), nil
		case "hour", "hh":
			return sqltypes.NewInt(int64(d.Hours())), nil
		case "minute", "mi", "n":
			return sqltypes.NewInt(int64(d.Minutes())), nil
		case "second", "ss", "s":
			return sqltypes.NewInt(int64(d.Seconds())), nil
		}
		return sqltypes.Value{}, fmt.Errorf("engine: unknown DATEDIFF part %q", a[0].String())
	}},
}

func mathFn1(f func(float64) float64) func(*ExecContext, []sqltypes.Value) (sqltypes.Value, error) {
	return func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.Float); ok {
			return v, nil
		}
		x, err := floatArg(a[0])
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewFloat(f(x)), nil
	}
}

func datePartFn(f func(time.Time) int64) func(*ExecContext, []sqltypes.Value) (sqltypes.Value, error) {
	return func(_ *ExecContext, a []sqltypes.Value) (sqltypes.Value, error) {
		if v, ok := nullIfAnyNull(a, sqltypes.Int); ok {
			return v, nil
		}
		t, err := timeArg(a[0])
		if err != nil {
			return sqltypes.Value{}, err
		}
		return sqltypes.NewInt(f(t)), nil
	}
}

func timeArg(v sqltypes.Value) (time.Time, error) {
	c, err := sqltypes.Cast(v, sqltypes.DateTime)
	if err != nil {
		return time.Time{}, err
	}
	return c.Time(), nil
}

func (b *builder) compileScalarFunc(n *sqlparser.FuncCall, sc *scope) (exprFn, sqltypes.Type, error) {
	def, ok := scalarFuncs[n.Name]
	if !ok {
		return nil, 0, fmt.Errorf("engine: unknown function %s", n.Name)
	}
	b.noteExprOp(strings.ToLower(n.Name))
	if len(n.Args) < def.minArgs || (def.maxArgs >= 0 && len(n.Args) > def.maxArgs) {
		return nil, 0, fmt.Errorf("engine: %s takes %d..%d arguments, got %d",
			n.Name, def.minArgs, def.maxArgs, len(n.Args))
	}
	argFns := make([]exprFn, len(n.Args))
	argTypes := make([]sqltypes.Type, len(n.Args))
	for i, a := range n.Args {
		fn, t, err := b.compileExpr(a, sc)
		if err != nil {
			return nil, 0, err
		}
		argFns[i], argTypes[i] = fn, t
	}
	retT := def.retType(argTypes)
	eval := def.eval
	return func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
		args := make([]sqltypes.Value, len(argFns))
		for i, fn := range argFns {
			v, err := fn(ctx, ev)
			if err != nil {
				return v, err
			}
			args[i] = v
		}
		return eval(ctx, args)
	}, retT, nil
}
