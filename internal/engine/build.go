package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
)

const maxViewDepth = 64

// builder turns a query AST into a physical plan.
type builder struct {
	res            Resolver
	viewDepth      int
	tableOrder     []string
	tableSeen      map[string]bool
	colRefs        map[string]map[string]bool
	exprOps        map[string]int
	sawCorrelation bool
	pendingSubs    []Node
	hiddenSeq      int
}

func newBuilder(res Resolver) *builder {
	return &builder{
		res:       res,
		tableSeen: map[string]bool{},
		colRefs:   map[string]map[string]bool{},
		exprOps:   map[string]int{},
	}
}

// exprOpNames maps SQL arithmetic to the Table 4 vocabulary used in plan
// expression extraction.
var exprOpNames = map[string]string{
	"+": "ADD", "-": "SUB", "*": "MULT", "/": "DIV", "%": "MOD", "||": "CONCAT",
}

// noteExprOp records one expression operator occurrence during compilation.
// Because compilation sees the fully view-expanded tree, expressions inside
// referenced views are counted — matching the paper's plan-XML extraction.
func (b *builder) noteExprOp(name string) { b.exprOps[name]++ }

func (b *builder) noteTable(name string) {
	// Internal physical-table names (the catalog's hidden base tables) are
	// not user-visible objects; keep them out of plan metadata.
	if strings.HasPrefix(name, "~") {
		return
	}
	if !b.tableSeen[name] {
		b.tableSeen[name] = true
		b.tableOrder = append(b.tableOrder, name)
	}
}

func (b *builder) noteColumnRef(sc *scope, depth, idx int) {
	f := sc
	for depth > 0 && f != nil {
		f = f.outer
		depth--
	}
	if f == nil || idx >= len(f.cols) {
		return
	}
	c := f.cols[idx]
	if c.Source == "" {
		return
	}
	m := b.colRefs[c.Source]
	if m == nil {
		m = map[string]bool{}
		b.colRefs[c.Source] = m
	}
	m[c.Name] = true
}

func (b *builder) referencedColumns() map[string][]string {
	out := make(map[string][]string, len(b.colRefs))
	for t, cols := range b.colRefs {
		names := make([]string, 0, len(cols))
		for c := range cols {
			names = append(names, c)
		}
		sort.Strings(names)
		out[t] = names
	}
	return out
}

func (b *builder) drainSubs() []Node {
	subs := b.pendingSubs
	b.pendingSubs = nil
	return subs
}

// subplan is a compiled expression-level subquery.
type subplan struct {
	node       Node
	correlated bool
	// mu guards cache: predicate expressions containing uncorrelated
	// subqueries may be evaluated concurrently by parallel workers, and
	// holding the lock across the fill ensures the subquery still executes
	// exactly once per plan.
	mu    sync.Mutex
	cache *relation
}

func (s *subplan) run(ctx *ExecContext, ev *Env) (*relation, error) {
	if s.correlated {
		// Correlated subplans depend on the outer row and are never
		// cached; each evaluation is independent, so no lock is needed.
		rel, err := execNode(ctx, s.node, ev)
		if err != nil {
			return nil, err
		}
		// The expression consumes the subquery result immediately and drops
		// it; release its memory charge here so per-outer-row executions
		// don't accumulate in the live estimate. (The uncorrelated cache
		// below stays charged: it lives for the whole execution.)
		ctx.releaseRel(rel)
		return rel, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cache != nil {
		return s.cache, nil
	}
	rel, err := execNode(ctx, s.node, ev)
	if err != nil {
		return nil, err
	}
	s.cache = rel
	return rel, nil
}

func (b *builder) buildSubplan(q sqlparser.QueryExpr, sc *scope) (*subplan, error) {
	saved := b.sawCorrelation
	b.sawCorrelation = false
	node, err := b.buildQuery(q, sc)
	if err != nil {
		return nil, err
	}
	corr := b.sawCorrelation
	b.sawCorrelation = saved || corr
	b.pendingSubs = append(b.pendingSubs, node)
	return &subplan{node: node, correlated: corr}, nil
}

func (b *builder) buildQuery(q sqlparser.QueryExpr, outer *scope) (Node, error) {
	switch n := q.(type) {
	case *sqlparser.Select:
		return b.buildSelect(n, outer)
	case *sqlparser.SetOp:
		return b.buildSetOp(n, outer)
	case *sqlparser.With:
		return b.buildWith(n, outer)
	}
	return nil, fmt.Errorf("engine: unsupported query node %T", q)
}

// buildWith compiles a WITH query by layering the CTE definitions over the
// resolver for the duration of the body (and of later CTEs, which may
// reference earlier ones). CTEs expand inline, like views.
func (b *builder) buildWith(w *sqlparser.With, outer *scope) (Node, error) {
	saved := b.res
	defer func() { b.res = saved }()
	overlay := map[string]sqlparser.QueryExpr{}
	for _, cte := range w.CTEs {
		name := strings.ToLower(cte.Name)
		if _, dup := overlay[name]; dup {
			return nil, fmt.Errorf("engine: duplicate CTE name %q", cte.Name)
		}
		overlay[name] = cte.Query
	}
	b.res = cteResolver{overlay: overlay, next: saved}
	return b.buildQuery(w.Body, outer)
}

// cteResolver resolves CTE names before delegating to the base resolver.
type cteResolver struct {
	overlay map[string]sqlparser.QueryExpr
	next    Resolver
}

// ResolveDataset implements Resolver.
func (c cteResolver) ResolveDataset(name string) (Resolution, error) {
	if q, ok := c.overlay[strings.ToLower(name)]; ok {
		return Resolution{View: q}, nil
	}
	return c.next.ResolveDataset(name)
}

// ---------------------------------------------------------------- set ops

func (b *builder) buildSetOp(s *sqlparser.SetOp, outer *scope) (Node, error) {
	left, err := b.buildQuery(s.Left, outer)
	if err != nil {
		return nil, err
	}
	right, err := b.buildQuery(s.Right, outer)
	if err != nil {
		return nil, err
	}
	lc, rc := left.Props().Cols, right.Props().Cols
	if len(lc) != len(rc) {
		return nil, fmt.Errorf("engine: %s operands have different column counts (%d vs %d)",
			s.Kind, len(lc), len(rc))
	}
	// Output schema: left names, widened types, no binding.
	cols := make([]ColMeta, len(lc))
	for i := range lc {
		cols[i] = ColMeta{Name: lc[i].Name, Type: sqltypes.Widen(lc[i].Type, rc[i].Type)}
	}
	var node Node
	switch s.Kind {
	case UnionKind:
		cat := &concatenationNode{}
		cat.props = Props{PhysicalOp: "Concatenation", LogicalOp: "Union All", Cols: cols}
		cat.children = []Node{left, right}
		node = cat
		if !s.All {
			d := &sortNode{distinct: true}
			d.props = Props{PhysicalOp: "Sort", LogicalOp: "Distinct Sort", Cols: cols}
			for i := range cols {
				d.keys = append(d.keys, sortKey{idx: i})
			}
			d.children = []Node{cat}
			node = d
		}
	case IntersectKind, ExceptKind:
		h := &hashSetOpNode{anti: s.Kind == ExceptKind}
		logical := "Left Semi Join"
		if h.anti {
			logical = "Left Anti Semi Join"
		}
		h.props = Props{PhysicalOp: "Hash Match", LogicalOp: logical, Cols: cols}
		h.children = []Node{left, right}
		node = h
	}
	if len(s.OrderBy) > 0 {
		sc := &scope{cols: cols, outer: outer}
		srt := &sortNode{}
		srt.props = Props{PhysicalOp: "Sort", LogicalOp: "Sort", Cols: cols}
		for _, o := range s.OrderBy {
			key, err := b.setOpSortKey(o, cols, sc)
			if err != nil {
				return nil, err
			}
			srt.keys = append(srt.keys, key)
		}
		srt.children = append([]Node{node}, b.drainSubs()...)
		node = srt
	}
	return node, nil
}

// setOpSortKey resolves one ORDER BY item of a set operation: ordinal,
// output column name, or expression over the output columns.
func (b *builder) setOpSortKey(o sqlparser.OrderItem, cols []ColMeta, sc *scope) (sortKey, error) {
	if lit, ok := o.Expr.(*sqlparser.Literal); ok && lit.Val.Type() == sqltypes.Int {
		n := int(lit.Val.Int())
		if n < 1 || n > len(cols) {
			return sortKey{}, fmt.Errorf("engine: ORDER BY ordinal %d out of range", n)
		}
		return sortKey{idx: n - 1, desc: o.Desc}, nil
	}
	fn, _, err := b.compileExpr(o.Expr, sc)
	if err != nil {
		return sortKey{}, err
	}
	return sortKey{fn: fn, desc: o.Desc}, nil
}

// SetOpKind aliases for readability inside the builder.
const (
	UnionKind     = sqlparser.UnionOp
	IntersectKind = sqlparser.IntersectOp
	ExceptKind    = sqlparser.ExceptOp
)

// ---------------------------------------------------------------- FROM

// fromItem is one FROM-clause operand during join planning.
type fromItem struct {
	node     Node
	bindings map[string]bool
}

func (b *builder) buildSelect(sel *sqlparser.Select, outer *scope) (Node, error) {
	// ---- FROM ----
	var input Node
	pushable := map[string]*scanNode{} // binding -> scan eligible for WHERE pushdown
	var whereResidual []sqlparser.Expr

	if len(sel.From) == 0 {
		cs := &constantScanNode{}
		cs.props = Props{PhysicalOp: "Constant Scan", LogicalOp: "Constant Scan", EstRows: 1}
		input = cs
		if sel.Where != nil {
			whereResidual = splitConjuncts(sel.Where)
		}
	} else {
		items := make([]fromItem, 0, len(sel.From))
		for _, te := range sel.From {
			n, err := b.buildTableExpr(te, outer, pushable, true)
			if err != nil {
				return nil, err
			}
			items = append(items, fromItem{node: n, bindings: bindingSet(n.Props().Cols)})
		}
		var conjuncts []sqlparser.Expr
		if sel.Where != nil {
			conjuncts = splitConjuncts(sel.Where)
		}
		// Push single-binding conjuncts into eligible scans.
		var joinable []sqlparser.Expr
		for _, c := range conjuncts {
			if b.tryPushdown(c, pushable, outer) {
				continue
			}
			joinable = append(joinable, c)
		}
		var err error
		input, whereResidual, err = b.combineFromItems(items, joinable, outer)
		if err != nil {
			return nil, err
		}
	}

	if len(whereResidual) > 0 {
		var err error
		input, err = b.buildFilter(input, whereResidual, outer)
		if err != nil {
			return nil, err
		}
	}

	fromCols := input.Props().Cols
	fromScope := &scope{cols: fromCols, outer: outer}
	curScope := fromScope

	// ---- aggregation ----
	var aggCalls []*sqlparser.FuncCall
	for _, it := range sel.Items {
		if it.Expr != nil {
			collectAggCalls(it.Expr, &aggCalls)
		}
	}
	collectAggCalls(sel.Having, &aggCalls)
	for _, o := range sel.OrderBy {
		collectAggCalls(o.Expr, &aggCalls)
	}
	hasAgg := len(aggCalls) > 0 || len(sel.GroupBy) > 0

	byPtr := map[*sqlparser.FuncCall]sqlparser.Expr{}
	bySQL := map[string]sqlparser.Expr{}

	if hasAgg {
		var groupFns []exprFn
		var aggCols []ColMeta
		var sortKeys []sortKey
		for i, ge := range sel.GroupBy {
			fn, t, err := b.compileExpr(ge, fromScope)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("~g%d", i)
			if cr, ok := ge.(*sqlparser.ColumnRef); ok {
				name = cr.Name
			}
			groupFns = append(groupFns, fn)
			aggCols = append(aggCols, ColMeta{Name: name, Type: t})
			bySQL[ge.SQL()] = &sqlparser.ColumnRef{Name: name}
			sortKeys = append(sortKeys, sortKey{fn: fn})
		}
		var specs []aggSpec
		for i, fc := range aggCalls {
			spec, err := b.compileAggSpec(fc, fromScope)
			if err != nil {
				return nil, err
			}
			specs = append(specs, spec)
			name := fmt.Sprintf("~a%d", i)
			aggCols = append(aggCols, ColMeta{Name: name, Type: spec.outType})
			byPtr[fc] = &sqlparser.ColumnRef{Name: name}
		}
		subs := b.drainSubs()
		agg := &streamAggregateNode{groupFns: groupFns, specs: specs, scalar: len(sel.GroupBy) == 0}
		// Physical strategy, as SQL Server chooses: scalar aggregates and
		// group keys matching the clustered order stream directly; grouped
		// aggregation over unsorted input hashes ("Hash Match" with the
		// Aggregate logical op). Large grouped sorts (Sort + Stream
		// Aggregate) appear when an ORDER BY over the group keys follows.
		switch {
		case len(sel.GroupBy) == 0:
			agg.props = Props{PhysicalOp: "Stream Aggregate", LogicalOp: "Aggregate", Cols: aggCols}
		case groupOnLeadingScanColumn(input, sel.GroupBy):
			agg.props = Props{PhysicalOp: "Stream Aggregate", LogicalOp: "Aggregate", Cols: aggCols}
		case len(sel.OrderBy) > 0 && orderMatchesGroup(sel.OrderBy, sel.GroupBy):
			srt := &sortNode{keys: sortKeys}
			srt.props = Props{PhysicalOp: "Sort", LogicalOp: "Sort", Cols: fromCols}
			srt.children = []Node{input}
			input = srt
			agg.props = Props{PhysicalOp: "Stream Aggregate", LogicalOp: "Aggregate", Cols: aggCols}
		default:
			agg.props = Props{PhysicalOp: "Hash Match", LogicalOp: "Aggregate", Cols: aggCols}
		}
		agg.children = append([]Node{input}, subs...)
		input = agg
		curScope = &scope{cols: aggCols, outer: outer}
	}

	// ---- HAVING ----
	if sel.Having != nil {
		having := rewriteExpr(sel.Having, byPtr, bySQL)
		var err error
		input, err = b.buildFilter(input, splitConjuncts(having), outer)
		if err != nil {
			return nil, err
		}
		curScope = &scope{cols: input.Props().Cols, outer: outer}
	}

	// ---- window functions ----
	rewritten := make([]sqlparser.Expr, len(sel.Items))
	for i, it := range sel.Items {
		if it.Expr != nil {
			rewritten[i] = rewriteExpr(it.Expr, byPtr, bySQL)
		}
	}
	orderExprs := make([]sqlparser.Expr, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		orderExprs[i] = rewriteExpr(o.Expr, byPtr, bySQL)
	}

	var winCalls []*sqlparser.FuncCall
	for _, e := range rewritten {
		collectWindowCalls(e, &winCalls)
	}
	for _, e := range orderExprs {
		collectWindowCalls(e, &winCalls)
	}
	if len(winCalls) > 0 {
		var err error
		input, err = b.buildWindows(input, winCalls, curScope, outer, byPtr)
		if err != nil {
			return nil, err
		}
		curScope = &scope{cols: input.Props().Cols, outer: outer}
		for i, e := range rewritten {
			if e != nil {
				rewritten[i] = rewriteExpr(e, byPtr, nil)
			}
		}
		for i, e := range orderExprs {
			orderExprs[i] = rewriteExpr(e, byPtr, nil)
		}
	}

	// ---- projection ----
	var outItems []projItem
	for i, it := range sel.Items {
		if it.Star {
			if hasAgg {
				return nil, fmt.Errorf("engine: SELECT * cannot be combined with aggregation")
			}
			before := len(outItems)
			for _, c := range fromCols {
				if it.StarQualifier != "" && !strings.EqualFold(c.Binding, it.StarQualifier) {
					continue
				}
				outItems = append(outItems, projItem{
					expr: &sqlparser.ColumnRef{Table: c.Binding, Name: c.Name},
				})
			}
			if it.StarQualifier != "" && len(outItems) == before {
				return nil, fmt.Errorf("engine: unknown table %q in %s.*", it.StarQualifier, it.StarQualifier)
			}
			continue
		}
		outItems = append(outItems, projItem{expr: rewritten[i], alias: it.Alias})
	}
	if len(outItems) == 0 {
		return nil, fmt.Errorf("engine: empty select list")
	}

	fns := make([]exprFn, 0, len(outItems))
	outCols := make([]ColMeta, 0, len(outItems))
	computed := false
	for i, it := range outItems {
		fn, t, err := b.compileExpr(it.expr, curScope)
		if err != nil {
			return nil, err
		}
		name := it.alias
		if name == "" {
			if cr, ok := it.expr.(*sqlparser.ColumnRef); ok {
				name = cr.Name
			} else {
				name = fmt.Sprintf("Column%d", i+1)
			}
		}
		if _, plain := it.expr.(*sqlparser.ColumnRef); !plain {
			computed = true
		}
		fns = append(fns, fn)
		outCols = append(outCols, ColMeta{Name: name, Type: t})
	}
	visible := len(outCols)

	// ---- ORDER BY key resolution (may add hidden columns) ----
	itemExprs := make([]sqlparser.Expr, len(outItems))
	for i, it := range outItems {
		itemExprs[i] = it.expr
	}
	var orderKeys []sortKey
	for i, o := range sel.OrderBy {
		key, hiddenFn, hiddenCol, err := b.resolveOrderKey(orderExprs[i], o.Desc, itemExprs, outCols[:visible], curScope)
		if err != nil {
			return nil, err
		}
		if hiddenFn != nil {
			key.idx = len(outCols)
			fns = append(fns, hiddenFn)
			outCols = append(outCols, hiddenCol)
		}
		orderKeys = append(orderKeys, key)
	}

	proj := &projectNode{fns: fns}
	op := ""
	if computed || len(outCols) > visible {
		op = "Compute Scalar"
	}
	if op == "" {
		// Pure column rearrangement: every item is a plain column
		// reference. Record the source indexes so the executor can gather
		// columns directly instead of evaluating closures per row; any
		// reference that does not resolve locally (correlated) disables it.
		srcCols := make([]int, 0, len(outItems))
		for _, it := range outItems {
			cr := it.expr.(*sqlparser.ColumnRef)
			depth, idx, _, err := curScope.resolve(cr.Table, cr.Name)
			if err != nil || depth != 0 {
				srcCols = nil
				break
			}
			srcCols = append(srcCols, idx)
		}
		proj.srcCols = srcCols
	}
	proj.props = Props{PhysicalOp: op, LogicalOp: "Compute Scalar", Cols: outCols}
	proj.children = append([]Node{input}, b.drainSubs()...)
	var node Node = proj

	// ---- DISTINCT ----
	if sel.Distinct {
		d := &sortNode{distinct: true, distinctPrefix: visible}
		d.props = Props{PhysicalOp: "Sort", LogicalOp: "Distinct Sort", Cols: outCols}
		for i := 0; i < visible; i++ {
			d.keys = append(d.keys, sortKey{idx: i})
		}
		d.children = []Node{node}
		node = d
	}

	// ---- ORDER BY ----
	if len(orderKeys) > 0 {
		srt := &sortNode{keys: orderKeys, trimTo: visible}
		srt.props = Props{PhysicalOp: "Sort", LogicalOp: "Sort", Cols: outCols[:visible]}
		srt.children = []Node{node}
		node = srt
	} else if len(outCols) > visible {
		// Should not happen (hidden columns only come from ORDER BY), but
		// never leak them.
		node.Props().Cols = outCols[:visible]
	}

	// ---- TOP ----
	if sel.Top != nil {
		lit, ok := sel.Top.Count.(*sqlparser.Literal)
		if !ok || lit.Val.Type() != sqltypes.Int {
			return nil, fmt.Errorf("engine: TOP requires an integer literal")
		}
		top := &topNode{count: lit.Val.Int(), percent: sel.Top.Percent}
		top.props = Props{PhysicalOp: "Top", LogicalOp: "Top", Cols: node.Props().Cols}
		top.children = []Node{node}
		node = top
	}
	// Safety net: attach any stray subplans so they appear in the tree for
	// plan accounting. Operators address their inputs by fixed index, so
	// extra children are never executed directly.
	if stray := b.drainSubs(); len(stray) > 0 {
		switch nn := node.(type) {
		case *topNode:
			nn.children = append(nn.children, stray...)
		case *sortNode:
			nn.children = append(nn.children, stray...)
		case *projectNode:
			nn.children = append(nn.children, stray...)
		}
	}
	return node, nil
}

// projItem is one resolved entry of the projection list.
type projItem struct {
	expr  sqlparser.Expr
	alias string
}

// groupOnLeadingScanColumn reports whether the aggregation input is a
// clustered scan whose leading (sort-order) column is the single group
// key, so a Stream Aggregate needs no Sort.
func groupOnLeadingScanColumn(input Node, groupBy []sqlparser.Expr) bool {
	scan, ok := input.(*scanNode)
	if !ok || len(groupBy) != 1 || len(scan.props.Cols) == 0 {
		return false
	}
	cr, ok := groupBy[0].(*sqlparser.ColumnRef)
	if !ok {
		return false
	}
	lead := scan.props.Cols[0]
	if !strings.EqualFold(cr.Name, lead.Name) {
		return false
	}
	return cr.Table == "" || strings.EqualFold(cr.Table, lead.Binding)
}

// orderMatchesGroup reports whether the first ORDER BY key is one of the
// group expressions, making a pre-aggregation Sort useful for both.
func orderMatchesGroup(orderBy []sqlparser.OrderItem, groupBy []sqlparser.Expr) bool {
	if len(orderBy) == 0 {
		return false
	}
	first := orderBy[0].Expr.SQL()
	for _, g := range groupBy {
		if g.SQL() == first {
			return true
		}
	}
	return false
}

// resolveOrderKey maps one ORDER BY expression to a sort key over the
// projection output: ordinal, select alias, matching select expression, or
// a hidden extra column computed from the pre-projection scope.
func (b *builder) resolveOrderKey(e sqlparser.Expr, desc bool, itemExprs []sqlparser.Expr, visibleCols []ColMeta, preScope *scope) (sortKey, exprFn, ColMeta, error) {
	if lit, ok := e.(*sqlparser.Literal); ok && lit.Val.Type() == sqltypes.Int {
		n := int(lit.Val.Int())
		if n < 1 || n > len(visibleCols) {
			return sortKey{}, nil, ColMeta{}, fmt.Errorf("engine: ORDER BY ordinal %d out of range", n)
		}
		return sortKey{idx: n - 1, desc: desc}, nil, ColMeta{}, nil
	}
	if cr, ok := e.(*sqlparser.ColumnRef); ok && cr.Table == "" {
		for i, c := range visibleCols {
			if strings.EqualFold(c.Name, cr.Name) {
				return sortKey{idx: i, desc: desc}, nil, ColMeta{}, nil
			}
		}
	}
	sql := e.SQL()
	for i, ie := range itemExprs {
		if ie != nil && ie.SQL() == sql && i < len(visibleCols) {
			return sortKey{idx: i, desc: desc}, nil, ColMeta{}, nil
		}
	}
	fn, t, err := b.compileExpr(e, preScope)
	if err != nil {
		return sortKey{}, nil, ColMeta{}, err
	}
	b.hiddenSeq++
	col := ColMeta{Name: fmt.Sprintf("~s%d", b.hiddenSeq), Type: t}
	return sortKey{desc: desc}, fn, col, nil
}

func (b *builder) buildFilter(input Node, conjuncts []sqlparser.Expr, outer *scope) (Node, error) {
	sc := &scope{cols: input.Props().Cols, outer: outer}
	var pred exprFn
	var filters []string
	for _, c := range conjuncts {
		fn, _, err := b.compileExpr(c, sc)
		if err != nil {
			return nil, err
		}
		filters = append(filters, c.SQL())
		if pred == nil {
			pred = fn
			continue
		}
		prev := pred
		pred = func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
			v, err := prev(ctx, ev)
			if err != nil {
				return v, err
			}
			if truth(v) != sqltypes.True {
				return v, nil
			}
			return fn(ctx, ev)
		}
	}
	f := &filterNode{pred: pred}
	f.props = Props{PhysicalOp: "Filter", LogicalOp: "Filter", Cols: input.Props().Cols, Filters: filters}
	f.children = append([]Node{input}, b.drainSubs()...)
	return f, nil
}

// ---------------------------------------------------------------- windows

func (b *builder) buildWindows(input Node, calls []*sqlparser.FuncCall, cur *scope, outer *scope, byPtr map[*sqlparser.FuncCall]sqlparser.Expr) (Node, error) {
	// Group calls by window specification.
	type group struct {
		spec  *sqlparser.WindowSpec
		calls []*sqlparser.FuncCall
	}
	var groups []*group
	bySpec := map[string]*group{}
	for _, fc := range calls {
		if _, done := byPtr[fc]; done {
			continue
		}
		key := fc.Over.SQL()
		g := bySpec[key]
		if g == nil {
			g = &group{spec: fc.Over}
			bySpec[key] = g
			groups = append(groups, g)
		}
		g.calls = append(g.calls, fc)
		byPtr[fc] = nil // placeholder; filled below
	}
	node := input
	winSeq := 0
	for _, g := range groups {
		inCols := node.Props().Cols
		sc := &scope{cols: inCols, outer: outer}
		var partFns []exprFn
		var sortKeys []sortKey
		for _, pe := range g.spec.PartitionBy {
			fn, _, err := b.compileExpr(pe, sc)
			if err != nil {
				return nil, err
			}
			partFns = append(partFns, fn)
			sortKeys = append(sortKeys, sortKey{fn: fn})
		}
		var orderKeys []sortKey
		for _, o := range g.spec.OrderBy {
			fn, _, err := b.compileExpr(o.Expr, sc)
			if err != nil {
				return nil, err
			}
			k := sortKey{fn: fn, desc: o.Desc}
			orderKeys = append(orderKeys, k)
			sortKeys = append(sortKeys, k)
		}
		subs := b.drainSubs()
		if len(sortKeys) > 0 {
			srt := &sortNode{keys: sortKeys}
			srt.props = Props{PhysicalOp: "Sort", LogicalOp: "Sort", Cols: inCols}
			srt.children = []Node{node}
			node = srt
		}
		seg := &segmentNode{}
		seg.props = Props{PhysicalOp: "Segment", LogicalOp: "Segment", Cols: inCols}
		seg.children = []Node{node}
		node = seg

		outCols := append([]ColMeta(nil), inCols...)
		var wcalls []windowCall
		anyRanking, anyAgg := false, false
		for _, fc := range g.calls {
			wc := windowCall{name: fc.Name}
			switch {
			case isRankingName(fc.Name):
				anyRanking = true
				wc.outType = sqltypes.Int
				if fc.Name == "NTILE" {
					if len(fc.Args) != 1 {
						return nil, fmt.Errorf("engine: NTILE takes one argument")
					}
					fn, _, err := b.compileExpr(fc.Args[0], sc)
					if err != nil {
						return nil, err
					}
					wc.ntileFn = fn
				} else if len(fc.Args) != 0 {
					return nil, fmt.Errorf("engine: %s takes no arguments", fc.Name)
				}
				if len(g.spec.OrderBy) == 0 {
					return nil, fmt.Errorf("engine: %s requires OVER (... ORDER BY ...)", fc.Name)
				}
			case isAggregateName(fc.Name):
				anyAgg = true
				if fc.Star {
					wc.outType = sqltypes.Int
				} else {
					if len(fc.Args) != 1 {
						return nil, fmt.Errorf("engine: windowed %s takes one argument", fc.Name)
					}
					fn, t, err := b.compileExpr(fc.Args[0], sc)
					if err != nil {
						return nil, err
					}
					wc.argFn = fn
					wc.outType = aggOutType(fc.Name, t)
				}
			default:
				return nil, fmt.Errorf("engine: %s is not a window function", fc.Name)
			}
			name := fmt.Sprintf("~w%d", winSeq)
			winSeq++
			outCols = append(outCols, ColMeta{Name: name, Type: wc.outType})
			byPtr[fc] = &sqlparser.ColumnRef{Name: name}
			wcalls = append(wcalls, wc)
		}
		if anyAgg && !anyRanking {
			spool := &windowSpoolNode{}
			spool.props = Props{PhysicalOp: "Window Spool", LogicalOp: "Window Spool", Cols: inCols}
			spool.children = []Node{node}
			node = spool
		}
		w := &windowProjectNode{partFns: partFns, orderKeys: orderKeys, calls: wcalls, inCols: inCols}
		op := "Sequence Project"
		logical := "Compute Scalar"
		if anyAgg && !anyRanking {
			op = "Stream Aggregate"
			logical = "Window Aggregate"
		}
		w.props = Props{PhysicalOp: op, LogicalOp: logical, Cols: outCols}
		w.children = append([]Node{node}, subs...)
		node = w
	}
	return node, nil
}

// ---------------------------------------------------------------- FROM items

func bindingSet(cols []ColMeta) map[string]bool {
	out := map[string]bool{}
	for _, c := range cols {
		if c.Binding != "" {
			out[strings.ToLower(c.Binding)] = true
		}
	}
	return out
}

func (b *builder) buildTableExpr(te sqlparser.TableExpr, outer *scope, pushable map[string]*scanNode, canPush bool) (Node, error) {
	switch n := te.(type) {
	case *sqlparser.TableName:
		return b.buildTableName(n, outer, pushable, canPush)
	case *sqlparser.SubqueryTable:
		node, err := b.buildQuery(n.Query, nil)
		if err != nil {
			return nil, err
		}
		relabel(node, n.Alias)
		return node, nil
	case *sqlparser.JoinExpr:
		return b.buildJoin(n, outer, pushable, canPush)
	}
	return nil, fmt.Errorf("engine: unsupported table expression %T", te)
}

// relabel rebinds a node's output columns to a new binding name (the alias
// of a derived table or expanded view).
func relabel(node Node, binding string) {
	p := node.Props()
	cols := make([]ColMeta, len(p.Cols))
	for i, c := range p.Cols {
		c.Binding = binding
		cols[i] = c
	}
	p.Cols = cols
}

func (b *builder) buildTableName(tn *sqlparser.TableName, outer *scope, pushable map[string]*scanNode, canPush bool) (Node, error) {
	res, err := b.res.ResolveDataset(tn.Name)
	if err != nil {
		return nil, err
	}
	b.noteTable(tn.Name)
	binding := tn.Binding()
	if i := strings.LastIndexByte(binding, '.'); i >= 0 && tn.Alias == "" {
		binding = binding[i+1:]
	}
	if res.Table != nil {
		tbl := res.Table
		schema := tbl.Schema()
		cols := make([]ColMeta, len(schema))
		for i, c := range schema {
			cols[i] = ColMeta{Binding: binding, Name: c.Name, Type: c.Type, Source: tn.Name}
		}
		sc := &scanNode{table: tbl}
		sc.props = Props{
			PhysicalOp: "Clustered Index Scan",
			LogicalOp:  "Clustered Index Scan",
			Object:     tn.Name,
			Cols:       cols,
			EstRows:    float64(tbl.NumRows()),
			RowSize:    tbl.RowSizeBytes(),
		}
		if canPush {
			pushable[strings.ToLower(binding)] = sc
		}
		return sc, nil
	}
	// View. Trivial wrapper chains (SELECT * FROM x, the shape every
	// uploaded dataset has, §3.2) are flattened to a direct scan of the
	// underlying physical table, so predicate pushdown and clustered-index
	// seeks work through them exactly as the backend's view expansion did.
	view := res.View
	for hop := 0; hop < maxViewDepth; hop++ {
		inner, ok := trivialWrapperTarget(view)
		if !ok {
			break
		}
		innerRes, err := b.res.ResolveDataset(inner.Name)
		if err != nil {
			break // let full expansion surface the error
		}
		if innerRes.Table != nil {
			tbl := innerRes.Table
			schema := tbl.Schema()
			cols := make([]ColMeta, len(schema))
			for i, c := range schema {
				cols[i] = ColMeta{Binding: binding, Name: c.Name, Type: c.Type, Source: tn.Name}
			}
			sc := &scanNode{table: tbl}
			sc.props = Props{
				PhysicalOp: "Clustered Index Scan",
				LogicalOp:  "Clustered Index Scan",
				Object:     tn.Name,
				Cols:       cols,
				EstRows:    float64(tbl.NumRows()),
				RowSize:    tbl.RowSizeBytes(),
			}
			if canPush {
				pushable[strings.ToLower(binding)] = sc
			}
			return sc, nil
		}
		b.noteTable(inner.Name)
		view = innerRes.View
	}
	b.viewDepth++
	if b.viewDepth > maxViewDepth {
		return nil, fmt.Errorf("engine: view nesting exceeds %d (cycle?) at %q", maxViewDepth, tn.Name)
	}
	node, err := b.buildQuery(view, nil)
	b.viewDepth--
	if err != nil {
		return nil, fmt.Errorf("engine: expanding view %q: %w", tn.Name, err)
	}
	relabel(node, binding)
	return node, nil
}

// trivialWrapperTarget recognizes the wrapper-view shape `SELECT * FROM t`
// with no other clauses, returning the inner table reference.
func trivialWrapperTarget(q sqlparser.QueryExpr) (*sqlparser.TableName, bool) {
	sel, ok := q.(*sqlparser.Select)
	if !ok || sel.Distinct || sel.Top != nil || sel.Where != nil ||
		len(sel.GroupBy) > 0 || sel.Having != nil || len(sel.OrderBy) > 0 {
		return nil, false
	}
	if len(sel.Items) != 1 || !sel.Items[0].Star || sel.Items[0].StarQualifier != "" {
		return nil, false
	}
	if len(sel.From) != 1 {
		return nil, false
	}
	tn, ok := sel.From[0].(*sqlparser.TableName)
	return tn, ok
}

func (b *builder) buildJoin(j *sqlparser.JoinExpr, outer *scope, pushable map[string]*scanNode, canPush bool) (Node, error) {
	leftPush := canPush && j.Kind != sqlparser.RightJoin && j.Kind != sqlparser.FullJoin
	rightPush := canPush && j.Kind != sqlparser.LeftJoin && j.Kind != sqlparser.FullJoin
	left, err := b.buildTableExpr(j.Left, outer, pushable, leftPush)
	if err != nil {
		return nil, err
	}
	right, err := b.buildTableExpr(j.Right, outer, pushable, rightPush)
	if err != nil {
		return nil, err
	}
	return b.joinNodes(left, right, j.Kind, j.On, outer)
}

// joinNodes builds the physical join for left ⋈ right with condition on.
func (b *builder) joinNodes(left, right Node, kind sqlparser.JoinKind, on sqlparser.Expr, outer *scope) (Node, error) {
	lc, rc := left.Props().Cols, right.Props().Cols
	outCols := append(append([]ColMeta(nil), lc...), rc...)
	side := joinInner
	switch kind {
	case sqlparser.LeftJoin:
		side = joinLeftOuter
	case sqlparser.RightJoin:
		side = joinRightOuter
	case sqlparser.FullJoin:
		side = joinFullOuter
	}
	lBind, rBind := bindingSet(lc), bindingSet(rc)
	var eqLeft, eqRight []sqlparser.Expr
	var residual []sqlparser.Expr
	var filters []string
	if on != nil {
		for _, c := range splitConjuncts(on) {
			filters = append(filters, c.SQL())
			l, r, ok := equiSides(c, lBind, rBind)
			if ok {
				eqLeft = append(eqLeft, l)
				eqRight = append(eqRight, r)
			} else {
				residual = append(residual, c)
			}
		}
	}
	lScope := &scope{cols: lc, outer: outer}
	rScope := &scope{cols: rc, outer: outer}
	jScope := &scope{cols: outCols, outer: outer}

	if len(eqLeft) > 0 {
		// Merge Join when both sides are clustered scans sorted on the
		// single join column (the leading clustered-key column).
		if side == joinInner && len(eqLeft) == 1 && len(residual) == 0 {
			if li, ok := leadingScanKey(left, eqLeft[0], lScope); ok {
				if ri, ok := leadingScanKey(right, eqRight[0], rScope); ok {
					m := &mergeJoinNode{leftIdx: li, rightIdx: ri}
					m.props = Props{PhysicalOp: "Merge Join", LogicalOp: "Inner Join", Cols: outCols, Filters: filters}
					m.children = []Node{left, right}
					return m, nil
				}
			}
		}
		lk := make([]exprFn, len(eqLeft))
		rk := make([]exprFn, len(eqRight))
		for i := range eqLeft {
			fn, _, err := b.compileExpr(eqLeft[i], lScope)
			if err != nil {
				return nil, err
			}
			lk[i] = fn
			fn, _, err = b.compileExpr(eqRight[i], rScope)
			if err != nil {
				return nil, err
			}
			rk[i] = fn
		}
		var res exprFn
		if len(residual) > 0 {
			var rerr error
			res, rerr = b.compilePredicate(residual, jScope)
			if rerr != nil {
				return nil, rerr
			}
		}
		h := &hashMatchNode{side: side, leftKeys: lk, rightKeys: rk, residual: res}
		h.props = Props{PhysicalOp: "Hash Match", LogicalOp: joinLogical(side), Cols: outCols, Filters: filters}
		h.children = append([]Node{left, right}, b.drainSubs()...)
		return h, nil
	}

	nl := &nestedLoopsNode{side: side}
	if on != nil {
		pred, err := b.compilePredicate(splitConjuncts(on), jScope)
		if err != nil {
			return nil, err
		}
		nl.pred = pred
	}
	nl.props = Props{PhysicalOp: "Nested Loops", LogicalOp: joinLogical(side), Cols: outCols, Filters: filters}
	nl.children = append([]Node{left, right}, b.drainSubs()...)
	return nl, nil
}

func joinLogical(side joinSide) string {
	switch side {
	case joinLeftOuter:
		return "Left Outer Join"
	case joinRightOuter:
		return "Right Outer Join"
	case joinFullOuter:
		return "Full Outer Join"
	default:
		return "Inner Join"
	}
}

// compilePredicate ANDs a conjunct list into one exprFn.
func (b *builder) compilePredicate(conjuncts []sqlparser.Expr, sc *scope) (exprFn, error) {
	var pred exprFn
	for _, c := range conjuncts {
		fn, _, err := b.compileExpr(c, sc)
		if err != nil {
			return nil, err
		}
		if pred == nil {
			pred = fn
			continue
		}
		prev := pred
		pred = func(ctx *ExecContext, ev *Env) (sqltypes.Value, error) {
			v, err := prev(ctx, ev)
			if err != nil {
				return v, err
			}
			if truth(v) != sqltypes.True {
				return v, nil
			}
			return fn(ctx, ev)
		}
	}
	return pred, nil
}

// equiSides decides whether conjunct c is an equality whose two sides
// reference disjoint halves of a join, returning the side-local
// expressions in (left, right) order.
func equiSides(c sqlparser.Expr, lBind, rBind map[string]bool) (sqlparser.Expr, sqlparser.Expr, bool) {
	bin, ok := c.(*sqlparser.Binary)
	if !ok || bin.Op != "=" {
		return nil, nil, false
	}
	if exprHasSubquery(bin.L) || exprHasSubquery(bin.R) {
		return nil, nil, false
	}
	lRefs := exprBindings(bin.L)
	rRefs := exprBindings(bin.R)
	if len(lRefs) == 0 || len(rRefs) == 0 {
		return nil, nil, false
	}
	if subsetOf(lRefs, lBind) && subsetOf(rRefs, rBind) {
		return bin.L, bin.R, true
	}
	if subsetOf(lRefs, rBind) && subsetOf(rRefs, lBind) {
		return bin.R, bin.L, true
	}
	return nil, nil, false
}

func subsetOf(refs map[string]bool, set map[string]bool) bool {
	for r := range refs {
		if !set[r] {
			return false
		}
	}
	return true
}

// exprBindings returns the lower-cased table qualifiers referenced by e.
// Unqualified references are reported under the pseudo-binding "" so the
// caller can treat them conservatively.
func exprBindings(e sqlparser.Expr) map[string]bool {
	out := map[string]bool{}
	var walk func(x sqlparser.Expr)
	walk = func(x sqlparser.Expr) {
		switch n := x.(type) {
		case nil:
			return
		case *sqlparser.ColumnRef:
			out[strings.ToLower(n.Table)] = true
		case *sqlparser.Unary:
			walk(n.X)
		case *sqlparser.Binary:
			walk(n.L)
			walk(n.R)
		case *sqlparser.FuncCall:
			for _, a := range n.Args {
				walk(a)
			}
		case *sqlparser.CaseExpr:
			walk(n.Operand)
			for _, w := range n.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(n.Else)
		case *sqlparser.CastExpr:
			walk(n.X)
		case *sqlparser.IsNullExpr:
			walk(n.X)
		case *sqlparser.InExpr:
			walk(n.X)
			for _, i := range n.List {
				walk(i)
			}
		case *sqlparser.BetweenExpr:
			walk(n.X)
			walk(n.Lo)
			walk(n.Hi)
		case *sqlparser.LikeExpr:
			walk(n.X)
			walk(n.Pattern)
		}
	}
	walk(e)
	return out
}

func exprHasSubquery(e sqlparser.Expr) bool {
	found := false
	var walk func(x sqlparser.Expr)
	walk = func(x sqlparser.Expr) {
		switch n := x.(type) {
		case nil:
			return
		case *sqlparser.SubqueryExpr, *sqlparser.ExistsExpr:
			found = true
		case *sqlparser.InExpr:
			if n.Query != nil {
				found = true
			}
			walk(n.X)
			for _, i := range n.List {
				walk(i)
			}
		case *sqlparser.Unary:
			walk(n.X)
		case *sqlparser.Binary:
			walk(n.L)
			walk(n.R)
		case *sqlparser.FuncCall:
			for _, a := range n.Args {
				walk(a)
			}
		case *sqlparser.CaseExpr:
			walk(n.Operand)
			for _, w := range n.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(n.Else)
		case *sqlparser.CastExpr:
			walk(n.X)
		case *sqlparser.IsNullExpr:
			walk(n.X)
		case *sqlparser.BetweenExpr:
			walk(n.X)
			walk(n.Lo)
			walk(n.Hi)
		case *sqlparser.LikeExpr:
			walk(n.X)
			walk(n.Pattern)
		}
	}
	walk(e)
	return found
}

// leadingScanKey reports whether node is a clustered scan whose leading
// column is exactly the join key expression, returning its column index.
func leadingScanKey(node Node, key sqlparser.Expr, sc *scope) (int, bool) {
	scan, ok := node.(*scanNode)
	if !ok || scan.seek != nil || len(scan.preds) > 0 {
		return 0, false
	}
	cr, ok := key.(*sqlparser.ColumnRef)
	if !ok {
		return 0, false
	}
	cols := scan.props.Cols
	if len(cols) == 0 {
		return 0, false
	}
	if !strings.EqualFold(cols[0].Name, cr.Name) {
		return 0, false
	}
	if cr.Table != "" && !strings.EqualFold(cols[0].Binding, cr.Table) {
		return 0, false
	}
	return 0, true
}

// tryPushdown pushes a WHERE conjunct into a single eligible scan,
// upgrading it to a seek when the predicate is sargable on the leading
// clustered-key column. Returns true when the conjunct was consumed.
func (b *builder) tryPushdown(c sqlparser.Expr, pushable map[string]*scanNode, outer *scope) bool {
	if exprHasSubquery(c) {
		return false
	}
	var aggs []*sqlparser.FuncCall
	collectAggCalls(c, &aggs)
	if len(aggs) > 0 {
		return false
	}
	var wins []*sqlparser.FuncCall
	collectWindowCalls(c, &wins)
	if len(wins) > 0 {
		return false
	}
	refs := exprBindings(c)
	var target *scanNode
	var targetBinding string
	for r := range refs {
		if r == "" {
			// Unqualified: resolvable only if exactly one pushable scan has
			// the column; be conservative when several scans exist.
			if len(pushable) != 1 {
				return false
			}
			continue
		}
		sc, ok := pushable[r]
		if !ok {
			return false
		}
		if target != nil && target != sc {
			return false
		}
		target = sc
		targetBinding = r
	}
	if target == nil {
		if len(pushable) != 1 {
			return false
		}
		for bind, sc := range pushable {
			target, targetBinding = sc, bind
		}
	}
	_ = targetBinding
	scanScope := &scope{cols: target.props.Cols, outer: outer}
	// Verify every depth-0 reference resolves inside the scan.
	fn, _, err := b.compileExpr(c, scanScope)
	if err != nil {
		b.pendingSubs = nil
		return false
	}
	// Sargable on the leading clustered column → seek.
	if target.seek == nil {
		if si, ok := sargableSeek(c, target.props.Cols); ok {
			target.seek = si
			target.props.PhysicalOp = "Clustered Index Seek"
			target.props.LogicalOp = "Clustered Index Seek"
			target.props.Filters = append(target.props.Filters, c.SQL())
			// Update the estimate for the seek selectivity.
			sel := 0.1
			if si.op != "=" {
				sel = 0.3
			}
			target.props.EstRows *= sel
			return true
		}
	}
	// Kernel-form conjuncts extend the scan's vectorizable prefix; once a
	// conjunct fails to extract, later ones stay closures too so residual
	// evaluation preserves the original conjunct order (and with it error
	// ordering).
	if target.nVec == len(target.preds) {
		if vps, ok := extractVecPreds(c, target.props.Cols); ok {
			target.vecPreds = append(target.vecPreds, vps...)
			target.nVec++
		}
	}
	target.preds = append(target.preds, fn)
	target.props.Filters = append(target.props.Filters, c.SQL())
	target.props.EstRows *= 0.3
	return true
}

// sargableSeek recognizes `leadingCol cmp literal` (either side order) and
// returns the seek descriptor. A seek binary-searches the clustered order,
// so it is only valid when the literal's comparison semantics agree with
// that order: numeric literals against numeric columns, string literals
// against string columns, and date-parsing strings against datetime
// columns. Anything else (e.g. a numeric literal probing a string column,
// where comparison coerces numerically but the rows sort lexically) must
// run as a scan predicate.
func sargableSeek(c sqlparser.Expr, cols []ColMeta) (*seekInfo, bool) {
	bin, ok := c.(*sqlparser.Binary)
	if !ok {
		return nil, false
	}
	switch bin.Op {
	case "=", "<", "<=", ">", ">=":
	default:
		return nil, false
	}
	if len(cols) == 0 {
		return nil, false
	}
	matchCol := func(e sqlparser.Expr) bool {
		cr, ok := e.(*sqlparser.ColumnRef)
		if !ok || !strings.EqualFold(cr.Name, cols[0].Name) {
			return false
		}
		return cr.Table == "" || strings.EqualFold(cr.Table, cols[0].Binding)
	}
	if lit, ok := bin.R.(*sqlparser.Literal); ok && matchCol(bin.L) {
		if v, ok := seekValue(lit.Val, cols[0].Type); ok {
			return &seekInfo{op: bin.Op, val: v}, true
		}
		return nil, false
	}
	if lit, ok := bin.L.(*sqlparser.Literal); ok && matchCol(bin.R) {
		if v, ok := seekValue(lit.Val, cols[0].Type); ok {
			return &seekInfo{op: flipCmp(bin.Op), val: v}, true
		}
	}
	return nil, false
}

// seekValue converts a literal into a probe value whose SortCompare
// ordering against colType values matches SQL comparison semantics,
// reporting false when no such conversion exists.
func seekValue(lit sqltypes.Value, colType sqltypes.Type) (sqltypes.Value, bool) {
	if lit.IsNull() {
		return lit, false // NULL comparisons never match; not seekable
	}
	switch colType {
	case sqltypes.Int, sqltypes.Float:
		if lit.IsNumeric() {
			return lit, true
		}
		if lit.Type() == sqltypes.String {
			if v, err := sqltypes.Cast(lit, sqltypes.Float); err == nil {
				return v, true
			}
		}
	case sqltypes.String:
		if lit.Type() == sqltypes.String {
			return lit, true
		}
	case sqltypes.DateTime:
		if lit.Type() == sqltypes.DateTime {
			return lit, true
		}
		if lit.Type() == sqltypes.String {
			if v, err := sqltypes.Cast(lit, sqltypes.DateTime); err == nil {
				return v, true
			}
		}
	case sqltypes.Bool:
		if lit.IsNumeric() {
			return lit, true
		}
	}
	return sqltypes.Value{}, false
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op
	}
}

// combineFromItems joins comma-separated FROM items, using WHERE equality
// conjuncts as hash-join conditions where possible; leftovers are returned
// for a Filter above the join tree.
func (b *builder) combineFromItems(items []fromItem, conjuncts []sqlparser.Expr, outer *scope) (Node, []sqlparser.Expr, error) {
	if len(items) == 1 {
		return items[0].node, conjuncts, nil
	}
	pending := append([]sqlparser.Expr(nil), conjuncts...)
	for len(items) > 1 {
		joined := false
		for ci, c := range pending {
			for i := 0; i < len(items) && !joined; i++ {
				for j := i + 1; j < len(items) && !joined; j++ {
					l, r, ok := equiSides(c, items[i].bindings, items[j].bindings)
					if !ok {
						continue
					}
					node, err := b.joinNodes(items[i].node, items[j].node, sqlparser.InnerJoin,
						&sqlparser.Binary{Op: "=", L: l, R: r}, outer)
					if err != nil {
						return nil, nil, err
					}
					merged := fromItem{node: node, bindings: unionSets(items[i].bindings, items[j].bindings)}
					items = append(items[:j], items[j+1:]...)
					items[i] = merged
					pending = append(pending[:ci], pending[ci+1:]...)
					joined = true
				}
			}
			if joined {
				break
			}
		}
		if joined {
			continue
		}
		// No linking predicate: cross join the first two items.
		node, err := b.joinNodes(items[0].node, items[1].node, sqlparser.CrossJoin, nil, outer)
		if err != nil {
			return nil, nil, err
		}
		merged := fromItem{node: node, bindings: unionSets(items[0].bindings, items[1].bindings)}
		items = append([]fromItem{merged}, items[2:]...)
	}
	return items[0].node, pending, nil
}

func unionSets(a, b map[string]bool) map[string]bool {
	out := map[string]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// ---------------------------------------------------------------- rewrite

// rewriteExpr replaces aggregate/window calls (by pointer) and group
// expressions (by rendered SQL) with references to the columns that carry
// their computed values. Subqueries are left untouched — they aggregate
// independently.
func rewriteExpr(e sqlparser.Expr, byPtr map[*sqlparser.FuncCall]sqlparser.Expr, bySQL map[string]sqlparser.Expr) sqlparser.Expr {
	if e == nil {
		return nil
	}
	if fc, ok := e.(*sqlparser.FuncCall); ok {
		if rep, ok := byPtr[fc]; ok && rep != nil {
			return rep
		}
	}
	if bySQL != nil {
		if rep, ok := bySQL[e.SQL()]; ok {
			return rep
		}
	}
	switch n := e.(type) {
	case *sqlparser.Unary:
		return &sqlparser.Unary{Op: n.Op, X: rewriteExpr(n.X, byPtr, bySQL)}
	case *sqlparser.Binary:
		return &sqlparser.Binary{Op: n.Op, L: rewriteExpr(n.L, byPtr, bySQL), R: rewriteExpr(n.R, byPtr, bySQL)}
	case *sqlparser.FuncCall:
		args := make([]sqlparser.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = rewriteExpr(a, byPtr, bySQL)
		}
		return &sqlparser.FuncCall{Name: n.Name, Args: args, Distinct: n.Distinct, Star: n.Star, Over: n.Over}
	case *sqlparser.CaseExpr:
		out := &sqlparser.CaseExpr{Operand: rewriteExpr(n.Operand, byPtr, bySQL), Else: rewriteExpr(n.Else, byPtr, bySQL)}
		for _, w := range n.Whens {
			out.Whens = append(out.Whens, sqlparser.WhenClause{
				Cond: rewriteExpr(w.Cond, byPtr, bySQL),
				Then: rewriteExpr(w.Then, byPtr, bySQL),
			})
		}
		return out
	case *sqlparser.CastExpr:
		return &sqlparser.CastExpr{X: rewriteExpr(n.X, byPtr, bySQL), TypeName: n.TypeName, Type: n.Type}
	case *sqlparser.IsNullExpr:
		return &sqlparser.IsNullExpr{X: rewriteExpr(n.X, byPtr, bySQL), Not: n.Not}
	case *sqlparser.InExpr:
		out := &sqlparser.InExpr{X: rewriteExpr(n.X, byPtr, bySQL), Not: n.Not, Query: n.Query}
		for _, i := range n.List {
			out.List = append(out.List, rewriteExpr(i, byPtr, bySQL))
		}
		return out
	case *sqlparser.BetweenExpr:
		return &sqlparser.BetweenExpr{
			X: rewriteExpr(n.X, byPtr, bySQL), Not: n.Not,
			Lo: rewriteExpr(n.Lo, byPtr, bySQL), Hi: rewriteExpr(n.Hi, byPtr, bySQL),
		}
	case *sqlparser.LikeExpr:
		return &sqlparser.LikeExpr{
			X: rewriteExpr(n.X, byPtr, bySQL), Not: n.Not,
			Pattern: rewriteExpr(n.Pattern, byPtr, bySQL), Escape: n.Escape,
		}
	}
	return e
}
