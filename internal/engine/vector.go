// vector.go implements the columnar execution path: predicate kernels that
// evaluate scan filters against typed segment vectors into selection
// bitmaps, zone-map pruning that skips whole segments before touching data,
// a fused column-gather projection, and fused scalar aggregation that folds
// typed arrays without materializing intermediate rows. Correctness
// contract: every kernel mirrors the row engine's comparison semantics
// (sqltypes.Compare, including its NaN-compares-equal and
// string-coercion behaviors) bit for bit, because byte-identical results
// are the cache-consistency invariant of the version-fenced result cache.
// Survivor rows are emitted by reference from the table's canonical row
// view, so downstream operators see exactly the values the row path sees.
package engine

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// vectorizedDisabled gates the columnar path process-wide (false = the
// default, vectorized execution on). Stored inverted so the zero value
// enables vectorization. The differential corpus suite and colbench flip it
// to compare against the pure row path.
var vectorizedDisabled atomic.Bool

// SetVectorizedEnabled turns the vectorized execution path on or off,
// returning the previous setting. Results are identical either way — only
// the execution strategy changes — so flipping it mid-stream is safe.
func SetVectorizedEnabled(on bool) (prev bool) {
	return !vectorizedDisabled.Swap(!on)
}

// VectorizedEnabled reports whether the vectorized path is active.
func VectorizedEnabled() bool { return !vectorizedDisabled.Load() }

// segmentsHook, when set, observes zone-map pruning: for each vectorized
// scan, the number of segments actually scanned and the number skipped
// outright. The server points this at the sqlshare_segments_scanned_total /
// sqlshare_segments_skipped_total counters.
var segmentsHook atomic.Pointer[func(scanned, skipped int64)]

// SetSegmentsHook installs (or, with nil, removes) the segment-pruning
// observer.
func SetSegmentsHook(f func(scanned, skipped int64)) {
	if f == nil {
		segmentsHook.Store(nil)
		return
	}
	segmentsHook.Store(&f)
}

// noteSegments records one vectorized scan's segment accounting on the
// process-wide hook and, when tracing, on the operator's accumulator.
func (ctx *ExecContext) noteSegments(n Node, scanned, skipped int64) {
	if h := segmentsHook.Load(); h != nil {
		(*h)(scanned, skipped)
	}
	if t := ctx.tracer; t != nil {
		t.mu.Lock()
		acc := t.stats[n]
		if acc == nil {
			acc = &opAccum{}
			t.stats[n] = acc
		}
		acc.segsScanned += scanned
		acc.segsSkipped += skipped
		t.mu.Unlock()
	}
}

// noteFusedScan attributes a scan that executed fused inside a parent
// operator (vectorized scalar aggregation): the scan ran once and produced
// rows survivors, but never materialized a relation for execNode to
// measure.
func (ctx *ExecContext) noteFusedScan(n Node, rows int64) {
	if t := ctx.tracer; t != nil {
		t.mu.Lock()
		acc := t.stats[n]
		if acc == nil {
			acc = &opAccum{}
			t.stats[n] = acc
		}
		acc.execs++
		acc.rows += rows
		t.mu.Unlock()
	}
	if p := ctx.Progress; p != nil {
		p.Ops.Add(1)
		p.Rows.Add(rows)
	}
}

// ---------------------------------------------------------------- vec preds

// vecPred is one scan conjunct in kernel form: a column compared to a
// constant (or tested for NULL). Only predicates of this shape vectorize;
// anything else stays a compiled closure and runs as a residual on kernel
// survivors.
type vecPred struct {
	col int
	op  string // "=", "<>", "<", "<=", ">", ">=", "isnull", "isnotnull"
	lit sqltypes.Value
}

// extractVecPreds recognizes pushed-down conjuncts the kernels can run:
// column-vs-literal comparisons (either operand order), IS [NOT] NULL on a
// plain column, and non-negated BETWEEN with literal bounds (decomposed
// into >= lo AND <= hi, which is exactly its three-valued expansion; NOT
// BETWEEN is *not* decomposable — ge=Unknown with le=False yields
// False.Not()=True, which two negated conjuncts cannot express).
func extractVecPreds(c sqlparser.Expr, cols []ColMeta) ([]vecPred, bool) {
	switch n := c.(type) {
	case *sqlparser.Binary:
		switch n.Op {
		case "=", "<>", "<", "<=", ">", ">=":
		default:
			return nil, false
		}
		if cr, ok := n.L.(*sqlparser.ColumnRef); ok {
			if lit, ok := n.R.(*sqlparser.Literal); ok {
				if col, ok := vecColIndex(cr, cols); ok {
					return []vecPred{{col: col, op: n.Op, lit: lit.Val}}, true
				}
			}
		}
		if cr, ok := n.R.(*sqlparser.ColumnRef); ok {
			if lit, ok := n.L.(*sqlparser.Literal); ok {
				if col, ok := vecColIndex(cr, cols); ok {
					return []vecPred{{col: col, op: flipCmp(n.Op), lit: lit.Val}}, true
				}
			}
		}
	case *sqlparser.IsNullExpr:
		cr, ok := n.X.(*sqlparser.ColumnRef)
		if !ok {
			return nil, false
		}
		col, ok := vecColIndex(cr, cols)
		if !ok {
			return nil, false
		}
		op := "isnull"
		if n.Not {
			op = "isnotnull"
		}
		return []vecPred{{col: col, op: op}}, true
	case *sqlparser.BetweenExpr:
		if n.Not {
			return nil, false
		}
		cr, ok := n.X.(*sqlparser.ColumnRef)
		if !ok {
			return nil, false
		}
		col, ok := vecColIndex(cr, cols)
		if !ok {
			return nil, false
		}
		lo, ok := n.Lo.(*sqlparser.Literal)
		if !ok {
			return nil, false
		}
		hi, ok := n.Hi.(*sqlparser.Literal)
		if !ok {
			return nil, false
		}
		return []vecPred{
			{col: col, op: ">=", lit: lo.Val},
			{col: col, op: "<=", lit: hi.Val},
		}, true
	}
	return nil, false
}

// vecColIndex resolves a column reference against the scan's own columns
// exactly as scope.resolve does for its innermost frame: case-insensitive
// name match, optional binding match, and exactly one hit. Zero hits means
// the reference is correlated (resolves outward) and two means ambiguous;
// neither vectorizes.
func vecColIndex(cr *sqlparser.ColumnRef, cols []ColMeta) (int, bool) {
	found := -1
	for i, c := range cols {
		if !strings.EqualFold(c.Name, cr.Name) {
			continue
		}
		if cr.Table != "" && !strings.EqualFold(c.Binding, cr.Table) {
			continue
		}
		if found >= 0 {
			return 0, false
		}
		found = i
	}
	if found < 0 {
		return 0, false
	}
	return found, true
}

// ---------------------------------------------------------------- zone maps

// segPredSkips reports whether the zone map of v proves no row of its
// segment can satisfy p, so the whole segment can be skipped without
// touching data. Min/Max-based pruning is only attempted when the
// literal's comparison semantics provably agree with the vector's storage
// order (zoneProbe); otherwise the segment is skipped only when the
// comparison is constant-Unknown for every possible row value
// (zoneConstFalse).
func segPredSkips(v *storage.Vector, p vecPred) bool {
	switch p.op {
	case "isnull":
		return !v.HasNulls
	case "isnotnull":
		return v.AllNull
	}
	if v.AllNull || p.lit.IsNull() {
		return true // comparisons against or over NULL are never True
	}
	probe, ok := zoneProbe(v, p.lit)
	if !ok {
		return zoneConstFalse(v, p.lit)
	}
	if v.NoPrune {
		return false
	}
	cmin, okMin := sqltypes.Compare(v.Min, probe)
	cmax, okMax := sqltypes.Compare(v.Max, probe)
	if !okMin || !okMax {
		return false
	}
	switch p.op {
	case "=":
		return cmax < 0 || cmin > 0
	case "<>":
		return cmin == 0 && cmax == 0
	case "<":
		return cmin >= 0
	case "<=":
		return cmin > 0
	case ">":
		return cmax <= 0
	case ">=":
		return cmax < 0
	}
	return false
}

// zoneProbe converts the literal into a probe whose Compare ordering
// against the vector's Min/Max matches what the kernel computes per row.
func zoneProbe(v *storage.Vector, lit sqltypes.Value) (sqltypes.Value, bool) {
	switch v.Enc {
	case storage.EncInt, storage.EncFloat, storage.EncBool:
		if lit.IsNumeric() {
			return lit, true
		}
		if lit.Type() == sqltypes.String {
			if f, ok := sqltypes.ParseNumeric(lit.Str()); ok {
				return sqltypes.NewFloat(f), true
			}
		}
	case storage.EncTime:
		if lit.Type() == sqltypes.DateTime {
			return lit, true
		}
		if lit.Type() == sqltypes.String {
			if t, ok := sqltypes.ParseDateTime(lit.Str()); ok {
				return sqltypes.NewDateTime(t), true
			}
		}
	case storage.EncString, storage.EncDict:
		// Lexical order; only a string literal compares lexically. A
		// numeric or datetime literal compares through per-row parsing,
		// which Min/Max cannot bound.
		if lit.Type() == sqltypes.String {
			return lit, true
		}
	}
	return sqltypes.Value{}, false
}

// zoneConstFalse reports literal/vector pairings for which Compare is
// Unknown for every possible row value, making any comparison op False
// everywhere — e.g. an unparseable string literal against a numeric
// column, or a numeric literal against a datetime column.
func zoneConstFalse(v *storage.Vector, lit sqltypes.Value) bool {
	switch v.Enc {
	case storage.EncInt, storage.EncFloat, storage.EncBool:
		if lit.Type() == sqltypes.DateTime {
			return true
		}
		if lit.Type() == sqltypes.String {
			_, ok := sqltypes.ParseNumeric(lit.Str())
			return !ok
		}
	case storage.EncTime:
		if lit.IsNumeric() {
			return true
		}
		if lit.Type() == sqltypes.String {
			_, ok := sqltypes.ParseDateTime(lit.Str())
			return !ok
		}
	}
	return false
}

// ---------------------------------------------------------------- kernels

// vecCmpFloat mirrors sqltypes.Compare's float ordering, including its
// NaN-compares-equal behavior (neither < nor > holds, so the default arm
// reports 0).
func vecCmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func opBits(op string) (lt, eq, gt bool) {
	switch op {
	case "=":
		return false, true, false
	case "<>":
		return true, false, true
	case "<":
		return true, false, false
	case "<=":
		return true, true, false
	case ">":
		return false, false, true
	case ">=":
		return false, true, true
	}
	return false, false, false
}

// segMatcher compiles p into a per-row predicate over one segment's column
// vector. A false second return means the predicate is constant-False for
// this segment (every row drops). rows/base give the canonical row view
// backing the segment, used by the generic fallback for EncValues vectors.
func segMatcher(vec *storage.Vector, rows []storage.Row, base, col int, p vecPred) (func(i int) bool, bool) {
	switch p.op {
	case "isnull":
		return vec.IsNull, true
	case "isnotnull":
		if vec.AllNull {
			return nil, false
		}
		return func(i int) bool { return !vec.IsNull(i) }, true
	}
	if p.lit.IsNull() {
		return nil, false
	}
	lt, eq, gt := opBits(p.op)
	keep := func(c int) bool {
		if c < 0 {
			return lt
		}
		if c > 0 {
			return gt
		}
		return eq
	}
	lit := p.lit
	switch vec.Enc {
	case storage.EncInt:
		if lit.Type() == sqltypes.Int {
			l := lit.Int()
			return func(i int) bool {
				if vec.IsNull(i) {
					return false
				}
				x := vec.Ints[i]
				if x < l {
					return lt
				}
				if x > l {
					return gt
				}
				return eq
			}, true
		}
		lf, ok := numericProbe(lit)
		if !ok {
			return nil, false
		}
		return func(i int) bool {
			return !vec.IsNull(i) && keep(vecCmpFloat(float64(vec.Ints[i]), lf))
		}, true
	case storage.EncFloat:
		lf, ok := numericProbe(lit)
		if !ok {
			return nil, false
		}
		return func(i int) bool {
			if vec.IsNull(i) {
				return false
			}
			x := vec.Floats[i]
			if x < lf {
				return lt
			}
			if x > lf {
				return gt
			}
			return eq
		}, true
	case storage.EncBool:
		lf, ok := numericProbe(lit)
		if !ok {
			return nil, false
		}
		return func(i int) bool {
			if vec.IsNull(i) {
				return false
			}
			var x float64
			if vec.Bools[i] {
				x = 1
			}
			return keep(vecCmpFloat(x, lf))
		}, true
	case storage.EncTime:
		var tm time.Time
		switch {
		case lit.Type() == sqltypes.DateTime:
			tm = lit.Time()
		case lit.Type() == sqltypes.String:
			t, ok := sqltypes.ParseDateTime(lit.Str())
			if !ok {
				return nil, false
			}
			tm = t
		default:
			return nil, false
		}
		return func(i int) bool {
			if vec.IsNull(i) {
				return false
			}
			x := vec.Times[i]
			if x.Before(tm) {
				return lt
			}
			if x.After(tm) {
				return gt
			}
			return eq
		}, true
	case storage.EncString:
		sm, ok := stringMatcher(lit, keep)
		if !ok {
			return nil, false
		}
		return func(i int) bool { return !vec.IsNull(i) && sm(vec.Strs[i]) }, true
	case storage.EncDict:
		sm, ok := stringMatcher(lit, keep)
		if !ok {
			return nil, false
		}
		// One comparison per dictionary entry instead of per row.
		keepCode := make([]bool, len(vec.Dict))
		for c, s := range vec.Dict {
			keepCode[c] = sm(s)
		}
		return func(i int) bool { return !vec.IsNull(i) && keepCode[vec.Codes[i]] }, true
	}
	// EncValues (mixed or all-NULL): generic Compare against the row view.
	return func(i int) bool {
		c, ok := sqltypes.Compare(rows[base+i][col], lit)
		return ok && keep(c)
	}, true
}

// numericProbe yields the float probe a numeric vector compares against:
// numeric literals convert directly, string literals through the same
// parse Compare applies. A false return means the comparison is Unknown
// for every row (constant-False predicate).
func numericProbe(lit sqltypes.Value) (float64, bool) {
	if lit.IsNumeric() {
		return lit.Float(), true
	}
	if lit.Type() == sqltypes.String {
		return sqltypes.ParseNumeric(lit.Str())
	}
	return 0, false
}

// stringMatcher compiles a comparison of a string column value against the
// literal, mirroring Compare's coercions: string literals compare
// lexically, numeric literals through per-value numeric parsing, datetime
// literals through per-value timestamp parsing (parse failure → Unknown →
// drop).
func stringMatcher(lit sqltypes.Value, keep func(int) bool) (func(s string) bool, bool) {
	switch {
	case lit.Type() == sqltypes.String:
		ls := lit.Str()
		return func(s string) bool { return keep(strings.Compare(s, ls)) }, true
	case lit.IsNumeric():
		lf := lit.Float()
		return func(s string) bool {
			f, ok := sqltypes.ParseNumeric(s)
			return ok && keep(vecCmpFloat(f, lf))
		}, true
	case lit.Type() == sqltypes.DateTime:
		tm := lit.Time()
		return func(s string) bool {
			t, ok := sqltypes.ParseDateTime(s)
			if !ok {
				return false
			}
			if t.Before(tm) {
				return keep(-1)
			}
			if t.After(tm) {
				return keep(1)
			}
			return keep(0)
		}, true
	}
	return nil, false
}

// ---------------------------------------------------------------- bitmaps

// resetSel returns a selection bitmap for n rows with every bit set (and
// tail bits beyond n clear), reusing buf's capacity when possible.
func resetSel(buf []uint64, n int) []uint64 {
	w := (n + 63) / 64
	if cap(buf) < w {
		buf = make([]uint64, w)
	}
	buf = buf[:w]
	for i := range buf {
		buf[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 && w > 0 {
		buf[w-1] = (uint64(1) << uint(r)) - 1
	}
	return buf
}

// applyMatch intersects the selection with m, evaluating m only on rows
// still selected.
func applyMatch(sel []uint64, m func(i int) bool) {
	for w := range sel {
		word := sel[w]
		if word == 0 {
			continue
		}
		rem := word
		for rem != 0 {
			b := bits.TrailingZeros64(rem)
			rem &^= 1 << uint(b)
			if !m(w*64 + b) {
				word &^= 1 << uint(b)
			}
		}
		sel[w] = word
	}
}

func zeroSel(sel []uint64) {
	for i := range sel {
		sel[i] = 0
	}
}

// ---------------------------------------------------------------- vec scan

// execVec is the columnar scan: zone maps prune whole segments, kernels
// evaluate the vectorized conjunct prefix into selection bitmaps, residual
// closures run in original order on kernel survivors, and surviving rows
// are emitted by reference from the canonical row view — so the output is
// the row path's output, row for row and byte for byte.
func (s *scanNode) execVec(ctx *ExecContext, env *Env) (*relation, error) {
	rows, segs := s.table.ScanSegments()
	rel := &relation{cols: s.props.Cols}
	bases := make([]int, len(segs)+1)
	for i, sg := range segs {
		bases[i+1] = bases[i] + sg.Len()
	}
	cand := make([]int, 0, len(segs))
	skipped := 0
	for i, sg := range segs {
		skip := false
		for _, p := range s.vecPreds {
			if segPredSkips(sg.Col(p.col), p) {
				skip = true
				break
			}
		}
		if skip {
			skipped++
		} else {
			cand = append(cand, i)
		}
	}
	ctx.noteSegments(s, int64(len(cand)), int64(skipped))
	if len(cand) == 0 {
		return rel, nil
	}
	candRows := 0
	for _, si := range cand {
		candRows += segs[si].Len()
	}
	// Segments are the morsel unit. Group candidate segments into a few
	// whole-segment tasks per worker so per-task overhead stays negligible
	// even when kernels make each segment cheap; merging slots in task
	// order reproduces row order.
	maxTasks := ctx.DOP
	if maxTasks < 1 {
		maxTasks = 1
	}
	maxTasks *= 4
	per := (len(cand) + maxTasks - 1) / maxTasks
	ntasks := (len(cand) + per - 1) / per
	kept := make([][]storage.Row, ntasks)
	residual := s.preds[s.nVec:]
	if _, err := parallelRun(ctx, s, candRows, ntasks, func(t int) error {
		lo, hi := t*per, t*per+per
		if hi > len(cand) {
			hi = len(cand)
		}
		var out []storage.Row
		var ev *Env
		if len(residual) > 0 {
			ev = &Env{cols: s.props.Cols, outer: env}
		}
		var sel []uint64
		for _, si := range cand[lo:hi] {
			sg := segs[si]
			base := bases[si]
			sel = resetSel(sel, sg.Len())
			for _, p := range s.vecPreds {
				m, ok := segMatcher(sg.Col(p.col), rows, base, p.col, p)
				if !ok {
					zeroSel(sel)
					break
				}
				applyMatch(sel, m)
			}
			for w := range sel {
				rem := sel[w]
				for rem != 0 {
					b := bits.TrailingZeros64(rem)
					rem &^= 1 << uint(b)
					r := rows[base+w*64+b]
					if ev != nil {
						ev.row = r
						keep := true
						for _, p := range residual {
							v, err := p(ctx, ev)
							if err != nil {
								return err
							}
							if truth(v) != sqltypes.True {
								keep = false
								break
							}
						}
						if !keep {
							continue
						}
					}
					out = append(out, r)
				}
			}
		}
		kept[t] = out
		return nil
	}); err != nil {
		return nil, err
	}
	rel.rows = concatRowSlots(kept)
	return rel, nil
}

// scanTaskLayout sizes the per-task row range for row-path predicate
// scans. The default morsel is tuned for operators whose per-row work
// dwarfs scheduling overhead; a cheap-predicate scan at low DOP spends a
// measurable fraction of its time on task bookkeeping instead (the dop=2
// scan regression in BENCH_parallel.json). Widening each task to at least
// 1/(8·DOP) of the input keeps a few tasks per worker for stealing while
// making per-task overhead noise. Output order is unaffected: tasks remain
// contiguous ranges merged in task order.
func scanTaskLayout(n, dop int) (tasks, width int) {
	if n <= 0 {
		return 0, 1
	}
	if dop < 1 {
		dop = 1
	}
	width = parMorselRows
	if w := (n + dop*8 - 1) / (dop * 8); w > width {
		width = w
	}
	return (n + width - 1) / width, width
}

// ---------------------------------------------------------------- fused agg

// fusedAggScan reports the scan a scalar aggregation can fold directly —
// the input is a bare non-seek scan and every aggregate is a non-DISTINCT
// COUNT/SUM/AVG/MIN/MAX over a plain column (or COUNT(*)) — or nil.
func fusedAggScan(a *streamAggregateNode) *scanNode {
	if !a.scalar || len(a.children) != 1 {
		return nil
	}
	sc, ok := a.children[0].(*scanNode)
	if !ok || sc.seek != nil {
		return nil
	}
	for _, spec := range a.specs {
		if spec.distinct {
			return nil
		}
		switch spec.name {
		case "COUNT", "COUNT_BIG", "SUM", "AVG", "MIN", "MAX":
		default:
			return nil
		}
		if !spec.star && spec.argCol < 0 {
			return nil
		}
	}
	return sc
}

// vecAggState is the streaming accumulator for one fused aggregate: count
// of non-NULL arguments, int/float sums (SUM/AVG), and the running
// MIN/MAX. Accumulation order is row order — segments stream serially — so
// FLOAT results are bit-identical to the row path's fold.
type vecAggState struct {
	count  int64
	allInt bool
	si     int64
	sf     float64
	m      sqltypes.Value
	mset   bool
	err    error
}

// execVecScalar evaluates a scalar aggregation fused with its scan: zone
// maps prune segments, kernels select survivors, and each aggregate folds
// the column's typed array directly, without materializing the scan output
// or per-row argument vectors. Error precedence mirrors the row path:
// residual predicate errors surface immediately, then the scan's row-limit
// check on the survivor count, then the first failing aggregate in spec
// order.
func (a *streamAggregateNode) execVecScalar(ctx *ExecContext, env *Env, s *scanNode) (*relation, error) {
	rows, segs := s.table.ScanSegments()
	bases := make([]int, len(segs)+1)
	for i, sg := range segs {
		bases[i+1] = bases[i] + sg.Len()
	}
	var scanned, skipped int64
	states := make([]vecAggState, len(a.specs))
	for i := range states {
		states[i].allInt = true
	}
	residual := s.preds[s.nVec:]
	var ev *Env
	if len(residual) > 0 {
		ev = &Env{cols: s.props.Cols, outer: env}
	}
	var sel []uint64
	var surv []int
	var survivors int64
	for si, sg := range segs {
		if err := ctx.canceled(); err != nil {
			return nil, err
		}
		skip := false
		for _, p := range s.vecPreds {
			if segPredSkips(sg.Col(p.col), p) {
				skip = true
				break
			}
		}
		if skip {
			skipped++
			continue
		}
		scanned++
		base := bases[si]
		n := sg.Len()
		// surv == nil means "all n rows survive" — the common unfiltered
		// aggregate pays no bitmap work at all.
		surv = surv[:0]
		all := len(s.vecPreds) == 0 && ev == nil
		if !all {
			sel = resetSel(sel, n)
			for _, p := range s.vecPreds {
				m, ok := segMatcher(sg.Col(p.col), rows, base, p.col, p)
				if !ok {
					zeroSel(sel)
					break
				}
				applyMatch(sel, m)
			}
			for w := range sel {
				rem := sel[w]
				for rem != 0 {
					b := bits.TrailingZeros64(rem)
					rem &^= 1 << uint(b)
					i := w*64 + b
					if ev != nil {
						ev.row = rows[base+i]
						keep := true
						for _, p := range residual {
							v, err := p(ctx, ev)
							if err != nil {
								return nil, err
							}
							if truth(v) != sqltypes.True {
								keep = false
								break
							}
						}
						if !keep {
							continue
						}
					}
					surv = append(surv, i)
				}
			}
			survivors += int64(len(surv))
			if len(surv) == 0 {
				continue
			}
		} else {
			survivors += int64(n)
		}
		for k := range a.specs {
			updateVecAgg(&states[k], &a.specs[k], sg, rows, base, n, surv, all)
		}
	}
	ctx.noteSegments(s, scanned, skipped)
	ctx.noteFusedScan(s, survivors)
	if err := ctx.checkRowLimit(s, int(survivors)); err != nil {
		return nil, err
	}
	for k := range states {
		if states[k].err != nil {
			return nil, states[k].err
		}
	}
	row := make(storage.Row, len(a.specs))
	for k, spec := range a.specs {
		st := &states[k]
		switch {
		case spec.star:
			row[k] = sqltypes.NewInt(survivors)
		case st.count == 0:
			v, err := foldAggregate(spec, nil)
			if err != nil {
				return nil, err
			}
			row[k] = v
		default:
			switch spec.name {
			case "COUNT", "COUNT_BIG":
				row[k] = sqltypes.NewInt(st.count)
			case "SUM":
				if st.allInt && spec.outType == sqltypes.Int {
					row[k] = sqltypes.NewInt(st.si)
				} else {
					row[k] = sqltypes.NewFloat(st.sf)
				}
			case "AVG":
				row[k] = sqltypes.NewFloat(st.sf / float64(st.count))
			case "MIN", "MAX":
				row[k] = st.m
			}
		}
	}
	return &relation{cols: a.props.Cols, rows: []storage.Row{row}}, nil
}

// updateVecAgg folds one segment's surviving rows into one aggregate's
// accumulator. surv lists surviving row offsets within the segment; when
// all is true every row 0..n-1 survives and surv is ignored. Typed fast
// paths cover homogeneous int/float/bool vectors; everything else goes
// through the same Value-level operations the row fold uses.
func updateVecAgg(st *vecAggState, spec *aggSpec, sg *storage.Segment, rows []storage.Row, base, n int, surv []int, all bool) {
	if st.err != nil || spec.star {
		return
	}
	vec := sg.Col(spec.argCol)
	each := func(f func(i int)) {
		if all {
			for i := 0; i < n; i++ {
				f(i)
			}
			return
		}
		for _, i := range surv {
			f(i)
		}
	}
	switch spec.name {
	case "COUNT", "COUNT_BIG":
		if !vec.HasNulls {
			if all {
				st.count += int64(n)
			} else {
				st.count += int64(len(surv))
			}
			return
		}
		each(func(i int) {
			if !vec.IsNull(i) {
				st.count++
			}
		})
	case "SUM", "AVG":
		switch vec.Enc {
		case storage.EncInt:
			each(func(i int) {
				if vec.IsNull(i) {
					return
				}
				x := vec.Ints[i]
				st.sf += float64(x)
				st.si += x
				st.count++
			})
		case storage.EncFloat:
			each(func(i int) {
				if vec.IsNull(i) {
					return
				}
				st.sf += vec.Floats[i]
				st.allInt = false
				st.count++
			})
		case storage.EncBool:
			each(func(i int) {
				if vec.IsNull(i) {
					return
				}
				if vec.Bools[i] {
					st.sf++
				}
				st.allInt = false
				st.count++
			})
		default:
			name := spec.name
			each(func(i int) {
				if st.err != nil {
					return
				}
				v := rows[base+i][spec.argCol]
				if v.IsNull() {
					return
				}
				f, ok := numericOf(v)
				if !ok {
					st.err = fmt.Errorf("engine: %s over non-numeric value %q", name, v.String())
					return
				}
				st.sf += f
				if v.Type() == sqltypes.Int {
					st.si += v.Int()
				} else {
					st.allInt = false
				}
				st.count++
			})
		}
	case "MIN", "MAX":
		min := spec.name == "MIN"
		switch {
		case vec.Enc == storage.EncInt && (!st.mset || st.m.Type() == sqltypes.Int):
			var cur int64
			have := st.mset
			if have {
				cur = st.m.Int()
			}
			each(func(i int) {
				if vec.IsNull(i) {
					return
				}
				x := vec.Ints[i]
				if !have || (min && x < cur) || (!min && x > cur) {
					cur, have = x, true
				}
				st.count++
			})
			if have {
				st.m, st.mset = sqltypes.NewInt(cur), true
			}
		case vec.Enc == storage.EncFloat && !vec.NoPrune && (!st.mset || st.m.Type() == sqltypes.Float):
			// NaN-free (NoPrune false): strict </> mirrors SortCompare's
			// keep-first fold exactly (cmpFloat ties — exact equality or
			// ±0.0, which render identically — keep the incumbent).
			var cur float64
			have := st.mset
			if have {
				cur = st.m.Float()
			}
			each(func(i int) {
				if vec.IsNull(i) {
					return
				}
				x := vec.Floats[i]
				if !have || (min && x < cur) || (!min && x > cur) {
					cur, have = x, true
				}
				st.count++
			})
			if have {
				st.m, st.mset = sqltypes.NewFloat(cur), true
			}
		default:
			each(func(i int) {
				v := rows[base+i][spec.argCol]
				if v.IsNull() {
					return
				}
				st.count++
				if !st.mset {
					st.m, st.mset = v, true
					return
				}
				c := sqltypes.SortCompare(v, st.m)
				if (min && c < 0) || (!min && c > 0) {
					st.m = v
				}
			})
		}
	}
}

// ---------------------------------------------------------------- plan prop

// annotateVectorized marks the operators the executor runs on the columnar
// path: scans with at least one kernel-form conjunct, pure column-gather
// projections, and scalar aggregations fused with their scan. The property
// is static — it describes the plan's capability, not the process-wide
// toggle — so compiled plans stay cacheable across toggle flips (results
// are identical either way).
func annotateVectorized(n Node) {
	for _, c := range n.Children() {
		annotateVectorized(c)
	}
	switch v := n.(type) {
	case *scanNode:
		v.props.Vectorized = v.seek == nil && len(v.preds) > 0 && v.nVec > 0
	case *projectNode:
		v.props.Vectorized = v.srcCols != nil
	case *streamAggregateNode:
		v.props.Vectorized = fusedAggScan(v) != nil
	}
}
