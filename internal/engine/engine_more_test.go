package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// randomTable builds a deterministic random table for property tests.
func randomTable(t testing.TB, seed int64, rows int) (*storage.Table, MapResolver) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tbl := storage.NewTable("r", storage.Schema{
		{Name: "k", Type: sqltypes.Int},
		{Name: "grp", Type: sqltypes.String},
		{Name: "v", Type: sqltypes.Float},
	})
	groups := []string{"a", "b", "c", "d"}
	data := make([]storage.Row, rows)
	for i := range data {
		v := sqltypes.NewFloat(rng.Float64() * 100)
		if rng.Intn(10) == 0 {
			v = sqltypes.TypedNull(sqltypes.Float)
		}
		data[i] = storage.Row{
			sqltypes.NewInt(int64(rng.Intn(50))),
			sqltypes.NewString(groups[rng.Intn(len(groups))]),
			v,
		}
	}
	if err := tbl.Insert(data); err != nil {
		t.Fatal(err)
	}
	return tbl, MapResolver{Tables: map[string]*storage.Table{"r": tbl}}
}

// TestFilterMatchesBruteForce checks WHERE evaluation against a direct
// scan-and-test over many random tables and thresholds.
func TestFilterMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		tbl, res := randomTable(t, seed, 60)
		threshold := float64(seed * 7 % 100)
		r := run(t, res, fmt.Sprintf("SELECT k FROM r WHERE v > %.4f", threshold))
		want := 0
		for _, row := range tbl.Scan() {
			if !row[2].IsNull() && row[2].Float() > threshold {
				want++
			}
		}
		if len(r.Rows) != want {
			t.Fatalf("seed %d: engine %d rows, brute force %d", seed, len(r.Rows), want)
		}
	}
}

// TestSeekEquivalentToScanPredicate: a seek on the clustered key returns
// the same rows as the unsargable spelling of the same predicate.
func TestSeekEquivalentToScanPredicate(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		_, res := randomTable(t, seed, 80)
		key := seed % 50
		viaSeek := run(t, res, fmt.Sprintf("SELECT * FROM r WHERE k = %d", key))
		// k + 0 = key is not sargable, so it runs as a scan predicate.
		viaScan := run(t, res, fmt.Sprintf("SELECT * FROM r WHERE k + 0 = %d", key))
		if len(viaSeek.Rows) != len(viaScan.Rows) {
			t.Fatalf("seed %d: seek %d vs scan %d rows", seed, len(viaSeek.Rows), len(viaScan.Rows))
		}
	}
}

// TestGroupByMatchesBruteForce checks SUM/COUNT per group.
func TestGroupByMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tbl, res := randomTable(t, seed, 70)
		r := run(t, res, "SELECT grp, COUNT(v) AS n, SUM(v) AS s FROM r GROUP BY grp ORDER BY grp")
		type agg struct {
			n int
			s float64
		}
		want := map[string]*agg{}
		for _, row := range tbl.Scan() {
			g := row[1].Str()
			if want[g] == nil {
				want[g] = &agg{}
			}
			if !row[2].IsNull() {
				want[g].n++
				want[g].s += row[2].Float()
			}
		}
		if len(r.Rows) != len(want) {
			t.Fatalf("seed %d: groups %d vs %d", seed, len(r.Rows), len(want))
		}
		for _, row := range r.Rows {
			w := want[row[0].Str()]
			if int(row[1].Int()) != w.n {
				t.Fatalf("seed %d grp %s: count %d vs %d", seed, row[0].Str(), row[1].Int(), w.n)
			}
			if diff := row[2].Float() - w.s; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("seed %d grp %s: sum %v vs %v", seed, row[0].Str(), row[2].Float(), w.s)
			}
		}
	}
}

// TestJoinMatchesBruteForce checks inner hash joins against nested loops
// done by hand.
func TestJoinMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tblA, _ := randomTable(t, seed, 30)
		tblB, _ := randomTable(t, seed+100, 30)
		res := MapResolver{Tables: map[string]*storage.Table{"a": tblA, "b": tblB}}
		r := run(t, res, "SELECT a.k FROM a JOIN b ON a.k = b.k")
		want := 0
		for _, ra := range tblA.Scan() {
			for _, rb := range tblB.Scan() {
				if c, ok := sqltypes.Compare(ra[0], rb[0]); ok && c == 0 {
					want++
				}
			}
		}
		if len(r.Rows) != want {
			t.Fatalf("seed %d: join %d vs brute %d", seed, len(r.Rows), want)
		}
	}
}

// TestLeftJoinRowAccounting: every left row appears at least once.
func TestLeftJoinRowAccounting(t *testing.T) {
	tblA, _ := randomTable(t, 1, 25)
	tblB, _ := randomTable(t, 2, 25)
	res := MapResolver{Tables: map[string]*storage.Table{"a": tblA, "b": tblB}}
	r := run(t, res, "SELECT a.k, b.k FROM a LEFT JOIN b ON a.k = b.k AND a.grp = b.grp")
	if len(r.Rows) < tblA.NumRows() {
		t.Fatalf("left join lost rows: %d < %d", len(r.Rows), tblA.NumRows())
	}
}

// TestUnionInvariants: |A UNION ALL B| = |A|+|B|; |A UNION B| <= that and
// has no duplicate rows.
func TestUnionInvariants(t *testing.T) {
	_, res := randomTable(t, 3, 40)
	all := run(t, res, "SELECT grp FROM r UNION ALL SELECT grp FROM r")
	if len(all.Rows) != 80 {
		t.Fatalf("union all rows = %d", len(all.Rows))
	}
	distinct := run(t, res, "SELECT grp FROM r UNION SELECT grp FROM r")
	if len(distinct.Rows) > len(all.Rows) {
		t.Fatal("UNION larger than UNION ALL")
	}
	seen := map[string]bool{}
	for _, row := range distinct.Rows {
		k := row[0].Key()
		if seen[k] {
			t.Fatalf("duplicate in UNION output: %v", row[0])
		}
		seen[k] = true
	}
}

// TestIntersectExceptPartition: INTERSECT ∪ EXCEPT = DISTINCT left side.
func TestIntersectExceptPartition(t *testing.T) {
	tblA, _ := randomTable(t, 5, 40)
	tblB, _ := randomTable(t, 6, 40)
	res := MapResolver{Tables: map[string]*storage.Table{"a": tblA, "b": tblB}}
	inter := run(t, res, "SELECT k FROM a INTERSECT SELECT k FROM b")
	except := run(t, res, "SELECT k FROM a EXCEPT SELECT k FROM b")
	left := run(t, res, "SELECT DISTINCT k FROM a")
	if len(inter.Rows)+len(except.Rows) != len(left.Rows) {
		t.Fatalf("partition broken: %d + %d != %d", len(inter.Rows), len(except.Rows), len(left.Rows))
	}
}

// TestTopNeverExceedsN and respects ordering.
func TestTopNeverExceedsN(t *testing.T) {
	_, res := randomTable(t, 7, 30)
	for _, n := range []int{0, 1, 5, 100} {
		r := run(t, res, fmt.Sprintf("SELECT TOP %d v FROM r ORDER BY v DESC", n))
		if len(r.Rows) > n {
			t.Fatalf("TOP %d returned %d", n, len(r.Rows))
		}
		for i := 1; i < len(r.Rows); i++ {
			if sqltypes.SortCompare(r.Rows[i-1][0], r.Rows[i][0]) < 0 {
				t.Fatal("TOP output not descending")
			}
		}
	}
}

// TestWindowSumEqualsGroupSum: the final running SUM per partition equals
// the GROUP BY SUM.
func TestWindowSumEqualsGroupSum(t *testing.T) {
	_, res := randomTable(t, 8, 50)
	grouped := run(t, res, "SELECT grp, SUM(v) AS s FROM r GROUP BY grp ORDER BY grp")
	windowed := run(t, res, "SELECT grp, SUM(v) OVER (PARTITION BY grp) AS s FROM r")
	perGroup := map[string]float64{}
	for _, row := range windowed.Rows {
		if !row[1].IsNull() {
			perGroup[row[0].Str()] = row[1].Float()
		}
	}
	for _, row := range grouped.Rows {
		if row[1].IsNull() {
			continue
		}
		if diff := perGroup[row[0].Str()] - row[1].Float(); diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("grp %s: window %v vs group %v", row[0].Str(), perGroup[row[0].Str()], row[1].Float())
		}
	}
}

// TestRowNumberIsPermutation: row numbers within a partition are 1..n.
func TestRowNumberIsPermutation(t *testing.T) {
	_, res := randomTable(t, 9, 40)
	r := run(t, res, "SELECT grp, ROW_NUMBER() OVER (PARTITION BY grp ORDER BY v) AS rk FROM r")
	seen := map[string]map[int64]bool{}
	counts := map[string]int{}
	for _, row := range r.Rows {
		g := row[0].Str()
		if seen[g] == nil {
			seen[g] = map[int64]bool{}
		}
		rk := row[1].Int()
		if seen[g][rk] {
			t.Fatalf("duplicate rank %d in %s", rk, g)
		}
		seen[g][rk] = true
		counts[g]++
	}
	for g, n := range counts {
		for i := int64(1); i <= int64(n); i++ {
			if !seen[g][i] {
				t.Fatalf("missing rank %d in %s", i, g)
			}
		}
	}
}

// TestDistinctIdempotent: DISTINCT twice equals DISTINCT once.
func TestDistinctIdempotent(t *testing.T) {
	_, res := randomTable(t, 10, 40)
	once := run(t, res, "SELECT DISTINCT grp FROM r")
	twice := run(t, res, "SELECT DISTINCT grp FROM (SELECT DISTINCT grp FROM r) AS s")
	if len(once.Rows) != len(twice.Rows) {
		t.Fatalf("distinct not idempotent: %d vs %d", len(once.Rows), len(twice.Rows))
	}
}

// ---------------------------------------------------------------- misc

func TestHavingWithoutGroupBy(t *testing.T) {
	_, res := randomTable(t, 11, 30)
	r := run(t, res, "SELECT COUNT(*) AS n FROM r HAVING COUNT(*) > 5")
	if len(r.Rows) != 1 {
		t.Fatalf("having over scalar agg: %v", r.Rows)
	}
	r = run(t, res, "SELECT COUNT(*) AS n FROM r HAVING COUNT(*) > 500")
	if len(r.Rows) != 0 {
		t.Fatalf("failed having should drop the row: %v", r.Rows)
	}
}

func TestEmptyTableBehaviour(t *testing.T) {
	empty := storage.NewTable("e", storage.Schema{
		{Name: "a", Type: sqltypes.Int}, {Name: "s", Type: sqltypes.String},
	})
	res := MapResolver{Tables: map[string]*storage.Table{"e": empty}}
	if r := run(t, res, "SELECT * FROM e"); len(r.Rows) != 0 {
		t.Fatal("empty scan")
	}
	r := run(t, res, "SELECT COUNT(*), SUM(a), MIN(s) FROM e")
	if r.Rows[0][0].Int() != 0 || !r.Rows[0][1].IsNull() || !r.Rows[0][2].IsNull() {
		t.Fatalf("empty aggregates: %v", r.Rows[0])
	}
	if r := run(t, res, "SELECT a, COUNT(*) FROM e GROUP BY a"); len(r.Rows) != 0 {
		t.Fatal("empty group by should produce no rows")
	}
	if r := run(t, res, "SELECT ROW_NUMBER() OVER (ORDER BY a) AS rk FROM e"); len(r.Rows) != 0 {
		t.Fatal("window over empty input")
	}
}

func TestStddevAndVariance(t *testing.T) {
	tbl := storage.NewTable("s", storage.Schema{{Name: "x", Type: sqltypes.Float}})
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		if err := tbl.Insert([]storage.Row{{sqltypes.NewFloat(v)}}); err != nil {
			t.Fatal(err)
		}
	}
	res := MapResolver{Tables: map[string]*storage.Table{"s": tbl}}
	r := run(t, res, "SELECT STDEVP(x), VARP(x), STDEV(x) FROM s")
	if got := r.Rows[0][0].Float(); got < 1.99 || got > 2.01 {
		t.Errorf("stdevp = %v, want 2", got)
	}
	if got := r.Rows[0][1].Float(); got < 3.99 || got > 4.01 {
		t.Errorf("varp = %v, want 4", got)
	}
	if got := r.Rows[0][2].Float(); got < 2.13 || got > 2.15 {
		t.Errorf("stdev = %v, want ~2.138", got)
	}
}

func TestOrderByMultipleKeysMixedDirections(t *testing.T) {
	_, res := randomTable(t, 12, 40)
	r := run(t, res, "SELECT grp, v FROM r ORDER BY grp ASC, v DESC")
	for i := 1; i < len(r.Rows); i++ {
		prev, cur := r.Rows[i-1], r.Rows[i]
		gc := sqltypes.SortCompare(prev[0], cur[0])
		if gc > 0 {
			t.Fatal("primary key order violated")
		}
		if gc == 0 && sqltypes.SortCompare(prev[1], cur[1]) < 0 {
			t.Fatal("secondary descending order violated")
		}
	}
}

func TestNestedSubqueryDepth(t *testing.T) {
	_, res := randomTable(t, 13, 20)
	sql := "SELECT k, grp, v FROM r"
	for i := 0; i < 12; i++ {
		sql = fmt.Sprintf("SELECT k, grp, v FROM (%s) AS s%d WHERE v IS NOT NULL", sql, i)
	}
	r := run(t, res, sql)
	if len(r.Cols) != 3 {
		t.Fatalf("deep nesting cols = %v", r.ColumnNames())
	}
}

func TestCaseInsensitiveIdentifiers(t *testing.T) {
	_, res := randomTable(t, 14, 10)
	r := run(t, res, "SELECT GRP, V FROM r WHERE K >= 0")
	if len(r.Cols) != 2 {
		t.Fatalf("case-insensitive resolution failed: %v", r.ColumnNames())
	}
}

func TestSelfJoinWithAliases(t *testing.T) {
	_, res := randomTable(t, 15, 15)
	r := run(t, res, "SELECT x.k, y.k FROM r AS x JOIN r AS y ON x.k = y.k WHERE x.grp = 'a' AND y.grp = 'b'")
	for _, row := range r.Rows {
		if c, ok := sqltypes.Compare(row[0], row[1]); !ok || c != 0 {
			t.Fatalf("self-join key mismatch: %v", row)
		}
	}
}

func TestCorrelatedSubqueryInSelectList(t *testing.T) {
	_, res := randomTable(t, 16, 25)
	r := run(t, res, `SELECT grp, (SELECT COUNT(*) FROM r AS i WHERE i.grp = o.grp) AS n FROM r AS o`)
	counts := map[string]int64{}
	for _, row := range r.Rows {
		counts[row[0].Str()] = row[1].Int()
	}
	check := run(t, res, "SELECT grp, COUNT(*) AS n FROM r GROUP BY grp")
	for _, row := range check.Rows {
		if counts[row[0].Str()] != row[1].Int() {
			t.Fatalf("correlated count mismatch for %s: %d vs %d",
				row[0].Str(), counts[row[0].Str()], row[1].Int())
		}
	}
}

func TestExpressionErrorsSurface(t *testing.T) {
	_, res := randomTable(t, 17, 10)
	cases := []string{
		"SELECT k / 0 FROM r",
		"SELECT UNKNOWN_FUNC(k) FROM r",
		"SELECT SUBSTRING(grp) FROM r",           // wrong arity
		"SELECT COUNT(*) + MAX(COUNT(*)) FROM r", // nested aggregate is an unknown-column error at best
	}
	for _, sql := range cases {
		if _, err := Query(sql, res, nil); err == nil {
			t.Errorf("%q should fail", sql)
		}
	}
}

func TestPlanOpsStableAcrossRuns(t *testing.T) {
	_, res := randomTable(t, 18, 30)
	q := sqlparser.MustParse("SELECT grp, COUNT(*) FROM r WHERE k > 10 GROUP BY grp ORDER BY grp")
	p1, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if planOps(p1.Root) != planOps(p2.Root) {
		t.Fatalf("plans differ:\n%s\n%s", planOps(p1.Root), planOps(p2.Root))
	}
	// And execution is deterministic.
	r1, err := p1.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p2.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatal("nondeterministic results")
	}
	for i := range r1.Rows {
		for j := range r1.Rows[i] {
			if sqltypes.SortCompare(r1.Rows[i][j], r2.Rows[i][j]) != 0 {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestStringsCoerceInComparisons(t *testing.T) {
	tbl := storage.NewTable("m", storage.Schema{{Name: "raw", Type: sqltypes.String}})
	for _, s := range []string{"10", "3", "oops", "25"} {
		if err := tbl.Insert([]storage.Row{{sqltypes.NewString(s)}}); err != nil {
			t.Fatal(err)
		}
	}
	res := MapResolver{Tables: map[string]*storage.Table{"m": tbl}}
	// Relaxed-schema data: numeric strings compare numerically; 'oops'
	// yields UNKNOWN and is filtered out rather than erroring.
	r := run(t, res, "SELECT raw FROM m WHERE raw > 5")
	if len(r.Rows) != 2 {
		t.Fatalf("coerced comparison rows = %d: %v", len(r.Rows), r.Rows)
	}
}

func TestWideRowProjection(t *testing.T) {
	cols := make(storage.Schema, 60)
	row := make(storage.Row, 60)
	for i := range cols {
		cols[i] = storage.Column{Name: fmt.Sprintf("c%02d", i), Type: sqltypes.Int}
		row[i] = sqltypes.NewInt(int64(i))
	}
	tbl := storage.NewTable("wide", cols)
	if err := tbl.Insert([]storage.Row{row}); err != nil {
		t.Fatal(err)
	}
	res := MapResolver{Tables: map[string]*storage.Table{"wide": tbl}}
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i := 0; i < 60; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "c%02d + 1 AS d%02d", i, i)
	}
	sb.WriteString(" FROM wide")
	r := run(t, res, sb.String())
	if len(r.Cols) != 60 || r.Rows[0][59].Int() != 60 {
		t.Fatalf("wide projection: %d cols", len(r.Cols))
	}
}

func TestWithCTE(t *testing.T) {
	_, res := randomTable(t, 20, 40)
	r := run(t, res, `
		WITH filtered AS (SELECT grp, v FROM r WHERE v IS NOT NULL),
		     tally AS (SELECT grp, COUNT(*) AS n, AVG(v) AS m FROM filtered GROUP BY grp)
		SELECT grp, n FROM tally WHERE n > 0 ORDER BY grp`)
	if len(r.Rows) == 0 || len(r.Cols) != 2 {
		t.Fatalf("cte result: %v", r.ColumnNames())
	}
	// Equivalent to the nested spelling.
	nested := run(t, res, `
		SELECT grp, n FROM (
			SELECT grp, COUNT(*) AS n, AVG(v) AS m FROM (
				SELECT grp, v FROM r WHERE v IS NOT NULL) AS filtered
			GROUP BY grp) AS tally
		WHERE n > 0 ORDER BY grp`)
	if len(nested.Rows) != len(r.Rows) {
		t.Fatalf("cte %d rows vs nested %d", len(r.Rows), len(nested.Rows))
	}
	for i := range r.Rows {
		for j := range r.Rows[i] {
			if sqltypes.SortCompare(r.Rows[i][j], nested.Rows[i][j]) != 0 {
				t.Fatalf("row %d differs", i)
			}
		}
	}
}

func TestWithCTEReferencedTwice(t *testing.T) {
	_, res := randomTable(t, 21, 20)
	r := run(t, res, `
		WITH base AS (SELECT k, v FROM r WHERE v IS NOT NULL)
		SELECT a.k FROM base AS a JOIN base AS b ON a.k = b.k`)
	if len(r.Cols) != 1 {
		t.Fatalf("cols = %v", r.ColumnNames())
	}
}

func TestRecursiveCTERejected(t *testing.T) {
	_, res := randomTable(t, 22, 10)
	if _, err := Query("WITH a AS (SELECT * FROM a) SELECT * FROM a", res, nil); err == nil {
		t.Fatal("self-referential CTE should error (recursion unsupported)")
	}
}

func TestCTEShadowsDataset(t *testing.T) {
	_, res := randomTable(t, 23, 10)
	// The CTE named r shadows the table r inside the body.
	out := run(t, res, "WITH r AS (SELECT 1 AS one) SELECT one FROM r")
	if len(out.Rows) != 1 || out.Rows[0][0].Int() != 1 {
		t.Fatalf("shadowing: %v", out.Rows)
	}
}

func TestTrigAndMathFunctions(t *testing.T) {
	_, res := randomTable(t, 24, 5)
	r := run(t, res, "SELECT PI(), SIN(0), COS(0), DEGREES(PI()), RADIANS(180.0), ATN2(1.0, 1.0) FROM r WHERE k = (SELECT MIN(k) FROM r)")
	if len(r.Rows) == 0 {
		t.Skip("no min row")
	}
	row := r.Rows[0]
	approx := func(got, want float64) bool { d := got - want; return d < 1e-9 && d > -1e-9 }
	if !approx(row[0].Float(), 3.141592653589793) {
		t.Errorf("pi = %v", row[0])
	}
	if !approx(row[1].Float(), 0) || !approx(row[2].Float(), 1) {
		t.Errorf("sin/cos: %v %v", row[1], row[2])
	}
	if !approx(row[3].Float(), 180) || !approx(row[4].Float(), 3.141592653589793) {
		t.Errorf("degrees/radians: %v %v", row[3], row[4])
	}
	if !approx(row[5].Float(), 0.7853981633974483) {
		t.Errorf("atn2: %v", row[5])
	}
}

func TestAsciiCharDatename(t *testing.T) {
	_, res := randomTable(t, 25, 3)
	r := run(t, res, "SELECT ASCII('A'), CHAR(66), DATENAME('month', '2014-03-05'), DATENAME('weekday', '2014-03-05')")
	row := r.Rows[0]
	if row[0].Int() != 65 || row[1].Str() != "B" {
		t.Errorf("ascii/char: %v %v", row[0], row[1])
	}
	if row[2].Str() != "March" || row[3].Str() != "Wednesday" {
		t.Errorf("datename: %v %v", row[2], row[3])
	}
}

// TestHaversineIdiom: the spherical-distance computation a spatial science
// workload writes by hand — exercising the trig vocabulary end to end.
func TestHaversineIdiom(t *testing.T) {
	tbl := storage.NewTable("pts", storage.Schema{
		{Name: "name", Type: sqltypes.String},
		{Name: "lat", Type: sqltypes.Float},
		{Name: "lon", Type: sqltypes.Float},
	})
	if err := tbl.Insert([]storage.Row{
		{sqltypes.NewString("seattle"), sqltypes.NewFloat(47.6), sqltypes.NewFloat(-122.3)},
		{sqltypes.NewString("portland"), sqltypes.NewFloat(45.5), sqltypes.NewFloat(-122.7)},
	}); err != nil {
		t.Fatal(err)
	}
	res := MapResolver{Tables: map[string]*storage.Table{"pts": tbl}}
	r := run(t, res, `
		SELECT a.name, b.name,
		       6371 * 2 * ASIN(SQRT(
		           SQUARE(SIN(RADIANS(b.lat - a.lat) / 2)) +
		           COS(RADIANS(a.lat)) * COS(RADIANS(b.lat)) *
		           SQUARE(SIN(RADIANS(b.lon - a.lon) / 2)))) AS km
		FROM pts AS a JOIN pts AS b ON a.lat < b.lat`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	km := r.Rows[0][2].Float()
	if km < 230 || km > 240 { // Seattle–Portland ≈ 234 km
		t.Errorf("haversine km = %v", km)
	}
}
