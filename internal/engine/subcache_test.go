package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// countingNode counts how many times the executor pulls it — a stand-in
// for an arbitrary subquery plan under the subplan cache.
type countingNode struct {
	base
	rel   *relation
	fail  atomic.Int64 // executions that error before the first success
	execs atomic.Int64
}

func (n *countingNode) exec(ctx *ExecContext, env *Env) (*relation, error) {
	n.execs.Add(1)
	if n.fail.Add(-1) >= 0 {
		return nil, errors.New("transient subquery failure")
	}
	return n.rel, nil
}

func oneCellRelation(v float64) *relation {
	return &relation{
		cols: []ColMeta{{Name: "v", Type: sqltypes.Float}},
		rows: []storage.Row{{sqltypes.NewFloat(v)}},
	}
}

// TestUncorrelatedSubplanExecutesOnce pins the core contract of the
// expression-subquery cache in build.go: an uncorrelated subquery runs
// exactly once per plan execution, even when parallel workers race on the
// first probe (the PR 4 concurrent-probe path).
func TestUncorrelatedSubplanExecutesOnce(t *testing.T) {
	n := &countingNode{rel: oneCellRelation(42)}
	s := &subplan{node: n}
	ctx := &ExecContext{Now: time.Now()}

	const workers = 32
	rels := make([]*relation, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rel, err := s.run(ctx, nil)
			if err != nil {
				t.Error(err)
				return
			}
			rels[i] = rel
		}(i)
	}
	wg.Wait()
	if got := n.execs.Load(); got != 1 {
		t.Fatalf("uncorrelated subquery executed %d times under %d concurrent probes, want 1", got, workers)
	}
	for i, rel := range rels {
		if rel != rels[0] {
			t.Fatalf("probe %d received a different relation pointer", i)
		}
	}
}

func TestCorrelatedSubplanNeverCached(t *testing.T) {
	n := &countingNode{rel: oneCellRelation(1)}
	s := &subplan{node: n, correlated: true}
	ctx := &ExecContext{Now: time.Now()}
	const runs = 5
	for i := 0; i < runs; i++ {
		if _, err := s.run(ctx, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.execs.Load(); got != runs {
		t.Fatalf("correlated subquery executed %d times, want %d (one per outer evaluation)", got, runs)
	}
}

func TestSubplanErrorIsNotCached(t *testing.T) {
	n := &countingNode{rel: oneCellRelation(7)}
	n.fail.Store(1) // first execution errors
	s := &subplan{node: n}
	ctx := &ExecContext{Now: time.Now()}
	if _, err := s.run(ctx, nil); err == nil {
		t.Fatal("first run should surface the subquery error")
	}
	rel, err := s.run(ctx, nil)
	if err != nil {
		t.Fatalf("retry after transient error: %v", err)
	}
	if rel != n.rel {
		t.Fatal("retry returned wrong relation")
	}
	if got := n.execs.Load(); got != 2 {
		t.Fatalf("execs = %d, want 2 (error must not be cached as a result)", got)
	}
}

// TestUncorrelatedSubqueryParallelMatchesSerial executes a real query whose
// predicate holds an uncorrelated scalar subquery, serially and at DOP 8:
// results must be identical and the concurrent first probe must not
// deadlock or duplicate work.
func TestUncorrelatedSubqueryParallelMatchesSerial(t *testing.T) {
	res := testResolver(t)
	const sql = "SELECT id, name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) ORDER BY id"
	q := sqlparser.MustParse(sql)

	render := func(r *Result) string {
		out := ""
		for _, row := range r.Rows {
			for _, v := range row {
				out += v.Key() + "|"
			}
			out += "\n"
		}
		return out
	}
	p, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := p.Execute(&ExecContext{Now: time.Now(), DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Rows) != 2 { // avg = 300; dan (400) and eve (500)
		t.Fatalf("serial rows = %d, want 2", len(serial.Rows))
	}
	for i := 0; i < 4; i++ {
		// Each execution compiles fresh so the subplan cache starts cold
		// and the parallel workers race on the very first probe.
		pp, err := Compile(q, res)
		if err != nil {
			t.Fatal(err)
		}
		par, err := pp.Execute(&ExecContext{Now: time.Now(), DOP: 8})
		if err != nil {
			t.Fatal(err)
		}
		if render(par) != render(serial) {
			t.Fatalf("DOP 8 result diverges from serial on round %d:\n%s\nvs\n%s", i, render(par), render(serial))
		}
	}
}

// TestSubplanCacheScopedToPlan guards against a cache outliving its plan:
// two compilations of the same SQL must not share subplan state.
func TestSubplanCacheScopedToPlan(t *testing.T) {
	res := testResolver(t)
	q := sqlparser.MustParse("SELECT id FROM emp WHERE salary > (SELECT MIN(salary) FROM emp)")
	for i := 0; i < 2; i++ {
		p, err := Compile(q, res)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Execute(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 4 {
			t.Fatalf("round %d: rows = %d, want 4", i, len(r.Rows))
		}
	}
}
