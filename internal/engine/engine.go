// Package engine implements the relational query processor that stands in
// for the paper's Microsoft SQL Azure backend (§3.3–3.4): logical planning,
// physical operator selection using the SQL Server operator vocabulary,
// volcano-style execution over the storage layer, and SHOWPLAN-style cost
// and cardinality estimates that feed the workload-analysis pipeline (§4).
package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// Resolution is the result of resolving a dataset name: exactly one of
// Table (a physical base table) or View (a saved query definition) is set.
type Resolution struct {
	Table *storage.Table
	View  sqlparser.QueryExpr
}

// Resolver maps dataset names to base tables or view definitions. The
// catalog implements this; tests may use simple map-based resolvers.
type Resolver interface {
	ResolveDataset(name string) (Resolution, error)
}

// MapResolver is a Resolver over a fixed set of tables and views, used by
// tests and examples that bypass the catalog.
type MapResolver struct {
	Tables map[string]*storage.Table
	Views  map[string]sqlparser.QueryExpr
}

// ResolveDataset implements Resolver.
func (m MapResolver) ResolveDataset(name string) (Resolution, error) {
	if t, ok := m.Tables[name]; ok {
		return Resolution{Table: t}, nil
	}
	if v, ok := m.Views[name]; ok {
		return Resolution{View: v}, nil
	}
	return Resolution{}, fmt.Errorf("engine: dataset %q not found", name)
}

// ColMeta describes one output column of a relation: the binding (table
// alias) it came from, its name, its inferred type, and — for columns that
// flow unchanged out of a stored dataset — the dataset they originate from
// (used by the §4 extraction pipeline to attribute column references).
type ColMeta struct {
	Binding string
	Name    string
	Type    sqltypes.Type
	Source  string
}

// relation is a fully materialized intermediate result.
type relation struct {
	cols []ColMeta
	rows []storage.Row
}

// Result is the caller-visible result of executing a query.
type Result struct {
	Cols []ColMeta
	Rows []storage.Row
}

// ColumnNames returns the output column names in order.
func (r *Result) ColumnNames() []string {
	names := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		names[i] = c.Name
	}
	return names
}

// Plan is a compiled, executable physical plan.
type Plan struct {
	Root Node
	// Columns is the output schema of the query.
	Columns []ColMeta
	// RefColumns maps each referenced dataset name to the distinct column
	// names the query touches on it (Listing 1's "columns" property).
	RefColumns map[string][]string
	// Tables lists the referenced dataset names in first-use order.
	Tables []string
	// ExprOps counts expression operators seen during compilation, using
	// the Table 4 vocabulary (arithmetic upper-cased, intrinsics
	// lower-cased). View-expanded expressions are included, as they were
	// in the paper's SHOWPLAN-based extraction.
	ExprOps map[string]int
}

// Deterministic reports whether repeated executions over unchanged inputs
// return identical rows. GETDATE is the engine's only nondeterministic
// intrinsic (ExecContext.Now varies per execution); everything else is a
// pure function of the referenced tables. Result caches must not store
// nondeterministic results, though their plans remain reusable.
func (p *Plan) Deterministic() bool {
	return p.ExprOps["getdate"] == 0
}

// ExecContext carries per-execution state.
type ExecContext struct {
	// Now is the clock used by GETDATE(); fixed for determinism.
	Now time.Time
	// MaxRows aborts runaway queries when > 0: any operator whose
	// materialized output exceeds the limit fails the execution with
	// ErrRowLimit.
	MaxRows int
	// DOP caps the intra-query degree of parallelism: the maximum workers
	// one operator may fan out over. <= 1 executes fully serial. Workers
	// beyond the first come from a process-wide pool budgeted at
	// runtime.GOMAXPROCS(0), so the effective worker count per operator is
	// min(DOP, morsels, available pool); results are bit-identical at
	// every DOP (see parallel.go).
	DOP int
	// Ctx, when non-nil, cancels the execution: operators check it between
	// morsels and execNode checks it at every operator boundary, so a
	// cancel propagates promptly and all workers drain without leaking.
	Ctx context.Context
	// maxWorkers records the widest fan-out any operator of this execution
	// achieved (1 = ran entirely serial). Atomic: subplans evaluated inside
	// worker goroutines may themselves parallelize.
	maxWorkers atomic.Int32
	// tracer collects per-operator runtime statistics when enabled via
	// EnableTracing; see trace.go.
	tracer *tracer
}

// canceled reports the context's cancellation error, if any.
func (ctx *ExecContext) canceled() error {
	if ctx.Ctx == nil {
		return nil
	}
	return ctx.Ctx.Err()
}

// noteWorkers records the fan-out one operator invocation used.
func (ctx *ExecContext) noteWorkers(n Node, workers int) {
	if workers > 1 {
		for {
			cur := ctx.maxWorkers.Load()
			if int32(workers) <= cur || ctx.maxWorkers.CompareAndSwap(cur, int32(workers)) {
				break
			}
		}
	}
	if ctx.tracer != nil {
		ctx.tracer.noteWorkers(n, workers)
	}
}

// MaxWorkers reports the widest operator fan-out of the execution: 1 means
// the query ran entirely serial (the catalog counts executions with
// MaxWorkers > 1 in sqlshare_parallel_queries_total).
func (ctx *ExecContext) MaxWorkers() int {
	if w := ctx.maxWorkers.Load(); w > 1 {
		return int(w)
	}
	return 1
}

// Compile builds a physical plan for q against the datasets visible through
// res. View references are expanded inline at compile time.
func Compile(q sqlparser.QueryExpr, res Resolver) (*Plan, error) {
	b := newBuilder(res)
	root, err := b.buildQuery(q, nil)
	if err != nil {
		return nil, err
	}
	estimate(root)
	annotateParallelism(root)
	return &Plan{
		Root:       root,
		Columns:    root.Props().Cols,
		RefColumns: b.referencedColumns(),
		Tables:     b.tableOrder,
		ExprOps:    b.exprOps,
	}, nil
}

// Execute runs the plan and returns its result. A nil ctx uses defaults.
func (p *Plan) Execute(ctx *ExecContext) (*Result, error) {
	if ctx == nil {
		ctx = &ExecContext{Now: time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)}
	}
	rel, err := execNode(ctx, p.Root, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: rel.cols, Rows: rel.rows}, nil
}

// Query compiles and executes in one step.
func Query(sql string, res Resolver, ctx *ExecContext) (*Result, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	plan, err := Compile(q, res)
	if err != nil {
		return nil, err
	}
	return plan.Execute(ctx)
}

// TotalCost returns the estimated total subtree cost of the plan root —
// the quantity the paper's reuse estimator accumulates (§6.2).
func (p *Plan) TotalCost() float64 { return p.Root.Props().TotalCost }
