// Package engine implements the relational query processor that stands in
// for the paper's Microsoft SQL Azure backend (§3.3–3.4): logical planning,
// physical operator selection using the SQL Server operator vocabulary,
// volcano-style execution over the storage layer, and SHOWPLAN-style cost
// and cardinality estimates that feed the workload-analysis pipeline (§4).
package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// Resolution is the result of resolving a dataset name: exactly one of
// Table (a physical base table) or View (a saved query definition) is set.
type Resolution struct {
	Table *storage.Table
	View  sqlparser.QueryExpr
}

// Resolver maps dataset names to base tables or view definitions. The
// catalog implements this; tests may use simple map-based resolvers.
type Resolver interface {
	ResolveDataset(name string) (Resolution, error)
}

// MapResolver is a Resolver over a fixed set of tables and views, used by
// tests and examples that bypass the catalog.
type MapResolver struct {
	Tables map[string]*storage.Table
	Views  map[string]sqlparser.QueryExpr
}

// ResolveDataset implements Resolver.
func (m MapResolver) ResolveDataset(name string) (Resolution, error) {
	if t, ok := m.Tables[name]; ok {
		return Resolution{Table: t}, nil
	}
	if v, ok := m.Views[name]; ok {
		return Resolution{View: v}, nil
	}
	return Resolution{}, fmt.Errorf("engine: dataset %q not found", name)
}

// ColMeta describes one output column of a relation: the binding (table
// alias) it came from, its name, its inferred type, and — for columns that
// flow unchanged out of a stored dataset — the dataset they originate from
// (used by the §4 extraction pipeline to attribute column references).
type ColMeta struct {
	Binding string
	Name    string
	Type    sqltypes.Type
	Source  string
}

// relation is a fully materialized intermediate result.
type relation struct {
	cols []ColMeta
	rows []storage.Row
	// memBytes is this relation's charge against the execution's live
	// memory estimate (0 = not charged, or already released). Maintained by
	// execNode/releaseRel only when memory accounting is active.
	memBytes int64
}

// Result is the caller-visible result of executing a query.
type Result struct {
	Cols []ColMeta
	Rows []storage.Row
}

// ColumnNames returns the output column names in order.
func (r *Result) ColumnNames() []string {
	names := make([]string, len(r.Cols))
	for i, c := range r.Cols {
		names[i] = c.Name
	}
	return names
}

// Plan is a compiled, executable physical plan.
type Plan struct {
	Root Node
	// Columns is the output schema of the query.
	Columns []ColMeta
	// RefColumns maps each referenced dataset name to the distinct column
	// names the query touches on it (Listing 1's "columns" property).
	RefColumns map[string][]string
	// Tables lists the referenced dataset names in first-use order.
	Tables []string
	// ExprOps counts expression operators seen during compilation, using
	// the Table 4 vocabulary (arithmetic upper-cased, intrinsics
	// lower-cased). View-expanded expressions are included, as they were
	// in the paper's SHOWPLAN-based extraction.
	ExprOps map[string]int
}

// Deterministic reports whether repeated executions over unchanged inputs
// return identical rows. GETDATE is the engine's only nondeterministic
// intrinsic (ExecContext.Now varies per execution); everything else is a
// pure function of the referenced tables. Result caches must not store
// nondeterministic results, though their plans remain reusable.
func (p *Plan) Deterministic() bool {
	return p.ExprOps["getdate"] == 0
}

// Progress publishes live counters for one executing query. Every field is
// atomic, so the live-operations registry (internal/ops) can read a
// consistent-enough snapshot while the execution runs — no locks on the
// execution hot path, no quiescence required to observe it. Rows, Bytes and
// Ops accumulate over completed operator invocations; Mem tracks the
// currently reserved memory estimate (MemPeak its high-water mark), charged
// at the engine's materialization sites and released as inputs are consumed.
type Progress struct {
	// Rows is the total rows materialized across all completed operators.
	Rows atomic.Int64
	// Bytes is the total bytes materialized across all completed operators
	// (relationBytes of every operator output, cumulative).
	Bytes atomic.Int64
	// Ops counts completed operator invocations.
	Ops atomic.Int64
	// Mem is the current reserved-memory estimate; MemPeak its high-water.
	Mem     atomic.Int64
	MemPeak atomic.Int64
	// op points at the PhysicalOp label of the operator most recently
	// entered (a pointer into the plan's Props, stable for the plan's life).
	op atomic.Pointer[string]
}

// CurrentOp reports the operator the execution most recently entered
// ("" before the first operator runs).
func (p *Progress) CurrentOp() string {
	if s := p.op.Load(); s != nil {
		return *s
	}
	return ""
}

// reserve charges n bytes against the live-memory estimate and returns the
// new total, maintaining the peak.
func (p *Progress) reserve(n int64) int64 {
	cur := p.Mem.Add(n)
	for {
		peak := p.MemPeak.Load()
		if cur <= peak || p.MemPeak.CompareAndSwap(peak, cur) {
			return cur
		}
	}
}

// ExecContext carries per-execution state.
type ExecContext struct {
	// Now is the clock used by GETDATE(); fixed for determinism.
	Now time.Time
	// MaxRows aborts runaway queries when > 0: any operator whose
	// materialized output exceeds the limit fails the execution with
	// ErrRowLimit.
	MaxRows int
	// MaxBytes aborts runaway queries when > 0: an execution whose reserved
	// in-flight memory estimate (operator outputs plus join/sort/aggregate
	// working state, measured by value widths) exceeds the limit fails with
	// ErrMemLimit — the memory-dimension twin of MaxRows.
	MaxBytes int64
	// Progress, when non-nil, receives live per-operator counters readable
	// while the query runs (see the live-operations registry). Execute
	// allocates one automatically when MaxBytes is set, since memory
	// accounting rides on the same counters.
	Progress *Progress
	// DOP caps the intra-query degree of parallelism: the maximum workers
	// one operator may fan out over. <= 1 executes fully serial. Workers
	// beyond the first come from a process-wide pool budgeted at
	// runtime.GOMAXPROCS(0), so the effective worker count per operator is
	// min(DOP, morsels, available pool); results are bit-identical at
	// every DOP (see parallel.go).
	DOP int
	// Ctx, when non-nil, cancels the execution: operators check it between
	// morsels and execNode checks it at every operator boundary, so a
	// cancel propagates promptly and all workers drain without leaking.
	Ctx context.Context
	// done caches Ctx.Done() for the execution's lifetime (set once by
	// Execute before any fan-out). The cancellation check runs per operator
	// and inside join inner loops; a non-blocking receive on a cached channel
	// is lock-free, where Ctx.Err() takes the context mutex every call.
	done <-chan struct{}
	// maxWorkers records the widest fan-out any operator of this execution
	// achieved (1 = ran entirely serial). Atomic: subplans evaluated inside
	// worker goroutines may themselves parallelize.
	maxWorkers atomic.Int32
	// tracer collects per-operator runtime statistics when enabled via
	// EnableTracing; see trace.go.
	tracer *tracer
}

// canceled reports the context's cancellation error, if any. The cancel
// *cause* is surfaced when one was set (context.WithCancelCause), so a kill
// through the live-operations registry propagates its typed error — for a
// plain cancellation, Cause returns the ordinary context error unchanged.
func (ctx *ExecContext) canceled() error {
	// Fast path: a receive on a nil channel never fires, so an execution
	// without a cancelable context (done unset, or Done() returned nil)
	// falls straight through the default arm.
	select {
	case <-ctx.done:
	default:
		return nil
	}
	if err := ctx.Ctx.Err(); err != nil {
		if cause := context.Cause(ctx.Ctx); cause != nil {
			return cause
		}
		return err
	}
	return nil
}

// noteWorkers records the fan-out one operator invocation used.
func (ctx *ExecContext) noteWorkers(n Node, workers int) {
	if workers > 1 {
		for {
			cur := ctx.maxWorkers.Load()
			if int32(workers) <= cur || ctx.maxWorkers.CompareAndSwap(cur, int32(workers)) {
				break
			}
		}
	}
	if ctx.tracer != nil {
		ctx.tracer.noteWorkers(n, workers)
	}
}

// MaxWorkers reports the widest operator fan-out of the execution: 1 means
// the query ran entirely serial (the catalog counts executions with
// MaxWorkers > 1 in sqlshare_parallel_queries_total).
func (ctx *ExecContext) MaxWorkers() int {
	if w := ctx.maxWorkers.Load(); w > 1 {
		return int(w)
	}
	return 1
}

// Compile builds a physical plan for q against the datasets visible through
// res. View references are expanded inline at compile time.
func Compile(q sqlparser.QueryExpr, res Resolver) (*Plan, error) {
	b := newBuilder(res)
	root, err := b.buildQuery(q, nil)
	if err != nil {
		return nil, err
	}
	estimate(root)
	annotateParallelism(root)
	annotateVectorized(root)
	return &Plan{
		Root:       root,
		Columns:    root.Props().Cols,
		RefColumns: b.referencedColumns(),
		Tables:     b.tableOrder,
		ExprOps:    b.exprOps,
	}, nil
}

// Execute runs the plan and returns its result. A nil ctx uses defaults.
func (p *Plan) Execute(ctx *ExecContext) (*Result, error) {
	if ctx == nil {
		ctx = &ExecContext{Now: time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)}
	}
	if ctx.MaxBytes > 0 && ctx.Progress == nil {
		// Memory accounting needs the progress counters; enforcing a budget
		// without a registry attached still works.
		ctx.Progress = &Progress{}
	}
	if ctx.Ctx != nil && ctx.done == nil {
		ctx.done = ctx.Ctx.Done()
	}
	rel, err := execNode(ctx, p.Root, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: rel.cols, Rows: rel.rows}, nil
}

// Query compiles and executes in one step.
func Query(sql string, res Resolver, ctx *ExecContext) (*Result, error) {
	q, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, err
	}
	plan, err := Compile(q, res)
	if err != nil {
		return nil, err
	}
	return plan.Execute(ctx)
}

// TotalCost returns the estimated total subtree cost of the plan root —
// the quantity the paper's reuse estimator accumulates (§6.2).
func (p *Plan) TotalCost() float64 { return p.Root.Props().TotalCost }

// EstRowsTotal sums the compile-time cardinality estimates over every
// operator of the plan — the denominator of the live progress estimate: the
// registry divides Progress.Rows (actual rows materialized so far) by this
// to approximate how far along an execution is, the same estimate-vs-actual
// pairing SHOWPLAN telemetry rests on.
func (p *Plan) EstRowsTotal() float64 {
	var total float64
	var walk func(n Node)
	walk = func(n Node) {
		total += n.Props().EstRows
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p.Root)
	return total
}
