package engine

import (
	"fmt"
	"math"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// aggSpec is one compiled aggregate call.
type aggSpec struct {
	fc       *sqlparser.FuncCall
	name     string
	distinct bool
	star     bool
	argFn    exprFn // nil for COUNT(*)
	outType  sqltypes.Type
	// argCol is the input column index when the argument is a plain
	// uncorrelated column reference (the vectorized fold reads the column
	// vector directly), -1 otherwise.
	argCol int
}

func aggOutType(name string, argT sqltypes.Type) sqltypes.Type {
	switch name {
	case "COUNT", "COUNT_BIG":
		return sqltypes.Int
	case "AVG", "STDEV", "STDEVP", "VAR", "VARP":
		return sqltypes.Float
	case "SUM":
		if argT == sqltypes.Int {
			return sqltypes.Int
		}
		return sqltypes.Float
	default: // MIN, MAX
		return argT
	}
}

func (b *builder) compileAggSpec(fc *sqlparser.FuncCall, sc *scope) (aggSpec, error) {
	spec := aggSpec{fc: fc, name: fc.Name, distinct: fc.Distinct, star: fc.Star, argCol: -1}
	if fc.Star {
		if fc.Name != "COUNT" && fc.Name != "COUNT_BIG" {
			return spec, fmt.Errorf("engine: %s(*) is not valid", fc.Name)
		}
		spec.outType = sqltypes.Int
		return spec, nil
	}
	if len(fc.Args) != 1 {
		return spec, fmt.Errorf("engine: aggregate %s takes one argument", fc.Name)
	}
	fn, t, err := b.compileExpr(fc.Args[0], sc)
	if err != nil {
		return spec, err
	}
	spec.argFn = fn
	spec.outType = aggOutType(fc.Name, t)
	if cr, ok := fc.Args[0].(*sqlparser.ColumnRef); ok {
		if depth, idx, _, err := sc.resolve(cr.Table, cr.Name); err == nil && depth == 0 {
			spec.argCol = idx
		}
	}
	return spec, nil
}

// computeAggregate evaluates one aggregate over the rows of a group: the
// argument is evaluated per row in row order, NULLs (and under DISTINCT,
// duplicates) are dropped, and the survivors are folded. Parallel scalar
// aggregation pre-evaluates the argument vector with morsel workers and
// calls filterAggArgs/foldAggregate directly — the fold consumes values in
// the same row order either way, which is what keeps FLOAT results
// bit-identical across degrees of parallelism.
func computeAggregate(ctx *ExecContext, spec aggSpec, cols []ColMeta, rows []storage.Row, outer *Env) (sqltypes.Value, error) {
	if spec.star {
		return sqltypes.NewInt(int64(len(rows))), nil
	}
	ev := &Env{cols: cols, outer: outer}
	raw := make([]sqltypes.Value, len(rows))
	for i, r := range rows {
		ev.row = r
		v, err := spec.argFn(ctx, ev)
		if err != nil {
			return sqltypes.Value{}, err
		}
		raw[i] = v
	}
	return foldAggregate(spec, filterAggArgs(spec, raw))
}

// filterAggArgs drops NULL arguments and, for DISTINCT aggregates, every
// repeat of an already-seen value, preserving first-occurrence order.
func filterAggArgs(spec aggSpec, raw []sqltypes.Value) []sqltypes.Value {
	var vals []sqltypes.Value
	var seen map[string]bool
	if spec.distinct {
		seen = map[string]bool{}
	}
	for _, v := range raw {
		if v.IsNull() {
			continue // aggregates skip NULLs
		}
		if spec.distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	return vals
}

// foldAggregate reduces the filtered argument values (in row order) to the
// aggregate result.
func foldAggregate(spec aggSpec, vals []sqltypes.Value) (sqltypes.Value, error) {
	switch spec.name {
	case "COUNT", "COUNT_BIG":
		return sqltypes.NewInt(int64(len(vals))), nil
	case "MIN":
		if len(vals) == 0 {
			return sqltypes.TypedNull(spec.outType), nil
		}
		m := vals[0]
		for _, v := range vals[1:] {
			if sqltypes.SortCompare(v, m) < 0 {
				m = v
			}
		}
		return m, nil
	case "MAX":
		if len(vals) == 0 {
			return sqltypes.TypedNull(spec.outType), nil
		}
		m := vals[0]
		for _, v := range vals[1:] {
			if sqltypes.SortCompare(v, m) > 0 {
				m = v
			}
		}
		return m, nil
	case "SUM":
		if len(vals) == 0 {
			return sqltypes.TypedNull(spec.outType), nil
		}
		allInt := true
		var si int64
		var sf float64
		for _, v := range vals {
			f, ok := numericOf(v)
			if !ok {
				return sqltypes.Value{}, fmt.Errorf("engine: SUM over non-numeric value %q", v.String())
			}
			sf += f
			if v.Type() == sqltypes.Int {
				si += v.Int()
			} else {
				allInt = false
			}
		}
		if allInt && spec.outType == sqltypes.Int {
			return sqltypes.NewInt(si), nil
		}
		return sqltypes.NewFloat(sf), nil
	case "AVG":
		if len(vals) == 0 {
			return sqltypes.TypedNull(sqltypes.Float), nil
		}
		var sum float64
		for _, v := range vals {
			f, ok := numericOf(v)
			if !ok {
				return sqltypes.Value{}, fmt.Errorf("engine: AVG over non-numeric value %q", v.String())
			}
			sum += f
		}
		return sqltypes.NewFloat(sum / float64(len(vals))), nil
	case "STDEV", "STDEVP", "VAR", "VARP":
		if len(vals) == 0 {
			return sqltypes.TypedNull(sqltypes.Float), nil
		}
		pop := spec.name == "STDEVP" || spec.name == "VARP"
		if !pop && len(vals) < 2 {
			return sqltypes.TypedNull(sqltypes.Float), nil
		}
		var sum float64
		fs := make([]float64, len(vals))
		for i, v := range vals {
			f, ok := numericOf(v)
			if !ok {
				return sqltypes.Value{}, fmt.Errorf("engine: %s over non-numeric value %q", spec.name, v.String())
			}
			fs[i] = f
			sum += f
		}
		mean := sum / float64(len(fs))
		var ss float64
		for _, f := range fs {
			ss += (f - mean) * (f - mean)
		}
		denom := float64(len(fs) - 1)
		if pop {
			denom = float64(len(fs))
		}
		variance := ss / denom
		if spec.name == "VAR" || spec.name == "VARP" {
			return sqltypes.NewFloat(variance), nil
		}
		return sqltypes.NewFloat(math.Sqrt(variance)), nil
	}
	return sqltypes.Value{}, fmt.Errorf("engine: unknown aggregate %s", spec.name)
}

// collectAggCalls gathers the aggregate function calls (without OVER) in an
// expression, without descending into subqueries (their aggregates belong
// to the subquery's own aggregation).
func collectAggCalls(e sqlparser.Expr, out *[]*sqlparser.FuncCall) {
	switch n := e.(type) {
	case nil:
		return
	case *sqlparser.FuncCall:
		if n.Over == nil && isAggregateName(n.Name) {
			*out = append(*out, n)
			return // nested aggregates are invalid; don't descend
		}
		for _, a := range n.Args {
			collectAggCalls(a, out)
		}
	case *sqlparser.Unary:
		collectAggCalls(n.X, out)
	case *sqlparser.Binary:
		collectAggCalls(n.L, out)
		collectAggCalls(n.R, out)
	case *sqlparser.CaseExpr:
		collectAggCalls(n.Operand, out)
		for _, w := range n.Whens {
			collectAggCalls(w.Cond, out)
			collectAggCalls(w.Then, out)
		}
		collectAggCalls(n.Else, out)
	case *sqlparser.CastExpr:
		collectAggCalls(n.X, out)
	case *sqlparser.IsNullExpr:
		collectAggCalls(n.X, out)
	case *sqlparser.InExpr:
		collectAggCalls(n.X, out)
		for _, x := range n.List {
			collectAggCalls(x, out)
		}
	case *sqlparser.BetweenExpr:
		collectAggCalls(n.X, out)
		collectAggCalls(n.Lo, out)
		collectAggCalls(n.Hi, out)
	case *sqlparser.LikeExpr:
		collectAggCalls(n.X, out)
		collectAggCalls(n.Pattern, out)
	}
}

// collectWindowCalls gathers window function calls (with OVER), without
// descending into subqueries.
func collectWindowCalls(e sqlparser.Expr, out *[]*sqlparser.FuncCall) {
	switch n := e.(type) {
	case nil:
		return
	case *sqlparser.FuncCall:
		if n.Over != nil {
			*out = append(*out, n)
			return
		}
		for _, a := range n.Args {
			collectWindowCalls(a, out)
		}
	case *sqlparser.Unary:
		collectWindowCalls(n.X, out)
	case *sqlparser.Binary:
		collectWindowCalls(n.L, out)
		collectWindowCalls(n.R, out)
	case *sqlparser.CaseExpr:
		collectWindowCalls(n.Operand, out)
		for _, w := range n.Whens {
			collectWindowCalls(w.Cond, out)
			collectWindowCalls(w.Then, out)
		}
		collectWindowCalls(n.Else, out)
	case *sqlparser.CastExpr:
		collectWindowCalls(n.X, out)
	case *sqlparser.IsNullExpr:
		collectWindowCalls(n.X, out)
	case *sqlparser.InExpr:
		collectWindowCalls(n.X, out)
		for _, x := range n.List {
			collectWindowCalls(x, out)
		}
	case *sqlparser.BetweenExpr:
		collectWindowCalls(n.X, out)
		collectWindowCalls(n.Lo, out)
		collectWindowCalls(n.Hi, out)
	case *sqlparser.LikeExpr:
		collectWindowCalls(n.X, out)
		collectWindowCalls(n.Pattern, out)
	}
}
