package engine

import (
	"strings"
	"testing"
	"time"

	"sqlshare/internal/sqlparser"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
)

// testResolver builds a small science-flavoured schema used across tests.
func testResolver(t testing.TB) MapResolver {
	t.Helper()
	emp := storage.NewTable("emp", storage.Schema{
		{Name: "id", Type: sqltypes.Int},
		{Name: "name", Type: sqltypes.String},
		{Name: "dept", Type: sqltypes.String},
		{Name: "salary", Type: sqltypes.Float},
	})
	rows := []storage.Row{
		{sqltypes.NewInt(1), sqltypes.NewString("ann"), sqltypes.NewString("bio"), sqltypes.NewFloat(100)},
		{sqltypes.NewInt(2), sqltypes.NewString("bob"), sqltypes.NewString("bio"), sqltypes.NewFloat(200)},
		{sqltypes.NewInt(3), sqltypes.NewString("cat"), sqltypes.NewString("oce"), sqltypes.NewFloat(300)},
		{sqltypes.NewInt(4), sqltypes.NewString("dan"), sqltypes.NewString("oce"), sqltypes.NewFloat(400)},
		{sqltypes.NewInt(5), sqltypes.NewString("eve"), sqltypes.NewString("ast"), sqltypes.NewFloat(500)},
	}
	if err := emp.Insert(rows); err != nil {
		t.Fatal(err)
	}
	dept := storage.NewTable("dept", storage.Schema{
		{Name: "dept", Type: sqltypes.String},
		{Name: "building", Type: sqltypes.String},
	})
	if err := dept.Insert([]storage.Row{
		{sqltypes.NewString("bio"), sqltypes.NewString("north")},
		{sqltypes.NewString("oce"), sqltypes.NewString("south")},
	}); err != nil {
		t.Fatal(err)
	}
	sensor := storage.NewTable("sensor", storage.Schema{
		{Name: "ts", Type: sqltypes.DateTime},
		{Name: "val", Type: sqltypes.String},
	})
	mk := func(day int, v string) storage.Row {
		return storage.Row{
			sqltypes.NewDateTime(time.Date(2014, 3, day, 0, 0, 0, 0, time.UTC)),
			sqltypes.NewString(v),
		}
	}
	if err := sensor.Insert([]storage.Row{
		mk(1, "1.5"), mk(2, "-999"), mk(3, "2.5"), mk(4, "bad"), mk(5, "3.5"),
	}); err != nil {
		t.Fatal(err)
	}
	return MapResolver{
		Tables: map[string]*storage.Table{"emp": emp, "dept": dept, "sensor": sensor},
		Views:  map[string]sqlparser.QueryExpr{},
	}
}

func run(t testing.TB, res Resolver, sql string) *Result {
	t.Helper()
	r, err := Query(sql, res, nil)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return r
}

func cell(t testing.TB, r *Result, row, col int) sqltypes.Value {
	t.Helper()
	if row >= len(r.Rows) || col >= len(r.Rows[row]) {
		t.Fatalf("result too small: want [%d][%d], have %d rows", row, col, len(r.Rows))
	}
	return r.Rows[row][col]
}

func TestSelectStar(t *testing.T) {
	r := run(t, testResolver(t), "SELECT * FROM emp")
	if len(r.Rows) != 5 || len(r.Cols) != 4 {
		t.Fatalf("rows=%d cols=%d", len(r.Rows), len(r.Cols))
	}
	if r.Cols[0].Name != "id" || r.Cols[3].Name != "salary" {
		t.Errorf("cols = %v", r.ColumnNames())
	}
	// Clustered order: by id.
	if cell(t, r, 0, 0).Int() != 1 || cell(t, r, 4, 0).Int() != 5 {
		t.Errorf("unexpected order")
	}
}

func TestWhereFilter(t *testing.T) {
	r := run(t, testResolver(t), "SELECT name FROM emp WHERE salary > 250")
	if len(r.Rows) != 3 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
}

func TestSeekOnClusteredKey(t *testing.T) {
	res := testResolver(t)
	q := sqlparser.MustParse("SELECT * FROM emp WHERE id = 3")
	plan, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if op := plan.Root.Children()[0].Props().PhysicalOp; !strings.Contains(planOps(plan.Root), "Clustered Index Seek") {
		t.Errorf("expected a Clustered Index Seek in plan, root child op=%s ops=%s", op, planOps(plan.Root))
	}
	r, err := plan.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][1].Str() != "cat" {
		t.Fatalf("rows=%v", r.Rows)
	}
}

func TestSeekRangePredicate(t *testing.T) {
	res := testResolver(t)
	q := sqlparser.MustParse("SELECT id FROM emp WHERE id >= 4")
	plan, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planOps(plan.Root), "Clustered Index Seek") {
		t.Errorf("expected seek: %s", planOps(plan.Root))
	}
	r, err := plan.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
}

// planOps renders the physical ops of a plan tree for assertions.
func planOps(n Node) string {
	var sb strings.Builder
	var walk func(Node)
	walk = func(x Node) {
		if op := x.Props().PhysicalOp; op != "" {
			sb.WriteString(op)
			sb.WriteByte(';')
		}
		for _, c := range x.Children() {
			walk(c)
		}
	}
	walk(n)
	return sb.String()
}

func TestProjectionExpressions(t *testing.T) {
	r := run(t, testResolver(t), "SELECT name, salary * 2 AS double_pay FROM emp WHERE id = 1")
	if r.Cols[1].Name != "double_pay" {
		t.Errorf("alias = %q", r.Cols[1].Name)
	}
	if got := cell(t, r, 0, 1).Float(); got != 200 {
		t.Errorf("double_pay = %v", got)
	}
}

func TestIntegerDivisionIsTSQL(t *testing.T) {
	r := run(t, testResolver(t), "SELECT 5 / 2 AS q")
	if got := cell(t, r, 0, 0); got.Type() != sqltypes.Int || got.Int() != 2 {
		t.Errorf("5/2 = %v (%v), want 2 INT", got, got.Type())
	}
	r = run(t, testResolver(t), "SELECT 5.0 / 2 AS q")
	if got := cell(t, r, 0, 0).Float(); got != 2.5 {
		t.Errorf("5.0/2 = %v", got)
	}
}

func TestOrderBy(t *testing.T) {
	r := run(t, testResolver(t), "SELECT name FROM emp ORDER BY salary DESC")
	if cell(t, r, 0, 0).Str() != "eve" || cell(t, r, 4, 0).Str() != "ann" {
		t.Errorf("order: %v", r.Rows)
	}
	// ORDER BY a column not in the select list (hidden sort column).
	r = run(t, testResolver(t), "SELECT name FROM emp ORDER BY salary DESC")
	if len(r.Cols) != 1 {
		t.Errorf("hidden sort column leaked: %v", r.ColumnNames())
	}
	// ORDER BY ordinal.
	r = run(t, testResolver(t), "SELECT name, salary FROM emp ORDER BY 2 DESC")
	if cell(t, r, 0, 0).Str() != "eve" {
		t.Errorf("ordinal order: %v", r.Rows)
	}
	// ORDER BY alias.
	r = run(t, testResolver(t), "SELECT salary * -1 AS neg FROM emp ORDER BY neg")
	if cell(t, r, 0, 0).Float() != -500 {
		t.Errorf("alias order: %v", r.Rows)
	}
}

func TestTopAndPercent(t *testing.T) {
	r := run(t, testResolver(t), "SELECT TOP 2 name FROM emp ORDER BY salary DESC")
	if len(r.Rows) != 2 || cell(t, r, 0, 0).Str() != "eve" {
		t.Fatalf("top2: %v", r.Rows)
	}
	r = run(t, testResolver(t), "SELECT TOP 40 PERCENT id FROM emp ORDER BY id")
	if len(r.Rows) != 2 {
		t.Fatalf("top 40 percent of 5 = %d rows", len(r.Rows))
	}
}

func TestDistinct(t *testing.T) {
	r := run(t, testResolver(t), "SELECT DISTINCT dept FROM emp")
	if len(r.Rows) != 3 {
		t.Fatalf("distinct depts = %d", len(r.Rows))
	}
}

func TestGroupByAggregates(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT dept, COUNT(*) AS n, SUM(salary) AS total, AVG(salary) AS mean, MIN(salary) AS lo, MAX(salary) AS hi FROM emp GROUP BY dept ORDER BY dept")
	if len(r.Rows) != 3 {
		t.Fatalf("groups = %d", len(r.Rows))
	}
	// ast, bio, oce in sorted order.
	if cell(t, r, 0, 0).Str() != "ast" || cell(t, r, 0, 1).Int() != 1 {
		t.Errorf("row0 = %v", r.Rows[0])
	}
	if cell(t, r, 1, 0).Str() != "bio" || cell(t, r, 1, 2).Float() != 300 || cell(t, r, 1, 3).Float() != 150 {
		t.Errorf("bio group = %v", r.Rows[1])
	}
	if cell(t, r, 2, 4).Float() != 300 || cell(t, r, 2, 5).Float() != 400 {
		t.Errorf("oce min/max = %v", r.Rows[2])
	}
}

func TestScalarAggregate(t *testing.T) {
	r := run(t, testResolver(t), "SELECT COUNT(*) AS n, SUM(salary) AS s FROM emp")
	if len(r.Rows) != 1 || cell(t, r, 0, 0).Int() != 5 || cell(t, r, 0, 1).Float() != 1500 {
		t.Fatalf("scalar agg: %v", r.Rows)
	}
	// Empty input still yields one row with COUNT 0 and SUM NULL.
	r = run(t, testResolver(t), "SELECT COUNT(*) AS n, SUM(salary) AS s FROM emp WHERE id > 100")
	if len(r.Rows) != 1 || cell(t, r, 0, 0).Int() != 0 || !cell(t, r, 0, 1).IsNull() {
		t.Fatalf("empty scalar agg: %v", r.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	r := run(t, testResolver(t), "SELECT COUNT(DISTINCT dept) FROM emp")
	if cell(t, r, 0, 0).Int() != 3 {
		t.Fatalf("count distinct = %v", r.Rows)
	}
}

func TestHaving(t *testing.T) {
	r := run(t, testResolver(t), "SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept")
	if len(r.Rows) != 2 {
		t.Fatalf("having: %v", r.Rows)
	}
}

func TestAggregateNullHandling(t *testing.T) {
	tbl := storage.NewTable("t", storage.Schema{{Name: "x", Type: sqltypes.Int}})
	if err := tbl.Insert([]storage.Row{
		{sqltypes.NewInt(1)}, {sqltypes.TypedNull(sqltypes.Int)}, {sqltypes.NewInt(3)},
	}); err != nil {
		t.Fatal(err)
	}
	res := MapResolver{Tables: map[string]*storage.Table{"t": tbl}}
	r := run(t, res, "SELECT COUNT(*), COUNT(x), AVG(x) FROM t")
	if cell(t, r, 0, 0).Int() != 3 || cell(t, r, 0, 1).Int() != 2 || cell(t, r, 0, 2).Float() != 2 {
		t.Fatalf("null agg: %v", r.Rows)
	}
}

func TestInnerJoin(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT e.name, d.building FROM emp e JOIN dept d ON e.dept = d.dept ORDER BY e.name")
	if len(r.Rows) != 4 {
		t.Fatalf("join rows = %d", len(r.Rows))
	}
	if cell(t, r, 0, 0).Str() != "ann" || cell(t, r, 0, 1).Str() != "north" {
		t.Errorf("row0 = %v", r.Rows[0])
	}
}

func TestLeftOuterJoin(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT e.name, d.building FROM emp e LEFT JOIN dept d ON e.dept = d.dept ORDER BY e.name")
	if len(r.Rows) != 5 {
		t.Fatalf("left join rows = %d", len(r.Rows))
	}
	// eve's dept 'ast' has no building.
	if !cell(t, r, 4, 1).IsNull() {
		t.Errorf("eve should have NULL building: %v", r.Rows[4])
	}
}

func TestRightAndFullJoin(t *testing.T) {
	res := testResolver(t)
	r := run(t, res, "SELECT d.building, e.name FROM dept d RIGHT JOIN emp e ON d.dept = e.dept")
	if len(r.Rows) != 5 {
		t.Fatalf("right join rows = %d", len(r.Rows))
	}
	extra := storage.NewTable("extra", storage.Schema{{Name: "dept", Type: sqltypes.String}})
	if err := extra.Insert([]storage.Row{{sqltypes.NewString("geo")}}); err != nil {
		t.Fatal(err)
	}
	res.Tables["extra"] = extra
	r = run(t, res, "SELECT x.dept, d.building FROM extra x FULL OUTER JOIN dept d ON x.dept = d.dept")
	if len(r.Rows) != 3 { // geo unmatched + 2 dept rows unmatched
		t.Fatalf("full join rows = %d: %v", len(r.Rows), r.Rows)
	}
}

func TestCrossJoin(t *testing.T) {
	r := run(t, testResolver(t), "SELECT e.name, d.dept FROM emp e CROSS JOIN dept d")
	if len(r.Rows) != 10 {
		t.Fatalf("cross join rows = %d", len(r.Rows))
	}
}

func TestImplicitJoinViaWhere(t *testing.T) {
	res := testResolver(t)
	q := sqlparser.MustParse("SELECT e.name, d.building FROM emp e, dept d WHERE e.dept = d.dept")
	plan, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	ops := planOps(plan.Root)
	if !strings.Contains(ops, "Hash Match") && !strings.Contains(ops, "Merge Join") {
		t.Errorf("comma join should use an equi-join operator: %s", ops)
	}
	r, err := plan.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestMergeJoinOnClusteredKeys(t *testing.T) {
	a := storage.NewTable("a", storage.Schema{{Name: "k", Type: sqltypes.Int}, {Name: "va", Type: sqltypes.String}})
	bt := storage.NewTable("b", storage.Schema{{Name: "k", Type: sqltypes.Int}, {Name: "vb", Type: sqltypes.String}})
	for i := 1; i <= 4; i++ {
		if err := a.Insert([]storage.Row{{sqltypes.NewInt(int64(i)), sqltypes.NewString("a")}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 3; i <= 6; i++ {
		if err := bt.Insert([]storage.Row{{sqltypes.NewInt(int64(i)), sqltypes.NewString("b")}}); err != nil {
			t.Fatal(err)
		}
	}
	res := MapResolver{Tables: map[string]*storage.Table{"a": a, "b": bt}}
	q := sqlparser.MustParse("SELECT a.k FROM a JOIN b ON a.k = b.k")
	plan, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(planOps(plan.Root), "Merge Join") {
		t.Errorf("expected Merge Join: %s", planOps(plan.Root))
	}
	r, err := plan.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("merge join rows = %d", len(r.Rows))
	}
}

func TestUnionAndUnionAll(t *testing.T) {
	r := run(t, testResolver(t), "SELECT dept FROM emp UNION ALL SELECT dept FROM dept")
	if len(r.Rows) != 7 {
		t.Fatalf("union all rows = %d", len(r.Rows))
	}
	r = run(t, testResolver(t), "SELECT dept FROM emp UNION SELECT dept FROM dept")
	if len(r.Rows) != 3 {
		t.Fatalf("union rows = %d: %v", len(r.Rows), r.Rows)
	}
}

func TestIntersectExcept(t *testing.T) {
	r := run(t, testResolver(t), "SELECT dept FROM emp INTERSECT SELECT dept FROM dept")
	if len(r.Rows) != 2 {
		t.Fatalf("intersect rows = %d", len(r.Rows))
	}
	r = run(t, testResolver(t), "SELECT dept FROM emp EXCEPT SELECT dept FROM dept")
	if len(r.Rows) != 1 || cell(t, r, 0, 0).Str() != "ast" {
		t.Fatalf("except rows = %v", r.Rows)
	}
}

func TestSubqueryInFrom(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT s.dept, s.n FROM (SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept) AS s WHERE s.n > 1 ORDER BY s.dept")
	if len(r.Rows) != 2 || cell(t, r, 0, 0).Str() != "bio" {
		t.Fatalf("derived table: %v", r.Rows)
	}
}

func TestInSubquery(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT name FROM emp WHERE dept IN (SELECT dept FROM dept) ORDER BY name")
	if len(r.Rows) != 4 {
		t.Fatalf("in subquery rows = %d", len(r.Rows))
	}
	r = run(t, testResolver(t),
		"SELECT name FROM emp WHERE dept NOT IN (SELECT dept FROM dept)")
	if len(r.Rows) != 1 || cell(t, r, 0, 0).Str() != "eve" {
		t.Fatalf("not in: %v", r.Rows)
	}
}

func TestCorrelatedExists(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT d.dept FROM dept d WHERE EXISTS (SELECT 1 FROM emp e WHERE e.dept = d.dept AND e.salary > 350)")
	if len(r.Rows) != 1 || cell(t, r, 0, 0).Str() != "oce" {
		t.Fatalf("correlated exists: %v", r.Rows)
	}
}

func TestScalarSubquery(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)")
	if len(r.Rows) != 1 || cell(t, r, 0, 0).Str() != "eve" {
		t.Fatalf("scalar subquery: %v", r.Rows)
	}
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT e.name, (SELECT d.building FROM dept d WHERE d.dept = e.dept) AS b FROM emp e WHERE e.id = 1")
	if cell(t, r, 0, 1).Str() != "north" {
		t.Fatalf("correlated scalar: %v", r.Rows)
	}
}

func TestCaseExpression(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT name, CASE WHEN salary >= 300 THEN 'high' ELSE 'low' END AS band FROM emp ORDER BY id")
	if cell(t, r, 0, 1).Str() != "low" || cell(t, r, 4, 1).Str() != "high" {
		t.Fatalf("case: %v", r.Rows)
	}
}

func TestNullInjectionIdiom(t *testing.T) {
	// The §5.1 cleaning idiom: replace sentinel values with NULL, cast the rest.
	r := run(t, testResolver(t),
		"SELECT CASE WHEN val = '-999' THEN NULL WHEN ISNUMERIC(val) = 0 THEN NULL ELSE CAST(val AS FLOAT) END AS v FROM sensor ORDER BY ts")
	if !cell(t, r, 1, 0).IsNull() {
		t.Errorf("-999 should become NULL: %v", r.Rows)
	}
	if !cell(t, r, 3, 0).IsNull() {
		t.Errorf("'bad' should become NULL: %v", r.Rows)
	}
	if cell(t, r, 0, 0).Float() != 1.5 {
		t.Errorf("1.5 should cast: %v", r.Rows)
	}
}

func TestLikePredicate(t *testing.T) {
	r := run(t, testResolver(t), "SELECT name FROM emp WHERE name LIKE 'a%'")
	if len(r.Rows) != 1 || cell(t, r, 0, 0).Str() != "ann" {
		t.Fatalf("like: %v", r.Rows)
	}
	r = run(t, testResolver(t), "SELECT name FROM emp WHERE name LIKE '_a_'")
	if len(r.Rows) != 2 { // cat, dan
		t.Fatalf("underscore like: %v", r.Rows)
	}
	r = run(t, testResolver(t), "SELECT name FROM emp WHERE name LIKE '[ab]%'")
	if len(r.Rows) != 2 { // ann, bob
		t.Fatalf("class like: %v", r.Rows)
	}
}

func TestBetweenAndIn(t *testing.T) {
	r := run(t, testResolver(t), "SELECT name FROM emp WHERE salary BETWEEN 200 AND 400 ORDER BY name")
	if len(r.Rows) != 3 {
		t.Fatalf("between: %v", r.Rows)
	}
	r = run(t, testResolver(t), "SELECT name FROM emp WHERE id IN (1, 3, 9)")
	if len(r.Rows) != 2 {
		t.Fatalf("in list: %v", r.Rows)
	}
}

func TestThreeValuedLogicInWhere(t *testing.T) {
	tbl := storage.NewTable("t", storage.Schema{{Name: "x", Type: sqltypes.Int}})
	if err := tbl.Insert([]storage.Row{
		{sqltypes.NewInt(1)}, {sqltypes.TypedNull(sqltypes.Int)},
	}); err != nil {
		t.Fatal(err)
	}
	res := MapResolver{Tables: map[string]*storage.Table{"t": tbl}}
	// NULL never matches either side of the comparison.
	if r := run(t, res, "SELECT x FROM t WHERE x = 1"); len(r.Rows) != 1 {
		t.Errorf("x=1: %v", r.Rows)
	}
	if r := run(t, res, "SELECT x FROM t WHERE x <> 1"); len(r.Rows) != 0 {
		t.Errorf("x<>1 should exclude NULL: %v", r.Rows)
	}
	if r := run(t, res, "SELECT x FROM t WHERE x IS NULL"); len(r.Rows) != 1 {
		t.Errorf("is null: %v", r.Rows)
	}
	// NOT IN with NULL in the list yields no rows for non-members.
	if r := run(t, res, "SELECT x FROM t WHERE x NOT IN (2, NULL)"); len(r.Rows) != 0 {
		t.Errorf("NOT IN with NULL: %v", r.Rows)
	}
}

func TestRowNumberWindow(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT name, ROW_NUMBER() OVER (PARTITION BY dept ORDER BY salary DESC) AS rk FROM emp ORDER BY name")
	byName := map[string]int64{}
	for _, row := range r.Rows {
		byName[row[0].Str()] = row[1].Int()
	}
	if byName["bob"] != 1 || byName["ann"] != 2 { // bio: bob 200 > ann 100
		t.Errorf("bio ranks: %v", byName)
	}
	if byName["dan"] != 1 || byName["cat"] != 2 {
		t.Errorf("oce ranks: %v", byName)
	}
	if byName["eve"] != 1 {
		t.Errorf("eve rank: %v", byName)
	}
}

func TestRankDenseRank(t *testing.T) {
	tbl := storage.NewTable("s", storage.Schema{{Name: "v", Type: sqltypes.Int}})
	for _, v := range []int64{10, 20, 20, 30} {
		if err := tbl.Insert([]storage.Row{{sqltypes.NewInt(v)}}); err != nil {
			t.Fatal(err)
		}
	}
	res := MapResolver{Tables: map[string]*storage.Table{"s": tbl}}
	r := run(t, res, "SELECT v, RANK() OVER (ORDER BY v) AS rk, DENSE_RANK() OVER (ORDER BY v) AS dr FROM s ORDER BY v")
	// v=10:1,1  v=20:2,2  v=20:2,2  v=30:4,3
	if cell(t, r, 3, 1).Int() != 4 || cell(t, r, 3, 2).Int() != 3 {
		t.Fatalf("rank/dense_rank: %v", r.Rows)
	}
}

func TestRunningSumWindow(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT id, SUM(salary) OVER (ORDER BY id) AS running FROM emp ORDER BY id")
	if cell(t, r, 0, 1).Float() != 100 || cell(t, r, 4, 1).Float() != 1500 {
		t.Fatalf("running sum: %v", r.Rows)
	}
}

func TestPartitionedAggregateWindow(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT name, AVG(salary) OVER (PARTITION BY dept) AS dept_avg FROM emp ORDER BY name")
	byName := map[string]float64{}
	for _, row := range r.Rows {
		byName[row[0].Str()] = row[1].Float()
	}
	if byName["ann"] != 150 || byName["cat"] != 350 || byName["eve"] != 500 {
		t.Fatalf("partition avg: %v", byName)
	}
}

func TestNtile(t *testing.T) {
	r := run(t, testResolver(t), "SELECT id, NTILE(2) OVER (ORDER BY id) AS bucket FROM emp ORDER BY id")
	if cell(t, r, 0, 1).Int() != 1 || cell(t, r, 4, 1).Int() != 2 {
		t.Fatalf("ntile: %v", r.Rows)
	}
}

func TestViewExpansion(t *testing.T) {
	res := testResolver(t)
	res.Views["high_paid"] = sqlparser.MustParse("SELECT name, dept, salary FROM emp WHERE salary > 250")
	r := run(t, res, "SELECT name FROM high_paid WHERE dept = 'oce' ORDER BY name")
	if len(r.Rows) != 2 {
		t.Fatalf("view rows = %d", len(r.Rows))
	}
}

func TestNestedViews(t *testing.T) {
	res := testResolver(t)
	res.Views["v1"] = sqlparser.MustParse("SELECT name, dept, salary FROM emp WHERE salary > 150")
	res.Views["v2"] = sqlparser.MustParse("SELECT dept, COUNT(*) AS n FROM v1 GROUP BY dept")
	r := run(t, res, "SELECT * FROM v2 ORDER BY dept")
	if len(r.Rows) != 2 { // bio(bob), oce(cat,dan), ast(eve) -> bio 1, oce 2, ast 1 => 3 groups!
		// recompute: salary > 150: bob 200, cat 300, dan 400, eve 500 → bio 1, oce 2, ast 1 = 3 groups
		if len(r.Rows) != 3 {
			t.Fatalf("nested view groups = %d: %v", len(r.Rows), r.Rows)
		}
	}
}

func TestViewCycleDetection(t *testing.T) {
	res := testResolver(t)
	res.Views["c1"] = sqlparser.MustParse("SELECT * FROM c2")
	res.Views["c2"] = sqlparser.MustParse("SELECT * FROM c1")
	if _, err := Query("SELECT * FROM c1", res, nil); err == nil {
		t.Fatal("view cycle should error")
	}
}

func TestUnknownReferencesError(t *testing.T) {
	res := testResolver(t)
	if _, err := Query("SELECT * FROM missing", res, nil); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := Query("SELECT nocolumn FROM emp", res, nil); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := Query("SELECT dept FROM emp e JOIN dept d ON e.dept = d.dept", res, nil); err == nil {
		t.Error("ambiguous column should error")
	}
}

func TestStringFunctions(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT UPPER(name), LEN(name), SUBSTRING(name, 1, 2), CHARINDEX('n', name) FROM emp WHERE id = 1")
	row := r.Rows[0]
	if row[0].Str() != "ANN" || row[1].Int() != 3 || row[2].Str() != "an" || row[3].Int() != 2 {
		t.Fatalf("string funcs: %v", row)
	}
}

func TestIsNumericAndPatindex(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT val, ISNUMERIC(val) FROM sensor ORDER BY ts")
	if cell(t, r, 0, 1).Int() != 1 || cell(t, r, 3, 1).Int() != 0 {
		t.Fatalf("isnumeric: %v", r.Rows)
	}
	r = run(t, testResolver(t), "SELECT PATINDEX('%[0-9]%', 'ab3cd')")
	if cell(t, r, 0, 0).Int() != 3 {
		t.Fatalf("patindex: %v", r.Rows)
	}
}

func TestDateFunctions(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT YEAR(ts), MONTH(ts), DAY(ts), DATEPART('hour', ts) FROM sensor WHERE DAY(ts) = 2")
	row := r.Rows[0]
	if row[0].Int() != 2014 || row[1].Int() != 3 || row[2].Int() != 2 || row[3].Int() != 0 {
		t.Fatalf("date funcs: %v", row)
	}
	r = run(t, testResolver(t), "SELECT DATEDIFF('day', '2014-03-01', '2014-03-05')")
	if cell(t, r, 0, 0).Int() != 4 {
		t.Fatalf("datediff: %v", r.Rows)
	}
	r = run(t, testResolver(t), "SELECT DATEADD('day', 3, '2014-03-01')")
	if cell(t, r, 0, 0).Time().Day() != 4 {
		t.Fatalf("dateadd: %v", r.Rows)
	}
}

func TestHourlyBinningIdiom(t *testing.T) {
	// The timeseries binning idiom from §3 — bin sensor data by day here.
	r := run(t, testResolver(t), `
		SELECT DAY(ts) AS d, COUNT(*) AS n
		FROM sensor
		GROUP BY DAY(ts)
		ORDER BY d`)
	if len(r.Rows) != 5 {
		t.Fatalf("bins = %d", len(r.Rows))
	}
}

func TestCoalesceIsnullNullif(t *testing.T) {
	r := run(t, testResolver(t), "SELECT COALESCE(NULL, NULL, 3), ISNULL(NULL, 7), NULLIF(2, 2), NULLIF(2, 3)")
	row := r.Rows[0]
	if row[0].Int() != 3 || row[1].Int() != 7 || !row[2].IsNull() || row[3].Int() != 2 {
		t.Fatalf("null funcs: %v", row)
	}
}

func TestFromlessSelect(t *testing.T) {
	r := run(t, testResolver(t), "SELECT 1 + 1 AS two, 'x' AS s")
	if len(r.Rows) != 1 || cell(t, r, 0, 0).Int() != 2 {
		t.Fatalf("fromless: %v", r.Rows)
	}
}

func TestDivisionByZeroErrors(t *testing.T) {
	if _, err := Query("SELECT 1 / 0", testResolver(t), nil); err == nil {
		t.Error("division by zero should error")
	}
}

func TestStringConcatPlus(t *testing.T) {
	r := run(t, testResolver(t), "SELECT name + '-' + dept FROM emp WHERE id = 1")
	if cell(t, r, 0, 0).Str() != "ann-bio" {
		t.Fatalf("concat: %v", r.Rows)
	}
}

func TestPlanColumnsAndTables(t *testing.T) {
	res := testResolver(t)
	q := sqlparser.MustParse("SELECT e.name FROM emp e JOIN dept d ON e.dept = d.dept WHERE d.building = 'north'")
	plan, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tables) != 2 {
		t.Errorf("tables = %v", plan.Tables)
	}
	cols := plan.RefColumns
	if len(cols["emp"]) == 0 || len(cols["dept"]) == 0 {
		t.Errorf("ref columns = %v", cols)
	}
	found := false
	for _, c := range cols["dept"] {
		if c == "building" {
			found = true
		}
	}
	if !found {
		t.Errorf("dept.building should be referenced: %v", cols)
	}
}

func TestPlanCostsPositive(t *testing.T) {
	res := testResolver(t)
	q := sqlparser.MustParse("SELECT dept, COUNT(*) FROM emp GROUP BY dept ORDER BY dept")
	plan, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalCost() <= 0 {
		t.Errorf("total cost = %v", plan.TotalCost())
	}
	var walk func(n Node)
	walk = func(n Node) {
		p := n.Props()
		if p.TotalCost < p.EstIO+p.EstCPU {
			t.Errorf("%s: total %v < own %v", p.PhysicalOp, p.TotalCost, p.EstIO+p.EstCPU)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(plan.Root)
}

func TestWindowPlanOperators(t *testing.T) {
	res := testResolver(t)
	q := sqlparser.MustParse("SELECT ROW_NUMBER() OVER (ORDER BY id) AS r FROM emp")
	plan, err := Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	ops := planOps(plan.Root)
	if !strings.Contains(ops, "Segment") || !strings.Contains(ops, "Sequence Project") {
		t.Errorf("window ops missing: %s", ops)
	}
	q = sqlparser.MustParse("SELECT SUM(salary) OVER (PARTITION BY dept) AS s FROM emp")
	plan, err = Compile(q, res)
	if err != nil {
		t.Fatal(err)
	}
	ops = planOps(plan.Root)
	if !strings.Contains(ops, "Window Spool") || !strings.Contains(ops, "Stream Aggregate") {
		t.Errorf("windowed aggregate ops missing: %s", ops)
	}
}

func TestGroupByExpression(t *testing.T) {
	r := run(t, testResolver(t),
		"SELECT LEN(name) AS l, COUNT(*) AS n FROM emp GROUP BY LEN(name) ORDER BY l")
	if len(r.Rows) != 1 || cell(t, r, 0, 1).Int() != 5 { // all names length 3
		t.Fatalf("group by expr: %v", r.Rows)
	}
}

func TestUnionArityMismatchErrors(t *testing.T) {
	if _, err := Query("SELECT id FROM emp UNION SELECT id, name FROM emp", testResolver(t), nil); err == nil {
		t.Error("union arity mismatch should error")
	}
}

func TestAliasedSubqueryStar(t *testing.T) {
	r := run(t, testResolver(t), "SELECT s.* FROM (SELECT id, name FROM emp) AS s WHERE s.id < 3")
	if len(r.Rows) != 2 || len(r.Cols) != 2 {
		t.Fatalf("s.*: %v %v", r.ColumnNames(), r.Rows)
	}
}
