// Package synth generates the two workload corpora the paper analyzes:
// a SQLShare-like corpus of ad hoc hand-written-style queries over dirty,
// user-uploaded science datasets, and an SDSS-like corpus of template-heavy
// canned astronomy queries over a fixed engineered schema. The real corpora
// are not redistributable; these generators are calibrated to the paper's
// published aggregates (Tables 2–4, the §5 feature rates, and the Figure
// 4–13 shapes) and drive every byte through the real ingest, catalog and
// engine code paths so logged plans are genuine.
//
// Beyond the fixed-ratio corpus generators, the package exports the
// parameterized pieces the load harness composes into arbitrary workloads:
// MakeCSV (dirty science datasets with a predicted post-ingest schema),
// TemplateMix (template-weight dials) and QueryGen (a catalog-free SQL
// compiler over TableInfo schemas).
package synth

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sqlshare/internal/sqltypes"
)

// CSVFile is a generated upload: raw bytes plus the schema the generator
// predicts it will have after ingest (default names for headerless files,
// the extra ragged column, type reverts for mixed columns).
type CSVFile struct {
	Data []byte
	Cols []ColumnInfo
	// Headerless marks files uploaded without column names (about half of
	// real uploads).
	Headerless bool
	// Ragged marks files with inconsistent row lengths (9% in the paper).
	Ragged bool
}

// DatasetKind enumerates the science-flavoured table generators.
type DatasetKind int

// The dataset kinds, mirroring the paper's motivating domains.
const (
	KindSensor DatasetKind = iota
	KindOccurrence
	KindExpression
	KindSurvey
	NumDatasetKinds
)

// KindName names a dataset kind for dataset naming and tags.
func KindName(k DatasetKind) string {
	switch k {
	case KindSensor:
		return "sensor"
	case KindOccurrence:
		return "occurrence"
	case KindExpression:
		return "expression"
	default:
		return "survey"
	}
}

// FixedArity reports whether the kind always produces the same column
// count for clean (non-ragged) files — the precondition for UNION-append
// batches against an earlier upload of the same kind.
func (k DatasetKind) FixedArity() bool { return k != KindExpression }

// MakeCSV generates one dirty science dataset of the given kind.
func MakeCSV(rng *rand.Rand, kind DatasetKind, rows int, headerless, ragged, sentinels bool) CSVFile {
	switch kind {
	case KindSensor:
		return makeSensorCSV(rng, rows, headerless, ragged, sentinels)
	case KindOccurrence:
		return makeOccurrenceCSV(rng, rows, headerless, ragged)
	case KindExpression:
		return makeExpressionCSV(rng, rows, headerless)
	default:
		return makeSurveyCSV(rng, rows, headerless, sentinels)
	}
}

// makeSensorCSV builds an environmental-sensing timeseries: the motivating
// §3.1 scenario with string-valued sentinel flags for missing numeric data.
func makeSensorCSV(rng *rand.Rand, rows int, headerless, ragged, sentinels bool) CSVFile {
	var sb strings.Builder
	cols := []ColumnInfo{
		{"ts", sqltypes.DateTime},
		{"station", sqltypes.String},
		{"depth", sqltypes.Float},
		{"value", sqltypes.Float},
	}
	if headerless {
		cols = defaultNames(cols)
	} else {
		sb.WriteString("ts,station,depth,value\n")
	}
	if sentinels {
		// A -999 sentinel makes the value column mixed: it stays numeric
		// ("-999" parses), but users must clean it with CASE (§5.1).
	}
	start := time.Date(2010+rng.Intn(5), time.Month(1+rng.Intn(12)), 1+rng.Intn(28), 0, 0, 0, 0, time.UTC)
	raggedRow := -1
	if ragged && rows > 2 {
		raggedRow = 1 + rng.Intn(rows-1)
	}
	for i := 0; i < rows; i++ {
		ts := start.Add(time.Duration(i) * time.Hour)
		val := fmt.Sprintf("%.3f", rng.Float64()*30)
		if sentinels && rng.Intn(10) == 0 {
			val = "-999"
		}
		fmt.Fprintf(&sb, "%s,st%02d,%.1f,%s", ts.Format("2006-01-02 15:04:05"), rng.Intn(8), rng.Float64()*100, val)
		if i == raggedRow {
			// One row carries an extra uncalibrated reading.
			fmt.Fprintf(&sb, ",%.3f", rng.Float64())
		}
		sb.WriteByte('\n')
	}
	if raggedRow >= 0 {
		cols = append(cols, ColumnInfo{fmt.Sprintf("column%d", len(cols)+1), sqltypes.Float})
	}
	return CSVFile{Data: []byte(sb.String()), Cols: cols, Headerless: headerless, Ragged: raggedRow >= 0}
}

// makeOccurrenceCSV builds a species-occurrence table (life sciences).
func makeOccurrenceCSV(rng *rand.Rand, rows int, headerless, ragged bool) CSVFile {
	var sb strings.Builder
	cols := []ColumnInfo{
		{"lat", sqltypes.Float},
		{"lon", sqltypes.Float},
		{"species", sqltypes.String},
		{"abundance", sqltypes.Int},
	}
	if headerless {
		cols = defaultNames(cols)
	} else {
		sb.WriteString("lat,lon,species,abundance\n")
	}
	species := []string{"calanus", "euphausia", "thysanoessa", "oithona", "metridia", "pseudocalanus"}
	raggedRow := -1
	if ragged && rows > 2 {
		raggedRow = 1 + rng.Intn(rows-1)
	}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%.4f,%.4f,%s,%d",
			40+rng.Float64()*20, -130+rng.Float64()*10,
			species[rng.Intn(len(species))], rng.Intn(500))
		if i == raggedRow {
			sb.WriteString(",unverified")
		}
		sb.WriteByte('\n')
	}
	if raggedRow >= 0 {
		cols = append(cols, ColumnInfo{fmt.Sprintf("column%d", len(cols)+1), sqltypes.String})
	}
	return CSVFile{Data: []byte(sb.String()), Cols: cols, Headerless: headerless, Ragged: raggedRow >= 0}
}

// makeExpressionCSV builds a gene-expression matrix: one gene column plus
// several numeric sample columns (wide, decomposed data).
func makeExpressionCSV(rng *rand.Rand, rows int, headerless bool) CSVFile {
	samples := 3 + rng.Intn(5)
	cols := []ColumnInfo{{"gene", sqltypes.String}}
	var sb strings.Builder
	header := []string{"gene"}
	for s := 1; s <= samples; s++ {
		name := fmt.Sprintf("sample_%d", s)
		cols = append(cols, ColumnInfo{name, sqltypes.Float})
		header = append(header, name)
	}
	if headerless {
		cols = defaultNames(cols)
	} else {
		sb.WriteString(strings.Join(header, ","))
		sb.WriteByte('\n')
	}
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "GENE%04d", rng.Intn(5000))
		for s := 0; s < samples; s++ {
			fmt.Fprintf(&sb, ",%.4f", rng.NormFloat64()*2+8)
		}
		sb.WriteByte('\n')
	}
	return CSVFile{Data: []byte(sb.String()), Cols: cols, Headerless: headerless}
}

// makeSurveyCSV builds a social-science survey table with a mixed-type
// column: ages are integers in the inference prefix but later rows contain
// "unknown", exercising the revert-to-string path.
func makeSurveyCSV(rng *rand.Rand, rows int, headerless, mixed bool) CSVFile {
	var sb strings.Builder
	cols := []ColumnInfo{
		{"respondent", sqltypes.Int},
		{"age", sqltypes.Int},
		{"region", sqltypes.String},
		{"score", sqltypes.Float},
	}
	if headerless {
		cols = defaultNames(cols)
	} else {
		sb.WriteString("respondent,age,region,score\n")
	}
	regions := []string{"north", "south", "east", "west", "central"}
	mixedRow := -1
	if mixed && rows > 110 {
		// Below the default 100-row inference prefix.
		mixedRow = 105 + rng.Intn(rows-105)
		cols[1].Type = sqltypes.String
	}
	for i := 0; i < rows; i++ {
		age := fmt.Sprintf("%d", 18+rng.Intn(60))
		if i == mixedRow {
			age = "unknown"
		}
		fmt.Fprintf(&sb, "%d,%s,%s,%.2f", i+1, age, regions[rng.Intn(len(regions))], rng.Float64()*10)
		sb.WriteByte('\n')
	}
	return CSVFile{Data: []byte(sb.String()), Cols: cols, Headerless: headerless}
}

// defaultNames renames columns to the ingest defaults (column1, column2,
// ...) for headerless uploads.
func defaultNames(cols []ColumnInfo) []ColumnInfo {
	out := make([]ColumnInfo, len(cols))
	for i, c := range cols {
		out[i] = ColumnInfo{fmt.Sprintf("column%d", i+1), c.Type}
	}
	return out
}

// pick returns a random element, or the zero value for an empty slice.
// Degenerate configs (one user, tiny or empty tables) reach every picker
// with empty candidate sets; returning zero lets call sites fall back
// gracefully instead of panicking on Intn(0).
func pick[T any](rng *rand.Rand, xs []T) T {
	if len(xs) == 0 {
		var zero T
		return zero
	}
	return xs[rng.Intn(len(xs))]
}

// bracket quotes an identifier for generated SQL.
func bracket(name string) string { return "[" + name + "]" }

// colsOf filters columns by type.
func colsOf(cols []ColumnInfo, t sqltypes.Type) []ColumnInfo {
	var out []ColumnInfo
	for _, c := range cols {
		if c.Type == t {
			out = append(out, c)
		}
	}
	return out
}

func numericCols(cols []ColumnInfo) []ColumnInfo {
	var out []ColumnInfo
	for _, c := range cols {
		if c.Type == sqltypes.Int || c.Type == sqltypes.Float {
			out = append(out, c)
		}
	}
	return out
}
