package synth

import (
	"fmt"
	"strings"

	"sqlshare/internal/catalog"
	"sqlshare/internal/sqltypes"
)

// buildQuery produces one hand-written-style query against ds through the
// parameterized QueryGen, with the user's other datasets as the join/union
// pool.
func (g *sqlshareGen) buildQuery(u *genUser, ds *genDataset) string {
	if ds == nil || len(ds.Cols) == 0 {
		return ""
	}
	sql, _ := g.qg.Build(u.name, &ds.TableInfo, tablesOf(u.datasets))
	return sql
}

// tablesOf projects the generator's dataset records onto the schema view
// the query compiler consumes.
func tablesOf(dss []*genDataset) []*TableInfo {
	out := make([]*TableInfo, 0, len(dss))
	for _, d := range dss {
		if d != nil {
			out = append(out, &d.TableInfo)
		}
	}
	return out
}

// ---------------------------------------------------------------- views

// saveDerivedView derives a new dataset from ds using one of the §5.1
// schematization idioms or a generic analytical view.
func (g *sqlshareGen) saveDerivedView(u *genUser, ds *genDataset) *genDataset {
	if ds == nil || len(ds.Cols) == 0 {
		return nil
	}
	r := g.rng.Float64()
	switch {
	case r < 0.30:
		return g.viewRename(u, ds)
	case r < 0.45:
		return g.viewNullInjection(u, ds)
	case r < 0.58:
		return g.viewCast(u, ds)
	case r < 0.64:
		return g.viewRecompose(u, ds)
	case r < 0.82:
		return g.viewAggregate(u, ds)
	default:
		return g.viewFilter(u, ds)
	}
}

func (g *sqlshareGen) nextViewName(u *genUser, tag string) string {
	u.viewSeq++
	return fmt.Sprintf("%s_%s_%d", tag, u.name, u.viewSeq)
}

func (g *sqlshareGen) save(u *genUser, name, sql string, cols []ColumnInfo, kind DatasetKind) *genDataset {
	if _, err := g.cat.SaveView(u.name, name, sql, catalog.Meta{Description: "derived view"}); err != nil {
		return nil
	}
	return g.registerView(u, name, cols, kind)
}

// viewRename assigns semantic names — the dominant idiom over headerless
// uploads (§5.1: 16% of datasets involve renaming).
func (g *sqlshareGen) viewRename(u *genUser, ds *genDataset) *genDataset {
	var items []string
	cols := make([]ColumnInfo, len(ds.Cols))
	for i, c := range ds.Cols {
		newName := semanticName(c.Type, i)
		items = append(items, fmt.Sprintf("%s AS %s", bracket(c.Name), bracket(newName)))
		cols[i] = ColumnInfo{newName, c.Type}
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", strings.Join(items, ", "), ds.Ref(u.name))
	return g.save(u, g.nextViewName(u, "named"), sql, cols, ds.kind)
}

func semanticName(t sqltypes.Type, i int) string {
	switch t {
	case sqltypes.DateTime:
		return fmt.Sprintf("measured_at_%d", i+1)
	case sqltypes.Int:
		return fmt.Sprintf("count_%d", i+1)
	case sqltypes.Float:
		return fmt.Sprintf("reading_%d", i+1)
	default:
		return fmt.Sprintf("label_%d", i+1)
	}
}

// viewNullInjection replaces sentinel values with NULL via CASE (§5.1).
func (g *sqlshareGen) viewNullInjection(u *genUser, ds *genDataset) *genDataset {
	nums := numericCols(ds.Cols)
	if len(nums) == 0 {
		return g.viewFilter(u, ds)
	}
	target := pick(g.rng, nums)
	var items []string
	cols := make([]ColumnInfo, 0, len(ds.Cols))
	for _, c := range ds.Cols {
		if c.Name == target.Name {
			clean := c.Name + "_clean"
			items = append(items, fmt.Sprintf(
				"CASE WHEN %s = -999 THEN NULL ELSE %s END AS %s",
				bracket(c.Name), bracket(c.Name), bracket(clean)))
			cols = append(cols, ColumnInfo{clean, c.Type})
			continue
		}
		items = append(items, bracket(c.Name))
		cols = append(cols, c)
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", strings.Join(items, ", "), ds.Ref(u.name))
	return g.save(u, g.nextViewName(u, "clean"), sql, cols, ds.kind)
}

// viewCast imposes types post hoc (§5.1).
func (g *sqlshareGen) viewCast(u *genUser, ds *genDataset) *genDataset {
	nums := numericCols(ds.Cols)
	if len(nums) == 0 {
		return g.viewFilter(u, ds)
	}
	target := pick(g.rng, nums)
	var items []string
	cols := make([]ColumnInfo, 0, len(ds.Cols))
	for _, c := range ds.Cols {
		if c.Name == target.Name {
			typed := c.Name + "_f"
			items = append(items, fmt.Sprintf("CAST(%s AS FLOAT) AS %s", bracket(c.Name), bracket(typed)))
			cols = append(cols, ColumnInfo{typed, sqltypes.Float})
			continue
		}
		items = append(items, bracket(c.Name))
		cols = append(cols, c)
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", strings.Join(items, ", "), ds.Ref(u.name))
	return g.save(u, g.nextViewName(u, "typed"), sql, cols, ds.kind)
}

// viewRecompose UNIONs two same-shape uploads back into one logical
// dataset (§5.1 vertical recomposition).
func (g *sqlshareGen) viewRecompose(u *genUser, ds *genDataset) *genDataset {
	var other *genDataset
	for _, cand := range u.datasets {
		if cand != ds && cand.kind == ds.kind && sameShape(cand.Cols, ds.Cols) {
			other = cand
			break
		}
	}
	if other == nil {
		return g.viewFilter(u, ds)
	}
	aList := make([]string, len(ds.Cols))
	bList := make([]string, len(other.Cols))
	for i := range ds.Cols {
		aList[i] = bracket(ds.Cols[i].Name)
		bList[i] = bracket(other.Cols[i].Name)
	}
	sql := fmt.Sprintf("SELECT %s FROM %s UNION ALL SELECT %s FROM %s",
		strings.Join(aList, ", "), ds.Ref(u.name),
		strings.Join(bList, ", "), other.Ref(u.name))
	return g.save(u, g.nextViewName(u, "combined"), sql, ds.Cols, ds.kind)
}

func sameShape(a, b []ColumnInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type {
			return false
		}
	}
	return true
}

// viewAggregate derives a summary dataset.
func (g *sqlshareGen) viewAggregate(u *genUser, ds *genDataset) *genDataset {
	strs := colsOf(ds.Cols, sqltypes.String)
	nums := numericCols(ds.Cols)
	if len(strs) == 0 || len(nums) == 0 {
		return g.viewFilter(u, ds)
	}
	s, n := pick(g.rng, strs), pick(g.rng, nums)
	sql := fmt.Sprintf("SELECT %s, COUNT(*) AS n, AVG(%s) AS mean_val FROM %s GROUP BY %s",
		bracket(s.Name), bracket(n.Name), ds.Ref(u.name), bracket(s.Name))
	cols := []ColumnInfo{{s.Name, s.Type}, {"n", sqltypes.Int}, {"mean_val", sqltypes.Float}}
	return g.save(u, g.nextViewName(u, "summary"), sql, cols, ds.kind)
}

// viewFilter derives a protected/subset dataset.
func (g *sqlshareGen) viewFilter(u *genUser, ds *genDataset) *genDataset {
	nums := numericCols(ds.Cols)
	sql := fmt.Sprintf("SELECT * FROM %s", ds.Ref(u.name))
	if len(nums) > 0 {
		n := pick(g.rng, nums)
		sql += fmt.Sprintf(" WHERE %s > %.2f", bracket(n.Name), g.rng.Float64()*20)
	}
	return g.save(u, g.nextViewName(u, "subset"), sql, ds.Cols, ds.kind)
}

// buildViewChain layers derived views to the requested depth — the deep
// provenance chains of Figure 6.
func (g *sqlshareGen) buildViewChain(u *genUser, depth int) {
	if len(u.datasets) == 0 {
		return
	}
	cur := u.datasets[len(u.datasets)-1]
	for i := 0; i < depth && cur != nil; i++ {
		next := g.saveDerivedView(u, cur)
		if next == nil {
			return
		}
		cur = next
	}
}

// prepareCanned fixes the pipeline user's recurring processing queries.
// __BATCH__ is substituted with each day's upload.
func (g *sqlshareGen) prepareCanned(u *genUser) {
	if len(u.datasets) == 0 {
		// The initial upload can fail under degenerate configs; the user
		// then behaves like an exploratory user with no canned queries.
		return
	}
	master := u.datasets[0]
	nums := numericCols(master.Cols)
	strs := colsOf(master.Cols, sqltypes.String)
	u.canned = append(u.canned, "SELECT COUNT(*) AS n FROM __BATCH__")
	if len(nums) > 0 {
		n := nums[0]
		u.canned = append(u.canned,
			fmt.Sprintf("SELECT AVG(%s) AS mean_val, MIN(%s) AS lo, MAX(%s) AS hi FROM __BATCH__",
				bracket(n.Name), bracket(n.Name), bracket(n.Name)))
	}
	if len(strs) > 0 && len(nums) > 0 {
		u.canned = append(u.canned,
			fmt.Sprintf("SELECT %s, COUNT(*) AS n FROM __BATCH__ GROUP BY %s",
				bracket(strs[0].Name), bracket(strs[0].Name)))
	}
}
