package synth

import (
	"fmt"
	"strings"

	"sqlshare/internal/catalog"
	"sqlshare/internal/sqltypes"
)

// buildQuery produces one hand-written-style query against ds, drawing the
// query kind from a distribution calibrated to the §5.3 feature rates
// (sorting 24%, outer joins 11%, window functions 4%, TOP 2%) and the §6.1
// length/complexity shapes.
func (g *sqlshareGen) buildQuery(u *genUser, ds *genDataset) string {
	nums := numericCols(ds.cols)
	strs := colsOf(ds.cols, sqltypes.String)
	r := g.rng.Float64()
	switch {
	case r < 0.24:
		return g.qFilter(u, ds, nums, strs)
	case r < 0.40:
		return g.qAggregate(u, ds, nums, strs)
	case r < 0.56:
		return g.qJoin(u, ds)
	case r < 0.585:
		return g.qWindow(u, ds, nums, strs)
	case r < 0.60:
		return g.qTop(u, ds, nums)
	case r < 0.64:
		return g.qUnion(u, ds)
	case r < 0.69:
		return g.qSubquery(u, ds, nums)
	case r < 0.74:
		return g.qBinning(u, ds, nums)
	case r < 0.80:
		return g.qStringMunging(u, ds, strs, nums)
	case r < 0.82:
		return g.qGeoDistance(u, ds, nums, strs)
	case r < 0.87:
		return g.qDateAnalysis(u, ds)
	case r < 0.91:
		return g.qNested(u, ds, nums, strs)
	case r < 0.96:
		return g.qComplexAnalytics(u, ds, nums, strs)
	default:
		return g.qLong(u, ds, nums)
	}
}

// qComplexAnalytics emits the deep hand-written analytics the paper's §6.1
// highlights: subquery + outer join + aggregation (+ sometimes a window)
// in one statement, yielding 8+ distinct physical operators.
func (g *sqlshareGen) qComplexAnalytics(u *genUser, ds *genDataset, nums, strs []colInfo) string {
	if len(strs) == 0 || len(nums) == 0 {
		return g.qNested(u, ds, nums, strs)
	}
	other := ds
	if len(u.datasets) > 1 {
		other = pick(g.rng, u.datasets)
	}
	bn := numericCols(other.cols)
	if len(bn) == 0 {
		return g.qNested(u, ds, nums, strs)
	}
	s, n := pick(g.rng, strs), pick(g.rng, nums)
	bk := pick(g.rng, bn)
	head := "SELECT sub.%s, sub.n, sub.m"
	tail := " ORDER BY sub.n DESC"
	if g.rng.Float64() < 0.4 {
		head = "SELECT sub.%s, sub.n, ROW_NUMBER() OVER (ORDER BY sub.n DESC) AS rk"
		tail = ""
	}
	return fmt.Sprintf(
		head+" FROM (SELECT a.%s, COUNT(*) AS n, AVG(a.%s) AS m FROM %s AS a LEFT OUTER JOIN %s AS b ON a.%s = b.%s "+
			"WHERE a.%s > %.3f GROUP BY a.%s HAVING COUNT(*) >= %d) AS sub "+
			"WHERE sub.m > (SELECT MIN(%s) FROM %s)"+tail,
		bracket(s.name),
		bracket(s.name), bracket(n.name), ds.ref(u.name), other.ref(u.name),
		bracket(n.name), bracket(bk.name),
		bracket(n.name), g.rng.Float64()*10, bracket(s.name), 1+g.rng.Intn(2),
		bracket(n.name), ds.ref(u.name))
}

// qStringMunging exercises the string-function vocabulary that dominates
// the paper's Table 4a — the tell-tale of data integration and cleaning
// happening in SQL.
func (g *sqlshareGen) qStringMunging(u *genUser, ds *genDataset, strs, nums []colInfo) string {
	if len(strs) == 0 {
		return g.qFilter(u, ds, nums, strs)
	}
	s := pick(g.rng, strs)
	c := bracket(s.name)
	exprs := []string{
		fmt.Sprintf("UPPER(%s) AS up", c),
		fmt.Sprintf("LOWER(%s) AS lo", c),
		fmt.Sprintf("LEN(%s) AS l", c),
		fmt.Sprintf("SUBSTRING(%s, 1, %d) AS prefix", c, 1+g.rng.Intn(4)),
		fmt.Sprintf("CHARINDEX('%s', %s) AS pos", string(rune('a'+g.rng.Intn(26))), c),
		fmt.Sprintf("REPLACE(%s, '_', '-') AS cleaned", c),
		fmt.Sprintf("LTRIM(RTRIM(%s)) AS trimmed", c),
		fmt.Sprintf("REVERSE(%s) AS rev", c),
		fmt.Sprintf("LEFT(%s, %d) AS head", c, 1+g.rng.Intn(3)),
		fmt.Sprintf("RIGHT(%s, %d) AS tail", c, 1+g.rng.Intn(3)),
		fmt.Sprintf("ISNULL(%s, 'missing') AS filled", c),
		fmt.Sprintf("COALESCE(%s, 'n/a') AS coalesced", c),
	}
	k := 2 + g.rng.Intn(3)
	picked := make([]string, 0, k)
	for i := 0; i < k; i++ {
		picked = append(picked, exprs[g.rng.Intn(len(exprs))])
	}
	sql := fmt.Sprintf("SELECT %s, %s FROM %s", c, strings.Join(picked, ", "), ds.ref(u.name))
	switch g.rng.Intn(3) {
	case 0:
		sql += fmt.Sprintf(" WHERE %s LIKE '%%%s%%'", c, string(rune('a'+g.rng.Intn(26))))
	case 1:
		sql += fmt.Sprintf(" WHERE PATINDEX('%%[0-9]%%', %s) = 0", c)
	default:
		sql += fmt.Sprintf(" WHERE ISNUMERIC(%s) = 0", c)
	}
	return sql
}

// qGeoDistance writes the hand-rolled haversine distance of a spatial
// science workload — heavy trigonometric expression use over lat/lon
// columns. Falls back for datasets without coordinates.
func (g *sqlshareGen) qGeoDistance(u *genUser, ds *genDataset, nums, strs []colInfo) string {
	var lat, lon *colInfo
	for i := range ds.cols {
		switch strings.ToLower(ds.cols[i].name) {
		case "lat":
			lat = &ds.cols[i]
		case "lon":
			lon = &ds.cols[i]
		}
	}
	if lat == nil || lon == nil {
		return g.qBinning(u, ds, nums)
	}
	refLat := 40 + g.rng.Float64()*20
	refLon := -130 + g.rng.Float64()*10
	sql := fmt.Sprintf(
		"SELECT *, 6371 * 2 * ASIN(SQRT(SQUARE(SIN(RADIANS(%s - %.4f) / 2)) + "+
			"COS(RADIANS(%.4f)) * COS(RADIANS(%s)) * SQUARE(SIN(RADIANS(%s - %.4f) / 2)))) AS dist_km FROM %s",
		bracket(lat.name), refLat, refLat, bracket(lat.name), bracket(lon.name), refLon, ds.ref(u.name))
	if g.rng.Float64() < 0.5 {
		sql = fmt.Sprintf("SELECT TOP %d * FROM (%s) AS d ORDER BY dist_km", 5+g.rng.Intn(15), sql)
	}
	return sql
}

// qDateAnalysis exercises the date/time vocabulary (§3.5: "rich support
// for dates and times appeared necessary"). Falls back when the dataset
// has no datetime column.
func (g *sqlshareGen) qDateAnalysis(u *genUser, ds *genDataset) string {
	var dt *colInfo
	for i := range ds.cols {
		if ds.cols[i].typ == sqltypes.DateTime {
			dt = &ds.cols[i]
			break
		}
	}
	nums := numericCols(ds.cols)
	if dt == nil || len(nums) == 0 {
		return g.qBinning(u, ds, nums)
	}
	c := bracket(dt.name)
	n := pick(g.rng, nums)
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("SELECT YEAR(%s) AS y, MONTH(%s) AS m, COUNT(*) AS n, AVG(%s) AS mean_val FROM %s GROUP BY YEAR(%s), MONTH(%s)",
			c, c, bracket(n.name), ds.ref(u.name), c, c)
	case 1:
		return fmt.Sprintf("SELECT DATEPART('hour', %s) AS hr, AVG(%s) AS hourly_mean FROM %s GROUP BY DATEPART('hour', %s) ORDER BY hr",
			c, bracket(n.name), ds.ref(u.name), c)
	case 2:
		return fmt.Sprintf("SELECT * FROM %s WHERE DATEDIFF('day', %s, '2015-01-01') < %d",
			ds.ref(u.name), c, 30+g.rng.Intn(600))
	default:
		return fmt.Sprintf("SELECT DAY(%s) AS d, MIN(%s) AS lo, MAX(%s) AS hi FROM %s GROUP BY DAY(%s)",
			c, bracket(n.name), bracket(n.name), ds.ref(u.name), c)
	}
}

// maybeOrder appends ORDER BY with the probability that lands the corpus
// near the paper's 24% sorting rate given TOP queries always sort.
func (g *sqlshareGen) maybeOrder(cols []colInfo) string {
	if len(cols) == 0 || g.rng.Float64() > 0.15 {
		return ""
	}
	dir := ""
	if g.rng.Float64() < 0.5 {
		dir = " DESC"
	}
	return " ORDER BY " + bracket(pick(g.rng, cols).name) + dir
}

func (g *sqlshareGen) qFilter(u *genUser, ds *genDataset, nums, strs []colInfo) string {
	if len(nums) == 0 {
		return fmt.Sprintf("SELECT * FROM %s", ds.ref(u.name))
	}
	// Half of the filters hit the leading column — the natural access path
	// for clustered data (timestamps, ids), which planning turns into a
	// Clustered Index Seek.
	var sql string
	lead := ds.cols[0]
	if g.rng.Float64() < 0.5 && (lead.typ == sqltypes.Int || lead.typ == sqltypes.Float || lead.typ == sqltypes.DateTime) {
		lit := fmt.Sprintf("%.2f", g.rng.Float64()*50)
		if lead.typ == sqltypes.DateTime {
			lit = fmt.Sprintf("'%d-%02d-01'", 2010+g.rng.Intn(5), 1+g.rng.Intn(12))
		}
		op := []string{">", ">=", "<", "="}[g.rng.Intn(4)]
		sql = fmt.Sprintf("SELECT * FROM %s WHERE %s %s %s",
			ds.ref(u.name), bracket(lead.name), op, lit)
		return sql + g.maybeOrder(ds.cols)
	}
	n := pick(g.rng, nums)
	sql = fmt.Sprintf("SELECT * FROM %s WHERE %s > %.2f",
		ds.ref(u.name), bracket(n.name), g.rng.Float64()*50)
	if len(strs) > 0 && g.rng.Float64() < 0.4 {
		s := pick(g.rng, strs)
		if g.rng.Float64() < 0.5 {
			sql += fmt.Sprintf(" AND %s LIKE '%s%%'", bracket(s.name), string(rune('a'+g.rng.Intn(26))))
		} else {
			sql += fmt.Sprintf(" AND %s IS NOT NULL", bracket(s.name))
		}
	}
	return sql + g.maybeOrder(ds.cols)
}

func (g *sqlshareGen) qAggregate(u *genUser, ds *genDataset, nums, strs []colInfo) string {
	// A quarter of the aggregates are whole-dataset summaries (Stream
	// Aggregate without grouping) — the quick sanity checks of daily
	// processing.
	if len(nums) > 0 && g.rng.Float64() < 0.25 {
		n := pick(g.rng, nums)
		return fmt.Sprintf("SELECT COUNT(*) AS n, AVG(%s) AS mean_val, STDEV(%s) AS sd FROM %s",
			bracket(n.name), bracket(n.name), ds.ref(u.name))
	}
	if len(strs) == 0 || len(nums) == 0 {
		if len(nums) > 0 {
			return fmt.Sprintf("SELECT COUNT(*) AS n, AVG(%s) AS mean_val, MIN(%s) AS lo, MAX(%s) AS hi FROM %s",
				bracket(nums[0].name), bracket(nums[0].name), bracket(nums[0].name), ds.ref(u.name))
		}
		return fmt.Sprintf("SELECT COUNT(*) AS n FROM %s", ds.ref(u.name))
	}
	s := pick(g.rng, strs)
	n := pick(g.rng, nums)
	sql := fmt.Sprintf("SELECT %s, COUNT(*) AS n, AVG(%s) AS mean_val FROM %s GROUP BY %s",
		bracket(s.name), bracket(n.name), ds.ref(u.name), bracket(s.name))
	if g.rng.Float64() < 0.3 {
		sql += fmt.Sprintf(" HAVING COUNT(*) > %d", 1+g.rng.Intn(4))
	}
	if g.rng.Float64() < 0.2 {
		sql += " ORDER BY n DESC"
	}
	return sql
}

// qJoin integrates two datasets; half the joins are outer, matching the
// 11% outer-join rate at a ~22% join rate.
func (g *sqlshareGen) qJoin(u *genUser, ds *genDataset) string {
	other := ds
	if len(u.datasets) > 1 {
		other = pick(g.rng, u.datasets)
	}
	an, bn := numericCols(ds.cols), numericCols(other.cols)
	if len(an) == 0 || len(bn) == 0 {
		return g.qFilter(u, ds, an, colsOf(ds.cols, sqltypes.String))
	}
	ak, bk := pick(g.rng, an), pick(g.rng, bn)
	joinKind := "JOIN"
	if g.rng.Float64() < 0.4 {
		joinKind = "LEFT OUTER JOIN"
	}
	aCol := pick(g.rng, ds.cols)
	bCol := pick(g.rng, other.cols)
	sql := fmt.Sprintf("SELECT a.%s, b.%s FROM %s AS a %s %s AS b ON a.%s = b.%s",
		bracket(aCol.name), bracket(bCol.name),
		ds.ref(u.name), joinKind, other.ref(u.name),
		bracket(ak.name), bracket(bk.name))
	if g.rng.Float64() < 0.3 {
		sql += fmt.Sprintf(" WHERE a.%s > %.2f", bracket(ak.name), g.rng.Float64()*20)
	}
	return sql
}

func (g *sqlshareGen) qWindow(u *genUser, ds *genDataset, nums, strs []colInfo) string {
	if len(nums) == 0 {
		return g.qFilter(u, ds, nums, strs)
	}
	n := pick(g.rng, nums)
	if len(strs) > 0 && g.rng.Float64() < 0.7 {
		s := pick(g.rng, strs)
		fn := pick(g.rng, []string{"ROW_NUMBER()", "RANK()", "DENSE_RANK()"})
		return fmt.Sprintf("SELECT %s, %s, %s OVER (PARTITION BY %s ORDER BY %s DESC) AS rk FROM %s",
			bracket(s.name), bracket(n.name), fn, bracket(s.name), bracket(n.name), ds.ref(u.name))
	}
	return fmt.Sprintf("SELECT %s, SUM(%s) OVER (ORDER BY %s) AS running_total FROM %s",
		bracket(n.name), bracket(n.name), bracket(n.name), ds.ref(u.name))
}

func (g *sqlshareGen) qTop(u *genUser, ds *genDataset, nums []colInfo) string {
	if len(nums) == 0 {
		return fmt.Sprintf("SELECT TOP %d * FROM %s", 5+g.rng.Intn(20), ds.ref(u.name))
	}
	n := pick(g.rng, nums)
	return fmt.Sprintf("SELECT TOP %d * FROM %s ORDER BY %s DESC",
		5+g.rng.Intn(20), ds.ref(u.name), bracket(n.name))
}

func (g *sqlshareGen) qUnion(u *genUser, ds *genDataset) string {
	// Union the same typed column from two datasets (or the same one).
	other := ds
	for _, cand := range u.datasets {
		if cand != ds && g.rng.Float64() < 0.5 {
			other = cand
			break
		}
	}
	ac := pick(g.rng, ds.cols)
	// Find a type-compatible column on the other side.
	var bc *colInfo
	for i := range other.cols {
		if other.cols[i].typ == ac.typ {
			bc = &other.cols[i]
			break
		}
	}
	if bc == nil {
		return fmt.Sprintf("SELECT %s FROM %s", bracket(ac.name), ds.ref(u.name))
	}
	all := ""
	if g.rng.Float64() < 0.5 {
		all = " ALL"
	}
	return fmt.Sprintf("SELECT %s FROM %s UNION%s SELECT %s FROM %s",
		bracket(ac.name), ds.ref(u.name), all, bracket(bc.name), other.ref(u.name))
}

func (g *sqlshareGen) qSubquery(u *genUser, ds *genDataset, nums []colInfo) string {
	if len(nums) == 0 {
		return fmt.Sprintf("SELECT COUNT(*) AS n FROM %s", ds.ref(u.name))
	}
	n := pick(g.rng, nums)
	ref := ds.ref(u.name)
	if g.rng.Float64() < 0.5 {
		return fmt.Sprintf("SELECT * FROM %s WHERE %s > (SELECT AVG(%s) FROM %s)",
			ref, bracket(n.name), bracket(n.name), ref)
	}
	return fmt.Sprintf("SELECT * FROM %s AS o WHERE EXISTS (SELECT 1 FROM %s AS i WHERE i.%s > o.%s)",
		ref, ref, bracket(n.name), bracket(n.name))
}

// qBinning is the histogram idiom the paper calls common enough (and
// awkward enough) to deserve first-class support (§5.3).
func (g *sqlshareGen) qBinning(u *genUser, ds *genDataset, nums []colInfo) string {
	if len(nums) == 0 {
		return fmt.Sprintf("SELECT COUNT(*) AS n FROM %s", ds.ref(u.name))
	}
	n := pick(g.rng, nums)
	width := []string{"1", "5", "10"}[g.rng.Intn(3)]
	sql := fmt.Sprintf(
		"SELECT FLOOR(%s / %s) * %s AS bin, COUNT(*) AS n FROM %s GROUP BY FLOOR(%s / %s) * %s",
		bracket(n.name), width, width, ds.ref(u.name), bracket(n.name), width, width)
	if g.rng.Float64() < 0.5 {
		sql += " ORDER BY bin"
	}
	return sql
}

func (g *sqlshareGen) qNested(u *genUser, ds *genDataset, nums, strs []colInfo) string {
	if len(strs) == 0 || len(nums) == 0 {
		return g.qFilter(u, ds, nums, strs)
	}
	s := pick(g.rng, strs)
	n := pick(g.rng, nums)
	// A third of the users spell the staged computation as a CTE instead
	// of a derived table — same plan, different surface syntax (which the
	// QPT equivalence metric unifies).
	if g.rng.Float64() < 0.33 {
		return fmt.Sprintf(
			"WITH sub AS (SELECT %s, COUNT(*) AS n, AVG(%s) AS m FROM %s GROUP BY %s) SELECT %s, n FROM sub WHERE n > %d ORDER BY n DESC",
			bracket(s.name), bracket(n.name), ds.ref(u.name), bracket(s.name), bracket(s.name), 1+g.rng.Intn(3))
	}
	return fmt.Sprintf(
		"SELECT sub.%s, sub.n FROM (SELECT %s, COUNT(*) AS n, AVG(%s) AS m FROM %s GROUP BY %s) AS sub WHERE sub.n > %d ORDER BY sub.n DESC",
		bracket(s.name), bracket(s.name), bracket(n.name), ds.ref(u.name), bracket(s.name), 1+g.rng.Intn(3))
}

// qLong emits the paper's curiosity: a >1000-character query with only a
// couple of distinct operators (a filter over dozens of clauses).
func (g *sqlshareGen) qLong(u *genUser, ds *genDataset, nums []colInfo) string {
	if len(nums) == 0 {
		return fmt.Sprintf("SELECT * FROM %s", ds.ref(u.name))
	}
	n := pick(g.rng, nums)
	clauses := make([]string, 12+g.rng.Intn(45))
	for i := range clauses {
		lo := g.rng.Float64() * 100
		clauses[i] = fmt.Sprintf("(%s BETWEEN %.4f AND %.4f)", bracket(n.name), lo, lo+g.rng.Float64()*5)
	}
	return fmt.Sprintf("SELECT * FROM %s WHERE %s", ds.ref(u.name), strings.Join(clauses, " OR "))
}

// ---------------------------------------------------------------- views

// saveDerivedView derives a new dataset from ds using one of the §5.1
// schematization idioms or a generic analytical view.
func (g *sqlshareGen) saveDerivedView(u *genUser, ds *genDataset) *genDataset {
	r := g.rng.Float64()
	switch {
	case r < 0.30:
		return g.viewRename(u, ds)
	case r < 0.45:
		return g.viewNullInjection(u, ds)
	case r < 0.58:
		return g.viewCast(u, ds)
	case r < 0.64:
		return g.viewRecompose(u, ds)
	case r < 0.82:
		return g.viewAggregate(u, ds)
	default:
		return g.viewFilter(u, ds)
	}
}

func (g *sqlshareGen) nextViewName(u *genUser, tag string) string {
	u.viewSeq++
	return fmt.Sprintf("%s_%s_%d", tag, u.name, u.viewSeq)
}

func (g *sqlshareGen) save(u *genUser, name, sql string, cols []colInfo, kind datasetKind) *genDataset {
	if _, err := g.cat.SaveView(u.name, name, sql, catalog.Meta{Description: "derived view"}); err != nil {
		return nil
	}
	return g.registerView(u, name, cols, kind)
}

// viewRename assigns semantic names — the dominant idiom over headerless
// uploads (§5.1: 16% of datasets involve renaming).
func (g *sqlshareGen) viewRename(u *genUser, ds *genDataset) *genDataset {
	var items []string
	cols := make([]colInfo, len(ds.cols))
	for i, c := range ds.cols {
		newName := semanticName(c.typ, i)
		items = append(items, fmt.Sprintf("%s AS %s", bracket(c.name), bracket(newName)))
		cols[i] = colInfo{newName, c.typ}
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", strings.Join(items, ", "), ds.ref(u.name))
	return g.save(u, g.nextViewName(u, "named"), sql, cols, ds.kind)
}

func semanticName(t sqltypes.Type, i int) string {
	switch t {
	case sqltypes.DateTime:
		return fmt.Sprintf("measured_at_%d", i+1)
	case sqltypes.Int:
		return fmt.Sprintf("count_%d", i+1)
	case sqltypes.Float:
		return fmt.Sprintf("reading_%d", i+1)
	default:
		return fmt.Sprintf("label_%d", i+1)
	}
}

// viewNullInjection replaces sentinel values with NULL via CASE (§5.1).
func (g *sqlshareGen) viewNullInjection(u *genUser, ds *genDataset) *genDataset {
	nums := numericCols(ds.cols)
	if len(nums) == 0 {
		return g.viewFilter(u, ds)
	}
	target := pick(g.rng, nums)
	var items []string
	cols := make([]colInfo, 0, len(ds.cols))
	for _, c := range ds.cols {
		if c.name == target.name {
			clean := c.name + "_clean"
			items = append(items, fmt.Sprintf(
				"CASE WHEN %s = -999 THEN NULL ELSE %s END AS %s",
				bracket(c.name), bracket(c.name), bracket(clean)))
			cols = append(cols, colInfo{clean, c.typ})
			continue
		}
		items = append(items, bracket(c.name))
		cols = append(cols, c)
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", strings.Join(items, ", "), ds.ref(u.name))
	return g.save(u, g.nextViewName(u, "clean"), sql, cols, ds.kind)
}

// viewCast imposes types post hoc (§5.1).
func (g *sqlshareGen) viewCast(u *genUser, ds *genDataset) *genDataset {
	nums := numericCols(ds.cols)
	if len(nums) == 0 {
		return g.viewFilter(u, ds)
	}
	target := pick(g.rng, nums)
	var items []string
	cols := make([]colInfo, 0, len(ds.cols))
	for _, c := range ds.cols {
		if c.name == target.name {
			typed := c.name + "_f"
			items = append(items, fmt.Sprintf("CAST(%s AS FLOAT) AS %s", bracket(c.name), bracket(typed)))
			cols = append(cols, colInfo{typed, sqltypes.Float})
			continue
		}
		items = append(items, bracket(c.name))
		cols = append(cols, c)
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", strings.Join(items, ", "), ds.ref(u.name))
	return g.save(u, g.nextViewName(u, "typed"), sql, cols, ds.kind)
}

// viewRecompose UNIONs two same-shape uploads back into one logical
// dataset (§5.1 vertical recomposition).
func (g *sqlshareGen) viewRecompose(u *genUser, ds *genDataset) *genDataset {
	var other *genDataset
	for _, cand := range u.datasets {
		if cand != ds && cand.kind == ds.kind && sameShape(cand.cols, ds.cols) {
			other = cand
			break
		}
	}
	if other == nil {
		return g.viewFilter(u, ds)
	}
	aList := make([]string, len(ds.cols))
	bList := make([]string, len(other.cols))
	for i := range ds.cols {
		aList[i] = bracket(ds.cols[i].name)
		bList[i] = bracket(other.cols[i].name)
	}
	sql := fmt.Sprintf("SELECT %s FROM %s UNION ALL SELECT %s FROM %s",
		strings.Join(aList, ", "), ds.ref(u.name),
		strings.Join(bList, ", "), other.ref(u.name))
	return g.save(u, g.nextViewName(u, "combined"), sql, ds.cols, ds.kind)
}

func sameShape(a, b []colInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].typ != b[i].typ {
			return false
		}
	}
	return true
}

// viewAggregate derives a summary dataset.
func (g *sqlshareGen) viewAggregate(u *genUser, ds *genDataset) *genDataset {
	strs := colsOf(ds.cols, sqltypes.String)
	nums := numericCols(ds.cols)
	if len(strs) == 0 || len(nums) == 0 {
		return g.viewFilter(u, ds)
	}
	s, n := pick(g.rng, strs), pick(g.rng, nums)
	sql := fmt.Sprintf("SELECT %s, COUNT(*) AS n, AVG(%s) AS mean_val FROM %s GROUP BY %s",
		bracket(s.name), bracket(n.name), ds.ref(u.name), bracket(s.name))
	cols := []colInfo{{s.name, s.typ}, {"n", sqltypes.Int}, {"mean_val", sqltypes.Float}}
	return g.save(u, g.nextViewName(u, "summary"), sql, cols, ds.kind)
}

// viewFilter derives a protected/subset dataset.
func (g *sqlshareGen) viewFilter(u *genUser, ds *genDataset) *genDataset {
	nums := numericCols(ds.cols)
	sql := fmt.Sprintf("SELECT * FROM %s", ds.ref(u.name))
	if len(nums) > 0 {
		n := pick(g.rng, nums)
		sql += fmt.Sprintf(" WHERE %s > %.2f", bracket(n.name), g.rng.Float64()*20)
	}
	return g.save(u, g.nextViewName(u, "subset"), sql, ds.cols, ds.kind)
}

// buildViewChain layers derived views to the requested depth — the deep
// provenance chains of Figure 6.
func (g *sqlshareGen) buildViewChain(u *genUser, depth int) {
	if len(u.datasets) == 0 {
		return
	}
	cur := u.datasets[len(u.datasets)-1]
	for i := 0; i < depth && cur != nil; i++ {
		next := g.saveDerivedView(u, cur)
		if next == nil {
			return
		}
		cur = next
	}
}

// prepareCanned fixes the pipeline user's recurring processing queries.
// __BATCH__ is substituted with each day's upload.
func (g *sqlshareGen) prepareCanned(u *genUser) {
	master := u.datasets[0]
	nums := numericCols(master.cols)
	strs := colsOf(master.cols, sqltypes.String)
	u.canned = append(u.canned, "SELECT COUNT(*) AS n FROM __BATCH__")
	if len(nums) > 0 {
		n := nums[0]
		u.canned = append(u.canned,
			fmt.Sprintf("SELECT AVG(%s) AS mean_val, MIN(%s) AS lo, MAX(%s) AS hi FROM __BATCH__",
				bracket(n.name), bracket(n.name), bracket(n.name)))
	}
	if len(strs) > 0 && len(nums) > 0 {
		u.canned = append(u.canned,
			fmt.Sprintf("SELECT %s, COUNT(*) AS n FROM __BATCH__ GROUP BY %s",
				bracket(strs[0].name), bracket(strs[0].name)))
	}
}
