package synth

import (
	"math/rand"

	"sqlshare/internal/sqltypes"
)

// Template names the query shapes the SQLShare-style generator can emit.
// They double as the per-template latency buckets the load harness reports
// on, so the names are stable, lowercase identifiers.
type Template string

// Query templates, in the order buildQuery historically dispatched them.
const (
	TplFilter    Template = "filter"
	TplAggregate Template = "aggregate"
	TplJoin      Template = "join"
	TplWindow    Template = "window"
	TplTop       Template = "top"
	TplUnion     Template = "union"
	TplSubquery  Template = "subquery"
	TplBinning   Template = "binning"
	TplString    Template = "string"
	TplGeo       Template = "geo"
	TplDate      Template = "date"
	TplNested    Template = "nested"
	TplComplex   Template = "complex"
	TplLong      Template = "long"
)

// TemplateMix weights the query templates. Weights are relative — they are
// normalized before use — so {Filter: 1, Join: 1} means half filters, half
// joins. The zero value is invalid; use DefaultMix for the paper-calibrated
// distribution.
type TemplateMix struct {
	Filter    float64 `json:"filter"`
	Aggregate float64 `json:"aggregate"`
	Join      float64 `json:"join"`
	Window    float64 `json:"window"`
	Top       float64 `json:"top"`
	Union     float64 `json:"union"`
	Subquery  float64 `json:"subquery"`
	Binning   float64 `json:"binning"`
	String    float64 `json:"string"`
	Geo       float64 `json:"geo"`
	Date      float64 `json:"date"`
	Nested    float64 `json:"nested"`
	Complex   float64 `json:"complex"`
	Long      float64 `json:"long"`
}

// DefaultMix reproduces the distribution the fixed-ratio generator used,
// calibrated to the paper's §5.3 feature rates (sorting 24%, outer joins
// 11%, window functions 4%, TOP 2%) and the §6.1 complexity shapes.
func DefaultMix() TemplateMix {
	return TemplateMix{
		Filter:    0.24,
		Aggregate: 0.16,
		Join:      0.16,
		Window:    0.025,
		Top:       0.015,
		Union:     0.04,
		Subquery:  0.05,
		Binning:   0.05,
		String:    0.06,
		Geo:       0.02,
		Date:      0.05,
		Nested:    0.04,
		Complex:   0.05,
		Long:      0.04,
	}
}

// weights returns the mix in dispatch order alongside the template names.
func (m TemplateMix) weights() ([]float64, []Template) {
	return []float64{
			m.Filter, m.Aggregate, m.Join, m.Window, m.Top, m.Union, m.Subquery,
			m.Binning, m.String, m.Geo, m.Date, m.Nested, m.Complex, m.Long,
		}, []Template{
			TplFilter, TplAggregate, TplJoin, TplWindow, TplTop, TplUnion, TplSubquery,
			TplBinning, TplString, TplGeo, TplDate, TplNested, TplComplex, TplLong,
		}
}

// Total sums the weights (0 means "use DefaultMix instead").
func (m TemplateMix) Total() float64 {
	ws, _ := m.weights()
	var t float64
	for _, w := range ws {
		t += w
	}
	return t
}

// pick draws one template from the mix with a single rng draw. A mix whose
// weights sum to zero falls back to filters, so a degenerate spec still
// compiles.
func (m TemplateMix) pick(rng *rand.Rand) Template {
	ws, names := m.weights()
	total := m.Total()
	if total <= 0 {
		return TplFilter
	}
	r := rng.Float64() * total
	for i, w := range ws {
		if r < w {
			return names[i]
		}
		r -= w
	}
	return names[len(names)-1]
}

// ColumnInfo is the generator's view of a column: enough to write queries
// against it without consulting the catalog.
type ColumnInfo struct {
	Name string        `json:"name"`
	Type sqltypes.Type `json:"type"`
}

// TableInfo describes one queryable dataset — owner, name and post-ingest
// schema — decoupled from the catalog so external packages (the load
// harness) can compile SQL against tables that do not exist yet.
type TableInfo struct {
	Owner string       `json:"owner"`
	Name  string       `json:"name"`
	Cols  []ColumnInfo `json:"cols"`
}

// FullName is the owner-qualified dataset name.
func (t *TableInfo) FullName() string { return t.Owner + "." + t.Name }

// Ref renders the dataset reference for SQL issued by user: bare name for
// the owner, owner-qualified for everyone else.
func (t *TableInfo) Ref(user string) string {
	if t.Owner == user {
		return bracket(t.Name)
	}
	return bracket(t.FullName())
}
