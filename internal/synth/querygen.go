package synth

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"sqlshare/internal/sqltypes"
)

// QueryGen is the parameterized query compiler: it renders one
// hand-written-style SQL statement at a time against TableInfo schemas,
// with dials for the template mix, join depth and predicate-value skew.
// It is decoupled from the catalog — the corpus generator drives it with
// live datasets, the load harness with tables that will only exist once
// the compiled workload's setup phase has run. Deterministic for a given
// rng.
type QueryGen struct {
	rng *rand.Rand
	mix TemplateMix
	// joinDepth is the number of joined tables beyond the first in join
	// templates (1 = the classic two-table join).
	joinDepth int
	// valueSkew skews predicate literals toward zero: 0 = uniform, larger
	// values concentrate thresholds near the low end of the domain (the
	// hot-key behaviour of a Zipf-distributed workload, so selective and
	// unselective predicates recur in realistic proportions).
	valueSkew float64
}

// NewQueryGen builds a query compiler over rng. A zero mix falls back to
// DefaultMix; joinDepth < 1 is clamped to 1; negative skew to 0.
func NewQueryGen(rng *rand.Rand, mix TemplateMix, joinDepth int, valueSkew float64) *QueryGen {
	if mix.Total() <= 0 {
		mix = DefaultMix()
	}
	if joinDepth < 1 {
		joinDepth = 1
	}
	if valueSkew < 0 {
		valueSkew = 0
	}
	return &QueryGen{rng: rng, mix: mix, joinDepth: joinDepth, valueSkew: valueSkew}
}

// lit draws a predicate literal in [0, scale): uniform at skew 0, and
// increasingly concentrated near zero as the skew dial rises (a single rng
// draw either way, so dialing skew does not perturb the op stream shape).
func (q *QueryGen) lit(scale float64) float64 {
	u := q.rng.Float64()
	if q.valueSkew > 0 {
		u = math.Pow(u, 1+q.valueSkew)
	}
	return u * scale
}

// Build produces one query for user against ds, drawing the template from
// the mix. pool is the set of tables joins and unions may pull in (it
// should include ds). The returned Template labels the drawn shape — the
// per-template bucket load reports aggregate latency under — even when a
// schema-poor table forces the builder to fall back to a simpler form.
func (q *QueryGen) Build(user string, ds *TableInfo, pool []*TableInfo) (string, Template) {
	if ds == nil || len(ds.Cols) == 0 {
		return "", TplFilter
	}
	nums := numericCols(ds.Cols)
	strs := colsOf(ds.Cols, sqltypes.String)
	tpl := q.mix.pick(q.rng)
	var sql string
	switch tpl {
	case TplFilter:
		sql = q.qFilter(user, ds, nums, strs)
	case TplAggregate:
		sql = q.qAggregate(user, ds, nums, strs)
	case TplJoin:
		sql = q.qJoin(user, ds, pool)
	case TplWindow:
		sql = q.qWindow(user, ds, nums, strs)
	case TplTop:
		sql = q.qTop(user, ds, nums)
	case TplUnion:
		sql = q.qUnion(user, ds, pool)
	case TplSubquery:
		sql = q.qSubquery(user, ds, nums)
	case TplBinning:
		sql = q.qBinning(user, ds, nums)
	case TplString:
		sql = q.qStringMunging(user, ds, strs, nums)
	case TplGeo:
		sql = q.qGeoDistance(user, ds, nums)
	case TplDate:
		sql = q.qDateAnalysis(user, ds)
	case TplNested:
		sql = q.qNested(user, ds, nums, strs)
	case TplComplex:
		sql = q.qComplexAnalytics(user, ds, pool, nums, strs)
	default:
		sql = q.qLong(user, ds, nums)
	}
	return sql, tpl
}

// qComplexAnalytics emits the deep hand-written analytics the paper's §6.1
// highlights: subquery + outer join + aggregation (+ sometimes a window)
// in one statement, yielding 8+ distinct physical operators.
func (q *QueryGen) qComplexAnalytics(user string, ds *TableInfo, pool []*TableInfo, nums, strs []ColumnInfo) string {
	if len(strs) == 0 || len(nums) == 0 {
		return q.qNested(user, ds, nums, strs)
	}
	other := ds
	if len(pool) > 1 {
		if cand := pick(q.rng, pool); cand != nil {
			other = cand
		}
	}
	bn := numericCols(other.Cols)
	if len(bn) == 0 {
		return q.qNested(user, ds, nums, strs)
	}
	s, n := pick(q.rng, strs), pick(q.rng, nums)
	bk := pick(q.rng, bn)
	head := "SELECT sub.%s, sub.n, sub.m"
	tail := " ORDER BY sub.n DESC"
	if q.rng.Float64() < 0.4 {
		head = "SELECT sub.%s, sub.n, ROW_NUMBER() OVER (ORDER BY sub.n DESC) AS rk"
		tail = ""
	}
	return fmt.Sprintf(
		head+" FROM (SELECT a.%s, COUNT(*) AS n, AVG(a.%s) AS m FROM %s AS a LEFT OUTER JOIN %s AS b ON a.%s = b.%s "+
			"WHERE a.%s > %.3f GROUP BY a.%s HAVING COUNT(*) >= %d) AS sub "+
			"WHERE sub.m > (SELECT MIN(%s) FROM %s)"+tail,
		bracket(s.Name),
		bracket(s.Name), bracket(n.Name), ds.Ref(user), other.Ref(user),
		bracket(n.Name), bracket(bk.Name),
		bracket(n.Name), q.lit(10), bracket(s.Name), 1+q.rng.Intn(2),
		bracket(n.Name), ds.Ref(user))
}

// qStringMunging exercises the string-function vocabulary that dominates
// the paper's Table 4a — the tell-tale of data integration and cleaning
// happening in SQL.
func (q *QueryGen) qStringMunging(user string, ds *TableInfo, strs, nums []ColumnInfo) string {
	if len(strs) == 0 {
		return q.qFilter(user, ds, nums, strs)
	}
	s := pick(q.rng, strs)
	c := bracket(s.Name)
	exprs := []string{
		fmt.Sprintf("UPPER(%s) AS up", c),
		fmt.Sprintf("LOWER(%s) AS lo", c),
		fmt.Sprintf("LEN(%s) AS l", c),
		fmt.Sprintf("SUBSTRING(%s, 1, %d) AS prefix", c, 1+q.rng.Intn(4)),
		fmt.Sprintf("CHARINDEX('%s', %s) AS pos", string(rune('a'+q.rng.Intn(26))), c),
		fmt.Sprintf("REPLACE(%s, '_', '-') AS cleaned", c),
		fmt.Sprintf("LTRIM(RTRIM(%s)) AS trimmed", c),
		fmt.Sprintf("REVERSE(%s) AS rev", c),
		fmt.Sprintf("LEFT(%s, %d) AS head", c, 1+q.rng.Intn(3)),
		fmt.Sprintf("RIGHT(%s, %d) AS tail", c, 1+q.rng.Intn(3)),
		fmt.Sprintf("ISNULL(%s, 'missing') AS filled", c),
		fmt.Sprintf("COALESCE(%s, 'n/a') AS coalesced", c),
	}
	k := 2 + q.rng.Intn(3)
	picked := make([]string, 0, k)
	for i := 0; i < k; i++ {
		picked = append(picked, exprs[q.rng.Intn(len(exprs))])
	}
	sql := fmt.Sprintf("SELECT %s, %s FROM %s", c, strings.Join(picked, ", "), ds.Ref(user))
	switch q.rng.Intn(3) {
	case 0:
		sql += fmt.Sprintf(" WHERE %s LIKE '%%%s%%'", c, string(rune('a'+q.rng.Intn(26))))
	case 1:
		sql += fmt.Sprintf(" WHERE PATINDEX('%%[0-9]%%', %s) = 0", c)
	default:
		sql += fmt.Sprintf(" WHERE ISNUMERIC(%s) = 0", c)
	}
	return sql
}

// qGeoDistance writes the hand-rolled haversine distance of a spatial
// science workload — heavy trigonometric expression use over lat/lon
// columns. Falls back for datasets without coordinates.
func (q *QueryGen) qGeoDistance(user string, ds *TableInfo, nums []ColumnInfo) string {
	var lat, lon *ColumnInfo
	for i := range ds.Cols {
		switch strings.ToLower(ds.Cols[i].Name) {
		case "lat":
			lat = &ds.Cols[i]
		case "lon":
			lon = &ds.Cols[i]
		}
	}
	if lat == nil || lon == nil {
		return q.qBinning(user, ds, nums)
	}
	refLat := 40 + q.rng.Float64()*20
	refLon := -130 + q.rng.Float64()*10
	sql := fmt.Sprintf(
		"SELECT *, 6371 * 2 * ASIN(SQRT(SQUARE(SIN(RADIANS(%s - %.4f) / 2)) + "+
			"COS(RADIANS(%.4f)) * COS(RADIANS(%s)) * SQUARE(SIN(RADIANS(%s - %.4f) / 2)))) AS dist_km FROM %s",
		bracket(lat.Name), refLat, refLat, bracket(lat.Name), bracket(lon.Name), refLon, ds.Ref(user))
	if q.rng.Float64() < 0.5 {
		sql = fmt.Sprintf("SELECT TOP %d * FROM (%s) AS d ORDER BY dist_km", 5+q.rng.Intn(15), sql)
	}
	return sql
}

// qDateAnalysis exercises the date/time vocabulary (§3.5: "rich support
// for dates and times appeared necessary"). Falls back when the dataset
// has no datetime column.
func (q *QueryGen) qDateAnalysis(user string, ds *TableInfo) string {
	var dt *ColumnInfo
	for i := range ds.Cols {
		if ds.Cols[i].Type == sqltypes.DateTime {
			dt = &ds.Cols[i]
			break
		}
	}
	nums := numericCols(ds.Cols)
	if dt == nil || len(nums) == 0 {
		return q.qBinning(user, ds, nums)
	}
	c := bracket(dt.Name)
	n := pick(q.rng, nums)
	switch q.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("SELECT YEAR(%s) AS y, MONTH(%s) AS m, COUNT(*) AS n, AVG(%s) AS mean_val FROM %s GROUP BY YEAR(%s), MONTH(%s)",
			c, c, bracket(n.Name), ds.Ref(user), c, c)
	case 1:
		return fmt.Sprintf("SELECT DATEPART('hour', %s) AS hr, AVG(%s) AS hourly_mean FROM %s GROUP BY DATEPART('hour', %s) ORDER BY hr",
			c, bracket(n.Name), ds.Ref(user), c)
	case 2:
		return fmt.Sprintf("SELECT * FROM %s WHERE DATEDIFF('day', %s, '2015-01-01') < %d",
			ds.Ref(user), c, 30+q.rng.Intn(600))
	default:
		return fmt.Sprintf("SELECT DAY(%s) AS d, MIN(%s) AS lo, MAX(%s) AS hi FROM %s GROUP BY DAY(%s)",
			c, bracket(n.Name), bracket(n.Name), ds.Ref(user), c)
	}
}

// maybeOrder appends ORDER BY with the probability that lands the corpus
// near the paper's 24% sorting rate given TOP queries always sort.
func (q *QueryGen) maybeOrder(cols []ColumnInfo) string {
	if len(cols) == 0 || q.rng.Float64() > 0.15 {
		return ""
	}
	dir := ""
	if q.rng.Float64() < 0.5 {
		dir = " DESC"
	}
	return " ORDER BY " + bracket(pick(q.rng, cols).Name) + dir
}

func (q *QueryGen) qFilter(user string, ds *TableInfo, nums, strs []ColumnInfo) string {
	if len(nums) == 0 {
		return fmt.Sprintf("SELECT * FROM %s", ds.Ref(user))
	}
	// Half of the filters hit the leading column — the natural access path
	// for clustered data (timestamps, ids), which planning turns into a
	// Clustered Index Seek.
	var sql string
	lead := ds.Cols[0]
	if q.rng.Float64() < 0.5 && (lead.Type == sqltypes.Int || lead.Type == sqltypes.Float || lead.Type == sqltypes.DateTime) {
		lit := fmt.Sprintf("%.2f", q.lit(50))
		if lead.Type == sqltypes.DateTime {
			lit = fmt.Sprintf("'%d-%02d-01'", 2010+q.rng.Intn(5), 1+q.rng.Intn(12))
		}
		op := []string{">", ">=", "<", "="}[q.rng.Intn(4)]
		sql = fmt.Sprintf("SELECT * FROM %s WHERE %s %s %s",
			ds.Ref(user), bracket(lead.Name), op, lit)
		return sql + q.maybeOrder(ds.Cols)
	}
	n := pick(q.rng, nums)
	sql = fmt.Sprintf("SELECT * FROM %s WHERE %s > %.2f",
		ds.Ref(user), bracket(n.Name), q.lit(50))
	if len(strs) > 0 && q.rng.Float64() < 0.4 {
		s := pick(q.rng, strs)
		if q.rng.Float64() < 0.5 {
			sql += fmt.Sprintf(" AND %s LIKE '%s%%'", bracket(s.Name), string(rune('a'+q.rng.Intn(26))))
		} else {
			sql += fmt.Sprintf(" AND %s IS NOT NULL", bracket(s.Name))
		}
	}
	return sql + q.maybeOrder(ds.Cols)
}

func (q *QueryGen) qAggregate(user string, ds *TableInfo, nums, strs []ColumnInfo) string {
	// A quarter of the aggregates are whole-dataset summaries (Stream
	// Aggregate without grouping) — the quick sanity checks of daily
	// processing.
	if len(nums) > 0 && q.rng.Float64() < 0.25 {
		n := pick(q.rng, nums)
		return fmt.Sprintf("SELECT COUNT(*) AS n, AVG(%s) AS mean_val, STDEV(%s) AS sd FROM %s",
			bracket(n.Name), bracket(n.Name), ds.Ref(user))
	}
	if len(strs) == 0 || len(nums) == 0 {
		if len(nums) > 0 {
			return fmt.Sprintf("SELECT COUNT(*) AS n, AVG(%s) AS mean_val, MIN(%s) AS lo, MAX(%s) AS hi FROM %s",
				bracket(nums[0].Name), bracket(nums[0].Name), bracket(nums[0].Name), ds.Ref(user))
		}
		return fmt.Sprintf("SELECT COUNT(*) AS n FROM %s", ds.Ref(user))
	}
	s := pick(q.rng, strs)
	n := pick(q.rng, nums)
	sql := fmt.Sprintf("SELECT %s, COUNT(*) AS n, AVG(%s) AS mean_val FROM %s GROUP BY %s",
		bracket(s.Name), bracket(n.Name), ds.Ref(user), bracket(s.Name))
	if q.rng.Float64() < 0.3 {
		sql += fmt.Sprintf(" HAVING COUNT(*) > %d", 1+q.rng.Intn(4))
	}
	if q.rng.Float64() < 0.2 {
		sql += " ORDER BY n DESC"
	}
	return sql
}

// qJoin integrates two or more datasets; half the joins are outer, matching
// the 11% outer-join rate at a ~22% join rate. The join-depth dial chains
// additional tables onto the previous join key (SynQL's join-depth knob).
func (q *QueryGen) qJoin(user string, ds *TableInfo, pool []*TableInfo) string {
	other := ds
	if len(pool) > 1 {
		if cand := pick(q.rng, pool); cand != nil {
			other = cand
		}
	}
	an, bn := numericCols(ds.Cols), numericCols(other.Cols)
	if len(an) == 0 || len(bn) == 0 {
		return q.qFilter(user, ds, an, colsOf(ds.Cols, sqltypes.String))
	}
	ak, bk := pick(q.rng, an), pick(q.rng, bn)
	joinKind := "JOIN"
	if q.rng.Float64() < 0.4 {
		joinKind = "LEFT OUTER JOIN"
	}
	aCol := pick(q.rng, ds.Cols)
	bCol := pick(q.rng, other.Cols)
	sql := fmt.Sprintf("SELECT a.%s, b.%s FROM %s AS a %s %s AS b ON a.%s = b.%s",
		bracket(aCol.Name), bracket(bCol.Name),
		ds.Ref(user), joinKind, other.Ref(user),
		bracket(ak.Name), bracket(bk.Name))
	prevAlias, prevKey, prevTbl := "b", bk, other
	for d, alias := 1, 'b'; d < q.joinDepth; d++ {
		next := prevTbl
		if len(pool) > 0 {
			if cand := pick(q.rng, pool); cand != nil {
				next = cand
			}
		}
		nn := numericCols(next.Cols)
		if len(nn) == 0 {
			break
		}
		alias++
		nk := pick(q.rng, nn)
		sql += fmt.Sprintf(" %s %s AS %s ON %s.%s = %s.%s",
			joinKind, next.Ref(user), string(alias),
			prevAlias, bracket(prevKey.Name), string(alias), bracket(nk.Name))
		prevAlias, prevKey, prevTbl = string(alias), nk, next
	}
	if q.rng.Float64() < 0.3 {
		sql += fmt.Sprintf(" WHERE a.%s > %.2f", bracket(ak.Name), q.lit(20))
	}
	return sql
}

func (q *QueryGen) qWindow(user string, ds *TableInfo, nums, strs []ColumnInfo) string {
	if len(nums) == 0 {
		return q.qFilter(user, ds, nums, strs)
	}
	n := pick(q.rng, nums)
	if len(strs) > 0 && q.rng.Float64() < 0.7 {
		s := pick(q.rng, strs)
		fn := pick(q.rng, []string{"ROW_NUMBER()", "RANK()", "DENSE_RANK()"})
		return fmt.Sprintf("SELECT %s, %s, %s OVER (PARTITION BY %s ORDER BY %s DESC) AS rk FROM %s",
			bracket(s.Name), bracket(n.Name), fn, bracket(s.Name), bracket(n.Name), ds.Ref(user))
	}
	return fmt.Sprintf("SELECT %s, SUM(%s) OVER (ORDER BY %s) AS running_total FROM %s",
		bracket(n.Name), bracket(n.Name), bracket(n.Name), ds.Ref(user))
}

func (q *QueryGen) qTop(user string, ds *TableInfo, nums []ColumnInfo) string {
	if len(nums) == 0 {
		return fmt.Sprintf("SELECT TOP %d * FROM %s", 5+q.rng.Intn(20), ds.Ref(user))
	}
	n := pick(q.rng, nums)
	return fmt.Sprintf("SELECT TOP %d * FROM %s ORDER BY %s DESC",
		5+q.rng.Intn(20), ds.Ref(user), bracket(n.Name))
}

func (q *QueryGen) qUnion(user string, ds *TableInfo, pool []*TableInfo) string {
	// Union the same typed column from two datasets (or the same one).
	other := ds
	for _, cand := range pool {
		if cand != nil && cand != ds && q.rng.Float64() < 0.5 {
			other = cand
			break
		}
	}
	ac := pick(q.rng, ds.Cols)
	// Find a type-compatible column on the other side.
	var bc *ColumnInfo
	for i := range other.Cols {
		if other.Cols[i].Type == ac.Type {
			bc = &other.Cols[i]
			break
		}
	}
	if bc == nil {
		return fmt.Sprintf("SELECT %s FROM %s", bracket(ac.Name), ds.Ref(user))
	}
	all := ""
	if q.rng.Float64() < 0.5 {
		all = " ALL"
	}
	return fmt.Sprintf("SELECT %s FROM %s UNION%s SELECT %s FROM %s",
		bracket(ac.Name), ds.Ref(user), all, bracket(bc.Name), other.Ref(user))
}

func (q *QueryGen) qSubquery(user string, ds *TableInfo, nums []ColumnInfo) string {
	if len(nums) == 0 {
		return fmt.Sprintf("SELECT COUNT(*) AS n FROM %s", ds.Ref(user))
	}
	n := pick(q.rng, nums)
	ref := ds.Ref(user)
	if q.rng.Float64() < 0.5 {
		return fmt.Sprintf("SELECT * FROM %s WHERE %s > (SELECT AVG(%s) FROM %s)",
			ref, bracket(n.Name), bracket(n.Name), ref)
	}
	return fmt.Sprintf("SELECT * FROM %s AS o WHERE EXISTS (SELECT 1 FROM %s AS i WHERE i.%s > o.%s)",
		ref, ref, bracket(n.Name), bracket(n.Name))
}

// qBinning is the histogram idiom the paper calls common enough (and
// awkward enough) to deserve first-class support (§5.3).
func (q *QueryGen) qBinning(user string, ds *TableInfo, nums []ColumnInfo) string {
	if len(nums) == 0 {
		return fmt.Sprintf("SELECT COUNT(*) AS n FROM %s", ds.Ref(user))
	}
	n := pick(q.rng, nums)
	width := []string{"1", "5", "10"}[q.rng.Intn(3)]
	sql := fmt.Sprintf(
		"SELECT FLOOR(%s / %s) * %s AS bin, COUNT(*) AS n FROM %s GROUP BY FLOOR(%s / %s) * %s",
		bracket(n.Name), width, width, ds.Ref(user), bracket(n.Name), width, width)
	if q.rng.Float64() < 0.5 {
		sql += " ORDER BY bin"
	}
	return sql
}

func (q *QueryGen) qNested(user string, ds *TableInfo, nums, strs []ColumnInfo) string {
	if len(strs) == 0 || len(nums) == 0 {
		return q.qFilter(user, ds, nums, strs)
	}
	s := pick(q.rng, strs)
	n := pick(q.rng, nums)
	// A third of the users spell the staged computation as a CTE instead
	// of a derived table — same plan, different surface syntax (which the
	// QPT equivalence metric unifies).
	if q.rng.Float64() < 0.33 {
		return fmt.Sprintf(
			"WITH sub AS (SELECT %s, COUNT(*) AS n, AVG(%s) AS m FROM %s GROUP BY %s) SELECT %s, n FROM sub WHERE n > %d ORDER BY n DESC",
			bracket(s.Name), bracket(n.Name), ds.Ref(user), bracket(s.Name), bracket(s.Name), 1+q.rng.Intn(3))
	}
	return fmt.Sprintf(
		"SELECT sub.%s, sub.n FROM (SELECT %s, COUNT(*) AS n, AVG(%s) AS m FROM %s GROUP BY %s) AS sub WHERE sub.n > %d ORDER BY sub.n DESC",
		bracket(s.Name), bracket(s.Name), bracket(n.Name), ds.Ref(user), bracket(s.Name), 1+q.rng.Intn(3))
}

// qLong emits the paper's curiosity: a >1000-character query with only a
// couple of distinct operators (a filter over dozens of clauses).
func (q *QueryGen) qLong(user string, ds *TableInfo, nums []ColumnInfo) string {
	if len(nums) == 0 {
		return fmt.Sprintf("SELECT * FROM %s", ds.Ref(user))
	}
	n := pick(q.rng, nums)
	clauses := make([]string, 12+q.rng.Intn(45))
	for i := range clauses {
		lo := q.lit(100)
		clauses[i] = fmt.Sprintf("(%s BETWEEN %.4f AND %.4f)", bracket(n.Name), lo, lo+q.rng.Float64()*5)
	}
	return fmt.Sprintf("SELECT * FROM %s WHERE %s", ds.Ref(user), strings.Join(clauses, " OR "))
}
