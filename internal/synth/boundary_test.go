package synth

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"sqlshare/internal/sqltypes"
)

// TestSQLShareBoundaryConfigs exercises the degenerate corners that used to
// panic inside pick/colsOf helpers: a single user (self-share picks, empty
// public pools), a one-query corpus, and a tiny population where every
// session path can see empty dataset slices.
func TestSQLShareBoundaryConfigs(t *testing.T) {
	cases := []SQLShareConfig{
		{Seed: 1, Users: 1, TargetQueries: 5},
		{Seed: 2, Users: 1, TargetQueries: 1},
		{Seed: 3, Users: 2, TargetQueries: 10},
		{Seed: 4, Users: 3, TargetQueries: 40, JoinDepth: 4, ValueSkew: 2.5},
	}
	for _, cfg := range cases {
		corpus, rep, err := GenerateSQLShare(cfg)
		if err != nil {
			t.Fatalf("users=%d target=%d: %v", cfg.Users, cfg.TargetQueries, err)
		}
		if rep.Users != cfg.Users {
			t.Fatalf("users=%d: report says %d", cfg.Users, rep.Users)
		}
		if rep.QueriesIssued != len(corpus.Entries) {
			t.Fatalf("users=%d: issued %d but logged %d", cfg.Users, rep.QueriesIssued, len(corpus.Entries))
		}
	}
}

// TestPickEmpty pins the empty-slice contract the generator's fallbacks
// depend on.
func TestPickEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := pick(rng, []int(nil)); got != 0 {
		t.Fatalf("pick on nil slice = %d", got)
	}
	if got := pick(rng, []*genDataset{}); got != nil {
		t.Fatalf("pick on empty slice = %v", got)
	}
}

// TestQueryGenEmptySchemas drives every template against schema-poor tables:
// no columns, only strings, only numerics. Build must never panic and must
// return empty SQL only for the no-column case.
func TestQueryGenEmptySchemas(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	qg := NewQueryGen(rng, TemplateMix{}, 3, 1.0)
	tables := []*TableInfo{
		nil,
		{Owner: "u", Name: "empty"},
		{Owner: "u", Name: "strs", Cols: []ColumnInfo{
			{Name: "a", Type: sqltypes.String}, {Name: "b", Type: sqltypes.String}}},
	}
	if sql, _ := qg.Build("u", tables[0], nil); sql != "" {
		t.Fatalf("nil table compiled to %q", sql)
	}
	if sql, _ := qg.Build("u", tables[1], tables); sql != "" {
		t.Fatalf("empty schema compiled to %q", sql)
	}
	for i := 0; i < 200; i++ {
		sql, tpl := qg.Build("u", tables[2], tables)
		if sql == "" {
			t.Fatalf("iteration %d (template %s): empty SQL for non-empty schema", i, tpl)
		}
		if strings.Contains(sql, "[]") {
			t.Fatalf("iteration %d: empty identifier in %q", i, sql)
		}
	}
}

// TestQueryGenJoinDepth checks the join-depth dial actually widens joins.
func TestQueryGenJoinDepth(t *testing.T) {
	mkTable := func(name string) *TableInfo {
		return &TableInfo{Owner: "u", Name: name, Cols: []ColumnInfo{
			{Name: "k", Type: sqltypes.Int},
			{Name: "v", Type: sqltypes.Float},
			{Name: "s", Type: sqltypes.String},
		}}
	}
	pool := []*TableInfo{mkTable("t1"), mkTable("t2"), mkTable("t3"), mkTable("t4")}
	rng := rand.New(rand.NewSource(3))
	qg := NewQueryGen(rng, TemplateMix{Join: 1}, 3, 0)
	deep := false
	for i := 0; i < 50 && !deep; i++ {
		sql, tpl := qg.Build("u", pool[0], pool)
		if tpl != TplJoin {
			t.Fatalf("mix {Join:1} drew %s", tpl)
		}
		deep = strings.Contains(sql, " AS d ")
	}
	if !deep {
		t.Error("joinDepth=3 never produced a four-table join")
	}
}

// TestGenerateDeterministicWithDials: custom dials stay seed-reproducible.
func TestGenerateDeterministicWithDials(t *testing.T) {
	cfg := SQLShareConfig{
		Seed: 11, Users: 8, TargetQueries: 80,
		Start:     time.Date(2012, 3, 1, 0, 0, 0, 0, time.UTC),
		Mix:       TemplateMix{Filter: 1, Join: 2, Aggregate: 1},
		JoinDepth: 2, ValueSkew: 1.5,
	}
	a, repA, err := GenerateSQLShare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, repB, err := GenerateSQLShare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *repA != *repB {
		t.Fatalf("reports differ: %+v vs %+v", *repA, *repB)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if a.Entries[i].SQL != b.Entries[i].SQL {
			t.Fatalf("entry %d differs:\n%s\n%s", i, a.Entries[i].SQL, b.Entries[i].SQL)
		}
	}
}
