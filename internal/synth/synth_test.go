package synth

import (
	"testing"

	"sqlshare/internal/workload"
)

func smallSQLShare(t testing.TB, seed int64) (*workload.Corpus, *GenReport) {
	t.Helper()
	corpus, rep, err := GenerateSQLShare(SQLShareConfig{Seed: seed, Users: 20, TargetQueries: 300})
	if err != nil {
		t.Fatal(err)
	}
	return corpus, rep
}

func TestSQLShareGeneratorBasics(t *testing.T) {
	corpus, rep := smallSQLShare(t, 1)
	if rep.QueriesIssued < 300 {
		t.Fatalf("queries issued = %d", rep.QueriesIssued)
	}
	if len(corpus.Entries) != rep.QueriesIssued {
		t.Fatalf("log entries %d != issued %d", len(corpus.Entries), rep.QueriesIssued)
	}
	if rep.Uploads == 0 || rep.DerivedViews == 0 {
		t.Fatalf("uploads=%d views=%d", rep.Uploads, rep.DerivedViews)
	}
	// Generated queries must be overwhelmingly valid.
	errRate := float64(rep.QueryErrors) / float64(rep.QueriesIssued)
	if errRate > 0.02 {
		for _, e := range corpus.Entries {
			if e.Err != "" {
				t.Logf("query error: %s\n  %s", e.Err, e.SQL)
				break
			}
		}
		t.Fatalf("error rate = %.3f (errors=%d)", errRate, rep.QueryErrors)
	}
}

func TestSQLShareGeneratorDeterministic(t *testing.T) {
	a, repA := smallSQLShare(t, 7)
	b, repB := smallSQLShare(t, 7)
	if len(a.Entries) != len(b.Entries) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if a.Entries[i].SQL != b.Entries[i].SQL || !a.Entries[i].Time.Equal(b.Entries[i].Time) {
			t.Fatalf("entry %d differs", i)
		}
	}
	if *repA != *repB {
		t.Fatalf("same-seed reports differ: %+v vs %+v", *repA, *repB)
	}
	c, _ := smallSQLShare(t, 8)
	same := len(c.Entries) == len(a.Entries)
	if same {
		diff := false
		for i := range a.Entries {
			if a.Entries[i].SQL != c.Entries[i].SQL {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds should produce different corpora")
	}
}

func TestSQLShareFeatureRatesInBand(t *testing.T) {
	corpus, _ := smallSQLShare(t, 3)
	f := workload.ComputeSQLFeatures(corpus)
	check := func(name string, got, lo, hi float64) {
		if got < lo || got > hi {
			t.Errorf("%s = %.1f%%, want within [%.0f, %.0f]", name, got, lo, hi)
		}
	}
	// Wide bands: the claim is the shape, not the digit (paper: 24/2/11/4).
	check("sorting", f.SortingPct, 10, 45)
	check("top-k", f.TopKPct, 0.3, 8)
	check("outer join", f.OuterJoinPct, 4, 22)
	check("window", f.WindowPct, 1, 10)
}

func TestSQLShareSharingRates(t *testing.T) {
	corpus, _ := smallSQLShare(t, 4)
	s := workload.ComputeSharingStats(corpus)
	if s.PublicPct < 15 || s.PublicPct > 60 {
		t.Errorf("public%% = %.1f", s.PublicPct)
	}
	if s.DerivedPct <= 10 {
		t.Errorf("derived%% = %.1f", s.DerivedPct)
	}
	if s.CrossOwnerQueries <= 0 {
		t.Error("some queries should touch other users' datasets")
	}
}

func TestSQLShareIdiomsPresent(t *testing.T) {
	corpus, rep := smallSQLShare(t, 5)
	idioms := workload.ComputeSchematizationIdioms(corpus)
	if idioms.NullInjection == 0 {
		t.Error("no NULL-injection views generated")
	}
	if idioms.PostHocCast == 0 {
		t.Error("no CAST views generated")
	}
	if idioms.ColumnRenaming == 0 {
		t.Error("no renaming views generated")
	}
	if rep.UploadsAllDefaulted == 0 {
		t.Error("some uploads should be headerless")
	}
	if rep.RaggedFiles == 0 {
		t.Error("some uploads should be ragged")
	}
}

func TestSQLShareUserClassesMixed(t *testing.T) {
	corpus, _ := smallSQLShare(t, 6)
	classes := workload.ClassCounts(workload.ClassifyUsers(corpus))
	if classes[workload.Exploratory] == 0 {
		t.Error("no exploratory users")
	}
	if classes[workload.OneShot] == 0 {
		t.Error("no one-shot users")
	}
}

func TestSDSSGeneratorBasics(t *testing.T) {
	corpus, err := GenerateSDSS(SDSSConfig{Seed: 1, Queries: 500, TableRows: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Entries) != 500 {
		t.Fatalf("entries = %d", len(corpus.Entries))
	}
	errors := 0
	for _, e := range corpus.Entries {
		if e.Err != "" {
			if errors == 0 {
				t.Logf("sample error: %s\n  %s", e.Err, e.SQL)
			}
			errors++
		}
	}
	if rate := float64(errors) / 500; rate > 0.01 {
		t.Fatalf("error rate = %.3f", rate)
	}
}

func TestSDSSIsLowEntropy(t *testing.T) {
	sdss, err := GenerateSDSS(SDSSConfig{Seed: 2, Queries: 2000, TableRows: 150})
	if err != nil {
		t.Fatal(err)
	}
	sqlshare, _ := smallSQLShare(t, 2)
	es := workload.ComputeEntropy(sdss)
	eq := workload.ComputeEntropy(sqlshare)
	// The paper's central diversity claim: SQLShare is string-distinct at
	// ~96%, SDSS at ~3%; template distinctness orders of magnitude apart.
	if es.StringDistinctPct >= 40 {
		t.Errorf("SDSS string-distinct%% = %.1f, should be low", es.StringDistinctPct)
	}
	if eq.StringDistinctPct <= 60 {
		t.Errorf("SQLShare string-distinct%% = %.1f, should be high", eq.StringDistinctPct)
	}
	if eq.TemplatePct <= es.TemplatePct {
		t.Errorf("SQLShare template%% (%.1f) should exceed SDSS (%.1f)", eq.TemplatePct, es.TemplatePct)
	}
}

func TestDatagenShapes(t *testing.T) {
	corpus, _ := smallSQLShare(t, 9)
	sum := workload.Summarize(corpus)
	if sum.Users != 20 {
		t.Errorf("users = %d", sum.Users)
	}
	if sum.Tables == 0 || sum.Columns == 0 || sum.Views < sum.Tables {
		t.Errorf("summary = %+v", sum)
	}
	if sum.NonTrivialViews == 0 {
		t.Error("no derived views in summary")
	}
}
