package synth

import (
	"fmt"
	"math/rand"
	"time"

	"sqlshare/internal/catalog"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
	"sqlshare/internal/workload"
)

// SDSSConfig scales the SDSS-like comparison corpus (§6). The defaults
// produce 20,000 queries; the real workload had 7M with only ~3% distinct
// strings and ~0.3% distinct templates of those — the signature of canned
// example queries and GUI-generated traffic over a fixed engineered schema.
type SDSSConfig struct {
	Seed    int64
	Queries int
	// TableRows sizes the synthetic survey tables.
	TableRows int
}

func (c *SDSSConfig) defaults() {
	if c.Queries <= 0 {
		c.Queries = 20000
	}
	if c.TableRows <= 0 {
		c.TableRows = 800
	}
}

// GenerateSDSS builds the SDSS-like corpus: a fixed astronomy schema
// (photoobj / specobj / photoz), a small population of canned example
// queries repeated verbatim, GUI templates instantiated with random
// literals, and a thin tail of hand-edited variants. Queries are heavy on
// scalar arithmetic (magnitude colors, conversions), reproducing the
// Figure 10 operator mix.
func GenerateSDSS(cfg SDSSConfig) (*workload.Corpus, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := catalog.New()
	now := time.Date(2003, 1, 1, 0, 0, 0, 0, time.UTC)
	cat.SetClock(func() time.Time { return now })

	if _, err := cat.CreateUser("sdss", "admin@sdss.org"); err != nil {
		return nil, err
	}
	if _, err := cat.CreateUser("webuser", "web@sdss.org"); err != nil {
		return nil, err
	}
	if err := loadSDSSTables(cat, rng, cfg.TableRows); err != nil {
		return nil, err
	}

	// Canned example queries: copied verbatim from the site's samples, as
	// the paper observed; these dominate the log.
	canned := sdssCannedQueries(rng)
	templates := sdssTemplates()

	for i := 0; i < cfg.Queries; i++ {
		now = now.Add(time.Duration(1+rng.Intn(20)) * time.Minute)
		var sql string
		switch r := rng.Float64(); {
		case r < 0.82:
			// Exact repeat of a canned query.
			sql = canned[rng.Intn(len(canned))]
		case r < 0.99:
			// GUI-generated: a template instantiated with fresh literals.
			sql = templates[rng.Intn(len(templates))](rng)
		default:
			// Hand-edited variant: a WHERE-terminated template with an
			// extra predicate appended.
			base := templates[rng.Intn(2)](rng)
			sql = base + fmt.Sprintf(" AND [dec] < %.4f", rng.Float64()*90)
		}
		_, _, _ = cat.Query("webuser", sql)
	}
	return workload.NewCorpus("SDSS", cat), nil
}

// loadSDSSTables creates the engineered survey schema with synthetic data.
func loadSDSSTables(cat *catalog.Catalog, rng *rand.Rand, rows int) error {
	photoobj := storage.NewTable("photoobj", storage.Schema{
		{Name: "objid", Type: sqltypes.Int},
		{Name: "ra", Type: sqltypes.Float},
		{Name: "dec", Type: sqltypes.Float},
		{Name: "u", Type: sqltypes.Float},
		{Name: "g", Type: sqltypes.Float},
		{Name: "r", Type: sqltypes.Float},
		{Name: "i", Type: sqltypes.Float},
		{Name: "z", Type: sqltypes.Float},
		{Name: "type", Type: sqltypes.Int},
		{Name: "flags", Type: sqltypes.Int},
	})
	var prows []storage.Row
	for k := 0; k < rows; k++ {
		mag := 14 + rng.Float64()*10
		prows = append(prows, storage.Row{
			sqltypes.NewInt(int64(1000000 + k)),
			sqltypes.NewFloat(rng.Float64() * 360),
			sqltypes.NewFloat(-90 + rng.Float64()*180),
			sqltypes.NewFloat(mag + rng.Float64()),
			sqltypes.NewFloat(mag + rng.Float64()*0.8),
			sqltypes.NewFloat(mag),
			sqltypes.NewFloat(mag - rng.Float64()*0.5),
			sqltypes.NewFloat(mag - rng.Float64()),
			sqltypes.NewInt(int64(3 + rng.Intn(4))),
			sqltypes.NewInt(int64(rng.Intn(1 << 16))),
		})
	}
	if err := photoobj.Insert(prows); err != nil {
		return err
	}
	specobj := storage.NewTable("specobj", storage.Schema{
		{Name: "specobjid", Type: sqltypes.Int},
		{Name: "bestobjid", Type: sqltypes.Int},
		{Name: "redshift", Type: sqltypes.Float},
		{Name: "class", Type: sqltypes.String},
		{Name: "zwarning", Type: sqltypes.Int},
	})
	classes := []string{"GALAXY", "STAR", "QSO"}
	var srows []storage.Row
	for k := 0; k < rows/3; k++ {
		srows = append(srows, storage.Row{
			sqltypes.NewInt(int64(5000000 + k)),
			sqltypes.NewInt(int64(1000000 + rng.Intn(rows))),
			sqltypes.NewFloat(rng.Float64() * 3),
			sqltypes.NewString(classes[rng.Intn(len(classes))]),
			sqltypes.NewInt(int64(rng.Intn(2))),
		})
	}
	if err := specobj.Insert(srows); err != nil {
		return err
	}
	photoz := storage.NewTable("photoz", storage.Schema{
		{Name: "objid", Type: sqltypes.Int},
		{Name: "zphot", Type: sqltypes.Float},
		{Name: "zerr", Type: sqltypes.Float},
	})
	var zrows []storage.Row
	for k := 0; k < rows/2; k++ {
		zrows = append(zrows, storage.Row{
			sqltypes.NewInt(int64(1000000 + rng.Intn(rows))),
			sqltypes.NewFloat(rng.Float64() * 2),
			sqltypes.NewFloat(rng.Float64() * 0.1),
		})
	}
	if err := photoz.Insert(zrows); err != nil {
		return err
	}
	for name, tbl := range map[string]*storage.Table{
		"photoobj": photoobj, "specobj": specobj, "photoz": photoz,
	} {
		if _, err := cat.CreateDatasetFromTable("sdss", name, tbl, catalog.Meta{
			Description: "SDSS " + name,
		}); err != nil {
			return err
		}
		if err := cat.SetVisibility("sdss", name, catalog.Public); err != nil {
			return err
		}
	}
	return nil
}

// sdssCannedQueries renders the fixed pool of sample queries that users
// copy verbatim. A small pool of exact strings yields the ~3% distinct
// fraction the paper measured.
func sdssCannedQueries(rng *rand.Rand) []string {
	var out []string
	templates := sdssTemplates()
	// Each template contributes a handful of frozen instantiations.
	for _, tpl := range templates {
		for k := 0; k < 3; k++ {
			out = append(out, tpl(rng))
		}
	}
	return out
}

// sdssTemplates returns the GUI/sample query templates: scalar-arithmetic
// heavy (colors u-g, g-r), range predicates on ra/dec, conversions, and a
// UDF-flavoured mix of intrinsic functions — about 200 characters each,
// matching the Figure 7 length concentration.
func sdssTemplates() []func(*rand.Rand) string {
	p := "[sdss.photoobj]"
	s := "[sdss.specobj]"
	z := "[sdss.photoz]"
	// Literals are drawn from coarse grids, as GUI widgets produce: the
	// same parameter values recur across users, so whole query strings
	// repeat — the low-entropy signature of Table 3.
	qf := func(r *rand.Rand, max float64) float64 {
		return max * float64(r.Intn(6)) / 6.0
	}
	return []func(*rand.Rand) string{
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT TOP 10 objid, ra, [dec] FROM %s WHERE ra BETWEEN %.4f AND %.4f AND [dec] BETWEEN %.4f AND %.4f",
				p, qf(r, 300), qf(r, 300)+10, qf(r, 80)-40, qf(r, 80)-30)
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT objid, u - g AS ug, g - r AS gr, r - i AS ri FROM %s WHERE u - g > %.3f AND g - r < %.3f",
				p, qf(r, 1), qf(r, 2))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT COUNT(*) AS n FROM %s WHERE type = %d AND flags > %d",
				p, 3+r.Intn(4), 100*r.Intn(8))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT p.objid, p.r, s.redshift FROM %s AS p JOIN %s AS s ON p.objid = s.bestobjid WHERE s.redshift BETWEEN %.4f AND %.4f",
				p, s, qf(r, 1), qf(r, 1)+1)
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT class, COUNT(*) AS n, AVG(redshift) AS zavg FROM %s WHERE zwarning = 0 GROUP BY class ORDER BY n DESC",
				s)
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT objid, SQRT(SQUARE(u - g) + SQUARE(g - r)) AS colordist FROM %s WHERE r < %.3f",
				p, 15+qf(r, 8))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT TOP 50 p.objid, p.ra, p.[dec], z.zphot FROM %s AS p JOIN %s AS z ON p.objid = z.objid WHERE z.zerr < %.4f ORDER BY z.zphot DESC",
				p, z, 0.01*float64(1+r.Intn(5)))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT objid, CAST(FLOOR(r) AS INT) AS rbin FROM %s WHERE r BETWEEN %.2f AND %.2f",
				p, 14+qf(r, 3), 18+qf(r, 5))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT UPPER(class) AS c FROM %s WHERE class LIKE '%s%%'",
				s, []string{"G", "S", "Q"}[r.Intn(3)])
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT s.class, AVG(p.u - p.g) AS mean_ug FROM %s AS p JOIN %s AS s ON p.objid = s.bestobjid GROUP BY s.class",
				p, s)
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT objid, POWER(10, -0.4 * (r - %.2f)) AS flux FROM %s WHERE r IS NOT NULL AND r < %.2f",
				22.5, p, 16+qf(r, 6))
		},
		func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT objid FROM %s WHERE objid IN (SELECT bestobjid FROM %s WHERE redshift > %.3f)",
				p, s, qf(r, 2))
		},
	}
}
