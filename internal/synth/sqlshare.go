package synth

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sqlshare/internal/catalog"
	"sqlshare/internal/ingest"
	"sqlshare/internal/workload"
)

// SQLShareConfig scales the SQLShare-like corpus. The defaults produce a
// ~2,000-query corpus whose ratios track the paper's 24,275-query release;
// raise TargetQueries/Users toward 24275/591 for paper scale. Mix,
// JoinDepth and ValueSkew expose the parameterized compiler's dials; their
// zero values reproduce the historical fixed-ratio behaviour.
type SQLShareConfig struct {
	Seed          int64
	Users         int
	TargetQueries int
	Start         time.Time
	// Mix overrides the template-weight distribution (zero = DefaultMix).
	Mix TemplateMix
	// JoinDepth chains extra tables onto join templates (0/1 = two-table).
	JoinDepth int
	// ValueSkew skews predicate literals toward the low end of the domain
	// (0 = uniform).
	ValueSkew float64
}

func (c *SQLShareConfig) defaults() {
	if c.Users <= 0 {
		c.Users = 60
	}
	if c.TargetQueries <= 0 {
		c.TargetQueries = 2000
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2011, 6, 1, 8, 0, 0, 0, time.UTC)
	}
}

// GenReport summarizes what the generator created, including the
// ingest-side §5.1 quantities.
type GenReport struct {
	Users                int
	Uploads              int
	UploadsAllDefaulted  int // files with no usable header at all
	UploadsSomeDefaulted int // files with >=1 defaulted column name
	RaggedFiles          int
	WidenedColumnFiles   int // files where a column reverted to VARCHAR
	DerivedViews         int
	QueriesIssued        int
	QueryErrors          int
}

// userKind is the Figure 13 archetype driving a synthetic user's script.
type userKind int

const (
	userOneShot userKind = iota
	userExploratory
	userAnalytical
	userPipeline
)

// genDataset is the generator's record of a created dataset: the schema
// view the query compiler consumes plus corpus-side bookkeeping.
type genDataset struct {
	TableInfo
	kind   DatasetKind
	public bool
}

type genUser struct {
	name     string
	kind     userKind
	datasets []*genDataset
	// canned holds a pipeline user's fixed processing queries.
	canned []string
	// done marks one-shot users who already had their session.
	done bool
	// viewSeq numbers the user's saved views.
	viewSeq int
	// pipeKind/pipeHeaderless pin a pipeline user's batch format so the
	// canned queries keep working across uploads.
	pipeKind       DatasetKind
	pipeHeaderless bool
	pipeFixed      bool
	// favSQL is an analytical user's favorite query template: the same
	// structure re-issued with fresh literals (__LIT__), the behaviour
	// that makes templates collapse under QPT equivalence (§6.2).
	favSQL string
}

type sqlshareGen struct {
	rng    *rand.Rand
	qg     *QueryGen
	cat    *catalog.Catalog
	now    time.Time
	users  []*genUser
	public []*genDataset
	report GenReport
	target int
}

// GenerateSQLShare builds the SQLShare-like corpus: users with one-shot,
// exploratory, analytical and pipeline scripts upload dirty datasets
// through real ingest, derive and share views, and issue hand-written-style
// queries through the real engine. Deterministic for a given config.
func GenerateSQLShare(cfg SQLShareConfig) (*workload.Corpus, *GenReport, error) {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := &sqlshareGen{
		rng:    rng,
		qg:     NewQueryGen(rng, cfg.Mix, cfg.JoinDepth, cfg.ValueSkew),
		cat:    catalog.New(),
		now:    cfg.Start,
		target: cfg.TargetQueries,
	}
	g.cat.SetClock(func() time.Time { return g.now })

	// User population mirroring the Figure 13 mix.
	for i := 0; i < cfg.Users; i++ {
		kind := userExploratory
		switch r := g.rng.Float64(); {
		case r < 0.30:
			kind = userOneShot
		case r < 0.80:
			kind = userExploratory
		case r < 0.93:
			kind = userAnalytical
		default:
			kind = userPipeline
		}
		name := fmt.Sprintf("user%03d", i)
		email := name + "@uw.edu"
		if g.rng.Float64() > 0.44 { // 260/591 are .edu; the rest vary
			email = name + "@example.org"
		}
		if _, err := g.cat.CreateUser(name, email); err != nil {
			return nil, nil, err
		}
		g.users = append(g.users, &genUser{name: name, kind: kind})
	}
	g.report.Users = cfg.Users

	// Analytical and pipeline users get their base datasets up front.
	for _, u := range g.users {
		switch u.kind {
		case userAnalytical:
			n := 3 + g.rng.Intn(6)
			for i := 0; i < n; i++ {
				g.upload(u)
			}
			g.buildViewChain(u, 2+g.rng.Intn(7))
		case userPipeline:
			g.upload(u)
			g.prepareCanned(u)
		}
		g.advance(time.Duration(1+g.rng.Intn(48)) * time.Hour)
	}

	// Interleaved sessions until the query target is met.
	for g.report.QueriesIssued < g.target {
		u := g.pickSessionUser()
		if u == nil {
			break
		}
		g.session(u)
		g.advance(time.Duration(1+g.rng.Intn(30)) * time.Hour)
	}

	corpus := workload.NewCorpus("SQLShare", g.cat)
	rep := g.report
	return corpus, &rep, nil
}

func (g *sqlshareGen) advance(d time.Duration) { g.now = g.now.Add(d) }

// pickSessionUser selects the next active user: analytical users dominate
// traffic (the paper's most active users account for a large share).
func (g *sqlshareGen) pickSessionUser() *genUser {
	for tries := 0; tries < 100; tries++ {
		u := pick(g.rng, g.users)
		if u == nil {
			return nil
		}
		if u.kind == userOneShot && u.done {
			continue
		}
		// Weight: analytical users are far more active.
		switch u.kind {
		case userAnalytical:
			return u
		case userPipeline:
			if g.rng.Float64() < 0.8 {
				return u
			}
		default:
			if g.rng.Float64() < 0.5 {
				return u
			}
		}
	}
	return nil
}

// session runs one sitting for a user according to their archetype.
func (g *sqlshareGen) session(u *genUser) {
	switch u.kind {
	case userOneShot:
		ds := g.upload(u)
		n := 1 + g.rng.Intn(8)
		for i := 0; i < n && ds != nil; i++ {
			g.issue(u, g.buildQuery(u, ds))
			g.advance(time.Duration(1+g.rng.Intn(20)) * time.Minute)
		}
		u.done = true
	case userExploratory:
		// Upload, poke at it briefly, maybe derive/share, move on.
		var ds *genDataset
		if len(u.datasets) == 0 || g.rng.Float64() < 0.6 {
			ds = g.upload(u)
		} else {
			ds = pick(g.rng, u.datasets)
		}
		if ds == nil {
			return
		}
		n := 1 + g.rng.Intn(4)
		for i := 0; i < n; i++ {
			target := ds
			// ~10% of queries touch someone else's dataset (§5.2).
			if len(g.public) > 0 && g.rng.Float64() < 0.12 {
				if o := pick(g.rng, g.public); o != nil && o.Owner != u.name {
					target = o
				}
			}
			g.issue(u, g.buildQuery(u, target))
			g.advance(time.Duration(1+g.rng.Intn(15)) * time.Minute)
		}
		switch {
		case len(g.public) > 0 && g.rng.Float64() < 0.06:
			// Derive a view over a collaborator's published dataset — the
			// cross-owner views of §5.2.
			if o := pick(g.rng, g.public); o != nil && o.Owner != u.name {
				g.saveDerivedView(u, o)
			}
		case g.rng.Float64() < 0.62:
			// Derive from any owned dataset — including existing derived
			// views, which is what builds the deep chains of Figure 6.
			g.saveDerivedView(u, pick(g.rng, u.datasets))
		}
	case userAnalytical:
		// Query the established datasets repeatedly; occasionally extend
		// the view chain or add a dataset.
		if len(u.datasets) == 0 {
			g.upload(u)
		}
		if u.favSQL == "" && len(u.datasets) > 0 {
			if ds := u.datasets[0]; len(numericCols(ds.Cols)) > 0 {
				n := numericCols(ds.Cols)[0]
				u.favSQL = fmt.Sprintf("SELECT * FROM %s WHERE %s > __LIT__", ds.Ref(u.name), bracket(n.Name))
				if g.rng.Float64() < 0.5 {
					u.favSQL += fmt.Sprintf(" ORDER BY %s DESC", bracket(n.Name))
				}
			}
		}
		n := 6 + g.rng.Intn(12)
		for i := 0; i < n && len(u.datasets) > 0; i++ {
			// A third of the sitting re-runs the favorite with a new
			// threshold (copy-paste-edit, §3.5).
			switch {
			case u.favSQL != "" && g.rng.Float64() < 0.33:
				g.issue(u, strings.ReplaceAll(u.favSQL, "__LIT__", fmt.Sprintf("%.3f", g.rng.Float64()*40)))
			case len(g.public) > 0 && g.rng.Float64() < 0.14:
				// Integrating a collaborator's published dataset (§5.2).
				if o := pick(g.rng, g.public); o != nil && o.Owner != u.name {
					g.issue(u, g.buildQuery(u, o))
				} else {
					g.issue(u, g.buildQuery(u, pick(g.rng, u.datasets)))
				}
			default:
				ds := pick(g.rng, u.datasets)
				g.issue(u, g.buildQuery(u, ds))
			}
			g.advance(time.Duration(1+g.rng.Intn(10)) * time.Minute)
		}
		if g.rng.Float64() < 0.05 {
			g.upload(u)
		}
		if g.rng.Float64() < 0.3 {
			g.saveDerivedView(u, pick(g.rng, u.datasets))
		}
	case userPipeline:
		// The daily-workflow mode: upload a batch, recompose, re-run the
		// same canned queries, sometimes delete the batch afterwards.
		batch := g.upload(u)
		if batch == nil {
			return
		}
		for _, sql := range u.canned {
			g.issue(u, strings.ReplaceAll(sql, "__BATCH__", batch.Ref(u.name)))
			g.advance(time.Duration(1+g.rng.Intn(5)) * time.Minute)
		}
		if g.rng.Float64() < 0.5 {
			_ = g.cat.Delete(u.name, batch.Name)
		}
	}
}

// upload generates and ingests one dirty dataset for the user.
func (g *sqlshareGen) upload(u *genUser) *genDataset {
	kind := DatasetKind(g.rng.Intn(int(NumDatasetKinds)))
	rows := 30 + g.rng.Intn(120)
	headerless := g.rng.Float64() < 0.48
	// Only half the dataset kinds can be ragged, so double the draw rate
	// to land near the paper's 9% of uploads.
	ragged := g.rng.Float64() < 0.18
	sentinels := g.rng.Float64() < 0.5
	if u.kind == userPipeline {
		if u.pipeFixed {
			kind, headerless = u.pipeKind, u.pipeHeaderless
		} else {
			u.pipeKind, u.pipeHeaderless, u.pipeFixed = kind, headerless, true
		}
		ragged = false // recurring instrument output has a stable shape
	}
	if kind == KindSurvey && sentinels {
		rows = 120 + g.rng.Intn(80) // deep enough to trip the type revert
	}
	file := MakeCSV(g.rng, kind, rows, headerless, ragged, sentinels)
	name := fmt.Sprintf("%s_%s_%d", KindName(kind), u.name, len(u.datasets)+1)
	rep, err := ingest.LoadBytes(name, file.Data, ingest.Options{})
	if err != nil {
		return nil
	}
	if _, err := g.cat.CreateDatasetFromTable(u.name, name, rep.Table, catalog.Meta{
		Description: fmt.Sprintf("%s data uploaded by %s", KindName(kind), u.name),
		Tags:        []string{KindName(kind)},
	}); err != nil {
		return nil
	}
	g.report.Uploads++
	if rep.AllDefaulted {
		g.report.UploadsAllDefaulted++
	}
	if rep.DefaultedColumns > 0 {
		g.report.UploadsSomeDefaulted++
	}
	if rep.RaggedRows > 0 {
		g.report.RaggedFiles++
	}
	if len(rep.WidenedColumns) > 0 {
		g.report.WidenedColumnFiles++
	}
	schema := rep.Table.Schema()
	cols := make([]ColumnInfo, len(schema))
	for i, c := range schema {
		cols[i] = ColumnInfo{c.Name, c.Type}
	}
	ds := &genDataset{TableInfo: TableInfo{Owner: u.name, Name: name, Cols: cols}, kind: kind}
	u.datasets = append(u.datasets, ds)
	g.maybeShare(u, ds)
	return ds
}

// maybeShare applies the §5.2 sharing rates: ~37% public, ~9% shared with
// a specific collaborator.
func (g *sqlshareGen) maybeShare(u *genUser, ds *genDataset) {
	r := g.rng.Float64()
	switch {
	case r < 0.37:
		if g.cat.SetVisibility(u.name, ds.Name, catalog.Public) == nil {
			ds.public = true
			g.public = append(g.public, ds)
		}
	case r < 0.46:
		other := pick(g.rng, g.users)
		if other != nil && other.name != u.name {
			_ = g.cat.ShareWith(u.name, ds.Name, other.name)
		}
	}
}

// issue runs one query through the catalog (logging it) and tracks errors.
func (g *sqlshareGen) issue(u *genUser, sql string) {
	if sql == "" {
		return
	}
	g.report.QueriesIssued++
	if _, _, err := g.cat.Query(u.name, sql); err != nil {
		g.report.QueryErrors++
	}
}

// registerView records a saved view as a queryable dataset.
func (g *sqlshareGen) registerView(u *genUser, name string, cols []ColumnInfo, kind DatasetKind) *genDataset {
	ds := &genDataset{TableInfo: TableInfo{Owner: u.name, Name: name, Cols: cols}, kind: kind}
	u.datasets = append(u.datasets, ds)
	g.report.DerivedViews++
	g.maybeShare(u, ds)
	return ds
}
