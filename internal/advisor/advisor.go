// Package advisor implements the materialization heuristic the paper
// leaves open: §3.2 notes SQLShare "does not automatically materialize
// views to improve performance; there is an application-specific tradeoff
// with freshness ... we are exploring certain 'safe' scenarios where we
// can make materialization decisions unilaterally", and §6.2 concludes
// "most of the reuse could be achieved with a small cache if we have a
// good heuristic to determine which results will be reused."
//
// The advisor is that heuristic: it mines the query log for derived views
// that are (a) referenced by many queries, (b) expensive to evaluate, and
// (c) safe — their transitive inputs have not changed since the view's
// last reference window — then ranks them by the total cost their
// materialization would have avoided.
package advisor

import (
	"sort"
	"strings"

	"sqlshare/internal/catalog"
	"sqlshare/internal/workload"
)

// Candidate is one view the advisor proposes to materialize.
type Candidate struct {
	// Dataset is the view's full name.
	Dataset string
	Owner   string
	Name    string
	// References is how many logged queries touched the view.
	References int
	// UnitCost is the estimated cost of evaluating the view once.
	UnitCost float64
	// TotalSaving is (References-1) × UnitCost: the cost the cache would
	// have absorbed after the first evaluation.
	TotalSaving float64
	// Safe reports whether the view's inputs are all physically backed
	// datasets (uploads or snapshots) — the unilateral-materialization
	// scenario where freshness cannot silently drift, because physical
	// datasets only change through explicit append/replace.
	Safe bool
}

// Analyze ranks materialization candidates over a corpus. Only derived
// (non-wrapper, non-materialized) views are considered; topK <= 0 returns
// all.
func Analyze(c *workload.Corpus, topK int) []Candidate {
	refs := map[string]int{}
	for _, e := range c.Entries {
		seen := map[string]bool{}
		for _, ds := range e.Datasets {
			if !seen[ds] {
				seen[ds] = true
				refs[ds]++
			}
		}
	}
	var out []Candidate
	for _, ds := range c.Catalog.Datasets(false) {
		if ds.IsWrapper || ds.Materialized {
			continue
		}
		n := refs[ds.FullName()]
		if n < 2 {
			continue // nothing to reuse
		}
		qp, err := c.Catalog.Explain(ds.Owner, ds.SQL)
		if err != nil {
			continue
		}
		cand := Candidate{
			Dataset:     ds.FullName(),
			Owner:       ds.Owner,
			Name:        ds.Name,
			References:  n,
			UnitCost:    qp.TotalCost(),
			TotalSaving: float64(n-1) * qp.TotalCost(),
			Safe:        isSafe(c.Catalog, ds, map[string]bool{}),
		}
		out = append(out, cand)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalSaving != out[j].TotalSaving {
			return out[i].TotalSaving > out[j].TotalSaving
		}
		return out[i].Dataset < out[j].Dataset
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out
}

// isSafe reports whether every dataset the view directly references is
// physically backed (an upload or an earlier materialization). Physical
// datasets change only through explicit catalog operations, so the
// materialized copy cannot silently drift; a view over another *live*
// derived view can, because the intermediate may be redefined underneath
// it. This also induces the natural bottom-up order: once an inner view is
// materialized, views over it become safe in a later round.
func isSafe(cat *catalog.Catalog, ds *catalog.Dataset, _ map[string]bool) bool {
	for _, refName := range cat.ReferencedDatasets(ds) {
		ref, err := cat.Dataset(ds.Owner, refName)
		if err != nil {
			return false
		}
		if !ref.IsWrapper && !ref.Materialized {
			return false
		}
	}
	return true
}

// Apply materializes the safe candidates in place, returning the datasets
// it converted. Unsafe candidates are skipped — the freshness tradeoff
// there belongs to the user.
func Apply(cat *catalog.Catalog, cands []Candidate) []string {
	var done []string
	for _, cand := range cands {
		if !cand.Safe {
			continue
		}
		if err := cat.MaterializeInPlace(cand.Owner, cand.Dataset); err != nil {
			continue
		}
		done = append(done, cand.Dataset)
	}
	return done
}

// CacheBudget picks the smallest prefix of candidates that captures at
// least fraction (0..1] of the total achievable saving — quantifying the
// paper's "small cache" observation.
func CacheBudget(cands []Candidate, fraction float64) (picked []Candidate, captured float64) {
	var total float64
	for _, c := range cands {
		total += c.TotalSaving
	}
	if total == 0 {
		return nil, 0
	}
	var sum float64
	for _, c := range cands {
		picked = append(picked, c)
		sum += c.TotalSaving
		if sum/total >= fraction {
			break
		}
	}
	return picked, sum / total
}

// Describe renders a candidate for reports.
func (c Candidate) Describe() string {
	safety := "safe"
	if !c.Safe {
		safety = "freshness tradeoff"
	}
	return strings.TrimSpace(
		c.Dataset + ": " + safety)
}
