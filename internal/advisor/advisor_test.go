package advisor

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"sqlshare/internal/catalog"
	"sqlshare/internal/sqltypes"
	"sqlshare/internal/storage"
	"sqlshare/internal/synth"
	"sqlshare/internal/workload"
)

func buildCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	base := time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)
	tick := 0
	c.SetClock(func() time.Time { tick++; return base.Add(time.Duration(tick) * time.Minute) })
	if _, err := c.CreateUser("u", ""); err != nil {
		t.Fatal(err)
	}
	tbl := storage.NewTable("obs", storage.Schema{
		{Name: "g", Type: sqltypes.String},
		{Name: "v", Type: sqltypes.Float},
	})
	var rows []storage.Row
	for i := 0; i < 300; i++ {
		rows = append(rows, storage.Row{
			sqltypes.NewString(fmt.Sprintf("g%02d", i%10)),
			sqltypes.NewFloat(float64(i % 97)),
		})
	}
	if err := tbl.Insert(rows); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateDatasetFromTable("u", "obs", tbl, catalog.Meta{}); err != nil {
		t.Fatal(err)
	}
	// A hot, expensive summary view...
	if _, err := c.SaveView("u", "hot",
		"SELECT g, COUNT(*) AS n, AVG(v) AS m, STDEV(v) AS sd FROM obs GROUP BY g", catalog.Meta{}); err != nil {
		t.Fatal(err)
	}
	// ...and a cold one.
	if _, err := c.SaveView("u", "cold",
		"SELECT g, MIN(v) AS lo FROM obs GROUP BY g", catalog.Meta{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := c.Query("u", "SELECT * FROM hot WHERE n > 1"); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := c.Query("u", "SELECT * FROM cold"); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAnalyzeRanksHotExpensiveViews(t *testing.T) {
	c := buildCatalog(t)
	cands := Analyze(workload.NewCorpus("a", c), 0)
	if len(cands) != 1 {
		t.Fatalf("candidates = %+v (cold view has <2 references and must be excluded)", cands)
	}
	top := cands[0]
	if top.Dataset != "u.hot" || top.References != 8 {
		t.Fatalf("top = %+v", top)
	}
	if !top.Safe {
		t.Error("view over a physical upload should be safe")
	}
	if top.TotalSaving <= 0 || top.UnitCost <= 0 {
		t.Errorf("costs: %+v", top)
	}
}

func TestApplyMaterializesAndPreservesResults(t *testing.T) {
	c := buildCatalog(t)
	before, _, err := c.Query("u", "SELECT * FROM hot")
	if err != nil {
		t.Fatal(err)
	}
	cands := Analyze(workload.NewCorpus("a", c), 0)
	done := Apply(c, cands)
	if len(done) != 1 || done[0] != "u.hot" {
		t.Fatalf("applied = %v", done)
	}
	ds, err := c.Dataset("u", "hot")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.Materialized || ds.OriginalSQL == "" {
		t.Fatalf("dataset not marked materialized: %+v", ds)
	}
	after, _, err := c.Query("u", "SELECT * FROM hot")
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(before.Rows) {
		t.Fatalf("materialization changed results: %d vs %d", len(after.Rows), len(before.Rows))
	}
	// The materialized plan is a plain scan: cheaper than the original.
	qp, err := c.Explain("u", "SELECT * FROM hot")
	if err != nil {
		t.Fatal(err)
	}
	if qp.Root.PhysicalOp != "Clustered Index Scan" {
		t.Errorf("materialized plan root = %q", qp.Root.PhysicalOp)
	}
	// Re-materializing is rejected.
	if err := c.MaterializeInPlace("u", "hot"); err == nil {
		t.Error("double materialization should fail")
	}
}

func TestUnsafeViewsAreSkipped(t *testing.T) {
	c := buildCatalog(t)
	// A view over a derived (non-physical) view is not "safe".
	if _, err := c.SaveView("u", "layered", "SELECT g, n FROM hot WHERE n > 2", catalog.Meta{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := c.Query("u", "SELECT * FROM layered"); err != nil {
			t.Fatal(err)
		}
	}
	cands := Analyze(workload.NewCorpus("a", c), 0)
	var layered *Candidate
	for i := range cands {
		if cands[i].Dataset == "u.layered" {
			layered = &cands[i]
		}
	}
	if layered == nil {
		t.Fatal("layered view should be a candidate")
	}
	if layered.Safe {
		t.Error("view over a live derived view is not safe")
	}
	if !strings.Contains(layered.Describe(), "freshness") {
		t.Errorf("describe: %s", layered.Describe())
	}
	// Apply must leave it untouched.
	Apply(c, []Candidate{*layered})
	ds, _ := c.Dataset("u", "layered")
	if ds.Materialized {
		t.Error("unsafe view was materialized")
	}
}

func TestCacheBudgetSmallCacheClaim(t *testing.T) {
	// Over a synthetic corpus, a small prefix of candidates captures most
	// of the achievable saving — the paper's §6.2 conclusion.
	corpus, _, err := synth.GenerateSQLShare(synth.SQLShareConfig{Seed: 8, Users: 20, TargetQueries: 400})
	if err != nil {
		t.Fatal(err)
	}
	cands := Analyze(corpus, 0)
	if len(cands) < 4 {
		t.Skipf("too few candidates (%d) at this seed", len(cands))
	}
	picked, captured := CacheBudget(cands, 0.8)
	if captured < 0.8 {
		t.Fatalf("captured = %v", captured)
	}
	if len(picked) >= len(cands) {
		t.Errorf("cache not small: %d of %d candidates needed", len(picked), len(cands))
	}
}
