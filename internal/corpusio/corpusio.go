// Package corpusio serializes a workload corpus to the release format —
// the repository's equivalent of the query-log dataset the paper publishes
// (§4: "with permission from the users, we are releasing this dataset
// publicly"). The release bundles the query log (SQL text, author,
// timestamp, runtime, referenced datasets, the extracted JSON plan and
// Phase-2 metadata) together with the dataset catalog (definitions,
// owners, sharing state), so every analysis in internal/workload can be
// recomputed from the file alone.
package corpusio

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"sqlshare/internal/catalog"
	"sqlshare/internal/plan"
	"sqlshare/internal/workload"
)

// FormatVersion identifies the release file format.
const FormatVersion = 1

// Header is the first record of a release file.
type Header struct {
	Format   int       `json:"format"`
	Corpus   string    `json:"corpus"`
	Exported time.Time `json:"exported"`
	Users    int       `json:"users"`
	Datasets int       `json:"datasets"`
	Queries  int       `json:"queries"`
}

// DatasetRecord is one dataset of the release catalog.
type DatasetRecord struct {
	Kind        string   `json:"kind"` // always "dataset"
	Owner       string   `json:"owner"`
	Name        string   `json:"name"`
	SQL         string   `json:"sql"`
	Description string   `json:"description,omitempty"`
	Tags        []string `json:"tags,omitempty"`
	IsWrapper   bool     `json:"isWrapper"`
	Public      bool     `json:"public"`
	SharedWith  []string `json:"sharedWith,omitempty"`
	Created     int64    `json:"created"` // unix seconds
	Deleted     bool     `json:"deleted,omitempty"`
}

// QueryRecord is one logged query of the release.
type QueryRecord struct {
	Kind      string          `json:"kind"` // always "query"
	ID        int             `json:"id"`
	User      string          `json:"user"`
	SQL       string          `json:"sql"`
	Time      int64           `json:"time"` // unix seconds
	RuntimeMS float64         `json:"runtimeMs"`
	Datasets  []string        `json:"datasets,omitempty"`
	Error     string          `json:"error,omitempty"`
	Rows      int             `json:"rows"`
	Plan      *plan.QueryPlan `json:"plan,omitempty"`
	Meta      *plan.Metadata  `json:"meta,omitempty"`
}

// Export writes the corpus as gzip-compressed JSON lines: one Header, then
// one DatasetRecord per dataset (including deleted ones — lifetimes need
// them), then one QueryRecord per log entry in execution order.
func Export(w io.Writer, c *workload.Corpus) error {
	gz := gzip.NewWriter(w)
	enc := json.NewEncoder(gz)
	datasets := c.Catalog.Datasets(true)
	h := Header{
		Format:   FormatVersion,
		Corpus:   c.Name,
		Exported: time.Now().UTC(),
		Users:    len(c.Catalog.Users()),
		Datasets: len(datasets),
		Queries:  len(c.Entries),
	}
	if err := enc.Encode(h); err != nil {
		return err
	}
	for _, ds := range datasets {
		rec := DatasetRecord{
			Kind:        "dataset",
			Owner:       ds.Owner,
			Name:        ds.Name,
			SQL:         ds.SQL,
			Description: ds.Meta.Description,
			Tags:        ds.Meta.Tags,
			IsWrapper:   ds.IsWrapper,
			Public:      ds.Visibility == catalog.Public,
			Created:     ds.Created.Unix(),
			Deleted:     ds.Deleted,
		}
		for u := range ds.SharedWith {
			rec.SharedWith = append(rec.SharedWith, u)
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, e := range c.Entries {
		rec := QueryRecord{
			Kind:      "query",
			ID:        e.ID,
			User:      e.User,
			SQL:       e.SQL,
			Time:      e.Time.Unix(),
			RuntimeMS: float64(e.Runtime) / float64(time.Millisecond),
			Datasets:  e.Datasets,
			Error:     e.Err,
			Rows:      e.RowsReturned,
			Plan:      e.Plan,
			Meta:      e.Meta,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return gz.Close()
}

// Release is a loaded corpus file. It does not reconstruct executable
// tables (the release carries logs and definitions, not data, exactly as
// the paper's release did), but it supports every log-level analysis.
type Release struct {
	Header   Header
	Datasets []DatasetRecord
	Queries  []QueryRecord
}

// Import reads a release file written by Export.
func Import(r io.Reader) (*Release, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("corpusio: %w", err)
	}
	defer gz.Close()
	sc := bufio.NewScanner(gz)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	rel := &Release{}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			if err := json.Unmarshal([]byte(line), &rel.Header); err != nil {
				return nil, fmt.Errorf("corpusio: bad header: %w", err)
			}
			if rel.Header.Format != FormatVersion {
				return nil, fmt.Errorf("corpusio: unsupported format %d", rel.Header.Format)
			}
			first = false
			continue
		}
		var kind struct{ Kind string }
		if err := json.Unmarshal([]byte(line), &kind); err != nil {
			return nil, fmt.Errorf("corpusio: bad record: %w", err)
		}
		switch kind.Kind {
		case "dataset":
			var rec DatasetRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				return nil, err
			}
			rel.Datasets = append(rel.Datasets, rec)
		case "query":
			var rec QueryRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				return nil, err
			}
			rel.Queries = append(rel.Queries, rec)
		default:
			return nil, fmt.Errorf("corpusio: unknown record kind %q", kind.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if first {
		return nil, fmt.Errorf("corpusio: empty file")
	}
	return rel, nil
}

// Entries converts the release's query records back into log entries so
// the workload package's log-level analyses (length, entropy, operator
// frequency, lifetimes, coverage, classification, reuse) run unchanged.
func (r *Release) Entries() []*catalog.LogEntry {
	out := make([]*catalog.LogEntry, 0, len(r.Queries))
	for _, q := range r.Queries {
		out = append(out, &catalog.LogEntry{
			ID:           q.ID,
			User:         q.User,
			SQL:          q.SQL,
			Time:         time.Unix(q.Time, 0).UTC(),
			Runtime:      time.Duration(q.RuntimeMS * float64(time.Millisecond)),
			Datasets:     q.Datasets,
			Plan:         q.Plan,
			Meta:         q.Meta,
			Err:          q.Error,
			RowsReturned: q.Rows,
		})
	}
	return out
}
