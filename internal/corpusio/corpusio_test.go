package corpusio

import (
	"bytes"
	"compress/gzip"
	"io"
	"strings"
	"testing"

	"sqlshare/internal/synth"
)

// writeGzipLine writes raw JSON-lines content as a gzip stream.
func writeGzipLine(w io.Writer, content string) {
	gz := gzip.NewWriter(w)
	_, _ = gz.Write([]byte(content + "\n"))
	_ = gz.Close()
}

// newEmptyGzip writes an empty gzip stream.
func newEmptyGzip(w io.Writer) struct{} {
	gz := gzip.NewWriter(w)
	_ = gz.Close()
	return struct{}{}
}

func TestExportImportRoundTrip(t *testing.T) {
	corpus, _, err := synth.GenerateSQLShare(synth.SQLShareConfig{Seed: 3, Users: 10, TargetQueries: 120})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Export(&buf, corpus); err != nil {
		t.Fatal(err)
	}
	rel, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Header.Corpus != "SQLShare" {
		t.Errorf("corpus name = %q", rel.Header.Corpus)
	}
	if rel.Header.Queries != len(corpus.Entries) || len(rel.Queries) != len(corpus.Entries) {
		t.Errorf("queries: header=%d records=%d want=%d",
			rel.Header.Queries, len(rel.Queries), len(corpus.Entries))
	}
	if len(rel.Datasets) != rel.Header.Datasets || len(rel.Datasets) == 0 {
		t.Errorf("datasets: %d vs header %d", len(rel.Datasets), rel.Header.Datasets)
	}
	// Per-record fidelity for the first query.
	q0, e0 := rel.Queries[0], corpus.Entries[0]
	if q0.SQL != e0.SQL || q0.User != e0.User || q0.Time != e0.Time.Unix() {
		t.Errorf("first query mismatch: %+v vs %+v", q0, e0)
	}
	if e0.Err == "" && (q0.Plan == nil || q0.Meta == nil) {
		t.Error("plan/meta lost in round trip")
	}
}

func TestReleaseEntriesDriveAnalyses(t *testing.T) {
	corpus, _, err := synth.GenerateSQLShare(synth.SQLShareConfig{Seed: 4, Users: 10, TargetQueries: 120})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Export(&buf, corpus); err != nil {
		t.Fatal(err)
	}
	rel, err := Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	entries := rel.Entries()
	if len(entries) != len(corpus.Entries) {
		t.Fatalf("entries = %d", len(entries))
	}
	// Log-level metrics must agree between live corpus and re-imported
	// release: compare a few invariants directly.
	planned := 0
	for i, e := range entries {
		if e.Err == "" && e.Plan != nil {
			planned++
			if e.Meta.Template != corpus.Entries[i].Meta.Template {
				t.Fatalf("template drift at %d", i)
			}
			if e.Meta.DistinctOperators != corpus.Entries[i].Meta.DistinctOperators {
				t.Fatalf("distinct ops drift at %d", i)
			}
		}
	}
	if planned == 0 {
		t.Fatal("no planned queries survived")
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := Import(strings.NewReader("not gzip")); err == nil {
		t.Error("non-gzip input should fail")
	}
	// Empty gzip stream → no header.
	var buf bytes.Buffer
	gz := newEmptyGzip(&buf)
	_ = gz
	if _, err := Import(&buf); err == nil {
		t.Error("empty release should fail")
	}
}

func TestImportRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	writeGzipLine(&buf, `{"format":99,"corpus":"x"}`)
	if _, err := Import(&buf); err == nil || !strings.Contains(err.Error(), "unsupported format") {
		t.Errorf("want unsupported-format error, got %v", err)
	}
}

func TestImportRejectsUnknownRecordKind(t *testing.T) {
	var buf bytes.Buffer
	writeGzipLine(&buf, `{"format":1,"corpus":"x"}`+"\n"+`{"kind":"mystery"}`)
	if _, err := Import(&buf); err == nil || !strings.Contains(err.Error(), "unknown record kind") {
		t.Errorf("want unknown-kind error, got %v", err)
	}
}
