package obs

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestHistogramPrometheusTextFormat pins the histogram exposition down to
// the Prometheus text-format spec: cumulative buckets ending in an
// explicit le="+Inf" sample, a _sum sample carrying the observed total,
// and a _count sample equal to the +Inf bucket.
func TestHistogramPrometheusTextFormat(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("req_seconds", "request latency", []float64{0.25, 0.5, 1})
	for _, v := range []float64{0.1, 0.25, 0.3, 2} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	// The metric family must be announced before its samples.
	if !strings.Contains(out, "# HELP req_seconds request latency") {
		t.Errorf("missing HELP line:\n%s", out)
	}
	typeIdx := strings.Index(out, "# TYPE req_seconds histogram")
	firstSample := strings.Index(out, "req_seconds_bucket")
	if typeIdx < 0 || firstSample < 0 || typeIdx > firstSample {
		t.Errorf("TYPE line must precede samples:\n%s", out)
	}

	// Buckets are cumulative: 0.25 counts both 0.1 and the boundary-equal
	// 0.25 observation; +Inf counts everything.
	for _, want := range []string{
		`req_seconds_bucket{le="0.25"} 2`,
		`req_seconds_bucket{le="0.5"} 3`,
		`req_seconds_bucket{le="1"} 3`,
		`req_seconds_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing bucket sample %q:\n%s", want, out)
		}
	}

	// _sum carries the total of raw observations, _count the +Inf bucket.
	if !strings.Contains(out, fmt.Sprintf("req_seconds_sum %v", 0.1+0.25+0.3+2.0)) {
		t.Errorf("missing or wrong _sum sample:\n%s", out)
	}
	if !strings.Contains(out, "req_seconds_count 4") {
		t.Errorf("missing _count sample:\n%s", out)
	}
	if h.Count() != 4 {
		t.Errorf("Count() = %d, want 4", h.Count())
	}
}

func TestHistogramSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("s", "snap", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 100} {
		h.Observe(v)
	}
	bounds, counts := h.Snapshot()
	if len(bounds) != len(counts) {
		t.Fatalf("bounds/counts length mismatch: %d vs %d", len(bounds), len(counts))
	}
	if !math.IsInf(bounds[len(bounds)-1], 1) {
		t.Fatalf("last bound = %v, want +Inf", bounds[len(bounds)-1])
	}
	// Snapshot counts are per-bucket, not cumulative.
	want := []int64{1, 2, 1, 1}
	for i, n := range want {
		if counts[i] != n {
			t.Errorf("bucket %d (le %v) = %d, want %d", i, bounds[i], counts[i], n)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q", "quantiles", []float64{1, 2, 4})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations spread evenly through (1, 2].
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	// Every quantile lands in the (1, 2] bucket; interpolation keeps the
	// estimate inside the bucket bounds and monotone in q.
	p50, p90 := h.Quantile(0.50), h.Quantile(0.90)
	if p50 <= 1 || p50 > 2 {
		t.Errorf("p50 = %v, want in (1, 2]", p50)
	}
	if p90 < p50 || p90 > 2 {
		t.Errorf("p90 = %v, want in [p50, 2]", p90)
	}
	// Observations past the last finite bound clamp to it rather than
	// reporting +Inf.
	h2 := r.NewHistogram("q2", "quantiles", []float64{1, 2, 4})
	h2.Observe(1000)
	if got := h2.Quantile(0.99); got != 4 {
		t.Errorf("overflow-bucket quantile = %v, want clamp to 4", got)
	}
}
