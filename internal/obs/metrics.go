package obs

import (
	"runtime"
	"time"
)

// Version identifies the running build in sqlshare_build_info and
// /api/health. Binaries stamp it from their -version flag default or via
// -ldflags "-X sqlshare/internal/obs.Version=...".
var Version = "dev"

// processStart anchors sqlshare_process_start_time_seconds and the health
// endpoint's uptime. Set once at init; tests read it through ProcessStart.
var processStart = time.Now()

// ProcessStart reports when this process initialized the obs package —
// effectively process start for any real binary.
func ProcessStart() time.Time { return processStart }

// PlatformMetrics is the named metric bundle every layer of the platform
// reports through: the catalog's query path, the REST server's request
// middleware and job table, and the ingest path. Creating the bundle is
// idempotent per registry, so the server and tests can share one.
type PlatformMetrics struct {
	Registry *Registry

	// Query pipeline (catalog.Query).
	QueriesTotal   *Counter
	QueriesFailed  *Counter
	QueriesAborted *Counter // row-limit aborts (engine.ErrRowLimit)
	RowsReturned   *Counter
	RowsScanned    *Counter // actual rows produced by scan/seek operators (traced runs only)
	CompileSeconds *Histogram
	ExecSeconds    *Histogram

	// Intra-query parallelism (internal/engine worker pool).
	ParallelQueries     *Counter // queries that actually ran an operator with >1 worker
	ParallelWorkersBusy *Gauge   // workers currently occupied by parallel operators

	// Columnar execution (internal/engine vectorized scans).
	SegmentsScanned *Counter // segments read by vectorized scans
	SegmentsSkipped *Counter // segments pruned via zone maps without reading data

	// Catalog mutations, labeled by operation name.
	CatalogOps *CounterVec

	// Ingest and upload staging.
	IngestBytes *Counter

	// Asynchronous job table (§3.3 protocol).
	JobQueueDepth *Gauge

	// Query history / continuous insights.
	HistoryRecords *Counter
	SlowQueries    *CounterVec // label: plan digest

	// Version-fenced result & plan cache (internal/qcache).
	CacheHits       *Counter
	CacheMisses     *Counter
	CacheEvictions  *Counter
	CacheBytes      *Gauge
	CacheHitSeconds *Histogram

	// HTTP layer.
	HTTPRequests *CounterVec // labels: route, status
	HTTPSeconds  *Histogram
	HTTPBytesOut *Counter

	// Durability (internal/wal): group-commit fsync latency, checkpoint
	// cost, and what recovery replayed at boot.
	WALFsyncSeconds   *Histogram
	WALRecords        *Counter
	WALBytes          *Counter
	CheckpointSeconds *Histogram
	RecoveryRecords   *Counter
	RecoveryTornBytes *Counter

	// Replication (internal/repl): per-follower lag as seen by the
	// primary, and the follower-side stream accounting.
	ReplLagRecords     *GaugeVec // label: follower — durable LSN minus the follower's acked LSN
	ReplLagSeconds     *GaugeVec // label: follower — seconds since the follower last made progress
	ReplRecordsSent    *Counter  // records streamed to followers
	ReplRecordsApplied *Counter  // records this node applied off a primary's stream
	ReplTornResumes    *Counter  // torn/corrupt stream frames that forced a re-request
	ReplSnapshotSyncs  *Counter  // follower bootstraps served or performed via snapshot

	// Span tracing (internal/obs TraceStore) and per-user accounting.
	TracesTotal    *Counter
	TracesRetained *CounterVec // label: reason (slow, error, bypass, head, forced, all)
	Usage          *UsageMeter

	// Build identity and process lifetime.
	BuildInfo        *GaugeVec  // labels: version, go — constant 1
	ProcessStartTime *GaugeFunc // unix seconds, Prometheus convention
}

// NewPlatformMetrics creates (or rebinds to) the platform metric bundle on r.
func NewPlatformMetrics(r *Registry) *PlatformMetrics {
	m := &PlatformMetrics{
		Registry: r,
		QueriesTotal: r.NewCounter("sqlshare_queries_total",
			"Queries submitted through the catalog query path."),
		QueriesFailed: r.NewCounter("sqlshare_queries_failed_total",
			"Queries that ended in an error (parse, access, compile or runtime)."),
		QueriesAborted: r.NewCounter("sqlshare_queries_aborted_total",
			"Queries aborted by the row-limit runaway guard."),
		RowsReturned: r.NewCounter("sqlshare_query_rows_returned_total",
			"Result rows returned by successful queries."),
		RowsScanned: r.NewCounter("sqlshare_query_rows_scanned_total",
			"Actual rows produced by scan and seek operators in traced executions."),
		CompileSeconds: r.NewHistogram("sqlshare_query_compile_seconds",
			"Parse + permission-check + plan-compile latency.", nil),
		ExecSeconds: r.NewHistogram("sqlshare_query_execute_seconds",
			"Plan execution latency.", nil),
		ParallelQueries: r.NewCounter("sqlshare_parallel_queries_total",
			"Queries that executed at least one operator with more than one worker."),
		ParallelWorkersBusy: r.NewGauge("sqlshare_parallel_workers_busy",
			"Workers currently running parallel operator tasks, across all queries."),
		SegmentsScanned: r.NewCounter("sqlshare_segments_scanned_total",
			"Columnar segments read by vectorized scan operators."),
		SegmentsSkipped: r.NewCounter("sqlshare_segments_skipped_total",
			"Columnar segments skipped by zone-map pruning before reading any data."),
		CatalogOps: r.NewCounterVec("sqlshare_catalog_ops_total",
			"Catalog mutations by operation.", "op"),
		IngestBytes: r.NewCounter("sqlshare_ingest_bytes_total",
			"Bytes accepted by the staging/ingest path."),
		JobQueueDepth: r.NewGauge("sqlshare_job_queue_depth",
			"Asynchronous queries currently running."),
		HistoryRecords: r.NewCounter("sqlshare_history_records_total",
			"Statements recorded into the query history."),
		SlowQueries: r.NewCounterVec("sqlshare_slow_queries_total",
			"Statements at or above the slow-query threshold, by plan digest.", "digest"),
		CacheHits: r.NewCounter("sqlshare_cache_hits_total",
			"Queries answered from the version-fenced result cache."),
		CacheMisses: r.NewCounter("sqlshare_cache_misses_total",
			"Cacheable queries that probed the result cache and missed."),
		CacheEvictions: r.NewCounter("sqlshare_cache_evictions_total",
			"Result/plan cache entries evicted (LRU budget or TTL expiry)."),
		CacheBytes: r.NewGauge("sqlshare_cache_bytes",
			"Estimated bytes currently held by the result/plan cache."),
		CacheHitSeconds: r.NewHistogram("sqlshare_cache_hit_seconds",
			"End-to-end latency of queries answered from the result cache.", nil),
		HTTPRequests: r.NewCounterVec("sqlshare_http_requests_total",
			"HTTP requests by route pattern and status code.", "route", "status"),
		HTTPSeconds: r.NewHistogram("sqlshare_http_request_seconds",
			"HTTP request latency.", nil),
		HTTPBytesOut: r.NewCounter("sqlshare_http_response_bytes_total",
			"HTTP response body bytes written."),
		WALFsyncSeconds: r.NewHistogram("sqlshare_wal_fsync_seconds",
			"Write-ahead-log fsync latency (one observation per group commit).", nil),
		WALRecords: r.NewCounter("sqlshare_wal_records_total",
			"Records appended durably to the write-ahead log."),
		WALBytes: r.NewCounter("sqlshare_wal_bytes_total",
			"Bytes appended durably to the write-ahead log."),
		CheckpointSeconds: r.NewHistogram("sqlshare_checkpoint_seconds",
			"Catalog snapshot (checkpoint) duration.", nil),
		RecoveryRecords: r.NewCounter("sqlshare_recovery_records_total",
			"WAL records replayed during crash recovery at startup."),
		RecoveryTornBytes: r.NewCounter("sqlshare_recovery_torn_bytes_total",
			"Bytes discarded from a torn final WAL record during recovery."),
		ReplLagRecords: r.NewGaugeVec("sqlshare_repl_lag_records",
			"Replication lag per follower: primary durable LSN minus the follower's acknowledged LSN.", "follower"),
		ReplLagSeconds: r.NewGaugeVec("sqlshare_repl_lag_seconds",
			"Seconds since the follower last advanced its acknowledged LSN (0 when caught up).", "follower"),
		ReplRecordsSent: r.NewCounter("sqlshare_repl_records_sent_total",
			"WAL records streamed to followers."),
		ReplRecordsApplied: r.NewCounter("sqlshare_repl_records_applied_total",
			"WAL records this node applied off a primary's replication stream."),
		ReplTornResumes: r.NewCounter("sqlshare_repl_torn_resumes_total",
			"Torn or corrupt replication frames that forced a re-request from the durable LSN."),
		ReplSnapshotSyncs: r.NewCounter("sqlshare_repl_snapshot_syncs_total",
			"Follower bootstraps performed (or served) via full snapshot transfer."),
		TracesTotal: r.NewCounter("sqlshare_traces_total",
			"Request traces finished (head-sampled into the summary ring)."),
		TracesRetained: r.NewCounterVec("sqlshare_traces_retained_total",
			"Traces whose full span tree was retained, by tail-sampling reason.", "reason"),
		Usage: NewUsageMeter(r),
		BuildInfo: r.NewGaugeVec("sqlshare_build_info",
			"Build identity; the labeled sample is always 1.", "version", "go"),
		ProcessStartTime: r.NewGaugeFunc("sqlshare_process_start_time_seconds",
			"Unix time the process started, in seconds.", func() float64 {
				return float64(processStart.UnixNano()) / 1e9
			}),
	}
	m.BuildInfo.With(Version, runtime.Version()).Set(1)
	return m
}
