package obs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// finishOne drives a minimal trace through st and returns its ID. mutate
// runs between start and finish to shape the outcome (error, attrs, ...).
func finishOne(t *testing.T, st *TraceStore, name string, mutate func(ctx context.Context, root *Span)) string {
	t.Helper()
	ctx, root := st.StartTrace(context.Background(), name, SpanContext{})
	id := root.TraceID()
	if mutate != nil {
		mutate(ctx, root)
	}
	root.End()
	FinishTrace(ctx)
	return id
}

func retentionReason(t *testing.T, st *TraceStore, id string) string {
	t.Helper()
	for _, s := range st.Summaries(0) {
		if s.ID == id {
			return s.Reason
		}
	}
	t.Fatalf("trace %s missing from summary ring", id)
	return ""
}

func TestRetentionReasonPrecedence(t *testing.T) {
	st := NewTraceStore(TraceConfig{Slow: time.Hour, HeadEvery: 4})

	fast := finishOne(t, st, "fast", nil)
	if r := retentionReason(t, st, fast); r != "" {
		t.Fatalf("fast ok trace retained as %q", r)
	}
	if tr, seen := st.Get(fast); tr != nil || !seen {
		t.Fatalf("sampled-out trace: tr=%v seen=%v, want nil/true", tr, seen)
	}

	failed := finishOne(t, st, "failed", func(_ context.Context, root *Span) {
		root.Fail(errors.New("boom"))
	})
	if r := retentionReason(t, st, failed); r != "error" {
		t.Fatalf("error trace retained as %q", r)
	}

	bypass := finishOne(t, st, "bypass", func(_ context.Context, root *Span) {
		root.SetAttr("cache", "bypass")
	})
	if r := retentionReason(t, st, bypass); r != "bypass" {
		t.Fatalf("bypass trace retained as %q", r)
	}

	// 4th finished trace: head sampling retains it despite being ordinary.
	head := finishOne(t, st, "head", nil)
	if r := retentionReason(t, st, head); r != "head" {
		t.Fatalf("4th trace (HeadEvery=4) retained as %q", r)
	}

	// forced wins over error.
	forced := finishOne(t, st, "forced", func(ctx context.Context, root *Span) {
		ForceRetain(ctx)
		root.Fail(errors.New("boom"))
	})
	if r := retentionReason(t, st, forced); r != "forced" {
		t.Fatalf("forced trace retained as %q", r)
	}

	for _, id := range []string{failed, bypass, head, forced} {
		if tr, _ := st.Get(id); tr == nil {
			t.Errorf("retained trace %s has no full tree", id)
		}
	}

	stats := st.Stats()
	if stats.Finished != 5 || stats.Retained != 4 {
		t.Fatalf("stats = %+v, want 5 finished / 4 retained", stats)
	}
}

func TestRetentionSlowThreshold(t *testing.T) {
	st := NewTraceStore(TraceConfig{Slow: time.Nanosecond})
	id := finishOne(t, st, "slow", func(_ context.Context, _ *Span) {
		time.Sleep(time.Millisecond)
	})
	if r := retentionReason(t, st, id); r != "slow" {
		t.Fatalf("slow trace retained as %q", r)
	}
}

func TestRetentionAllWhenSamplingOff(t *testing.T) {
	st := NewTraceStore(TraceConfig{}) // Slow == 0: development default
	id := finishOne(t, st, "any", nil)
	if r := retentionReason(t, st, id); r != "all" {
		t.Fatalf("with sampling off, trace retained as %q", r)
	}
}

func TestGetDistinguishesSampledOutFromUnknown(t *testing.T) {
	st := NewTraceStore(TraceConfig{Slow: time.Hour})
	id := finishOne(t, st, "fast", nil)
	if tr, seen := st.Get(id); tr != nil || !seen {
		t.Fatalf("sampled-out: tr=%v seen=%v, want nil/true", tr, seen)
	}
	if tr, seen := st.Get(strings.Repeat("f", 32)); tr != nil || seen {
		t.Fatalf("unknown: tr=%v seen=%v, want nil/false", tr, seen)
	}
}

func TestSummariesNewestFirstAndRingWrap(t *testing.T) {
	st := NewTraceStore(TraceConfig{Summaries: 4, Slow: time.Hour})
	var ids []string
	for i := 0; i < 6; i++ {
		ids = append(ids, finishOne(t, st, fmt.Sprintf("t%d", i), nil))
	}
	got := st.Summaries(0)
	if len(got) != 4 {
		t.Fatalf("ring of 4 returned %d summaries", len(got))
	}
	// Newest first: t5, t4, t3, t2 — t0/t1 evicted by the wrap.
	for i, s := range got {
		if want := ids[5-i]; s.ID != want {
			t.Fatalf("summary[%d] = %s (%s), want %s", i, s.ID, s.Name, want)
		}
	}
	if limited := st.Summaries(2); len(limited) != 2 || limited[0].ID != ids[5] {
		t.Fatalf("Summaries(2) = %v", limited)
	}
	// Evicted IDs are gone entirely: not retained, not seen.
	if _, seen := st.Get(ids[0]); seen {
		t.Fatal("wrapped-over summary still visible")
	}
}

func TestRetainedTreeEviction(t *testing.T) {
	st := NewTraceStore(TraceConfig{Retain: 2}) // retain-everything, cap 2
	a := finishOne(t, st, "a", nil)
	b := finishOne(t, st, "b", nil)
	c := finishOne(t, st, "c", nil)
	if tr, _ := st.Get(a); tr != nil {
		t.Fatal("oldest tree not evicted at the retention cap")
	}
	for _, id := range []string{b, c} {
		if tr, _ := st.Get(id); tr == nil {
			t.Errorf("tree %s evicted too early", id)
		}
	}
}

func TestDumpWritesRetainedTracesAsJSONL(t *testing.T) {
	st := NewTraceStore(TraceConfig{Slow: time.Hour})
	finishOne(t, st, "fast", nil) // sampled out: must not appear
	kept := finishOne(t, st, "kept", func(_ context.Context, root *Span) {
		root.Fail(errors.New("boom"))
	})

	var buf strings.Builder
	n, err := st.Dump(&buf)
	if err != nil || n != 1 {
		t.Fatalf("Dump = %d, %v", n, err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("JSONL lines = %d, want 1: %q", len(lines), buf.String())
	}
	if !strings.Contains(lines[0], kept) || !strings.Contains(lines[0], `"status":"error"`) {
		t.Fatalf("dumped line missing trace: %s", lines[0])
	}
}

// TestConcurrentTracing exercises the pooled-builder lifecycle from many
// goroutines at once — most valuable under -race (make race-obs).
func TestConcurrentTracing(t *testing.T) {
	st := NewTraceStore(TraceConfig{Slow: time.Hour, HeadEvery: 3})
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				ctx, root := st.StartTrace(context.Background(), "req", SpanContext{})
				sctx, sp := StartSpan(ctx, "work")
				ChildSpan(sctx, "leaf").End()
				if i%7 == 0 {
					sp.Fail(errors.New("boom"))
				}
				sp.End()
				root.End()
				FinishTrace(ctx)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if got := st.Stats().Finished; got != 400 {
		t.Fatalf("finished = %d, want 400", got)
	}
}
