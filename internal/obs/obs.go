// Package obs is the stdlib-only observability layer of the SQLShare
// reproduction. The paper's workload study (§4–§6) was possible only
// because the production system emitted telemetry for every query —
// SHOWPLAN plans with estimated and actual row counts, per-query runtimes,
// and a request log. This package supplies the equivalent raw material for
// the reproduction: a concurrency-safe metrics registry (counters, gauges,
// fixed-bucket histograms, single- and multi-label counter vectors) with a
// Prometheus text-format exporter and an expvar-style JSON view, plus the
// named metric bundle (PlatformMetrics) the catalog, engine and REST
// server report through.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

func jsonMarshal(v any) (string, error) {
	b, err := json.Marshal(v)
	return string(b), err
}

// metric is the common interface of everything a Registry holds.
type metric interface {
	metricName() string
	metricHelp() string
	metricType() string // "counter", "gauge", "histogram"
	// writeSamples appends the Prometheus sample lines (no HELP/TYPE
	// header) for this metric to b.
	writeSamples(b *strings.Builder)
	// expvarValue returns the metric's value in a JSON-marshalable shape
	// for the /debug/vars view.
	expvarValue() any
}

// Registry is an ordered collection of metrics. All methods are safe for
// concurrent use; the returned metric handles are lock-free where possible.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]metric{}}
}

// register adds m, or returns the existing metric of the same name so
// repeated construction (e.g. in tests) is idempotent. A name collision
// across metric kinds panics: it is a programming error.
func (r *Registry) register(m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[m.metricName()]; ok {
		if old.metricType() != m.metricType() {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)",
				m.metricName(), m.metricType(), old.metricType()))
		}
		return old
	}
	r.byName[m.metricName()] = m
	r.metrics = append(r.metrics, m)
	return m
}

// snapshot returns the registered metrics in registration order.
func (r *Registry) snapshot() []metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]metric(nil), r.metrics...)
}

// ---------------------------------------------------------------- counter

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter registers (or returns the existing) counter with this name.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(&Counter{name: name, help: help}).(*Counter)
}

// Add increments the counter by n (n < 0 is ignored: counters only grow).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricType() string { return "counter" }
func (c *Counter) expvarValue() any   { return c.Value() }
func (c *Counter) writeSamples(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", c.name, c.Value())
}

// ---------------------------------------------------------------- gauge

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge registers (or returns the existing) gauge with this name.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(&Gauge{name: name, help: help}).(*Gauge)
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricType() string { return "gauge" }
func (g *Gauge) expvarValue() any   { return g.Value() }
func (g *Gauge) writeSamples(b *strings.Builder) {
	fmt.Fprintf(b, "%s %d\n", g.name, g.Value())
}

// ---------------------------------------------------------------- gaugefunc

// GaugeFunc is a gauge whose value is computed at scrape time by a callback
// — the natural shape for overload signals that already live elsewhere
// (pool occupancy, registry stats, queue depths): no background updater, no
// staleness, the scrape sees the live value.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFunc registers a callback-backed gauge. If the name is already
// registered the existing metric is returned and fn is ignored (matching
// the idempotent construction of the other kinds).
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	return r.register(&GaugeFunc{name: name, help: help, fn: fn}).(*GaugeFunc)
}

// Value invokes the callback.
func (g *GaugeFunc) Value() float64 { return g.fn() }

func (g *GaugeFunc) metricName() string { return g.name }
func (g *GaugeFunc) metricHelp() string { return g.help }
func (g *GaugeFunc) metricType() string { return "gauge" }
func (g *GaugeFunc) expvarValue() any   { return g.Value() }
func (g *GaugeFunc) writeSamples(b *strings.Builder) {
	fmt.Fprintf(b, "%s %s\n", g.name, formatFloat(g.Value()))
}

// ---------------------------------------------------------------- histogram

// DefLatencyBuckets are the default latency buckets, in seconds. They span
// 100µs to 10s, which covers this engine's in-memory query latencies as
// well as slow REST requests.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram of float64 observations. Buckets
// are cumulative upper bounds, Prometheus-style; an implicit +Inf bucket
// catches everything else. Observations are lock-free.
type Histogram struct {
	name, help string
	bounds     []float64
	counts     []atomic.Int64 // len(bounds)+1; last is +Inf
	sumBits    atomic.Uint64  // float64 bits of the running sum
}

// NewHistogram registers (or returns the existing) histogram with this
// name. nil buckets uses DefLatencyBuckets. Buckets are sorted and
// deduplicated here so the text-format exposition always flushes them in
// ascending upper-bound order — callers need not pre-sort, and scrape
// output stays byte-stable for diffing.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	dedup := bounds[:0]
	for i, b := range bounds {
		if i == 0 || b != dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	bounds = dedup
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	return r.register(h).(*Histogram)
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot returns the bucket upper bounds and the per-bucket (non-
// cumulative) counts, slices of equal length with the final bound being
// +Inf. The counts are a point-in-time copy; concurrent observations may
// land between reads of adjacent buckets, which is the usual
// Prometheus-style tolerance.
func (h *Histogram) Snapshot() (bounds []float64, counts []int64) {
	bounds = append(append([]float64(nil), h.bounds...), math.Inf(1))
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed
// distribution by linear interpolation within the containing bucket —
// the same estimate a Prometheus histogram_quantile() would give. It
// returns 0 when the histogram is empty; observations in the +Inf bucket
// clamp to the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	bounds, counts := h.Snapshot()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if math.IsInf(bounds[i], 1) {
			// +Inf bucket: no upper edge to interpolate toward; clamp to
			// the largest finite bound.
			if i == 0 {
				return 0
			}
			return bounds[i-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bounds[i-1]
		}
		upper := bounds[i]
		if c == 0 {
			return upper
		}
		return lower + (upper-lower)*(rank-float64(cum))/float64(c)
	}
	if len(bounds) > 1 {
		return bounds[len(bounds)-2]
	}
	return 0
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricType() string { return "histogram" }

func (h *Histogram) writeSamples(b *strings.Builder) {
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.name, formatFloat(bound), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(b, "%s_sum %s\n", h.name, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count %d\n", h.name, cum)
}

func (h *Histogram) expvarValue() any {
	return map[string]any{"count": h.Count(), "sum": h.Sum()}
}

// ---------------------------------------------------------------- vectors

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	children   map[string]*vecChild
}

type vecChild struct {
	values []string
	c      Counter
}

// NewCounterVec registers (or returns the existing) counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, labels: labels, children: map[string]*vecChild{}}
	return r.register(v).(*CounterVec)
}

// With returns the counter for the given label values (created on first
// use). The number of values must match the label names.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	v.mu.Lock()
	defer v.mu.Unlock()
	ch, ok := v.children[key]
	if !ok {
		ch = &vecChild{values: append([]string(nil), values...)}
		v.children[key] = ch
	}
	return &ch.c
}

func (v *CounterVec) sorted() []*vecChild {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*vecChild, 0, len(v.children))
	for _, ch := range v.children {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, "\x1f") < strings.Join(out[j].values, "\x1f")
	})
	return out
}

func (v *CounterVec) metricName() string { return v.name }
func (v *CounterVec) metricHelp() string { return v.help }
func (v *CounterVec) metricType() string { return "counter" }

func (v *CounterVec) writeSamples(b *strings.Builder) {
	for _, ch := range v.sorted() {
		pairs := make([]string, len(v.labels))
		for i, l := range v.labels {
			pairs[i] = fmt.Sprintf("%s=%q", l, ch.values[i])
		}
		fmt.Fprintf(b, "%s{%s} %d\n", v.name, strings.Join(pairs, ","), ch.c.Value())
	}
}

func (v *CounterVec) expvarValue() any {
	out := map[string]int64{}
	for _, ch := range v.sorted() {
		out[strings.Join(ch.values, ",")] = ch.c.Value()
	}
	return out
}

// GaugeVec is a family of gauges partitioned by label values — used for
// info-style metrics (sqlshare_build_info) and any gauge that needs a
// label dimension.
type GaugeVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	children   map[string]*gaugeVecChild
}

type gaugeVecChild struct {
	values []string
	g      Gauge
}

// NewGaugeVec registers (or returns the existing) gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	v := &GaugeVec{name: name, help: help, labels: labels, children: map[string]*gaugeVecChild{}}
	return r.register(v).(*GaugeVec)
}

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x1f")
	v.mu.Lock()
	defer v.mu.Unlock()
	ch, ok := v.children[key]
	if !ok {
		ch = &gaugeVecChild{values: append([]string(nil), values...)}
		v.children[key] = ch
	}
	return &ch.g
}

func (v *GaugeVec) sorted() []*gaugeVecChild {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*gaugeVecChild, 0, len(v.children))
	for _, ch := range v.children {
		out = append(out, ch)
	}
	sort.Slice(out, func(i, j int) bool {
		return strings.Join(out[i].values, "\x1f") < strings.Join(out[j].values, "\x1f")
	})
	return out
}

func (v *GaugeVec) metricName() string { return v.name }
func (v *GaugeVec) metricHelp() string { return v.help }
func (v *GaugeVec) metricType() string { return "gauge" }

func (v *GaugeVec) writeSamples(b *strings.Builder) {
	for _, ch := range v.sorted() {
		pairs := make([]string, len(v.labels))
		for i, l := range v.labels {
			pairs[i] = fmt.Sprintf("%s=%q", l, ch.values[i])
		}
		fmt.Fprintf(b, "%s{%s} %d\n", v.name, strings.Join(pairs, ","), ch.g.Value())
	}
}

func (v *GaugeVec) expvarValue() any {
	out := map[string]int64{}
	for _, ch := range v.sorted() {
		out[strings.Join(ch.values, ",")] = ch.g.Value()
	}
	return out
}

// ---------------------------------------------------------------- export

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(b *strings.Builder) {
	for _, m := range r.snapshot() {
		if help := m.metricHelp(); help != "" {
			fmt.Fprintf(b, "# HELP %s %s\n", m.metricName(), help)
		}
		fmt.Fprintf(b, "# TYPE %s %s\n", m.metricName(), m.metricType())
		m.writeSamples(b)
	}
}

// Handler serves the registry in Prometheus text format (for GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var b strings.Builder
		r.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(b.String()))
	})
}

// ExpvarHandler serves the process-global expvar variables (memstats,
// cmdline, anything else published) merged with this registry's metrics as
// one JSON document — the /debug/vars view. It reimplements the expvar
// handler rather than publishing into the expvar global namespace so
// multiple registries (one per test server) never collide.
func (r *Registry) ExpvarHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",")
			}
			first = false
			fmt.Fprintf(w, "\n%q: %s", kv.Key, kv.Value.String())
		})
		for _, m := range r.snapshot() {
			if !first {
				fmt.Fprintf(w, ",")
			}
			first = false
			val, err := jsonMarshal(m.expvarValue())
			if err != nil {
				val = `"unmarshalable"`
			}
			fmt.Fprintf(w, "\n%q: %s", m.metricName(), val)
		}
		fmt.Fprintf(w, "\n}\n")
	})
}
