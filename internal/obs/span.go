package obs

// Span-based request tracing. Where the PR-1 operator tracer answers "what
// did the *engine* do inside one query", spans answer "what did the *whole
// platform* do for one request": HTTP handler, auth, parse, plan, cache
// probe, execution (with the operator tree bridged in as child spans), WAL
// append and response write, causally linked by parent IDs under one trace
// ID. Trace context rides on context.Context; a request that arrives with a
// W3C `traceparent` header joins the caller's trace, so a future multi-node
// router inherits cross-node causality for free.
//
// Every API here is nil-safe: with no active trace in the context,
// StartSpan returns a nil *Span and every method on it is a no-op, keeping
// the untraced fast path at the cost of one context lookup.

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	mrand "math/rand/v2"
	"strings"
	"sync"
	"time"
)

// maxSpansPerTrace bounds one trace's memory: past it, new spans are
// counted but not recorded (the root span gets a droppedSpans attribute).
const maxSpansPerTrace = 512

// SpanContext identifies a position in a distributed trace: the trace and
// the span that caused the current work. The zero value means "no context".
type SpanContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context names a trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// ParseTraceparent decodes a W3C trace-context `traceparent` header
// (version 00: "00-<32 hex trace id>-<16 hex span id>-<2 hex flags>").
// Malformed or all-zero values return the zero SpanContext. This runs on
// every request, traced or not, so it parses at fixed offsets without
// allocating.
func ParseTraceparent(h string) SpanContext {
	h = strings.TrimSpace(h)
	// "00-" + 32 + "-" + 16 + "-" + 2 = 55 bytes.
	if len(h) != 55 || h[0] != '0' || h[1] != '0' || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}
	}
	traceID, spanID := h[3:35], h[36:52]
	if !isHex(traceID) || !isHex(spanID) || !isHex(h[53:]) {
		return SpanContext{}
	}
	if traceID == "00000000000000000000000000000000" || spanID == "0000000000000000" {
		return SpanContext{}
	}
	return SpanContext{TraceID: traceID, SpanID: spanID}
}

// FormatTraceparent renders a SpanContext as a `traceparent` header value
// with the sampled flag set. Invalid contexts render as "".
func FormatTraceparent(sc SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.TraceID + "-" + sc.SpanID + "-01"
}

func isHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Span is one timed operation inside a trace. Fields are written through
// the methods below (which are safe for concurrent use and nil-safe); the
// struct itself is assembled into the immutable SpanData export shape when
// the trace finalizes.
type Span struct {
	tb       *TraceBuilder
	spanID   uint64 // hex-encoded only at export; zero parentID means root
	parentID uint64
	name     string
	start    time.Time

	mu       sync.Mutex
	duration time.Duration
	ended    bool
	err      string
	attrs    []attrKV // few per span; the export map is built at assemble
	cpu      time.Duration
	rows     int64
	bytes    int64
}

// attrKV keeps span attributes as an append-only pair list: spans carry at
// most a handful, so a linear scan beats a map allocation per span.
type attrKV struct{ k, v string }

// SpanData is the immutable export shape of one finished span, as served by
// GET /api/traces/{id}. StartUs is relative to the trace start so a client
// can render a waterfall without absolute clocks.
type SpanData struct {
	SpanID     string            `json:"spanId"`
	ParentID   string            `json:"parentId,omitempty"`
	Name       string            `json:"name"`
	StartUs    int64             `json:"startUs"`
	DurationMs float64           `json:"durationMs"`
	CPUMs      float64           `json:"cpuMs,omitempty"`
	Rows       int64             `json:"rows,omitempty"`
	Bytes      int64             `json:"bytes,omitempty"`
	Err        string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// Context returns the span's position for propagation (traceparent
// headers, job linking). Nil-safe: a nil span returns the zero context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.tb.id, SpanID: spanIDString(s.spanID)}
}

// TraceID returns the span's 32-hex trace ID without allocating. Nil-safe.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tb.id
}

// Traceparent renders the span's W3C traceparent header value in a single
// allocation — Context()+FormatTraceparent costs two, and the middleware
// stamps every response. Nil-safe: a nil span returns "".
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	var b [55]byte
	copy(b[:3], "00-")
	copy(b[3:35], s.tb.id)
	b[35] = '-'
	var raw [8]byte
	binary.BigEndian.PutUint64(raw[:], s.spanID)
	hex.Encode(b[36:52], raw[:])
	copy(b[52:], "-01")
	return string(b[:])
}

// spanIDString renders a span ID in its W3C wire form (16 lowercase hex).
func spanIDString(id uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], id)
	var dst [16]byte
	hex.Encode(dst[:], b[:])
	return string(dst[:])
}

// parseSpanID decodes a 16-hex-char span ID; malformed input returns 0
// (no parent).
func parseSpanID(s string) uint64 {
	if len(s) != 16 || !isHex(s) {
		return 0
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// SetAttr attaches a string attribute. Nil-safe.
func (s *Span) SetAttr(k, v string) {
	if s == nil || v == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].k == k {
			s.attrs[i].v = v
			return
		}
	}
	if cap(s.attrs) == 0 {
		// Spans carry a handful of attributes; one right-sized allocation
		// beats append's doubling for the common case.
		s.attrs = make([]attrKV, 0, 4)
	}
	s.attrs = append(s.attrs, attrKV{k, v})
}

// attrLocked returns the attribute value for k, or "". Caller holds s.mu.
func (s *Span) attrLocked(k string) string {
	for i := range s.attrs {
		if s.attrs[i].k == k {
			return s.attrs[i].v
		}
	}
	return ""
}

// AddRows credits rows to the span's resource delta. Nil-safe.
func (s *Span) AddRows(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.mu.Lock()
	s.rows += n
	s.mu.Unlock()
}

// AddBytes credits bytes to the span's resource delta. Nil-safe.
func (s *Span) AddBytes(n int64) {
	if s == nil || n == 0 {
		return
	}
	s.mu.Lock()
	s.bytes += n
	s.mu.Unlock()
}

// AddCPU credits estimated CPU time to the span. The estimate is the
// caller's to define (for serial phases, wall time is the honest estimate;
// parallel phases may scale by worker count). Nil-safe.
func (s *Span) AddCPU(d time.Duration) {
	if s == nil || d <= 0 {
		return
	}
	s.mu.Lock()
	s.cpu += d
	s.mu.Unlock()
}

// Fail records an error on the span without ending it. Nil-safe.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// End closes the span, fixing its duration. Idempotent and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.duration = time.Since(s.start)
	}
	s.mu.Unlock()
}

// EndErr records err (if any) and ends the span. Nil-safe.
func (s *Span) EndErr(err error) {
	s.Fail(err)
	s.End()
}

// Defer schedules fn to run only if the trace is retained, immediately
// before the export tree is assembled. This is the tail-sampling cost model
// applied to instrumentation itself: work that is expensive to record and
// worthless for a sampled-out trace — like bridging the engine's
// per-operator tracer into child spans — costs one closure on the fast
// path and is paid for only when the trace turns out interesting. fn runs
// on the finalizing goroutine and may create spans (via Child); it must not
// touch the trace store. No-op on a nil span or a finished trace.
func (s *Span) Defer(fn func()) {
	if s == nil {
		return
	}
	tb := s.tb
	tb.mu.Lock()
	if !tb.done {
		tb.deferred = append(tb.deferred, fn)
	}
	tb.mu.Unlock()
}

// Deferred is retained-only instrumentation with a lifecycle: Materialize
// runs only if the trace is retained (like Span.Defer), with the span it
// was attached to as the parent; Release always runs exactly once when the
// trace finalizes — retained or not — so implementations can return their
// recording state to a pool. Prefer this over Defer when the instrumenting
// side carries per-request scratch memory: the closure and the scratch both
// stop costing an allocation.
type Deferred interface {
	Materialize(parent *Span)
	Release()
}

// DeferOn schedules d's Materialize under the span at assembly (retained
// traces only) and guarantees d.Release at finalization. If the trace is
// already finished, d is released immediately. Nil-safe: a nil span
// releases d at once, so callers never leak pooled recorders.
func (s *Span) DeferOn(d Deferred) {
	if s == nil {
		d.Release()
		return
	}
	tb := s.tb
	tb.mu.Lock()
	if tb.done {
		tb.mu.Unlock()
		d.Release()
		return
	}
	tb.deferredOps = append(tb.deferredOps, deferredOp{sp: s, d: d})
	tb.mu.Unlock()
}

// Child records an already-measured operation as a completed child span —
// the bridge that imports the engine's per-operator TraceNode statistics
// (measured by the PR-1 tracer, not by spans) into the span tree. Nil-safe;
// returns the new span so the caller can attach attributes and deltas.
func (s *Span) Child(name string, start time.Time, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := s.tb.newSpan(name, s.spanID, start)
	if c == nil {
		return nil
	}
	c.mu.Lock()
	c.ended = true
	c.duration = d
	c.mu.Unlock()
	return c
}

func (s *Span) data(traceStart time.Time) SpanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		// A span left open at finalize (async work that outlived its holds)
		// is closed at the trace boundary rather than lost.
		s.ended = true
		s.duration = time.Since(s.start)
	}
	var attrs map[string]string
	if len(s.attrs) > 0 {
		attrs = make(map[string]string, len(s.attrs))
		for _, kv := range s.attrs {
			attrs[kv.k] = kv.v
		}
	}
	parent := ""
	if s.parentID != 0 {
		parent = spanIDString(s.parentID)
	}
	return SpanData{
		SpanID:     spanIDString(s.spanID),
		ParentID:   parent,
		Name:       s.name,
		StartUs:    s.start.Sub(traceStart).Microseconds(),
		DurationMs: float64(s.duration.Nanoseconds()) / 1e6,
		CPUMs:      float64(s.cpu.Nanoseconds()) / 1e6,
		Rows:       s.rows,
		Bytes:      s.bytes,
		Err:        s.err,
		Attrs:      attrs,
	}
}

// TraceBuilder accumulates the spans of one request and finalizes into the
// owning TraceStore when every hold is released. The middleware owns one
// hold for the HTTP request; asynchronous work (the job runner) takes an
// extra hold so the trace stays open until the query actually finishes.
type TraceBuilder struct {
	store *TraceStore
	id    string
	start time.Time

	mu       sync.Mutex
	rng      uint64 // splitmix64 state for span IDs (guarded by mu)
	spans    []*Span
	dropped  int
	holds    int
	forced   bool
	done     bool
	deferred []func() // retained-only instrumentation; see Span.Defer
	// deferredOps are retained-only instrumentation with pooled state; see
	// Span.DeferOn. Materialize runs beside deferred at assembly; Release
	// runs unconditionally at recycle.
	deferredOps []deferredOp
	// assembling re-opens newSpan for the deferred callbacks, which run
	// after done is set but may still add spans to the export tree.
	assembling bool

	// Span storage: the builder allocation itself carries the first few
	// spans (enough for a simple request), and deeper traces take chunked
	// overflow blocks — span tracing is always-on, so span creation must
	// not cost one heap allocation per span.
	inline [4]Span
	used   int    // spans taken from inline
	chunk  []Span // current overflow block

	// tc is the root context carrier handed out by StartTrace, inlined here
	// so opening a trace doesn't heap-allocate it. Like the pooled spans,
	// it is valid only until FinishTrace's last release.
	tc traceCtx
}

// spanChunkSize is the overflow block size once a trace outgrows the
// builder's inline span storage.
const spanChunkSize = 8

// deferredOp pairs a Deferred with the span it materializes under.
type deferredOp struct {
	sp *Span
	d  Deferred
}

// builderPool recycles TraceBuilders (and, through them, their inline span
// storage, overflow chunk remainders and attribute arrays). A builder is
// returned to the pool by recycle() once finalization has exported
// everything the store needs; the nil-safe API's done/ended guards protect
// well-behaved callers, and all in-tree instrumentation ends before its
// release/FinishTrace.
var builderPool = sync.Pool{New: func() any { return new(TraceBuilder) }}

// newTraceBuilder readies a builder from the pool. Trace IDs and the seed
// of the per-span ID stream come from math/rand/v2's runtime-seeded ChaCha8
// generator: span tracing is always-on, so ID generation must not cost a
// syscall per request, and trace IDs need collision resistance, not
// secrecy.
func newTraceBuilder(store *TraceStore, remote SpanContext, start time.Time) *TraceBuilder {
	tb := builderPool.Get().(*TraceBuilder)
	tb.store, tb.start = store, start
	tb.rng = mrand.Uint64()
	tb.dropped, tb.holds, tb.used = 0, 0, 0
	tb.forced, tb.done, tb.assembling = false, false, false
	if remote.Valid() {
		tb.id = remote.TraceID
	} else {
		var raw [16]byte
		binary.BigEndian.PutUint64(raw[:8], mrand.Uint64())
		binary.BigEndian.PutUint64(raw[8:], mrand.Uint64())
		var dst [32]byte
		hex.Encode(dst[:], raw[:])
		tb.id = string(dst[:])
	}
	return tb
}

// recycle resets the builder and returns it to the pool. Called by the
// store at the end of finish(), when the summary — and, for retained
// traces, the assembled SpanData copies — are the only surviving exports.
// Attribute arrays are kept (cleared) so steady-state spans re-attach
// attributes without allocating; span pointers, deferred closures and
// string references are dropped so recycled builders pin nothing.
func (tb *TraceBuilder) recycle() {
	for _, sp := range tb.spans {
		attrs := sp.attrs[:cap(sp.attrs)]
		clear(attrs)
		*sp = Span{attrs: attrs[:0]}
	}
	clear(tb.spans)
	tb.spans = tb.spans[:0]
	clear(tb.deferred)
	tb.deferred = tb.deferred[:0]
	// Deferred ops get their guaranteed Release here — after assemble ran
	// Materialize on retained traces, and as the only callback on
	// sampled-out ones — so pooled recorders always come home.
	for _, op := range tb.deferredOps {
		op.d.Release()
	}
	clear(tb.deferredOps)
	tb.deferredOps = tb.deferredOps[:0]
	// A stale context holder (forbidden by the contract above, but cheap to
	// soften) degrades to an untraced background context rather than
	// observing the next request's trace.
	tb.tc = traceCtx{Context: context.Background()}
	tb.store, tb.id = nil, ""
	builderPool.Put(tb)
}

// nextID derives the next span ID from the builder's splitmix64 stream;
// span IDs need uniqueness within the trace, not cryptographic strength.
// Caller holds tb.mu.
func (tb *TraceBuilder) nextID() uint64 {
	tb.rng += 0x9e3779b97f4a7c15
	z := tb.rng
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // the all-zero span ID is invalid in W3C trace context
	}
	return z
}

func (tb *TraceBuilder) newSpan(name string, parentID uint64, start time.Time) *Span {
	if tb == nil {
		return nil
	}
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.done && !tb.assembling {
		return nil
	}
	if len(tb.spans) >= maxSpansPerTrace {
		tb.dropped++
		return nil
	}
	var sp *Span
	switch {
	case tb.used < len(tb.inline):
		sp = &tb.inline[tb.used]
		tb.used++
	default:
		if len(tb.chunk) == 0 {
			tb.chunk = make([]Span, spanChunkSize)
		}
		sp = &tb.chunk[0]
		tb.chunk = tb.chunk[1:]
	}
	attrs := sp.attrs // cleared capacity from a previous life, if pooled
	*sp = Span{tb: tb, spanID: tb.nextID(), parentID: parentID, name: name, start: start}
	sp.attrs = attrs
	tb.spans = append(tb.spans, sp)
	return sp
}

func (tb *TraceBuilder) hold() {
	if tb == nil {
		return
	}
	tb.mu.Lock()
	tb.holds++
	tb.mu.Unlock()
}

func (tb *TraceBuilder) release() {
	if tb == nil {
		return
	}
	tb.mu.Lock()
	tb.holds--
	finalize := tb.holds <= 0 && !tb.done
	if finalize {
		tb.done = true
	}
	tb.mu.Unlock()
	if finalize {
		tb.store.finish(tb)
	}
}

// summaryInfo is the cheap census of a finished trace: everything the
// tail-sampling decision and the summary ring need, computed in one scan
// without building the export span tree. On the common path — a fast,
// successful request that sampling keeps only a summary of — this is all
// the work finalization does.
type summaryInfo struct {
	name     string
	user     string
	cache    string
	status   string
	duration time.Duration
	spans    int
	dropped  int
	forced   bool
}

// summarize closes any spans left open (async work that outlived its
// holds) and scans the frozen span slice. Called once, after done is set.
func (tb *TraceBuilder) summarize() summaryInfo {
	tb.mu.Lock()
	spans := tb.spans
	info := summaryInfo{status: "ok", spans: len(spans), dropped: tb.dropped, forced: tb.forced}
	tb.mu.Unlock()

	end := tb.start
	for i, sp := range spans {
		sp.mu.Lock()
		if !sp.ended {
			sp.ended = true
			sp.duration = time.Since(sp.start)
		}
		if i == 0 {
			info.name = sp.name
			info.user = sp.attrLocked("user")
			if c := sp.attrLocked("cache"); c != "" {
				info.cache = c
			}
		}
		if sp.err != "" {
			info.status = "error"
		}
		if sp.attrLocked("cache") == "bypass" {
			info.cache = "bypass"
		}
		if e := sp.start.Add(sp.duration); e.After(end) {
			end = e
		}
		sp.mu.Unlock()
	}
	info.duration = end.Sub(tb.start)
	return info
}

// assemble builds the export Trace from an already-computed summary —
// invoked only for traces the tail sampler decided to retain, so the hex
// IDs, attribute copies, deferred instrumentation and SpanData slice are
// never paid for on the sampled-out fast path.
func (tb *TraceBuilder) assemble(info summaryInfo) *Trace {
	tb.mu.Lock()
	deferred := tb.deferred
	tb.deferred = nil
	ops := tb.deferredOps
	tb.assembling = len(deferred)+len(ops) > 0
	tb.mu.Unlock()
	if len(deferred)+len(ops) > 0 {
		for _, fn := range deferred {
			fn()
		}
		for _, op := range ops {
			op.d.Materialize(op.sp)
		}
		tb.mu.Lock()
		tb.assembling = false
		tb.mu.Unlock()
	}

	tb.mu.Lock()
	spans := append([]*Span(nil), tb.spans...)
	tb.mu.Unlock()

	t := &Trace{
		ID: tb.id, Name: info.name, User: info.user, Start: tb.start,
		DurationMs: float64(info.duration.Nanoseconds()) / 1e6,
		Status:     info.status, Cache: info.cache, DroppedSpans: info.dropped,
		Spans: make([]SpanData, 0, len(spans)),
	}
	for _, sp := range spans {
		t.Spans = append(t.Spans, sp.data(tb.start))
	}
	return t
}

// ---------------------------------------------------------------- context

type ctxKey int

const (
	builderKey ctxKey = iota
	spanKey
)

// traceCtx carries both the builder and the current span in one context
// wrapper — every traced request derives at least one context, so halving
// the wrapper allocations matters on the always-on path.
type traceCtx struct {
	context.Context
	tb *TraceBuilder
	sp *Span
}

func (tc *traceCtx) Value(key any) any {
	switch key {
	case builderKey:
		return tc.tb
	case spanKey:
		return tc.sp
	}
	return tc.Context.Value(key)
}

// StartSpan opens a child span of the current span in ctx (or a root-level
// span if none) and returns the derived context carrying it. With no active
// trace in ctx it returns (ctx, nil): every method on a nil span is a
// no-op, so instrumentation sites need no conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	sp := ChildSpan(ctx, name)
	if sp == nil {
		return ctx, nil
	}
	return &traceCtx{Context: ctx, tb: sp.tb, sp: sp}, sp
}

// ChildSpan opens a child of the current span in ctx without deriving a new
// context — for straight-line phases recorded as siblings (parse, plan,
// cache probe, ...), where StartSpan's per-call context allocation buys
// nothing. Nil-safe like StartSpan.
func ChildSpan(ctx context.Context, name string) *Span {
	tb, _ := ctx.Value(builderKey).(*TraceBuilder)
	if tb == nil {
		return nil
	}
	var parentID uint64
	if parent, _ := ctx.Value(spanKey).(*Span); parent != nil {
		parentID = parent.spanID
	}
	return tb.newSpan(name, parentID, time.Now())
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// TraceIDFromContext returns the active trace ID, or "".
func TraceIDFromContext(ctx context.Context) string {
	if tb, _ := ctx.Value(builderKey).(*TraceBuilder); tb != nil {
		return tb.id
	}
	return ""
}

// RetainTrace takes an extra hold on the active trace so it stays open
// across asynchronous work; the returned function releases it (call exactly
// once, from any goroutine). With no active trace it returns a no-op.
func RetainTrace(ctx context.Context) func() {
	tb, _ := ctx.Value(builderKey).(*TraceBuilder)
	if tb == nil {
		return func() {}
	}
	tb.hold()
	var once sync.Once
	return func() { once.Do(tb.release) }
}

// ForceRetain marks the active trace for full retention regardless of the
// tail-sampling thresholds (used by the shutdown span, and by anything an
// operator explicitly wants kept). No-op without an active trace.
func ForceRetain(ctx context.Context) {
	if tb, _ := ctx.Value(builderKey).(*TraceBuilder); tb != nil {
		tb.mu.Lock()
		tb.forced = true
		tb.mu.Unlock()
	}
}

// FinishTrace releases the initial hold taken by TraceStore.StartTrace;
// when it is the last hold, the trace finalizes into the store. No-op
// without an active trace.
func FinishTrace(ctx context.Context) {
	if tb, _ := ctx.Value(builderKey).(*TraceBuilder); tb != nil {
		tb.release()
	}
}
