package obs

// Per-user and per-plan-template resource accounting. The paper's central
// observation — many users, short heterogeneous queries — means aggregate
// histograms hide who is actually consuming the platform; fair scheduling
// and admission control (ROADMAP item 4) need a metered account per
// principal. The UsageMeter folds every finished query's resource deltas
// (estimated CPU seconds, result rows, result bytes) into per-user and
// per-plan-digest accumulators, surfaced three ways: the
// GET /api/insights/usage JSON, the Prometheus series
// sqlshare_user_{cpu_seconds,rows,bytes}_total{user=...}, and offline via
// workload-report, which folds a replayed history log through this same
// type so live and post-hoc accounting can never diverge.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// UsageStats is one principal's cumulative consumption.
type UsageStats struct {
	Queries    int64   `json:"queries"`
	Failed     int64   `json:"failed"`
	CacheHits  int64   `json:"cacheHits"`
	CPUSeconds float64 `json:"cpuSeconds"`
	Rows       int64   `json:"rows"`
	Bytes      int64   `json:"bytes"`
}

// UserUsage is UsageStats keyed by user.
type UserUsage struct {
	User string `json:"user"`
	UsageStats
}

// DigestUsage is UsageStats keyed by plan-template digest.
type DigestUsage struct {
	Digest string `json:"digest"`
	UsageStats
}

// UsageSnapshot is the point-in-time census served by /api/insights/usage.
type UsageSnapshot struct {
	Users []UserUsage `json:"users"`
	// Templates is capped to the top consumers by CPU (the digest space is
	// unbounded; the user space is not, which is why only user series are
	// exported as Prometheus labels).
	Templates []DigestUsage `json:"templates"`
	Since     time.Time     `json:"since"`
}

// UsageMeter accumulates per-user and per-digest resource usage. All
// methods are safe for concurrent use; a nil meter is inert.
type UsageMeter struct {
	mu      sync.Mutex
	users   map[string]*UsageStats
	digests map[string]*UsageStats
	since   time.Time
}

// maxTemplateRows bounds the per-digest table in snapshots.
const maxTemplateRows = 100

// NewUsageMeter creates a meter and registers its user-labeled series on r.
// Like every registry constructor it is idempotent: a second call on the
// same registry returns the meter already bound to it.
func NewUsageMeter(r *Registry) *UsageMeter {
	u := &UsageMeter{
		users:   map[string]*UsageStats{},
		digests: map[string]*UsageStats{},
		since:   time.Now(),
	}
	first := &usageCollector{
		name:  "sqlshare_user_cpu_seconds_total",
		help:  "Estimated CPU seconds consumed per user (compile + execute wall time).",
		meter: u,
		value: func(s *UsageStats) string { return formatFloat(s.CPUSeconds) },
		num:   func(s *UsageStats) float64 { return s.CPUSeconds },
	}
	if got := r.register(first).(*usageCollector); got != first {
		return got.meter // registry already carries a meter; rebind to it
	}
	r.register(&usageCollector{
		name:  "sqlshare_user_rows_total",
		help:  "Result rows returned per user.",
		meter: u,
		value: func(s *UsageStats) string { return fmt.Sprintf("%d", s.Rows) },
		num:   func(s *UsageStats) float64 { return float64(s.Rows) },
	})
	r.register(&usageCollector{
		name:  "sqlshare_user_bytes_total",
		help:  "Estimated result bytes returned per user.",
		meter: u,
		value: func(s *UsageStats) string { return fmt.Sprintf("%d", s.Bytes) },
		num:   func(s *UsageStats) float64 { return float64(s.Bytes) },
	})
	return u
}

// Record folds one finished query into the meter. cpuSeconds is the
// caller's CPU estimate (the catalog uses compile+execute wall time);
// digest may be empty (accounted under "none").
func (u *UsageMeter) Record(user, digest string, cpuSeconds float64, rows, bytes int64, failed, cacheHit bool) {
	if u == nil || user == "" {
		return
	}
	if cpuSeconds < 0 || math.IsNaN(cpuSeconds) {
		cpuSeconds = 0
	}
	if digest == "" {
		digest = "none"
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, acc := range []*UsageStats{u.acc(u.users, user), u.acc(u.digests, digest)} {
		acc.Queries++
		acc.CPUSeconds += cpuSeconds
		acc.Rows += rows
		acc.Bytes += bytes
		if failed {
			acc.Failed++
		}
		if cacheHit {
			acc.CacheHits++
		}
	}
}

func (u *UsageMeter) acc(m map[string]*UsageStats, key string) *UsageStats {
	s := m[key]
	if s == nil {
		s = &UsageStats{}
		m[key] = s
	}
	return s
}

// User returns one user's stats (zero value if never seen).
func (u *UsageMeter) User(name string) UsageStats {
	if u == nil {
		return UsageStats{}
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if s := u.users[name]; s != nil {
		return *s
	}
	return UsageStats{}
}

// Snapshot returns the full census: every user (sorted by CPU descending,
// then name) and the top templates by CPU.
func (u *UsageMeter) Snapshot() UsageSnapshot {
	if u == nil {
		return UsageSnapshot{}
	}
	u.mu.Lock()
	snap := UsageSnapshot{Since: u.since}
	for name, s := range u.users {
		snap.Users = append(snap.Users, UserUsage{User: name, UsageStats: *s})
	}
	for d, s := range u.digests {
		snap.Templates = append(snap.Templates, DigestUsage{Digest: d, UsageStats: *s})
	}
	u.mu.Unlock()
	sort.Slice(snap.Users, func(i, j int) bool {
		if snap.Users[i].CPUSeconds != snap.Users[j].CPUSeconds {
			return snap.Users[i].CPUSeconds > snap.Users[j].CPUSeconds
		}
		return snap.Users[i].User < snap.Users[j].User
	})
	sort.Slice(snap.Templates, func(i, j int) bool {
		if snap.Templates[i].CPUSeconds != snap.Templates[j].CPUSeconds {
			return snap.Templates[i].CPUSeconds > snap.Templates[j].CPUSeconds
		}
		return snap.Templates[i].Digest < snap.Templates[j].Digest
	})
	if len(snap.Templates) > maxTemplateRows {
		snap.Templates = snap.Templates[:maxTemplateRows]
	}
	return snap
}

// sortedUsers returns user names in lexical order (stable scrape output).
func (u *UsageMeter) sortedUsers() []string {
	names := make([]string, 0, len(u.users))
	for n := range u.users {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// usageCollector adapts one dimension of the meter into a registry metric:
// samples are rendered from the live accumulator table at scrape time, so
// there is no double bookkeeping between the JSON and Prometheus views.
type usageCollector struct {
	name, help string
	meter      *UsageMeter
	value      func(*UsageStats) string
	num        func(*UsageStats) float64
}

func (c *usageCollector) metricName() string { return c.name }
func (c *usageCollector) metricHelp() string { return c.help }
func (c *usageCollector) metricType() string { return "counter" }

func (c *usageCollector) writeSamples(b *strings.Builder) {
	c.meter.mu.Lock()
	defer c.meter.mu.Unlock()
	for _, name := range c.meter.sortedUsers() {
		fmt.Fprintf(b, "%s{user=%q} %s\n", c.name, name, c.value(c.meter.users[name]))
	}
}

func (c *usageCollector) expvarValue() any {
	c.meter.mu.Lock()
	defer c.meter.mu.Unlock()
	out := map[string]float64{}
	for _, name := range c.meter.sortedUsers() {
		out[name] = c.num(c.meter.users[name])
	}
	return out
}
