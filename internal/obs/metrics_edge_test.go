package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentVecRegistration races metric *registration* — not just
// updates — from many goroutines: the same vec name registered repeatedly,
// and new label children minted concurrently with scrapes. Run under -race
// (make race-obs) this proves registration is race-clean (ISSUE satellite).
func TestConcurrentVecRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				// Registration is idempotent: every goroutine gets the same
				// underlying vec back.
				v := r.NewCounterVec("jobs_total", "jobs", "status")
				v.With(fmt.Sprintf("status-%d", i%10)).Inc()
				if i%25 == 0 {
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}(g)
	}
	wg.Wait()

	v := r.NewCounterVec("jobs_total", "jobs", "status")
	var total int64
	for i := 0; i < 10; i++ {
		total += v.With(fmt.Sprintf("status-%d", i)).Value()
	}
	if total != 800 {
		t.Fatalf("lost increments across concurrent registration: %d, want 800", total)
	}
}

func TestHistogramQuantileClampsRange(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("clamp", "", []float64{1, 2})
	h.Observe(1.5)
	if got := h.Quantile(-3); got != h.Quantile(0) {
		t.Errorf("q<0 not clamped to 0: %v vs %v", got, h.Quantile(0))
	}
	if got := h.Quantile(7); got != h.Quantile(1) {
		t.Errorf("q>1 not clamped to 1: %v vs %v", got, h.Quantile(1))
	}
	if p := h.Quantile(1); p <= 1 || p > 2 {
		t.Errorf("single observation p100 = %v, want in (1, 2]", p)
	}
}

// TestHistogramUnsortedBounds: constructors must sort and dedup bucket
// bounds so the /metrics le= series is ascending — Prometheus clients
// reject histograms with out-of-order buckets (ISSUE satellite).
func TestHistogramUnsortedBounds(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("unsorted_seconds", "", []float64{10, 0.1, 1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	var les []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `unsorted_seconds_bucket{le="`) {
			les = append(les, line)
		}
	}
	want := []string{
		`unsorted_seconds_bucket{le="0.1"} 1`,
		`unsorted_seconds_bucket{le="1"} 2`,
		`unsorted_seconds_bucket{le="10"} 3`,
		`unsorted_seconds_bucket{le="+Inf"} 4`,
	}
	if len(les) != len(want) {
		t.Fatalf("bucket lines = %v, want %v", les, want)
	}
	for i := range want {
		if les[i] != want[i] {
			t.Errorf("bucket[%d] = %q, want %q (order matters)", i, les[i], want[i])
		}
	}
}
