package obs

// The in-process trace store with tail-based retention. The paper's
// workload is dominated by short exploratory queries; recording a full span
// tree for every one of them buys nothing and costs memory, while the
// interesting requests — the slow tail, the errors, the cache bypasses —
// are exactly the ones an operator needs post-mortem. So the store keeps a
// lightweight head sample (a summary line) for *every* finished trace, and
// retains the full span tree only when the finished trace turns out to be
// interesting: tail-based sampling, decided after the fact, when the
// outcome is known.

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// DefaultTraceSlow is the default duration past which a finished trace is
// retained in full.
const DefaultTraceSlow = 250 * time.Millisecond

// TraceConfig tunes a TraceStore. The zero value is usable: 512 summaries,
// 128 retained trees, retain-everything (Slow == 0), no head sampling.
type TraceConfig struct {
	// Summaries bounds the head-sample ring (default 512). Every finished
	// trace leaves a summary here regardless of retention.
	Summaries int
	// Retain bounds how many full span trees are kept (default 128, FIFO).
	Retain int
	// Slow retains the full tree of any trace at least this long. Zero
	// retains every trace (sampling off — the development default);
	// production servers pass DefaultTraceSlow or their -slow-query value.
	Slow time.Duration
	// HeadEvery additionally retains every Nth trace in full regardless of
	// outcome (0 = off), so there is always a baseline of normal requests
	// to diff a slow one against.
	HeadEvery int
}

// TraceSummary is the head-sample record kept for every finished trace.
type TraceSummary struct {
	ID         string    `json:"traceId"`
	Name       string    `json:"name"`
	User       string    `json:"user,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"durationMs"`
	Status     string    `json:"status"`
	Spans      int       `json:"spans"`
	Retained   bool      `json:"retained"`
	// Reason says why the full tree was kept: "slow", "error", "bypass",
	// "head", "forced" or "all" (sampling off). Empty when not retained.
	Reason string `json:"reason,omitempty"`
}

// Trace is one finished request's full span tree.
type Trace struct {
	ID         string    `json:"traceId"`
	Name       string    `json:"name"`
	User       string    `json:"user,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"durationMs"`
	Status     string    `json:"status"`
	// Cache is the result-cache disposition observed on the trace's spans
	// (hit, miss or bypass), when a query ran inside it.
	Cache        string     `json:"cache,omitempty"`
	DroppedSpans int        `json:"droppedSpans,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// TraceStoreStats is the census served beside the trace list.
type TraceStoreStats struct {
	Finished  int64   `json:"finished"`
	Retained  int64   `json:"retained"`
	Held      int     `json:"held"`
	SlowMs    float64 `json:"slowThresholdMs"`
	HeadEvery int     `json:"headEvery"`
}

// TraceStore collects finished traces with tail-based retention. All
// methods are safe for concurrent use; a nil store is inert (StartTrace
// returns the context unchanged).
type TraceStore struct {
	cfg TraceConfig

	mu        sync.Mutex
	summaries []TraceSummary // ring, by value: no allocation per finished trace
	next      int
	wrapped   bool
	full      map[string]*Trace
	order     []string // retention order, oldest first
	finished  int64
	kept      int64

	total    *Counter    // optional: sqlshare_traces_total
	retained *CounterVec // optional: sqlshare_traces_retained_total{reason}
}

// NewTraceStore builds a store from cfg (zero fields take defaults; see
// TraceConfig).
func NewTraceStore(cfg TraceConfig) *TraceStore {
	if cfg.Summaries <= 0 {
		cfg.Summaries = 512
	}
	if cfg.Retain <= 0 {
		cfg.Retain = 128
	}
	return &TraceStore{
		cfg:       cfg,
		summaries: make([]TraceSummary, cfg.Summaries),
		full:      map[string]*Trace{},
	}
}

// SetMetrics attaches the finished/retained counters (both optional).
func (st *TraceStore) SetMetrics(total *Counter, retained *CounterVec) {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.total, st.retained = total, retained
	st.mu.Unlock()
}

// Config returns the store's effective configuration.
func (st *TraceStore) Config() TraceConfig { return st.cfg }

// StartTrace opens a new trace rooted at a span named name and returns the
// derived context carrying it plus the root span. remote, when valid, links
// the new root under the caller's span (W3C traceparent propagation): the
// trace keeps the caller's trace ID so cross-process span trees join up.
// Nil-safe: a nil store returns (ctx, nil).
func (st *TraceStore) StartTrace(ctx context.Context, name string, remote SpanContext) (context.Context, *Span) {
	if st == nil {
		return ctx, nil
	}
	tb := newTraceBuilder(st, remote, time.Now())
	var parentID uint64
	if remote.Valid() {
		parentID = parseSpanID(remote.SpanID)
	}
	tb.hold()
	root := tb.newSpan(name, parentID, tb.start)
	tb.tc = traceCtx{Context: ctx, tb: tb, sp: root}
	return &tb.tc, root
}

// finish files one finished trace: always a summary line, and — only when
// the tail-sampling rules say the trace turned out interesting — the full
// export span tree. Assembling the tree (hex IDs, attribute copies, the
// SpanData slice) is the expensive part of finalization, so the sampled-out
// fast path never pays for it.
func (st *TraceStore) finish(tb *TraceBuilder) {
	info := tb.summarize()
	reason := ""
	switch {
	case info.forced:
		reason = "forced"
	case info.status == "error":
		reason = "error"
	case st.cfg.Slow <= 0:
		reason = "all"
	case info.duration >= st.cfg.Slow:
		reason = "slow"
	case info.cache == "bypass":
		reason = "bypass"
	}

	st.mu.Lock()
	st.finished++
	if reason == "" && st.cfg.HeadEvery > 0 && st.finished%int64(st.cfg.HeadEvery) == 0 {
		reason = "head"
	}
	if reason != "" {
		st.kept++
		// Assembling runs the builder's deferred instrumentation, which may
		// add spans — the summary below reports the final count.
		t := tb.assemble(info)
		info.spans = len(t.Spans)
		// Duplicate IDs (a retried traceparent) overwrite rather than
		// double-retain; the order slice may then briefly hold a dead ID,
		// which eviction skips naturally.
		if _, exists := st.full[t.ID]; !exists {
			st.order = append(st.order, t.ID)
		}
		st.full[t.ID] = t
		for len(st.full) > st.cfg.Retain && len(st.order) > 0 {
			evict := st.order[0]
			st.order = st.order[1:]
			delete(st.full, evict)
		}
	}
	st.summaries[st.next] = TraceSummary{
		ID: tb.id, Name: info.name, User: info.user, Start: tb.start,
		DurationMs: float64(info.duration.Nanoseconds()) / 1e6,
		Status:     info.status, Spans: info.spans,
		Retained: reason != "", Reason: reason,
	}
	st.next++
	if st.next == len(st.summaries) {
		st.next = 0
		st.wrapped = true
	}
	total, retained := st.total, st.retained
	st.mu.Unlock()

	if total != nil {
		total.Inc()
	}
	if retained != nil && reason != "" {
		retained.With(reason).Inc()
	}
	tb.recycle()
}

// Summaries returns up to n head-sample records, newest first (n <= 0
// returns everything in the ring).
func (st *TraceStore) Summaries(n int) []*TraceSummary {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	total := st.next
	if st.wrapped {
		total = len(st.summaries)
	}
	if n <= 0 || n > total {
		n = total
	}
	out := make([]*TraceSummary, 0, n)
	for i := 1; i <= n; i++ {
		idx := st.next - i
		if idx < 0 {
			idx += len(st.summaries)
		}
		s := st.summaries[idx]
		out = append(out, &s)
	}
	return out
}

// Get returns the retained full trace for id. seen reports whether the
// store ever finished a trace with this ID (still in the summary ring) —
// the difference between "sampled out" and "never existed".
func (st *TraceStore) Get(id string) (t *Trace, seen bool) {
	if st == nil {
		return nil, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if t, ok := st.full[id]; ok {
		return t, true
	}
	for i := range st.summaries {
		if st.summaries[i].ID == id {
			return nil, true
		}
	}
	return nil, false
}

// Stats reports the store census.
func (st *TraceStore) Stats() TraceStoreStats {
	if st == nil {
		return TraceStoreStats{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return TraceStoreStats{
		Finished:  st.finished,
		Retained:  st.kept,
		Held:      len(st.full),
		SlowMs:    float64(st.cfg.Slow.Nanoseconds()) / 1e6,
		HeadEvery: st.cfg.HeadEvery,
	}
}

// Dump writes every currently retained trace to w as JSONL, oldest first —
// the graceful-drain flush that lets post-mortem traces survive a restart.
// It returns how many traces were written.
func (st *TraceStore) Dump(w io.Writer) (int, error) {
	if st == nil {
		return 0, nil
	}
	st.mu.Lock()
	traces := make([]*Trace, 0, len(st.full))
	for _, id := range st.order {
		if t, ok := st.full[id]; ok {
			traces = append(traces, t)
		}
	}
	st.mu.Unlock()
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Start.Before(traces[j].Start) })
	enc := json.NewEncoder(w)
	for i, t := range traces {
		if err := enc.Encode(t); err != nil {
			return i, err
		}
	}
	return len(traces), nil
}
