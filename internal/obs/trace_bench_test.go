package obs

import (
	"context"
	"testing"
)

// BenchmarkTraceLifecycle prices one full span-trace lifecycle — start,
// five phase spans, finish — under tail sampling that discards the trace
// (the common case). This is the fixed cost the always-on span layer adds
// to every traced request; allocs/op is the number to watch, since on a
// small-heap single-CPU deployment GC pacing amplifies every allocation.
func BenchmarkTraceLifecycle(b *testing.B) {
	st := NewTraceStore(TraceConfig{Slow: DefaultTraceSlow})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx, root := st.StartTrace(context.Background(), "bench", SpanContext{})
		for _, n := range []string{"sql.parse", "authorize", "cache.probe", "plan.compile", "execute"} {
			_, sp := StartSpan(ctx, n)
			sp.End()
		}
		root.End()
		FinishTrace(ctx)
	}
}

// BenchmarkTraceLifecycleRetained is the same lifecycle when every trace is
// retained (Slow == 0): the assembly cost tail sampling exists to avoid.
func BenchmarkTraceLifecycleRetained(b *testing.B) {
	st := NewTraceStore(TraceConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx, root := st.StartTrace(context.Background(), "bench", SpanContext{})
		_, sp := StartSpan(ctx, "execute")
		sp.End()
		root.End()
		FinishTrace(ctx)
	}
}
