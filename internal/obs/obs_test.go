package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only grow
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.NewGauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	// Re-registration under the same name returns the same metric.
	if r.NewCounter("c_total", "again") != c {
		t.Fatal("re-registering a counter should return the original")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("sum = %v, want 56.05", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", []float64{1})
	h.Observe(1) // le="1" is inclusive, Prometheus-style
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `h_bucket{le="1"} 1`) {
		t.Fatalf("observation on the boundary should land in the bucket:\n%s", b.String())
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("http_total", "requests", "route", "status")
	v.With("/api/queries", "200").Add(2)
	v.With("/api/queries", "500").Inc()
	if got := v.With("/api/queries", "200").Value(); got != 2 {
		t.Fatalf("vec child = %d, want 2", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `http_total{route="/api/queries",status="200"} 2`) {
		t.Errorf("missing labeled sample:\n%s", out)
	}
	if !strings.Contains(out, `http_total{route="/api/queries",status="500"} 1`) {
		t.Errorf("missing labeled sample:\n%s", out)
	}
}

// TestConcurrentUse exercises every metric kind from many goroutines; run
// under -race this verifies the registry is race-clean (ISSUE satellite).
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", nil)
	v := r.NewCounterVec("v", "", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j) / 1000)
				v.With([]string{"a", "b"}[i%2]).Inc()
				if j%100 == 0 {
					var b strings.Builder
					r.WritePrometheus(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if v.With("a").Value()+v.With("b").Value() != 8000 {
		t.Fatal("vec total mismatch")
	}
}

func TestExpvarHandlerServesValidJSON(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("my_counter", "").Add(3)
	r.NewHistogram("my_hist", "", nil).Observe(0.2)
	r.NewCounterVec("my_vec", "", "op").With("save").Inc()
	rec := httptest.NewRecorder()
	r.ExpvarHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if doc["my_counter"] != float64(3) {
		t.Fatalf("my_counter = %v, want 3", doc["my_counter"])
	}
	if _, ok := doc["memstats"]; !ok {
		t.Fatal("expvar globals (memstats) missing from /debug/vars")
	}
}

func TestPlatformMetricsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := NewPlatformMetrics(r)
	b := NewPlatformMetrics(r)
	a.QueriesTotal.Inc()
	if b.QueriesTotal.Value() != 1 {
		t.Fatal("two bundles on one registry should share metrics")
	}
}
