package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.5
	g := r.NewGaugeFunc("test_gf", "help", func() float64 { return v })
	if g.Value() != 1.5 {
		t.Fatalf("Value = %v", g.Value())
	}
	v = 3
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, "# TYPE test_gf gauge\n") || !strings.Contains(out, "test_gf 3\n") {
		t.Fatalf("exposition:\n%s", out)
	}
	// Idempotent re-registration returns the first callback.
	g2 := r.NewGaugeFunc("test_gf", "help", func() float64 { return -1 })
	if g2.Value() != 3 {
		t.Fatalf("re-registration replaced the callback: %v", g2.Value())
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewGaugeVec("test_gv", "help", "a", "b")
	v.With("x", "y").Set(7)
	v.With("x", "y").Add(1)
	v.With("m", "n").Set(2)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `test_gv{a="m",b="n"} 2`) || !strings.Contains(out, `test_gv{a="x",b="y"} 8`) {
		t.Fatalf("exposition:\n%s", out)
	}
	// Sorted: m before x.
	if strings.Index(out, `a="m"`) > strings.Index(out, `a="x"`) {
		t.Fatalf("children not sorted:\n%s", out)
	}
}

func TestBuildInfoAndStartTime(t *testing.T) {
	r := NewRegistry()
	NewPlatformMetrics(r)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `sqlshare_build_info{version="`+Version+`",go="`+runtime.Version()+`"} 1`) {
		t.Fatalf("build info missing:\n%s", out)
	}
	if !strings.Contains(out, "sqlshare_process_start_time_seconds ") {
		t.Fatalf("process start time missing:\n%s", out)
	}
	if ProcessStart().IsZero() {
		t.Fatal("ProcessStart zero")
	}
}
