package obs

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestUsageMeterAccumulatesPerUser(t *testing.T) {
	u := NewUsageMeter(NewRegistry())
	u.Record("alice", "d1", 0.5, 100, 4096, false, false)
	u.Record("alice", "d1", 0.25, 50, 2048, false, true)
	u.Record("alice", "d2", 0, 0, 0, true, false)
	u.Record("bob", "d1", 1.5, 7, 512, false, false)

	a := u.User("alice")
	if a.Queries != 3 || a.Failed != 1 || a.CacheHits != 1 {
		t.Fatalf("alice counters: %+v", a)
	}
	if a.Rows != 150 || a.Bytes != 6144 || math.Abs(a.CPUSeconds-0.75) > 1e-9 {
		t.Fatalf("alice totals: %+v", a)
	}
	if b := u.User("bob"); b.Queries != 1 || b.Rows != 7 {
		t.Fatalf("bob totals: %+v", b)
	}
	if ghost := u.User("nobody"); ghost != (UsageStats{}) {
		t.Fatalf("unknown user returned %+v", ghost)
	}
}

func TestUsageMeterIgnoresInvalidRecords(t *testing.T) {
	u := NewUsageMeter(NewRegistry())
	u.Record("", "d1", 1, 1, 1, false, false) // anonymous: dropped
	u.Record("alice", "", math.NaN(), 1, 1, false, false)
	u.Record("alice", "", -5, 1, 1, false, false)
	if len(u.Snapshot().Users) != 1 {
		t.Fatalf("snapshot users: %+v", u.Snapshot().Users)
	}
	if a := u.User("alice"); a.CPUSeconds != 0 || a.Queries != 2 {
		t.Fatalf("NaN/negative CPU must clamp to zero: %+v", a)
	}
}

func TestUsageSnapshotAggregatesTemplates(t *testing.T) {
	u := NewUsageMeter(NewRegistry())
	u.Record("alice", "shared-digest", 0.1, 10, 100, false, false)
	u.Record("bob", "shared-digest", 0.2, 20, 200, false, false)
	snap := u.Snapshot()
	if len(snap.Users) != 2 {
		t.Fatalf("users: %+v", snap.Users)
	}
	var tmpl *DigestUsage
	for i := range snap.Templates {
		if snap.Templates[i].Digest == "shared-digest" {
			tmpl = &snap.Templates[i]
		}
	}
	if tmpl == nil {
		t.Fatalf("shared digest missing from templates: %+v", snap.Templates)
	}
	// Template rows aggregate across users — the cross-user query-template
	// sharing the paper measures.
	if tmpl.Queries != 2 || tmpl.Rows != 30 {
		t.Fatalf("template totals: %+v", tmpl)
	}
	if snap.Since.IsZero() {
		t.Fatal("snapshot missing since timestamp")
	}
}

func TestUsageMeterExportsMetrics(t *testing.T) {
	r := NewRegistry()
	u := NewUsageMeter(r)
	u.Record("alice", "d1", 1.25, 10, 100, true, false)
	rw := httptest.NewRecorder()
	r.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/metrics", nil))
	body := rw.Body.String()
	for _, want := range []string{
		`sqlshare_user_cpu_seconds_total{user="alice"} 1.25`,
		`sqlshare_user_rows_total{user="alice"} 10`,
		`sqlshare_user_bytes_total{user="alice"} 100`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestUsageMeterConcurrentRecord(t *testing.T) {
	u := NewUsageMeter(NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user := fmt.Sprintf("user-%d", g%4)
			for i := 0; i < 200; i++ {
				u.Record(user, "digest", 0.001, 1, 8, i%10 == 0, i%5 == 0)
				_ = u.User(user)
				if i%50 == 0 {
					_ = u.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	var queries, rows int64
	for _, usr := range u.Snapshot().Users {
		queries += usr.Queries
		rows += usr.Rows
	}
	if queries != 1600 || rows != 1600 {
		t.Fatalf("lost updates under concurrency: queries=%d rows=%d", queries, rows)
	}
}

func TestNilUsageMeterIsInert(t *testing.T) {
	var u *UsageMeter
	u.Record("alice", "d", 1, 1, 1, false, false)
	if u.User("alice") != (UsageStats{}) {
		t.Fatal("nil meter returned stats")
	}
	if snap := u.Snapshot(); len(snap.Users) != 0 {
		t.Fatal("nil meter returned users")
	}
}
