package obs

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	h := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc := ParseTraceparent(h)
	if !sc.Valid() {
		t.Fatalf("valid header rejected: %q", h)
	}
	if sc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || sc.SpanID != "00f067aa0ba902b7" {
		t.Fatalf("parsed %+v", sc)
	}
	if got := FormatTraceparent(sc); ParseTraceparent(got) != sc {
		t.Fatalf("format/parse not a round trip: %q", got)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",     // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-011", // too long
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // unknown version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",  // uppercase hex
		"00-4bf92f3577b34da6a3ce929d0e0e473z-00f067aa0ba902b7-01",  // non-hex
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",  // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",  // zero span id
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  // bad separator
	}
	for _, h := range bad {
		if ParseTraceparent(h).Valid() {
			t.Errorf("accepted malformed traceparent %q", h)
		}
	}
}

func TestSpanTraceparentMatchesContext(t *testing.T) {
	st := NewTraceStore(TraceConfig{})
	ctx, root := st.StartTrace(context.Background(), "t", SpanContext{})
	defer FinishTrace(ctx)
	defer root.End()
	want := FormatTraceparent(root.Context())
	if got := root.Traceparent(); got != want {
		t.Fatalf("Traceparent() = %q, want %q", got, want)
	}
	if !ParseTraceparent(root.Traceparent()).Valid() {
		t.Fatalf("self-issued traceparent does not parse: %q", root.Traceparent())
	}
	if root.TraceID() != root.Context().TraceID {
		t.Fatalf("TraceID() = %q, Context().TraceID = %q", root.TraceID(), root.Context().TraceID)
	}
}

// TestNilSafety exercises the no-conditionals contract: every span and
// store operation must be a no-op on nil receivers.
func TestNilSafety(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.AddRows(1)
	sp.AddBytes(1)
	sp.AddCPU(time.Second)
	sp.Fail(nil)
	sp.End()
	sp.EndErr(nil)
	sp.Defer(func() { t.Fatal("deferred fn ran on nil span") })
	sp.Child("c", time.Now(), time.Second)
	if sp.Context().Valid() || sp.Traceparent() != "" || sp.TraceID() != "" {
		t.Fatal("nil span leaked identity")
	}

	var st *TraceStore
	ctx, root := st.StartTrace(context.Background(), "x", SpanContext{})
	if root != nil {
		t.Fatal("nil store returned a span")
	}
	FinishTrace(ctx) // must not panic
	if st.Summaries(10) != nil {
		t.Fatal("nil store returned summaries")
	}
	if tr, seen := st.Get("zzz"); tr != nil || seen {
		t.Fatal("nil store returned a trace")
	}
}

func TestRemoteTraceparentJoinsTrace(t *testing.T) {
	st := NewTraceStore(TraceConfig{})
	remote := SpanContext{TraceID: strings.Repeat("ab", 16), SpanID: "00f067aa0ba902b7"}
	ctx, root := st.StartTrace(context.Background(), "joined", remote)
	if root.TraceID() != remote.TraceID {
		t.Fatalf("trace did not adopt remote trace ID: %s", root.TraceID())
	}
	root.End()
	FinishTrace(ctx)
	tr, _ := st.Get(remote.TraceID)
	if tr == nil {
		t.Fatal("joined trace not retained")
	}
	if tr.Spans[0].ParentID != remote.SpanID {
		t.Fatalf("root parent = %q, want caller span %q", tr.Spans[0].ParentID, remote.SpanID)
	}
}

func TestChildSpanParentage(t *testing.T) {
	st := NewTraceStore(TraceConfig{})
	ctx, root := st.StartTrace(context.Background(), "req", SpanContext{})
	id := root.TraceID()
	jctx, job := StartSpan(ctx, "job")
	phase := ChildSpan(jctx, "phase")
	phase.End()
	job.End()
	root.End()
	FinishTrace(ctx)

	tr, _ := st.Get(id)
	if tr == nil {
		t.Fatal("trace not retained")
	}
	byName := map[string]SpanData{}
	for _, s := range tr.Spans {
		byName[s.Name] = s
	}
	if byName["job"].ParentID != byName["req"].SpanID {
		t.Fatal("job span not parented under root")
	}
	if byName["phase"].ParentID != byName["job"].SpanID {
		t.Fatal("phase span not parented under job")
	}
	if byName["req"].ParentID != "" {
		t.Fatalf("root has parent %q", byName["req"].ParentID)
	}
}

// TestDeferRetainedOnly: deferred instrumentation runs at assembly for
// retained traces and never runs for sampled-out ones.
func TestDeferRetainedOnly(t *testing.T) {
	st := NewTraceStore(TraceConfig{Slow: time.Hour}) // nothing is slow
	var ran bool
	ctx, root := st.StartTrace(context.Background(), "fast", SpanContext{})
	root.Defer(func() { ran = true })
	root.End()
	FinishTrace(ctx)
	if ran {
		t.Fatal("deferred fn ran for a sampled-out trace")
	}

	ctx, root = st.StartTrace(context.Background(), "kept", SpanContext{})
	id := root.TraceID()
	ForceRetain(ctx)
	root.Defer(func() {
		ran = true
		root.Child("late", root.start, time.Millisecond).SetAttr("from", "defer")
	})
	root.End()
	FinishTrace(ctx)
	if !ran {
		t.Fatal("deferred fn did not run for a retained trace")
	}
	tr, _ := st.Get(id)
	if tr == nil || len(tr.Spans) != 2 {
		t.Fatalf("deferred span missing from export: %+v", tr)
	}
	if s := st.Summaries(1); len(s) != 1 || s[0].Spans != 2 {
		t.Fatalf("summary span count should include deferred spans: %+v", s)
	}
}

type fakeDeferred struct {
	materialized int
	released     int
}

func (f *fakeDeferred) Materialize(sp *Span) {
	f.materialized++
	sp.Child("deferred", sp.start, time.Millisecond)
}
func (f *fakeDeferred) Release() { f.released++ }

// TestDeferOnLifecycle: Materialize only on retained traces, Release on
// every path — including nil spans — exactly once, so pooled recorders
// never leak.
func TestDeferOnLifecycle(t *testing.T) {
	var nilCase fakeDeferred
	var nilSpan *Span
	nilSpan.DeferOn(&nilCase)
	if nilCase.released != 1 || nilCase.materialized != 0 {
		t.Fatalf("nil span: %+v", nilCase)
	}

	st := NewTraceStore(TraceConfig{Slow: time.Hour})
	var sampledOut fakeDeferred
	ctx, root := st.StartTrace(context.Background(), "fast", SpanContext{})
	root.DeferOn(&sampledOut)
	root.End()
	FinishTrace(ctx)
	if sampledOut.released != 1 || sampledOut.materialized != 0 {
		t.Fatalf("sampled out: %+v", sampledOut)
	}

	var kept fakeDeferred
	ctx, root = st.StartTrace(context.Background(), "kept", SpanContext{})
	id := root.TraceID()
	ForceRetain(ctx)
	root.DeferOn(&kept)
	root.End()
	FinishTrace(ctx)
	if kept.released != 1 || kept.materialized != 1 {
		t.Fatalf("retained: %+v", kept)
	}
	if tr, _ := st.Get(id); tr == nil || len(tr.Spans) != 2 {
		t.Fatal("materialized span missing from export")
	}
}

// TestBuilderReuseIsolation drives many traces through the pooled builder
// path and checks no state leaks between consecutive trace lives.
func TestBuilderReuseIsolation(t *testing.T) {
	st := NewTraceStore(TraceConfig{})
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		ctx, root := st.StartTrace(context.Background(), "req", SpanContext{})
		id := root.TraceID()
		root.SetAttr("iter", "x")
		sp := ChildSpan(ctx, "child")
		sp.SetAttr("k", "v")
		sp.AddRows(int64(i))
		sp.End()
		root.End()
		FinishTrace(ctx)

		if seen[id] {
			t.Fatalf("trace ID %s reused across builder lives", id)
		}
		seen[id] = true
		tr, _ := st.Get(id)
		if tr == nil {
			t.Fatal("trace not retained")
		}
		if len(tr.Spans) != 2 {
			t.Fatalf("iteration %d: %d spans, want 2 (stale spans leaked)", i, len(tr.Spans))
		}
		for _, s := range tr.Spans {
			if len(s.Attrs) > 2 {
				t.Fatalf("stale attrs leaked into %s: %v", s.Name, s.Attrs)
			}
		}
	}
}

func TestHoldKeepsTraceOpenAcrossAsyncWork(t *testing.T) {
	st := NewTraceStore(TraceConfig{})
	ctx, root := st.StartTrace(context.Background(), "req", SpanContext{})
	id := root.TraceID()
	release := RetainTrace(ctx)
	root.End()
	FinishTrace(ctx) // middleware's release: held, so not finalized yet
	if _, seen := st.Get(id); seen {
		t.Fatal("trace finalized while still held")
	}
	sp := ChildSpan(ctx, "async")
	if sp == nil {
		t.Fatal("held trace refused a span")
	}
	sp.End()
	release()
	release() // idempotent
	tr, _ := st.Get(id)
	if tr == nil || len(tr.Spans) != 2 {
		t.Fatalf("async span lost: %+v", tr)
	}
}
