package server

import (
	"net/http"
	"strings"
	"testing"
)

func TestDOIEndpoints(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("d", "a\n1\n")
	// Private → refused.
	code, _ := c.do("POST", "/api/datasets/alice/d/doi", nil)
	if code == http.StatusCreated {
		t.Fatal("private dataset should not get a DOI")
	}
	if code, _ := c.do("PUT", "/api/datasets/alice/d/permissions", map[string]any{"public": true}); code != http.StatusOK {
		t.Fatal("publish failed")
	}
	code, body := c.do("POST", "/api/datasets/alice/d/doi", nil)
	if code != http.StatusCreated {
		t.Fatalf("mint: %d %v", code, body)
	}
	doi := body["doi"].(string)
	if !strings.HasPrefix(doi, "10.5072/") {
		t.Fatalf("doi = %q", doi)
	}
	// The DOI resolves (path is prefix/suffix).
	code, ds := c.do("GET", "/api/doi/"+doi, nil)
	if code != http.StatusOK || ds["fullName"] != "alice.d" {
		t.Fatalf("resolve: %d %v", code, ds)
	}
}

func TestMacroEndpoints(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("jan", "a,b\n1,2\n3,4\n")
	c.uploadCSV("feb", "a,b\n5,6\n")
	code, body := c.do("POST", "/api/macros", map[string]string{
		"name":     "rowcount",
		"template": "SELECT COUNT(*) AS n FROM $source WHERE a > $min",
	})
	if code != http.StatusCreated {
		t.Fatalf("save macro: %d %v", code, body)
	}
	params := body["params"].([]any)
	if len(params) != 2 {
		t.Fatalf("params = %v", params)
	}
	// Run against both datasets — the paper's copy-paste-the-view use case.
	for _, src := range []string{"jan", "feb"} {
		code, sub := c.do("POST", "/api/macros/rowcount/query", map[string]string{
			"source": src, "min": "0",
		})
		if code != http.StatusAccepted {
			t.Fatalf("macro query: %d %v", code, sub)
		}
		if !strings.Contains(sub["sql"].(string), "["+src+"]") {
			t.Errorf("expanded sql = %v", sub["sql"])
		}
		res := c.poll(sub["id"].(string))
		if res["status"] != "done" {
			t.Fatalf("macro result: %v", res)
		}
	}
	code, list := c.doList("GET", "/api/macros")
	if code != http.StatusOK || len(list) != 1 {
		t.Fatalf("list macros: %d %v", code, list)
	}
	// Injection-shaped argument rejected.
	code, _ = c.do("POST", "/api/macros/rowcount/query", map[string]string{
		"source": "jan", "min": "0 OR 1=1",
	})
	if code != http.StatusBadRequest {
		t.Fatalf("injection arg: %d", code)
	}
}

func TestExpandPatternsEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("m", "gene,var1,var2\nx,1,2\n")
	code, body := c.do("POST", "/api/queries/expand", map[string]string{
		"sql": "SELECT gene, CAST([var*] AS FLOAT) AS [$v] FROM m",
	})
	if code != http.StatusOK {
		t.Fatalf("expand: %d %v", code, body)
	}
	sql := body["sql"].(string)
	if !strings.Contains(sql, "var1") || !strings.Contains(sql, "var2") {
		t.Fatalf("expanded = %s", sql)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	mustCreateUser(t, c, "bob")
	c.uploadCSV("d1", "station,val\na,1\nb,2\n")
	// Seed history on d1.
	for i := 0; i < 3; i++ {
		c.query("SELECT station, AVG(val) AS m FROM d1 GROUP BY station")
	}
	// bob uploads a same-shaped dataset and asks for recommendations.
	bob := c.as("bob")
	bob.uploadCSV("d2", "station,val\nq,9\n")
	code, _ := bob.do("GET", "/api/recommendations?dataset=d2", nil)
	if code != http.StatusOK {
		t.Fatalf("recommend status: %d", code)
	}
	_, recs := bob.doList("GET", "/api/recommendations?dataset=d2")
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	sql := recs[0]["sql"].(string)
	if !strings.Contains(sql, "d2") {
		t.Errorf("not retargeted: %s", sql)
	}
	// The recommendation runs.
	if res := bob.query(sql); res["status"] != "done" {
		t.Fatalf("recommended query failed: %v", res)
	}
}
