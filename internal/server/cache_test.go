package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

const cacheTestCSV = "station,val\ns1,1\ns2,2\ns3,3\n"

func TestServerResultCache(t *testing.T) {
	c, _, srv := newTestServerObs(t)
	srv.ConfigureCache(8<<20, 0)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("water", cacheTestCSV)
	const sql = "SELECT station, val FROM water ORDER BY val"

	cold := c.query(sql)
	if cold["cache"] != "miss" {
		t.Fatalf("cold query cache = %v, want miss", cold["cache"])
	}
	warm := c.query(sql)
	if warm["cache"] != "hit" {
		t.Fatalf("warm query cache = %v, want hit", warm["cache"])
	}
	if len(warm["rows"].([]any)) != len(cold["rows"].([]any)) {
		t.Fatalf("row counts differ: %v vs %v", warm["rows"], cold["rows"])
	}

	// no_cache forces execution.
	code, body := c.do("POST", "/api/queries", map[string]any{"sql": sql, "no_cache": true})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	forced := c.poll(body["id"].(string))
	if forced["cache"] != "bypass" {
		t.Fatalf("no_cache query cache = %v, want bypass", forced["cache"])
	}

	// Admin stats reflect the traffic.
	code, stats := c.do("GET", "/api/admin/cache", nil)
	if code != http.StatusOK {
		t.Fatalf("cache stats: %d %v", code, stats)
	}
	if stats["resultHits"].(float64) < 1 || stats["resultMisses"].(float64) < 1 {
		t.Fatalf("stats = %v", stats)
	}

	// A mutation on the dataset invalidates by fencing: next run misses.
	c.uploadCSV("water2", cacheTestCSV)
	code, body = c.do("POST", "/api/datasets/alice/water/append", map[string]string{"source": "water2"})
	if code != http.StatusOK {
		t.Fatalf("append: %d %v", code, body)
	}
	post := c.query(sql)
	if post["cache"] != "miss" {
		t.Fatalf("post-append query cache = %v, want miss", post["cache"])
	}
	if got := len(post["rows"].([]any)); got != 6 {
		t.Fatalf("post-append rows = %d, want 6", got)
	}

	// Flush empties the cache; the next run misses again.
	if code, _ := c.do("DELETE", "/api/admin/cache", nil); code != http.StatusOK {
		t.Fatalf("flush: %d", code)
	}
	if again := c.query(sql); again["cache"] != "miss" {
		t.Fatalf("post-flush query cache = %v, want miss", again["cache"])
	}
}

func TestServerCacheDisabledAnswers409(t *testing.T) {
	c, _, _ := newTestServerObs(t)
	mustCreateUser(t, c, "alice")
	if code, _ := c.do("GET", "/api/admin/cache", nil); code != http.StatusConflict {
		t.Fatalf("stats without cache: %d, want 409", code)
	}
	if code, _ := c.do("DELETE", "/api/admin/cache", nil); code != http.StatusConflict {
		t.Fatalf("flush without cache: %d, want 409", code)
	}
}

func TestServerCacheHitServesNoTrace(t *testing.T) {
	c, _, srv := newTestServerObs(t)
	srv.ConfigureCache(8<<20, 0)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("water", cacheTestCSV)
	const sql = "SELECT station FROM water"
	c.query(sql)
	code, body := c.do("POST", "/api/queries", map[string]string{"sql": sql})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)
	if got := c.poll(id); got["cache"] != "hit" {
		t.Fatalf("cache = %v, want hit", got["cache"])
	}
	code, trace := c.do("GET", "/api/queries/"+id+"/trace", nil)
	if code != http.StatusNotFound {
		t.Fatalf("trace of cache hit: %d %v, want 404", code, trace)
	}
	if msg, _ := trace["error"].(string); !strings.Contains(msg, "served from cache") {
		t.Fatalf("trace error should explain the cache hit: %q", msg)
	}
	// The plan endpoint still works on hits (plan artifacts ride along on
	// the cached entry).
	if code, _ := c.do("GET", "/api/queries/"+id+"/plan", nil); code != http.StatusOK {
		t.Fatalf("plan of cache hit: %d, want 200", code)
	}
}

func TestCacheMetricsExposed(t *testing.T) {
	c, _, srv := newTestServerObs(t)
	srv.ConfigureCache(8<<20, time.Minute)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("water", cacheTestCSV)
	const sql = "SELECT station FROM water"
	c.query(sql)
	c.query(sql)

	resp, err := http.Get(c.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, metric := range []string{
		"sqlshare_cache_hits_total 1",
		"sqlshare_cache_misses_total 1",
		"sqlshare_cache_evictions_total 0",
		"sqlshare_cache_bytes",
		"sqlshare_cache_hit_seconds",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("/metrics missing %q", metric)
		}
	}
}
