package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sqlshare/internal/obs"
	"sqlshare/internal/wal"
)

// doRaw issues one request and returns the response with headers intact —
// the trace tests need X-SQLShare-Trace, which the JSON helpers drop.
func (c *client) doRaw(method, path string, body string, hdr map[string]string) *http.Response {
	c.t.Helper()
	req, err := http.NewRequest(method, c.srv.URL+path, bytes.NewReader([]byte(body)))
	if err != nil {
		c.t.Fatal(err)
	}
	req.Header.Set(userHeader, c.user)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp
}

// fetchTrace polls GET /api/traces/{id} until the span tree appears: the
// job goroutine releases its trace hold just after the status flips to
// done, so retention can lag the poll by a scheduling beat.
func fetchTrace(t *testing.T, c *client, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := c.do("GET", "/api/traces/"+id, nil)
		if code == http.StatusOK {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never became retrievable: %d %v", id, code, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSlowQuerySpanTreeEndToEnd is the ISSUE acceptance criterion: a query
// crossing the slow threshold produces a retrievable span tree at
// GET /api/traces/{id} covering submit → parse → authorize → cache probe →
// plan → execute, with parentage and durations that are mutually
// consistent.
func TestSlowQuerySpanTreeEndToEnd(t *testing.T) {
	c, srv := seedQueryData(t)
	// Every query is "slow" at a 1ns threshold, so this exercises the real
	// tail-sampling slow path rather than retain-everything.
	srv.ConfigureTraces(obs.TraceConfig{Slow: time.Nanosecond})

	code, sub := c.do("POST", "/api/queries", map[string]string{"sql": "SELECT station FROM readings WHERE depth > 3"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, sub)
	}
	final := c.poll(sub["id"].(string))
	if final["status"] != "done" {
		t.Fatalf("job ended %v", final)
	}
	traceID, _ := final["traceId"].(string)
	if traceID == "" {
		t.Fatalf("job status carries no traceId: %v", final)
	}

	tr := fetchTrace(t, c, traceID)
	if tr["status"] != "ok" {
		t.Fatalf("trace status = %v", tr["status"])
	}
	spans := tr["spans"].([]any)
	byName := map[string]map[string]any{}
	for _, raw := range spans {
		sp := raw.(map[string]any)
		byName[sp["name"].(string)] = sp
	}

	root := byName["POST /api/queries"]
	if root == nil {
		t.Fatalf("no http.request root span; got %v", keysOf(byName))
	}
	if _, hasParent := root["parentId"]; hasParent {
		t.Fatalf("root span has a parent: %v", root)
	}
	job := byName["query.job"]
	if job == nil {
		t.Fatalf("no query.job span; got %v", keysOf(byName))
	}
	if job["parentId"] != root["spanId"] {
		t.Fatal("query.job not parented under the submit request")
	}

	// The deferred phase spans materialize under query.job for retained
	// traces: the full lifecycle in order, each with a positive duration
	// no longer than the job's.
	jobMs := job["durationMs"].(float64)
	prevStart := -1.0
	for _, phase := range []string{"sql.parse", "authorize", "cache.probe", "plan.compile", "execute"} {
		sp := byName[phase]
		if sp == nil {
			t.Fatalf("phase %q missing from span tree; got %v", phase, keysOf(byName))
		}
		if sp["parentId"] != job["spanId"] {
			t.Errorf("phase %q not parented under query.job", phase)
		}
		d := sp["durationMs"].(float64)
		if d < 0 || d > jobMs {
			t.Errorf("phase %q duration %vms inconsistent with job %vms", phase, d, jobMs)
		}
		start := sp["startUs"].(float64)
		if start < prevStart {
			t.Errorf("phase %q starts at %vus, before the previous phase", phase, start)
		}
		prevStart = start
	}

	// The engine's per-operator actuals bridge into op:* children of the
	// execute phase (the PR-1 tracer measured them; spans re-export them).
	// Nested operators parent under their parent operator, so only the root
	// of the waterfall must hang directly off the execute phase.
	sawOp, rootedOp := false, false
	for name, sp := range byName {
		if strings.HasPrefix(name, "op:") {
			sawOp = true
			if sp["parentId"] == byName["execute"]["spanId"] {
				rootedOp = true
			}
		}
	}
	if !sawOp {
		t.Fatalf("no operator span in tree; got %v", keysOf(byName))
	}
	if !rootedOp {
		t.Error("no operator span parented under the execute phase")
	}

	// The summary ring lists the trace as retained for being slow.
	code, list := c.do("GET", "/api/traces?n=50", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /api/traces: %d", code)
	}
	found := false
	for _, raw := range list["traces"].([]any) {
		s := raw.(map[string]any)
		if s["traceId"] == traceID {
			found = true
			if s["retained"] != true || s["reason"] != "slow" {
				t.Fatalf("summary = %v, want retained for slow", s)
			}
		}
	}
	if !found {
		t.Fatal("trace missing from the summary list")
	}
}

func keysOf(m map[string]map[string]any) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// nopJournal satisfies catalog.Journal without a disk: enough to make
// mutations traced as wal.append spans.
type nopJournal struct{}

func (nopJournal) Append(*wal.Record) error { return nil }

func TestMutationTraceCoversWALAppend(t *testing.T) {
	c, cat, _ := newTestServerObs(t)
	cat.SetJournal(nopJournal{})

	resp := c.doRaw("POST", "/api/users", `{"name":"alice","email":"alice@uw.edu"}`, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create user: %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-SQLShare-Trace")
	if traceID == "" {
		t.Fatal("traced response missing X-SQLShare-Trace header")
	}

	tr := fetchTrace(t, c, traceID)
	for _, raw := range tr["spans"].([]any) {
		sp := raw.(map[string]any)
		if sp["name"] == "wal.append" {
			attrs := sp["attrs"].(map[string]any)
			if attrs["op"] != string(wal.OpCreateUser) {
				t.Fatalf("wal.append op attr = %v", attrs["op"])
			}
			return
		}
	}
	t.Fatalf("no wal.append span in mutation trace: %v", tr["spans"])
}

// TestTraceEndpoint404Codes is the ISSUE satellite: the three 404 flavours
// carry distinct machine-readable codes.
func TestTraceEndpoint404Codes(t *testing.T) {
	c, _, srv := newTestServerObs(t)
	mustCreateUser(t, c, "alice")

	errCode := func(path string) (int, string) {
		t.Helper()
		code, body := c.do("GET", path, nil)
		s, _ := body["code"].(string)
		return code, s
	}

	// Unknown ID: tracing is on, but no trace with this ID ever finished.
	if code, ec := errCode("/api/traces/" + strings.Repeat("f", 32)); code != http.StatusNotFound || ec != "trace_unknown" {
		t.Fatalf("unknown trace: %d %q, want 404 trace_unknown", code, ec)
	}

	// Sampled out: the trace finished but tail sampling kept only the
	// summary (nothing is slow at a 1-hour threshold).
	srv.ConfigureTraces(obs.TraceConfig{Slow: time.Hour})
	resp := c.doRaw("GET", "/api/datasets", "", nil)
	resp.Body.Close()
	id := resp.Header.Get("X-SQLShare-Trace")
	if id == "" {
		t.Fatal("traced response missing X-SQLShare-Trace header")
	}
	if code, ec := errCode("/api/traces/" + id); code != http.StatusNotFound || ec != "trace_sampled_out" {
		t.Fatalf("sampled-out trace: %d %q, want 404 trace_sampled_out", code, ec)
	}

	// Tracing disabled: both trace endpoints say so, rather than "unknown".
	srv.SetSpanTracing(false)
	if code, ec := errCode("/api/traces/" + id); code != http.StatusNotFound || ec != "tracing_disabled" {
		t.Fatalf("tracing off: %d %q, want 404 tracing_disabled", code, ec)
	}
	if code, ec := errCode("/api/traces"); code != http.StatusNotFound || ec != "tracing_disabled" {
		t.Fatalf("tracing off (list): %d %q, want 404 tracing_disabled", code, ec)
	}
	// And traced responses no longer advertise a trace ID.
	resp = c.doRaw("GET", "/api/datasets", "", nil)
	resp.Body.Close()
	if got := resp.Header.Get("X-SQLShare-Trace"); got != "" {
		t.Fatalf("untraced response still carries trace header %q", got)
	}
}

// TestTraceparentJoinsRemoteTrace: a caller-supplied W3C traceparent pins
// the trace ID and parents the server's root span under the caller's span.
func TestTraceparentJoinsRemoteTrace(t *testing.T) {
	c, _, _ := newTestServerObs(t)
	mustCreateUser(t, c, "alice")

	remoteTrace := strings.Repeat("ab", 16)
	remoteSpan := "00f067aa0ba902b7"
	resp := c.doRaw("GET", "/api/datasets", "", map[string]string{
		"traceparent": "00-" + remoteTrace + "-" + remoteSpan + "-01",
	})
	resp.Body.Close()
	if got := resp.Header.Get("X-SQLShare-Trace"); got != remoteTrace {
		t.Fatalf("trace header = %q, want the propagated trace ID %q", got, remoteTrace)
	}

	tr := fetchTrace(t, c, remoteTrace)
	root := tr["spans"].([]any)[0].(map[string]any)
	if root["parentId"] != remoteSpan {
		t.Fatalf("root parent = %v, want the caller's span %s", root["parentId"], remoteSpan)
	}
}

// TestLightRouteIngestSampling: high-frequency idempotent routes (status
// polls) start a trace only one request in lightTraceEvery, so poll storms
// can't evict query traces from the bounded summary ring. An explicit
// traceparent always bypasses the head sample.
func TestLightRouteIngestSampling(t *testing.T) {
	c, _, _ := newTestServerObs(t)
	mustCreateUser(t, c, "alice")

	const n = 2 * lightTraceEvery
	traced := 0
	for i := 0; i < n; i++ {
		resp := c.doRaw("GET", "/api/queries/q-missing", "", nil)
		resp.Body.Close()
		if resp.Header.Get("X-SQLShare-Trace") != "" {
			traced++
		}
	}
	if traced != 2 {
		t.Fatalf("traced %d of %d polls, want 2 (1 in %d)", traced, n, lightTraceEvery)
	}

	// A propagated trace is never sampled out at ingest.
	resp := c.doRaw("GET", "/api/queries/q-missing", "", map[string]string{
		"traceparent": "00-" + strings.Repeat("cd", 16) + "-00f067aa0ba902b7-01",
	})
	resp.Body.Close()
	if resp.Header.Get("X-SQLShare-Trace") == "" {
		t.Fatal("poll with explicit traceparent was not traced")
	}

	// Non-light routes trace every request.
	for i := 0; i < 3; i++ {
		resp := c.doRaw("GET", "/api/datasets", "", nil)
		resp.Body.Close()
		if resp.Header.Get("X-SQLShare-Trace") == "" {
			t.Fatal("query route request was not traced")
		}
	}
}

// TestInsightsUsageReconciles is the ISSUE acceptance criterion: the
// /api/insights/usage totals agree with a replay of the queries actually
// run — per-user query/failure/row counts, with cache hits accounted.
func TestInsightsUsageReconciles(t *testing.T) {
	c, srv := seedQueryData(t)
	srv.ConfigureCache(1<<20, time.Minute) // so the repeated query hits

	wantRows := 0
	for _, sql := range []string{
		"SELECT station FROM readings",                 // 3 rows
		"SELECT station FROM readings",                 // cache hit: 3 rows
		"SELECT station FROM readings WHERE depth > 3", // 2 rows
	} {
		res := c.query(sql)
		if res["status"] != "done" {
			t.Fatalf("query %q ended %v", sql, res)
		}
		wantRows += len(res["rows"].([]any))
	}
	// One failing query: parse errors are accounted too.
	code, sub := c.do("POST", "/api/queries", map[string]string{"sql": "SELECT nope FROM missing"})
	if code != http.StatusAccepted {
		t.Fatalf("submit failing query: %d", code)
	}
	if final := c.poll(sub["id"].(string)); final["status"] != "failed" {
		t.Fatalf("expected failure, got %v", final)
	}

	code, body := c.do("GET", "/api/insights/usage", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /api/insights/usage: %d %v", code, body)
	}
	var alice map[string]any
	for _, raw := range body["users"].([]any) {
		u := raw.(map[string]any)
		if u["user"] == "alice" {
			alice = u
		}
	}
	if alice == nil {
		t.Fatalf("alice missing from usage: %v", body)
	}
	if got := alice["queries"].(float64); got != 4 {
		t.Fatalf("queries = %v, want 4", got)
	}
	if got := alice["failed"].(float64); got != 1 {
		t.Fatalf("failed = %v, want 1", got)
	}
	if got := alice["cacheHits"].(float64); got < 1 {
		t.Fatalf("cacheHits = %v, want >= 1", got)
	}
	if got := alice["rows"].(float64); int(got) != wantRows {
		t.Fatalf("rows = %v, want %d (the rows the client actually received)", got, wantRows)
	}
	if len(body["templates"].([]any)) == 0 {
		t.Fatal("usage snapshot has no per-template rows")
	}

	// The same totals back the per-user Prometheus series.
	_, metrics := c.fetchText("/metrics")
	if !strings.Contains(metrics, fmt.Sprintf(`sqlshare_user_rows_total{user="alice"} %d`, wantRows)) {
		t.Errorf("/metrics user rows series disagrees with usage snapshot")
	}
}

// TestDumpTracesFlushesRetainedTrees: the graceful-drain hook writes every
// retained span tree as one JSON object per line.
func TestDumpTracesFlushesRetainedTrees(t *testing.T) {
	c, srv := seedQueryData(t)
	if res := c.query("SELECT station FROM readings"); res["status"] != "done" {
		t.Fatalf("query ended %v", res)
	}

	path := filepath.Join(t.TempDir(), "traces.jsonl")
	n, err := srv.DumpTraces(path)
	if err != nil || n == 0 {
		t.Fatalf("DumpTraces = %d, %v", n, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("%d JSONL lines for %d dumped traces", len(lines), n)
	}
	sawJob := false
	for _, line := range lines {
		var tr struct {
			ID    string `json:"traceId"`
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		}
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if len(tr.ID) != 32 || len(tr.Spans) == 0 {
			t.Fatalf("dumped trace malformed: %s", line)
		}
		for _, sp := range tr.Spans {
			if sp.Name == "query.job" {
				sawJob = true
			}
		}
	}
	if !sawJob {
		t.Fatal("no dumped trace covers a query job")
	}
}
