package server

import (
	"fmt"
	"net/http"
	"strconv"
)

// handleInsights serves the live §5-style workload analytics maintained by
// the history subsystem: the questions the paper answered offline over a
// multi-year log, answered continuously by the running server.
//
//	GET /api/insights/summary    headline aggregates + latency percentiles
//	GET /api/insights/operators  operator-frequency mix (Fig 9, live)
//	GET /api/insights/tables     table/column touch counts (Fig 4, live)
//	GET /api/insights/users      per-user volume, distinct queries, sessions
//	GET /api/insights/slow       retained slow statements (newest first)
//	GET /api/insights/sessions   idle-gap user sessions (§7)
//	GET /api/insights/usage      per-user/per-template CPU, rows, bytes meters
//	GET /api/insights/recent     last N history records (?n=, default 50)
func (s *Server) handleInsights(w http.ResponseWriter, r *http.Request) {
	if _, err := s.user(r); err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	a := s.history.Analyzer()
	switch section := r.PathValue("section"); section {
	case "summary":
		sum := a.Summarize()
		s.writeJSON(w, http.StatusOK, map[string]any{
			"summary":         sum,
			"ring":            s.history.Size(),
			"logPath":         s.history.LogPath(),
			"slowThresholdMs": float64(s.history.SlowThreshold().Milliseconds()),
		})
	case "operators":
		s.writeJSON(w, http.StatusOK, map[string]any{"operators": a.OperatorMix()})
	case "tables":
		s.writeJSON(w, http.StatusOK, map[string]any{"tables": a.TableTouches()})
	case "users":
		s.writeJSON(w, http.StatusOK, map[string]any{"users": a.UserInsights()})
	case "slow":
		s.writeJSON(w, http.StatusOK, map[string]any{
			"thresholdMs": float64(s.history.SlowThreshold().Milliseconds()),
			"slow":        a.SlowStatements(),
		})
	case "sessions":
		s.writeJSON(w, http.StatusOK, map[string]any{"sessions": a.Sessions()})
	case "usage":
		// Per-user/per-template resource accounting (metered by the query
		// path, not derived from the history ring) — the admission-control
		// input of ROADMAP item 4.
		s.writeJSON(w, http.StatusOK, s.metrics.Usage.Snapshot())
	case "recent":
		n := 50
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				s.writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid n %q", q))
				return
			}
			n = v
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"records": s.history.Recent(n)})
	default:
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("unknown insights section %q", section))
	}
}
