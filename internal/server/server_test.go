package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sqlshare/internal/catalog"
)

type client struct {
	t    *testing.T
	srv  *httptest.Server
	user string
}

func newTestServer(t *testing.T) (*client, *catalog.Catalog) {
	c, cat, _ := newTestServerObs(t)
	return c, cat
}

// newTestServerObs also returns the Server so tests can reach the metrics
// registry and observability knobs. Request logs are discarded.
func newTestServerObs(t *testing.T) (*client, *catalog.Catalog, *Server) {
	t.Helper()
	cat := catalog.New()
	srv := New(cat)
	srv.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &client{t: t, srv: ts, user: "alice"}, cat, srv
}

func (c *client) as(user string) *client {
	return &client{t: c.t, srv: c.srv, user: user}
}

func (c *client) do(method, path string, body any) (int, map[string]any) {
	c.t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		data, err := json.Marshal(b)
		if err != nil {
			c.t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.srv.URL+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	if c.user != "" {
		req.Header.Set(userHeader, c.user)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func (c *client) doList(method, path string) (int, []map[string]any) {
	c.t.Helper()
	req, err := http.NewRequest(method, c.srv.URL+path, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	req.Header.Set(userHeader, c.user)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

// uploadCSV stages and ingests a CSV, returning the create response.
func (c *client) uploadCSV(name, csv string) map[string]any {
	c.t.Helper()
	code, staged := c.do("POST", "/api/staging", csv)
	if code != http.StatusCreated {
		c.t.Fatalf("stage: %d %v", code, staged)
	}
	code, created := c.do("POST", "/api/datasets", map[string]any{
		"name": name, "stagedId": staged["stagedId"],
	})
	if code != http.StatusCreated {
		c.t.Fatalf("create: %d %v", code, created)
	}
	return created
}

// poll waits for an async query to finish and returns its final body.
func (c *client) poll(id string) map[string]any {
	c.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		code, body := c.do("GET", "/api/queries/"+id, nil)
		if code != http.StatusOK {
			c.t.Fatalf("poll: %d %v", code, body)
		}
		if body["status"] != "running" {
			return body
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatal("query did not finish")
	return nil
}

func (c *client) query(sql string) map[string]any {
	c.t.Helper()
	code, body := c.do("POST", "/api/queries", map[string]string{"sql": sql})
	if code != http.StatusAccepted {
		c.t.Fatalf("submit: %d %v", code, body)
	}
	return c.poll(body["id"].(string))
}

func mustCreateUser(t *testing.T, c *client, name string) {
	t.Helper()
	code, body := c.do("POST", "/api/users", map[string]string{"name": name, "email": name + "@uw.edu"})
	if code != http.StatusCreated {
		t.Fatalf("create user: %d %v", code, body)
	}
}

func TestUploadQueryRoundTrip(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	created := c.uploadCSV("water", "station,val\ns1,1.5\ns2,2.5\ns3,-999\n")
	ing := created["ingest"].(map[string]any)
	if ing["rows"].(float64) != 3 {
		t.Fatalf("ingest rows = %v", ing["rows"])
	}
	body := c.query("SELECT station FROM water WHERE val > 0")
	if body["status"] != "done" {
		t.Fatalf("query: %v", body)
	}
	rows := body["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestAsyncProtocolReturnsIdentifierImmediately(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("d", "a\n1\n")
	code, body := c.do("POST", "/api/queries", map[string]string{"sql": "SELECT * FROM d"})
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d", code)
	}
	if body["id"] == nil || body["status"] != "running" {
		t.Fatalf("submit body = %v", body)
	}
}

func TestFailedQueryReportsError(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("d", "a\n1\n")
	body := c.query("SELECT nope FROM d")
	if body["status"] != "failed" || body["error"] == nil {
		t.Fatalf("body = %v", body)
	}
}

func TestQueryPlanEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("d", "a,b\n1,2\n3,4\n")
	code, sub := c.do("POST", "/api/queries", map[string]string{"sql": "SELECT a FROM d WHERE b > 1"})
	if code != http.StatusAccepted {
		t.Fatal(code)
	}
	id := sub["id"].(string)
	c.poll(id)
	code, plan := c.do("GET", "/api/queries/"+id+"/plan", nil)
	if code != http.StatusOK {
		t.Fatalf("plan: %d %v", code, plan)
	}
	if plan["plan"] == nil || plan["query"] == nil {
		t.Fatalf("plan body = %v", plan)
	}
}

func TestDatasetMetadataAndPreview(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("water", "station,val\ns1,1\n")
	code, ds := c.do("GET", "/api/datasets/alice/water", nil)
	if code != http.StatusOK {
		t.Fatalf("get: %d %v", code, ds)
	}
	if ds["isWrapper"] != true {
		t.Error("upload should be a wrapper view")
	}
	if prev := ds["preview"].([]any); len(prev) != 1 {
		t.Errorf("preview = %v", prev)
	}
	code, _ = c.do("PUT", "/api/datasets/alice/water/meta",
		map[string]any{"description": "sensor data", "tags": []string{"water"}})
	if code != http.StatusOK {
		t.Fatal("meta update failed")
	}
	_, ds = c.do("GET", "/api/datasets/alice/water", nil)
	if ds["description"] != "sensor data" {
		t.Errorf("description = %v", ds["description"])
	}
}

func TestSaveViewEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("water", "station,val\ns1,1\ns2,2\n")
	code, body := c.do("POST", "/api/datasets", map[string]any{
		"name": "big", "sql": "SELECT * FROM water WHERE val > 1 ORDER BY val",
	})
	if code != http.StatusCreated {
		t.Fatalf("save view: %d %v", code, body)
	}
	ds := body["dataset"].(map[string]any)
	if strings.Contains(ds["sql"].(string), "ORDER BY") {
		t.Error("ORDER BY should be stripped from saved views")
	}
	res := c.query("SELECT * FROM big")
	if len(res["rows"].([]any)) != 1 {
		t.Fatalf("view rows: %v", res["rows"])
	}
}

func TestPermissionsEndpointsAndEnforcement(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	mustCreateUser(t, c, "bob")
	c.uploadCSV("water", "a\n1\n")
	bob := c.as("bob")
	body := bob.query("SELECT * FROM [alice.water]")
	if body["status"] != "failed" {
		t.Fatal("bob should be denied")
	}
	code, _ := c.do("PUT", "/api/datasets/alice/water/permissions", map[string]any{"public": true})
	if code != http.StatusOK {
		t.Fatal("permissions update failed")
	}
	body = bob.query("SELECT * FROM [alice.water]")
	if body["status"] != "done" {
		t.Fatalf("bob should read public data: %v", body)
	}
	// Listing shows public datasets to others.
	code, list := bob.doList("GET", "/api/datasets")
	if code != http.StatusOK || len(list) != 1 {
		t.Fatalf("list: %d %v", code, list)
	}
}

func TestShareWithSpecificUser(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	mustCreateUser(t, c, "bob")
	mustCreateUser(t, c, "carol")
	c.uploadCSV("d", "a\n1\n")
	code, _ := c.do("PUT", "/api/datasets/alice/d/permissions", map[string]any{"shareWith": []string{"bob"}})
	if code != http.StatusOK {
		t.Fatal("share failed")
	}
	if body := c.as("bob").query("SELECT * FROM [alice.d]"); body["status"] != "done" {
		t.Fatalf("bob: %v", body)
	}
	if body := c.as("carol").query("SELECT * FROM [alice.d]"); body["status"] != "failed" {
		t.Fatalf("carol: %v", body)
	}
}

func TestAppendEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("logs", "a,b\n1,2\n")
	c.uploadCSV("logs_feb", "a,b\n3,4\n5,6\n")
	code, body := c.do("POST", "/api/datasets/alice/logs/append", map[string]string{"source": "logs_feb"})
	if code != http.StatusOK {
		t.Fatalf("append: %d %v", code, body)
	}
	res := c.query("SELECT * FROM logs")
	if len(res["rows"].([]any)) != 3 {
		t.Fatalf("rows after append: %v", res["rows"])
	}
}

func TestMaterializeEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("d", "a\n1\n2\n")
	code, body := c.do("POST", "/api/datasets/alice/d/materialize", map[string]string{"as": "snap"})
	if code != http.StatusCreated {
		t.Fatalf("materialize: %d %v", code, body)
	}
	res := c.query("SELECT * FROM snap")
	if len(res["rows"].([]any)) != 2 {
		t.Fatalf("snapshot rows: %v", res["rows"])
	}
}

func TestDeleteEndpoint(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("d", "a\n1\n")
	code, _ := c.do("DELETE", "/api/datasets/alice/d", nil)
	if code != http.StatusOK {
		t.Fatal("delete failed")
	}
	if body := c.query("SELECT * FROM d"); body["status"] != "failed" {
		t.Fatal("deleted dataset should not be queryable")
	}
}

func TestMissingAuthHeader(t *testing.T) {
	c, _ := newTestServer(t)
	noUser := c.as("")
	code, _ := noUser.do("POST", "/api/queries", map[string]string{"sql": "SELECT 1"})
	if code != http.StatusUnauthorized {
		t.Fatalf("code = %d", code)
	}
}

func TestJobIsolationBetweenUsers(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	mustCreateUser(t, c, "bob")
	c.uploadCSV("d", "a\n1\n")
	code, sub := c.do("POST", "/api/queries", map[string]string{"sql": "SELECT * FROM d"})
	if code != http.StatusAccepted {
		t.Fatal(code)
	}
	id := sub["id"].(string)
	c.poll(id)
	code, _ = c.as("bob").do("GET", "/api/queries/"+id, nil)
	if code != http.StatusForbidden {
		t.Fatalf("bob polling alice's query: %d", code)
	}
}

func TestStagedFileRetry(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	_, staged := c.do("POST", "/api/staging", "a,b\n1,2\n")
	id := staged["stagedId"].(string)
	// First attempt with a clashing name fails after we create it...
	c.uploadCSV("dup", "x\n1\n")
	code, _ := c.do("POST", "/api/datasets", map[string]any{"name": "dup", "stagedId": id})
	if code == http.StatusCreated {
		t.Fatal("duplicate name should fail")
	}
	// ...but the staged file survives and the retry under a new name works
	// without re-uploading.
	code, body := c.do("POST", "/api/datasets", map[string]any{"name": "dup2", "stagedId": id})
	if code != http.StatusCreated {
		t.Fatalf("retry: %d %v", code, body)
	}
}

func TestUnknownStagedID(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	code, _ := c.do("POST", "/api/datasets", map[string]any{"name": "x", "stagedId": "stage-999"})
	if code != http.StatusNotFound {
		t.Fatalf("code = %d", code)
	}
}

func TestConcurrentQueries(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("d", "a\n1\n2\n3\n")
	ids := make([]string, 8)
	for i := range ids {
		code, sub := c.do("POST", "/api/queries", map[string]string{
			"sql": fmt.Sprintf("SELECT COUNT(*) FROM d WHERE a >= %d", i%3),
		})
		if code != http.StatusAccepted {
			t.Fatal(code)
		}
		ids[i] = sub["id"].(string)
	}
	for _, id := range ids {
		if body := c.poll(id); body["status"] != "done" {
			t.Fatalf("job %s: %v", id, body)
		}
	}
}

func TestSearchAndUsageEndpoints(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("ocean_data", "a\n1\n")
	c.uploadCSV("forest_data", "a\n1\n")
	code, _ := c.do("PUT", "/api/datasets/alice/ocean_data/meta",
		map[string]any{"description": "marine sensors", "tags": []string{"ocean"}})
	if code != http.StatusOK {
		t.Fatal("meta update failed")
	}
	code, list := c.doList("GET", "/api/datasets?q=ocean")
	if code != http.StatusOK || len(list) != 1 {
		t.Fatalf("search: %d %v", code, list)
	}
	if list[0]["name"] != "ocean_data" {
		t.Fatalf("search hit = %v", list[0]["name"])
	}
	code, usage := c.do("GET", "/api/usage", nil)
	if code != http.StatusOK {
		t.Fatalf("usage: %d %v", code, usage)
	}
	if usage["usedBytes"].(float64) <= 0 {
		t.Fatalf("usage bytes = %v", usage["usedBytes"])
	}
}
