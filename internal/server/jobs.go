package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"sqlshare/internal/engine"
)

// jobState is the lifecycle of an asynchronous query (§3.3).
type jobState string

// Job states.
const (
	jobRunning jobState = "running"
	jobDone    jobState = "done"
	jobFailed  jobState = "failed"
)

// job is one submitted query.
type job struct {
	mu      sync.Mutex
	id      string
	user    string
	sql     string
	state   jobState
	result  *engine.Result
	planID  int // log entry id
	errText string
	done    chan struct{}
}

type jobTable struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*job
}

func newJobTable() *jobTable { return &jobTable{jobs: map[string]*job{}} }

func (jt *jobTable) create(user, sql string) *job {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	jt.seq++
	j := &job{
		id:    fmt.Sprintf("q-%d", jt.seq),
		user:  user,
		sql:   sql,
		state: jobRunning,
		done:  make(chan struct{}),
	}
	jt.jobs[j.id] = j
	return j
}

func (jt *jobTable) get(id string) (*job, bool) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	j, ok := jt.jobs[id]
	return j, ok
}

// handleSubmitQuery implements the asynchronous protocol: the request is
// assigned an identifier, execution proceeds in the background, and the
// identifier is returned immediately for the client to poll.
func (s *Server) handleSubmitQuery(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		writeErr(w, http.StatusUnauthorized, err)
		return
	}
	var req struct {
		SQL string `json:"sql"`
	}
	if err := jsonDecode(r, &req); err != nil || req.SQL == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("sql is required"))
		return
	}
	j := s.jobs.create(user, req.SQL)
	go s.runJob(j)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "status": string(jobRunning)})
}

// runJob executes a submitted query and records its outcome on the job.
func (s *Server) runJob(j *job) {
	res, entry, err := s.cat.Query(j.user, j.sql)
	j.mu.Lock()
	defer j.mu.Unlock()
	if entry != nil {
		j.planID = entry.ID
	}
	if err != nil {
		j.state = jobFailed
		j.errText = err.Error()
	} else {
		j.state = jobDone
		j.result = res
	}
	close(j.done)
}

// handleQueryStatus is the polling endpoint: running jobs report status,
// finished jobs return the full result.
func (s *Server) handleQueryStatus(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		writeErr(w, http.StatusUnauthorized, err)
		return
	}
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("query %q not found", r.PathValue("id")))
		return
	}
	if j.user != user {
		writeErr(w, http.StatusForbidden, fmt.Errorf("query %q belongs to another user", j.id))
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := map[string]any{"id": j.id, "status": string(j.state)}
	switch j.state {
	case jobFailed:
		out["error"] = j.errText
	case jobDone:
		cols := j.result.ColumnNames()
		rows := make([][]string, len(j.result.Rows))
		for i, row := range j.result.Rows {
			cells := make([]string, len(row))
			for k, v := range row {
				cells[k] = v.String()
			}
			rows[i] = cells
		}
		out["columns"] = cols
		out["rows"] = rows
	}
	writeJSON(w, http.StatusOK, out)
}

// handleQueryPlan returns the extracted JSON plan for a submitted query —
// the per-query artifact the workload analysis consumes (§4).
func (s *Server) handleQueryPlan(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		writeErr(w, http.StatusUnauthorized, err)
		return
	}
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("query %q not found", r.PathValue("id")))
		return
	}
	if j.user != user {
		writeErr(w, http.StatusForbidden, fmt.Errorf("query %q belongs to another user", j.id))
		return
	}
	<-j.done
	for _, e := range s.cat.Log() {
		if e.ID == j.planID && e.Plan != nil {
			writeJSON(w, http.StatusOK, e.Plan)
			return
		}
	}
	writeErr(w, http.StatusNotFound, fmt.Errorf("no plan recorded for %q", j.id))
}

func jsonDecode(r *http.Request, v any) error {
	return json.NewDecoder(r.Body).Decode(v)
}
