package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"sqlshare/internal/catalog"
	"sqlshare/internal/engine"
	"sqlshare/internal/obs"
	"sqlshare/internal/ops"
)

// maxStatusWait caps the ?wait= long-poll on the status endpoint, so a
// client cannot pin a handler goroutine indefinitely. A package variable so
// tests can tighten it.
var maxStatusWait = 30 * time.Second

// jobState is the lifecycle of an asynchronous query (§3.3).
type jobState string

// Job states.
const (
	jobRunning jobState = "running"
	jobDone    jobState = "done"
	jobFailed  jobState = "failed"
	// jobKilled marks a job canceled through the live-operations kill
	// switch (DELETE /api/queries/{id}/kill) rather than failing on its
	// own.
	jobKilled jobState = "killed"
)

// job is one submitted query.
type job struct {
	mu      sync.Mutex
	id      string
	user    string
	sql     string
	dop     int  // per-query worker cap (0 = server default)
	noCache bool // bypass the result cache for this query
	state   jobState
	result  *engine.Result
	planID  int    // log entry id
	cache   string // cache disposition: hit/miss/bypass
	errText string
	aborted bool   // failed with a resource limit (row or memory; HTTP 422)
	traceID string // span trace the execution belongs to, if tracing is on
	done    chan struct{}
}

type jobTable struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*job
	// prefix namespaces ids across cluster nodes ("s0-" → "s0-q-17") so
	// the router can route a status poll by id alone; see SetJobPrefix.
	prefix string
}

func newJobTable() *jobTable { return &jobTable{jobs: map[string]*job{}} }

func (jt *jobTable) create(user, sql string) *job {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	jt.seq++
	j := &job{
		id:    fmt.Sprintf("%sq-%d", jt.prefix, jt.seq),
		user:  user,
		sql:   sql,
		state: jobRunning,
		done:  make(chan struct{}),
	}
	jt.jobs[j.id] = j
	return j
}

func (jt *jobTable) get(id string) (*job, bool) {
	jt.mu.Lock()
	defer jt.mu.Unlock()
	j, ok := jt.jobs[id]
	return j, ok
}

// handleSubmitQuery implements the asynchronous protocol: the request is
// assigned an identifier, execution proceeds in the background, and the
// identifier is returned immediately for the client to poll.
func (s *Server) handleSubmitQuery(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	var req struct {
		SQL string `json:"sql"`
		// Parallelism optionally overrides the server's default worker cap
		// for this query: 1 = serial, N>1 = at most N workers. Results are
		// identical at every setting; only latency changes.
		Parallelism int `json:"parallelism"`
		// NoCache forces execution even when the server runs a result
		// cache. Results are identical either way — the flag is for
		// measurement, not correctness.
		NoCache bool `json:"no_cache"`
	}
	if err := jsonDecode(r, &req); err != nil || req.SQL == "" {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("sql is required"))
		return
	}
	if req.Parallelism < 0 {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("parallelism must be >= 0"))
		return
	}
	// The min-LSN read gate: a router fanning this query to a replica pins
	// it at-or-after the submitting client's last write.
	if !s.gateMinLSN(w, r) {
		return
	}
	j := s.jobs.create(user, req.SQL)
	j.dop = req.Parallelism
	j.noCache = req.NoCache
	s.startJob(j, r)
	out := map[string]string{"id": j.id, "status": string(jobRunning)}
	if j.traceID != "" {
		out["traceId"] = j.traceID
	}
	s.writeJSON(w, http.StatusAccepted, out)
}

// startJob launches j in the background. The execution outlives the
// submitting HTTP request, so its context detaches the request's
// cancellation but keeps the request's trace, and the trace is held open
// (RetainTrace) until the query finishes — the submit POST and the
// execution appear as one causally-linked span tree.
func (s *Server) startJob(j *job, r *http.Request) {
	s.metrics.JobQueueDepth.Add(1)
	jctx := context.WithoutCancel(r.Context())
	j.traceID = obs.TraceIDFromContext(jctx)
	release := obs.RetainTrace(jctx)
	go s.runJob(j, jctx, release)
}

// runJob executes a submitted query and records its outcome on the job.
// Jobs run traced by default: the per-operator actuals back the /trace
// endpoint, mirroring the SHOWPLAN telemetry the paper's study ran on.
// With tracing off (SetTracing(false)), /trace answers 404 for the job.
func (s *Server) runJob(j *job, ctx context.Context, release func()) {
	defer release()
	dop := j.dop
	if dop == 0 {
		dop = s.parallelism
	}
	jctx, span := obs.StartSpan(ctx, "query.job")
	span.SetAttr("job", j.id)
	res, entry, err := s.cat.QueryWithOptions(j.user, j.sql, catalog.QueryOptions{
		Trace:       s.tracing,
		MaxRows:     s.maxRows,
		MaxBytes:    s.maxBytes,
		Parallelism: dop,
		NoCache:     j.noCache,
		Context:     jctx,
		// The job id doubles as the live-operations id, so
		// DELETE /api/queries/{id}/kill addresses the same id the submit
		// response handed out.
		OpsID: j.id,
	})
	span.EndErr(err)
	j.mu.Lock()
	defer j.mu.Unlock()
	if entry != nil {
		j.planID = entry.ID
		j.cache = entry.Cache
	}
	if err != nil {
		j.state = jobFailed
		if errors.Is(err, ops.ErrKilled) {
			j.state = jobKilled
		}
		j.errText = err.Error()
		j.aborted = errors.Is(err, engine.ErrRowLimit) || errors.Is(err, engine.ErrMemLimit)
	} else {
		j.state = jobDone
		j.result = res
	}
	s.metrics.JobQueueDepth.Add(-1)
	close(j.done)
}

// handleQueryStatus is the polling endpoint: running jobs report status,
// finished jobs return the full result.
func (s *Server) handleQueryStatus(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("query %q not found", r.PathValue("id")))
		return
	}
	if j.user != user {
		s.writeErr(w, http.StatusForbidden, fmt.Errorf("query %q belongs to another user", j.id))
		return
	}
	// ?wait=<dur> long-polls: block until the job finishes, the bounded
	// wait elapses, or the client goes away — then report whatever state
	// the job is in. One long-poll replaces a polling loop's worth of
	// status requests without changing the response shape.
	if ws := r.URL.Query().Get("wait"); ws != "" {
		d, err := time.ParseDuration(ws)
		if err != nil || d < 0 {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("invalid wait duration %q", ws))
			return
		}
		if d > maxStatusWait {
			d = maxStatusWait
		}
		t := time.NewTimer(d)
		select {
		case <-j.done:
		case <-t.C:
		case <-r.Context().Done():
		}
		t.Stop()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := map[string]any{"id": j.id, "status": string(j.state)}
	if j.cache != "" {
		out["cache"] = j.cache
	}
	if j.traceID != "" {
		out["traceId"] = j.traceID
	}
	switch j.state {
	case jobKilled:
		out["error"] = j.errText
	case jobFailed:
		out["error"] = j.errText
		if j.aborted {
			// Row-limit aborts are a client-addressable condition (tighten
			// the query), not a server failure.
			s.writeJSON(w, http.StatusUnprocessableEntity, out)
			return
		}
	case jobDone:
		cols := j.result.ColumnNames()
		rows := make([][]string, len(j.result.Rows))
		for i, row := range j.result.Rows {
			cells := make([]string, len(row))
			for k, v := range row {
				cells[k] = v.String()
			}
			rows[i] = cells
		}
		out["columns"] = cols
		out["rows"] = rows
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleQueryPlan returns the extracted JSON plan for a submitted query —
// the per-query artifact the workload analysis consumes (§4).
func (s *Server) handleQueryPlan(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("query %q not found", r.PathValue("id")))
		return
	}
	if j.user != user {
		s.writeErr(w, http.StatusForbidden, fmt.Errorf("query %q belongs to another user", j.id))
		return
	}
	<-j.done
	for _, e := range s.cat.Log() {
		if e.ID == j.planID && e.Plan != nil {
			s.writeJSON(w, http.StatusOK, e.Plan)
			return
		}
	}
	s.writeErr(w, http.StatusNotFound, fmt.Errorf("no plan recorded for %q", j.id))
}

// handleQueryTrace returns the per-operator execution trace of a completed
// query: estimated next to actual row counts, executions, wall time and
// output bytes per operator — the RunTimeInformation the paper's §4
// telemetry pipeline consumed from SHOWPLAN XML.
func (s *Server) handleQueryTrace(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeErrCode(w, http.StatusNotFound, "query_unknown",
			fmt.Errorf("query %q not found", r.PathValue("id")))
		return
	}
	if j.user != user {
		s.writeErr(w, http.StatusForbidden, fmt.Errorf("query %q belongs to another user", j.id))
		return
	}
	<-j.done
	for _, e := range s.cat.Log() {
		if e.ID == j.planID && e.Plan != nil && e.Plan.Trace != nil {
			s.writeJSON(w, http.StatusOK, map[string]any{"id": j.id, "trace": e.Plan.Trace, "cache": e.Cache})
			return
		}
	}
	// All three remaining cases are 404, but a client must tell them apart:
	// tracing_disabled means retrying is pointless until the operator flips
	// -no-trace; served_from_cache means re-submit with no_cache to get a
	// trace; trace_missing covers failed compiles and similar.
	if !s.tracing {
		s.writeErrCode(w, http.StatusNotFound, "tracing_disabled",
			fmt.Errorf("no trace recorded for %q: tracing is disabled on this server", j.id))
		return
	}
	if j.cache == catalog.CacheHit {
		s.writeErrCode(w, http.StatusNotFound, "served_from_cache",
			fmt.Errorf("no trace recorded for %q: result served from cache", j.id))
		return
	}
	s.writeErrCode(w, http.StatusNotFound, "trace_missing",
		fmt.Errorf("no trace recorded for %q", j.id))
}

func jsonDecode(r *http.Request, v any) error {
	return json.NewDecoder(r.Body).Decode(v)
}
