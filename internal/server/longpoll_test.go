package server

import (
	"net/http"
	"testing"
	"time"
)

// TestQueryStatusLongPoll: ?wait= blocks until the job finishes and returns
// the terminal state in one round trip.
func TestQueryStatusLongPoll(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("nums", "a,b\n1,2\n3,4\n")

	code, body := c.do("POST", "/api/queries", map[string]string{"sql": "SELECT a FROM [nums]"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)
	code, body = c.do("GET", "/api/queries/"+id+"?wait=5s", nil)
	if code != http.StatusOK {
		t.Fatalf("long-poll: %d %v", code, body)
	}
	if body["status"] != "done" {
		t.Fatalf("long-poll returned status %v, want done", body["status"])
	}
	if body["rows"] == nil {
		t.Fatal("long-poll terminal response missing rows")
	}

	// A second long-poll on a finished job returns immediately.
	start := time.Now()
	code, body = c.do("GET", "/api/queries/"+id+"?wait=10s", nil)
	if code != http.StatusOK || body["status"] != "done" {
		t.Fatalf("re-poll: %d %v", code, body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("long-poll on finished job blocked %v", elapsed)
	}
}

// TestQueryStatusLongPollInvalid: malformed and negative waits are 400s.
func TestQueryStatusLongPollInvalid(t *testing.T) {
	c, _ := newTestServer(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("nums", "a\n1\n")
	code, body := c.do("POST", "/api/queries", map[string]string{"sql": "SELECT * FROM [nums]"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, body)
	}
	id := body["id"].(string)
	for _, w := range []string{"bogus", "-1s", "10"} {
		if code, _ := c.do("GET", "/api/queries/"+id+"?wait="+w, nil); code != http.StatusBadRequest {
			t.Errorf("wait=%q: got %d, want 400", w, code)
		}
	}
}

// TestQueryStatusLongPollCapped: waits beyond maxStatusWait return after
// the cap with the job still running, not an error.
func TestQueryStatusLongPollCapped(t *testing.T) {
	old := maxStatusWait
	maxStatusWait = 50 * time.Millisecond
	defer func() { maxStatusWait = old }()

	c, _, srv := newTestServerObs(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("nums", "a\n1\n")

	// Hold the job open by submitting against a job table entry that never
	// finishes: create a job directly so no execution races the cap.
	j := srv.jobs.create("alice", "SELECT 1")
	start := time.Now()
	code, body := c.do("GET", "/api/queries/"+j.id+"?wait=1h", nil)
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("capped long-poll: %d %v", code, body)
	}
	if body["status"] != "running" {
		t.Fatalf("status %v, want running", body["status"])
	}
	if elapsed < 40*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("capped long-poll took %v, want ~50ms", elapsed)
	}
	close(j.done) // don't leak a permanently-running job
}
