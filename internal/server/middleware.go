package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sqlshare/internal/obs"
	"sqlshare/internal/repl"
)

// lightTraceEvery is the ingest head-sampling rate for light routes: one
// request in this many starts a span trace (metrics and the access log are
// unconditional). Polls dominate request volume by an order of magnitude,
// so this keeps the summary ring representative of queries, not polling.
const lightTraceEvery = 16

// traceHeader is the response header carrying the trace ID, spelled in
// textproto canonical form so it can be map-assigned without Set()'s
// per-call canonicalization. Header names are case-insensitive on the
// wire; docs write it X-SQLShare-Trace.
const traceHeader = "X-Sqlshare-Trace"

// statusWriter captures the response status and body size for logging and
// metrics. The zero status means the handler never called WriteHeader,
// which net/http treats as 200.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	// onFirst, when set, runs once just before the status line is
	// committed — the hook that stamps the post-mutation durable LSN
	// header on write routes (headers must precede WriteHeader).
	onFirst func(h http.Header)
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
		if sw.onFirst != nil {
			sw.onFirst(sw.Header())
		}
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.WriteHeader(http.StatusOK)
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// withObservability wraps the mux in structured request logging, HTTP
// metrics and span tracing: every request emits one slog record (method,
// route pattern, user, status, duration, bytes), increments the http
// request counter/histogram family, and — when the span trace store is on —
// runs inside a root "http.request" span whose children are opened by the
// layers below (auth, parse, plan, cache, execution, WAL). The route
// pattern — not the raw URL — is the metrics label and span name suffix, so
// /api/queries/q-1 and /api/queries/q-2 aggregate into one series.
//
// W3C trace-context propagation: an incoming `traceparent` header joins the
// caller's trace (the future multi-node router inherits causality for
// free); every traced response carries the trace ID in `X-SQLShare-Trace`
// so a client can fetch the span tree from GET /api/traces/{id}.
// (`traceparent` itself is a request-propagation header — echoing it on
// responses would cost a header nobody consumes on the always-on path.)
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		_, pattern := s.mux.Handler(r)
		if pattern == "" {
			pattern = "unmatched"
		}
		remote := obs.ParseTraceparent(r.Header.Get("traceparent"))
		ctx := r.Context()
		var root *obs.Span
		// Sampling happens at both ends of a trace's life: light routes
		// (status polls, scrapes) are head-sampled here at ingest — 1 in
		// lightTraceEvery starts a trace at all — and everything traced is
		// tail-sampled at retention. An explicit traceparent from the
		// caller always wins: a propagated trace is never sampled out at
		// ingest, so cross-process trees stay whole.
		if c := s.lightTrace[pattern]; c == nil || remote.Valid() || c.Add(1)%lightTraceEvery == 1 {
			ctx, root = s.traces.StartTrace(ctx, pattern, remote)
		}
		if root != nil {
			root.SetAttr("method", r.Method)
			root.SetAttr("route", pattern)
			root.SetAttr("user", r.Header.Get(userHeader))
			// Direct map assignment with the pre-canonicalized key: Set()
			// would re-canonicalize "X-SQLShare-Trace" (allocating) on
			// every response of the always-on path.
			w.Header()[traceHeader] = []string{root.TraceID()}
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w}
		switch {
		case catalogMutationRoutes[pattern] && s.replica.Load():
			// Replicas take no catalog writes — the record stream from the
			// primary is their only mutation path. 409 (not 5xx: the node is
			// healthy, the client addressed the wrong role) so the router's
			// retry-on-conflict and the failover smoke's zero-5xx gate hold.
			s.writeErrCode(sw, http.StatusConflict, "read_only_replica",
				fmt.Errorf("node is a replica; catalog writes go to the shard primary"))
		default:
			if catalogMutationRoutes[pattern] && s.durability != nil {
				// Stamp the durable LSN as of the response — by then the
				// mutation has committed — so the client can pin replica
				// reads at-or-after its own write.
				sw.onFirst = func(h http.Header) {
					lsn, _ := s.durability.Durable()
					h.Set(repl.LSNHeader, strconv.FormatUint(lsn, 10))
				}
			}
			next.ServeHTTP(sw, r)
		}
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		if root != nil {
			root.SetAttr("status", strconv.Itoa(sw.status))
			root.AddBytes(sw.bytes)
			root.End()
			obs.FinishTrace(ctx)
		}
		s.metrics.HTTPRequests.With(pattern, strconv.Itoa(sw.status)).Inc()
		s.metrics.HTTPSeconds.Observe(elapsed.Seconds())
		s.metrics.HTTPBytesOut.Add(sw.bytes)
		s.log.Info("request",
			"method", r.Method,
			"route", pattern,
			"path", r.URL.Path,
			"user", r.Header.Get(userHeader),
			"status", sw.status,
			"durationMs", float64(elapsed.Nanoseconds())/1e6,
			"bytes", sw.bytes,
		)
	})
}
