package server

import (
	"net/http"
	"strconv"
	"time"
)

// statusWriter captures the response status and body size for logging and
// metrics. The zero status means the handler never called WriteHeader,
// which net/http treats as 200.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// withObservability wraps the mux in structured request logging and HTTP
// metrics: every request emits one slog record (method, route pattern,
// user, status, duration, bytes) and increments the http request
// counter/histogram family. The route pattern — not the raw URL — is the
// metrics label, so /api/queries/q-1 and /api/queries/q-2 aggregate into
// one series.
func (s *Server) withObservability(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		_, pattern := s.mux.Handler(r)
		if pattern == "" {
			pattern = "unmatched"
		}
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.metrics.HTTPRequests.With(pattern, strconv.Itoa(sw.status)).Inc()
		s.metrics.HTTPSeconds.Observe(elapsed.Seconds())
		s.metrics.HTTPBytesOut.Add(sw.bytes)
		s.log.Info("request",
			"method", r.Method,
			"route", pattern,
			"path", r.URL.Path,
			"user", r.Header.Get(userHeader),
			"status", sw.status,
			"durationMs", float64(elapsed.Nanoseconds())/1e6,
			"bytes", sw.bytes,
		)
	})
}
