package server

import (
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"sqlshare/internal/engine"
	"sqlshare/internal/obs"
	"sqlshare/internal/ops"
)

// This file is the live-operations surface: what is running right now
// (GET /api/queries/running), the kill switch (DELETE
// /api/queries/{id}/kill), deep health (GET /api/health) and the
// sqlshare_overload_* gauges. Like the /api/admin endpoints, these are
// operator tools, not user features, so they carry no user check — the
// snapshot exposes every user's in-flight SQL by design (the DBA view).

// overloadQueueFactor: the job queue is "deep" — and health flips to
// "busy" — once more than this many jobs per core are in flight.
const overloadQueueFactor = 4

// registerOverloadGauges wires the scrape-time overload signals into the
// server's registry. Each reads live state at scrape: queue depth and pool
// occupancy say whether the box is saturated right now, in-flight memory
// says how close concurrent queries are to the budget, and the worst
// per-template p99 says whether a workload shape has gone pathological.
func (s *Server) registerOverloadGauges() {
	r := s.metrics.Registry
	r.NewGaugeFunc("sqlshare_overload_job_queue_depth",
		"Asynchronous queries submitted but not yet finished.",
		func() float64 { return float64(s.metrics.JobQueueDepth.Value()) })
	r.NewGaugeFunc("sqlshare_overload_pool_occupancy",
		"Fraction of the shared worker pool budget currently busy (can exceed 1 briefly).",
		func() float64 { return float64(engine.PoolBusy()) / float64(runtime.GOMAXPROCS(0)) })
	r.NewGaugeFunc("sqlshare_overload_inflight_queries",
		"Queries registered in the live-operations registry right now.",
		func() float64 { return float64(s.ops.Stats().InFlight) })
	r.NewGaugeFunc("sqlshare_overload_inflight_mem_bytes",
		"Aggregate reserved working-state bytes across in-flight queries.",
		func() float64 { return float64(s.ops.Stats().MemBytes) })
	r.NewGaugeFunc("sqlshare_overload_template_p99_seconds",
		"Worst per-plan-template p99 runtime observed by the history analyzer.",
		func() float64 {
			// Dereference s.history at scrape time: ConfigureHistory may
			// swap the subsystem after New().
			if h := s.history; h != nil {
				return h.Analyzer().WorstTemplateP99()
			}
			return 0
		})
}

// handleRunningQueries lists every in-flight query: id, user, SQL, plan
// digest, phase, DOP, start time, live progress counters and reserved
// memory — the `sqlshare ps` view.
func (s *Server) handleRunningQueries(w http.ResponseWriter, r *http.Request) {
	snap := s.ops.Snapshot()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(snap),
		"queries": snap,
	})
}

// handleKillQuery cancels an in-flight query through its context: morsel
// dispatch stops between morsels, the worker pool drains, and the query
// unwinds with ops.ErrKilled. Killing is idempotent-ish: once the query
// has unwound it is no longer in the registry and the endpoint answers
// 404.
func (s *Server) handleKillQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.ops.Kill(id); err != nil {
		if errors.Is(err, ops.ErrNotFound) {
			s.writeErr(w, http.StatusNotFound, fmt.Errorf("query %q is not running", id))
			return
		}
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"id": id, "killed": true})
}

// handleHealth is the deep health check: cheap enough to poll, detailed
// enough to page on. "busy" (still HTTP 200 — the server is up) means the
// worker pool is saturated or the job queue is deep; load balancers and
// operators decide what to do with that.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	stats := s.ops.Stats()
	queueDepth := s.metrics.JobQueueDepth.Value()
	busyWorkers := engine.PoolBusy()
	budget := runtime.GOMAXPROCS(0)
	status := "ok"
	if busyWorkers >= int64(budget) || queueDepth > int64(overloadQueueFactor*budget) {
		status = "busy"
	}
	out := map[string]any{
		"status":        status,
		"version":       obs.Version,
		"go":            runtime.Version(),
		"startedAt":     obs.ProcessStart().UTC().Format(time.RFC3339),
		"uptimeSeconds": time.Since(obs.ProcessStart()).Seconds(),
		"queries": map[string]any{
			"running":       stats.InFlight,
			"jobQueueDepth": queueDepth,
			"started":       stats.Started,
			"finished":      stats.Finished,
			"killed":        stats.Killed,
		},
		"memory": map[string]any{
			"inFlightBytes": stats.MemBytes,
			"maxQueryBytes": s.maxBytes,
		},
		"pool": map[string]any{
			"busyWorkers": busyWorkers,
			"budget":      budget,
			"occupancy":   float64(busyWorkers) / float64(budget),
		},
	}
	if h := s.history; h != nil {
		worst := h.Analyzer().TemplateP99s()
		tpl := map[string]any{"count": len(worst)}
		if len(worst) > 0 {
			tpl["worstP99Ms"] = worst[0].P99Ms
			tpl["worstDigest"] = worst[0].Digest
		}
		out["templates"] = tpl
	}
	if s.cache != nil {
		out["cache"] = s.cache.Stats()
	}
	if s.durability != nil {
		out["durability"] = map[string]any{
			"dir":     s.durability.Dir(),
			"lastLSN": s.durability.LastLSN(),
		}
	}
	cl := map[string]any{"role": s.Role()}
	if s.nodeName != "" {
		cl["node"] = s.nodeName
	}
	if f := s.follower; f != nil {
		cl["appliedLSN"] = f.AppliedLSN()
	}
	if src := s.replSource; src != nil {
		cl["followers"] = len(src.Followers())
	}
	if epoch, _ := s.cat.ShardMap(); epoch > 0 {
		cl["shardMapEpoch"] = epoch
	}
	out["cluster"] = cl
	s.writeJSON(w, http.StatusOK, out)
}
