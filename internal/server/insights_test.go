package server

import (
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sqlshare/internal/history"
)

// TestInsightsSummaryReflectsQueries is the ISSUE acceptance check:
// queries executed earlier in the same process show up in
// /api/insights/summary.
func TestInsightsSummaryReflectsQueries(t *testing.T) {
	c, _ := seedQueryData(t)
	c.query("SELECT station FROM readings")
	c.query("SELECT station FROM readings WHERE depth > 3")
	// A failed statement counts too.
	code, sub := c.do("POST", "/api/queries", map[string]string{"sql": "SELECT nope FROM readings"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, sub)
	}
	c.poll(sub["id"].(string))

	code, body := c.do("GET", "/api/insights/summary", nil)
	if code != http.StatusOK {
		t.Fatalf("GET summary: %d %v", code, body)
	}
	s, ok := body["summary"].(map[string]any)
	if !ok {
		t.Fatalf("no summary object in %v", body)
	}
	if got := s["queries"].(float64); got != 3 {
		t.Fatalf("summary queries = %v, want 3", got)
	}
	if got := s["failed"].(float64); got != 1 {
		t.Fatalf("summary failed = %v, want 1", got)
	}
	if got := s["users"].(float64); got != 1 {
		t.Fatalf("summary users = %v, want 1", got)
	}
	if got := s["distinctOperators"].(float64); got < 1 {
		t.Fatalf("summary distinctOperators = %v, want >= 1", got)
	}
	if got := body["ring"].(float64); got != 3 {
		t.Fatalf("ring = %v, want 3", got)
	}

	// The operator mix names the scan the queries ran.
	code, body = c.do("GET", "/api/insights/operators", nil)
	if code != http.StatusOK {
		t.Fatalf("GET operators: %d %v", code, body)
	}
	ops := body["operators"].([]any)
	if len(ops) == 0 {
		t.Fatal("empty operator mix")
	}
	// Tables and users sections answer as well.
	for _, section := range []string{"tables", "users", "sessions", "slow", "recent"} {
		if code, body := c.do("GET", "/api/insights/"+section, nil); code != http.StatusOK {
			t.Errorf("GET %s: %d %v", section, code, body)
		}
	}
}

func TestInsightsRequiresUserAndKnownSection(t *testing.T) {
	c, _ := seedQueryData(t)
	if code, _ := c.as("").do("GET", "/api/insights/summary", nil); code != http.StatusUnauthorized {
		t.Errorf("anonymous insights: %d, want 401", code)
	}
	if code, _ := c.do("GET", "/api/insights/bogus", nil); code != http.StatusNotFound {
		t.Errorf("unknown section: %d, want 404", code)
	}
	if code, _ := c.do("GET", "/api/insights/recent?n=x", nil); code != http.StatusBadRequest {
		t.Errorf("bad recent param: %d, want 400", code)
	}
}

// TestConfigureHistoryPersistsToJSONL wires a JSONL log into the server,
// runs queries, and checks the offline replay path reproduces the live
// operator-mix counts — the restart half of the ISSUE acceptance.
func TestConfigureHistoryPersistsToJSONL(t *testing.T) {
	c, _, srv := newTestServerObs(t)
	logPath := filepath.Join(t.TempDir(), "history.jsonl")
	if err := srv.ConfigureHistory(history.Config{
		LogPath:       logPath,
		SlowThreshold: time.Nanosecond, // everything is slow: exercises the metric
	}); err != nil {
		t.Fatal(err)
	}
	mustCreateUser(t, c, "alice")
	c.uploadCSV("readings", "station,depth\nalpha,2.0\nbeta,5.0\ngamma,10.0\n")
	c.query("SELECT station FROM readings")
	c.query("SELECT COUNT(*) AS n FROM readings")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	live := srv.History().Analyzer().OperatorMix()
	recs, err := history.ReadLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("JSONL has %d records, want 2", len(recs))
	}
	replayed := history.Replay(recs, 0, 0).OperatorMix()
	if len(replayed) != len(live) {
		t.Fatalf("operator mix length differs: live %v vs replayed %v", live, replayed)
	}
	for i := range live {
		if live[i].Operator != replayed[i].Operator || live[i].Count != replayed[i].Count {
			t.Errorf("operator mix differs at %d: live %+v vs replayed %+v", i, live[i], replayed[i])
		}
	}
	// The every-statement-is-slow threshold fed the labeled metric.
	if got := srv.Metrics().HistoryRecords.Value(); got != 2 {
		t.Errorf("history_records_total = %d, want 2", got)
	}
	code, text := c.fetchText("/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	if !strings.Contains(text, `sqlshare_slow_queries_total{digest="`) {
		t.Errorf("/metrics missing slow-query samples:\n%s", text)
	}
}
