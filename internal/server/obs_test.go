package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// seedQueryData uploads a small dataset and returns the client.
func seedQueryData(t *testing.T) (*client, *Server) {
	t.Helper()
	c, _, srv := newTestServerObs(t)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("readings", "station,depth\nalpha,2.0\nbeta,5.0\ngamma,10.0\n")
	return c, srv
}

func (c *client) fetchText(path string) (int, string) {
	c.t.Helper()
	req, err := http.NewRequest("GET", c.srv.URL+path, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	req.Header.Set(userHeader, c.user)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpointServesPrometheusFormat(t *testing.T) {
	c, _ := seedQueryData(t)
	c.query("SELECT station FROM readings")

	code, body := c.fetchText("/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE sqlshare_queries_total counter",
		"sqlshare_queries_total 1",
		"# TYPE sqlshare_query_execute_seconds histogram",
		"sqlshare_query_execute_seconds_count 1",
		"sqlshare_query_compile_seconds_count 1",
		"sqlshare_ingest_bytes_total",
		"# TYPE sqlshare_http_requests_total counter",
		`route="POST /api/queries"`,
		"sqlshare_catalog_ops_total{op=\"create_dataset\"} 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Traced scans feed the rows-scanned counter: 3 base rows.
	if !strings.Contains(body, "sqlshare_query_rows_scanned_total 3") {
		t.Errorf("/metrics missing rows-scanned actuals:\n%s", body)
	}
}

func TestDebugVarsEndpoint(t *testing.T) {
	c, _ := seedQueryData(t)
	code, body := c.fetchText("/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/vars: %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := doc["sqlshare_queries_total"]; !ok {
		t.Fatal("registry metrics missing from /debug/vars")
	}
}

func TestQueryTraceEndpoint(t *testing.T) {
	c, _ := seedQueryData(t)
	code, sub := c.do("POST", "/api/queries", map[string]string{"sql": "SELECT station FROM readings WHERE depth > 3"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, sub)
	}
	id := sub["id"].(string)
	c.poll(id)

	code, body := c.do("GET", "/api/queries/"+id+"/trace", nil)
	if code != http.StatusOK {
		t.Fatalf("GET trace: %d %v", code, body)
	}
	root, ok := body["trace"].(map[string]any)
	if !ok {
		t.Fatalf("no trace tree in %v", body)
	}
	// Every node carries estimate and actual; find the scan and check both.
	var findScan func(n map[string]any) map[string]any
	findScan = func(n map[string]any) map[string]any {
		if obj, _ := n["object"].(string); obj != "" {
			return n
		}
		children, _ := n["children"].([]any)
		for _, ch := range children {
			if m, ok := ch.(map[string]any); ok {
				if found := findScan(m); found != nil {
					return found
				}
			}
		}
		return nil
	}
	scan := findScan(root)
	if scan == nil {
		t.Fatalf("no scan node in trace: %v", root)
	}
	if _, ok := scan["estimateRows"]; !ok {
		t.Fatal("trace node missing estimateRows")
	}
	actual, ok := scan["actualRows"].(float64)
	if !ok || actual <= 0 {
		t.Fatalf("scan actualRows = %v, want > 0", scan["actualRows"])
	}
	// Other users must not see the trace.
	code, _ = c.as("mallory").do("GET", "/api/queries/"+id+"/trace", nil)
	if code != http.StatusForbidden {
		t.Fatalf("foreign trace access: %d, want 403", code)
	}
}

// TestQueryTraceAbsentWhenTracingDisabled is the ISSUE satellite: a job
// that ran with tracing off has no trace tree, and the trace endpoint
// must answer 404 with a JSON error body instead of a null trace.
func TestQueryTraceAbsentWhenTracingDisabled(t *testing.T) {
	c, _, srv := newTestServerObs(t)
	srv.SetTracing(false)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("readings", "station,depth\nalpha,2.0\nbeta,5.0\n")

	code, sub := c.do("POST", "/api/queries", map[string]string{"sql": "SELECT station FROM readings"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, sub)
	}
	id := sub["id"].(string)
	if final := c.poll(id); final["status"] != "done" {
		t.Fatalf("job ended %v", final)
	}

	code, body := c.do("GET", "/api/queries/"+id+"/trace", nil)
	if code != http.StatusNotFound {
		t.Fatalf("GET trace with tracing disabled: %d %v, want 404", code, body)
	}
	msg, ok := body["error"].(string)
	if !ok || !strings.Contains(msg, "no trace recorded") {
		t.Fatalf("trace 404 body = %v, want JSON error mentioning no trace", body)
	}

	// Re-enabling tracing makes new jobs traced again.
	srv.SetTracing(true)
	code, sub = c.do("POST", "/api/queries", map[string]string{"sql": "SELECT station FROM readings"})
	if code != http.StatusAccepted {
		t.Fatalf("submit traced: %d %v", code, sub)
	}
	id = sub["id"].(string)
	c.poll(id)
	if code, body = c.do("GET", "/api/queries/"+id+"/trace", nil); code != http.StatusOK {
		t.Fatalf("GET trace after re-enable: %d %v", code, body)
	}
}

func TestRowLimitAbortMapsTo422(t *testing.T) {
	c, _, srv := newTestServerObs(t)
	srv.SetMaxRows(10)
	mustCreateUser(t, c, "alice")
	c.uploadCSV("nums", "n\n1\n2\n3\n4\n5\n")
	code, sub := c.do("POST", "/api/queries", map[string]string{"sql": "SELECT a.n FROM nums a, nums b"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, sub)
	}
	id := sub["id"].(string)
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := c.do("GET", "/api/queries/"+id, nil)
		if body["status"] == "failed" {
			if code != http.StatusUnprocessableEntity {
				t.Fatalf("aborted query status code = %d, want 422 (%v)", code, body)
			}
			if !strings.Contains(body["error"].(string), "row limit") {
				t.Fatalf("unexpected error text: %v", body["error"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query did not fail in time (last: %d %v)", code, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := srv.Metrics().QueriesAborted.Value(); got != 1 {
		t.Fatalf("queries_aborted_total = %d, want 1", got)
	}
	// A query within the limit still succeeds on the same server.
	res := c.query("SELECT n FROM nums WHERE n = 3")
	if res["status"] != "done" {
		t.Fatalf("in-limit query: %v", res)
	}
}

// TestJobLifecycleAndQueueDepthGauge is the ISSUE satellite: submit a slow
// query, observe the running state, then completion, and assert the
// job-queue-depth gauge returns to zero.
func TestJobLifecycleAndQueueDepthGauge(t *testing.T) {
	c, _, srv := newTestServerObs(t)
	mustCreateUser(t, c, "alice")
	// ~800 rows: the self cross join below materializes 640k rows, slow
	// enough even on fast machines (tens of ms) that polling observes the
	// running state.
	var b strings.Builder
	b.WriteString("n\n")
	for i := 0; i < 800; i++ {
		fmt.Fprintf(&b, "%d\n", i)
	}
	c.uploadCSV("nums", b.String())

	sawRunning := false
	for attempt := 0; attempt < 8 && !sawRunning; attempt++ {
		code, sub := c.do("POST", "/api/queries", map[string]string{"sql": "SELECT COUNT(*) AS c FROM nums a, nums b"})
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d %v", code, sub)
		}
		id := sub["id"].(string)
		// Read the gauge before polling: the depth is incremented before the
		// submit response is sent, so it can only be zero if the job already
		// finished — in which case the poll below won't say "running" either.
		depth := srv.Metrics().JobQueueDepth.Value()
		if _, body := c.do("GET", "/api/queries/"+id, nil); body["status"] == "running" {
			sawRunning = true
			if depth < 1 {
				t.Fatalf("job queue depth while running = %d, want >= 1", depth)
			}
		}
		final := c.poll(id)
		if final["status"] != "done" {
			t.Fatalf("job ended %v", final)
		}
		if sawRunning {
			rows := final["rows"].([]any)
			cells := rows[0].([]any)
			if cells[0].(string) != "640000" {
				t.Fatalf("cross join count = %v, want 640000", cells[0])
			}
		}
	}
	if !sawRunning {
		t.Fatal("never observed the running state across 8 attempts")
	}
	// All jobs finished: the gauge must be back to zero.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Metrics().JobQueueDepth.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("job queue depth = %d, want 0", srv.Metrics().JobQueueDepth.Value())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRequestLogAndHTTPMetrics(t *testing.T) {
	c, _, srv := newTestServerObs(t)
	mustCreateUser(t, c, "alice")
	code, _ := c.do("GET", "/api/datasets", nil)
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if got := srv.Metrics().HTTPSeconds.Count(); got < 2 {
		t.Fatalf("http latency observations = %d, want >= 2", got)
	}
	if got := srv.Metrics().HTTPRequests.With("GET /api/datasets", "200").Value(); got != 1 {
		t.Fatalf("http_requests{GET /api/datasets,200} = %d, want 1", got)
	}
	if got := srv.Metrics().HTTPBytesOut.Value(); got <= 0 {
		t.Fatalf("response bytes = %d, want > 0", got)
	}
}
