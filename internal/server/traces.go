package server

import (
	"fmt"
	"net/http"
	"os"
	"strconv"
)

// handleTraces lists the head-sample summaries (every finished request)
// plus the store census. ?n= bounds the list (default 100).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		s.writeErrCode(w, http.StatusNotFound, "tracing_disabled",
			fmt.Errorf("span tracing is disabled on this server"))
		return
	}
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("n must be a non-negative integer"))
			return
		}
		n = v
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"stats":  s.traces.Stats(),
		"traces": s.traces.Summaries(n),
	})
}

// handleTrace returns one retained span tree. The three 404s carry
// distinct codes (see README): tracing_disabled (the store is off),
// trace_unknown (no trace with this ID ever finished here), and
// trace_sampled_out (the trace finished but tail sampling kept only its
// summary — it was fast, successful and cache-friendly).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		s.writeErrCode(w, http.StatusNotFound, "tracing_disabled",
			fmt.Errorf("span tracing is disabled on this server"))
		return
	}
	id := r.PathValue("id")
	t, seen := s.traces.Get(id)
	if t != nil {
		s.writeJSON(w, http.StatusOK, t)
		return
	}
	if seen {
		s.writeErrCode(w, http.StatusNotFound, "trace_sampled_out",
			fmt.Errorf("trace %q finished but only its summary was retained (tail sampling)", id))
		return
	}
	s.writeErrCode(w, http.StatusNotFound, "trace_unknown",
		fmt.Errorf("trace %q not found", id))
}

// DumpTraces flushes every retained span tree to path as JSONL — the
// graceful-drain hook, so post-mortem traces survive a restart. It returns
// how many traces were written. A nil store or empty path writes nothing.
func (s *Server) DumpTraces(path string) (int, error) {
	if s.traces == nil || path == "" {
		return 0, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	n, err := s.traces.Dump(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return n, err
}
