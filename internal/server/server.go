// Package server implements the SQLShare REST interface (paper §3.3–3.4,
// Fig 3): dataset upload with server-side staging, view creation and
// sharing, cached previews, and the asynchronous query protocol in which a
// submitted query receives an identifier that the client polls for status
// and results ("an obvious choice over an atomic request, as long-running
// queries would reduce the requests the REST server can handle").
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sqlshare/internal/catalog"
	"sqlshare/internal/engine"
	"sqlshare/internal/history"
	"sqlshare/internal/ingest"
	"sqlshare/internal/obs"
	"sqlshare/internal/ops"
	"sqlshare/internal/qcache"
	"sqlshare/internal/repl"
)

// userHeader carries the authenticated identity. The production system
// used federated web auth; the reproduction trusts a header.
const userHeader = "X-SQLShare-User"

// Server is the REST layer over a catalog.
type Server struct {
	cat     *catalog.Catalog
	jobs    *jobTable
	staged  *stageTable
	mux     *http.ServeMux
	handler http.Handler // mux wrapped in the observability middleware
	log     *slog.Logger
	metrics *obs.PlatformMetrics
	// history is the continuous-insights subsystem behind /api/insights;
	// the catalog records every executed statement into it.
	history *history.History
	// maxRows is the per-operator row limit applied to submitted queries
	// (0 = unlimited); exceeding it maps to HTTP 422.
	maxRows int
	// maxBytes is the per-query in-flight memory budget applied to
	// submitted queries (0 = unlimited); exceeding it maps to HTTP 422,
	// mirroring maxRows.
	maxBytes int64
	// ops is the live-operations registry: every in-flight query is
	// visible at GET /api/queries/running and killable at
	// DELETE /api/queries/{id}/kill.
	ops *ops.Registry
	// tracing controls whether submitted jobs run with per-operator
	// instrumentation (on by default; see SetTracing).
	tracing bool
	// parallelism is the default per-query worker cap for submitted jobs
	// (0 = all of GOMAXPROCS, 1 = serial); a job request may lower-or-raise
	// it per query. See SetParallelism.
	parallelism int
	// durability is the catalog's WAL/checkpoint subsystem when the server
	// runs with a data directory; nil for in-memory deployments.
	durability *catalog.Durability
	// cache is the version-fenced result & plan cache when enabled via
	// ConfigureCache; nil means every query executes.
	cache *qcache.Cache
	// traces is the span trace store behind /api/traces; nil when span
	// tracing is disabled (SetTracing(false) disables it alongside the
	// operator tracer).
	traces *obs.TraceStore
	// lightTrace holds a per-route counter for high-frequency idempotent
	// routes whose traces are head-sampled at ingest; see withObservability.
	lightTrace map[string]*atomic.Uint64
	// replSource, when non-nil, serves this node's WAL to followers over
	// /api/repl/* (EnableReplication).
	replSource *repl.Source
	// follower is the WAL-pulling loop on replica nodes; its applied LSN
	// shows in health and replication status.
	follower *repl.Follower
	// stopFollower cancels the follower loop when the node is promoted.
	stopFollower func()
	// replica marks the node read-only for catalog mutations (409
	// read_only_replica) until promotion flips it; atomic because failover
	// promotes at runtime, concurrent with request handling.
	replica atomic.Bool
	// nodeName labels this node in cluster maps, acks and health output.
	nodeName string
	// minLSNWait bounds the min-LSN read gate's wait (SetMinLSNWait;
	// defaultMinLSNWait when zero).
	minLSNWait time.Duration
}

// New builds a Server over the given catalog. The server owns a metrics
// registry (exported at GET /metrics and GET /debug/vars) and attaches it
// to the catalog so the query path reports through it.
func New(cat *catalog.Catalog) *Server {
	s := &Server{
		cat:     cat,
		jobs:    newJobTable(),
		staged:  newStageTable(),
		mux:     http.NewServeMux(),
		log:     slog.Default(),
		metrics: obs.NewPlatformMetrics(obs.NewRegistry()),
		tracing: true,
		// Status polls and scrape endpoints run orders of magnitude more
		// often than queries and always produce the same two-span tree;
		// tracing every one would evict the interesting query summaries
		// from the bounded summary ring. They are head-sampled at ingest
		// instead (1 in lightTraceEvery; see withObservability).
		lightTrace: map[string]*atomic.Uint64{
			"GET /api/queries/{id}":    new(atomic.Uint64),
			"GET /api/queries/running": new(atomic.Uint64),
			"GET /api/health":          new(atomic.Uint64),
			"GET /metrics":             new(atomic.Uint64),
			"GET /debug/vars":          new(atomic.Uint64),
		},
		ops: ops.NewRegistry(),
	}
	cat.SetMetrics(s.metrics)
	cat.SetOpsRegistry(s.ops)
	s.registerOverloadGauges()
	// The default trace store retains everything (TraceConfig zero value) —
	// right for tests and development; production servers pass a slow
	// threshold via ConfigureTraces so only the interesting tail is kept.
	s.ConfigureTraces(obs.TraceConfig{})
	// A default in-memory history backs /api/insights even before any
	// ConfigureHistory call; persistence and the slow-query log are off.
	if err := s.ConfigureHistory(history.Config{}); err != nil {
		// Unreachable: an empty config opens no files.
		panic(err)
	}
	s.routes()
	s.handler = s.withObservability(s.mux)
	return s
}

// ConfigureHistory replaces the history subsystem with one built from
// cfg. The server supplies the logger and wires the history metrics into
// its registry; callers set persistence (LogPath), the slow-query
// threshold, ring size and session gap. Call before serving traffic.
func (s *Server) ConfigureHistory(cfg history.Config) error {
	if cfg.Logger == nil {
		cfg.Logger = s.log
	}
	cfg.SlowQueries = s.metrics.SlowQueries
	cfg.RecordsTotal = s.metrics.HistoryRecords
	h, err := history.New(cfg)
	if err != nil {
		return err
	}
	if s.history != nil {
		s.history.Close()
	}
	s.history = h
	s.cat.SetHistory(h)
	return nil
}

// History exposes the insights subsystem (for tests and the server main).
func (s *Server) History() *history.History { return s.history }

// ConfigureCache attaches a version-fenced result & plan cache of maxBytes
// capacity (ttl > 0 adds age-based expiry). maxBytes <= 0 detaches. The
// cache's eviction counter and byte gauge report through the server's
// metric registry; hit/miss counting happens on the catalog query path.
// Call before serving traffic.
func (s *Server) ConfigureCache(maxBytes int64, ttl time.Duration) {
	if maxBytes <= 0 {
		s.cache = nil
		s.cat.SetQueryCache(nil)
		return
	}
	qc := qcache.New(maxBytes, ttl)
	qc.SetMetrics(s.metrics.CacheEvictions, s.metrics.CacheBytes)
	s.cache = qc
	s.cat.SetQueryCache(qc)
}

// Cache exposes the result cache, or nil when caching is off.
func (s *Server) Cache() *qcache.Cache { return s.cache }

// SetTracing toggles per-operator instrumentation for submitted jobs.
// Tracing is on by default; deployments chasing the last few percent of
// overhead can turn it off, at the price of /api/queries/{id}/trace
// returning 404 and EXPLAIN ANALYZE being the only source of actuals.
// Turning it off also disables span tracing (the /api/traces store):
// the two tracers are one operational switch.
func (s *Server) SetTracing(on bool) {
	s.tracing = on
	if !on {
		s.traces = nil
	} else if s.traces == nil {
		s.ConfigureTraces(obs.TraceConfig{})
	}
}

// SetSpanTracing toggles only the span trace layer (the /api/traces
// store), leaving the per-operator job tracer under SetTracing's control.
// This exists so benchmarks can price the span layer in isolation;
// operators use SetTracing / ConfigureTraces.
func (s *Server) SetSpanTracing(on bool) {
	if !on {
		s.traces = nil
	} else if s.traces == nil {
		s.ConfigureTraces(obs.TraceConfig{})
	}
}

// ConfigureTraces replaces the span trace store with one built from cfg
// (see obs.TraceConfig for the tail-sampling knobs). Call before serving
// traffic.
func (s *Server) ConfigureTraces(cfg obs.TraceConfig) {
	st := obs.NewTraceStore(cfg)
	st.SetMetrics(s.metrics.TracesTotal, s.metrics.TracesRetained)
	s.traces = st
}

// Traces exposes the span trace store, or nil when span tracing is off.
func (s *Server) Traces() *obs.TraceStore { return s.traces }

// Close releases server-held resources (the history JSONL log).
func (s *Server) Close() error {
	if s.history == nil {
		return nil
	}
	return s.history.Close()
}

// SetLogger replaces the request logger (slog.Default() until then).
// Call before serving traffic.
func (s *Server) SetLogger(l *slog.Logger) { s.log = l }

// SetDurability attaches the catalog's durability subsystem: WAL and
// recovery metrics flow into the server's registry, and POST
// /api/admin/checkpoint triggers snapshots. Call before serving traffic.
func (s *Server) SetDurability(d *catalog.Durability) {
	s.durability = d
	if d != nil {
		d.SetMetrics(s.metrics)
	}
}

// SetMaxRows sets the per-operator row limit for submitted queries
// (0 = unlimited). Call before serving traffic.
func (s *Server) SetMaxRows(n int) { s.maxRows = n }

// SetMaxQueryBytes sets the per-query in-flight memory budget for
// submitted queries (0 = unlimited). A query whose accounted working
// state — hash-join builds, sort buffers, aggregation state, intermediate
// and final results — exceeds the budget aborts with engine.ErrMemLimit,
// reported as HTTP 422. Call before serving traffic.
func (s *Server) SetMaxQueryBytes(n int64) { s.maxBytes = n }

// Ops exposes the live-operations registry (for tests and benchmarks).
func (s *Server) Ops() *ops.Registry { return s.ops }

// SetParallelism sets the default intra-query worker cap for submitted
// queries: 0 = automatic (all of GOMAXPROCS), 1 = serial, N>1 = at most N
// workers per query. Results are identical at every setting. Call before
// serving traffic.
func (s *Server) SetParallelism(n int) { s.parallelism = n }

// Metrics exposes the server's metric bundle (for tests and the debug
// listener in cmd/sqlshare-server).
func (s *Server) Metrics() *obs.PlatformMetrics { return s.metrics }

// Registry exposes the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.metrics.Registry }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.handler.ServeHTTP(w, r) }

func (s *Server) routes() {
	s.mux.Handle("GET /metrics", s.metrics.Registry.Handler())
	s.mux.Handle("GET /debug/vars", s.metrics.Registry.ExpvarHandler())
	s.mux.HandleFunc("POST /api/users", s.handleCreateUser)
	s.mux.HandleFunc("GET /api/datasets", s.handleListDatasets)
	s.mux.HandleFunc("GET /api/usage", s.handleUsage)
	s.mux.HandleFunc("POST /api/staging", s.handleStage)
	s.mux.HandleFunc("POST /api/datasets", s.handleCreateDataset)
	s.mux.HandleFunc("GET /api/datasets/{owner}/{name}", s.handleGetDataset)
	s.mux.HandleFunc("DELETE /api/datasets/{owner}/{name}", s.handleDeleteDataset)
	s.mux.HandleFunc("PUT /api/datasets/{owner}/{name}/meta", s.handleUpdateMeta)
	s.mux.HandleFunc("PUT /api/datasets/{owner}/{name}/permissions", s.handlePermissions)
	s.mux.HandleFunc("POST /api/datasets/{owner}/{name}/append", s.handleAppend)
	s.mux.HandleFunc("POST /api/datasets/{owner}/{name}/materialize", s.handleMaterialize)
	s.mux.HandleFunc("POST /api/queries", s.handleSubmitQuery)
	s.mux.HandleFunc("GET /api/queries/running", s.handleRunningQueries)
	s.mux.HandleFunc("DELETE /api/queries/{id}/kill", s.handleKillQuery)
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /api/queries/{id}", s.handleQueryStatus)
	s.mux.HandleFunc("GET /api/queries/{id}/plan", s.handleQueryPlan)
	s.mux.HandleFunc("GET /api/queries/{id}/trace", s.handleQueryTrace)
	s.mux.HandleFunc("GET /api/insights/{section}", s.handleInsights)
	s.mux.HandleFunc("GET /api/traces", s.handleTraces)
	s.mux.HandleFunc("GET /api/traces/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /api/datasets/{owner}/{name}/data", s.handleDatasetData)
	s.mux.HandleFunc("GET /api/repl/wal", s.handleReplWAL)
	s.mux.HandleFunc("GET /api/repl/snapshot", s.handleReplSnapshot)
	s.mux.HandleFunc("POST /api/repl/ack", s.handleReplAck)
	s.mux.HandleFunc("GET /api/repl/status", s.handleReplStatus)
	s.mux.HandleFunc("GET /api/cluster/map", s.handleGetShardMap)
	s.mux.HandleFunc("PUT /api/cluster/map", s.handlePutShardMap)
	s.mux.HandleFunc("POST /api/admin/promote", s.handlePromote)
	s.mux.HandleFunc("POST /api/admin/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /api/admin/durability", s.handleDurability)
	s.mux.HandleFunc("GET /api/admin/cache", s.handleCacheStats)
	s.mux.HandleFunc("DELETE /api/admin/cache", s.handleCacheFlush)
	s.extensionRoutes()
}

// handleCacheStats reports the result/plan cache census. Staleness needs no
// admin action — keys are version-fenced — so the cache endpoints are about
// observability (stats) and memory (flush), not correctness.
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		s.writeErr(w, http.StatusConflict, fmt.Errorf("server is running without a result cache"))
		return
	}
	s.writeJSON(w, http.StatusOK, s.cache.Stats())
}

// handleCacheFlush empties the cache (operator hook for reclaiming memory).
func (s *Server) handleCacheFlush(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		s.writeErr(w, http.StatusConflict, fmt.Errorf("server is running without a result cache"))
		return
	}
	s.cache.Flush()
	s.writeJSON(w, http.StatusOK, map[string]bool{"flushed": true})
}

// handleCheckpoint snapshots the catalog on demand (an operator hook: take
// a snapshot before maintenance so the next boot replays nothing).
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.durability == nil {
		s.writeErr(w, http.StatusConflict, fmt.Errorf("server is running without a data directory"))
		return
	}
	stats, err := s.durability.Checkpoint()
	if err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"path":     stats.Path,
		"lsn":      stats.LSN,
		"bytes":    stats.Bytes,
		"datasets": stats.Datasets,
		"users":    stats.Users,
		"tables":   stats.Tables,
		"duration": stats.Duration.String(),
	})
}

// handleDurability reports what recovery did at boot and the current LSN.
func (s *Server) handleDurability(w http.ResponseWriter, r *http.Request) {
	if s.durability == nil {
		s.writeErr(w, http.StatusConflict, fmt.Errorf("server is running without a data directory"))
		return
	}
	rec := s.durability.RecoveryStats()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"dir":              s.durability.Dir(),
		"lastLSN":          s.durability.LastLSN(),
		"snapshot":         rec.SnapshotPath,
		"snapshotLSN":      rec.SnapshotLSN,
		"snapshotsSkipped": rec.SnapshotsSkipped,
		"recordsReplayed":  rec.RecordsReplayed,
		"tornBytes":        rec.TornBytes,
		"recoveryDuration": rec.Duration.String(),
	})
}

func (s *Server) user(r *http.Request) (string, error) {
	u := r.Header.Get(userHeader)
	if u == "" {
		return "", fmt.Errorf("missing %s header", userHeader)
	}
	return u, nil
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already on the wire; all that is left is to
		// record the failure (most often a client that went away).
		s.log.Error("response encode failed", "status", status, "error", err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error()})
}

// writeErrCode is writeErr with a machine-readable "code" beside the human
// "error" message, for endpoints where one HTTP status covers conditions a
// client must tell apart (e.g. the trace 404s: tracing off vs unknown ID).
func (s *Server) writeErrCode(w http.ResponseWriter, status int, code string, err error) {
	s.writeJSON(w, status, map[string]string{"error": err.Error(), "code": code})
}

func statusFor(err error) int {
	if catalog.IsAccessError(err) {
		return http.StatusForbidden
	}
	if errors.Is(err, engine.ErrRowLimit) || errors.Is(err, engine.ErrMemLimit) {
		return http.StatusUnprocessableEntity
	}
	if strings.Contains(err.Error(), "not found") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// ---- users ----

func (s *Server) handleCreateUser(w http.ResponseWriter, r *http.Request) {
	var req struct{ Name, Email string }
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	u, err := s.cat.CreateUserContext(r.Context(), req.Name, req.Email)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusCreated, u)
}

// ---- staging & upload (§3.1: files are staged server-side so a failed
// ingest can be retried without re-uploading) ----

type stageTable struct {
	mu    sync.Mutex
	seq   int
	files map[string][]byte
}

func newStageTable() *stageTable { return &stageTable{files: map[string][]byte{}} }

func (st *stageTable) put(data []byte) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	id := fmt.Sprintf("stage-%d", st.seq)
	st.files[id] = data
	return id
}

func (st *stageTable) get(id string) ([]byte, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	d, ok := st.files[id]
	return d, ok
}

func (s *Server) handleStage(w http.ResponseWriter, r *http.Request) {
	if _, err := s.user(r); err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.metrics.IngestBytes.Add(int64(len(data)))
	s.writeJSON(w, http.StatusCreated, map[string]string{"stagedId": s.staged.put(data)})
}

// handleCreateDataset creates a dataset either by ingesting a staged file
// ({"name": ..., "stagedId": ...}) or by saving a view ({"name": ...,
// "sql": ...}). Both paths implement "saving a query and giving it a name"
// as the single creation workflow (§3.2).
func (s *Server) handleCreateDataset(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	var req struct {
		Name        string
		StagedID    string `json:"stagedId"`
		SQL         string `json:"sql"`
		Description string
		Tags        []string
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	meta := catalog.Meta{Description: req.Description, Tags: req.Tags}
	switch {
	case req.StagedID != "":
		data, ok := s.staged.get(req.StagedID)
		if !ok {
			s.writeErr(w, http.StatusNotFound, fmt.Errorf("staged file %q not found", req.StagedID))
			return
		}
		rep, err := ingest.LoadBytes(req.Name, data, ingest.Options{})
		if err != nil {
			// The staged file survives; the client may retry with
			// different options without re-uploading.
			s.writeErr(w, http.StatusBadRequest, err)
			return
		}
		ds, err := s.cat.CreateDatasetFromTableContext(r.Context(), user, req.Name, rep.Table, meta)
		if err != nil {
			s.writeErr(w, statusFor(err), err)
			return
		}
		s.writeJSON(w, http.StatusCreated, map[string]any{
			"dataset": datasetJSON(ds),
			"ingest": map[string]any{
				"rows":             rep.Rows,
				"delimiter":        string(rep.Delimiter),
				"headerDetected":   rep.HeaderDetected,
				"defaultedColumns": rep.DefaultedColumns,
				"raggedRows":       rep.RaggedRows,
				"widenedColumns":   rep.WidenedColumns,
			},
		})
	case req.SQL != "":
		ds, err := s.cat.SaveViewContext(r.Context(), user, req.Name, req.SQL, meta)
		if err != nil {
			s.writeErr(w, statusFor(err), err)
			return
		}
		s.writeJSON(w, http.StatusCreated, map[string]any{"dataset": datasetJSON(ds)})
	default:
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("either stagedId or sql is required"))
	}
}

func datasetJSON(ds *catalog.Dataset) map[string]any {
	return map[string]any{
		"owner":       ds.Owner,
		"name":        ds.Name,
		"fullName":    ds.FullName(),
		"sql":         ds.SQL,
		"description": ds.Meta.Description,
		"tags":        ds.Meta.Tags,
		"isWrapper":   ds.IsWrapper,
		"public":      ds.Visibility == catalog.Public,
		"created":     ds.Created,
		"previewCols": ds.PreviewCols,
		"preview":     ds.Preview,
	}
}

// ---- datasets ----

// handleListDatasets lists (or, with ?q=, searches) the datasets visible
// to the user — the tag/description search of §3.2.
func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	var out []map[string]any
	for _, ds := range s.cat.SearchDatasets(user, r.URL.Query().Get("q")) {
		out = append(out, datasetJSON(ds))
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleUsage reports the user's storage consumption against their quota
// (the Quotas component of Fig 3).
func (s *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"user":       user,
		"usedBytes":  s.cat.UserUsage(user),
		"quotaBytes": catalog.DefaultQuotaBytes,
	})
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	full := r.PathValue("owner") + "." + r.PathValue("name")
	ds, err := s.cat.Dataset(user, full)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, datasetJSON(ds))
}

func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	full := r.PathValue("owner") + "." + r.PathValue("name")
	if err := s.cat.DeleteContext(r.Context(), user, full); err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"deleted": true})
}

func (s *Server) handleUpdateMeta(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	var req struct {
		Description string
		Tags        []string
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	full := r.PathValue("owner") + "." + r.PathValue("name")
	if err := s.cat.UpdateMetaContext(r.Context(), user, full, catalog.Meta{Description: req.Description, Tags: req.Tags}); err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"updated": true})
}

func (s *Server) handlePermissions(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	var req struct {
		Public    *bool
		ShareWith []string `json:"shareWith"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	full := r.PathValue("owner") + "." + r.PathValue("name")
	if req.Public != nil {
		v := catalog.Private
		if *req.Public {
			v = catalog.Public
		}
		if err := s.cat.SetVisibilityContext(r.Context(), user, full, v); err != nil {
			s.writeErr(w, statusFor(err), err)
			return
		}
	}
	for _, grantee := range req.ShareWith {
		if err := s.cat.ShareWithContext(r.Context(), user, full, grantee); err != nil {
			s.writeErr(w, statusFor(err), err)
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"updated": true})
}

func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	var req struct{ Source string }
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	full := r.PathValue("owner") + "." + r.PathValue("name")
	if err := s.cat.AppendContext(r.Context(), user, full, req.Source); err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]bool{"appended": true})
}

func (s *Server) handleMaterialize(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	var req struct{ As string }
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	full := r.PathValue("owner") + "." + r.PathValue("name")
	snap, err := s.cat.MaterializeContext(r.Context(), user, full, req.As)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusCreated, datasetJSON(snap))
}
