package server

// This file is the node-side cluster surface: the replication endpoints a
// primary serves (/api/repl/*), the role switch that turns a replica into a
// primary at failover (/api/admin/promote), the shard-map admin pair
// (/api/cluster/map — journaled through the WAL so live == recovered), and
// the typed data endpoint the router's scatter-gather reads from. The
// placement decision itself lives in internal/cluster; nodes only store and
// serve the map.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"sqlshare/internal/catalog"
	"sqlshare/internal/cluster"
	"sqlshare/internal/repl"
	"sqlshare/internal/storage"
)

// minLSNHeader is the read-your-writes gate: a request carrying it blocks
// (bounded) until the node's durable LSN reaches the value, else 409
// replica_lagging. The router pins replica reads with the LSN watermark the
// write response carried in repl.LSNHeader.
const minLSNHeader = "X-SQLShare-Min-LSN"

// defaultMinLSNWait bounds how long a gated read waits for replication to
// catch up before 409 replica_lagging; see SetMinLSNWait.
const defaultMinLSNWait = 2 * time.Second

// catalogMutationRoutes are the route patterns that commit WAL records. They
// are rejected with 409 read_only_replica on replica nodes (writes belong on
// the shard primary; a 4xx, so the zero-5xx failover gate holds), and their
// responses carry the durable LSN in repl.LSNHeader so clients can pin
// subsequent replica reads.
var catalogMutationRoutes = map[string]bool{
	"POST /api/users":                               true,
	"POST /api/datasets":                            true,
	"DELETE /api/datasets/{owner}/{name}":           true,
	"PUT /api/datasets/{owner}/{name}/meta":         true,
	"PUT /api/datasets/{owner}/{name}/permissions":  true,
	"POST /api/datasets/{owner}/{name}/append":      true,
	"POST /api/datasets/{owner}/{name}/materialize": true,
	"POST /api/datasets/{owner}/{name}/doi":         true,
	"POST /api/macros":                              true,
	"PUT /api/cluster/map":                          true,
}

// EnableReplication attaches the WAL-shipping source side: the node starts
// answering /api/repl/wal, /api/repl/snapshot and /api/repl/ack. Requires
// SetDurability first. Replicas enable it too — a promoted replica must
// serve the stream the moment it becomes primary.
func (s *Server) EnableReplication() error {
	if s.durability == nil {
		return fmt.Errorf("server: replication requires a data directory (SetDurability first)")
	}
	src := repl.NewSource(s.durability, nil)
	src.SetMetrics(s.metrics)
	s.replSource = src
	return nil
}

// ReplSource exposes the replication source (nil until EnableReplication).
func (s *Server) ReplSource() *repl.Source { return s.replSource }

// SetReplica marks this node a replica: catalog mutations answer 409
// read_only_replica until Promote. f is the follower pulling the primary's
// WAL (its applied LSN shows in /api/health and /api/repl/status); stop, if
// non-nil, cancels the follower's pull loop and is invoked at promotion.
func (s *Server) SetReplica(f *repl.Follower, stop func()) {
	s.follower = f
	s.stopFollower = stop
	if f != nil {
		f.SetMetrics(s.metrics)
	}
	s.replica.Store(true)
}

// Promote flips a replica to primary: the follower loop is stopped, writes
// are accepted, and the node's durable LSN — the point all acknowledged
// history is replayed against — is returned. Idempotent on a primary.
func (s *Server) Promote() uint64 {
	if s.replica.CompareAndSwap(true, false) && s.stopFollower != nil {
		s.stopFollower()
	}
	var lsn uint64
	if s.durability != nil {
		lsn, _ = s.durability.Durable()
	}
	return lsn
}

// Role reports this node's current role: "primary" or "replica".
func (s *Server) Role() string {
	if s.replica.Load() {
		return "replica"
	}
	return "primary"
}

// SetNodeName labels this node in health and replication status output
// (e.g. its base URL or a -node-id flag value).
func (s *Server) SetNodeName(name string) { s.nodeName = name }

// SetJobPrefix namespaces job identifiers ("n2-" makes "n2-q-17") so the
// router can tell which node a status poll belongs to without keeping
// per-job state. The prefix must be unique per node — the job table is
// node-local, and two nodes of one shard would otherwise mint colliding
// ids. Call before serving traffic.
func (s *Server) SetJobPrefix(p string) { s.jobs.prefix = p }

// SetMinLSNWait bounds how long a min-LSN-gated read waits for replication
// to catch up before answering 409 replica_lagging (default 2s). Call
// before serving traffic.
func (s *Server) SetMinLSNWait(d time.Duration) { s.minLSNWait = d }

// gateMinLSN enforces the min-LSN read gate. Returns false after writing
// the error response when the request cannot proceed: 400 for a malformed
// header, 409 replica_lagging when the node does not reach the requested
// LSN within minLSNWait — the router falls back to the primary on 409.
func (s *Server) gateMinLSN(w http.ResponseWriter, r *http.Request) bool {
	v := r.Header.Get(minLSNHeader)
	if v == "" {
		return true
	}
	min, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad %s header: %v", minLSNHeader, err))
		return false
	}
	if min == 0 {
		return true
	}
	if s.durability == nil {
		s.writeErrCode(w, http.StatusConflict, "replica_lagging",
			fmt.Errorf("node has no WAL and cannot prove LSN %d", min))
		return false
	}
	wait := s.minLSNWait
	if wait <= 0 {
		wait = defaultMinLSNWait
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		lsn, ch := s.durability.Durable()
		if lsn >= min {
			return true
		}
		select {
		case <-ch:
		case <-deadline.C:
			lsn, _ = s.durability.Durable()
			s.writeErrCode(w, http.StatusConflict, "replica_lagging",
				fmt.Errorf("node at LSN %d did not reach requested LSN %d within %s", lsn, min, wait))
			return false
		case <-r.Context().Done():
			s.writeErr(w, http.StatusBadRequest, r.Context().Err())
			return false
		}
	}
}

// ---- replication endpoints (primary side of WAL shipping) ----

func (s *Server) replSourceOr409(w http.ResponseWriter) *repl.Source {
	if s.replSource == nil {
		s.writeErrCode(w, http.StatusConflict, "replication_disabled",
			fmt.Errorf("server is running without replication"))
		return nil
	}
	return s.replSource
}

func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	if src := s.replSourceOr409(w); src != nil {
		src.ServeWAL(w, r)
	}
}

func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if src := s.replSourceOr409(w); src != nil {
		src.ServeSnapshot(w, r)
	}
}

func (s *Server) handleReplAck(w http.ResponseWriter, r *http.Request) {
	if src := s.replSourceOr409(w); src != nil {
		src.HandleAck(w, r)
	}
}

// handleReplStatus reports this node's replication position: role, durable
// LSN, and — on a primary — every follower's acknowledged progress. The
// failover controller reads it to pick the most-caught-up replica.
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{"role": s.Role(), "node": s.nodeName}
	if s.durability != nil {
		lsn, _ := s.durability.Durable()
		out["durableLSN"] = lsn
	}
	if f := s.follower; f != nil {
		out["appliedLSN"] = f.AppliedLSN()
	}
	if src := s.replSource; src != nil {
		out["followers"] = src.Followers()
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handlePromote flips a replica to primary (idempotent on a primary). The
// response carries the durable LSN the new primary serves from — the
// watermark acknowledged writes are replayed against after failover.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	lsn := s.Promote()
	s.writeJSON(w, http.StatusOK, map[string]any{"role": s.Role(), "lsn": lsn})
}

// ---- shard map (journaled placement) ----

// handleGetShardMap returns the installed placement map — the exact bytes
// journaled in the WAL, so what a router reads here is what recovery
// rebuilds.
func (s *Server) handleGetShardMap(w http.ResponseWriter, r *http.Request) {
	epoch, data := s.cat.ShardMap()
	if epoch == 0 {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("no shard map installed"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handlePutShardMap installs a placement map. The body is a cluster.Map;
// its epoch must advance past the installed epoch (a CAS, so two routers
// racing a rebalance cannot interleave maps), and the canonical encoding is
// what gets journaled — byte-identical across every node that applies it.
func (s *Server) handlePutShardMap(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	m, err := cluster.Decode(body)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	canonical, err := m.Encode()
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if err := s.cat.SetShardMap(r.Context(), m.Epoch, canonical); err != nil {
		// Epoch mismatches are races between admins, not malformed input.
		s.writeErrCode(w, http.StatusConflict, "epoch_conflict", err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"installed": true, "epoch": m.Epoch})
}

// ---- typed data endpoint (scatter-gather source) ----

// handleDatasetData returns a dataset's full contents in storage.TableData
// form — value-faithful, so the router can rebuild a storage.Table and run
// cross-shard plans locally. Honors the min-LSN gate and reports the
// serving node's durable LSN so the router can bound staleness.
func (s *Server) handleDatasetData(w http.ResponseWriter, r *http.Request) {
	user, err := s.user(r)
	if err != nil {
		s.writeErr(w, http.StatusUnauthorized, err)
		return
	}
	if !s.gateMinLSN(w, r) {
		return
	}
	full := r.PathValue("owner") + "." + r.PathValue("name")
	res, _, err := s.cat.QueryWithOptions(user, "SELECT * FROM "+full, catalog.QueryOptions{
		MaxRows:  s.maxRows,
		MaxBytes: s.maxBytes,
		Context:  r.Context(),
	})
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	td := &storage.TableData{Name: full, Cols: make([]storage.ColumnData, len(res.Cols))}
	for i, c := range res.Cols {
		td.Cols[i] = storage.ColumnData{Name: c.Name, Type: uint8(c.Type)}
	}
	if len(res.Rows) > 0 {
		td.Rows = make([][]storage.ValueData, len(res.Rows))
		for i, row := range res.Rows {
			enc := make([]storage.ValueData, len(row))
			for j, v := range row {
				enc[j] = storage.EncodeValue(v)
			}
			td.Rows[i] = enc
		}
	}
	if s.durability != nil {
		lsn, _ := s.durability.Durable()
		w.Header().Set(repl.LSNHeader, strconv.FormatUint(lsn, 10))
	}
	s.writeJSON(w, http.StatusOK, td)
}
