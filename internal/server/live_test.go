package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"sqlshare/internal/engine"
)

// seedBigData uploads a dataset wide enough that a self-join over a
// low-cardinality key runs long enough to observe and kill.
func seedBigData(t *testing.T, rows int) (*client, *Server) {
	t.Helper()
	c, _, srv := newTestServerObs(t)
	mustCreateUser(t, c, "alice")
	var b strings.Builder
	b.WriteString("id,grp,pad\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "%d,%d,%s\n", i, i%7, strings.Repeat("x", 24))
	}
	c.uploadCSV("big", b.String())
	return c, srv
}

// heavyJoin explodes to rows^2/7 intermediate rows — minutes of work at
// the sizes the tests use, so a kill always lands before completion.
const heavyJoin = "SELECT a.grp, COUNT(*) FROM big a JOIN big b ON a.grp = b.grp GROUP BY a.grp"

// TestKillRunningQueryOverHTTP is the ISSUE acceptance criterion: an
// in-flight DOP>1 query shows up in GET /api/queries/running with live
// progress, DELETE /api/queries/{id}/kill cancels it promptly, the job
// status flips to "killed", and the shared worker pool drains.
func TestKillRunningQueryOverHTTP(t *testing.T) {
	c, _ := seedBigData(t, 20000)

	code, sub := c.do("POST", "/api/queries", map[string]any{
		"sql": heavyJoin, "parallelism": 4,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, sub)
	}
	id := sub["id"].(string)

	// Wait until the query is visible in the running list with progress.
	var seen map[string]any
	deadline := time.Now().Add(10 * time.Second)
	for seen == nil {
		if time.Now().After(deadline) {
			t.Fatal("query never appeared in /api/queries/running with progress")
		}
		code, list := c.do("GET", "/api/queries/running", nil)
		if code != http.StatusOK {
			t.Fatalf("running: %d %v", code, list)
		}
		for _, raw := range list["queries"].([]any) {
			q := raw.(map[string]any)
			if q["id"] == id && q["rows"].(float64) > 0 {
				seen = q
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if seen["user"] != "alice" || seen["dop"].(float64) != 4 {
		t.Fatalf("running entry = %v", seen)
	}
	if seen["sql"].(string) == "" || seen["phase"].(string) == "" {
		t.Fatalf("running entry missing sql/phase: %v", seen)
	}

	killStart := time.Now()
	code, kill := c.do("DELETE", "/api/queries/"+id+"/kill", nil)
	if code != http.StatusOK || kill["killed"] != true {
		t.Fatalf("kill: %d %v", code, kill)
	}
	final := c.poll(id)
	if time.Since(killStart) > 5*time.Second {
		t.Fatalf("kill took %v to unwind", time.Since(killStart))
	}
	if final["status"] != "killed" {
		t.Fatalf("job ended %v, want killed", final)
	}
	if errText, _ := final["error"].(string); !strings.Contains(errText, "killed") {
		t.Fatalf("killed job error = %q", final["error"])
	}

	// The worker pool drains: no leaked workers keep charging the budget.
	for deadline := time.Now().Add(5 * time.Second); engine.PoolBusy() != 0; {
		if time.Now().After(deadline) {
			t.Fatalf("worker pool still busy after kill: %d", engine.PoolBusy())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// And the registry forgets the query.
	if code, list := c.do("GET", "/api/queries/running", nil); code != http.StatusOK || list["count"].(float64) != 0 {
		t.Fatalf("registry not empty after kill: %d %v", code, list)
	}

	// Killing an unwound (or unknown) query answers 404.
	if code, _ := c.do("DELETE", "/api/queries/"+id+"/kill", nil); code != http.StatusNotFound {
		t.Fatalf("kill after unwind: %d, want 404", code)
	}
}

// TestMaxQueryBytesReturns422 is the other acceptance criterion: a query
// whose hash-join working state exceeds -max-query-bytes aborts with
// engine.ErrMemLimit, reported like the row limit as HTTP 422.
func TestMaxQueryBytesReturns422(t *testing.T) {
	// 1 MiB: roomy enough for the base-table scans (~224 KiB each side),
	// far too small for the ~2.3M-row join blowup — the abort lands in the
	// hash-join working state, not the scan.
	c, srv := seedBigData(t, 4000)
	srv.SetMaxQueryBytes(1 << 20)

	code, sub := c.do("POST", "/api/queries", map[string]string{"sql": heavyJoin})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %v", code, sub)
	}
	id := sub["id"].(string)
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := c.do("GET", "/api/queries/"+id, nil)
		if body["status"] != "running" {
			if code != http.StatusUnprocessableEntity {
				t.Fatalf("final: %d %v, want 422", code, body)
			}
			errText, _ := body["error"].(string)
			if !strings.Contains(errText, "memory limit") {
				t.Fatalf("error = %q, want a memory-limit abort", errText)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query never finished")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A modest query under the same budget still succeeds.
	body := c.query("SELECT COUNT(*) FROM big")
	if body["status"] != "done" {
		t.Fatalf("small query under budget failed: %v", body)
	}
}

// TestHealthEndpoint exercises the deep health check: build identity,
// uptime, query counters, memory budget and pool occupancy.
func TestHealthEndpoint(t *testing.T) {
	c, srv := seedQueryData(t)
	srv.SetMaxQueryBytes(1 << 30)
	c.query("SELECT station FROM readings")

	code, h := c.do("GET", "/api/health", nil)
	if code != http.StatusOK {
		t.Fatalf("health: %d %v", code, h)
	}
	if h["status"] != "ok" {
		t.Fatalf("status = %v", h["status"])
	}
	if h["version"] == "" || h["go"] == "" || h["startedAt"] == "" {
		t.Fatalf("build identity missing: %v", h)
	}
	if h["uptimeSeconds"].(float64) <= 0 {
		t.Fatalf("uptimeSeconds = %v", h["uptimeSeconds"])
	}
	q := h["queries"].(map[string]any)
	if q["running"].(float64) != 0 || q["started"].(float64) < 1 || q["finished"].(float64) < 1 {
		t.Fatalf("queries = %v", q)
	}
	mem := h["memory"].(map[string]any)
	if mem["maxQueryBytes"].(float64) != float64(1<<30) {
		t.Fatalf("memory = %v", mem)
	}
	pool := h["pool"].(map[string]any)
	if pool["budget"].(float64) < 1 {
		t.Fatalf("pool = %v", pool)
	}
	if _, ok := h["templates"]; !ok {
		t.Fatalf("templates section missing: %v", h)
	}
}

// TestOverloadGaugesExposed checks the sqlshare_overload_* family and the
// build-info gauge are on the scrape surface.
func TestOverloadGaugesExposed(t *testing.T) {
	c, _ := seedQueryData(t)
	c.query("SELECT station FROM readings")
	code, body := c.fetchText("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, m := range []string{
		"sqlshare_overload_job_queue_depth",
		"sqlshare_overload_pool_occupancy",
		"sqlshare_overload_inflight_queries",
		"sqlshare_overload_inflight_mem_bytes",
		"sqlshare_overload_template_p99_seconds",
		"sqlshare_build_info{",
		"sqlshare_process_start_time_seconds",
	} {
		if !strings.Contains(body, m) {
			t.Errorf("metric %s missing from /metrics", m)
		}
	}
	// A finished query leaves a template behind, so the worst p99 is
	// positive and the in-flight gauges are back to zero.
	if !strings.Contains(body, "sqlshare_overload_inflight_queries 0") {
		t.Error("inflight gauge nonzero after queries finished")
	}
}
